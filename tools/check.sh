#!/usr/bin/env bash
# Repo health check: builds and tests the configurations that must stay
# green.
#
#   tools/check.sh               default (obs ON) + obs-OFF builds, ctest both
#   tools/check.sh --sanitize    also build+test an ASan+UBSan config
#   tools/check.sh --tsan        also build a ThreadSanitizer config and run
#                                the concurrency-sensitive suites (parallel
#                                CP, CP determinism, overlapped-CP driver
#                                intake-while-drain, write-allocator engine,
#                                thread pool, parallel mount/scoreboard,
#                                multi-aggregate fleet)
#   tools/check.sh --overhead    also measure the obs ON-vs-OFF throughput
#                                delta on the fig6-style hot loop
#                                (acceptance: < 2%)
#   tools/check.sh --crash       also run the full crash-consistency sweep
#                                (ctest label "crash": named scenarios + the
#                                256-case sharded property sweep) in the
#                                release tree AND under ASan+UBSan.  A
#                                failing sweep case prints its repro line:
#                                WAFL_CRASH_SEED=<seed> ./waflfree_crash_tests
#   tools/check.sh --perf        also run the parallel-CP, TopAA-mount,
#                                overlapped-CP and fleet-driver
#                                benches (fast mode), refresh the repo-root
#                                BENCH_*.json trajectory files, and fail if
#                                the run regresses the committed baseline
#                                (parallel fraction, Amdahl-implied speedup,
#                                mount scan/TopAA ratio, recovery scan/Iron
#                                Amdahl speedups + determinism; measured
#                                wall-clock speedups and multi-writer intake
#                                scaling are gated only on >= 4-core hosts).
#                                Each run also appends one JSONL record
#                                (git sha, core count, per-phase times) to
#                                the append-only BENCH_trajectory.json and
#                                gates the fresh run against the previous
#                                record, so gradual drift trips even while
#                                the absolute floors still pass.
#   tools/check.sh --trace       also export a per-CP span timeline from
#                                micro_parallel_cp (Chrome trace_event
#                                JSON, load in chrome://tracing or
#                                ui.perfetto.dev), validate its schema,
#                                and run the `trace`-labelled ctest suite
#                                (whole-CP span timeline checks, excluded
#                                from the default -LE slow pass)
#
# Build trees: build/ (default), build-obs-off/, build-asan/, build-tsan/.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZE=0
TSAN=0
OVERHEAD=0
CRASH=0
PERF=0
TRACE=0
for arg in "$@"; do
  case "$arg" in
    --sanitize) SANITIZE=1 ;;
    --tsan) TSAN=1 ;;
    --overhead) OVERHEAD=1 ;;
    --crash) CRASH=1 ;;
    --perf) PERF=1 ;;
    --trace) TRACE=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

JOBS=$(nproc 2>/dev/null || echo 2)

build_and_test() {
  local dir=$1; shift
  echo "=== configure $dir ($*) ==="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "=== build $dir ==="
  cmake --build "$dir" -j "$JOBS"
  echo "=== ctest $dir ==="
  # -LE slow: the full sharded crash sweep (label "slow") is excluded from
  # the default tier-1 pass; --crash runs it via -L crash.
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS" -LE slow | tail -3
}

build_and_test build
build_and_test build-obs-off -DWAFL_OBS_ENABLED=OFF

if [[ $SANITIZE -eq 1 ]]; then
  build_and_test build-asan -DENABLE_SANITIZERS=ON
fi

if [[ $TSAN -eq 1 ]]; then
  echo "=== configure build-tsan (ThreadSanitizer) ==="
  cmake -B build-tsan -S . -DENABLE_TSAN=ON >/dev/null
  echo "=== build build-tsan ==="
  cmake --build build-tsan -j "$JOBS"
  echo "=== ctest build-tsan (concurrency suites) ==="
  # Everything that drives a ThreadPool or races writer threads: the
  # parallel CP paths and the determinism contract, the engine itself, the
  # pool primitives, the parallel scans (mount, scoreboard build, metafile
  # load), the pipelined recovery scan and its MpscLog live drain, the
  # parallel Iron verify fan-out, the 4-worker emit-while-scan stress
  # (MountParallel.EmitWhileScanStress), the span layer's concurrent
  # emit-while-snapshot stress, and the sharded-intake battery (writer
  # matrix, emit-while-freeze race, CAS claim fuzz, MPSC delayed-free
  # staging).
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -R 'ParallelCp|CpDeterminism|OverlappedCp|ConcurrentIntake|AtomicClaimFuzz|DelayedFreeLog|WriteAllocatorEngine|ThreadPool|Mount|Scoreboard|BitmapMetafile|BlockStoreConcurrent|SpanTrace|Iron|ScanPipeline|MpscLogDrain|Fleet' |
    tail -3
fi

if [[ $CRASH -eq 1 ]]; then
  # The tier-1 runs above already executed the named crash scenarios and a
  # smoke subset of the sweep; this runs the full 256-case sweep (8 shards)
  # in release, then repeats it under ASan+UBSan for memory-safety of the
  # crash/unwind paths themselves.
  echo "=== crash sweep (build, release) ==="
  ctest --test-dir build --output-on-failure -j "$JOBS" -L crash | tail -3
  echo "=== configure build-asan ==="
  cmake -B build-asan -S . -DENABLE_SANITIZERS=ON >/dev/null
  echo "=== build build-asan ==="
  cmake --build build-asan -j "$JOBS"
  echo "=== crash sweep (build-asan, ASan+UBSan) ==="
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" -L crash | tail -3
fi

if [[ $OVERHEAD -eq 1 ]]; then
  echo "=== obs overhead (fig6-style hot loop, fast mode) ==="
  # Interleave ON/OFF runs and compare the best of each: on a shared
  # machine the run-to-run scheduler noise exceeds the 2% effect we gate
  # on, and best-of-pairs cancels slow intervals that hit one side only.
  best_on=0 best_off=0
  for _ in 1 2 3; do
    on=$(WAFL_BENCH_FAST=1 ./build/bench/micro_obs_overhead |
         sed -n 's/^alloc_loop_blocks_per_sec=//p')
    off=$(WAFL_BENCH_FAST=1 ./build-obs-off/bench/micro_obs_overhead |
          sed -n 's/^alloc_loop_blocks_per_sec=//p')
    echo "  pair: ON $on  OFF $off  blocks/s"
    best_on=$(awk -v a="$best_on" -v b="$on" 'BEGIN{print (b>a)?b:a}')
    best_off=$(awk -v a="$best_off" -v b="$off" 'BEGIN{print (b>a)?b:a}')
  done
  delta=$(awk -v on="$best_on" -v off="$best_off" \
          'BEGIN { printf "%.2f", (off - on) / off * 100 }')
  echo "best ON : $best_on blocks/s"
  echo "best OFF: $best_off blocks/s"
  echo "delta   : ${delta}% (positive = ON slower; acceptance < 2%)"
  awk -v d="$delta" 'BEGIN { exit (d < 2.0) ? 0 : 1 }' ||
    { echo "FAIL: obs overhead >= 2%"; exit 1; }
fi

if [[ $PERF -eq 1 ]]; then
  echo "=== perf trajectory (fast-mode benches) ==="
  # Both benches rewrite the repo-root BENCH_*.json files; the gates below
  # compare the fresh run against the committed baseline.  The scaling
  # gates are core-count-independent (phase split and Amdahl-implied
  # speedup, not wall clock) so they hold on 1-core CI; the measured
  # wall-clock speedup is additionally gated on hosts with >= 4 cores.
  WAFL_BENCH_FAST=1 WAFL_BENCH_JSON_DIR="$PWD" \
    ./build/bench/micro_parallel_cp >/dev/null
  WAFL_BENCH_FAST=1 WAFL_BENCH_JSON_DIR="$PWD" \
    ./build/bench/fig10_topaa_mount >/dev/null
  WAFL_BENCH_FAST=1 WAFL_BENCH_JSON_DIR="$PWD" \
    ./build/bench/micro_overlap_cp >/dev/null
  # The fleet smoke runs its own determinism oracle (every member's media
  # vs its solo run) and exits nonzero on divergence.
  WAFL_BENCH_FAST=1 WAFL_BENCH_JSON_DIR="$PWD" \
    ./build/bench/fleet_driver >/dev/null ||
    { echo "FAIL: fleet driver (determinism oracle or run)"; exit 1; }

  gate() {  # gate <label> <value> <floor>
    echo "  $1 = $2 (floor $3)"
    awk -v v="$2" -v f="$3" 'BEGIN { exit (v >= f) ? 0 : 1 }' ||
      { echo "FAIL: $1 below baseline floor $3"; exit 1; }
  }

  pf=$(jq -r '.parallel_fraction' BENCH_parallel_cp.json)
  apf=$(jq -r '.alloc_parallel_fraction' BENCH_parallel_cp.json)
  a4=$(jq -r '.amdahl_speedup_w4' BENCH_parallel_cp.json)
  hw=$(jq -r '.hw_threads' BENCH_parallel_cp.json)
  ident=$(jq -r '.identical_all_worker_counts' BENCH_parallel_cp.json)
  # 0.85 reflects the plan/execute allocation split: with the tetris fills
  # fanned out, only the plan, the window flush, the free partition and the
  # delta/stats merges remain serial.
  gate "parallel_fraction" "$pf" 0.85
  gate "alloc_parallel_fraction" "$apf" 0.85
  gate "amdahl_speedup_w4" "$a4" 1.50
  [[ "$ident" == "true" ]] ||
    { echo "FAIL: parallel CP diverged from serial"; exit 1; }
  if [[ "$hw" -ge 4 ]]; then
    m4=$(jq -r '.measured_speedup_w4' BENCH_parallel_cp.json)
    gate "measured_speedup_w4" "$m4" 1.50
  else
    echo "  measured_speedup_w4 gate skipped ($hw hw threads < 4)"
  fi

  r_size=$(jq -r '.largest_vol_size.scan_over_topaa' BENCH_mount.json)
  r_count=$(jq -r '.largest_vol_count.scan_over_topaa' BENCH_mount.json)
  gate "mount scan/topaa (largest vol size)" "$r_size" 1.50
  gate "mount scan/topaa (largest vol count)" "$r_count" 1.50

  # Recovery-path parallelism (pFSCK-style scan + Iron).  The Amdahl
  # projections come from the serial run's phase split, so they gate on
  # any host; the measured wall-clock speedups need real cores.  Both
  # parallel paths must also have produced bit-identical caches/media.
  s_amdahl=$(jq -r '.scan.scan_amdahl_speedup_w4' BENCH_mount.json)
  i_amdahl=$(jq -r '.iron.iron_amdahl_speedup_w4' BENCH_mount.json)
  s_meas=$(jq -r '.scan.scan_parallel_speedup' BENCH_mount.json)
  i_meas=$(jq -r '.iron.iron_repair_speedup' BENCH_mount.json)
  s_det=$(jq -r '.scan.determinism_ok' BENCH_mount.json)
  i_det=$(jq -r '.iron.determinism_ok' BENCH_mount.json)
  gate "scan_amdahl_speedup_w4" "$s_amdahl" 1.50
  gate "iron_amdahl_speedup_w4" "$i_amdahl" 1.50
  [[ "$s_det" == "true" ]] ||
    { echo "FAIL: parallel recovery scan diverged from serial"; exit 1; }
  [[ "$i_det" == "true" ]] ||
    { echo "FAIL: parallel Iron repair diverged from serial"; exit 1; }
  if [[ "$hw" -ge 4 ]]; then
    gate "scan_parallel_speedup" "$s_meas" 1.20
    gate "iron_repair_speedup" "$i_meas" 1.20
  else
    echo "  scan/iron measured-speedup gates skipped ($hw hw threads < 4)"
  fi

  # Overlapped CP: intake must stay admissible for at least half of the
  # total drain wall (stop-the-world scores 0), and the overlapped driver
  # must remain bit-identical to the stop-the-world path (checked inside
  # the bench itself — it exits nonzero on divergence).
  ov=$(jq -r '.overlap_fraction' BENCH_overlap.json)
  ov_det=$(jq -r '.determinism_ok' BENCH_overlap.json)
  gate "overlap_fraction" "$ov" 0.50
  [[ "$ov_det" == "true" ]] ||
    { echo "FAIL: overlapped CP diverged from stop-the-world"; exit 1; }

  # Sharded intake (DESIGN.md §14): N writer threads streaming into the
  # driver must at least match the single-writer rate.  Scaling above 1.0
  # needs real cores, so — like measured_speedup_w4 — the gate only runs
  # on >= 4-core hosts; elsewhere the fields are still recorded.
  in_t=$(jq -r '.intake_threads' BENCH_overlap.json)
  in_scale=$(jq -r '.intake_scaling' BENCH_overlap.json)
  if [[ "$hw" -ge 4 ]]; then
    gate "intake_scaling (${in_t} writers)" "$in_scale" 1.00
  else
    echo "  intake_scaling gate skipped ($hw hw threads < 4)"
  fi

  # Fleet (DESIGN.md §16): the bench already enforced per-member media
  # determinism; here we gate shape and contention.  drain_stall_fraction
  # is lower-is-better: intake across the fleet must stay admissible for
  # at least half of the shared executor's drain wall.
  fleet_n=$(jq -r '.n_aggregates' BENCH_fleet.json)
  fleet_mblk=$(jq -r '.agg_mblk_s' BENCH_fleet.json)
  fleet_stall=$(jq -r '.drain_stall_fraction' BENCH_fleet.json)
  fleet_det=$(jq -r '.determinism_ok' BENCH_fleet.json)
  gate "fleet n_aggregates" "$fleet_n" 4
  [[ "$fleet_det" == "true" ]] ||
    { echo "FAIL: fleet member diverged from its solo run"; exit 1; }
  echo "  fleet drain_stall_fraction = $fleet_stall (ceiling 0.50)"
  awk -v v="$fleet_stall" 'BEGIN { exit (v <= 0.50) ? 0 : 1 }' ||
    { echo "FAIL: fleet drain stall fraction above 0.50"; exit 1; }

  # Perf trajectory: one JSONL record per --perf run, append-only so the
  # history of (sha, machine, phase times) accretes in git.  The relative
  # gates compare this run against the previous record — they catch slow
  # drift (e.g. a few points of parallel fraction per PR) that the
  # absolute floors above would only trip after several regressions
  # stack up.  Wall-clock fields are recorded but not gated: they are
  # machine-dependent.
  traj=BENCH_trajectory.json
  prev_pf="" prev_apf="" prev_a4="" prev_ov="" prev_sa="" prev_ia=""
  prev_fleet_mblk="" prev_fleet_stall=""
  if [[ -s $traj ]]; then
    prev_pf=$(tail -1 "$traj" | jq -r '.parallel_fraction')
    prev_apf=$(tail -1 "$traj" | jq -r '.alloc_parallel_fraction')
    prev_a4=$(tail -1 "$traj" | jq -r '.amdahl_speedup_w4')
    prev_ov=$(tail -1 "$traj" | jq -r '.overlap_fraction')
    prev_sa=$(tail -1 "$traj" | jq -r '.scan_amdahl_speedup_w4')
    prev_ia=$(tail -1 "$traj" | jq -r '.iron_amdahl_speedup_w4')
    prev_fleet_mblk=$(tail -1 "$traj" | jq -r '.agg_mblk_s // empty')
    prev_fleet_stall=$(tail -1 "$traj" | jq -r '.drain_stall_fraction // empty')
  fi
  jq -c \
    --arg ts "$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    --arg sha "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    --argjson cores "$(nproc 2>/dev/null || echo 0)" \
    --argjson ov "$ov" \
    --argjson ov_freeze "$(jq '.freeze_fraction' BENCH_overlap.json)" \
    --argjson ov_stall "$(jq '.intake_stall_ms' BENCH_overlap.json)" \
    --argjson ov_gap "$(jq '.cp_gap_ms_per_cp' BENCH_overlap.json)" \
    --argjson in_t "$in_t" \
    --argjson in_scale "$in_scale" \
    --argjson in_mblk "$(jq '.intake_mblk_s' BENCH_overlap.json)" \
    --argjson s_amdahl "$s_amdahl" \
    --argjson s_meas "$s_meas" \
    --argjson i_amdahl "$i_amdahl" \
    --argjson i_meas "$i_meas" \
    --argjson fleet_n "$fleet_n" \
    --argjson fleet_mblk "$fleet_mblk" \
    --argjson fleet_stall "$fleet_stall" \
    '{ts: $ts, git: $sha, cores: $cores, hw_threads,
      parallel_fraction, alloc_parallel_fraction,
      amdahl_speedup_w4, measured_speedup_w4,
      serial_phase_ms, parallel_phase_ms,
      alloc_plan_ms, alloc_execute_ms, alloc_merge_ms,
      wall_ms, alloc_wall_ms,
      overlap_fraction: $ov, overlap_freeze_fraction: $ov_freeze,
      overlap_stall_ms: $ov_stall, overlap_gap_ms_per_cp: $ov_gap,
      intake_threads: $in_t, intake_scaling: $in_scale,
      intake_mblk_s: $in_mblk,
      scan_amdahl_speedup_w4: $s_amdahl, scan_parallel_speedup: $s_meas,
      iron_amdahl_speedup_w4: $i_amdahl, iron_repair_speedup: $i_meas,
      n_aggregates: $fleet_n, agg_mblk_s: $fleet_mblk,
      drain_stall_fraction: $fleet_stall,
      identical: .identical_all_worker_counts}' \
    BENCH_parallel_cp.json >> "$traj"
  echo "  trajectory: appended $(wc -l < "$traj")th record to $traj"

  rel_gate() {  # rel_gate <label> <fresh> <previous> <tolerance>
    [[ -n "$3" && "$3" != "null" ]] || return 0
    echo "  $1 = $2 (previous $3, tolerance -$4)"
    awk -v v="$2" -v p="$3" -v t="$4" 'BEGIN { exit (v >= p - t) ? 0 : 1 }' ||
      { echo "FAIL: $1 regressed more than $4 vs previous trajectory record"; exit 1; }
  }
  rel_gate "parallel_fraction (vs trajectory)" "$pf" "$prev_pf" 0.05
  rel_gate "alloc_parallel_fraction (vs trajectory)" "$apf" "$prev_apf" 0.05
  rel_gate "amdahl_speedup_w4 (vs trajectory)" "$a4" "$prev_a4" 0.30
  rel_gate "scan_amdahl_speedup_w4 (vs trajectory)" "$s_amdahl" "$prev_sa" 0.30
  rel_gate "iron_amdahl_speedup_w4 (vs trajectory)" "$i_amdahl" "$prev_ia" 0.30
  # overlap_fraction is wall-clock-derived (stall ns over drain ns), so
  # like measured_speedup_w4 its drift gate only runs where the clock is
  # trustworthy; the absolute 0.50 floor above still holds everywhere.
  if [[ "$hw" -ge 4 ]]; then
    rel_gate "overlap_fraction (vs trajectory)" "$ov" "$prev_ov" 0.10
  else
    echo "  overlap_fraction trajectory gate skipped ($hw hw threads < 4)"
  fi
  # Fleet drift: throughput is wall-clock-derived, so its relative gate —
  # like measured_speedup_w4 — only runs where the clock is trustworthy.
  # The stall fraction is lower-is-better, so the drift check inverts:
  # fresh must not exceed previous by more than the tolerance.
  if [[ "$hw" -ge 4 ]]; then
    rel_gate "agg_mblk_s (vs trajectory)" "$fleet_mblk" "$prev_fleet_mblk" \
      "$(awk -v p="${prev_fleet_mblk:-0}" 'BEGIN { printf "%.4f", p * 0.5 }')"
    if [[ -n "$prev_fleet_stall" && "$prev_fleet_stall" != "null" ]]; then
      echo "  drain_stall_fraction = $fleet_stall (previous $prev_fleet_stall, tolerance +0.10)"
      awk -v v="$fleet_stall" -v p="$prev_fleet_stall" \
        'BEGIN { exit (v <= p + 0.10) ? 0 : 1 }' ||
        { echo "FAIL: drain_stall_fraction rose more than 0.10 vs previous record"; exit 1; }
    fi
  else
    echo "  fleet trajectory gates skipped ($hw hw threads < 4)"
  fi
fi

if [[ $TRACE -eq 1 ]]; then
  echo "=== CP trace export (micro_parallel_cp, fast mode) ==="
  # The bench captures spans for the 4-worker run and writes a Chrome
  # trace_event file next to the BENCH_*.json outputs; validate that the
  # file parses and every event carries the complete-event shape the
  # viewers require.
  WAFL_BENCH_FAST=1 WAFL_BENCH_JSON_DIR="$PWD" \
    ./build/bench/micro_parallel_cp >/dev/null
  trace=micro_parallel_cp.trace.json
  [[ -s $trace ]] || { echo "FAIL: $trace not written"; exit 1; }
  n=$(jq '.traceEvents | length' "$trace") ||
    { echo "FAIL: $trace is not valid JSON"; exit 1; }
  [[ "$n" -gt 0 ]] || { echo "FAIL: $trace has no traceEvents"; exit 1; }
  jq -e '[.traceEvents[] |
          select((.ph == "X") and (.dur >= 0) and (.ts >= 0) and
                 has("name") and has("pid") and has("tid"))] | length == ('"$n"')' \
    "$trace" >/dev/null ||
    { echo "FAIL: $trace has events missing the complete-event shape"; exit 1; }
  echo "  $trace: $n complete events, schema OK"
  echo "=== ctest build (trace label) ==="
  ctest --test-dir build --output-on-failure -j "$JOBS" -L trace | tail -3
fi

echo "=== all checks passed ==="
