#include "device/ssd.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace wafl {
namespace {

SsdParams small_params() {
  SsdParams p;
  p.pages_per_erase_block = 64;
  p.op_fraction = 0.10;
  p.gc_reserve_blocks = 3;
  return p;
}

TEST(SsdModel, Construction) {
  SsdModel ssd(10'000, small_params());
  EXPECT_EQ(ssd.media_type(), MediaType::kSsd);
  EXPECT_EQ(ssd.capacity_blocks(), 10'000u);
  // Over-provisioned physical space.
  EXPECT_GT(ssd.physical_pages(), 10'000u);
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
  EXPECT_EQ(ssd.valid_pages(), 0u);
}

TEST(SsdModel, SequentialFillHasUnitWriteAmp) {
  SsdModel ssd(10'000, small_params());
  for (Dbn start = 0; start < 10'000; start += 500) {
    const std::vector<WriteRun> runs = {{start, 500}};
    ssd.write_batch(runs, 0);
  }
  EXPECT_EQ(ssd.host_programs(), 10'000u);
  EXPECT_EQ(ssd.valid_pages(), 10'000u);
  // First fill of an empty drive relocates nothing.
  EXPECT_EQ(ssd.gc_relocations(), 0u);
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
}

TEST(SsdModel, OverwritesInvalidateOldPages) {
  SsdModel ssd(1'000, small_params());
  const std::vector<WriteRun> runs = {{0, 100}};
  ssd.write_batch(runs, 0);
  EXPECT_EQ(ssd.valid_pages(), 100u);
  ssd.write_batch(runs, 0);  // overwrite the same LBAs
  EXPECT_EQ(ssd.valid_pages(), 100u);
  EXPECT_EQ(ssd.host_programs(), 200u);
}

TEST(SsdModel, RandomChurnForcesGcAndWriteAmp) {
  SsdModel ssd(8'192, small_params());
  // Fill completely, then random-overwrite far more than the OP headroom.
  ssd.write_batch({{0, 8'192}}, 0);
  Rng rng(3);
  for (int i = 0; i < 40'000; ++i) {
    const Dbn d = rng.below(8'192);
    ssd.write_batch({{d, 1}}, 0);
  }
  EXPECT_GT(ssd.gc_relocations(), 0u);
  EXPECT_GT(ssd.erases(), 0u);
  EXPECT_GT(ssd.write_amplification(), 1.2);
  // The FTL never loses data: every LBA still mapped exactly once.
  EXPECT_EQ(ssd.valid_pages(), 8'192u);
}

TEST(SsdModel, TrimReducesGcWork) {
  // Two identical drives; one gets invalidate() (file-system frees), which
  // must reduce relocation work.
  const std::uint64_t cap = 8'192;
  SsdModel with_trim(cap, small_params());
  SsdModel without_trim(cap, small_params());
  with_trim.write_batch({{0, cap}}, 0);
  without_trim.write_batch({{0, cap}}, 0);

  Rng rng(11);
  for (int round = 0; round < 8; ++round) {
    for (std::uint64_t i = 0; i < cap / 2; ++i) {
      const Dbn d = rng.below(cap);
      with_trim.invalidate(d);
      with_trim.write_batch({{d, 1}}, 0);
      without_trim.write_batch({{d, 1}}, 0);
    }
  }
  EXPECT_LE(with_trim.gc_relocations(), without_trim.gc_relocations());
}

TEST(SsdModel, SequentialOverwriteCheaperThanRandom) {
  // The §3.2.2 effect in miniature: rewriting whole erase blocks leaves no
  // valid pages for GC to move; scattered rewrites strand valid pages.
  const std::uint64_t cap = 8'192;
  SsdModel seq(cap, small_params());
  SsdModel rnd(cap, small_params());
  seq.write_batch({{0, cap}}, 0);
  rnd.write_batch({{0, cap}}, 0);
  seq.reset_wear_window();
  rnd.reset_wear_window();

  Rng rng(7);
  // Equal volume: 4 full drive-writes.
  for (int pass = 0; pass < 4; ++pass) {
    for (Dbn start = 0; start < cap; start += 64) {
      seq.write_batch({{start, 64}}, 0);  // erase-block aligned sweeps
    }
    for (std::uint64_t i = 0; i < cap / 64; ++i) {
      // Same count of 64-block writes but at scattered unaligned offsets.
      const Dbn start = rng.below(cap - 64);
      rnd.write_batch({{start, 64}}, 0);
    }
  }
  EXPECT_LT(seq.write_amplification(), rnd.write_amplification());
}

TEST(SsdModel, WearWindowResets) {
  SsdModel ssd(8'192, small_params());
  ssd.write_batch({{0, 8'192}}, 0);
  Rng rng(5);
  for (int i = 0; i < 20'000; ++i) {
    ssd.write_batch({{rng.below(8'192), 1}}, 0);
  }
  EXPECT_GT(ssd.write_amplification(), 1.0);
  ssd.reset_wear_window();
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
}

TEST(SsdModel, WriteTimeScalesWithPrograms) {
  SsdParams p = small_params();
  SsdModel ssd(8'192, p);
  const SimTime t1 = ssd.write_batch({{0, 10}}, 0);
  EXPECT_EQ(t1, 10u * p.program_ns);
  const SimTime t2 = ssd.write_batch({{100, 100}}, 0);
  EXPECT_EQ(t2, 100u * p.program_ns);
}

TEST(SsdModel, ReadTime) {
  SsdParams p = small_params();
  SsdModel ssd(1'000, p);
  EXPECT_EQ(ssd.read_random(7), 7u * p.read_ns);
}

TEST(SsdModel, InvalidateUnmappedIsNoop) {
  SsdModel ssd(1'000, small_params());
  ssd.invalidate(500);
  EXPECT_EQ(ssd.valid_pages(), 0u);
}

}  // namespace
}  // namespace wafl
