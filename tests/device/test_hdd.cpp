#include "device/hdd.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wafl {
namespace {

TEST(HddModel, Metadata) {
  HddModel hdd(100000);
  EXPECT_EQ(hdd.media_type(), MediaType::kHdd);
  EXPECT_EQ(hdd.capacity_blocks(), 100000u);
  EXPECT_DOUBLE_EQ(hdd.write_amplification(), 1.0);
}

TEST(HddModel, SeekTimeProperties) {
  HddParams p;
  HddModel hdd(1'000'000, p);
  EXPECT_EQ(hdd.seek_time(10, 10), 0u);
  // Short seeks cost at least the minimum, less than the average.
  const SimTime short_seek = hdd.seek_time(0, 1);
  EXPECT_GE(short_seek, p.min_seek_ns);
  EXPECT_LT(short_seek, p.avg_seek_ns);
  // Longer seeks cost more, capped near full-stroke.
  const SimTime mid = hdd.seek_time(0, 100'000);
  const SimTime full = hdd.seek_time(0, 999'999);
  EXPECT_GT(mid, short_seek);
  EXPECT_GT(full, mid);
  EXPECT_LE(full, p.min_seek_ns + p.avg_seek_ns);
  // Symmetric.
  EXPECT_EQ(hdd.seek_time(0, 5000), hdd.seek_time(5000, 0));
}

TEST(HddModel, SequentialContinuationSkipsSeek) {
  HddParams p;
  HddModel hdd(1'000'000, p);
  const std::vector<WriteRun> first = {{0, 64}};
  hdd.write_batch(first, 0);
  EXPECT_EQ(hdd.seeks_performed(), 0u);  // head starts at 0

  // Continues exactly where the head is: pure transfer.
  const std::vector<WriteRun> cont = {{64, 64}};
  const SimTime t = hdd.write_batch(cont, 0);
  EXPECT_EQ(hdd.seeks_performed(), 0u);
  EXPECT_EQ(t, 64u * p.block_transfer_ns);
}

TEST(HddModel, OneLongChainBeatsManyShortChains) {
  HddParams p;
  HddModel a(1'000'000, p);
  HddModel b(1'000'000, p);

  // Same 256 blocks: one chain vs 16 scattered chains.
  const std::vector<WriteRun> chain = {{1000, 256}};
  std::vector<WriteRun> scattered;
  for (int i = 0; i < 16; ++i) {
    scattered.push_back({static_cast<Dbn>(1000 + i * 50'000), 16});
  }
  const SimTime t_chain = a.write_batch(chain, 0);
  const SimTime t_scattered = b.write_batch(scattered, 0);
  EXPECT_LT(t_chain * 5, t_scattered);  // long chains win big (§2.4)
  EXPECT_EQ(b.seeks_performed(), 16u);
  EXPECT_EQ(a.blocks_written(), 256u);
  EXPECT_EQ(b.blocks_written(), 256u);
}

TEST(HddModel, ParityReadsCharged) {
  HddParams p;
  HddModel hdd(1'000'000, p);
  const SimTime t0 = hdd.write_batch({}, 0);
  const SimTime t10 = hdd.write_batch({}, 10);
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t10, 10u * (p.min_seek_ns + p.block_transfer_ns));
}

TEST(HddModel, RandomReadsCostFullSeeks) {
  HddParams p;
  HddModel hdd(1'000'000, p);
  EXPECT_EQ(hdd.read_random(4), 4u * (p.avg_seek_ns + p.block_transfer_ns));
}

}  // namespace
}  // namespace wafl
