#include "device/ssd_block_mapped.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

SsdParams params_64() {
  SsdParams p;
  p.pages_per_erase_block = 64;
  return p;
}

TEST(BlockMappedSsd, Construction) {
  BlockMappedSsdModel ssd(1024, params_64());
  EXPECT_EQ(ssd.media_type(), MediaType::kSsd);
  EXPECT_EQ(ssd.capacity_blocks(), 1024u);
  EXPECT_EQ(ssd.group_count(), 16u);
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
  EXPECT_FALSE(ssd.has_open_group());
}

TEST(BlockMappedSsd, WholeGroupSweepsNeverRelocate) {
  BlockMappedSsdModel ssd(1024, params_64());
  // Fill the drive in erase-block-sized sequential sweeps, twice.
  for (int pass = 0; pass < 2; ++pass) {
    for (Dbn g = 0; g < 16; ++g) {
      ssd.write_batch({{g * 64, 64}});
    }
  }
  // Each group is fully rewritten before the stream leaves it: the merge
  // has nothing to relocate (Figure 4 B's ideal).
  EXPECT_EQ(ssd.merge_relocations(), 0u);
  EXPECT_DOUBLE_EQ(ssd.write_amplification(), 1.0);
  EXPECT_EQ(ssd.host_programs(), 2048u);
}

TEST(BlockMappedSsd, PartialGroupStreamRelocatesRemainder) {
  BlockMappedSsdModel ssd(1024, params_64());
  ssd.write_batch({{0, 64}});  // group 0 fully valid
  // Rewrite only half of group 0, then leave for group 5: the merge must
  // move the untouched 32 live blocks (Figure 4 A's partial erase block).
  ssd.write_batch({{0, 32}});
  EXPECT_EQ(ssd.merge_relocations(), 0u);  // still open
  ssd.write_batch({{5 * 64, 64}});         // stream leaves group 0
  EXPECT_EQ(ssd.merge_relocations(), 32u);
  EXPECT_GT(ssd.write_amplification(), 1.0);
}

TEST(BlockMappedSsd, RelocationSkipsInvalidatedBlocks) {
  BlockMappedSsdModel ssd(1024, params_64());
  ssd.write_batch({{0, 64}});
  // Free 20 of the group's blocks (file-system TRIM at the CP boundary).
  for (Dbn b = 10; b < 30; ++b) {
    ssd.invalidate(b);
  }
  ssd.write_batch({{0, 8}});         // rewrite a little
  ssd.write_batch({{5 * 64, 1}});    // leave: merge
  // Untouched live blocks: 64 - 20 invalid - 8 rewritten (blocks 0..7 are
  // outside the invalidated range) = 36.
  EXPECT_EQ(ssd.merge_relocations(), 36u);
}

TEST(BlockMappedSsd, WriteAmpApproachesInverseFreeFraction) {
  // Stream-rewriting groups that are 75% free relocates ~25% per group:
  // WA -> 1 / 0.75.  This is the §3.2.2 relationship the AA cache exploits.
  BlockMappedSsdModel ssd(4096, params_64());
  ssd.write_batch({{0, 4096}});  // all valid
  // Free 75% of every group (every block except each fourth).
  for (Dbn b = 0; b < 4096; ++b) {
    if (b % 4 != 0) ssd.invalidate(b);
  }
  ssd.reset_wear_window();
  // Rewrite the free space group by group: the allocator writes the free
  // blocks (3 of each 4), the merge relocates the kept fourth.
  for (Dbn g = 0; g < 64; ++g) {
    const Dbn base = g * 64;
    std::vector<WriteRun> runs;
    for (Dbn b = base; b < base + 64; ++b) {
      if (b % 4 != 0) {
        if (!runs.empty() &&
            runs.back().start + runs.back().length == b) {
          ++runs.back().length;
        } else {
          runs.push_back({b, 1});
        }
      }
    }
    ssd.write_batch(std::span<const WriteRun>(runs.data(), runs.size()), 0);
  }
  ssd.write_batch({{0, 1}});  // close the last group
  EXPECT_NEAR(ssd.write_amplification(), 4.0 / 3.0, 0.05);
}

TEST(BlockMappedSsd, ErasesCountedOncePerReclaimedBlock) {
  BlockMappedSsdModel ssd(1024, params_64());
  ssd.write_batch({{0, 64}});
  ssd.write_batch({{64, 64}});  // closes group 0: first write, no erase
  EXPECT_EQ(ssd.erases(), 0u);
  ssd.write_batch({{0, 64}});   // closes group 1 (same: fresh)
  ssd.write_batch({{64, 1}});   // closes group 0 again: now an erase
  EXPECT_EQ(ssd.erases(), 1u);
}

TEST(BlockMappedSsd, TimeIncludesMergeWork) {
  SsdParams p = params_64();
  BlockMappedSsdModel ssd(1024, p);
  ssd.write_batch({{0, 64}});
  ssd.write_batch({{0, 16}});  // reopen group 0 partially
  const SimTime t = ssd.write_batch({{5 * 64, 4}});
  // 4 programs + merge of 48 untouched blocks (read+program) + erase.
  EXPECT_EQ(t, 4u * p.program_ns +
                   48u * (p.program_ns + p.read_ns) + p.erase_ns);
}

TEST(BlockMappedSsd, RunSpanningGroupsClosesEachOnCompletion) {
  BlockMappedSsdModel ssd(1024, params_64());
  ssd.write_batch({{0, 256}});  // four whole groups in one run
  EXPECT_EQ(ssd.merge_relocations(), 0u);
  EXPECT_EQ(ssd.merges(), 4u);  // every group completed and closed
  EXPECT_FALSE(ssd.has_open_group());
  ssd.write_batch({{256, 10}});  // partial fifth group stays open
  EXPECT_TRUE(ssd.has_open_group());
}

TEST(BlockMappedSsd, ValidBlocksTracked) {
  BlockMappedSsdModel ssd(1024, params_64());
  ssd.write_batch({{0, 100}});
  EXPECT_EQ(ssd.valid_blocks(), 100u);
  ssd.invalidate(5);
  ssd.invalidate(6);
  EXPECT_EQ(ssd.valid_blocks(), 98u);
  ssd.write_batch({{5, 1}});  // rewrite one freed block
  EXPECT_EQ(ssd.valid_blocks(), 99u);
}

}  // namespace
}  // namespace wafl
