#include "device/azcs.hpp"

#include <gtest/gtest.h>

#include "device/smr.hpp"

namespace wafl {
namespace {

std::unique_ptr<SmrModel> raw_smr(std::uint64_t cap = 64 * 64) {
  SmrParams p;
  p.zone_blocks = 512;
  return std::make_unique<SmrModel>(cap, p);
}

TEST(AzcsDevice, CapacityIs63Of64) {
  AzcsDevice dev(raw_smr(64 * 64));
  EXPECT_EQ(dev.capacity_blocks(), 63u * 64u);
  EXPECT_EQ(dev.media_type(), MediaType::kSmr);
}

TEST(AzcsDevice, MappingSkipsChecksumSlots) {
  AzcsDevice dev(raw_smr());
  EXPECT_EQ(dev.data_to_physical(0), 0u);
  EXPECT_EQ(dev.data_to_physical(62), 62u);
  EXPECT_EQ(dev.data_to_physical(63), 64u);  // skips physical 63
  EXPECT_EQ(dev.data_to_physical(125), 126u);
  EXPECT_EQ(dev.data_to_physical(126), 128u);
  EXPECT_EQ(dev.checksum_block_of_data(0), 63u);
  EXPECT_EQ(dev.checksum_block_of_data(62), 63u);
  EXPECT_EQ(dev.checksum_block_of_data(63), 127u);
}

TEST(AzcsDevice, FullRegionWriteIsOneSequentialRun) {
  auto raw = raw_smr();
  SmrModel* smr = raw.get();
  AzcsDevice dev(std::move(raw));

  // Writing data blocks 0..62 appends the checksum block at physical 63:
  // a single 64-block sequential run, no seeks, no out-of-place updates.
  dev.write_batch({{0, 63}});
  EXPECT_EQ(dev.checksum_writes(), 1u);
  EXPECT_EQ(dev.checksum_rewrites(), 0u);
  EXPECT_EQ(dev.checksum_flushes(), 0u);
  EXPECT_EQ(smr->seeks_performed(), 0u);
  EXPECT_EQ(smr->cache_update_events(), 0u);
  EXPECT_EQ(smr->zone_high(0), 64u);
}

TEST(AzcsDevice, MultiRegionSweepStaysSequential) {
  auto raw = raw_smr();
  SmrModel* smr = raw.get();
  AzcsDevice dev(std::move(raw));

  dev.write_batch({{0, 63 * 4}});  // four whole regions
  EXPECT_EQ(dev.checksum_writes(), 4u);
  EXPECT_EQ(dev.checksum_rewrites(), 0u);
  EXPECT_EQ(smr->seeks_performed(), 0u);
  EXPECT_EQ(smr->cache_update_events(), 0u);
}

TEST(AzcsDevice, ContiguousBatchesKeepChecksumBuffered) {
  // Tetris-sized batches that continue each other exactly behave like one
  // long sweep: the straddled region's checksum block stays buffered and
  // is written once, in sequence, when the region completes.
  auto raw = raw_smr();
  SmrModel* smr = raw.get();
  AzcsDevice dev(std::move(raw));

  dev.write_batch({{0, 64}});  // ends 1 block into region 1
  EXPECT_TRUE(dev.has_pending_region());
  dev.write_batch({{64, 64}});  // continues seamlessly
  dev.write_batch({{128, 61}});  // completes region 2 exactly (189 = 63*3)
  EXPECT_EQ(dev.checksum_writes(), 3u);
  EXPECT_EQ(dev.checksum_flushes(), 0u);
  EXPECT_EQ(dev.checksum_rewrites(), 0u);
  EXPECT_EQ(smr->seeks_performed(), 0u);
  EXPECT_EQ(smr->cache_update_events(), 0u);
  EXPECT_FALSE(dev.has_pending_region());
}

TEST(AzcsDevice, JumpFlushesPendingChecksumAndLaterRewrites) {
  // The Figure 4 (B) pathology: an AA boundary cuts through a region.  The
  // stream jumps away mid-region, forcing the checksum block out early;
  // filling the remainder later rewrites it behind the SMR high-water
  // mark, which costs an out-of-place update.
  auto raw = raw_smr(64 * 64 * 4);
  SmrModel* smr = raw.get();
  AzcsDevice dev(std::move(raw));

  dev.write_batch({{0, 40}});  // stops mid-region 0
  EXPECT_TRUE(dev.has_pending_region());
  EXPECT_EQ(dev.checksum_writes(), 0u);  // still buffered

  dev.write_batch({{1000, 26}});  // jump: flush forced
  EXPECT_EQ(dev.checksum_flushes(), 1u);
  EXPECT_GE(dev.checksum_writes(), 1u);

  dev.write_batch({{40, 23}});  // complete region 0 much later
  EXPECT_EQ(dev.checksum_rewrites(), 1u);
  EXPECT_GT(smr->cache_update_events(), 0u);  // rewrite was behind the mark
}

TEST(AzcsDevice, InvalidateResetsEmptyRegion) {
  auto raw = raw_smr();
  AzcsDevice dev(std::move(raw));
  dev.write_batch({{0, 63}});
  EXPECT_EQ(dev.checksum_rewrites(), 0u);
  for (Dbn d = 0; d < 63; ++d) {
    dev.invalidate(d);
  }
  // Region fully invalidated: a fresh fill is NOT a rewrite.
  dev.write_batch({{0, 63}});
  EXPECT_EQ(dev.checksum_rewrites(), 0u);
}

TEST(AzcsDevice, InvalidateInPendingRegionFlushesIfLiveBlocksRemain) {
  auto raw = raw_smr();
  AzcsDevice dev(std::move(raw));
  dev.write_batch({{0, 40}});
  EXPECT_TRUE(dev.has_pending_region());
  dev.invalidate(5);  // 39 live blocks remain: identifiers must persist
  EXPECT_FALSE(dev.has_pending_region());
  EXPECT_EQ(dev.checksum_flushes(), 1u);
}

TEST(AzcsDevice, WriteAmplificationDelegates) {
  auto raw = raw_smr();
  AzcsDevice dev(std::move(raw));
  dev.write_batch({{0, 40}});
  dev.write_batch({{1000, 26}});  // flush
  dev.write_batch({{40, 23}});    // rewrite behind the mark
  EXPECT_GT(dev.write_amplification(), 1.0);
  dev.reset_wear_window();
  EXPECT_DOUBLE_EQ(dev.write_amplification(), 1.0);
}

}  // namespace
}  // namespace wafl
