#include "device/object_store.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

TEST(ObjectStoreModel, Metadata) {
  ObjectStoreModel os(1'000'000);
  EXPECT_EQ(os.media_type(), MediaType::kObjectStore);
  EXPECT_EQ(os.capacity_blocks(), 1'000'000u);
  EXPECT_DOUBLE_EQ(os.write_amplification(), 1.0);
}

TEST(ObjectStoreModel, OnePutPerRunChunk) {
  ObjectStoreParams p;
  p.max_put_blocks = 100;
  ObjectStoreModel os(10'000, p);
  os.write_batch({{0, 100}}, 0);
  EXPECT_EQ(os.puts_issued(), 1u);
  os.write_batch({{100, 250}}, 0);
  EXPECT_EQ(os.puts_issued(), 1u + 3u);  // 250 blocks => 3 PUTs
  EXPECT_EQ(os.blocks_put(), 350u);
}

TEST(ObjectStoreModel, ColocationReducesPuts) {
  ObjectStoreParams p;
  ObjectStoreModel contiguous(100'000, p);
  ObjectStoreModel scattered(100'000, p);

  contiguous.write_batch({{0, 1024}}, 0);
  std::vector<WriteRun> many;
  for (int i = 0; i < 64; ++i) {
    many.push_back({static_cast<Dbn>(i * 1000), 16});
  }
  scattered.write_batch(many, 0);

  EXPECT_EQ(contiguous.blocks_put(), scattered.blocks_put());
  EXPECT_LT(contiguous.puts_issued(), scattered.puts_issued());
}

TEST(ObjectStoreModel, TimeScalesWithPutsAndBlocks) {
  ObjectStoreParams p;
  ObjectStoreModel os(10'000, p);
  const SimTime one = os.write_batch({{0, 1}}, 0);
  EXPECT_EQ(one, p.put_overhead_ns + p.block_transfer_ns);
  const SimTime reads = os.write_batch({}, 2);
  EXPECT_EQ(reads, 2u * (p.get_overhead_ns + p.block_transfer_ns));
}

TEST(ObjectStoreModel, RandomReadCost) {
  ObjectStoreParams p;
  ObjectStoreModel os(10'000, p);
  EXPECT_EQ(os.read_random(3), 3u * (p.get_overhead_ns + p.block_transfer_ns));
}

}  // namespace
}  // namespace wafl
