#include "device/smr.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

SmrParams small_zones() {
  SmrParams p;
  p.zone_blocks = 256;
  return p;
}

TEST(SmrModel, Construction) {
  SmrModel smr(4096, small_zones());
  EXPECT_EQ(smr.media_type(), MediaType::kSmr);
  EXPECT_EQ(smr.capacity_blocks(), 4096u);
  EXPECT_EQ(smr.zone_count(), 16u);
  EXPECT_DOUBLE_EQ(smr.write_amplification(), 1.0);
}

TEST(SmrModel, SequentialAppendIsCheap) {
  SmrParams p = small_zones();
  SmrModel smr(4096, p);
  const SimTime t = smr.write_batch({{0, 256}});
  EXPECT_EQ(t, 256u * p.block_transfer_ns);  // starts at head position 0
  EXPECT_EQ(smr.cache_update_events(), 0u);
  EXPECT_EQ(smr.zone_high(0), 256u);
}

TEST(SmrModel, RunSpanningZonesAdvancesBothHighMarks) {
  SmrModel smr(4096, small_zones());
  smr.write_batch({{200, 112}});  // crosses the zone-0/zone-1 boundary
  EXPECT_EQ(smr.zone_high(0), 256u);
  EXPECT_EQ(smr.zone_high(1), 56u);
  EXPECT_EQ(smr.cache_update_events(), 0u);
}

TEST(SmrModel, RewriteBehindHighMarkIsOutOfPlace) {
  SmrParams p = small_zones();
  SmrModel smr(4096, p);
  smr.write_batch({{0, 100}});
  EXPECT_EQ(smr.cache_update_events(), 0u);

  // Rewriting block 50 lands behind the shingle high-water mark: the
  // drive absorbs it out of place and pays cleaning amplification.
  const SimTime t = smr.write_batch({{50, 1}});
  EXPECT_EQ(smr.cache_update_events(), 1u);
  EXPECT_EQ(smr.cache_update_blocks(), 1u);
  EXPECT_EQ(t, p.seek_ns + p.block_transfer_ns * p.cleaning_write_factor);
  EXPECT_GT(smr.write_amplification(), 1.0);
  // Out-of-place: the zone's high mark is unchanged.
  EXPECT_EQ(smr.zone_high(0), 100u);
}

TEST(SmrModel, OverlapRunPartiallyBehindHighMark) {
  SmrParams p = small_zones();
  SmrModel smr(4096, p);
  smr.write_batch({{0, 100}});
  // Run [90, 120): 10 blocks behind the mark (out of place), 20 appended.
  smr.write_batch({{90, 30}});
  EXPECT_EQ(smr.cache_update_events(), 1u);
  EXPECT_EQ(smr.cache_update_blocks(), 10u);
  EXPECT_EQ(smr.zone_high(0), 120u);
}

TEST(SmrModel, ForwardJumpWithinZoneIsSafe) {
  SmrModel smr(4096, small_zones());
  smr.write_batch({{0, 10}});
  smr.write_batch({{100, 10}});  // ahead of high mark: nothing shingled
  EXPECT_EQ(smr.cache_update_events(), 0u);
  EXPECT_EQ(smr.zone_high(0), 110u);
  EXPECT_EQ(smr.seeks_performed(), 1u);  // the jump cost a seek
}

TEST(SmrModel, IndependentZones) {
  SmrModel smr(4096, small_zones());
  smr.write_batch({{0, 256}});   // fill zone 0
  smr.write_batch({{256, 10}});  // append in zone 1
  EXPECT_EQ(smr.cache_update_events(), 0u);
  // Rewriting in zone 1 does not care about zone 0's fill.
  smr.write_batch({{256, 5}});
  EXPECT_EQ(smr.cache_update_events(), 1u);
  EXPECT_EQ(smr.cache_update_blocks(), 5u);
}

TEST(SmrModel, SeekChargedOnDiscontiguousRuns) {
  SmrModel smr(4096, small_zones());
  smr.write_batch({{0, 64}});
  EXPECT_EQ(smr.seeks_performed(), 0u);
  smr.write_batch({{64, 64}});  // continues: no seek
  EXPECT_EQ(smr.seeks_performed(), 0u);
  smr.write_batch({{1024, 64}});  // jump: seek
  EXPECT_EQ(smr.seeks_performed(), 1u);
}

TEST(SmrModel, WearWindowResets) {
  SmrModel smr(4096, small_zones());
  smr.write_batch({{0, 100}});
  smr.write_batch({{0, 100}});  // full overlap rewrite
  EXPECT_GT(smr.write_amplification(), 1.0);
  smr.reset_wear_window();
  EXPECT_DOUBLE_EQ(smr.write_amplification(), 1.0);
}

TEST(SmrModel, ParityReadCharge) {
  SmrParams p = small_zones();
  SmrModel smr(4096, p);
  const SimTime t = smr.write_batch({}, 8);
  EXPECT_EQ(t, 8u * (p.block_transfer_ns + p.seek_ns / 8));
}

}  // namespace
}  // namespace wafl
