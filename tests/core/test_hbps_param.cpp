// Parameterized property sweep over HBPS geometries (§3.3.2).
//
// For every (max_score, bin_width, list_capacity) combination, a random
// churn of inserts, takes, and score moves must preserve the structural
// invariants, the exact histogram counts, and the error-bound guarantee.
#include "core/hbps.hpp"

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "util/rng.hpp"

namespace wafl {
namespace {

using HbpsGeometry =
    std::tuple<AaScore /*max*/, std::uint32_t /*bin*/, std::uint32_t /*cap*/>;

class HbpsGeometrySweep : public ::testing::TestWithParam<HbpsGeometry> {
 protected:
  Hbps::Config config() const {
    const auto& [max_score, bin_width, capacity] = GetParam();
    return Hbps::Config{max_score, bin_width, capacity};
  }
};

TEST_P(HbpsGeometrySweep, BinRangesPartitionScoreSpace) {
  Hbps h(config());
  const auto& cfg = h.config();
  // Every score maps to exactly one bin, bins are monotone in score, and
  // the upper bound of bin b sits one width above bin b+1's.
  std::uint32_t prev_bin = h.bin_of(cfg.max_score);
  EXPECT_EQ(prev_bin, 0u);
  for (AaScore s = cfg.max_score; s-- > 0;) {
    const std::uint32_t b = h.bin_of(s);
    EXPECT_GE(b, prev_bin);
    EXPECT_LE(b, prev_bin + 1);
    EXPECT_LT(b, h.bin_count());
    // The score must not exceed its bin's upper bound.
    EXPECT_LE(s, h.bin_upper_bound(b));
    prev_bin = b;
  }
}

TEST_P(HbpsGeometrySweep, ChurnPreservesInvariantsAndErrorBound) {
  const Hbps::Config cfg = config();
  Hbps h(cfg);
  std::map<AaId, AaScore> truth;
  Rng rng(77);

  const AaId universe = 300;
  for (AaId aa = 0; aa < universe; ++aa) {
    const auto s = static_cast<AaScore>(rng.below(cfg.max_score + 1));
    h.insert(aa, s);
    truth[aa] = s;
  }
  ASSERT_TRUE(h.validate());
  ASSERT_EQ(h.size(), universe);

  for (int step = 0; step < 2000; ++step) {
    if (rng.chance(0.4)) {
      // The §3.3.2 guarantee is "the highest score within [one bin width],
      // by picking an AA from the highest populated range IN THE CACHE":
      // when the list holds every AA the bound is global; with a smaller
      // list it holds relative to the listed AAs (the background replenish
      // is what keeps the list fresh in production).
      AaScore bound = 0;
      for (const auto& [aa, s] : truth) {
        if (cfg.list_capacity >= universe || h.is_listed(aa)) {
          bound = std::max(bound, s);
        }
      }
      const auto pick = h.take_best();
      if (pick.has_value()) {
        EXPECT_GE(static_cast<std::uint64_t>(truth[pick->aa]) +
                      cfg.bin_width,
                  bound);
        const auto s = static_cast<AaScore>(rng.below(cfg.max_score + 1));
        truth[pick->aa] = s;
        h.insert(pick->aa, s);
      }
    } else {
      auto it = truth.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(truth.size())));
      const auto s = static_cast<AaScore>(rng.below(cfg.max_score + 1));
      h.update_score(it->first, it->second, s);
      it->second = s;
    }
  }
  ASSERT_TRUE(h.validate());

  // Histogram counts are exact per bin.
  std::vector<std::uint32_t> expect_hist(h.bin_count(), 0);
  for (const auto& [aa, s] : truth) {
    ++expect_hist[h.bin_of(s)];
  }
  for (std::uint32_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_EQ(h.histogram_count(b), expect_hist[b]) << "bin " << b;
  }
}

TEST_P(HbpsGeometrySweep, PersistenceRoundTripAfterChurn) {
  const Hbps::Config cfg = config();
  Hbps h(cfg);
  Rng rng(5);
  for (AaId aa = 0; aa < 200; ++aa) {
    h.insert(aa, static_cast<AaScore>(rng.below(cfg.max_score + 1)));
  }
  for (int i = 0; i < 50; ++i) {
    const auto pick = h.take_best();
    if (!pick.has_value()) break;
    h.insert(pick->aa, static_cast<AaScore>(rng.below(cfg.max_score + 1)));
  }

  std::array<std::byte, Hbps::kPageBytes> pg1{}, pg2{};
  h.save(pg1, pg2);
  auto loaded = Hbps::load(pg1, pg2);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->validate());
  for (;;) {
    const auto a = h.take_best();
    const auto b = loaded->take_best();
    ASSERT_EQ(a, b);
    if (!a.has_value()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HbpsGeometrySweep,
    ::testing::Values(
        // The paper's default: 32 Ki score space, 1 Ki bins, 1000 entries.
        HbpsGeometry{32768, 1024, 1000},
        // Coarser and finer bins around the default.
        HbpsGeometry{32768, 4096, 1000}, HbpsGeometry{32768, 256, 1000},
        // Tiny list: heavy displacement traffic.
        HbpsGeometry{32768, 1024, 8},
        // Small score spaces (sub-bitmap-block AAs).
        HbpsGeometry{1024, 64, 50}, HbpsGeometry{1024, 1024, 16},
        // Degenerate-ish: bin width 1 (exact bins), capacity 1.
        HbpsGeometry{256, 1, 64}, HbpsGeometry{256, 32, 1}),
    [](const ::testing::TestParamInfo<HbpsGeometry>& param_info) {
      return "max" + std::to_string(std::get<0>(param_info.param)) + "_bin" +
             std::to_string(std::get<1>(param_info.param)) + "_cap" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace wafl
