#include "core/aa_layout.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

TEST(AaLayout, FlatBasics) {
  const AaLayout l = AaLayout::flat(0, 10 * kFlatAaBlocks);
  EXPECT_EQ(l.aa_count(), 10u);
  EXPECT_EQ(l.aa_blocks(), kFlatAaBlocks);
  EXPECT_EQ(l.aa_begin(0), 0u);
  EXPECT_EQ(l.aa_end(0), kFlatAaBlocks);
  EXPECT_EQ(l.aa_begin(9), 9ull * kFlatAaBlocks);
  EXPECT_EQ(l.aa_of(0), 0u);
  EXPECT_EQ(l.aa_of(kFlatAaBlocks - 1), 0u);
  EXPECT_EQ(l.aa_of(kFlatAaBlocks), 1u);
  EXPECT_EQ(l.max_score(), kFlatAaBlocks);
}

TEST(AaLayout, FlatWithBase) {
  const AaLayout l = AaLayout::flat(1000, 2048, 1024);
  EXPECT_EQ(l.aa_count(), 2u);
  EXPECT_EQ(l.aa_begin(0), 1000u);
  EXPECT_EQ(l.aa_begin(1), 2024u);
  EXPECT_EQ(l.aa_of(1000), 0u);
  EXPECT_EQ(l.aa_of(2024), 1u);
  EXPECT_EQ(l.aa_of(3047), 1u);
}

TEST(AaLayout, ShortLastAa) {
  const AaLayout l = AaLayout::flat(0, 2500, 1024);
  EXPECT_EQ(l.aa_count(), 3u);
  EXPECT_EQ(l.aa_capacity(0), 1024u);
  EXPECT_EQ(l.aa_capacity(1), 1024u);
  EXPECT_EQ(l.aa_capacity(2), 452u);
  EXPECT_EQ(l.aa_end(2), 2500u);
}

TEST(AaLayout, EveryVbnMapsIntoItsAa) {
  const AaLayout l = AaLayout::flat(50, 5000, 512);
  for (Vbn v = 50; v < 5050; v += 7) {
    const AaId aa = l.aa_of(v);
    EXPECT_GE(v, l.aa_begin(aa));
    EXPECT_LT(v, l.aa_end(aa));
  }
}

TEST(AaLayout, RaidLayoutSizesFromStripes) {
  const RaidGeometry g(6, 1, 16384);
  const AaLayout l = AaLayout::raid(0, g, 4096);
  // 4096 stripes x 6 data devices per AA; 16384/4096 = 4 AAs.
  EXPECT_EQ(l.aa_blocks(), 4096u * 6u);
  EXPECT_EQ(l.aa_count(), 4u);
  EXPECT_EQ(l.total_blocks(), g.data_blocks());
}

TEST(AaLayout, RaidAaIsConsecutiveStripes) {
  const RaidGeometry g(3, 1, 1024);
  const AaLayout l = AaLayout::raid(0, g, 256);
  // AA k must cover stripes [k*256, (k+1)*256) exactly (Figure 3).
  for (AaId aa = 0; aa < l.aa_count(); ++aa) {
    for (Vbn v = l.aa_begin(aa); v < l.aa_end(aa); ++v) {
      const StripeId s = g.stripe_of(v);
      EXPECT_GE(s, static_cast<StripeId>(aa) * 256);
      EXPECT_LT(s, static_cast<StripeId>(aa + 1) * 256);
    }
  }
}

TEST(AaLayout, RaidLayoutWithBase) {
  const RaidGeometry g(2, 1, 512);
  const AaLayout l = AaLayout::raid(7777, g, 128);
  EXPECT_EQ(l.base(), 7777u);
  EXPECT_EQ(l.aa_begin(0), 7777u);
  EXPECT_EQ(l.aa_of(7777), 0u);
}

TEST(AaLayoutDeathTest, RaidAaMustBeWholeTetrises) {
  const RaidGeometry g(2, 1, 512);
  EXPECT_DEATH(AaLayout::raid(0, g, 100), "whole tetrises");
}

}  // namespace
}  // namespace wafl
