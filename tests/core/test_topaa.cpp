#include "core/topaa.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace wafl {
namespace {

TEST(TopAaFile, RaidAwareRoundTrip) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  std::vector<AaPick> best;
  for (std::uint32_t i = 0; i < 100; ++i) {
    best.push_back({i, 1000 - i});  // descending scores
  }
  file.save_raid_aware(best);
  const auto loaded = file.load_raid_aware();
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ((*loaded)[i], best[i]);
  }
}

TEST(TopAaFile, RaidAwareTruncatesToCapacity) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  std::vector<AaPick> best;
  for (std::uint32_t i = 0; i < 2000; ++i) {
    best.push_back({i, 100000 - i});
  }
  file.save_raid_aware(best);
  const auto loaded = file.load_raid_aware();
  ASSERT_TRUE(loaded.has_value());
  // One 4 KiB block holds kTopAaRaidAwareEntries picks (§3.4).
  EXPECT_EQ(loaded->size(), kTopAaRaidAwareEntries);
  EXPECT_EQ((*loaded)[0], best[0]);
}

TEST(TopAaFile, EmptySave) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  file.save_raid_aware(std::vector<AaPick>{});
  const auto loaded = file.load_raid_aware();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

TEST(TopAaFile, UnwrittenBlockFailsLoad) {
  BlockStore store(4);
  TopAaFile file(store, 2);
  EXPECT_EQ(file.load_raid_aware(), std::nullopt);
}

TEST(TopAaFile, CorruptionDetected) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  std::vector<AaPick> best = {{1, 50}, {2, 40}};
  file.save_raid_aware(best);
  // Flip one media bit: the checksum must catch it and mount must fall
  // back to the scan path rather than seed a wrong cache (§3.4).
  store.corrupt(0, 777);
  EXPECT_EQ(file.load_raid_aware(), std::nullopt);
}

TEST(TopAaFile, RejectsNonDescendingScores) {
  // A structurally valid but logically broken file (ascending scores)
  // must be rejected: defense against writer bugs.
  BlockStore store(4);
  TopAaFile file(store, 0);
  const std::vector<AaPick> bad = {{1, 10}, {2, 40}};
  file.save_raid_aware(bad);
  EXPECT_EQ(file.load_raid_aware(), std::nullopt);
}

TEST(TopAaFile, RaidAgnosticRoundTrip) {
  BlockStore store(4);
  TopAaFile file(store, 1);
  Hbps hbps;
  Rng rng(5);
  for (AaId aa = 0; aa < 500; ++aa) {
    hbps.insert(aa, static_cast<AaScore>(rng.below(32769)));
  }
  file.save_raid_agnostic(hbps);
  EXPECT_TRUE(store.is_materialized(1));
  EXPECT_TRUE(store.is_materialized(2));

  auto loaded = file.load_raid_agnostic();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->validate());
  EXPECT_EQ(loaded->size(), hbps.size());
  // Identical pick sequences.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->take_best(), hbps.take_best());
  }
}

TEST(TopAaFile, RaidAgnosticCorruptionFallsBack) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  Hbps hbps;
  hbps.insert(1, 30000);
  file.save_raid_agnostic(hbps);
  store.corrupt(1, 12345);  // damage the list page
  EXPECT_EQ(file.load_raid_agnostic(), std::nullopt);
}

TEST(TopAaFile, SaveCountsWrites) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  const std::vector<AaPick> one = {{1, 2}};
  file.save_raid_aware(one);
  EXPECT_EQ(store.stats().block_writes, TopAaFile::kRaidAwareBlocks);
  store.reset_stats();
  Hbps hbps;
  file.save_raid_agnostic(hbps);
  EXPECT_EQ(store.stats().block_writes, TopAaFile::kRaidAgnosticBlocks);
}

TEST(TopAaFile, LoadCountsReads) {
  BlockStore store(4);
  TopAaFile file(store, 0);
  Hbps hbps;
  file.save_raid_agnostic(hbps);
  store.reset_stats();
  file.load_raid_agnostic();
  // The §3.4 point: the mount gate reads a CONSTANT number of blocks.
  EXPECT_EQ(store.stats().block_reads, TopAaFile::kRaidAgnosticBlocks);
}

}  // namespace
}  // namespace wafl
