// Batched Hbps::apply_changes vs the per-change reference path.
//
// The CP boundary hands the cache one ScoreChange batch per group; the
// batched override applies the histogram moves first and then rebuilds
// the list segments with a single shuffle.  Equivalence contract (see
// hbps.hpp): identical histogram and tracked count always; identical
// per-bin LISTED SETS whenever the list never hits capacity during the
// per-change replay (no order promise — the partial sort never made one
// within a bin); under capacity pressure both paths keep the structural
// invariants and the histogram, but may retain different same-quality
// entries.  The reference path stays reachable as AaCache::apply_changes.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/hbps.hpp"
#include "util/rng.hpp"

namespace wafl {
namespace {

/// Seeded random Hbps over `naa` AAs plus the true score vector; a
/// fraction of AAs is checked out (via take_best, so the best-first
/// checkout pattern matches what a mid-CP allocator leaves behind).
struct Fixture {
  Hbps hbps;
  std::vector<AaScore> scores;
};

Fixture make_fixture(Rng& rng, Hbps::Config cfg, std::uint32_t naa,
                     double checkout_frac) {
  Fixture f{Hbps(cfg), {}};
  f.scores.resize(naa);
  for (AaId aa = 0; aa < naa; ++aa) {
    f.scores[aa] = static_cast<AaScore>(rng.below(cfg.max_score + 1));
    f.hbps.insert(aa, f.scores[aa]);
  }
  for (AaId aa = 0; aa < naa; ++aa) {
    if (rng.chance(checkout_frac)) (void)f.hbps.take_best();
  }
  return f;
}

/// One CP-shaped batch: at most one change per AA, old_score == the true
/// current score (the scoreboard's contract).  Checked-out AAs may appear
/// too — update_score must ignore them.
std::vector<ScoreChange> make_batch(Rng& rng, Fixture& f,
                                    double change_frac) {
  std::vector<ScoreChange> batch;
  const AaScore max = f.hbps.config().max_score;
  for (AaId aa = 0; aa < f.scores.size(); ++aa) {
    if (!rng.chance(change_frac)) continue;
    const AaScore ns = static_cast<AaScore>(rng.below(max + 1));
    batch.push_back({aa, f.scores[aa], ns});
    if (!f.hbps.is_checked_out(aa)) f.scores[aa] = ns;
  }
  return batch;
}

void expect_equivalent(const Hbps& batched, const Hbps& ref,
                       std::span<const AaScore> scores,
                       bool expect_same_sets) {
  ASSERT_TRUE(batched.validate());
  ASSERT_TRUE(ref.validate());
  EXPECT_EQ(batched.size(), ref.size());
  for (std::uint32_t b = 0; b < batched.bin_count(); ++b) {
    EXPECT_EQ(batched.histogram_count(b), ref.histogram_count(b))
        << "histogram bin " << b;
    if (expect_same_sets) {
      EXPECT_EQ(batched.listed_count(b), ref.listed_count(b))
          << "listed count bin " << b;
    }
  }
  if (!expect_same_sets) return;
  // Per-bin listed sets: with equal listed_count per bin, per-AA
  // membership equality pins the sets (each AA's bin is fixed by its true
  // score, identical on both sides).
  for (AaId aa = 0; aa < scores.size(); ++aa) {
    EXPECT_EQ(batched.is_listed(aa), ref.is_listed(aa)) << "AA " << aa;
  }
}

void run_trial(std::uint64_t seed, Hbps::Config cfg, std::uint32_t naa,
               double checkout_frac, double change_frac,
               bool expect_same_sets) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Rng rng(seed);
  Fixture f = make_fixture(rng, cfg, naa, checkout_frac);
  Hbps ref = f.hbps;  // copy: identical starting structure
  const std::vector<ScoreChange> batch = make_batch(rng, f, change_frac);

  f.hbps.apply_changes(batch);            // virtual: batched override
  ref.AaCache::apply_changes(batch);      // explicit: per-change default
  expect_equivalent(f.hbps, ref, f.scores, expect_same_sets);
}

TEST(HbpsBatched, TinyBatchesDelegateToPerChange) {
  Rng rng(11);
  Fixture f = make_fixture(rng, Hbps::Config{1024, 64, 20}, 40, 0.0);
  Hbps ref = f.hbps;
  std::vector<ScoreChange> one;
  one.push_back({0, f.scores[0], static_cast<AaScore>(
                                     (f.scores[0] + 512) % 1025)});
  f.hbps.apply_changes(one);
  ref.AaCache::apply_changes(one);
  ASSERT_TRUE(f.hbps.validate());
  for (std::uint32_t b = 0; b < f.hbps.bin_count(); ++b) {
    EXPECT_EQ(f.hbps.histogram_count(b), ref.histogram_count(b));
    EXPECT_EQ(f.hbps.listed_count(b), ref.listed_count(b));
  }
}

TEST(HbpsBatched, FuzzEquivalenceNoCapacityPressure) {
  // Capacity >= AA count: the list can never fill, so the per-change and
  // batched paths must produce identical per-bin listed sets.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    run_trial(0xB47C0000 + seed, Hbps::Config{1024, 64, 128}, 96,
              /*checkout_frac=*/0.15, /*change_frac=*/0.4,
              /*expect_same_sets=*/true);
  }
}

TEST(HbpsBatched, FuzzEquivalenceWideBins) {
  // Few bins -> many same-bin changes (no-ops) mixed into the batch.
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    run_trial(0xB47C1000 + seed, Hbps::Config{1024, 256, 64}, 48,
              /*checkout_frac=*/0.25, /*change_frac=*/0.6,
              /*expect_same_sets=*/true);
  }
}

TEST(HbpsBatched, FuzzStructuralUnderCapacityPressure) {
  // Tight list: drops are path-dependent, so only the histogram and the
  // structural invariants are comparable.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    run_trial(0xB47C2000 + seed, Hbps::Config{1024, 64, 12}, 96,
              /*checkout_frac=*/0.15, /*change_frac=*/0.5,
              /*expect_same_sets=*/false);
  }
}

TEST(HbpsBatched, FuzzDefaultGeometryChurn) {
  // Paper geometry (32 Ki score space, 32 bins, 1000-entry list) with a
  // CP-sized batch; capacity never binds with 256 AAs.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    run_trial(0xB47C3000 + seed, Hbps::Config{}, 256,
              /*checkout_frac=*/0.1, /*change_frac=*/0.5,
              /*expect_same_sets=*/true);
  }
}

TEST(HbpsBatched, AllCheckedOutIsANoOp) {
  Rng rng(99);
  Fixture f = make_fixture(rng, Hbps::Config{1024, 64, 20}, 16, 0.0);
  // Check every AA out.
  while (f.hbps.take_best().has_value()) {
  }
  Hbps ref = f.hbps;
  std::vector<ScoreChange> batch;
  for (AaId aa = 0; aa < 16; ++aa) {
    batch.push_back({aa, f.scores[aa], static_cast<AaScore>(
                                           (f.scores[aa] + 100) % 1025)});
  }
  f.hbps.apply_changes(batch);
  ASSERT_TRUE(f.hbps.validate());
  EXPECT_EQ(f.hbps.size(), 0u);
  EXPECT_EQ(f.hbps.list_size(), ref.list_size());
}

}  // namespace
}  // namespace wafl
