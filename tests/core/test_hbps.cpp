#include "core/hbps.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace wafl {
namespace {

Hbps::Config small_config() {
  // 0..1024 score space, 16 bins of 64, list of 20 entries.
  return Hbps::Config{1024, 64, 20};
}

TEST(Hbps, DefaultGeometryMatchesPaper) {
  Hbps h;
  EXPECT_EQ(h.bin_count(), 32u);
  EXPECT_EQ(h.config().max_score, 32768u);
  EXPECT_EQ(h.config().bin_width, 1024u);
  EXPECT_EQ(h.config().list_capacity, 1000u);
  // The error guarantee: one bin width over the max score = 3.125%.
  EXPECT_DOUBLE_EQ(
      static_cast<double>(h.config().bin_width) / h.config().max_score,
      0.03125);
}

TEST(Hbps, BinOfMapsPaperRanges) {
  Hbps h;
  EXPECT_EQ(h.bin_of(32768), 0u);  // best scores -> first bin
  EXPECT_EQ(h.bin_of(31745), 0u);
  EXPECT_EQ(h.bin_of(31744), 1u);
  EXPECT_EQ(h.bin_of(1), 31u);
  EXPECT_EQ(h.bin_of(0), 31u);  // full AAs share the worst bin
  EXPECT_EQ(h.bin_upper_bound(0), 32768u);
  EXPECT_EQ(h.bin_upper_bound(1), 31744u);
}

TEST(Hbps, InsertAndTakeBest) {
  Hbps h(small_config());
  h.insert(1, 100);
  h.insert(2, 900);
  h.insert(3, 500);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_TRUE(h.validate());

  const auto best = h.take_best();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->aa, 2u);
  EXPECT_TRUE(h.is_checked_out(2));
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.take_best()->aa, 3u);
  EXPECT_EQ(h.take_best()->aa, 1u);
  EXPECT_EQ(h.take_best(), std::nullopt);
}

TEST(Hbps, TakeBestScoreIsBinUpperBound) {
  Hbps h(small_config());
  h.insert(7, 950);  // bin of 950 with width 64: (1024-950)/64 = 1
  const auto pick = h.take_best();
  EXPECT_EQ(pick->score, h.bin_upper_bound(1));
}

TEST(Hbps, CheckinAfterCheckout) {
  Hbps h(small_config());
  h.insert(1, 1000);
  const auto pick = h.take_best();
  EXPECT_EQ(h.size(), 0u);
  h.insert(pick->aa, 3);  // consumed: re-enters near-full
  EXPECT_FALSE(h.is_checked_out(1));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.histogram_count(h.bin_of(3)), 1u);
  EXPECT_TRUE(h.validate());
}

TEST(Hbps, UpdateScoreMovesBins) {
  Hbps h(small_config());
  h.insert(1, 100);
  const std::uint32_t b0 = h.bin_of(100);
  const std::uint32_t b1 = h.bin_of(1000);
  h.update_score(1, 100, 1000);
  EXPECT_EQ(h.histogram_count(b0), 0u);
  EXPECT_EQ(h.histogram_count(b1), 1u);
  EXPECT_EQ(h.take_best()->aa, 1u);
}

TEST(Hbps, UpdateWithinSameBinIsNoop) {
  Hbps h(small_config());
  h.insert(1, 1000);
  h.insert(2, 1001);
  ASSERT_EQ(h.bin_of(1000), h.bin_of(1001));
  h.update_score(1, 1000, 1002);
  EXPECT_TRUE(h.validate());
  EXPECT_EQ(h.size(), 2u);
}

TEST(Hbps, UpdateOnCheckedOutIsDeferred) {
  Hbps h(small_config());
  h.insert(1, 1000);
  h.take_best();
  h.update_score(1, 1000, 3);  // must be ignored (re-keys on insert)
  EXPECT_EQ(h.size(), 0u);
  EXPECT_TRUE(h.validate());
}

TEST(Hbps, ListOverflowKeepsBestAndExactCounts) {
  Hbps h(small_config());  // capacity 20
  // 30 AAs in a middling bin; then 5 in the best bin.
  for (AaId aa = 0; aa < 30; ++aa) {
    h.insert(aa, 500);
  }
  EXPECT_EQ(h.list_size(), 20u);
  EXPECT_EQ(h.histogram_count(h.bin_of(500)), 30u);  // counts stay exact
  for (AaId aa = 100; aa < 105; ++aa) {
    h.insert(aa, 1020);  // better bin: must displace listed mid-bin AAs
  }
  EXPECT_EQ(h.list_size(), 20u);
  EXPECT_TRUE(h.validate());
  // The best five takes are the bin-0 AAs.
  for (int i = 0; i < 5; ++i) {
    const auto pick = h.take_best();
    EXPECT_GE(pick->aa, 100u);
  }
  EXPECT_LT(h.take_best()->aa, 30u);
}

TEST(Hbps, InsertIntoWorseBinThanWorstListedSkipsList) {
  Hbps h(small_config());
  for (AaId aa = 0; aa < 20; ++aa) {
    h.insert(aa, 1000);  // fill the list from bin 0
  }
  h.insert(50, 10);  // far worse: tracked in histogram only
  EXPECT_EQ(h.list_size(), 20u);
  EXPECT_FALSE(h.is_listed(50));
  EXPECT_EQ(h.histogram_count(h.bin_of(10)), 1u);
  EXPECT_TRUE(h.validate());
}

TEST(Hbps, UnlistedAaPromotedByFrees) {
  Hbps h(small_config());
  for (AaId aa = 0; aa < 20; ++aa) {
    h.insert(aa, 500);
  }
  h.insert(99, 10);  // unlisted
  EXPECT_FALSE(h.is_listed(99));
  h.update_score(99, 10, 1020);  // frees push it into the best bin
  EXPECT_TRUE(h.is_listed(99));
  EXPECT_EQ(h.take_best()->aa, 99u);
  EXPECT_TRUE(h.validate());
}

TEST(Hbps, NeedsReplenishWhenListDrainsButHistogramTracks) {
  Hbps h(small_config());
  for (AaId aa = 0; aa < 25; ++aa) {
    h.insert(aa, 900);  // 20 listed, 5 histogram-only
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.take_best().has_value());
  }
  EXPECT_EQ(h.take_best(), std::nullopt);  // list empty
  EXPECT_TRUE(h.needs_replenish());
  EXPECT_EQ(h.size(), 5u);  // still tracked
}

TEST(Hbps, BuildFromScoreboardListsBestBins) {
  const AaLayout l = AaLayout::flat(0, 64 * 1024, 1024);
  AaScoreBoard board(l);  // all 64 AAs at score 1024
  // Make AA scores distinct-ish: consume i blocks from AA i.
  for (AaId aa = 0; aa < 64; ++aa) {
    for (AaId i = 0; i < aa * 16; ++i) {
      board.note_alloc(l.aa_begin(aa) + i);
    }
  }
  board.apply_cp_deltas();

  Hbps h(small_config());
  h.build(board);
  EXPECT_EQ(h.size(), 64u);
  EXPECT_TRUE(h.validate());
  // Best AA is aa 0 (fully free).
  EXPECT_EQ(h.take_best()->aa, 0u);
}

TEST(Hbps, BuildSkipsCheckedOut) {
  const AaLayout l = AaLayout::flat(0, 4 * 1024, 1024);
  AaScoreBoard board(l);
  Hbps h(small_config());
  h.build(board);
  const auto pick = h.take_best();
  h.build(board);  // rebuild while one AA is checked out
  EXPECT_EQ(h.size(), 3u);
  EXPECT_TRUE(h.is_checked_out(pick->aa));
  EXPECT_TRUE(h.validate());
}

// The paper's headline guarantee: the returned AA's true score is within
// one bin width of the true maximum (3.125% of 32 Ki by default).
TEST(Hbps, ErrorBoundPropertyUnderChurn) {
  Hbps::Config cfg{1024, 64, 50};
  Hbps h(cfg);
  std::map<AaId, AaScore> truth;
  Rng rng(42);

  for (AaId aa = 0; aa < 200; ++aa) {
    const auto s = static_cast<AaScore>(rng.below(1025));
    h.insert(aa, s);
    truth[aa] = s;
  }

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t action = rng.below(4);
    if (action == 0) {
      const auto pick = h.take_best();
      if (pick.has_value()) {
        const AaScore true_best =
            std::max_element(truth.begin(), truth.end(),
                             [](const auto& a, const auto& b) {
                               return a.second < b.second;
                             })
                ->second;
        // Guarantee holds only while the list is non-empty beforehand,
        // which take_best() success implies.
        EXPECT_GE(static_cast<std::uint64_t>(truth[pick->aa]) + cfg.bin_width,
                  true_best);
        // Check back in at a mutated score.
        const auto s = static_cast<AaScore>(rng.below(1025));
        truth[pick->aa] = s;
        h.insert(pick->aa, s);
      }
    } else {
      auto it = truth.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.below(truth.size())));
      const auto s = static_cast<AaScore>(rng.below(1025));
      h.update_score(it->first, it->second, s);
      it->second = s;
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(h.validate());
    }
  }
  EXPECT_TRUE(h.validate());
}

TEST(Hbps, SaveLoadRoundTrip) {
  Hbps h(small_config());
  Rng rng(9);
  for (AaId aa = 0; aa < 60; ++aa) {
    h.insert(aa, static_cast<AaScore>(rng.below(1025)));
  }
  std::array<std::byte, Hbps::kPageBytes> hist_page{}, list_page{};
  h.save(hist_page, list_page);

  const auto loaded = Hbps::load(hist_page, list_page);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->validate());
  EXPECT_EQ(loaded->size(), h.size());
  EXPECT_EQ(loaded->list_size(), h.list_size());
  for (std::uint32_t b = 0; b < h.bin_count(); ++b) {
    EXPECT_EQ(loaded->histogram_count(b), h.histogram_count(b));
    EXPECT_EQ(loaded->listed_count(b), h.listed_count(b));
  }
  // Both must serve the same sequence of picks.
  Hbps copy = *loaded;
  for (;;) {
    const auto a = h.take_best();
    const auto b = copy.take_best();
    EXPECT_EQ(a, b);
    if (!a.has_value()) break;
  }
}

TEST(Hbps, LoadRejectsCorruptPages) {
  Hbps h(small_config());
  h.insert(1, 500);
  std::array<std::byte, Hbps::kPageBytes> hist_page{}, list_page{};
  h.save(hist_page, list_page);

  auto bad_hist = hist_page;
  bad_hist[100] ^= std::byte{0x40};
  EXPECT_EQ(Hbps::load(bad_hist, list_page), std::nullopt);

  auto bad_list = list_page;
  bad_list[0] ^= std::byte{0x01};
  EXPECT_EQ(Hbps::load(hist_page, bad_list), std::nullopt);

  // Untouched pages still load.
  EXPECT_TRUE(Hbps::load(hist_page, list_page).has_value());
}

TEST(Hbps, LoadRejectsWrongSizes) {
  std::array<std::byte, 100> tiny{};
  std::array<std::byte, Hbps::kPageBytes> page{};
  EXPECT_EQ(Hbps::load(tiny, page), std::nullopt);
  EXPECT_EQ(Hbps::load(page, tiny), std::nullopt);
}

TEST(Hbps, EmptySaveLoad) {
  Hbps h(small_config());
  std::array<std::byte, Hbps::kPageBytes> hist_page{}, list_page{};
  h.save(hist_page, list_page);
  auto loaded = Hbps::load(hist_page, list_page);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 0u);
  EXPECT_EQ(loaded->take_best(), std::nullopt);
}

TEST(Hbps, PagesAreExactlyTwo4KiBPages) {
  // §3.3.2: "this AA cache uses exactly two pages of memory".
  EXPECT_EQ(Hbps::kPageBytes, 4096u);
  // And 1,000 four-byte ids fit the list page with its CRC.
  EXPECT_LE(kHbpsListCapacity * sizeof(AaId) + 4, Hbps::kPageBytes);
}

}  // namespace
}  // namespace wafl

namespace wafl {
namespace {

TEST(Hbps, NeedsReplenishWhenBetterAasAreStranded) {
  // Fill the list from one bin, strand an equally-good AA outside it, then
  // drain the listed bin: the stranded AA's bin is now better than
  // anything listed, so the structure must ask for a background scan.
  Hbps h(Hbps::Config{1024, 64, 4});
  for (AaId aa = 0; aa < 4; ++aa) {
    h.insert(aa, 1000);  // bin 0, fills the 4-entry list
  }
  h.insert(99, 1001);  // bin 0 too: skipped (not strictly better)
  EXPECT_FALSE(h.is_listed(99));
  EXPECT_FALSE(h.needs_replenish());  // bin 0 is still listed

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(h.take_best().has_value());
  }
  // List empty, AA 99 stranded in bin 0.
  EXPECT_TRUE(h.needs_replenish());

  // A worse listed AA alone must also trip the check.
  h.insert(50, 10);  // bin 15..: listed (list empty => admitted)
  EXPECT_TRUE(h.is_listed(50));
  EXPECT_TRUE(h.needs_replenish());  // 99 (bin 0) still stranded
}

TEST(Hbps, BestHistogramBinTracksContents) {
  Hbps h(Hbps::Config{1024, 64, 8});
  EXPECT_EQ(h.best_histogram_bin(), -1);
  h.insert(1, 100);
  const auto low_bin = static_cast<std::int32_t>(h.bin_of(100));
  EXPECT_EQ(h.best_histogram_bin(), low_bin);
  h.insert(2, 1000);
  EXPECT_EQ(h.best_histogram_bin(), 0);
  h.update_score(2, 1000, 100);
  EXPECT_EQ(h.best_histogram_bin(), low_bin);
}

}  // namespace
}  // namespace wafl
