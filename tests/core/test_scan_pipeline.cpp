// The pipelined bitmap scan in isolation (core/scan_pipeline.hpp): the
// reader/seeder handoff against a raw store-backed BitmapMetafile, the
// serial/parallel cutover, the steal path, and the MpscLog live drain the
// pipeline is built on.  The aggregate-level determinism oracle lives in
// tests/wafl/test_mount.cpp (MountParallel.*).
#include "core/scan_pipeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bitmap/bitmap_metafile.hpp"
#include "storage/block_store.hpp"
#include "util/mpsc_log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace wafl {
namespace {

/// A flushed, store-backed metafile over `nbits` VBNs with a seeded
/// allocation pattern — the media image a recovery scan reads.
struct Media {
  explicit Media(std::uint64_t nbits, std::uint64_t seed = 11)
      : store((nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock),
        mf(nbits, &store) {
    Rng rng(seed);
    for (Vbn v = 0; v < nbits; ++v) {
      if (rng.chance(0.4)) mf.set_allocated(v);
    }
    mf.flush();
    mf.begin_cp();
  }

  BlockStore store;
  BitmapMetafile mf;
};

std::vector<AaScore> scan(Media& m, const AaLayout& layout,
                          ThreadPool* pool) {
  std::vector<AaScore> scores(layout.aa_count());
  const ScanUnit unit{&layout, &scores};
  pipelined_bitmap_scan(m.mf, std::span(&unit, 1), pool);
  return scores;
}

TEST(ScanPipeline, PipelinedMatchesSerialAndGroundTruth) {
  // 10 metafile blocks, last AA short: well above the cutover.
  const std::uint64_t nbits = 10 * kBitsPerBitmapBlock - 1000;
  const AaLayout layout = AaLayout::flat(0, nbits, /*aa_blocks=*/4096);
  Media serial_m(nbits);
  const std::vector<AaScore> want = scan(serial_m, layout, nullptr);

  // Ground truth from the serial-loaded metafile itself.
  for (AaId aa = 0; aa < layout.aa_count(); ++aa) {
    ASSERT_EQ(want[aa],
              static_cast<AaScore>(serial_m.mf.free_in_range(
                  layout.aa_begin(aa), layout.aa_end(aa))));
  }

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    Media m(nbits);
    ThreadPool pool(workers);
    EXPECT_EQ(scan(m, layout, &pool), want);
    EXPECT_EQ(m.mf.total_free(), serial_m.mf.total_free());
  }
}

TEST(ScanPipeline, MultipleUnitsOverOneMetafile) {
  // Two layouts partition the VBN space (the per-RAID-group case): one
  // scan walk serves both units' scores.
  const std::uint64_t nbits = 8 * kBitsPerBitmapBlock;
  const AaLayout lo = AaLayout::flat(0, nbits / 2, 4096);
  const AaLayout hi = AaLayout::flat(nbits / 2, nbits / 2, 4096);
  Media serial_m(nbits);
  std::vector<AaScore> want_lo(lo.aa_count()), want_hi(hi.aa_count());
  {
    const ScanUnit units[] = {{&lo, &want_lo}, {&hi, &want_hi}};
    pipelined_bitmap_scan(serial_m.mf, units, nullptr);
  }
  Media m(nbits);
  ThreadPool pool(4);
  std::vector<AaScore> got_lo(lo.aa_count()), got_hi(hi.aa_count());
  const ScanUnit units[] = {{&lo, &got_lo}, {&hi, &got_hi}};
  pipelined_bitmap_scan(m.mf, units, &pool);
  EXPECT_EQ(got_lo, want_lo);
  EXPECT_EQ(got_hi, want_hi);
}

TEST(ScanPipeline, CutoverKeepsSmallScansSerial) {
  scan_profile().reset();
  // 2 metafile blocks: below kParallelScanMinBlocks, stays serial even
  // with a pool.
  const std::uint64_t small = 2 * kBitsPerBitmapBlock;
  const AaLayout small_layout = AaLayout::flat(0, small, 4096);
  Media small_m(small);
  ThreadPool pool(4);
  scan(small_m, small_layout, &pool);
  EXPECT_EQ(scan_profile().runs.load(), 1u);
  EXPECT_EQ(scan_profile().pipelined_runs.load(), 0u);

  // At the cutover it pipelines.
  const std::uint64_t big = kParallelScanMinBlocks * kBitsPerBitmapBlock;
  const AaLayout big_layout = AaLayout::flat(0, big, 4096);
  Media big_m(big);
  scan(big_m, big_layout, &pool);
  EXPECT_EQ(scan_profile().runs.load(), 2u);
  EXPECT_EQ(scan_profile().pipelined_runs.load(), 1u);
}

// NOTE: deliberately NOT named ScanPipeline.* — the watcher's polling
// read of the scores array races the seeder's writes (benign: aligned
// word-size 0 -> nonzero, result only consumed after join), and the
// tools/check.sh --tsan regex selects ScanPipeline; this test is a
// release-build progress tripwire, not a memory-model proof.
TEST(StealPath, SeederStealsWhenPoolIsSaturated) {
  // Every pool worker is pinned by a blocking task, so every read and
  // every seed can only happen through the seeder's steal path.  A
  // watcher thread polls the caller-owned scores array and releases the
  // pinned workers only once every AA is scored — so by the time the
  // scan's submitted reader tasks first get to run, the caller alone has
  // already finished the whole walk.  (The seeded media keeps every AA's
  // free count nonzero, asserted against the serial run, so "scored" is
  // observable as "nonzero".)  The 120 s fallback release turns a broken
  // steal path into a slow failure instead of a hang.
  const std::uint64_t nbits = 6 * kBitsPerBitmapBlock;
  const AaLayout layout = AaLayout::flat(0, nbits, 4096);
  Media serial_m(nbits);
  const std::vector<AaScore> want = scan(serial_m, layout, nullptr);
  for (const AaScore s : want) ASSERT_GT(s, 0u);

  ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<unsigned> pinned{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      pinned.fetch_add(1);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (pinned.load() < 2) std::this_thread::yield();

  Media m(nbits);
  std::vector<AaScore> scores(layout.aa_count());
  std::atomic<bool> all_seeded{false};
  std::thread watcher([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    for (;;) {
      bool done = true;
      for (AaId aa = 0; aa < layout.aa_count(); ++aa) {
        // Benign data race by design: 0 -> nonzero exactly once, and the
        // scan result is only read after the scan (and this thread) join.
        if (scores[aa] == 0) {
          done = false;
          break;
        }
      }
      if (done || std::chrono::steady_clock::now() > deadline) {
        all_seeded.store(done);
        release.store(true, std::memory_order_release);
        return;
      }
      std::this_thread::yield();
    }
  });
  const ScanUnit unit{&layout, &scores};
  pipelined_bitmap_scan(m.mf, std::span(&unit, 1), &pool);
  watcher.join();
  EXPECT_TRUE(all_seeded.load())
      << "seeder did not finish alone while the pool was pinned";
  EXPECT_EQ(scores, want);
  pool.wait_idle();
}

TEST(MpscLogDrain, LiveDrainSeesEveryPushInOrderPerProducer) {
  // drain_from consumes while producers are still pushing — the hazard
  // consume_ordered cannot handle (it resets the log).  Each producer
  // pushes tagged increasing values; the drained stream must contain
  // every value, increasing within each producer tag.
  MpscLog<std::uint64_t> log;
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 5000;
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&log, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        log.push(p << 32 | i);
      }
    });
  }
  std::uint64_t cursor = 0;
  std::vector<std::uint64_t> next(kProducers, 0);
  std::uint64_t drained = 0;
  while (drained < kProducers * kPerProducer) {
    drained += log.drain_from(&cursor, [&](std::uint64_t v) {
      const std::uint64_t p = v >> 32;
      const std::uint64_t i = v & 0xFFFFFFFF;
      ASSERT_LT(p, kProducers);
      EXPECT_EQ(i, next[p]) << "producer " << p << " out of order";
      next[p] = i + 1;
    });
  }
  for (auto& t : producers) t.join();
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[p], kPerProducer);
  }
}

}  // namespace
}  // namespace wafl
