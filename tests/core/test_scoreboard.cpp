#include "core/scoreboard.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

TEST(AaScoreBoard, EmptyFileSystemScoresAreCapacities) {
  const AaLayout l = AaLayout::flat(0, 2500, 1024);
  AaScoreBoard board(l);
  EXPECT_EQ(board.aa_count(), 3u);
  EXPECT_EQ(board.score(0), 1024u);
  EXPECT_EQ(board.score(1), 1024u);
  EXPECT_EQ(board.score(2), 452u);
  EXPECT_EQ(board.total_free(), 2500u);
}

TEST(AaScoreBoard, ScanConstructorMatchesMetafile) {
  const AaLayout l = AaLayout::flat(0, 4096, 1024);
  BitmapMetafile mf(4096);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Vbn v = rng.below(4096);
    if (!mf.test(v)) mf.set_allocated(v);
  }
  AaScoreBoard board(l, mf);
  for (AaId aa = 0; aa < 4; ++aa) {
    EXPECT_EQ(board.score(aa), mf.free_in_range(aa * 1024, (aa + 1) * 1024));
  }
  EXPECT_EQ(board.total_free(), mf.total_free());
}

TEST(AaScoreBoard, ScanWithBaseOffset) {
  // The layout's VBN range sits at an offset inside a larger metafile.
  const AaLayout l = AaLayout::flat(2048, 2048, 1024);
  BitmapMetafile mf(8192);
  mf.set_allocated(2048);
  mf.set_allocated(2049);
  mf.set_allocated(3072);
  AaScoreBoard board(l, mf);
  EXPECT_EQ(board.score(0), 1022u);
  EXPECT_EQ(board.score(1), 1023u);
}

TEST(AaScoreBoard, ParallelScanMatchesSerial) {
  const AaLayout l = AaLayout::flat(0, 64 * 1024, 1024);
  BitmapMetafile mf(64 * 1024);
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const Vbn v = rng.below(64 * 1024);
    if (!mf.test(v)) mf.set_allocated(v);
  }
  AaScoreBoard serial(l, mf);
  ThreadPool pool(3);
  AaScoreBoard parallel(l, mf, &pool);
  for (AaId aa = 0; aa < serial.aa_count(); ++aa) {
    EXPECT_EQ(serial.score(aa), parallel.score(aa));
  }
}

TEST(AaScoreBoard, DeltasAreBatchedUntilCpBoundary) {
  const AaLayout l = AaLayout::flat(0, 2048, 1024);
  AaScoreBoard board(l);
  board.note_alloc(0);
  board.note_alloc(1);
  board.note_free(1030);  // hypothetical free in AA 1 (scores clamp later)
  // Scores unchanged until the boundary (§3.3 delayed batching).
  EXPECT_EQ(board.score(0), 1024u);
  EXPECT_EQ(board.pending_delta(0), -2);
  EXPECT_EQ(board.pending_delta(1), 1);
}

TEST(AaScoreBoard, ApplyProducesChangeRecords) {
  const AaLayout l = AaLayout::flat(0, 2048, 1024);
  AaScoreBoard board(l);
  board.note_alloc(0);
  board.note_alloc(5);
  board.note_alloc(1024);
  const auto changes = board.apply_cp_deltas();
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_EQ(changes[0].aa, 0u);
  EXPECT_EQ(changes[0].old_score, 1024u);
  EXPECT_EQ(changes[0].new_score, 1022u);
  EXPECT_EQ(changes[1].aa, 1u);
  EXPECT_EQ(changes[1].new_score, 1023u);
  EXPECT_EQ(board.score(0), 1022u);
  // Deltas cleared.
  EXPECT_EQ(board.pending_delta(0), 0);
  EXPECT_TRUE(board.apply_cp_deltas().empty());
}

TEST(AaScoreBoard, CancellingDeltasProduceNoChange) {
  const AaLayout l = AaLayout::flat(0, 1024, 1024);
  AaScoreBoard board(l);
  board.note_alloc(0);
  board.note_free(1);
  EXPECT_TRUE(board.apply_cp_deltas().empty());
  EXPECT_EQ(board.score(0), 1024u);
}

TEST(AaScoreBoard, MultipleCpCycles) {
  const AaLayout l = AaLayout::flat(0, 1024, 1024);
  AaScoreBoard board(l);
  for (int cp = 0; cp < 10; ++cp) {
    board.note_alloc(static_cast<Vbn>(cp));
    const auto changes = board.apply_cp_deltas();
    ASSERT_EQ(changes.size(), 1u);
    EXPECT_EQ(changes[0].new_score, 1024u - static_cast<AaScore>(cp) - 1);
  }
  EXPECT_EQ(board.score(0), 1014u);
}

TEST(AaScoreBoard, RescanOverridesPendingDelta) {
  const AaLayout l = AaLayout::flat(0, 1024, 1024);
  BitmapMetafile mf(1024);
  AaScoreBoard board(l, mf);
  board.note_alloc(0);
  mf.set_allocated(0);
  mf.set_allocated(1);
  board.rescan(0, mf);
  EXPECT_EQ(board.score(0), 1022u);
  // The pending delta was discarded; applying changes nothing.
  EXPECT_TRUE(board.apply_cp_deltas().empty());
  EXPECT_EQ(board.score(0), 1022u);
}

TEST(AaScoreBoardDeathTest, OverflowingScoreAsserts) {
  const AaLayout l = AaLayout::flat(0, 1024, 1024);
  AaScoreBoard board(l);
  board.note_free(0);  // free on an already-empty AA
  EXPECT_DEATH(board.apply_cp_deltas(), "out of range");
}

}  // namespace
}  // namespace wafl
