#include "core/max_heap_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/rng.hpp"

namespace wafl {
namespace {

AaScoreBoard make_board(const std::vector<AaScore>& scores) {
  // A flat layout with AA size >= all scores; we then force the scores via
  // deltas would be clumsy, so build directly and note_alloc down.
  const std::uint32_t aa_blocks = 32768;
  const AaLayout l =
      AaLayout::flat(0, static_cast<std::uint64_t>(scores.size()) * aa_blocks,
                     aa_blocks);
  AaScoreBoard board(l);
  for (AaId aa = 0; aa < scores.size(); ++aa) {
    const std::uint32_t to_consume = aa_blocks - scores[aa];
    for (std::uint32_t i = 0; i < to_consume; ++i) {
      board.note_alloc(l.aa_begin(aa) + i);
    }
  }
  board.apply_cp_deltas();
  return board;
}

TEST(MaxHeapAaCache, BuildAndTakeInDescendingOrder) {
  const std::vector<AaScore> scores = {5, 100, 42, 7, 99, 100, 0};
  AaScoreBoard board = make_board(scores);
  MaxHeapAaCache cache(static_cast<AaId>(scores.size()));
  cache.build(board);
  EXPECT_TRUE(cache.validate());
  EXPECT_EQ(cache.size(), scores.size());

  std::vector<AaScore> taken;
  while (auto pick = cache.take_best()) {
    taken.push_back(pick->score);
  }
  std::vector<AaScore> expect = scores;
  std::sort(expect.rbegin(), expect.rend());
  EXPECT_EQ(taken, expect);
}

TEST(MaxHeapAaCache, TieBreaksTowardLowerId) {
  AaScoreBoard board = make_board({50, 50, 50});
  MaxHeapAaCache cache(3);
  cache.build(board);
  EXPECT_EQ(cache.take_best()->aa, 0u);
  EXPECT_EQ(cache.take_best()->aa, 1u);
  EXPECT_EQ(cache.take_best()->aa, 2u);
}

TEST(MaxHeapAaCache, PeekDoesNotRemove) {
  AaScoreBoard board = make_board({10, 30, 20});
  MaxHeapAaCache cache(3);
  cache.build(board);
  EXPECT_EQ(cache.peek_best_score(), 30u);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.take_best()->score, 30u);
  EXPECT_EQ(cache.peek_best_score(), 20u);
}

TEST(MaxHeapAaCache, InsertAfterCheckout) {
  AaScoreBoard board = make_board({10, 30, 20});
  MaxHeapAaCache cache(3);
  cache.build(board);
  const AaPick p = *cache.take_best();
  EXPECT_FALSE(cache.contains(p.aa));
  cache.insert(p.aa, 5);  // returns emptied
  EXPECT_TRUE(cache.contains(p.aa));
  EXPECT_TRUE(cache.validate());
  EXPECT_EQ(cache.peek_best_score(), 20u);
}

TEST(MaxHeapAaCache, UpdateScoreRekeysBothDirections) {
  AaScoreBoard board = make_board({10, 30, 20});
  MaxHeapAaCache cache(3);
  cache.build(board);
  cache.update_score(0, 10, 100);  // up
  EXPECT_EQ(cache.peek_best_score(), 100u);
  EXPECT_EQ(cache.take_best()->aa, 0u);
  cache.update_score(1, 30, 1);  // down
  EXPECT_EQ(cache.take_best()->aa, 2u);
  EXPECT_TRUE(cache.validate());
}

TEST(MaxHeapAaCache, UpdateScoreOnCheckedOutIsNoop) {
  AaScoreBoard board = make_board({10, 30, 20});
  MaxHeapAaCache cache(3);
  cache.build(board);
  const AaPick p = *cache.take_best();  // aa 1
  cache.update_score(p.aa, 30, 7);      // not resident: ignored
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.validate());
}

TEST(MaxHeapAaCache, ApplyChangesBatch) {
  AaScoreBoard board = make_board({10, 30, 20, 40});
  MaxHeapAaCache cache(4);
  cache.build(board);
  const std::vector<ScoreChange> changes = {{0, 10, 35}, {3, 40, 5}};
  cache.apply_changes(changes);
  EXPECT_EQ(cache.take_best(), (AaPick{0, 35}));
  EXPECT_EQ(cache.take_best(), (AaPick{1, 30}));
  EXPECT_EQ(cache.take_best(), (AaPick{2, 20}));
  EXPECT_EQ(cache.take_best(), (AaPick{3, 5}));
}

TEST(MaxHeapAaCache, TopReturnsBestWithoutDisturbing) {
  const std::vector<AaScore> scores = {5, 100, 42, 7, 99, 88, 0, 63};
  AaScoreBoard board = make_board(scores);
  MaxHeapAaCache cache(static_cast<AaId>(scores.size()));
  cache.build(board);
  const auto top3 = cache.top(3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0], (AaPick{1, 100}));
  EXPECT_EQ(top3[1], (AaPick{4, 99}));
  EXPECT_EQ(top3[2], (AaPick{5, 88}));
  EXPECT_EQ(cache.size(), scores.size());
  EXPECT_TRUE(cache.validate());
  // Asking for more than exists truncates.
  EXPECT_EQ(cache.top(100).size(), scores.size());
}

TEST(MaxHeapAaCache, SeedReplacesContents) {
  AaScoreBoard board = make_board({10, 30, 20});
  MaxHeapAaCache cache(10);
  cache.build(board);
  const std::vector<AaPick> picks = {{7, 500}, {8, 400}};
  cache.seed(picks);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.take_best(), (AaPick{7, 500}));
  EXPECT_EQ(cache.take_best(), (AaPick{8, 400}));
  EXPECT_EQ(cache.take_best(), std::nullopt);
}

TEST(MaxHeapAaCache, EmptyCacheBehaviour) {
  MaxHeapAaCache cache(5);
  EXPECT_EQ(cache.take_best(), std::nullopt);
  EXPECT_EQ(cache.peek_best_score(), std::nullopt);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.validate());
}

TEST(MaxHeapAaCache, RandomizedAgainstMultimap) {
  // Property sweep: the heap must always return the exact maximum, under a
  // random mix of inserts, takes, and re-keys.
  const AaId universe = 200;
  MaxHeapAaCache cache(universe);
  std::map<AaId, AaScore> reference;
  Rng rng(1234);

  for (AaId aa = 0; aa < 50; ++aa) {
    const auto s = static_cast<AaScore>(rng.below(1000));
    cache.insert(aa, s);
    reference[aa] = s;
  }

  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t action = rng.below(3);
    if (action == 0 && !reference.empty()) {
      // take_best must match the reference max (lowest id on ties).
      auto best = reference.begin();
      for (auto it = reference.begin(); it != reference.end(); ++it) {
        if (it->second > best->second) best = it;
      }
      const auto pick = cache.take_best();
      ASSERT_TRUE(pick.has_value());
      EXPECT_EQ(pick->score, best->second);
      EXPECT_EQ(pick->aa, best->first);
      reference.erase(best);
    } else if (action == 1) {
      const auto aa = static_cast<AaId>(rng.below(universe));
      if (!reference.contains(aa)) {
        const auto s = static_cast<AaScore>(rng.below(1000));
        cache.insert(aa, s);
        reference[aa] = s;
      }
    } else if (!reference.empty()) {
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(
                           rng.below(reference.size())));
      const auto s = static_cast<AaScore>(rng.below(1000));
      cache.update_score(it->first, it->second, s);
      it->second = s;
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(cache.validate());
    }
  }
  EXPECT_EQ(cache.size(), reference.size());
  EXPECT_TRUE(cache.validate());
}

TEST(MaxHeapAaCacheDeathTest, DoubleInsertAsserts) {
  MaxHeapAaCache cache(5);
  cache.insert(1, 10);
  EXPECT_DEATH(cache.insert(1, 20), "already resident");
}

}  // namespace
}  // namespace wafl
