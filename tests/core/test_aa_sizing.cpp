#include "core/aa_sizing.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

TEST(AaSizing, HddUsesHistoricalDefault) {
  MediaGeometry m;
  m.type = MediaType::kHdd;
  EXPECT_EQ(choose_raid_aa_stripes(m), kDefaultRaidAaStripes);
}

TEST(AaSizing, SsdCoversSeveralEraseBlocks) {
  MediaGeometry m;
  m.type = MediaType::kSsd;
  m.erase_block_blocks = 16384;  // 64 MiB erase blocks
  const std::uint32_t stripes = choose_raid_aa_stripes(m);
  // Per-device span covers the configured multiple of erase blocks.
  EXPECT_GE(stripes, kSsdAaEraseBlockMultiple * 16384u);
  EXPECT_EQ(stripes % kTetrisStripes, 0u);
}

TEST(AaSizing, SsdUnknownEraseBlockFallsBack) {
  MediaGeometry m;
  m.type = MediaType::kSsd;
  m.erase_block_blocks = 0;
  EXPECT_EQ(choose_raid_aa_stripes(m), kDefaultRaidAaStripes);
}

TEST(AaSizing, SsdTinyEraseBlockStillAtLeastDefault) {
  MediaGeometry m;
  m.type = MediaType::kSsd;
  m.erase_block_blocks = 64;  // smaller than the default AA
  EXPECT_EQ(choose_raid_aa_stripes(m), kDefaultRaidAaStripes);
}

TEST(AaSizing, SmrLargerThanZone) {
  MediaGeometry m;
  m.type = MediaType::kSmr;
  m.zone_blocks = 16384;
  const std::uint32_t stripes = choose_raid_aa_stripes(m);
  EXPECT_GE(stripes, kSmrAaZoneMultiple * 16384u);
  EXPECT_EQ(stripes % kTetrisStripes, 0u);
}

TEST(AaSizing, SmrWithAzcsAlignsToRegionPeriod) {
  MediaGeometry m;
  m.type = MediaType::kSmr;
  m.zone_blocks = 16128;  // a zone in data-block units
  m.azcs = true;
  const std::uint32_t stripes = choose_raid_aa_stripes(m);
  // Figure 4 (C): aligned to both the tetris and the 63-data-block AZCS
  // region period, and still larger than the zone multiple.
  EXPECT_EQ(stripes % kTetrisStripes, 0u);
  EXPECT_EQ(stripes % kAzcsDataBlocksPerRegion, 0u);
  EXPECT_GE(stripes, kSmrAaZoneMultiple * 16128u);
}

TEST(AaSizing, SmrUnknownZoneFallsBack) {
  MediaGeometry m;
  m.type = MediaType::kSmr;
  m.zone_blocks = 0;
  EXPECT_EQ(choose_raid_aa_stripes(m), kDefaultRaidAaStripes);
}

TEST(AaSizing, FlatMatchesBitmapBlockAlignment) {
  // One flat AA == one 4 KiB bitmap-metafile block of 32 Ki bits (§3.2.1).
  EXPECT_EQ(choose_flat_aa_blocks(), kFlatAaBlocks);
  EXPECT_EQ(kFlatAaBlocks, kBitsPerBitmapBlock);
}

TEST(AaSizing, SsdSizingMonotoneInEraseBlock) {
  MediaGeometry a, b;
  a.type = b.type = MediaType::kSsd;
  a.erase_block_blocks = 8192;
  b.erase_block_blocks = 32768;
  EXPECT_LE(choose_raid_aa_stripes(a), choose_raid_aa_stripes(b));
}

}  // namespace
}  // namespace wafl
