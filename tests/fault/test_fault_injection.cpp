// Unit tests for wafl::fault — the crash-point registry and the seeded
// FaultEngine — independent of the WAFL stack above them.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "fault/crash_point.hpp"
#include "fault/fault.hpp"
#include "storage/block_store.hpp"

namespace wafl::fault {
namespace {

using Block = BlockStore::Block;

Block pattern(std::byte fill) {
  Block b;
  b.fill(fill);
  return b;
}

TEST(CrashHooks, UnarmedPointIsInert) {
  crash_hooks().disarm_all();
  EXPECT_FALSE(crash_hooks().any_armed());
  WAFL_CRASH_POINT("test.point");  // must not throw
}

TEST(CrashHooks, NthExecutionFiresAndSelfDisarms) {
  crash_hooks().arm("test.nth", 3);
  WAFL_CRASH_POINT("test.nth");
  WAFL_CRASH_POINT("test.nth");
  EXPECT_EQ(crash_hooks().hits("test.nth"), 2u);
  try {
    WAFL_CRASH_POINT("test.nth");
    FAIL() << "third execution must throw";
  } catch (const CrashPoint& cp) {
    EXPECT_EQ(cp.point(), "test.nth");
    EXPECT_EQ(cp.hit_count(), 3u);
  }
  // One crash per arm: the fired point disarmed itself.
  EXPECT_FALSE(crash_hooks().any_armed());
  WAFL_CRASH_POINT("test.nth");
}

TEST(CrashHooks, RearmReplacesTrigger) {
  crash_hooks().arm("test.rearm", 5);
  WAFL_CRASH_POINT("test.rearm");
  crash_hooks().arm("test.rearm", 1);  // replaces: next execution fires
  EXPECT_THROW(WAFL_CRASH_POINT("test.rearm"), CrashPoint);
  crash_hooks().disarm_all();
}

TEST(FaultEngine, TornWriteKeepsOldTail) {
  BlockStore store(8);
  store.write(2, pattern(std::byte{0xAA}));

  FaultPlan plan;
  plan.seed = 1;
  plan.torn_write_prob = 1.0;
  plan.torn_bytes = 100;
  plan.only_block = 2;
  FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  store.write(2, pattern(std::byte{0xBB}));
  store.set_fault_injector(nullptr);

  Block got;
  store.read(2, got);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    EXPECT_EQ(got[i], i < 100 ? std::byte{0xBB} : std::byte{0xAA}) << i;
  }
  const std::vector<FaultRecord> journal = engine.journal();
  ASSERT_EQ(journal.size(), 1u);
  EXPECT_EQ(journal[0].kind, FaultRecord::Kind::kTorn);
  EXPECT_EQ(journal[0].block, 2u);
  EXPECT_EQ(journal[0].detail, 100u);
}

TEST(FaultEngine, DroppedWriteKeepsOldBlockButCountsTheWrite) {
  BlockStore store(8);
  store.write(1, pattern(std::byte{0x11}));
  const std::uint64_t writes0 = store.stats().block_writes;

  FaultPlan plan;
  plan.seed = 2;
  plan.dropped_write_prob = 1.0;
  FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  store.write(1, pattern(std::byte{0x22}));
  store.set_fault_injector(nullptr);

  Block got;
  store.read(1, got);
  EXPECT_EQ(got[0], std::byte{0x11});
  // The write was issued (and acknowledged), so it is counted.
  EXPECT_EQ(store.stats().block_writes, writes0 + 1);
}

TEST(FaultEngine, OnlyBlockRestrictsFaults) {
  BlockStore store(8);
  FaultPlan plan;
  plan.seed = 3;
  plan.dropped_write_prob = 1.0;
  plan.only_block = 5;
  FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  store.write(4, pattern(std::byte{0x44}));  // untargeted: lands
  store.write(5, pattern(std::byte{0x55}));  // targeted: dropped
  store.set_fault_injector(nullptr);

  EXPECT_TRUE(store.is_materialized(4));
  EXPECT_FALSE(store.is_materialized(5));
}

TEST(FaultEngine, WriteCountCrashLandsAfterTheFaultyWrite) {
  BlockStore store(8);
  store.write(0, pattern(std::byte{0x01}));
  store.write(1, pattern(std::byte{0x01}));

  FaultPlan plan;
  plan.seed = 4;
  plan.crash_after_writes = 2;
  plan.crash_write_fault = CrashWriteFault::kDropped;
  FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  store.write(0, pattern(std::byte{0x02}));  // write 1: persists
  EXPECT_THROW(store.write(1, pattern(std::byte{0x02})), CrashPoint);
  store.set_fault_injector(nullptr);

  Block got;
  store.read(0, got);
  EXPECT_EQ(got[0], std::byte{0x02});
  store.read(1, got);
  EXPECT_EQ(got[0], std::byte{0x01});  // the crashing write was dropped
  EXPECT_TRUE(engine.crashed());
  EXPECT_FALSE(engine.armed());
  // Post-crash the engine is disarmed: recovery I/O runs honestly.
  store.set_fault_injector(&engine);
  store.write(1, pattern(std::byte{0x03}));
  store.set_fault_injector(nullptr);
  store.read(1, got);
  EXPECT_EQ(got[0], std::byte{0x03});
}

TEST(FaultEngine, ReadBitRotIsTransient) {
  BlockStore store(4);
  store.write(0, pattern(std::byte{0x00}));

  FaultPlan plan;
  plan.seed = 5;
  plan.read_bitrot_prob = 1.0;
  FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  Block got;
  store.read(0, got);
  store.set_fault_injector(nullptr);

  int flipped = 0;
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    if (got[i] != std::byte{0x00}) ++flipped;
  }
  EXPECT_EQ(flipped, 1);  // exactly one bit flipped...
  store.read(0, got);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ASSERT_EQ(got[i], std::byte{0x00});  // ...and the media is unharmed
  }
}

TEST(FaultEngine, SameSeedSameJournal) {
  const auto run = [](std::uint64_t seed) {
    BlockStore store(16);
    FaultPlan plan;
    plan.seed = seed;
    plan.torn_write_prob = 0.4;
    plan.dropped_write_prob = 0.2;
    FaultEngine engine(plan);
    store.set_fault_injector(&engine);
    for (std::uint64_t b = 0; b < 16; ++b) {
      store.write(b, pattern(std::byte{0x77}));
    }
    store.set_fault_injector(nullptr);
    return engine.journal();
  };
  const std::vector<FaultRecord> a = run(42);
  const std::vector<FaultRecord> b = run(42);
  const std::vector<FaultRecord> c = run(43);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].block, b[i].block);
    EXPECT_EQ(a[i].ordinal, b[i].ordinal);
    EXPECT_EQ(a[i].detail, b[i].detail);
  }
  EXPECT_GT(a.size(), 0u);
  // A different seed gives a different fault pattern (with these probs,
  // 16 writes make a collision astronomically unlikely).
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].kind != c[i].kind || a[i].block != c[i].block ||
              a[i].detail != c[i].detail;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultyBlockStore, ForwardsFullSurfaceAndDetaches) {
  BlockStore inner(4);
  {
    FaultPlan plan;  // no faults: pure pass-through
    FaultyBlockStore faulty(inner, plan);
    EXPECT_EQ(faulty.capacity_blocks(), 4u);
    faulty.write(1, pattern(std::byte{0x09}));
    EXPECT_TRUE(faulty.is_materialized(1));
    EXPECT_EQ(faulty.materialized_blocks(), 1u);
    faulty.grow(6);
    EXPECT_EQ(faulty.capacity_blocks(), 6u);
    EXPECT_EQ(inner.capacity_blocks(), 6u);
    Block got;
    faulty.read(1, got);
    EXPECT_EQ(got[0], std::byte{0x09});
    EXPECT_EQ(faulty.stats().block_reads, 1u);
    EXPECT_EQ(inner.fault_injector(), &faulty.engine());
  }
  // Decorator death detaches its engine.
  EXPECT_EQ(inner.fault_injector(), nullptr);
}

}  // namespace
}  // namespace wafl::fault
