// Parameterized sweep over RAID geometries: the VBN <-> (device, dbn)
// mapping must be a bijection with the chain and AA-contiguity properties
// the write allocator depends on, for every realistic shape.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "raid/raid_geometry.hpp"
#include "raid/tetris.hpp"

namespace wafl {
namespace {

using Shape = std::tuple<std::uint32_t /*data*/, std::uint32_t /*parity*/,
                         std::uint64_t /*device_blocks*/>;

class GeometrySweep : public ::testing::TestWithParam<Shape> {
 protected:
  RaidGeometry geometry() const {
    const auto& [d, p, blocks] = GetParam();
    return RaidGeometry(d, p, blocks);
  }
};

TEST_P(GeometrySweep, MappingIsBijective) {
  const RaidGeometry g = geometry();
  std::vector<bool> seen(g.data_blocks(), false);
  for (DeviceId d = 0; d < g.data_devices(); ++d) {
    for (Dbn dbn = 0; dbn < g.device_blocks(); ++dbn) {
      const Vbn v = g.to_vbn({d, dbn});
      ASSERT_LT(v, g.data_blocks());
      ASSERT_FALSE(seen[v]);
      seen[v] = true;
      const BlockLocation back = g.to_location(v);
      ASSERT_EQ(back.device, d);
      ASSERT_EQ(back.dbn, dbn);
    }
  }
}

TEST_P(GeometrySweep, ConsecutiveVbnsFormDeviceChains) {
  const RaidGeometry g = geometry();
  for (Vbn v = 0; v + 1 < g.data_blocks(); ++v) {
    if ((v + 1) % kTetrisStripes == 0) continue;  // chunk boundary
    const BlockLocation a = g.to_location(v);
    const BlockLocation b = g.to_location(v + 1);
    ASSERT_EQ(a.device, b.device);
    ASSERT_EQ(a.dbn + 1, b.dbn);
  }
}

TEST_P(GeometrySweep, TetrisWindowsAreContiguousVbnRanges) {
  const RaidGeometry g = geometry();
  for (std::uint64_t t = 0; t < g.tetrises(); ++t) {
    const Vbn base = g.tetris_base_vbn(t);
    for (Vbn v = base; v < base + g.blocks_per_tetris(); ++v) {
      ASSERT_EQ(g.tetris_of(v), t);
      // Every block of the window sits in the window's stripe range.
      const StripeId s = g.stripe_of(v);
      ASSERT_GE(s, t * kTetrisStripes);
      ASSERT_LT(s, (t + 1) * kTetrisStripes);
    }
  }
}

TEST_P(GeometrySweep, FullWindowWriteIsAllFullStripes) {
  const RaidGeometry g = geometry();
  TetrisBuilder builder(g);
  std::vector<Vbn> writes;
  for (Vbn v = 0; v < g.blocks_per_tetris(); ++v) {
    writes.push_back(v);
  }
  const TetrisWrite tw =
      builder.build(0, writes, [](Vbn) { return false; });
  EXPECT_EQ(tw.full_stripes, kTetrisStripes);
  EXPECT_EQ(tw.partial_stripes, 0u);
  EXPECT_EQ(tw.parity_read_blocks, 0u);
  EXPECT_EQ(tw.data_blocks_written, g.blocks_per_tetris());
  EXPECT_EQ(tw.parity_blocks_written,
            static_cast<std::uint64_t>(kTetrisStripes) * g.parity_devices());
  // One chain per data device, one per parity device.
  EXPECT_EQ(tw.total_chains(), g.total_devices());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeometrySweep,
    ::testing::Values(Shape{1, 0, 128},    // single device, no parity
                      Shape{1, 1, 128},    // mirrored-ish minimal
                      Shape{2, 1, 256},    // small RAID 4
                      Shape{3, 1, 192},    // the paper's Figure 2
                      Shape{6, 1, 128},    // the paper's Figure 1
                      Shape{4, 2, 256},    // RAID-DP style double parity
                      Shape{14, 2, 64},    // wide production-like group
                      Shape{5, 3, 128}),   // triple parity
    [](const ::testing::TestParamInfo<Shape>& param_info) {
      // Built with append rather than chained operator+ (GCC 12's
      // -Werror=restrict false-positives on the rvalue-string chain).
      std::string name = "d";
      name += std::to_string(std::get<0>(param_info.param));
      name += "_p";
      name += std::to_string(std::get<1>(param_info.param));
      name += "_b";
      name += std::to_string(std::get<2>(param_info.param));
      return name;
    });

}  // namespace
}  // namespace wafl
