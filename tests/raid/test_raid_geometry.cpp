#include "raid/raid_geometry.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace wafl {
namespace {

TEST(RaidGeometry, BasicDerivedQuantities) {
  const RaidGeometry g(6, 1, 4096);
  EXPECT_EQ(g.data_devices(), 6u);
  EXPECT_EQ(g.parity_devices(), 1u);
  EXPECT_EQ(g.total_devices(), 7u);
  EXPECT_EQ(g.stripes(), 4096u);
  EXPECT_EQ(g.data_blocks(), 6u * 4096u);
  EXPECT_EQ(g.tetrises(), 64u);
  EXPECT_EQ(g.blocks_per_tetris(), 6u * 64u);
}

TEST(RaidGeometry, FirstTetrisLayout) {
  // VBNs 0..63 on device 0, 64..127 on device 1, etc. (tetris-major
  // device-major ordering).
  const RaidGeometry g(3, 1, 256);
  EXPECT_EQ(g.to_location(0), (BlockLocation{0, 0}));
  EXPECT_EQ(g.to_location(63), (BlockLocation{0, 63}));
  EXPECT_EQ(g.to_location(64), (BlockLocation{1, 0}));
  EXPECT_EQ(g.to_location(191), (BlockLocation{2, 63}));
  // Next tetris: device 0, dbn 64.
  EXPECT_EQ(g.to_location(192), (BlockLocation{0, 64}));
}

TEST(RaidGeometry, RoundTripAllBlocksSmallGroup) {
  const RaidGeometry g(4, 2, 192);
  for (Vbn v = 0; v < g.data_blocks(); ++v) {
    const BlockLocation loc = g.to_location(v);
    EXPECT_LT(loc.device, g.data_devices());
    EXPECT_LT(loc.dbn, g.device_blocks());
    EXPECT_EQ(g.to_vbn(loc), v);
  }
}

TEST(RaidGeometry, RoundTripFromLocations) {
  const RaidGeometry g(5, 1, 128);
  for (DeviceId d = 0; d < g.data_devices(); ++d) {
    for (Dbn dbn = 0; dbn < g.device_blocks(); ++dbn) {
      const Vbn v = g.to_vbn({d, dbn});
      EXPECT_LT(v, g.data_blocks());
      EXPECT_EQ(g.to_location(v), (BlockLocation{d, dbn}));
    }
  }
}

TEST(RaidGeometry, MappingIsBijective) {
  const RaidGeometry g(3, 1, 192);
  std::vector<bool> seen(g.data_blocks(), false);
  for (DeviceId d = 0; d < 3; ++d) {
    for (Dbn dbn = 0; dbn < 192; ++dbn) {
      const Vbn v = g.to_vbn({d, dbn});
      EXPECT_FALSE(seen[v]);
      seen[v] = true;
    }
  }
}

TEST(RaidGeometry, ConsecutiveVbnsAreDeviceChains) {
  // Within a 64-block chunk, consecutive VBNs are consecutive dbns on one
  // device — the long-write-chain property (§2.4).
  const RaidGeometry g(4, 1, 256);
  for (Vbn v = 0; v + 1 < g.data_blocks(); ++v) {
    const BlockLocation a = g.to_location(v);
    const BlockLocation b = g.to_location(v + 1);
    if ((v + 1) % kTetrisStripes != 0) {
      EXPECT_EQ(a.device, b.device);
      EXPECT_EQ(a.dbn + 1, b.dbn);
    }
  }
}

TEST(RaidGeometry, StripeAndTetrisOf) {
  const RaidGeometry g(3, 1, 256);
  EXPECT_EQ(g.stripe_of(0), 0u);
  EXPECT_EQ(g.stripe_of(63), 63u);
  EXPECT_EQ(g.stripe_of(64), 0u);  // device 1, dbn 0 => stripe 0
  EXPECT_EQ(g.tetris_of(0), 0u);
  EXPECT_EQ(g.tetris_of(3 * 64 - 1), 0u);
  EXPECT_EQ(g.tetris_of(3 * 64), 1u);
  EXPECT_EQ(g.tetris_base_vbn(1), 3u * 64u);
}

TEST(RaidGeometry, AaIsContiguousVbnRange) {
  // S consecutive stripes (a multiple of the tetris depth) are exactly
  // S * data_devices consecutive VBNs — the Figure 3 property.
  const RaidGeometry g(3, 1, 512);
  const std::uint32_t aa_stripes = 128;
  const std::uint64_t aa_blocks = aa_stripes * g.data_devices();
  // All blocks of AA 1 (VBNs [aa_blocks, 2*aa_blocks)) must sit in stripes
  // [128, 256).
  for (Vbn v = aa_blocks; v < 2 * aa_blocks; ++v) {
    const StripeId s = g.stripe_of(v);
    EXPECT_GE(s, 128u);
    EXPECT_LT(s, 256u);
  }
}

TEST(RaidGeometryDeathTest, NonTetrisAlignedDeviceAsserts) {
  EXPECT_DEATH(RaidGeometry(4, 1, 100), "");
}

}  // namespace
}  // namespace wafl
