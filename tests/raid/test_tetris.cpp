#include "raid/tetris.hpp"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "raid/raid_group.hpp"

namespace wafl {
namespace {

/// Occupancy helper: a set of in-use group-local VBNs.
struct Occupancy {
  std::unordered_set<Vbn> used;
  bool operator()(Vbn v) const { return used.contains(v); }
};

TEST(TetrisBuilder, EmptyWindowFullStripes) {
  // Writing every block of an empty tetris => 64 full stripes, no reads.
  const RaidGeometry g(3, 1, 128);
  TetrisBuilder builder(g);
  std::vector<Vbn> writes;
  for (Vbn v = 0; v < g.blocks_per_tetris(); ++v) {
    writes.push_back(v);
  }
  const TetrisWrite tw = builder.build(0, writes, Occupancy{});
  EXPECT_EQ(tw.full_stripes, 64u);
  EXPECT_EQ(tw.partial_stripes, 0u);
  EXPECT_EQ(tw.untouched_stripes, 0u);
  EXPECT_EQ(tw.parity_read_blocks, 0u);
  EXPECT_EQ(tw.data_blocks_written, g.blocks_per_tetris());
  EXPECT_EQ(tw.parity_blocks_written, 64u);
  // One maximal chain per data device plus one on the parity device.
  EXPECT_EQ(tw.total_chains(), 4u);
  ASSERT_EQ(tw.device_runs.size(), 3u);
  for (const auto& runs : tw.device_runs) {
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0], (WriteRun{0, 64}));
  }
  ASSERT_EQ(tw.parity_runs.size(), 1u);
  EXPECT_EQ(tw.parity_runs[0][0], (WriteRun{0, 64}));
}

TEST(TetrisBuilder, SingleBlockIsPartialStripe) {
  const RaidGeometry g(4, 1, 128);
  TetrisBuilder builder(g);
  const std::vector<Vbn> writes = {0};
  const TetrisWrite tw = builder.build(0, writes, Occupancy{});
  EXPECT_EQ(tw.full_stripes, 0u);
  EXPECT_EQ(tw.partial_stripes, 1u);
  EXPECT_EQ(tw.untouched_stripes, 63u);
  // min(w + p, d - w) = min(1 + 1, 4 - 1) = 2 reads.
  EXPECT_EQ(tw.parity_read_blocks, 2u);
  EXPECT_EQ(tw.parity_blocks_written, 1u);
}

TEST(TetrisBuilder, StripeWithResidentDataIsPartial) {
  // Stripe 0 has an in-use block on device 2; writing the other blocks is
  // a partial stripe even though every free block is filled.
  const RaidGeometry g(3, 1, 128);
  TetrisBuilder builder(g);
  Occupancy occ;
  occ.used.insert(g.to_vbn({2, 0}));  // device 2, stripe 0

  std::vector<Vbn> writes = {g.to_vbn({0, 0}), g.to_vbn({1, 0})};
  std::sort(writes.begin(), writes.end());
  const TetrisWrite tw = builder.build(0, writes, occ);
  EXPECT_EQ(tw.full_stripes, 0u);
  EXPECT_EQ(tw.partial_stripes, 1u);
  // min(w + p, d - w) = min(2 + 1, 3 - 2) = 1 read.
  EXPECT_EQ(tw.parity_read_blocks, 1u);
}

TEST(TetrisBuilder, MixedFullAndPartial) {
  const RaidGeometry g(2, 1, 128);
  TetrisBuilder builder(g);
  Occupancy occ;
  occ.used.insert(g.to_vbn({1, 5}));  // stripe 5 partially occupied

  // Write every free block of the window.
  std::vector<Vbn> writes;
  for (Vbn v = 0; v < g.blocks_per_tetris(); ++v) {
    if (!occ(v)) writes.push_back(v);
  }
  const TetrisWrite tw = builder.build(0, writes, occ);
  EXPECT_EQ(tw.full_stripes, 63u);
  EXPECT_EQ(tw.partial_stripes, 1u);
  EXPECT_EQ(tw.untouched_stripes, 0u);
  // Device 1 has a hole at dbn 5: two chains there, one on device 0.
  ASSERT_EQ(tw.device_runs[1].size(), 2u);
  EXPECT_EQ(tw.device_runs[1][0], (WriteRun{0, 5}));
  EXPECT_EQ(tw.device_runs[1][1], (WriteRun{6, 58}));
  EXPECT_EQ(tw.device_runs[0].size(), 1u);
}

TEST(TetrisBuilder, SecondTetrisWindowOffsets) {
  const RaidGeometry g(3, 1, 256);
  TetrisBuilder builder(g);
  const Vbn base = g.tetris_base_vbn(2);
  std::vector<Vbn> writes;
  for (Vbn v = base; v < base + 64; ++v) {  // device 0's chunk of tetris 2
    writes.push_back(v);
  }
  const TetrisWrite tw = builder.build(2, writes, Occupancy{});
  ASSERT_EQ(tw.device_runs[0].size(), 1u);
  EXPECT_EQ(tw.device_runs[0][0], (WriteRun{128, 64}));
  EXPECT_TRUE(tw.device_runs[1].empty());
  // Parity runs live in the same dbn window.
  EXPECT_EQ(tw.parity_runs[0][0], (WriteRun{128, 64}));
}

TEST(TetrisBuilder, DualParityWritesBothDevices) {
  const RaidGeometry g(4, 2, 128);
  TetrisBuilder builder(g);
  const std::vector<Vbn> writes = {0, 1};
  const TetrisWrite tw = builder.build(0, writes, Occupancy{});
  EXPECT_EQ(tw.parity_blocks_written, 4u);  // 2 stripes x 2 parity devices
  ASSERT_EQ(tw.parity_runs.size(), 2u);
  EXPECT_EQ(tw.parity_runs[0][0], (WriteRun{0, 2}));
  EXPECT_EQ(tw.parity_runs[1][0], (WriteRun{0, 2}));
  // Per stripe: w=1, min(1 + 2, 4 - 1) = 3 reads, 2 stripes => 6.
  EXPECT_EQ(tw.parity_read_blocks, 6u);
}

TEST(TetrisBuilder, NoWrites) {
  const RaidGeometry g(3, 1, 128);
  TetrisBuilder builder(g);
  const TetrisWrite tw = builder.build(0, {}, Occupancy{});
  EXPECT_EQ(tw.touched_stripes(), 0u);
  EXPECT_EQ(tw.untouched_stripes, 64u);
  EXPECT_EQ(tw.total_chains(), 0u);
}

TEST(RaidGroupStats, AccumulateTracksPerDevice) {
  const RaidGeometry g(3, 1, 128);
  RaidGroup rg(0, g);
  TetrisBuilder builder(g);
  std::vector<Vbn> writes;
  for (Vbn v = 0; v < 64; ++v) writes.push_back(v);  // device 0 only
  const TetrisWrite tw = builder.build(0, writes, Occupancy{});
  rg.stats().accumulate(tw);
  EXPECT_EQ(rg.stats().data_blocks_per_device[0], 64u);
  EXPECT_EQ(rg.stats().data_blocks_per_device[1], 0u);
  EXPECT_EQ(rg.stats().parity_blocks_per_device[0], 64u);
  EXPECT_EQ(rg.stats().tetrises_written, 1u);
  EXPECT_EQ(rg.stats().partial_stripes, 64u);
  EXPECT_DOUBLE_EQ(rg.stats().full_stripe_fraction(), 0.0);

  rg.reset_stats();
  EXPECT_EQ(rg.stats().tetrises_written, 0u);
  EXPECT_EQ(rg.stats().data_blocks_per_device.size(), 3u);
}

TEST(TetrisBuilderDeathTest, WritingInUseBlockAsserts) {
  const RaidGeometry g(3, 1, 128);
  TetrisBuilder builder(g);
  Occupancy occ;
  occ.used.insert(0);
  const std::vector<Vbn> writes = {0};
  EXPECT_DEATH(builder.build(0, writes, occ), "in-use");
}

}  // namespace
}  // namespace wafl
