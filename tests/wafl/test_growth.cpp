// RAID-group growth (§3.1: "On RAID group creation and growth, WAFL
// maintains the mapping of physical VBN ranges to storage devices") — the
// mechanism behind §4.2's imbalanced-age aggregates.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "wafl/consistency_point.hpp"
#include "wafl/mount.hpp"

namespace wafl {
namespace {

RaidGroupConfig hdd_group(std::uint64_t device_blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 3;
  rg.parity_devices = 1;
  rg.device_blocks = device_blocks;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 1024;
  return rg;
}

std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<DirtyBlock> out;
  for (std::uint64_t l = lo; l < hi; ++l) out.push_back({0, l});
  return out;
}

TEST(Growth, AddsCapacityAndVbnRange) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  Aggregate agg(cfg, 1);
  const std::uint64_t before = agg.total_blocks();

  const RaidGroupId rg = agg.add_raid_group(hdd_group(32 * 1024));
  EXPECT_EQ(rg, 1u);
  EXPECT_EQ(agg.raid_group_count(), 2u);
  EXPECT_EQ(agg.total_blocks(), before + 3u * 32 * 1024);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks());
  // The new group's VBN range starts where the old space ended.
  EXPECT_EQ(agg.rg_base(1), before);
  EXPECT_EQ(agg.rg_cache(1).size(), agg.rg_layout(1).aa_count());
}

TEST(Growth, WritesSpreadOntoTheNewGroup) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  Aggregate agg(cfg, 1);
  FlexVolConfig vol;
  vol.file_blocks = 80'000;
  vol.vvbn_blocks = 4ull * kFlatAaBlocks;
  agg.add_volume(vol);
  // Nearly fill the original group (49,152 blocks) before growing — the
  // §4.2 scenario: capacity added because the old shelf ran low.
  ConsistencyPoint::run(agg, range(0, 40'000));

  agg.add_raid_group(hdd_group(16 * 1024));
  agg.raid_group(0).reset_stats();
  ConsistencyPoint::run(agg, range(40'000, 70'000));
  // Both groups take writes, but the old group has only ~9 K free blocks,
  // so the fresh group absorbs the bulk.
  const auto rg0 = agg.raid_group(0).stats().data_blocks_written;
  const auto rg1 = agg.raid_group(1).stats().data_blocks_written;
  EXPECT_GT(rg0, 0u);
  EXPECT_GT(rg1, 2 * rg0);
}

TEST(Growth, GrownAggregateSurvivesOverwritesAndInvariants) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  Aggregate agg(cfg, 2);
  FlexVolConfig vol;
  vol.file_blocks = 100'000;
  vol.vvbn_blocks = 6ull * kFlatAaBlocks;
  agg.add_volume(vol);
  ConsistencyPoint::run(agg, range(0, 40'000));

  agg.add_raid_group(hdd_group(32 * 1024));
  agg.add_raid_group(hdd_group(16 * 1024));
  ConsistencyPoint::run(agg, range(20'000, 90'000));
  ConsistencyPoint::run(agg, range(0, 50'000));

  const FlexVol& v = agg.volume(0);
  std::set<Vbn> pvbns;
  std::uint64_t mapped = 0;
  for (std::uint64_t l = 0; l < v.file_blocks(); ++l) {
    if (!v.is_mapped(l)) continue;
    ++mapped;
    const Vbn p = v.pvbn_of(l);
    ASSERT_TRUE(pvbns.insert(p).second);
    ASSERT_TRUE(agg.activemap().is_allocated(p));
  }
  EXPECT_EQ(agg.total_blocks() - agg.free_blocks(), mapped);
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    const auto& layout = agg.rg_layout(rg);
    ASSERT_EQ(agg.rg_scoreboard(rg).total_free(),
              agg.activemap().metafile().free_in_range(
                  layout.base(), layout.base() + layout.total_blocks()));
    ASSERT_TRUE(agg.rg_cache(rg).validate());
  }
}

TEST(Growth, MountAfterGrowthCoversNewGroup) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  Aggregate agg(cfg, 3);
  FlexVolConfig vol;
  vol.file_blocks = 60'000;
  vol.vvbn_blocks = 3ull * kFlatAaBlocks;
  agg.add_volume(vol);
  ConsistencyPoint::run(agg, range(0, 20'000));

  agg.add_raid_group(hdd_group(16 * 1024));
  ConsistencyPoint::run(agg, range(20'000, 40'000));

  // TopAA seeds both groups; the scan path covers the grown bitmap.
  const MountReport fast = mount_all(agg, /*use_topaa=*/true);
  EXPECT_EQ(fast.rgs_seeded, 2u);
  const MountReport slow = mount_all(agg, /*use_topaa=*/false);
  EXPECT_EQ(slow.gate_block_reads,
            agg.activemap().metafile().metafile_blocks() +
                agg.volume(0).activemap().metafile().metafile_blocks());

  const CpStats stats = ConsistencyPoint::run(agg, range(40'000, 42'000));
  EXPECT_EQ(stats.blocks_written, 2000u);
}

TEST(Growth, GrowWithObjectStorePool) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  Aggregate agg(cfg, 4);
  RaidGroupConfig pool;
  pool.data_devices = 1;
  pool.parity_devices = 0;
  pool.device_blocks = 2 * kFlatAaBlocks;
  pool.media.type = MediaType::kObjectStore;
  const RaidGroupId rg = agg.add_raid_group(pool);
  EXPECT_TRUE(agg.rg_is_raid_agnostic(rg));

  FlexVolConfig vol;
  vol.file_blocks = 80'000;
  vol.vvbn_blocks = 3ull * kFlatAaBlocks;
  agg.add_volume(vol);
  ConsistencyPoint::run(agg, range(0, 70'000));
  EXPECT_GT(agg.raid_group(rg).stats().data_blocks_written, 0u);
}

}  // namespace
}  // namespace wafl
