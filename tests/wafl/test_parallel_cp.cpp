// Parallel per-volume CP processing (the companion-work [10] direction):
// the parallel path must be bit-identical to the serial path and uphold
// every invariant under concurrent volume slices.
#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"

namespace wafl {
namespace {

constexpr std::size_t kVols = 6;

std::unique_ptr<Aggregate> make_agg(ThreadPool* pool = nullptr) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 64 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 2048;
  cfg.raid_groups = {rg, rg};
  auto agg =
      std::make_unique<Aggregate>(cfg, 9, Runtime{}.with_pool(pool));
  for (std::size_t v = 0; v < kVols; ++v) {
    FlexVolConfig vol;
    vol.file_blocks = 40'000;
    vol.vvbn_blocks = 3ull * kFlatAaBlocks;
    vol.aa_blocks = 8192;
    agg->add_volume(vol);
  }
  return agg;
}

std::vector<DirtyBlock> mixed_batch(Rng& rng, std::uint64_t per_vol) {
  std::vector<DirtyBlock> out;
  for (VolumeId v = 0; v < kVols; ++v) {
    // Interleave volumes deliberately: the CP groups them itself.
    for (std::uint64_t i = 0; i < per_vol; ++i) {
      out.push_back({v, rng.below(30'000)});
    }
  }
  // Coalesce duplicates per (vol, logical).
  std::sort(out.begin(), out.end(),
            [](const DirtyBlock& a, const DirtyBlock& b) {
              return a.vol != b.vol ? a.vol < b.vol : a.logical < b.logical;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const DirtyBlock& a, const DirtyBlock& b) {
                          return a.vol == b.vol && a.logical == b.logical;
                        }),
            out.end());
  return out;
}

TEST(ParallelCp, MatchesSerialExactly) {
  ThreadPool pool(4);
  auto serial = make_agg();
  auto parallel = make_agg(&pool);
  Rng rng_a(55), rng_b(55);

  for (int cp = 0; cp < 8; ++cp) {
    const auto batch_a = mixed_batch(rng_a, 3'000);
    const auto batch_b = mixed_batch(rng_b, 3'000);
    ASSERT_EQ(batch_a.size(), batch_b.size());
    const CpStats s = ConsistencyPoint::run(*serial, batch_a);
    const CpStats p = ConsistencyPoint::run(*parallel, batch_b);
    ASSERT_EQ(s.blocks_written, p.blocks_written);
    ASSERT_EQ(s.blocks_freed, p.blocks_freed);
    ASSERT_EQ(s.vol_meta_blocks, p.vol_meta_blocks);
    ASSERT_EQ(s.agg_meta_blocks, p.agg_meta_blocks);
    ASSERT_EQ(s.vol_bits_scanned, p.vol_bits_scanned);
  }

  // Bit-identical file-system state.
  ASSERT_EQ(serial->free_blocks(), parallel->free_blocks());
  for (VolumeId v = 0; v < kVols; ++v) {
    const FlexVol& a = serial->volume(v);
    const FlexVol& b = parallel->volume(v);
    ASSERT_EQ(a.free_blocks(), b.free_blocks());
    for (std::uint64_t l = 0; l < a.file_blocks(); ++l) {
      ASSERT_EQ(a.is_mapped(l), b.is_mapped(l));
      if (a.is_mapped(l)) {
        ASSERT_EQ(a.vvbn_of(l), b.vvbn_of(l));
        ASSERT_EQ(a.pvbn_of(l), b.pvbn_of(l));
      }
    }
  }
}

TEST(ParallelCp, InvariantsUnderChurn) {
  ThreadPool pool(4);
  auto agg = make_agg(&pool);
  Rng rng(77);
  for (int cp = 0; cp < 12; ++cp) {
    ConsistencyPoint::run(*agg, mixed_batch(rng, 2'000));
    for (VolumeId v = 0; v < kVols; ++v) {
      const FlexVol& vol = agg->volume(v);
      ASSERT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
      ASSERT_TRUE(vol.cache().validate());
    }
    for (RaidGroupId rg = 0; rg < agg->raid_group_count(); ++rg) {
      ASSERT_TRUE(agg->rg_cache(rg).validate());
    }
  }
  // Ownership coherent across all volumes.
  std::uint64_t owned = 0;
  for (Vbn p = 0; p < agg->total_blocks(); ++p) {
    if (const auto owner = agg->owner_of(p)) {
      ++owned;
      ASSERT_EQ(agg->volume(owner->vol).pvbn_of_vvbn(owner->vvbn),
                p);
    }
  }
  EXPECT_EQ(owned, agg->total_blocks() - agg->free_blocks());
}

TEST(ParallelCp, SingleVolumeFallsBackToSerialPath) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 3;
  rg.parity_devices = 1;
  rg.device_blocks = 16 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 1024;
  cfg.raid_groups = {rg};
  ThreadPool pool(2);
  Aggregate agg(cfg, 2, Runtime{}.with_pool(&pool));
  FlexVolConfig vol;
  vol.file_blocks = 20'000;
  vol.vvbn_blocks = kFlatAaBlocks;
  agg.add_volume(vol);
  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 0; l < 10'000; ++l) dirty.push_back({0, l});
  const CpStats stats = ConsistencyPoint::run(agg, dirty);
  EXPECT_EQ(stats.blocks_written, 10'000u);
}

}  // namespace
}  // namespace wafl
