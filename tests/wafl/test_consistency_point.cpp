#include "wafl/consistency_point.hpp"

#include "sim/aging.hpp"
#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace wafl {
namespace {

struct Rig {
  explicit Rig(AaSelectPolicy policy = AaSelectPolicy::kCache,
               MediaType media = MediaType::kHdd)
      : agg(make_config(policy, media), 1) {
    FlexVolConfig vcfg;
    vcfg.vvbn_blocks = 64 * 1024;
    vcfg.file_blocks = 32 * 1024;
    vcfg.aa_blocks = 4096;
    vcfg.policy = policy;
    agg.add_volume(vcfg);
  }

  static AggregateConfig make_config(AaSelectPolicy policy, MediaType media) {
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 4;
    rg.parity_devices = 1;
    rg.device_blocks = 32 * 1024;
    rg.media.type = media;
    if (media == MediaType::kSsd) {
      rg.media.ssd.pages_per_erase_block = 1024;
    }
    rg.aa_stripes = 2048;
    cfg.raid_groups = {rg};
    cfg.policy = policy;
    return cfg;
  }

  std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
    std::vector<DirtyBlock> out;
    for (std::uint64_t l = lo; l < hi; ++l) {
      out.push_back({0, l});
    }
    return out;
  }

  Aggregate agg;
};

TEST(ConsistencyPoint, FirstWriteMapsEveryBlock) {
  Rig rig;
  const auto dirty = rig.range(0, 5000);
  const CpStats stats = ConsistencyPoint::run(rig.agg, dirty);
  EXPECT_EQ(stats.blocks_written, 5000u);
  EXPECT_EQ(stats.blocks_freed, 0u);  // nothing overwritten yet
  FlexVol& vol = rig.agg.volume(0);
  for (std::uint64_t l = 0; l < 5000; ++l) {
    ASSERT_TRUE(vol.is_mapped(l));
    EXPECT_TRUE(vol.activemap().is_allocated(vol.vvbn_of(l)));
    EXPECT_TRUE(rig.agg.activemap().is_allocated(vol.pvbn_of(l)));
  }
  EXPECT_EQ(rig.agg.free_blocks(), rig.agg.total_blocks() - 5000);
  EXPECT_EQ(vol.free_blocks(), 64u * 1024u - 5000u);
}

TEST(ConsistencyPoint, OverwriteFreesExactlyOldBlocks) {
  Rig rig;
  ConsistencyPoint::run(rig.agg, rig.range(0, 5000));
  const std::uint64_t agg_free = rig.agg.free_blocks();
  const std::uint64_t vol_free = rig.agg.volume(0).free_blocks();

  const CpStats stats = ConsistencyPoint::run(rig.agg, rig.range(0, 2000));
  EXPECT_EQ(stats.blocks_written, 2000u);
  EXPECT_EQ(stats.blocks_freed, 2000u);
  // Steady state: allocations balance frees exactly.
  EXPECT_EQ(rig.agg.free_blocks(), agg_free);
  EXPECT_EQ(rig.agg.volume(0).free_blocks(), vol_free);
}

TEST(ConsistencyPoint, StorageAndMetaAccounting) {
  Rig rig;
  const CpStats stats = ConsistencyPoint::run(rig.agg, rig.range(0, 4096));
  EXPECT_GT(stats.storage_time_ns, 0u);
  EXPECT_GT(stats.tetrises, 0u);
  EXPECT_GT(stats.meta_flush_blocks, 0u);
  EXPECT_GE(stats.vol_meta_blocks, 1u);
  EXPECT_GE(stats.agg_meta_blocks, 1u);
  EXPECT_GT(stats.vol_bits_scanned, 0u);
  EXPECT_GT(stats.agg_bits_scanned, 0u);
  EXPECT_EQ(stats.vol_pick_free_frac.count(), stats.hbps_replenishes + 1);
}

TEST(ConsistencyPoint, EmptyCpIsHarmless) {
  Rig rig;
  const CpStats stats = ConsistencyPoint::run(rig.agg, {});
  EXPECT_EQ(stats.blocks_written, 0u);
  EXPECT_EQ(stats.tetrises, 0u);
}

TEST(ConsistencyPoint, ManyCpsMaintainGlobalInvariants) {
  Rig rig;
  ConsistencyPoint::run(rig.agg, rig.range(0, 20'000));
  for (int cp = 0; cp < 20; ++cp) {
    const std::uint64_t lo = static_cast<std::uint64_t>(cp) * 500;
    ConsistencyPoint::run(rig.agg, rig.range(lo, lo + 4000));
    // Volume scoreboard total == volume free count, every CP.
    const FlexVol& vol = rig.agg.volume(0);
    ASSERT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
    ASSERT_TRUE(vol.cache().validate());
    ASSERT_TRUE(rig.agg.rg_cache(0).validate());
  }
  // Live blocks: union of [0,20000) and the overwrite windows — still
  // exactly the mapped count.
  const FlexVol& vol = rig.agg.volume(0);
  std::uint64_t mapped = 0;
  for (std::uint64_t l = 0; l < vol.file_blocks(); ++l) {
    if (vol.is_mapped(l)) ++mapped;
  }
  EXPECT_EQ(rig.agg.total_blocks() - rig.agg.free_blocks(), mapped);
  EXPECT_EQ(vol.config().vvbn_blocks - vol.free_blocks(), mapped);
}

TEST(ConsistencyPoint, VvbnAndPvbnMappingsStayInSync) {
  Rig rig;
  ConsistencyPoint::run(rig.agg, rig.range(0, 8000));
  ConsistencyPoint::run(rig.agg, rig.range(1000, 3000));
  const FlexVol& vol = rig.agg.volume(0);
  // Every mapped logical block has a live vvbn AND a live pvbn; distinct
  // logical blocks never share either.
  std::set<Vbn> vvbns, pvbns;
  for (std::uint64_t l = 0; l < 8000; ++l) {
    ASSERT_TRUE(vol.is_mapped(l));
    EXPECT_TRUE(vvbns.insert(vol.vvbn_of(l)).second);
    EXPECT_TRUE(pvbns.insert(vol.pvbn_of(l)).second);
  }
}

TEST(ConsistencyPoint, SsdWriteAmpEmergesUnderChurn) {
  Rig rig(AaSelectPolicy::kCache, MediaType::kSsd);
  // Fill most of the volume, then churn overwrites.
  ConsistencyPoint::run(rig.agg, rig.range(0, 30'000));
  rig.agg.reset_wear_windows();
  for (int cp = 0; cp < 30; ++cp) {
    const std::uint64_t lo = static_cast<std::uint64_t>(cp * 997) % 25'000;
    ConsistencyPoint::run(rig.agg, rig.range(lo, lo + 3000));
  }
  // Churn on a mostly-full SSD aggregate must show some relocation.
  EXPECT_GE(rig.agg.mean_write_amplification(), 1.0);
}

TEST(ConsistencyPoint, CacheGuidedAllocationBeatsRandomOnAgedVolume) {
  // §4.1.2 end-to-end: on an aged, fragmented volume the HBPS-guided
  // allocator checks out emptier AAs than random selection (the paper's
  // 78% vs 61% free), and therefore does less free-block search work per
  // allocated block (fewer bitmap bits examined).
  auto make = [](AaSelectPolicy policy) {
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 4;
    rg.parity_devices = 1;
    rg.device_blocks = 128 * 1024;
    rg.media.type = MediaType::kHdd;
    rg.aa_stripes = 4096;
    cfg.raid_groups = {rg};
    cfg.policy = policy;
    auto agg = std::make_unique<Aggregate>(cfg, 1);
    FlexVolConfig vcfg;
    vcfg.vvbn_blocks = 12ull * kFlatAaBlocks;
    vcfg.file_blocks = 300'000;
    vcfg.aa_blocks = kFlatAaBlocks;
    vcfg.policy = policy;
    agg->add_volume(vcfg);
    return agg;
  };
  auto cache_agg = make(AaSelectPolicy::kCache);
  auto random_agg = make(AaSelectPolicy::kRandom);

  // Age both identically: fill 70%, then one pass of skewed overwrites.
  AgingConfig aging;
  aging.fill_fraction = 0.7;
  aging.overwrite_passes = 1.0;
  aging.zipf_theta = 0.9;
  aging.cp_blocks = 32'768;
  age_filesystem(*cache_agg, std::array{VolumeId{0}}, aging);
  age_filesystem(*random_agg, std::array{VolumeId{0}}, aging);

  // Steady-state overwrite CPs.
  Rng rng(77);
  RandomOverwriteWorkload wl({0}, 210'000, 1, 0.9);
  CpStats cache_stats, random_stats;
  for (int cp = 0; cp < 8; ++cp) {
    std::vector<DirtyBlock> batch;
    std::set<std::uint64_t> dedup;
    while (batch.size() < 16'384) {
      const DirtyBlock db = wl.next_write(rng);
      if (dedup.insert(db.logical).second) batch.push_back(db);
    }
    cache_stats.merge(ConsistencyPoint::run(*cache_agg, batch));
    random_stats.merge(ConsistencyPoint::run(*random_agg, batch));
  }

  // Chosen-AA quality: cache picks clearly emptier AAs.
  EXPECT_GT(cache_stats.vol_pick_free_frac.mean(),
            random_stats.vol_pick_free_frac.mean());
  // Search cost: fewer bits examined per allocated block.
  const double cache_bits = static_cast<double>(cache_stats.vol_bits_scanned);
  const double random_bits =
      static_cast<double>(random_stats.vol_bits_scanned);
  EXPECT_LT(cache_bits, random_bits);
}

}  // namespace
}  // namespace wafl
