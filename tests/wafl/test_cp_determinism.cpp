// CP determinism contract: both halves of the parallel CP — the
// plan/execute physical allocation (WriteAllocator::allocate) and the CP
// boundary (WriteAllocator::finish_cp) — must be bit-identical at every
// worker count.  Demand is partitioned serially (allocation plan; per-group
// frees in deferral order), the fanned-out work touches only group-disjoint
// state, and everything shared (staged allocation deltas, bitmap-metafile
// accounting and flush, TopAA commits, CpStats folds) is serialized in
// fixed group order — so a serial run, a 1-worker pool, and an 8-worker
// pool must produce the same stats, the same media bytes, the same
// scoreboards, and the same persisted TopAA bytes, across heap-managed
// RAID groups and HBPS-managed object-store pools in multiple geometries.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"
#include "wafl/overlapped_cp.hpp"

namespace wafl {
namespace {

constexpr std::size_t kVols = 4;
constexpr int kGeometries = 2;

// Geometry 0: symmetric heap-managed HDD groups plus an HBPS-managed
// object-store pool, with the §3.3.1 skip bias enabled so the rotation
// takes the biased path too.  Geometry 1: asymmetric widths and media — a
// narrow SSD group, a wide HDD group and a smaller pool — so the plan's
// per-group capacities, tetris widths and device timings all differ.
std::unique_ptr<Aggregate> make_agg(int geometry,
                                    ThreadPool* pool = nullptr) {
  AggregateConfig cfg;
  if (geometry == 0) {
    RaidGroupConfig hdd;
    hdd.data_devices = 4;
    hdd.parity_devices = 1;
    hdd.device_blocks = 64 * 1024;
    hdd.media.type = MediaType::kHdd;
    hdd.aa_stripes = 2048;

    RaidGroupConfig os;
    os.data_devices = 1;
    os.parity_devices = 0;
    os.device_blocks = 8 * kFlatAaBlocks;
    os.media.type = MediaType::kObjectStore;

    cfg.raid_groups = {hdd, hdd, os};
  } else {
    RaidGroupConfig ssd;
    ssd.data_devices = 3;
    ssd.parity_devices = 1;
    ssd.device_blocks = 32 * 1024;
    ssd.media.type = MediaType::kSsd;
    ssd.media.ssd.pages_per_erase_block = 1024;
    ssd.aa_stripes = 1024;

    RaidGroupConfig hdd;
    hdd.data_devices = 8;
    hdd.parity_devices = 1;
    hdd.device_blocks = 64 * 1024;
    hdd.media.type = MediaType::kHdd;
    hdd.aa_stripes = 2048;

    RaidGroupConfig os;
    os.data_devices = 1;
    os.parity_devices = 0;
    os.device_blocks = 4 * kFlatAaBlocks;
    os.media.type = MediaType::kObjectStore;

    cfg.raid_groups = {ssd, hdd, os};
  }
  cfg.rg_skip_free_fraction = 0.02;
  auto agg = std::make_unique<Aggregate>(cfg, 20180813,
                                         Runtime{}.with_pool(pool));
  for (std::size_t v = 0; v < kVols; ++v) {
    FlexVolConfig vol;
    vol.file_blocks = 30'000;
    vol.vvbn_blocks = 3ull * kFlatAaBlocks;
    vol.aa_blocks = 8192;
    agg->add_volume(vol);
  }
  return agg;
}

std::vector<DirtyBlock> mixed_batch(Rng& rng, std::uint64_t per_vol) {
  std::vector<DirtyBlock> out;
  for (VolumeId v = 0; v < kVols; ++v) {
    for (std::uint64_t i = 0; i < per_vol; ++i) {
      out.push_back({v, rng.below(25'000)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DirtyBlock& a, const DirtyBlock& b) {
              return a.vol != b.vol ? a.vol < b.vol : a.logical < b.logical;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const DirtyBlock& a, const DirtyBlock& b) {
                          return a.vol == b.vol && a.logical == b.logical;
                        }),
            out.end());
  return out;
}

// Runs the same 6-CP workload (same seed) and returns the per-CP stats.
std::vector<CpStats> run_workload(Aggregate& agg) {
  std::vector<CpStats> out;
  Rng rng(4242);
  for (int cp = 0; cp < 6; ++cp) {
    out.push_back(ConsistencyPoint::run(agg, mixed_batch(rng, 2'500)));
  }
  return out;
}

void expect_same_stats(const CpStats& a, const CpStats& b, int cp) {
  SCOPED_TRACE("cp " + std::to_string(cp));
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.blocks_freed, b.blocks_freed);
  EXPECT_EQ(a.vol_meta_blocks, b.vol_meta_blocks);
  EXPECT_EQ(a.agg_meta_blocks, b.agg_meta_blocks);
  EXPECT_EQ(a.meta_flush_blocks, b.meta_flush_blocks);
  EXPECT_EQ(a.tetrises, b.tetrises);
  EXPECT_EQ(a.full_stripes, b.full_stripes);
  EXPECT_EQ(a.partial_stripes, b.partial_stripes);
  EXPECT_EQ(a.parity_read_blocks, b.parity_read_blocks);
  EXPECT_EQ(a.write_chains, b.write_chains);
  EXPECT_EQ(a.storage_time_ns, b.storage_time_ns);
  EXPECT_EQ(a.hbps_replenishes, b.hbps_replenishes);
  EXPECT_EQ(a.vol_bits_scanned, b.vol_bits_scanned);
  EXPECT_EQ(a.agg_bits_scanned, b.agg_bits_scanned);
  EXPECT_EQ(a.agg_pick_free_frac.count(), b.agg_pick_free_frac.count());
  EXPECT_DOUBLE_EQ(a.agg_pick_free_frac.mean(), b.agg_pick_free_frac.mean());
}

// Every persisted byte: aggregate bitmap metafile, TopAA slots and the
// per-volume metafile stores, compared block by block via peek (bypassing
// any in-memory caches — this is the media a crash would leave behind).
void expect_same_media(Aggregate& a, Aggregate& b) {
  alignas(8) std::byte ba[kBlockSize];
  alignas(8) std::byte bb[kBlockSize];
  const auto cmp = [&](const BlockStore& sa, const BlockStore& sb,
                       const char* tag) {
    ASSERT_EQ(sa.capacity_blocks(), sb.capacity_blocks());
    for (std::uint64_t blk = 0; blk < sa.capacity_blocks(); ++blk) {
      sa.peek(blk, ba);
      sb.peek(blk, bb);
      ASSERT_EQ(std::memcmp(ba, bb, kBlockSize), 0)
          << tag << " block " << blk << " differs between worker counts";
    }
  };
  cmp(a.meta_store(), b.meta_store(), "agg meta");
  cmp(a.topaa_store(), b.topaa_store(), "agg topaa");
  ASSERT_EQ(a.volume_count(), b.volume_count());
  for (VolumeId v = 0; v < a.volume_count(); ++v) {
    cmp(a.volume(v).store(), b.volume(v).store(), "vol store");
  }
}

// Bit-identical end state: activemap words, per-group scoreboards, and the
// persisted TopAA bytes (1 block for heap groups, 2 for HBPS pools; the
// unwritten tail of a heap group's slot reads as zeroes in both).
void expect_same_state(Aggregate& a, Aggregate& b) {
  ASSERT_EQ(a.total_blocks(), b.total_blocks());
  EXPECT_EQ(a.free_blocks(), b.free_blocks());
  EXPECT_EQ(a.activemap().metafile().bits().words(),
            b.activemap().metafile().bits().words());
  ASSERT_EQ(a.raid_group_count(), b.raid_group_count());
  for (RaidGroupId rg = 0; rg < a.raid_group_count(); ++rg) {
    SCOPED_TRACE("rg " + std::to_string(rg));
    const AaScoreBoard& board_a = a.rg_scoreboard(rg);
    const AaScoreBoard& board_b = b.rg_scoreboard(rg);
    ASSERT_EQ(board_a.aa_count(), board_b.aa_count());
    for (AaId aa = 0; aa < board_a.aa_count(); ++aa) {
      ASSERT_EQ(board_a.score(aa), board_b.score(aa)) << "aa " << aa;
    }
    for (std::uint64_t blk = 0; blk < TopAaFile::kRaidAgnosticBlocks; ++blk) {
      std::array<std::byte, kBlockSize> buf_a{};
      std::array<std::byte, kBlockSize> buf_b{};
      a.topaa_store().read(a.rg_topaa_block(rg) + blk, buf_a);
      b.topaa_store().read(b.rg_topaa_block(rg) + blk, buf_b);
      EXPECT_EQ(buf_a, buf_b) << "TopAA block " << blk;
    }
  }
  expect_same_media(a, b);
}

// The oracle: a serial run (workers = 0, no pool) of the seeded multi-CP
// workload, against which every pooled run — including a 1-worker pool,
// which exercises the parallel code path without concurrency — must be
// bit-identical, in both geometries.
TEST(CpDeterminism, WorkerCountInvariant) {
  for (int geo = 0; geo < kGeometries; ++geo) {
    SCOPED_TRACE("geometry " + std::to_string(geo));
    auto serial = make_agg(geo);
    const auto serial_stats = run_workload(*serial);

    for (const std::size_t workers : {1u, 2u, 8u}) {
      SCOPED_TRACE(std::to_string(workers) + " workers");
      ThreadPool pool(workers);
      auto parallel = make_agg(geo, &pool);
      const auto parallel_stats = run_workload(*parallel);
      ASSERT_EQ(serial_stats.size(), parallel_stats.size());
      for (std::size_t cp = 0; cp < serial_stats.size(); ++cp) {
        expect_same_stats(serial_stats[cp], parallel_stats[cp],
                          static_cast<int>(cp));
      }
      expect_same_state(*serial, *parallel);
    }
  }
}

TEST(CpDeterminism, RepeatedParallelRunsIdentical) {
  // Same pool size twice: rules out run-to-run scheduling effects (the
  // classic symptom of a hidden ordering dependence).
  ThreadPool pool_a(8);
  ThreadPool pool_b(8);
  auto first = make_agg(0, &pool_a);
  auto second = make_agg(0, &pool_b);
  const auto stats_a = run_workload(*first);
  const auto stats_b = run_workload(*second);
  for (std::size_t cp = 0; cp < stats_a.size(); ++cp) {
    expect_same_stats(stats_a[cp], stats_b[cp], static_cast<int>(cp));
  }
  expect_same_state(*first, *second);
}

// The overlapped-driver oracle (DESIGN.md §13): freeze() captures exactly
// the blocks submitted so far, in submission order, so a run that admits
// intake *while a drain is in flight* must leave bit-identical media and
// stats to a stop-the-world run of the same batches — at every worker
// count, in both geometries.  The STW comparator runs each seeded batch as
// two half-CPs, because the overlapped side freezes the first half, takes
// the second half as intake during the drain, and freezes it as the next
// CP.
TEST(CpDeterminism, OverlappedMatchesStopTheWorld) {
  for (int geo = 0; geo < kGeometries; ++geo) {
    SCOPED_TRACE("geometry " + std::to_string(geo));
    auto stw = make_agg(geo);
    CpStats stw_total;
    {
      Rng rng(4242);
      for (int cp = 0; cp < 6; ++cp) {
        const auto batch = mixed_batch(rng, 2'500);
        const std::span<const DirtyBlock> all(batch);
        const std::size_t half = all.size() / 2;
        stw_total.merge(ConsistencyPoint::run(*stw, all.subspan(0, half)));
        stw_total.merge(ConsistencyPoint::run(*stw, all.subspan(half)));
      }
    }

    for (const std::size_t workers : {0u, 1u, 2u, 8u}) {
      SCOPED_TRACE(std::to_string(workers) + " workers");
      std::optional<ThreadPool> pool;
      if (workers > 0) pool.emplace(workers);
      auto ov = make_agg(geo, pool ? &*pool : nullptr);
      OverlappedCpDriver driver(*ov);
      Rng rng(4242);
      for (int cp = 0; cp < 6; ++cp) {
        const auto batch = mixed_batch(rng, 2'500);
        const std::span<const DirtyBlock> all(batch);
        const std::size_t half = all.size() / 2;
        driver.submit(all.subspan(0, half));
        driver.start_cp();  // freeze the first half; drain it in background
        // Intake while that drain runs: lands in the active generation.
        driver.submit(all.subspan(half));
        driver.start_cp();  // quiesce, then freeze the second half
        driver.wait_idle();
      }
      EXPECT_EQ(driver.stats().cps_completed, 12u);
      expect_same_stats(stw_total, driver.stats().cp, -1);
      expect_same_state(*stw, *ov);
    }
  }
}

// The sharded-intake oracle (DESIGN.md §14): determinism by construction.
// A shard's dirty list is in claim-winner program order and the freeze
// folds shards 0..S-1, so the only interleaving-dependent input is the
// ROUTING of blocks to shards.  Fix the routing by content (a hash of
// (vol, logical)) and hand writer t of T the shard subset {j : j % T == t}
// via submit_to_shard: every shard then sees the same subsequence of the
// batch in the same order at ANY writer count, and the fold — hence the
// CP, the media, and even the per-shard lease accounting — must be
// byte-identical to the single-writer run.
std::size_t shard_of(const DirtyBlock& b, std::size_t shards) {
  std::uint64_t h =
      (static_cast<std::uint64_t>(b.vol) << 32) ^ b.logical;
  h *= 0x9E3779B97F4A7C15ULL;
  h ^= h >> 29;
  return static_cast<std::size_t>(h % shards);
}

OverlapStats run_sharded_intake(Aggregate& agg, unsigned writers) {
  OverlappedCpDriver driver(agg);
  const std::size_t shards = driver.intake_shards();
  Rng rng(4242);
  for (int cp = 0; cp < 6; ++cp) {
    const auto batch = mixed_batch(rng, 2'500);
    // Content-keyed split: slice j is the batch subsequence routed to
    // shard j, the same sequence no matter how many writers deliver it.
    std::vector<std::vector<DirtyBlock>> slices(shards);
    for (const DirtyBlock& b : batch) {
      slices[shard_of(b, shards)].push_back(b);
    }
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (unsigned t = 0; t < writers; ++t) {
      threads.emplace_back([&driver, &slices, shards, writers, t] {
        for (std::size_t j = t; j < shards; j += writers) {
          driver.submit_to_shard(j, slices[j]);
        }
      });
    }
    for (auto& th : threads) th.join();
    driver.start_cp();  // next batch's intake overlaps this drain
  }
  driver.wait_idle();
  return driver.stats();
}

TEST(CpDeterminism, ConcurrentIntakeMatchesSerial) {
  for (int geo = 0; geo < kGeometries; ++geo) {
    SCOPED_TRACE("geometry " + std::to_string(geo));
    auto serial = make_agg(geo);
    const OverlapStats base = run_sharded_intake(*serial, 1);
    EXPECT_EQ(base.cps_completed, 6u);

    for (const unsigned writers : {2u, 4u, 8u}) {
      SCOPED_TRACE(std::to_string(writers) + " writers");
      auto conc = make_agg(geo);
      const OverlapStats s = run_sharded_intake(*conc, writers);
      EXPECT_EQ(s.cps_completed, base.cps_completed);
      EXPECT_EQ(s.blocks_admitted, base.blocks_admitted);
      EXPECT_EQ(s.blocks_coalesced, base.blocks_coalesced);
      // Leases are per-shard bump pointers fed one batch per shard per
      // generation: their accounting is routing-determined too.
      EXPECT_EQ(s.lease_hits, base.lease_hits);
      EXPECT_EQ(s.lease_misses, base.lease_misses);
      EXPECT_EQ(s.lease_blocks_reserved, base.lease_blocks_reserved);
      expect_same_stats(base.cp, s.cp, -1);
      expect_same_state(*serial, *conc);
    }
  }
}

TEST(CpDeterminism, MountAfterParallelCpsSeedsFromTopAa) {
  // The TopAA images built in the fanned-out phase and committed serially
  // must be valid for mount, for every group kind and geometry.
  for (int geo = 0; geo < kGeometries; ++geo) {
    SCOPED_TRACE("geometry " + std::to_string(geo));
    ThreadPool pool(8);
    auto agg = make_agg(geo, &pool);
    run_workload(*agg);
    EXPECT_EQ(agg->mount_from_topaa(), agg->raid_group_count());
  }
}

}  // namespace
}  // namespace wafl
