// CP determinism contract: WriteAllocator::finish_cp must be bit-identical
// at every worker count.  The partition (per-group frees in deferral order)
// is computed serially, the fanned-out work touches only group-disjoint
// state, and everything shared (bitmap-metafile accounting and flush,
// TopAA commits, CpStats folds) is serialized in fixed group order — so a
// serial run, a 1-worker pool, and an 8-worker pool must produce the same
// stats, the same activemap words, the same scoreboards, and the same
// persisted TopAA bytes, across both heap-managed RAID groups and
// HBPS-managed object-store pools.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"

namespace wafl {
namespace {

constexpr std::size_t kVols = 4;

// Heap-managed HDD groups plus an HBPS-managed object-store pool, with the
// §3.3.1 skip bias enabled so the rotation takes the biased path too.
std::unique_ptr<Aggregate> make_agg() {
  RaidGroupConfig hdd;
  hdd.data_devices = 4;
  hdd.parity_devices = 1;
  hdd.device_blocks = 64 * 1024;
  hdd.media.type = MediaType::kHdd;
  hdd.aa_stripes = 2048;

  RaidGroupConfig pool;
  pool.data_devices = 1;
  pool.parity_devices = 0;
  pool.device_blocks = 8 * kFlatAaBlocks;
  pool.media.type = MediaType::kObjectStore;

  AggregateConfig cfg;
  cfg.raid_groups = {hdd, hdd, pool};
  cfg.rg_skip_free_fraction = 0.02;
  auto agg = std::make_unique<Aggregate>(cfg, 20180813);
  for (std::size_t v = 0; v < kVols; ++v) {
    FlexVolConfig vol;
    vol.file_blocks = 30'000;
    vol.vvbn_blocks = 3ull * kFlatAaBlocks;
    vol.aa_blocks = 8192;
    agg->add_volume(vol);
  }
  return agg;
}

std::vector<DirtyBlock> mixed_batch(Rng& rng, std::uint64_t per_vol) {
  std::vector<DirtyBlock> out;
  for (VolumeId v = 0; v < kVols; ++v) {
    for (std::uint64_t i = 0; i < per_vol; ++i) {
      out.push_back({v, rng.below(25'000)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DirtyBlock& a, const DirtyBlock& b) {
              return a.vol != b.vol ? a.vol < b.vol : a.logical < b.logical;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const DirtyBlock& a, const DirtyBlock& b) {
                          return a.vol == b.vol && a.logical == b.logical;
                        }),
            out.end());
  return out;
}

// Runs the same 6-CP workload (same seed) and returns the per-CP stats.
std::vector<CpStats> run_workload(Aggregate& agg, ThreadPool* pool) {
  std::vector<CpStats> out;
  Rng rng(4242);
  for (int cp = 0; cp < 6; ++cp) {
    out.push_back(ConsistencyPoint::run(agg, mixed_batch(rng, 2'500), pool));
  }
  return out;
}

void expect_same_stats(const CpStats& a, const CpStats& b, int cp) {
  SCOPED_TRACE("cp " + std::to_string(cp));
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.blocks_freed, b.blocks_freed);
  EXPECT_EQ(a.vol_meta_blocks, b.vol_meta_blocks);
  EXPECT_EQ(a.agg_meta_blocks, b.agg_meta_blocks);
  EXPECT_EQ(a.meta_flush_blocks, b.meta_flush_blocks);
  EXPECT_EQ(a.tetrises, b.tetrises);
  EXPECT_EQ(a.full_stripes, b.full_stripes);
  EXPECT_EQ(a.partial_stripes, b.partial_stripes);
  EXPECT_EQ(a.parity_read_blocks, b.parity_read_blocks);
  EXPECT_EQ(a.write_chains, b.write_chains);
  EXPECT_EQ(a.storage_time_ns, b.storage_time_ns);
  EXPECT_EQ(a.hbps_replenishes, b.hbps_replenishes);
  EXPECT_EQ(a.vol_bits_scanned, b.vol_bits_scanned);
  EXPECT_EQ(a.agg_bits_scanned, b.agg_bits_scanned);
  EXPECT_EQ(a.agg_pick_free_frac.count(), b.agg_pick_free_frac.count());
  EXPECT_DOUBLE_EQ(a.agg_pick_free_frac.mean(), b.agg_pick_free_frac.mean());
}

// Bit-identical end state: activemap words, per-group scoreboards, and the
// persisted TopAA bytes (1 block for heap groups, 2 for HBPS pools; the
// unwritten tail of a heap group's slot reads as zeroes in both).
void expect_same_state(Aggregate& a, Aggregate& b) {
  ASSERT_EQ(a.total_blocks(), b.total_blocks());
  EXPECT_EQ(a.free_blocks(), b.free_blocks());
  EXPECT_EQ(a.activemap().metafile().bits().words(),
            b.activemap().metafile().bits().words());
  ASSERT_EQ(a.raid_group_count(), b.raid_group_count());
  for (RaidGroupId rg = 0; rg < a.raid_group_count(); ++rg) {
    SCOPED_TRACE("rg " + std::to_string(rg));
    const AaScoreBoard& board_a = a.rg_scoreboard(rg);
    const AaScoreBoard& board_b = b.rg_scoreboard(rg);
    ASSERT_EQ(board_a.aa_count(), board_b.aa_count());
    for (AaId aa = 0; aa < board_a.aa_count(); ++aa) {
      ASSERT_EQ(board_a.score(aa), board_b.score(aa)) << "aa " << aa;
    }
    for (std::uint64_t blk = 0; blk < TopAaFile::kRaidAgnosticBlocks; ++blk) {
      std::array<std::byte, kBlockSize> buf_a{};
      std::array<std::byte, kBlockSize> buf_b{};
      a.topaa_store().read(a.rg_topaa_block(rg) + blk, buf_a);
      b.topaa_store().read(b.rg_topaa_block(rg) + blk, buf_b);
      EXPECT_EQ(buf_a, buf_b) << "TopAA block " << blk;
    }
  }
}

TEST(CpDeterminism, WorkerCountInvariant) {
  auto serial = make_agg();
  const auto serial_stats = run_workload(*serial, nullptr);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    SCOPED_TRACE(std::to_string(workers) + " workers");
    auto parallel = make_agg();
    ThreadPool pool(workers);
    const auto parallel_stats = run_workload(*parallel, &pool);
    ASSERT_EQ(serial_stats.size(), parallel_stats.size());
    for (std::size_t cp = 0; cp < serial_stats.size(); ++cp) {
      expect_same_stats(serial_stats[cp], parallel_stats[cp],
                        static_cast<int>(cp));
    }
    expect_same_state(*serial, *parallel);
  }
}

TEST(CpDeterminism, RepeatedParallelRunsIdentical) {
  // Same pool size twice: rules out run-to-run scheduling effects (the
  // classic symptom of a hidden ordering dependence).
  auto first = make_agg();
  auto second = make_agg();
  ThreadPool pool_a(8);
  ThreadPool pool_b(8);
  const auto stats_a = run_workload(*first, &pool_a);
  const auto stats_b = run_workload(*second, &pool_b);
  for (std::size_t cp = 0; cp < stats_a.size(); ++cp) {
    expect_same_stats(stats_a[cp], stats_b[cp], static_cast<int>(cp));
  }
  expect_same_state(*first, *second);
}

TEST(CpDeterminism, MountAfterParallelCpsSeedsFromTopAa) {
  // The TopAA images built in the fanned-out phase and committed serially
  // must be valid for mount, for every group kind.
  auto agg = make_agg();
  ThreadPool pool(8);
  run_workload(*agg, &pool);
  EXPECT_EQ(agg->mount_from_topaa(), agg->raid_group_count());
}

}  // namespace
}  // namespace wafl
