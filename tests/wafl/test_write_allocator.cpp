// The WriteAllocator engine: group range mapping, tetris-window lifecycle,
// and the round-robin rotation across growth — the regression this layer
// fixed: Aggregate's old rotation pointer was never reconsidered when
// add_raid_group changed the modulus, so growth could skew the rotation
// until the pointer happened to wrap.
#include <gtest/gtest.h>

#include <vector>

#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"

namespace wafl {
namespace {

RaidGroupConfig hdd_group(std::uint64_t device_blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 3;
  rg.parity_devices = 1;
  rg.device_blocks = device_blocks;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 1024;
  return rg;
}

std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<DirtyBlock> out;
  for (std::uint64_t l = lo; l < hi; ++l) out.push_back({0, l});
  return out;
}

TEST(WriteAllocatorEngine, GroupOfPvbnMapsConcatenatedRanges) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024), hdd_group(32 * 1024)};
  Aggregate agg(cfg, 1);
  const WriteAllocator& walloc = agg.write_allocator();

  ASSERT_EQ(walloc.group_count(), 2u);
  const Vbn split = 3u * 16 * 1024;
  EXPECT_EQ(walloc.group(0).base(), 0u);
  EXPECT_EQ(walloc.group(0).end(), split);
  EXPECT_EQ(walloc.group(1).base(), split);
  EXPECT_EQ(walloc.group(1).end(), split + 3u * 32 * 1024);
  EXPECT_EQ(walloc.group_of_pvbn(0), 0u);
  EXPECT_EQ(walloc.group_of_pvbn(split - 1), 0u);
  EXPECT_EQ(walloc.group_of_pvbn(split), 1u);
  EXPECT_EQ(walloc.group_of_pvbn(split + 3u * 32 * 1024 - 1), 1u);
}

TEST(WriteAllocatorEngine, WindowsIdleTracksOpenTetrisWindows) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  Aggregate agg(cfg, 1);
  EXPECT_TRUE(agg.write_allocator().windows_idle());

  CpStats stats;
  std::vector<Vbn> out;
  agg.begin_cp();
  ASSERT_TRUE(agg.allocate_pvbns(10, out, stats));
  EXPECT_FALSE(agg.write_allocator().windows_idle());

  agg.finish_cp(stats);
  EXPECT_TRUE(agg.write_allocator().windows_idle());
}

// The satellite regression: grow mid-run (with the rotation pointer
// mid-cycle) and check the rotation stays fair — every group, including
// the new one, takes a near-equal share of subsequent writes.
TEST(WriteAllocatorEngine, RoundRobinStaysFairAfterGrowth) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024), hdd_group(16 * 1024)};
  Aggregate agg(cfg, 7);
  FlexVolConfig vol;
  vol.file_blocks = 90'000;
  vol.vvbn_blocks = 4ull * kFlatAaBlocks;
  agg.add_volume(vol);

  // Advance the rotation partway through its cycle before growing.
  ConsistencyPoint::run(agg, range(0, 25'000));

  agg.add_raid_group(hdd_group(16 * 1024));
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    agg.raid_group(rg).reset_stats();
  }

  ConsistencyPoint::run(agg, range(25'000, 55'000));

  std::uint64_t total = 0;
  std::vector<std::uint64_t> written;
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    written.push_back(agg.raid_group(rg).stats().data_blocks_written);
    total += written.back();
  }
  ASSERT_EQ(total, 30'000u);
  for (RaidGroupId rg = 0; rg < written.size(); ++rg) {
    // A fair 3-way rotation gives each group ~1/3; a group starved by a
    // stale rotation pointer (or a new group never entering the cycle)
    // falls far outside this band.
    EXPECT_GT(written[rg], total / 5) << "RAID group " << rg << " starved";
    EXPECT_LT(written[rg], total / 2) << "RAID group " << rg << " dominates";
  }
}

// Growth immediately followed by a parallel CP: the new group slots into
// the partitioned boundary path like any other.
TEST(WriteAllocatorEngine, GrowthThenParallelCp) {
  AggregateConfig cfg;
  cfg.raid_groups = {hdd_group(16 * 1024)};
  ThreadPool pool(4);
  Aggregate agg(cfg, 3, Runtime{}.with_pool(&pool));
  FlexVolConfig vol;
  vol.file_blocks = 60'000;
  vol.vvbn_blocks = 4ull * kFlatAaBlocks;
  agg.add_volume(vol);
  ConsistencyPoint::run(agg, range(0, 20'000));

  agg.add_raid_group(hdd_group(16 * 1024));
  // Overwrites: the boundary now partitions frees across both groups.
  ConsistencyPoint::run(agg, range(10'000, 40'000));

  EXPECT_GT(agg.raid_group(1).stats().data_blocks_written, 0u);
  EXPECT_EQ(agg.free_blocks(),
            agg.total_blocks() - 40'000u);
}

}  // namespace
}  // namespace wafl
