#include "wafl/delayed_free.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace wafl {
namespace {

TEST(DelayedFreeLog, Construction) {
  DelayedFreeLog log(10 * kBitsPerBitmapBlock);
  EXPECT_EQ(log.region_count(), 10u);
  EXPECT_EQ(log.pending_total(), 0u);
  EXPECT_EQ(log.drain_richest(), std::nullopt);
  EXPECT_TRUE(log.validate());
}

TEST(DelayedFreeLog, RegionMapping) {
  DelayedFreeLog log(4096, /*region_blocks=*/1024);
  EXPECT_EQ(log.region_count(), 4u);
  EXPECT_EQ(log.region_of(0), 0u);
  EXPECT_EQ(log.region_of(1023), 0u);
  EXPECT_EQ(log.region_of(1024), 1u);
  EXPECT_EQ(log.region_of(4095), 3u);
}

TEST(DelayedFreeLog, LogAndDrainSingleRegion) {
  DelayedFreeLog log(4096, 1024);
  log.log_free(100);
  log.log_free(200);
  log.log_free(300);
  EXPECT_EQ(log.pending_total(), 3u);
  EXPECT_EQ(log.pending_in_region(0), 3u);

  const auto drain = log.drain_richest();
  ASSERT_TRUE(drain.has_value());
  EXPECT_EQ(drain->region, 0u);
  EXPECT_EQ(drain->vbns, (std::vector<Vbn>{100, 200, 300}));
  EXPECT_EQ(log.pending_total(), 0u);
  EXPECT_TRUE(log.validate());
}

TEST(DelayedFreeLog, DrainsRichestFirstWithinErrorBound) {
  const std::uint32_t region_blocks = 1024;
  DelayedFreeLog log(64 * region_blocks, region_blocks);
  Rng rng(3);
  std::map<std::uint32_t, std::uint32_t> truth;
  for (std::uint32_t r = 0; r < 64; ++r) {
    const auto n = static_cast<std::uint32_t>(rng.below(region_blocks));
    truth[r] = n;
    for (std::uint32_t i = 0; i < n; ++i) {
      log.log_free(static_cast<Vbn>(r) * region_blocks + i);
    }
  }
  ASSERT_TRUE(log.validate());

  // Every drain must return a region within one bin width of the current
  // richest (the HBPS guarantee transplanted to delayed-free scores).
  const std::uint32_t bin_width =
      std::max<std::uint32_t>(1, region_blocks / kHbpsBinCount);
  while (log.pending_total() > 0) {
    std::uint32_t best = 0;
    for (const auto& [r, n] : truth) {
      best = std::max(best, n);
    }
    const auto drain = log.drain_richest();
    ASSERT_TRUE(drain.has_value());
    EXPECT_GE(truth[drain->region] + bin_width, best);
    EXPECT_EQ(drain->vbns.size(), truth[drain->region]);
    truth[drain->region] = 0;
  }
  EXPECT_TRUE(log.validate());
  EXPECT_EQ(log.drain_richest(), std::nullopt);
}

TEST(DelayedFreeLog, RegionRefillsAfterDrain) {
  DelayedFreeLog log(4096, 1024);
  log.log_free(5);
  auto d1 = log.drain_richest();
  ASSERT_TRUE(d1.has_value());
  log.log_free(6);
  log.log_free(7);
  const auto d2 = log.drain_richest();
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->region, 0u);
  EXPECT_EQ(d2->vbns.size(), 2u);
}

TEST(DelayedFreeLog, ManyRegionsChurn) {
  const std::uint32_t region_blocks = 256;
  DelayedFreeLog log(2048 * region_blocks, region_blocks);
  Rng rng(9);
  std::uint64_t logged = 0, drained = 0;
  std::vector<std::uint32_t> counts(2048, 0);
  for (int step = 0; step < 20'000; ++step) {
    if (rng.chance(0.8)) {
      const auto r = static_cast<std::uint32_t>(rng.below(2048));
      if (counts[r] < region_blocks) {
        log.log_free(static_cast<Vbn>(r) * region_blocks + counts[r]);
        ++counts[r];
        ++logged;
      }
    } else {
      const auto d = log.drain_richest();
      if (d.has_value()) {
        drained += d->vbns.size();
        counts[d->region] = 0;
      }
    }
  }
  EXPECT_EQ(log.pending_total(), logged - drained);
  EXPECT_TRUE(log.validate());
  // Drain dry.
  while (log.drain_richest().has_value()) {
  }
  EXPECT_EQ(log.pending_total(), 0u);
}

TEST(DelayedFreeLog, ActiveGenerationFoldsAtFreeze) {
  // Generation split (DESIGN.md §13): log_free_active stages into the
  // active ledger — invisible to drain_richest, visible in the combined
  // pending_total() — and freeze_generation folds it into the drainable
  // frozen state.
  DelayedFreeLog log(4096, 1024);
  EXPECT_EQ(log.freeze_generation(), 0u);  // empty freeze is a no-op
  log.log_free_active(100);
  log.log_free_active(200);
  log.log_free_active(1500);
  EXPECT_EQ(log.active_total(), 3u);
  EXPECT_EQ(log.pending_total(), 3u);
  EXPECT_EQ(log.drainable_total(), 0u);
  EXPECT_EQ(log.pending_in_region(0), 0u);
  EXPECT_TRUE(log.validate());

  EXPECT_EQ(log.freeze_generation(), 3u);
  EXPECT_EQ(log.active_total(), 0u);
  EXPECT_EQ(log.pending_total(), 3u);
  EXPECT_EQ(log.drainable_total(), 3u);
  EXPECT_EQ(log.pending_in_region(0), 2u);
  EXPECT_EQ(log.pending_in_region(1), 1u);

  const auto drain = log.drain_richest();
  ASSERT_TRUE(drain.has_value());
  EXPECT_EQ(drain->region, 0u);
  EXPECT_EQ(drain->vbns, (std::vector<Vbn>{100, 200}));
  EXPECT_TRUE(log.validate());
}

TEST(DelayedFreeLog, FreezeReproducesDirectLogOrder) {
  // Determinism requirement: folding at freeze must walk the active
  // ledger in staging order, producing the exact per-region state (and
  // HBPS update sequence) that direct log_free calls would have built.
  DelayedFreeLog via_active(8192, 1024);
  DelayedFreeLog direct(8192, 1024);
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const Vbn v = rng.below(8192);
    via_active.log_free_active(v);
    direct.log_free(v);
  }
  EXPECT_EQ(via_active.freeze_generation(), 500u);
  EXPECT_EQ(via_active.pending_total(), direct.pending_total());
  while (true) {
    const auto a = via_active.drain_richest();
    const auto b = direct.drain_richest();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->region, b->region);
    EXPECT_EQ(a->vbns, b->vbns);
  }
}

TEST(DelayedFreeLog, ConcurrentActiveStagingConserves) {
  // The active ledger is a lock-free MPSC log (DESIGN.md §14): many
  // writer threads stage frees concurrently, the freeze consumes under
  // quiescence.  Interleaving decides the fold ORDER across threads, but
  // never the SET: per-region totals and drained vbn sets must match a
  // serial oracle staging the same frees.  Disjoint per-thread vbn
  // ranges, so no double-free regardless of schedule.
  constexpr unsigned kThreads = 4;
  constexpr Vbn kPerThread = 2000;
  DelayedFreeLog log(kThreads * kPerThread, 1024);
  DelayedFreeLog oracle(kThreads * kPerThread, 1024);
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (Vbn i = 0; i < kPerThread; ++i) {
        log.log_free_active(static_cast<Vbn>(t) * kPerThread + i);
      }
    });
  }
  for (auto& w : writers) w.join();
  for (Vbn v = 0; v < kThreads * kPerThread; ++v) {
    oracle.log_free(v);
  }
  EXPECT_EQ(log.active_total(), kThreads * kPerThread);
  EXPECT_TRUE(log.validate());
  EXPECT_EQ(log.freeze_generation(), kThreads * kPerThread);
  EXPECT_EQ(log.pending_total(), oracle.pending_total());
  // Drain both to exhaustion.  The Hbps tie-break among equally rich
  // regions follows bin insertion order, which the fold order permutes —
  // so the drain SEQUENCE may differ between the concurrent log and the
  // oracle.  The invariant is the per-region drained sets.
  std::map<std::uint32_t, std::vector<Vbn>> drained, expected;
  while (auto a = log.drain_richest()) {
    std::sort(a->vbns.begin(), a->vbns.end());
    drained.emplace(a->region, std::move(a->vbns));
  }
  while (auto b = oracle.drain_richest()) {
    std::sort(b->vbns.begin(), b->vbns.end());
    expected.emplace(b->region, std::move(b->vbns));
  }
  EXPECT_EQ(drained, expected);
  // The generation's chunks recycle: the next cycle works identically.
  log.log_free_active(3);
  EXPECT_EQ(log.freeze_generation(), 1u);
  EXPECT_EQ(log.pending_in_region(0), 1u);
}

TEST(DelayedFreeLogDeathTest, OverfillingRegionAsserts) {
  DelayedFreeLog log(1024, 1024);
  for (Vbn v = 0; v < 1024; ++v) {
    log.log_free(v);
  }
  EXPECT_DEATH(log.log_free(0), "more delayed frees");
}

}  // namespace
}  // namespace wafl
