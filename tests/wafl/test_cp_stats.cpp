// CpStats::merge round-trip: merging per-slice stats must equal the stats
// of the combined run, including the RunningStat (Chan et al.) fields the
// parallel-CP volume slices rely on.
#include <gtest/gtest.h>

#include "wafl/cp_stats.hpp"

namespace wafl {
namespace {

CpStats make_stats(std::uint64_t base) {
  CpStats s;
  s.ops = base + 1;
  s.blocks_written = base + 2;
  s.blocks_freed = base + 3;
  s.vol_meta_blocks = base + 4;
  s.agg_meta_blocks = base + 5;
  s.meta_flush_blocks = base + 6;
  s.tetrises = base + 7;
  s.full_stripes = base + 8;
  s.partial_stripes = base + 9;
  s.parity_read_blocks = base + 10;
  s.write_chains = base + 11;
  s.storage_time_ns = static_cast<SimTime>(base + 12);
  s.hbps_replenishes = base + 13;
  s.vol_bits_scanned = base + 14;
  s.agg_bits_scanned = base + 15;
  return s;
}

TEST(CpStats, MergeSumsEveryCounterField) {
  CpStats a = make_stats(100);
  const CpStats b = make_stats(1000);
  a.merge(b);
  EXPECT_EQ(a.ops, 1102u);
  EXPECT_EQ(a.blocks_written, 1104u);
  EXPECT_EQ(a.blocks_freed, 1106u);
  EXPECT_EQ(a.vol_meta_blocks, 1108u);
  EXPECT_EQ(a.agg_meta_blocks, 1110u);
  EXPECT_EQ(a.meta_flush_blocks, 1112u);
  EXPECT_EQ(a.tetrises, 1114u);
  EXPECT_EQ(a.full_stripes, 1116u);
  EXPECT_EQ(a.partial_stripes, 1118u);
  EXPECT_EQ(a.parity_read_blocks, 1120u);
  EXPECT_EQ(a.write_chains, 1122u);
  EXPECT_EQ(a.storage_time_ns, static_cast<SimTime>(1124));
  EXPECT_EQ(a.hbps_replenishes, 1126u);
  EXPECT_EQ(a.vol_bits_scanned, 1128u);
  EXPECT_EQ(a.agg_bits_scanned, 1130u);
}

TEST(CpStats, MergeCombinesRunningStatsExactly) {
  // Split one sample stream across two slices; the merged accumulator
  // must agree with a single accumulator that saw everything.
  CpStats slice_a;
  CpStats slice_b;
  CpStats whole;
  for (int i = 0; i < 50; ++i) {
    const double v = 0.01 * static_cast<double>(i);
    slice_a.vol_pick_free_frac.add(v);
    slice_a.agg_pick_free_frac.add(1.0 - v);
    whole.vol_pick_free_frac.add(v);
    whole.agg_pick_free_frac.add(1.0 - v);
  }
  for (int i = 50; i < 80; ++i) {
    const double v = 0.01 * static_cast<double>(i);
    slice_b.vol_pick_free_frac.add(v);
    slice_b.agg_pick_free_frac.add(1.0 - v);
    whole.vol_pick_free_frac.add(v);
    whole.agg_pick_free_frac.add(1.0 - v);
  }
  slice_a.merge(slice_b);

  EXPECT_EQ(slice_a.vol_pick_free_frac.count(),
            whole.vol_pick_free_frac.count());
  EXPECT_NEAR(slice_a.vol_pick_free_frac.mean(),
              whole.vol_pick_free_frac.mean(), 1e-12);
  EXPECT_NEAR(slice_a.vol_pick_free_frac.variance(),
              whole.vol_pick_free_frac.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(slice_a.vol_pick_free_frac.min(),
                   whole.vol_pick_free_frac.min());
  EXPECT_DOUBLE_EQ(slice_a.vol_pick_free_frac.max(),
                   whole.vol_pick_free_frac.max());
  EXPECT_NEAR(slice_a.agg_pick_free_frac.mean(),
              whole.agg_pick_free_frac.mean(), 1e-12);
}

TEST(CpStats, MergeWithEmptyIsIdentity) {
  CpStats a = make_stats(5);
  a.vol_pick_free_frac.add(0.5);
  const CpStats before = a;  // copy for comparison
  const CpStats empty;
  a.merge(empty);
  EXPECT_EQ(a.ops, before.ops);
  EXPECT_EQ(a.blocks_written, before.blocks_written);
  EXPECT_EQ(a.vol_pick_free_frac.count(), 1u);
  EXPECT_DOUBLE_EQ(a.vol_pick_free_frac.mean(), 0.5);

  // And the symmetric case: empty.merge(a) adopts a's accumulator.
  CpStats fresh;
  fresh.merge(before);
  EXPECT_EQ(fresh.ops, before.ops);
  EXPECT_DOUBLE_EQ(fresh.vol_pick_free_frac.mean(), 0.5);
}

}  // namespace
}  // namespace wafl
