// Crash-consistency property sweep: 256 seeded cases across crash points,
// media mixes, worker counts and fault mixes (DESIGN.md §9).
//
// Every case derives its entire configuration from one seed, so any
// failure is reproducible with a single environment variable:
//
//   WAFL_CRASH_SEED=<seed> ./waflfree_crash_tests
//       --gtest_filter='CrashSweep.*'   (one command line)
//
// Sharding: WAFL_CRASH_SHARD=<i> WAFL_CRASH_SHARDS=<n> runs cases with
// index % n == i — tools/check.sh --crash registers 8 shards as separate
// ctest cases.  With no environment set (the gtest-discovered instance)
// only a small smoke subset runs, so the full sweep is not duplicated.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <string>

#include "support/crash_harness.hpp"
#include "util/rng.hpp"

namespace wafl {
namespace {

using test::CrashCaseConfig;
using test::CrashHarness;
using test::CrashVerdict;

constexpr int kCases = 256;

std::uint64_t case_seed(int index) {
  return 0x5EED0000u + 0x9E3779B97F4A7C15ULL *
                           (static_cast<std::uint64_t>(index) + 1);
}

/// Always-firing CP crash hooks; {name, max safe nth} (nth is drawn in
/// [1, max], where max reflects how often the point runs per CP: per
/// group, per volume, or once).
struct HookChoice {
  const char* name;
  std::uint64_t max_nth_heap_only;  // 2 HDD groups
  std::uint64_t max_nth_with_pool;  // + object-store pool
};
constexpr HookChoice kHooks[] = {
    // Fires once per CP, after the serial allocation plan fixed every
    // group's quota but before any block was taken.
    {"wa.in_alloc_plan", 1, 1},
    // Fires per RAID group with planned work inside the (possibly
    // parallel) execute phase; every sweep CP's demand spans more than one
    // rotation round, so all groups draw work.
    {"wa.in_alloc_execute", 2, 3},
    {"wa.before_boundary", 1, 1},
    {"wa.after_boundary", 1, 1},
    {"wa.before_bitmap_flush", 1, 1},
    // Fires per dirty aggregate-metafile block inside the (possibly
    // parallel) flush.  The heap-only aggregate has 3 metafile blocks and
    // the pool config 5; every sweep CP dirties at least the bound below
    // (allocations and frees land in both heap groups each CP).
    {"wa.in_bitmap_flush", 2, 3},
    {"wa.after_bitmap_flush", 1, 1},
    {"wa.before_topaa_commit", 2, 3},
    {"wa.after_topaa_commits", 1, 1},
    {"rg.after_frees", 2, 3},
    {"rg.after_topaa_encode", 2, 3},
    {"cp.before_volume_finish", 2, 2},
    {"cp.before_agg_finish", 1, 1},
    // Fires once per CP inside the generation swap — aggregate side
    // frozen, volumes still staging (DESIGN.md §13).
    {"cp.in_gen_swap", 1, 1},
    // Fires once per CP at the top of the boundary drain; under an
    // overlapped case this is while intake is concurrently admitted.
    {"wa.in_overlap_drain", 1, 1},
    // Fires inside the overlapped driver's freeze with every shard lock
    // held, before leases drain or shards fold (DESIGN.md §14) — so the
    // crash loses leases and unfrozen intake and nothing else.  Overlapped
    // driver only; config_for forces `overlapped` for it.
    {"cp.in_lease_drain", 1, 1},
    // Mid-repair hooks: fire inside WAFL Iron, not inside the crash CP.
    // run_crash_cp() skips arming these; maybe_crash_during_repair()
    // corrupts two TopAA slots, recovers, and crashes inside the armed
    // repair instead — the verify fan-out stages without writing, the
    // serial apply lands repairs in fixed unit order, so any nth leaves
    // idempotently completable media.  Both fire once per unit: 2 groups
    // + 2 volumes (4), +1 with the object-store pool (5).
    {"iron.in_parallel_verify", 4, 5},
    {"iron.in_repair_apply", 4, 5},
};

CrashCaseConfig config_for(std::uint64_t seed) {
  Rng rng(seed);
  CrashCaseConfig cfg;
  cfg.seed = seed;
  constexpr unsigned kWorkerChoices[] = {0, 1, 2, 8};
  cfg.workers = kWorkerChoices[rng.below(4)];
  cfg.object_store_pool = rng.chance(0.5);
  cfg.clean_cps = static_cast<unsigned>(rng.between(2, 4));
  // Half the cases run the crash CP through the overlapped driver, so
  // every hook below also gets exercised with intake concurrently
  // admitted into the active generation.
  cfg.overlapped = rng.chance(0.5);

  const std::uint64_t mode = rng.below(3);
  if (mode == 0) {
    // Named-hook crash.
    const HookChoice& hook = kHooks[rng.below(std::size(kHooks))];
    cfg.crash_hook = hook.name;
    cfg.crash_hook_nth = rng.between(
        1, cfg.object_store_pool ? hook.max_nth_with_pool
                                 : hook.max_nth_heap_only);
    if (cfg.crash_hook == "cp.in_lease_drain") cfg.overlapped = true;
  } else if (mode == 1) {
    // Write-count crash (a CP issues ~10–25 metafile writes here).
    cfg.plan.crash_after_writes = rng.between(1, 18);
    constexpr fault::CrashWriteFault kFaults[] = {
        fault::CrashWriteFault::kPersisted, fault::CrashWriteFault::kTorn,
        fault::CrashWriteFault::kDropped};
    cfg.plan.crash_write_fault = kFaults[rng.below(3)];
  }
  // mode == 2: no crash — a pure determinism/replay case.

  if (mode != 2 && rng.chance(0.5)) {
    // Media faults during the crash CP on top of the crash itself.
    cfg.plan.torn_write_prob = 0.4 * rng.uniform();
    cfg.plan.dropped_write_prob = 0.25 * rng.uniform();
  }
  if (rng.chance(0.3)) {
    cfg.recovery_bitrot_prob = 0.5;
  }
  // Half the overlapped cases admit the crash CP's intake from two writer
  // threads (content-keyed shard routing keeps the case seed-
  // deterministic).  Drawn last so pre-existing case configs are intact.
  cfg.concurrent_intake = cfg.overlapped && rng.chance(0.5);
  return cfg;
}

void run_case(int index, std::uint64_t seed) {
  SCOPED_TRACE("sweep case " + std::to_string(index) + " seed " +
               std::to_string(seed));
  const CrashCaseConfig cfg = config_for(seed);
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  const bool hook_mode = !cfg.crash_hook.empty();
  const bool crash_expected = hook_mode;  // write-count may not be reached
  if (!v.ok() || (crash_expected && !v.crashed)) {
    // Failure UX: the exact repro line and the black-box dump travel
    // together, so a CI log alone localizes the failing CP phase.
    ADD_FAILURE() << "crash-sweep case failed; reproduce with:\n  "
                  << "WAFL_CRASH_SEED=" << seed
                  << " ./waflfree_crash_tests --gtest_filter='CrashSweep.*'"
                  << (hook_mode ? "   (hook " + cfg.crash_hook + " nth=" +
                                      std::to_string(cfg.crash_hook_nth) + ")"
                                : "")
                  << "\n"
                  << (crash_expected && !v.crashed
                          ? "armed hook '" + cfg.crash_hook +
                                "' never fired\n"
                          : "")
                  << v.message()
                  << (v.flight_dump.empty()
                          ? ""
                          : "\n--- flight recorder ---\n" + v.flight_dump);
  }
}

TEST(CrashSweep, Sweep) {
  if (const char* seed_env = std::getenv("WAFL_CRASH_SEED")) {
    run_case(-1, std::strtoull(seed_env, nullptr, 0));
    return;
  }
  const char* shard_env = std::getenv("WAFL_CRASH_SHARD");
  if (shard_env == nullptr) {
    // Smoke subset for the plain test binary / tier-1 ctest run; the full
    // sweep runs as the 8 crash_sweep_shard_N ctest cases.
    for (int i = 0; i < kCases; i += 43) {
      run_case(i, case_seed(i));
    }
    return;
  }
  const int shard = std::atoi(shard_env);
  const char* shards_env = std::getenv("WAFL_CRASH_SHARDS");
  const int shards = shards_env != nullptr ? std::atoi(shards_env) : 8;
  ASSERT_GT(shards, 0);
  ASSERT_LT(shard, shards);
  for (int i = 0; i < kCases; ++i) {
    if (i % shards == shard) run_case(i, case_seed(i));
  }
}

}  // namespace
}  // namespace wafl
