// Multi-aggregate fleet (DESIGN.md §16): N aggregates, each with its own
// RuntimeBundle (registry scope, crash hooks, flight recorder), sharing
// one ThreadPool and one capped DrainExecutor.  The contract under test:
//
//   - determinism: a member's media after a concurrent fleet run is
//     byte-identical to the same member run alone (the oracle the fleet
//     bench enforces on every --perf run);
//   - isolation: a crash armed on member A's runtime fires in A only —
//     B's media and metrics match its solo run, and the process-global
//     hook registry never sees the arm;
//   - label scoping: aggregates sharing one Registry with distinct agg
//     ids register disjoint `agg="<id>"`-labelled metrics, while an
//     empty agg id leaves label strings untouched (what keeps
//     single-aggregate metric exports byte-stable).
//
// tools/check.sh --tsan runs the Fleet.* suite under ThreadSanitizer.
#include "wafl/fleet.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "fault/crash_point.hpp"
#include "fault/fault.hpp"
#include "obs/export.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"
#include "wafl/mount.hpp"

namespace wafl {
namespace {

FleetMemberConfig make_member(std::string id, MediaType media,
                              std::uint64_t seed) {
  FleetMemberConfig cfg;
  cfg.id = std::move(id);
  RaidGroupConfig rg;
  switch (media) {
    case MediaType::kSsd:
      rg = fleet_ssd_group(16 * 1024);
      break;
    case MediaType::kSmr:
      rg = fleet_smr_group(64 * 1024);
      break;
    default:
      rg = fleet_hdd_group(16 * 1024);
      break;
  }
  cfg.agg.raid_groups = {rg, rg};
  FlexVolConfig vol;
  vol.file_blocks = 16'000;
  vol.vvbn_blocks = 2ull * kFlatAaBlocks;
  vol.aa_blocks = 4096;
  cfg.volumes = {vol, vol};
  cfg.rng_seed = seed;
  cfg.workload_seed = seed * 97 + 1;
  cfg.cps = 3;
  cfg.blocks_per_cp = 4096;
  return cfg;
}

// The tentpole oracle: four mixed-geometry members with distinct seeds
// run concurrently over one shared pool and one 2-thread drain executor;
// every member's media digest must equal its solo (serial, private
// executor) run — neighbours and scheduling must leave no trace.
TEST(Fleet, MixedFleetMatchesSoloByteForByte) {
  const std::vector<FleetMemberConfig> cfgs = {
      make_member("hdd0", MediaType::kHdd, 11),
      make_member("ssd0", MediaType::kSsd, 22),
      make_member("smr0", MediaType::kSmr, 33),
      make_member("hdd1", MediaType::kHdd, 44),
  };
  ThreadPool pool(4);
  const FleetResult fleet = run_fleet(cfgs, &pool, /*drain_threads=*/2);
  ASSERT_EQ(fleet.members.size(), cfgs.size());
  for (std::size_t m = 0; m < cfgs.size(); ++m) {
    SCOPED_TRACE(cfgs[m].id);
    const FleetMemberResult solo = run_solo(cfgs[m], nullptr);
    EXPECT_EQ(fleet.members[m].id, cfgs[m].id);
    EXPECT_EQ(fleet.members[m].media_digest, solo.media_digest);
    EXPECT_EQ(fleet.members[m].stats.cps_completed, cfgs[m].cps);
    EXPECT_EQ(fleet.members[m].stats.blocks_admitted,
              solo.stats.blocks_admitted);
    EXPECT_EQ(fleet.members[m].stats.blocks_coalesced,
              solo.stats.blocks_coalesced);
  }
  // Distinct seeds really produced distinct media.
  EXPECT_NE(fleet.members[0].media_digest, fleet.members[3].media_digest);
}

// Same fleet twice: the concurrent run itself is repeatable.
TEST(Fleet, FleetRunIsRepeatable) {
  const std::vector<FleetMemberConfig> cfgs = {
      make_member("a", MediaType::kHdd, 3),
      make_member("b", MediaType::kSsd, 4),
  };
  ThreadPool pool(4);
  const FleetResult r1 = run_fleet(cfgs, &pool, 2);
  const FleetResult r2 = run_fleet(cfgs, &pool, 2);
  ASSERT_EQ(r1.members.size(), r2.members.size());
  for (std::size_t m = 0; m < r1.members.size(); ++m) {
    EXPECT_EQ(r1.members[m].media_digest, r2.members[m].media_digest);
  }
}

// Satellite: per-runtime crash hooks.  A hook armed on member A fires
// inside A's drain while B — sharing the pool and the executor — runs to
// completion with media byte-identical to its solo run.  The crash lands
// in A's registry scope only, and the process-global hook registry never
// saw the arm.
TEST(Fleet, CrashOnOneMemberLeavesNeighbourUntouched) {
  FleetMemberConfig ca = make_member("crash-a", MediaType::kHdd, 5);
  FleetMemberConfig cb = make_member("ok-b", MediaType::kSsd, 6);
  const FleetMemberResult solo_b = run_solo(cb, nullptr);

  ThreadPool pool(4);
  DrainExecutor exec(2);
  FleetMember a(ca, &pool, &exec);
  FleetMember b(cb, &pool, &exec);
  // Armed on the SECOND drain so CP 1 completes first — its bitmap
  // metafile writes flow through the fault plan below.
  a.bundle().hooks.arm("wa.in_overlap_drain", 2);
  // A FaultPlan scoped to A's runtime: every write A makes to its bitmap
  // metafile is torn, and the engine's fault counters land in A's
  // registry — the second injection mechanism that must not leak to B.
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.torn_write_prob = 1.0;
  fault::FaultEngine engine(plan, &a.bundle().registry, &a.bundle().flight);
  a.aggregate().meta_store().set_fault_injector(&engine);

  OverlapStats sb;
  std::thread tb([&b, &sb] { sb = b.run_workload(); });
  // A's first drain dies; the parked error rethrows at the next control
  // call inside run_workload.
  EXPECT_THROW(a.run_workload(), fault::CrashPoint);
  tb.join();
  a.bundle().hooks.disarm_all();
  a.aggregate().meta_store().set_fault_injector(nullptr);

  EXPECT_EQ(sb.cps_completed, cb.cps);
  EXPECT_EQ(media_digest(b.aggregate()), solo_b.media_digest);
  // CP 1's metafile flush really went through the plan.
  EXPECT_GT(engine.writes_seen(), 0u);
  if constexpr (obs::kEnabled) {
    // The crash was recorded in A's registry scope — and only there.
    EXPECT_EQ(
        a.bundle().registry.counter("wafl.fault.crashes_injected").value(),
        1u);
    // The plan's torn writes were counted in A's scope, one per journal
    // record.
    std::uint64_t journal_torn = 0;
    for (const fault::FaultRecord& r : engine.journal()) {
      if (r.kind == fault::FaultRecord::Kind::kTorn) ++journal_torn;
    }
    EXPECT_EQ(
        a.bundle().registry.counter("wafl.fault.torn_writes").value(),
        journal_torn);
    // B's scope never saw any fault machinery.
    for (const obs::Registry::Entry& e : b.bundle().registry.entries()) {
      EXPECT_EQ(e.name.find("wafl.fault."), std::string::npos)
          << e.name << " leaked into the neighbour's registry";
    }
  }
}

// Crashed member A recovers through the normal recovery mount while B's
// state stays valid — the per-runtime hook cannot leak into recovery.
TEST(Fleet, CrashedMemberRecoversInPlace) {
  FleetMemberConfig ca = make_member("crash-a", MediaType::kHdd, 5);
  ThreadPool pool(2);
  DrainExecutor exec(1);
  FleetMember a(ca, &pool, &exec);
  a.bundle().hooks.arm("wa.in_overlap_drain", 1);
  EXPECT_THROW(a.run_workload(), fault::CrashPoint);
  a.bundle().hooks.disarm_all();
  // The surviving bytes mount through the recovery path; the armed (and
  // fired) hook lived in A's runtime, so nothing is left armed anywhere.
  const MountReport r = recover_mount(a.aggregate(), /*use_topaa=*/true);
  EXPECT_GT(r.rgs_seeded + r.vols_seeded, 0u);
}

// Satellite: the agg label dimension.  Two aggregates sharing ONE
// registry under distinct agg ids register disjoint labelled metrics;
// a default-runtime aggregate's metrics stay unlabelled, which is what
// keeps single-aggregate `<figure>.metrics.json` exports byte-stable.
TEST(Fleet, SharedRegistryScopesMetricsByAggId) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::Registry shared;
  AggregateConfig acfg;
  acfg.raid_groups = {fleet_hdd_group(16 * 1024)};
  FlexVolConfig vol;
  vol.file_blocks = 4'000;
  vol.vvbn_blocks = kFlatAaBlocks;
  vol.aa_blocks = 4096;

  Aggregate a1(acfg, 1,
               Runtime{}.with_agg_id("a1").with_registry(&shared));
  Aggregate a2(acfg, 1,
               Runtime{}.with_agg_id("a2").with_registry(&shared));
  a1.add_volume(vol);
  a2.add_volume(vol);

  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 0; l < 512; ++l) dirty.push_back({0, l});
  ConsistencyPoint::run(a1, dirty);
  ConsistencyPoint::run(a2, dirty);
  ConsistencyPoint::run(a2, dirty);

  EXPECT_EQ(shared.counter("wafl.cp.count", "agg=\"a1\"").value(), 1u);
  EXPECT_EQ(shared.counter("wafl.cp.count", "agg=\"a2\"").value(), 2u);
  // Identical workloads: the per-member written counters agree, under
  // their own labels.
  EXPECT_EQ(
      shared.counter("wafl.cp.blocks_written", "agg=\"a1\"").value(), 512u);
  // No unlabelled aliases leaked into the shared scope.
  for (const obs::Registry::Entry& e : shared.entries()) {
    EXPECT_NE(e.labels.find("agg="), std::string::npos)
        << e.name << " registered without an agg dimension";
  }

  // And the empty-agg-id runtime leaves labels untouched.
  EXPECT_EQ(Runtime{}.labels(), "");
  EXPECT_EQ(Runtime{}.labels("rg=\"3\""), "rg=\"3\"");
  EXPECT_EQ(Runtime{}.with_agg_id("x").labels("rg=\"3\""),
            "agg=\"x\",rg=\"3\"");
}

// The per-member registry snapshot run_fleet returns is the member's own
// scope: metrics JSON mentions the member's agg id and not its
// neighbours'.
TEST(Fleet, PerMemberMetricsSnapshotsAreScoped) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  const std::vector<FleetMemberConfig> cfgs = {
      make_member("alpha", MediaType::kHdd, 7),
      make_member("beta", MediaType::kSsd, 8),
  };
  ThreadPool pool(2);
  const FleetResult fleet = run_fleet(cfgs, &pool, 1);
  ASSERT_EQ(fleet.members.size(), 2u);
  EXPECT_NE(fleet.members[0].metrics_json.find("agg=\\\"alpha\\\""),
            std::string::npos);
  EXPECT_EQ(fleet.members[0].metrics_json.find("beta"), std::string::npos);
  EXPECT_NE(fleet.members[1].metrics_json.find("agg=\\\"beta\\\""),
            std::string::npos);
  EXPECT_EQ(fleet.members[1].metrics_json.find("alpha"), std::string::npos);
}

}  // namespace
}  // namespace wafl
