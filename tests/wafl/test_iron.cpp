#include "wafl/iron.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"
#include "wafl/mount.hpp"

namespace wafl {
namespace {

struct Rig {
  explicit Rig(ThreadPool* pool = nullptr)
      : agg(make_config(), 13, Runtime{}.with_pool(pool)) {
    FlexVolConfig vcfg;
    vcfg.vvbn_blocks = 64 * 1024;
    vcfg.file_blocks = 48 * 1024;
    vcfg.aa_blocks = 8192;
    agg.add_volume(vcfg);

    std::vector<DirtyBlock> dirty;
    for (std::uint64_t l = 0; l < 30'000; ++l) dirty.push_back({0, l});
    ConsistencyPoint::run(agg, dirty);
    dirty.clear();
    for (std::uint64_t l = 5'000; l < 12'000; ++l) dirty.push_back({0, l});
    ConsistencyPoint::run(agg, dirty);
  }

  static AggregateConfig make_config() {
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 4;
    rg.parity_devices = 1;
    rg.device_blocks = 32 * 1024;
    rg.media.type = MediaType::kHdd;
    rg.aa_stripes = 2048;
    cfg.raid_groups = {rg, rg};
    return cfg;
  }

  Aggregate agg;
};

TEST(Iron, HealthySystemIsClean) {
  Rig rig;
  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.rg_checked, 2u);
  EXPECT_EQ(r.vol_checked, 1u);
  EXPECT_EQ(r.rg_unreadable + r.rg_stale, 0u);
  EXPECT_EQ(r.vol_unreadable + r.vol_stale, 0u);
}

TEST(Iron, RepairsCorruptRgBlock) {
  Rig rig;
  rig.agg.topaa_store().corrupt(rig.agg.rg_topaa_block(1), 99);
  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.rg_unreadable, 1u);
  EXPECT_EQ(r.rg_rewritten, 1u);
  // Second pass: fully repaired.
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
  // And the repaired block mounts.
  const MountReport m = mount_all(rig.agg, /*use_topaa=*/true);
  EXPECT_EQ(m.rgs_seeded, 2u);
}

TEST(Iron, RepairsCorruptVolumeBlock) {
  Rig rig;
  FlexVol& vol = rig.agg.volume(0);
  const std::uint64_t topaa =
      vol.store().capacity_blocks() - TopAaFile::kRaidAgnosticBlocks;
  vol.store().corrupt(topaa + 1, 7);  // damage the list page
  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.vol_unreadable, 1u);
  EXPECT_EQ(r.vol_rewritten, 1u);
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
  const MountReport m = mount_all(rig.agg, /*use_topaa=*/true);
  EXPECT_EQ(m.vols_seeded, 1u);
}

TEST(Iron, DetectsStaleRgContent) {
  Rig rig;
  // Write a structurally valid but WRONG TopAA (a logic-bug simulation):
  // scores from a different era.
  std::vector<AaPick> bogus;
  for (AaId aa = 0; aa < rig.agg.rg_layout(0).aa_count(); ++aa) {
    bogus.push_back({aa, 1});
  }
  TopAaFile file(rig.agg.topaa_store(), rig.agg.rg_topaa_block(0));
  file.save_raid_aware(bogus);

  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.rg_stale, 1u);
  EXPECT_EQ(r.rg_rewritten, 1u);
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
}

TEST(Iron, DetectsStaleVolumeContent) {
  Rig rig;
  FlexVol& vol = rig.agg.volume(0);
  // Persist an HBPS whose histogram says "everything is empty" — wrong.
  Hbps bogus(vol.cache().config());
  for (AaId aa = 0; aa < vol.layout().aa_count(); ++aa) {
    bogus.insert(aa, vol.layout().aa_capacity(aa));
  }
  const std::uint64_t base =
      vol.store().capacity_blocks() - TopAaFile::kRaidAgnosticBlocks;
  TopAaFile file(vol.store(), base);
  file.save_raid_agnostic(bogus);

  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.vol_stale, 1u);
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
}

// Run one more CP over the rig with a fault engine attached to `store`,
// churning enough blocks that every group's and the volume's TopAA
// content must change.
void churn_cp_with_faults(Rig& rig, BlockStore& store,
                          const fault::FaultPlan& plan) {
  fault::FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 12'000; l < 20'000; ++l) dirty.push_back({0, l});
  ConsistencyPoint::run(rig.agg, dirty);
  store.set_fault_injector(nullptr);
  ASSERT_FALSE(engine.journal().empty()) << "fault never triggered";
}

TEST(Iron, TornTopAaCommitIsUnreadableAndRepaired) {
  Rig rig;
  // Tear RG0's TopAA commit mid-write: only the new 16-byte header (with
  // its CRC over the new picks) persists over the old entries, so the
  // checksum cannot verify and Iron sees the block as unreadable.  The
  // tear must land inside the live payload — these heap files carry only
  // ~16 picks, so a large prefix would persist the whole logical image.
  fault::FaultPlan plan;
  plan.seed = 21;
  plan.torn_write_prob = 1.0;
  plan.torn_bytes = 16;
  plan.only_block = rig.agg.rg_topaa_block(0);
  churn_cp_with_faults(rig, rig.agg.topaa_store(), plan);

  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.rg_unreadable, 1u);
  EXPECT_EQ(r.rg_rewritten, 1u);
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
  EXPECT_EQ(mount_all(rig.agg, /*use_topaa=*/true).rgs_seeded, 2u);
}

TEST(Iron, DroppedTopAaCommitIsStaleAndRepaired) {
  Rig rig;
  // Drop RG1's TopAA commit entirely: the previous CP's image survives
  // with a valid checksum, but its scores no longer match — stale, not
  // unreadable.
  fault::FaultPlan plan;
  plan.seed = 22;
  plan.dropped_write_prob = 1.0;
  plan.only_block = rig.agg.rg_topaa_block(1);
  churn_cp_with_faults(rig, rig.agg.topaa_store(), plan);

  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.rg_unreadable, 0u);
  EXPECT_EQ(r.rg_stale, 1u);
  EXPECT_EQ(r.rg_rewritten, 1u);
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
}

TEST(Iron, DroppedVolumeCommitIsStaleAndRepaired) {
  Rig rig;
  // Drop every volume-store write for one CP: both raid-agnostic TopAA
  // pages stay at the previous era, individually checksum-valid but
  // disagreeing with the recomputed HBPS.
  fault::FaultPlan plan;
  plan.seed = 23;
  plan.dropped_write_prob = 1.0;
  churn_cp_with_faults(rig, rig.agg.volume(0).store(), plan);

  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_EQ(r.vol_unreadable, 0u);
  EXPECT_EQ(r.vol_stale, 1u);
  EXPECT_EQ(r.vol_rewritten, 1u);
  EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
}

TEST(Iron, ObjectStorePoolCoverage) {
  AggregateConfig cfg;
  RaidGroupConfig pool;
  pool.data_devices = 1;
  pool.parity_devices = 0;
  pool.device_blocks = 4 * kFlatAaBlocks;
  pool.media.type = MediaType::kObjectStore;
  cfg.raid_groups = {pool};
  Aggregate agg(cfg, 3);
  FlexVolConfig vol;
  vol.file_blocks = 50'000;
  vol.vvbn_blocks = 2ull * kFlatAaBlocks;
  agg.add_volume(vol);
  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 0; l < 40'000; ++l) dirty.push_back({0, l});
  ConsistencyPoint::run(agg, dirty);

  EXPECT_TRUE(iron_check_topaa(agg).clean());
  agg.topaa_store().corrupt(agg.rg_topaa_block(0), 4242);
  const IronReport r = iron_check_topaa(agg);
  EXPECT_EQ(r.rg_unreadable, 1u);
  EXPECT_EQ(r.rg_rewritten, 1u);
  EXPECT_TRUE(iron_check_topaa(agg).clean());
}

// --- Parallel Iron (pFSCK-style verify fan-out + serial apply) ------------

/// Bytes of every TopAA slot: the aggregate TopAA store plus each
/// volume's two trailing TopAA blocks.
std::vector<std::byte> topaa_bytes(Aggregate& agg) {
  std::vector<std::byte> out;
  alignas(8) std::byte buf[kBlockSize];
  for (std::uint64_t b = 0; b < agg.topaa_store().capacity_blocks(); ++b) {
    agg.topaa_store().peek(b, buf);
    out.insert(out.end(), buf, buf + kBlockSize);
  }
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    BlockStore& store = agg.volume(v).store();
    const std::uint64_t base =
        store.capacity_blocks() - TopAaFile::kRaidAgnosticBlocks;
    for (std::uint64_t b = base; b < store.capacity_blocks(); ++b) {
      store.peek(b, buf);
      out.insert(out.end(), buf, buf + kBlockSize);
    }
  }
  return out;
}

/// Same seeded damage on every instance: one unreadable group slot, one
/// stale group (bitmap mutated behind the TopAA), one unreadable volume
/// slot.
void damage(Rig& rig) {
  rig.agg.topaa_store().corrupt(rig.agg.rg_topaa_block(1), 99);
  rig.agg.volume(0).store().corrupt(
      rig.agg.volume(0).store().capacity_blocks() -
          TopAaFile::kRaidAgnosticBlocks,
      77);
}

TEST(Iron, ParallelRepairMatchesSerialAtEveryWorkerCount) {
  // Serial reference: repaired media bytes and the report.
  Rig ref;
  damage(ref);
  const IronReport serial = iron_check_topaa(ref.agg);
  EXPECT_EQ(serial.rg_rewritten, 1u);
  EXPECT_EQ(serial.vol_rewritten, 1u);
  EXPECT_GE(serial.verify_ms, 0.0);
  EXPECT_GE(serial.apply_ms, 0.0);
  const std::vector<std::byte> want = topaa_bytes(ref.agg);

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ThreadPool pool(workers);
    Rig rig(&pool);
    damage(rig);
    const IronReport r = iron_check_topaa(rig.agg);
    EXPECT_EQ(r.rg_checked, serial.rg_checked);
    EXPECT_EQ(r.rg_unreadable, serial.rg_unreadable);
    EXPECT_EQ(r.rg_stale, serial.rg_stale);
    EXPECT_EQ(r.rg_rewritten, serial.rg_rewritten);
    EXPECT_EQ(r.vol_unreadable, serial.vol_unreadable);
    EXPECT_EQ(r.vol_stale, serial.vol_stale);
    EXPECT_EQ(r.vol_rewritten, serial.vol_rewritten);
    // Staged verify + fixed-order serial apply: repaired media are
    // byte-identical to the serial run.
    EXPECT_EQ(topaa_bytes(rig.agg), want);
    EXPECT_TRUE(iron_check_topaa(rig.agg).clean());
  }
}

TEST(Iron, ParallelCleanPassWritesNothing) {
  ThreadPool pool(4);
  Rig rig(&pool);
  const std::uint64_t writes0 = rig.agg.topaa_store().stats().block_writes;
  const IronReport r = iron_check_topaa(rig.agg);
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(rig.agg.topaa_store().stats().block_writes, writes0);
}

TEST(Iron, ParallelRepairMatchesSerialOnObjectStorePool) {
  auto make = [](ThreadPool* workers = nullptr) {
    AggregateConfig cfg;
    RaidGroupConfig pool;
    pool.data_devices = 1;
    pool.parity_devices = 0;
    pool.device_blocks = 4 * kFlatAaBlocks;
    pool.media.type = MediaType::kObjectStore;
    cfg.raid_groups = {pool};
    auto agg =
        std::make_unique<Aggregate>(cfg, 3, Runtime{}.with_pool(workers));
    FlexVolConfig vol;
    vol.file_blocks = 50'000;
    vol.vvbn_blocks = 2ull * kFlatAaBlocks;
    agg->add_volume(vol);
    std::vector<DirtyBlock> dirty;
    for (std::uint64_t l = 0; l < 40'000; ++l) dirty.push_back({0, l});
    ConsistencyPoint::run(*agg, dirty);
    agg->topaa_store().corrupt(agg->rg_topaa_block(0), 4242);
    return agg;
  };
  auto ref = make();
  const IronReport serial = iron_check_topaa(*ref);
  EXPECT_EQ(serial.rg_rewritten, 1u);
  const std::vector<std::byte> want = topaa_bytes(*ref);
  for (const unsigned workers : {1u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ThreadPool pool(workers);
    auto agg = make(&pool);
    const IronReport r = iron_check_topaa(*agg);
    EXPECT_EQ(r.rg_rewritten, serial.rg_rewritten);
    EXPECT_EQ(r.vol_rewritten, serial.vol_rewritten);
    EXPECT_EQ(topaa_bytes(*agg), want);
    EXPECT_TRUE(iron_check_topaa(*agg).clean());
  }
}

}  // namespace
}  // namespace wafl
