#include "wafl/flexvol.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wafl {
namespace {

FlexVolConfig small_vol(AaSelectPolicy policy = AaSelectPolicy::kCache) {
  FlexVolConfig cfg;
  cfg.vvbn_blocks = 16 * 1024;
  cfg.file_blocks = 8 * 1024;
  cfg.aa_blocks = 1024;  // 16 AAs
  cfg.policy = policy;
  return cfg;
}

TEST(FlexVol, FreshVolumeAllFree) {
  FlexVol vol(0, small_vol(), 1);
  EXPECT_EQ(vol.free_blocks(), 16u * 1024u);
  EXPECT_EQ(vol.layout().aa_count(), 16u);
  EXPECT_FALSE(vol.is_mapped(0));
  EXPECT_EQ(vol.cache().size(), 16u);
}

TEST(FlexVol, AllocatesSequentiallyWithinAa) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  const Vbn a = vol.allocate_vvbn(stats);
  const Vbn b = vol.allocate_vvbn(stats);
  const Vbn c = vol.allocate_vvbn(stats);
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
  EXPECT_TRUE(vol.activemap().is_allocated(a));
  EXPECT_EQ(stats.vol_pick_free_frac.count(), 1u);  // one AA checkout
  EXPECT_DOUBLE_EQ(stats.vol_pick_free_frac.mean(), 1.0);  // empty AA
}

TEST(FlexVol, NeverAllocatesSameVbnTwice) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  std::set<Vbn> seen;
  for (int i = 0; i < 5000; ++i) {
    const Vbn v = vol.allocate_vvbn(stats);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate vvbn " << v;
  }
}

TEST(FlexVol, RemapTracksBothMaps) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  const Vbn vvbn = vol.allocate_vvbn(stats);
  const Vbn freed = vol.remap(5, vvbn, /*pvbn=*/777);
  EXPECT_EQ(freed, kInvalidVbn);  // first write frees nothing
  EXPECT_TRUE(vol.is_mapped(5));
  EXPECT_EQ(vol.vvbn_of(5), vvbn);
  EXPECT_EQ(vol.pvbn_of(5), 777u);

  const Vbn vvbn2 = vol.allocate_vvbn(stats);
  const Vbn freed2 = vol.remap(5, vvbn2, 888);
  EXPECT_EQ(freed2, 777u);  // overwrite frees the old physical block
  EXPECT_EQ(vol.vvbn_of(5), vvbn2);
  EXPECT_EQ(vol.pvbn_of(5), 888u);
}

TEST(FlexVol, OverwriteFreesOldVvbnAtCpBoundary) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  const Vbn vvbn = vol.allocate_vvbn(stats);
  vol.remap(0, vvbn, 1);
  const Vbn vvbn2 = vol.allocate_vvbn(stats);
  vol.remap(0, vvbn2, 2);
  // Old vvbn still held until finish_cp (COW safety).
  EXPECT_TRUE(vol.activemap().is_allocated(vvbn));
  vol.finish_cp(stats);
  EXPECT_FALSE(vol.activemap().is_allocated(vvbn));
  EXPECT_TRUE(vol.activemap().is_allocated(vvbn2));
}

TEST(FlexVol, FinishCpKeepsCacheAndScoresConsistent) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  for (std::uint64_t l = 0; l < 3000; ++l) {
    const Vbn vvbn = vol.allocate_vvbn(stats);
    vol.remap(l, vvbn, l + 10);
  }
  vol.finish_cp(stats);
  EXPECT_TRUE(vol.cache().validate());
  EXPECT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
  // 3000 blocks consumed.
  EXPECT_EQ(vol.free_blocks(), 16u * 1024u - 3000u);
}

TEST(FlexVol, CacheModeFillsEmptiestFirstAfterAging) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  // Fill the whole file once.
  for (std::uint64_t l = 0; l < 8 * 1024; ++l) {
    vol.remap(l, vol.allocate_vvbn(stats), l);
  }
  vol.finish_cp(stats);
  // Overwrite a clustered range so one region frees up massively.
  for (std::uint64_t l = 0; l < 900; ++l) {
    vol.remap(l, vol.allocate_vvbn(stats), l);
  }
  vol.finish_cp(stats);

  // The allocator first drains the AA its cursor is already filling; the
  // next fresh checkout must then come from the best populated score range.
  CpStats fresh;
  Vbn v = vol.allocate_vvbn(fresh);
  const AaId cursor_before = vol.layout().aa_of(v);
  AaId chosen = cursor_before;
  while (chosen == cursor_before) {
    v = vol.allocate_vvbn(fresh);
    chosen = vol.layout().aa_of(v);
  }
  AaScore best = 0;
  for (AaId aa = 0; aa < vol.scoreboard().aa_count(); ++aa) {
    if (aa == chosen || aa == cursor_before) continue;
    best = std::max(best, vol.scoreboard().score(aa));
  }
  // HBPS guarantee: within one bin width of the true best.
  const std::uint32_t bin_width = vol.cache().config().bin_width;
  EXPECT_GE(vol.scoreboard().score(chosen) + bin_width, best);
}

TEST(FlexVol, RandomPolicyStillCorrect) {
  FlexVol vol(0, small_vol(AaSelectPolicy::kRandom), 99);
  CpStats stats;
  std::set<Vbn> seen;
  for (std::uint64_t l = 0; l < 4000; ++l) {
    const Vbn vvbn = vol.allocate_vvbn(stats);
    EXPECT_TRUE(seen.insert(vvbn).second);
    vol.remap(l, vvbn, l);
  }
  vol.finish_cp(stats);
  EXPECT_EQ(vol.free_blocks(), 16u * 1024u - 4000u);
}

TEST(FlexVol, MetafileTouchAccounting) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  // 100 colocated allocations touch exactly one 32 Ki-bit metafile block.
  for (std::uint64_t l = 0; l < 100; ++l) {
    vol.remap(l, vol.allocate_vvbn(stats), l);
  }
  vol.finish_cp(stats);
  EXPECT_EQ(stats.vol_meta_blocks, 1u);
  EXPECT_GE(stats.meta_flush_blocks, 1u);
}

TEST(FlexVol, TopAaPersistedEachActiveCp) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  vol.remap(0, vol.allocate_vvbn(stats), 0);
  vol.finish_cp(stats);
  TopAaFile topaa(vol.store(),
                  vol.store().capacity_blocks() -
                      TopAaFile::kRaidAgnosticBlocks);
  EXPECT_TRUE(topaa.load_raid_agnostic().has_value());
}

TEST(FlexVol, IdleCpIsFree) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  vol.finish_cp(stats);
  EXPECT_EQ(stats.meta_flush_blocks, 0u);
  EXPECT_EQ(stats.vol_meta_blocks, 0u);
}

TEST(FlexVol, MountFromTopAaRestoresCache) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  for (std::uint64_t l = 0; l < 2000; ++l) {
    vol.remap(l, vol.allocate_vvbn(stats), l);
  }
  vol.finish_cp(stats);

  vol.store().reset_stats();
  EXPECT_TRUE(vol.mount_from_topaa());
  // Constant-cost gate: exactly the two TopAA blocks.
  EXPECT_EQ(vol.store().stats().block_reads, TopAaFile::kRaidAgnosticBlocks);
  EXPECT_TRUE(vol.cache().validate());
}

TEST(FlexVol, MountFallsBackOnCorruptTopAa) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  vol.remap(0, vol.allocate_vvbn(stats), 0);
  vol.finish_cp(stats);
  const std::uint64_t topaa_block =
      vol.store().capacity_blocks() - TopAaFile::kRaidAgnosticBlocks;
  vol.store().corrupt(topaa_block, 5);
  vol.store().reset_stats();
  EXPECT_FALSE(vol.mount_from_topaa());
  // Fallback read the whole bitmap metafile.
  EXPECT_GT(vol.store().stats().block_reads,
            TopAaFile::kRaidAgnosticBlocks);
  // And the rebuilt state still allocates correctly.
  CpStats fresh;
  const Vbn v = vol.allocate_vvbn(fresh);
  EXPECT_TRUE(vol.activemap().is_allocated(v));
}

TEST(FlexVol, ScanRebuildMatchesLiveState) {
  FlexVol vol(0, small_vol(), 1);
  CpStats stats;
  for (std::uint64_t l = 0; l < 1500; ++l) {
    vol.remap(l, vol.allocate_vvbn(stats), l);
  }
  vol.finish_cp(stats);
  const std::uint64_t free_before = vol.free_blocks();

  vol.scan_rebuild();
  EXPECT_EQ(vol.free_blocks(), free_before);
  EXPECT_EQ(vol.scoreboard().total_free(), free_before);
  EXPECT_TRUE(vol.cache().validate());
}

}  // namespace
}  // namespace wafl
