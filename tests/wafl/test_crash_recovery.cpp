// Crash-consistency: named crash-point scenarios (DESIGN.md §9).
//
// Each test freezes the CP boundary at one specific gap in its persistence
// sequence — bitmap flushed but no TopAA committed, between per-group
// TopAA commits, TopAA committed but the bitmap flush lost, mid-parallel
// boundary, between volume commits — and proves the recovery invariants
// through CrashHarness: both mount paths converge, Iron repairs exactly
// what the gap left stale and is idempotent, recovery is deterministic,
// and a follow-up CP lands identically on either recovery.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "fault/crash_point.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "support/crash_harness.hpp"
#include "wafl/mount.hpp"

namespace wafl {
namespace {

using test::CrashCaseConfig;
using test::CrashHarness;
using test::CrashVerdict;

CrashCaseConfig base_config(std::uint64_t seed) {
  CrashCaseConfig cfg;
  cfg.seed = seed;
  cfg.clean_cps = 3;
  return cfg;
}

/// The media of two harnesses must be byte-identical (worker-count
/// determinism: the boundary phase stages but never writes, and the
/// parallel flush/commit phases write deterministic bytes to
/// deterministic blocks — only the write ORDER varies with workers, so a
/// crash at a serial point leaves identical bytes at every worker count).
void expect_same_media(CrashHarness& a, CrashHarness& b) {
  alignas(8) std::byte ba[kBlockSize];
  alignas(8) std::byte bb[kBlockSize];
  const auto cmp = [&](const BlockStore& sa, const BlockStore& sb,
                       const char* tag) {
    ASSERT_EQ(sa.capacity_blocks(), sb.capacity_blocks());
    for (std::uint64_t blk = 0; blk < sa.capacity_blocks(); ++blk) {
      sa.peek(blk, ba);
      sb.peek(blk, bb);
      ASSERT_EQ(std::memcmp(ba, bb, kBlockSize), 0)
          << tag << " block " << blk << " differs between worker counts";
    }
  };
  cmp(a.aggregate().meta_store(), b.aggregate().meta_store(), "agg meta");
  cmp(a.aggregate().topaa_store(), b.aggregate().topaa_store(), "agg topaa");
  for (VolumeId v = 0; v < a.aggregate().volume_count(); ++v) {
    cmp(a.aggregate().volume(v).store(), b.aggregate().volume(v).store(),
        "vol store");
  }
}

TEST(CrashRecovery, BitmapNewTopAaOld) {
  // Crash after the bitmap flush, before ANY per-group TopAA commit: the
  // acceptance case "crash between bitmap flush and TopAA commit".  The
  // groups' persisted TopAA still describes the previous CP; Iron must
  // find it stale and rewrite it on both mount paths.
  CrashCaseConfig cfg = base_config(101);
  cfg.crash_hook = "wa.before_topaa_commit";
  cfg.crash_hook_nth = 1;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "wa.before_topaa_commit");
  EXPECT_TRUE(v.ok()) << v.message();
  // A heap group's TopAA holds every AA with exact scores here (16 AAs
  // fit in the 510-entry block), so any churn makes it stale.
  EXPECT_GE(v.iron_rewrites, 1u);
}

TEST(CrashRecovery, BetweenGroupTopAaCommits) {
  // Group 0 committed its TopAA, group 1 did not: mixed-generation TopAA
  // across groups, the torn-cache shape §3.4's per-group checksums exist
  // for.
  CrashCaseConfig cfg = base_config(202);
  cfg.crash_hook = "wa.before_topaa_commit";
  cfg.crash_hook_nth = 2;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, TopAaNewBitmapOld) {
  // The reverse acceptance case: every TopAA commit reached the media but
  // the bitmap flush was lost (volatile-cache drop), then the crash.  The
  // recovered bitmaps are one CP older than the TopAA, which must read as
  // "stale cache" — never as truth.
  CrashCaseConfig cfg = base_config(303);
  cfg.crash_hook = "wa.after_topaa_commits";
  CrashHarness h(cfg);
  h.run_clean_cps();

  fault::FaultPlan drop;
  drop.seed = 7;
  drop.dropped_write_prob = 1.0;
  {
    fault::FaultEngine drop_engine(drop);
    h.aggregate().meta_store().set_fault_injector(&drop_engine);
    const std::string fired = h.run_crash_cp();
    h.aggregate().meta_store().set_fault_injector(nullptr);
    EXPECT_EQ(fired, "wa.after_topaa_commits");
    h.add_journal(drop_engine.journal());
    EXPECT_GT(drop_engine.journal().size(), 0u);
  }
  const CrashVerdict v = h.verify_recovery();
  EXPECT_TRUE(v.ok()) << v.message();
  // The aggregate TopAA is newer than the bitmaps: stale, rewritten.
  EXPECT_GE(v.iron_rewrites, 1u);
}

TEST(CrashRecovery, CrashInsideParallelBoundary) {
  // The crash fires on a pool thread inside the group-parallel boundary
  // phase; the ThreadPool rethrows it on the CP thread.  Nothing was
  // persisted this CP, so recovery sees the previous committed state.
  CrashCaseConfig cfg = base_config(404);
  cfg.workers = 8;
  cfg.crash_hook = "rg.after_frees";
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "rg.after_frees");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, MidParallelAllocation) {
  // The crash fires on a pool thread inside the execute phase of the
  // plan/execute allocator: some groups have filled tetris windows and
  // staged activemap bits, others have not started, and with 8 workers
  // which is which is an interleaving accident.  Nothing of this CP is
  // persisted during allocation (device models are simulation state), so
  // the surviving media is exactly the previous committed CP and the full
  // invariant suite must hold over it.
  CrashCaseConfig cfg = base_config(1717);
  cfg.workers = 8;
  cfg.crash_hook = "wa.in_alloc_execute";
  cfg.crash_hook_nth = 2;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "wa.in_alloc_execute");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, CrashDuringOverlap) {
  // The crash fires on the drain thread at the top of the frozen
  // generation's boundary drain while the intake thread is concurrently
  // admitting the next generation's blocks through the OverlappedCpDriver.
  // The admitted-but-unfrozen intake is in-memory only, so recovery must
  // see exactly the previous committed CP (DESIGN.md §13 crash
  // semantics: a lost active generation is indistinguishable from a
  // crash between CPs).
  CrashCaseConfig cfg = base_config(2020);
  cfg.workers = 8;
  cfg.overlapped = true;
  cfg.crash_hook = "wa.in_overlap_drain";
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "wa.in_overlap_drain");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, CrashDuringLeaseDrain) {
  // The crash fires inside the overlapped driver's freeze with every
  // shard lock held, before the leases drain and before any shard folds
  // (DESIGN.md §14).  Two writer threads admitted the first half of the
  // batch through submit_to_shard and are joined when the hook fires —
  // what dies is the shards' unfrozen intake plus every outstanding
  // lease.  Leases are advisory and score-neutral: a lost lease is
  // byte-for-byte indistinguishable from blocks that were never
  // allocated, so I-A..I-D must hold over exactly the last committed CP.
  CrashCaseConfig cfg = base_config(2323);
  cfg.workers = 2;
  cfg.overlapped = true;
  cfg.concurrent_intake = true;
  cfg.crash_hook = "cp.in_lease_drain";
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "cp.in_lease_drain");
  EXPECT_TRUE(v.ok()) << v.message();
  // Nothing of the crash CP reached media: Iron finds nothing stale.
  EXPECT_EQ(v.iron_rewrites, 0u);
}

TEST(CrashRecovery, CrashInGenerationSwap) {
  // The crash fires inside Aggregate::freeze_cp_generation(), after the
  // aggregate-side fold but before the volumes folded — a genuinely
  // half-swapped generation.  The swap touches no media, so recovery
  // still converges on the last committed CP.
  CrashCaseConfig cfg = base_config(2121);
  cfg.overlapped = true;
  cfg.crash_hook = "cp.in_gen_swap";
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "cp.in_gen_swap");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, BetweenVolumeCommits) {
  // Volume 0 flushed its bitmap and TopAA, volume 1 (and the aggregate)
  // did not — the cross-object gap of the CP's serial phase 3.
  CrashCaseConfig cfg = base_config(505);
  cfg.crash_hook = "cp.before_volume_finish";
  cfg.crash_hook_nth = 2;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, WriteCountTornCrash) {
  // Engine-triggered crash: the 3rd metafile write of the crash CP is
  // torn mid-block, then the "machine" dies.  The I-D check must explain
  // the torn block from the journal.
  CrashCaseConfig cfg = base_config(606);
  cfg.plan.crash_after_writes = 3;
  cfg.plan.crash_write_fault = fault::CrashWriteFault::kTorn;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "store.write");
  EXPECT_GE(v.torn_writes, 1u);
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, WriteCountDroppedCrash) {
  CrashCaseConfig cfg = base_config(707);
  cfg.plan.crash_after_writes = 5;
  cfg.plan.crash_write_fault = fault::CrashWriteFault::kDropped;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_GE(v.dropped_writes, 1u);
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, CrashDuringRecoveryMount) {
  // The machine dies again during recovery, mid-mount.  Recovery writes
  // nothing, so a second attempt over the same bytes must succeed and the
  // full invariant suite must hold.
  CrashCaseConfig cfg = base_config(808);
  cfg.crash_hook = "wa.before_bitmap_flush";
  CrashHarness h(cfg);
  h.run_clean_cps();
  ASSERT_EQ(h.run_crash_cp(), "wa.before_bitmap_flush");

  fault::crash_hooks().arm("mount.before_vol_seed", 2);
  EXPECT_THROW(h.recover(/*use_topaa=*/true), fault::CrashPoint);
  fault::crash_hooks().disarm_all();

  const CrashVerdict v = h.verify_recovery();
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, MidParallelBitmapFlush) {
  // Crash INSIDE the parallel metafile flush: some dirty bitmap blocks
  // reached the media, others did not, and with 2 workers which ones is
  // an interleaving accident.  Recovery must converge from any such
  // prefix — each flushed block is individually sound, and Iron
  // reconciles the TopAA (never committed here) against whatever mix of
  // old and new bitmap blocks survived.
  CrashCaseConfig cfg = base_config(1414);
  cfg.workers = 2;
  cfg.crash_hook = "wa.in_bitmap_flush";
  cfg.crash_hook_nth = 2;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "wa.in_bitmap_flush");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, MidFlushSerialReplayExact) {
  // The same hook with workers=0 fires at a fixed serial position (after
  // exactly one block flushed, dirty order) — the replay-exact anchor the
  // parallel case's interleaving-agnostic invariants are measured against.
  CrashCaseConfig cfg = base_config(1515);
  cfg.object_store_pool = true;
  cfg.crash_hook = "wa.in_bitmap_flush";
  cfg.crash_hook_nth = 2;
  CrashHarness h(cfg);
  h.run_clean_cps();
  ASSERT_EQ(h.run_crash_cp(), "wa.in_bitmap_flush");
  const CrashVerdict v = h.verify_recovery();
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, HbpsPoolCrash) {
  // Heap (HDD) and HBPS (object-store pool) groups in one aggregate; the
  // crash lands before the pool's TopAA commit (third group).
  CrashCaseConfig cfg = base_config(909);
  cfg.object_store_pool = true;
  cfg.workers = 2;
  cfg.crash_hook = "wa.before_topaa_commit";
  cfg.crash_hook_nth = 3;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, RecoveryMountBitRot) {
  // The TopAA reads of the first recovery's mount hit bit-rot; the
  // checksum rejects rotted blocks and the per-group fallback covers.
  // The media itself is honest, so everything still converges.
  CrashCaseConfig cfg = base_config(1010);
  cfg.crash_hook = "wa.after_bitmap_flush";
  cfg.recovery_bitrot_prob = 1.0;  // every TopAA read rots
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, CleanShutdownControl) {
  // Control: no trigger, the "crash CP" completes.  Recovery of a cleanly
  // shut-down aggregate finds nothing stale.
  CrashCaseConfig cfg = base_config(1111);
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_FALSE(v.crashed);
  EXPECT_TRUE(v.ok()) << v.message();
  EXPECT_EQ(v.iron_rewrites, 0u);
}

TEST(CrashRecovery, MediaIdenticalAcrossWorkerCounts) {
  // Acceptance: the same crash at the same serial point leaves the same
  // bytes on media at 1, 2 and 8 CP workers (and serially) — so recovery
  // proofs at one worker count transfer to all.
  constexpr unsigned kWorkers[] = {0, 1, 2, 8};
  std::vector<std::unique_ptr<CrashHarness>> runs;
  for (const unsigned w : kWorkers) {
    CrashCaseConfig cfg = base_config(1212);
    cfg.object_store_pool = true;
    cfg.workers = w;
    cfg.crash_hook = "wa.before_bitmap_flush";
    runs.push_back(std::make_unique<CrashHarness>(cfg));
    runs.back()->run_clean_cps();
    ASSERT_EQ(runs.back()->run_crash_cp(), "wa.before_bitmap_flush");
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_same_media(*runs[0], *runs[i]);
  }
  for (auto& run : runs) {
    const CrashVerdict v = run->verify_recovery();
    EXPECT_TRUE(v.ok()) << v.message();
  }
}

TEST(CrashRecovery, FaultCountersFlowThroughObs) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  } else {
    obs::Registry& reg = obs::registry();
    const std::uint64_t crashes0 =
        reg.counter("wafl.fault.crashes_injected").value();
    const std::uint64_t torn0 = reg.counter("wafl.fault.torn_writes").value();
    const std::uint64_t iron0 = reg.counter("wafl.iron.rewrites").value();
    const std::uint64_t runs0 = reg.counter("wafl.iron.runs").value();

    CrashCaseConfig cfg = base_config(1313);
    cfg.plan.crash_after_writes = 2;
    cfg.plan.crash_write_fault = fault::CrashWriteFault::kTorn;
    CrashHarness h(cfg);
    const CrashVerdict v = h.run_all();
    EXPECT_TRUE(v.crashed);
    EXPECT_TRUE(v.ok()) << v.message();

    EXPECT_GE(reg.counter("wafl.fault.crashes_injected").value(),
              crashes0 + 1);
    EXPECT_GE(reg.counter("wafl.fault.torn_writes").value(), torn0 + 1);
    // verify_recovery runs Iron at least 5 times (2 + idempotence + R3).
    EXPECT_GE(reg.counter("wafl.iron.runs").value(), runs0 + 5);
    EXPECT_GE(reg.counter("wafl.iron.rewrites").value(),
              iron0 + v.iron_rewrites);
  }
}

TEST(CrashRecovery, FlightRecorderDumpNamesTheHook) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  } else {
    // The black box must tie an injected crash back to the exact hook:
    // the dump carries the crash note (hook name + ordinal), the partial
    // span tree of the crashed CP, and counter deltas since the mark.
    CrashCaseConfig cfg = base_config(1717);
    cfg.workers = 2;
    cfg.crash_hook = "wa.before_bitmap_flush";
    CrashHarness h(cfg);
    const CrashVerdict v = h.run_all();
    EXPECT_TRUE(v.crashed);
    EXPECT_TRUE(v.ok()) << v.message();
    ASSERT_FALSE(v.flight_dump.empty());
    EXPECT_NE(v.flight_dump.find("wa.before_bitmap_flush"),
              std::string::npos)
        << v.flight_dump;
    // The crashed CP's spans unwound into the recorder: the CP root and
    // the phases that completed before the hook fired are all present.
    EXPECT_NE(v.flight_dump.find("cp"), std::string::npos);
    EXPECT_NE(v.flight_dump.find("fc.boundary"), std::string::npos)
        << v.flight_dump;
    EXPECT_NE(v.flight_dump.find("wafl.fault.crashes_injected"),
              std::string::npos)
        << v.flight_dump;
  }
}

TEST(CrashRecovery, WriteCountCrashDumpNamesStoreWrite) {
  if constexpr (!obs::kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  } else {
    // The FaultEngine's write-count trigger notes through the same path
    // as named hooks, so count-triggered crashes localize too.
    CrashCaseConfig cfg = base_config(1818);
    cfg.plan.crash_after_writes = 2;
    CrashHarness h(cfg);
    const CrashVerdict v = h.run_all();
    EXPECT_TRUE(v.crashed);
    EXPECT_TRUE(v.ok()) << v.message();
    ASSERT_FALSE(v.flight_dump.empty());
    EXPECT_NE(v.flight_dump.find("store.write"), std::string::npos)
        << v.flight_dump;
  }
}

TEST(CrashRecovery, CrashInParallelIronVerify) {
  // The machine dies inside Iron's parallel verify fan-out, mid-repair of
  // two corrupted TopAA slots.  The fan-out stages images without
  // writing, so the crash loses only staged state: the surviving media
  // still carries the corruption, and the subsequent verify_recovery()
  // recoveries must find, repair, and converge exactly as if the first
  // repair had never started.
  CrashCaseConfig cfg = base_config(909);
  cfg.workers = 8;
  cfg.crash_hook = "iron.in_parallel_verify";
  cfg.crash_hook_nth = 2;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "iron.in_parallel_verify");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, CrashMidIronRepairApply) {
  // The crash lands inside the serial apply, after some staged repairs
  // reached media and before others — the partially-repaired prefix.
  // TopAA is a pure cache (outside invariant I-D), so any prefix is
  // idempotently completable: verify_recovery()'s own Iron run must
  // finish the job and both mount paths converge.
  CrashCaseConfig cfg = base_config(910);
  cfg.workers = 2;
  cfg.crash_hook = "iron.in_repair_apply";
  cfg.crash_hook_nth = 3;
  CrashHarness h(cfg);
  const CrashVerdict v = h.run_all();
  EXPECT_TRUE(v.crashed);
  EXPECT_EQ(v.crash_point, "iron.in_repair_apply");
  EXPECT_TRUE(v.ok()) << v.message();
}

TEST(CrashRecovery, IronCrashSerialAndParallelLeaveSameMedia) {
  // A crash at the same apply-point must freeze byte-identical media at
  // every worker count: verify staging is write-free and the apply order
  // is fixed, so the nth apply hook fires with the same prefix of
  // repairs landed whatever the verify scheduling was.
  auto run = [](unsigned workers) {
    CrashCaseConfig cfg = base_config(911);
    cfg.workers = workers;
    cfg.crash_hook = "iron.in_repair_apply";
    cfg.crash_hook_nth = 2;
    auto h = std::make_unique<CrashHarness>(cfg);
    h->run_clean_cps();
    h->run_crash_cp();
    h->maybe_crash_during_repair();
    return h;
  };
  auto serial = run(0);
  auto parallel = run(8);
  expect_same_media(*serial, *parallel);
  const CrashVerdict vs = serial->verify_recovery();
  EXPECT_TRUE(vs.ok()) << vs.message();
  const CrashVerdict vp = parallel->verify_recovery();
  EXPECT_TRUE(vp.ok()) << vp.message();
}

}  // namespace
}  // namespace wafl
