#include "wafl/mount.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/max_heap_cache.hpp"
#include "core/topaa.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"
#include "wafl/iron.hpp"

namespace wafl {
namespace {

struct Rig {
  explicit Rig(ThreadPool* pool = nullptr)
      : agg(make_config(), 3, Runtime{}.with_pool(pool)) {
    FlexVolConfig vcfg;
    vcfg.vvbn_blocks = 64 * 1024;
    vcfg.file_blocks = 32 * 1024;
    vcfg.aa_blocks = 4096;
    agg.add_volume(vcfg);
    agg.add_volume(vcfg);
    // Write through a few CPs so there is real state on "media".
    std::vector<DirtyBlock> dirty;
    for (VolumeId v = 0; v < 2; ++v) {
      dirty.clear();
      for (std::uint64_t l = 0; l < 10'000; ++l) {
        dirty.push_back({v, l});
      }
      ConsistencyPoint::run(agg, dirty);
      dirty.clear();
      for (std::uint64_t l = 2'000; l < 6'000; ++l) {
        dirty.push_back({v, l});
      }
      ConsistencyPoint::run(agg, dirty);
    }
  }

  static AggregateConfig make_config() {
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 4;
    rg.parity_devices = 1;
    rg.device_blocks = 32 * 1024;
    rg.media.type = MediaType::kHdd;
    rg.aa_stripes = 2048;
    cfg.raid_groups = {rg, rg};
    return cfg;
  }

  Aggregate agg;
};

TEST(Mount, TopAaGateIsConstantSized) {
  Rig rig;
  const MountReport r = mount_all(rig.agg, /*use_topaa=*/true);
  EXPECT_TRUE(r.used_topaa);
  EXPECT_EQ(r.rgs_seeded, 2u);
  EXPECT_EQ(r.vols_seeded, 2u);
  // 1 block per RAID group + 2 per volume — independent of capacity
  // (§3.4 / Figure 10's flat line).
  EXPECT_EQ(r.gate_block_reads,
            2 * TopAaFile::kRaidAwareBlocks +
                2 * TopAaFile::kRaidAgnosticBlocks);
}

TEST(Mount, ScanGateReadsEveryBitmapBlock) {
  Rig rig;
  const MountReport r = mount_all(rig.agg, /*use_topaa=*/false);
  EXPECT_FALSE(r.used_topaa);
  const std::uint64_t agg_bitmap_blocks =
      rig.agg.activemap().metafile().metafile_blocks();
  const std::uint64_t vol_bitmap_blocks =
      rig.agg.volume(0).activemap().metafile().metafile_blocks();
  EXPECT_EQ(r.gate_block_reads, agg_bitmap_blocks + 2 * vol_bitmap_blocks);
  EXPECT_GT(r.gate_block_reads,
            2 * TopAaFile::kRaidAwareBlocks +
                2 * TopAaFile::kRaidAgnosticBlocks);
}

TEST(Mount, SeededCachesSustainAllocation) {
  Rig rig;
  mount_all(rig.agg, /*use_topaa=*/true);
  // The first CP must proceed correctly from the seeded caches alone.
  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 0; l < 3000; ++l) {
    dirty.push_back({0, l});
  }
  const CpStats stats = ConsistencyPoint::run(rig.agg, dirty);
  EXPECT_EQ(stats.blocks_written, 3000u);
  const FlexVol& vol = rig.agg.volume(0);
  EXPECT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
}

TEST(Mount, BackgroundCompletionRestoresFullCaches) {
  Rig rig;
  mount_all(rig.agg, /*use_topaa=*/true);
  // Seeded heap holds at most kTopAaRaidAwareEntries per group.
  EXPECT_LE(rig.agg.rg_cache(0).size(),
            static_cast<std::size_t>(kTopAaRaidAwareEntries));
  complete_background(rig.agg);
  // Full heap again: every AA of the group.
  EXPECT_EQ(rig.agg.rg_cache(0).size(), rig.agg.rg_layout(0).aa_count());
  EXPECT_TRUE(rig.agg.rg_cache(0).validate());
}

TEST(Mount, ScanAndTopAaAgreeOnBestAa) {
  Rig rig;
  mount_all(rig.agg, /*use_topaa=*/true);
  const auto seeded_best = rig.agg.rg_cache(0).peek_best_score();
  complete_background(rig.agg);
  const auto full_best = rig.agg.rg_cache(0).peek_best_score();
  ASSERT_TRUE(seeded_best.has_value());
  ASSERT_TRUE(full_best.has_value());
  // The TopAA file holds the best AAs, so the seeded best equals the
  // rebuilt best.
  EXPECT_EQ(*seeded_best, *full_best);
}

TEST(Mount, CorruptRgTopAaFallsBackPerGroup) {
  Rig rig;
  // Damage RG1's TopAA block (each group owns a two-block slot in the
  // TopAA store).
  rig.agg.topaa_store().corrupt(rig.agg.rg_topaa_block(1), 3);
  const MountReport r = mount_all(rig.agg, /*use_topaa=*/true);
  EXPECT_EQ(r.rgs_seeded, 1u);  // RG0 fine, RG1 fell back
  // Both groups still operational.
  EXPECT_GT(rig.agg.rg_cache(0).size(), 0u);
  EXPECT_GT(rig.agg.rg_cache(1).size(), 0u);
}

TEST(Mount, TornTopAaCommitFallsBackPerGroup) {
  Rig rig;
  // A realistically torn commit (not a synthetic bit flip): RG1's TopAA
  // write during the next CP persists only its first 16 bytes — the new
  // header and CRC over the OLD surviving entries — so the checksum
  // cannot verify.  (The tear must land inside the ~200-byte payload;
  // a larger prefix would persist the whole logical image.)
  fault::FaultPlan plan;
  plan.seed = 31;
  plan.torn_write_prob = 1.0;
  plan.torn_bytes = 16;
  plan.only_block = rig.agg.rg_topaa_block(1);
  fault::FaultEngine engine(plan);
  rig.agg.topaa_store().set_fault_injector(&engine);
  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 6'000; l < 10'000; ++l) dirty.push_back({0, l});
  ConsistencyPoint::run(rig.agg, dirty);
  rig.agg.topaa_store().set_fault_injector(nullptr);
  ASSERT_FALSE(engine.journal().empty()) << "tear never triggered";

  const MountReport r = mount_all(rig.agg, /*use_topaa=*/true);
  EXPECT_TRUE(r.used_topaa);
  EXPECT_EQ(r.rgs_seeded, 1u);  // RG0 from TopAA, RG1 fell back to scan
  EXPECT_EQ(r.vols_seeded, 2u);
  EXPECT_GT(rig.agg.rg_cache(0).size(), 0u);
  EXPECT_GT(rig.agg.rg_cache(1).size(), 0u);
  // Iron restores the fast path for the next mount (run it before any
  // further CP — a CP's own TopAA commit would also repair the block)...
  EXPECT_GE(iron_check_topaa(rig.agg).rg_rewritten, 1u);
  EXPECT_EQ(mount_all(rig.agg, /*use_topaa=*/true).rgs_seeded, 2u);
  // ...and the system is fully operational afterwards.
  dirty.clear();
  for (std::uint64_t l = 0; l < 2'000; ++l) dirty.push_back({1, l});
  EXPECT_EQ(ConsistencyPoint::run(rig.agg, dirty).blocks_written, 2000u);
}

TEST(Mount, ScanPathParallelMatchesSerial) {
  ThreadPool pool(3);
  Rig serial_rig, parallel_rig(&pool);
  mount_all(serial_rig.agg, false);
  mount_all(parallel_rig.agg, false);
  for (RaidGroupId rg = 0; rg < 2; ++rg) {
    EXPECT_EQ(serial_rig.agg.rg_cache(rg).peek_best_score(),
              parallel_rig.agg.rg_cache(rg).peek_best_score());
    EXPECT_EQ(serial_rig.agg.rg_scoreboard(rg).total_free(),
              parallel_rig.agg.rg_scoreboard(rg).total_free());
  }
}


// --- Parallel scan determinism oracle (PR 9) -------------------------------
//
// The pipelined scan (core/scan_pipeline.hpp) claims byte-identical
// results at any worker count.  These tests prove it over full cache
// digests — every scoreboard score, every heap entry, every HBPS
// encoding — not just best-AA spot checks, on rigs whose volumes are big
// enough (5 bitmap-metafile blocks) that the per-volume scans cross
// kParallelScanMinBlocks and actually run pipelined.

std::vector<std::byte> image_bytes(const TopAaImage& img) {
  std::vector<std::byte> out;
  for (std::uint64_t b = 0; b < img.nblocks; ++b) {
    out.insert(out.end(), img.blocks[b].begin(), img.blocks[b].end());
  }
  return out;
}

struct CacheDigest {
  std::vector<std::vector<AaPick>> heap_tops;
  std::vector<std::vector<std::byte>> rg_hbps;
  std::vector<std::vector<AaScore>> rg_scores;
  std::vector<std::vector<std::byte>> vol_hbps;
  std::vector<std::vector<AaScore>> vol_scores;

  bool operator==(const CacheDigest&) const = default;
};

CacheDigest digest_of(Aggregate& agg) {
  CacheDigest d;
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    const AaScoreBoard& board = agg.rg_scoreboard(rg);
    std::vector<AaScore> scores;
    for (AaId aa = 0; aa < board.aa_count(); ++aa) {
      scores.push_back(board.score(aa));
    }
    d.rg_scores.push_back(std::move(scores));
    if (agg.rg_is_raid_agnostic(rg)) {
      d.rg_hbps.push_back(
          image_bytes(TopAaFile::encode_raid_agnostic(agg.rg_hbps(rg))));
    } else {
      const MaxHeapAaCache& heap = agg.rg_heap(rg);
      d.heap_tops.push_back(heap.top(heap.size()));
    }
  }
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    const FlexVol& vol = agg.volume(v);
    std::vector<AaScore> scores;
    for (AaId aa = 0; aa < vol.scoreboard().aa_count(); ++aa) {
      scores.push_back(vol.scoreboard().score(aa));
    }
    d.vol_scores.push_back(std::move(scores));
    d.vol_hbps.push_back(
        image_bytes(TopAaFile::encode_raid_agnostic(vol.cache())));
  }
  return d;
}

/// Seeded aggregate whose volume bitmaps span 5 metafile blocks each;
/// optionally adds a RAID-agnostic object-store pool as a third group.
std::unique_ptr<Aggregate> make_big(bool object_store_pool,
                                    ThreadPool* pool = nullptr) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 32 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 2048;
  cfg.raid_groups = {rg, rg};
  if (object_store_pool) {
    RaidGroupConfig os;
    os.data_devices = 1;
    os.parity_devices = 0;
    os.device_blocks = 4 * kFlatAaBlocks;
    os.media.type = MediaType::kObjectStore;
    cfg.raid_groups.push_back(os);
  }
  auto agg =
      std::make_unique<Aggregate>(cfg, 7, Runtime{}.with_pool(pool));
  FlexVolConfig vcfg;
  vcfg.vvbn_blocks = 160 * 1024;  // 5 bitmap-metafile blocks: pipelined
  vcfg.file_blocks = 64 * 1024;
  vcfg.aa_blocks = 4096;
  agg->add_volume(vcfg);
  agg->add_volume(vcfg);
  std::vector<DirtyBlock> dirty;
  for (VolumeId v = 0; v < 2; ++v) {
    dirty.clear();
    for (std::uint64_t l = 0; l < 20'000; ++l) dirty.push_back({v, l});
    ConsistencyPoint::run(*agg, dirty);
    dirty.clear();
    for (std::uint64_t l = 4'000; l < 11'000; ++l) dirty.push_back({v, l});
    ConsistencyPoint::run(*agg, dirty);
  }
  return agg;
}

std::uint64_t total_block_writes(Aggregate& agg) {
  std::uint64_t n = agg.meta_store().stats().block_writes +
                    agg.topaa_store().stats().block_writes;
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    n += agg.volume(v).store().stats().block_writes;
  }
  return n;
}

void check_scan_determinism(bool object_store_pool) {
  auto ref = make_big(object_store_pool);
  const std::uint64_t writes0 = total_block_writes(*ref);
  mount_all(*ref, /*use_topaa=*/false);
  // The scan is read-only: recomputation never touches media.
  EXPECT_EQ(total_block_writes(*ref), writes0);
  const CacheDigest want = digest_of(*ref);

  for (const unsigned workers : {1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ThreadPool pool(workers);
    auto agg = make_big(object_store_pool, &pool);
    mount_all(*agg, /*use_topaa=*/false);
    EXPECT_TRUE(digest_of(*agg) == want)
        << "parallel scan diverged from serial";
  }
}

TEST(MountParallel, ScanDeterministicAcrossWorkerCounts) {
  check_scan_determinism(/*object_store_pool=*/false);
}

TEST(MountParallel, ScanDeterministicWithObjectStorePool) {
  check_scan_determinism(/*object_store_pool=*/true);
}

TEST(MountParallel, RecoverMountSerialAndOneWorkerAgree) {
  // recover_mount's for_each_volume serial-fallback branch: pool == nullptr
  // and a 1-thread pool must walk the same path to the same caches.
  ThreadPool one(1);
  auto a = make_big(false);
  auto b = make_big(false, &one);
  const MountReport ra = recover_mount(*a, /*use_topaa=*/false);
  const MountReport rb = recover_mount(*b, /*use_topaa=*/false);
  EXPECT_EQ(ra.gate_block_reads, rb.gate_block_reads);
  EXPECT_FALSE(ra.used_topaa);
  EXPECT_TRUE(digest_of(*a) == digest_of(*b));
}

TEST(MountParallel, CompleteBackgroundSerialAndOneWorkerAgree) {
  ThreadPool one(1);
  auto a = make_big(false);
  auto b = make_big(false, &one);
  mount_all(*a, /*use_topaa=*/true);
  mount_all(*b, /*use_topaa=*/true);
  const std::uint64_t reads_a = complete_background(*a);
  const std::uint64_t reads_b = complete_background(*b);
  EXPECT_EQ(reads_a, reads_b);
  EXPECT_TRUE(digest_of(*a) == digest_of(*b));
}

TEST(MountParallel, EmitWhileScanStress) {
  // TSAN target (tools/check.sh --tsan): a 4-worker pipelined scan emits
  // spans from pool workers while a reader thread concurrently snapshots
  // the collector.  Proves the scan's handoff machinery and the obs layer
  // race-free under load.
  obs::spans().clear();
  obs::set_span_capture(true);
  ThreadPool pool(4);
  auto agg = make_big(false, &pool);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)obs::spans().snapshot();
    }
  });
  mount_all(*agg, /*use_topaa=*/false);
  complete_background(*agg);
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  obs::set_span_capture(false);
  obs::spans().clear();
  // The scan still produced the right answer under observation.
  const FlexVol& vol = agg->volume(0);
  EXPECT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
}

}  // namespace
}  // namespace wafl
