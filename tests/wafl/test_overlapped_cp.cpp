// OverlappedCpDriver contract (DESIGN.md §13): intake fills the active
// generation (driver-owned buffers only), start_cp freezes it and drains
// asynchronously, submit keeps admitting during the drain and blocks only
// on the backpressure rule.  The byte-identity oracle against the
// stop-the-world path lives in test_cp_determinism.cpp; here we cover the
// driver protocol itself — coalescing, backpressure, error propagation,
// snapshot ordering — plus the concurrent intake-while-drain stress that
// tools/check.sh --tsan runs under ThreadSanitizer.
#include "wafl/overlapped_cp.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fault/crash_point.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wafl/runtime.hpp"

namespace wafl {
namespace {

constexpr std::size_t kVols = 2;

std::unique_ptr<Aggregate> make_agg(ThreadPool* pool = nullptr,
                                    DrainExecutor* exec = nullptr) {
  AggregateConfig cfg;
  RaidGroupConfig hdd;
  hdd.data_devices = 4;
  hdd.parity_devices = 1;
  hdd.device_blocks = 64 * 1024;
  hdd.media.type = MediaType::kHdd;
  hdd.aa_stripes = 2048;
  cfg.raid_groups = {hdd, hdd};
  auto agg = std::make_unique<Aggregate>(
      cfg, 77, Runtime{}.with_pool(pool).with_drain_executor(exec));
  for (std::size_t v = 0; v < kVols; ++v) {
    FlexVolConfig vol;
    vol.file_blocks = 30'000;
    vol.vvbn_blocks = 3ull * kFlatAaBlocks;
    vol.aa_blocks = 8192;
    agg->add_volume(vol);
  }
  return agg;
}

std::vector<DirtyBlock> batch(Rng& rng, std::uint64_t n) {
  std::vector<DirtyBlock> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(
        {static_cast<VolumeId>(rng.below(kVols)), rng.below(25'000)});
  }
  return out;
}

TEST(OverlappedCp, DrainsWhatWasSubmitted) {
  auto agg = make_agg();
  OverlappedCpDriver driver(*agg);
  Rng rng(1);
  driver.submit(batch(rng, 4000));
  driver.start_cp();
  driver.wait_idle();
  const OverlapStats s = driver.stats();
  EXPECT_EQ(s.cps_started, 1u);
  EXPECT_EQ(s.cps_completed, 1u);
  EXPECT_EQ(s.blocks_admitted, 4000u);
  EXPECT_GT(s.cp.blocks_written, 0u);
  EXPECT_GT(s.drain_ns, 0u);
  EXPECT_EQ(driver.active_dirty(), 0u);
  EXPECT_FALSE(driver.drain_in_flight());
}

TEST(OverlappedCp, CoalescesRedirtiedBlocksPerGeneration) {
  auto agg = make_agg();
  OverlappedCpDriver driver(*agg);
  driver.submit(0, 42);
  driver.submit(0, 42);  // same generation: coalesced
  driver.submit(1, 42);  // different volume: distinct
  EXPECT_EQ(driver.active_dirty(), 2u);
  EXPECT_EQ(driver.stats().blocks_admitted, 3u);
  driver.start_cp();
  // The freeze swapped generations: the same block is admissible again.
  driver.submit(0, 42);
  EXPECT_EQ(driver.active_dirty(), 1u);
  driver.start_cp();
  driver.wait_idle();
  EXPECT_EQ(driver.stats().cps_completed, 2u);
  EXPECT_EQ(driver.active_dirty(), 0u);
}

TEST(OverlappedCp, NoBackpressureWithoutDrainInFlight) {
  auto agg = make_agg();
  OverlappedCpConfig cfg;
  cfg.dirty_high_watermark = 8;
  OverlappedCpDriver driver(*agg, cfg);
  Rng rng(2);
  // Far past the watermark with no drain in flight: the rule must not
  // apply (it would deadlock — nothing can shrink the active generation).
  driver.submit(batch(rng, 1000));
  EXPECT_EQ(driver.stats().submit_stalls, 0u);
  driver.start_cp();
  driver.wait_idle();
}

TEST(OverlappedCp, BackpressureStallsUntilDrainCompletes) {
  auto agg = make_agg();
  OverlappedCpConfig cfg;
  cfg.dirty_high_watermark = 4;
  OverlappedCpDriver driver(*agg, cfg);
  Rng rng(3);
  // The first submit at the watermark while a drain is in flight must
  // stall until the drain completes (the only event that can end the
  // pressure).  A 20k-block drain runs for milliseconds against
  // microsecond submits, so one round all but guarantees a stall — but a
  // preempted control thread can lose that race on a loaded box, so retry
  // with a fresh generation until one sticks.
  std::uint64_t logical = 0;
  std::uint64_t cps = 0;
  for (int round = 0; round < 32 && driver.stats().submit_stalls == 0;
       ++round) {
    driver.submit(batch(rng, 20'000));
    driver.start_cp();
    ++cps;
    while (driver.drain_in_flight()) {
      driver.submit(0, logical++ % 25'000);
    }
  }
  const OverlapStats s = driver.stats();
  EXPECT_GE(s.submit_stalls, 1u);
  EXPECT_GT(s.stall_ns, 0u);
  driver.start_cp();  // sweep the leftovers
  driver.wait_idle();
  EXPECT_EQ(driver.stats().cps_completed, cps + 1);
  EXPECT_EQ(driver.active_dirty(), 0u);
}

TEST(OverlappedCp, AutoTriggerStartsCpFromSubmit) {
  auto agg = make_agg();
  OverlappedCpConfig cfg;
  cfg.auto_cp_trigger = 512;
  OverlappedCpDriver driver(*agg, cfg);
  Rng rng(4);
  for (int i = 0; i < 8; ++i) {
    driver.submit(batch(rng, 256));
  }
  driver.wait_idle();
  EXPECT_GE(driver.stats().cps_started, 1u);
  driver.start_cp();
  driver.wait_idle();
  EXPECT_EQ(driver.active_dirty(), 0u);
  EXPECT_EQ(driver.stats().cps_started, driver.stats().cps_completed);
}

// tools/check.sh --tsan target: many submitter threads race intake against
// back-to-back drains on a pooled CP.  Correctness here is "TSAN-clean
// plus conservation": every admitted block is either drained or still in
// the active generation at the end.
TEST(OverlappedCp, ConcurrentIntakeDuringDrainStress) {
  ThreadPool pool(4);
  auto agg = make_agg(&pool);
  OverlappedCpDriver driver(*agg);
  constexpr int kThreads = 4;
  constexpr int kBatches = 40;
  std::atomic<int> live{kThreads};
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&driver, &live, t] {
      Rng rng(100u + static_cast<unsigned>(t));
      for (int i = 0; i < kBatches; ++i) {
        driver.submit(batch(rng, 64));
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  // Control stays on this thread: freeze whatever has accumulated, over
  // and over, while the writers race the drains.
  while (live.load(std::memory_order_acquire) > 0) {
    if (driver.active_dirty() > 0) {
      driver.start_cp();
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& w : writers) w.join();
  driver.start_cp();  // sweep the tail generation
  driver.wait_idle();
  const OverlapStats s = driver.stats();
  EXPECT_EQ(s.blocks_admitted,
            static_cast<std::uint64_t>(kThreads) * kBatches * 64);
  EXPECT_EQ(s.cps_started, s.cps_completed);
  // The control loop usually lands many mid-stream freezes, but a fully
  // starved control thread can legitimately fold everything into the one
  // final sweep — only the sweep itself is guaranteed.
  EXPECT_GE(s.cps_completed, 1u);
  EXPECT_EQ(driver.active_dirty(), 0u);
}

TEST(OverlappedCp, DrainErrorRethrownAtWaitIdle) {
  auto agg = make_agg();
  OverlappedCpDriver driver(*agg);
  Rng rng(5);
  driver.submit(batch(rng, 1000));
  fault::crash_hooks().arm("wa.in_overlap_drain", 1);
  driver.start_cp();
  driver.submit(0, 7);  // intake stays admissible while the drain dies
  EXPECT_THROW(driver.wait_idle(), fault::CrashPoint);
  fault::crash_hooks().disarm_all();
  // The frozen generation died with its drain (exactly what a crash
  // loses); the active generation survives in the driver.
  EXPECT_FALSE(driver.drain_in_flight());
  EXPECT_EQ(driver.active_dirty(), 1u);
  const OverlapStats s = driver.stats();
  EXPECT_EQ(s.cps_started, 1u);
  EXPECT_EQ(s.cps_completed, 0u);
}

TEST(OverlappedCp, FreezeErrorThrownFromStartCp) {
  auto agg = make_agg();
  OverlappedCpDriver driver(*agg);
  driver.submit(0, 1);
  fault::crash_hooks().arm("cp.in_gen_swap", 1);
  EXPECT_THROW(driver.start_cp(), fault::CrashPoint);
  fault::crash_hooks().disarm_all();
  // The swap failed before any drain launched: nothing in flight, no CP
  // counted.  (The half-swapped aggregate is crash state — recovery is
  // the harness's job, not the driver's.)
  EXPECT_FALSE(driver.drain_in_flight());
  EXPECT_EQ(driver.stats().cps_started, 0u);
}

TEST(OverlappedCp, SnapshotOpsQuiesceAndFoldAtNextFreeze) {
  auto agg = make_agg();
  OverlappedCpDriver driver(*agg);
  Rng rng(6);
  driver.submit(batch(rng, 2000));
  driver.start_cp();
  driver.wait_idle();
  const SnapId snap = driver.create_snapshot(0);
  // Overwrite the same logicals: the freed old copies divert to the
  // snapshot instead of the delayed-free log.
  Rng rng2(6);
  driver.submit(batch(rng2, 2000));
  driver.start_cp();
  driver.wait_idle();
  EXPECT_EQ(agg->volume(0).pending_delayed_frees(), 0u);
  driver.delete_snapshot(0, snap);
  const std::uint64_t staged = agg->volume(0).pending_delayed_frees();
  EXPECT_GT(staged, 0u);  // active-ledger frees staged by the deletion
  // They fold at the next freeze and drain down over subsequent CPs,
  // exactly like the stop-the-world path.
  while (agg->volume(0).pending_delayed_frees() > 0) {
    driver.start_cp();
    driver.wait_idle();
  }
}

TEST(OverlappedCp, DestructorJoinsInFlightDrain) {
  auto agg = make_agg();
  {
    OverlappedCpDriver driver(*agg);
    Rng rng(8);
    driver.submit(batch(rng, 8000));
    driver.start_cp();
    // Scope exit with the drain still running: the destructor joins it.
  }
  EXPECT_GT(agg->free_blocks(), 0u);
}

// Runtime-supplied DrainExecutor (DESIGN.md §16): the driver schedules
// drains on the shared executor instead of owning a thread, but every
// protocol guarantee — destructor-join, parked-exception rethrow at
// wait_idle — must hold unchanged.
TEST(OverlappedCp, SharedExecutorDestructorStillJoins) {
  DrainExecutor exec(2);
  auto agg = make_agg(nullptr, &exec);
  {
    OverlappedCpDriver driver(*agg);
    Rng rng(9);
    driver.submit(batch(rng, 6000));
    driver.start_cp();
    // Scope exit with the drain in flight on the SHARED executor: the
    // destructor waits for completion without tearing the executor down
    // (it does not own it — the executor outlives the driver).
  }
  EXPECT_GT(agg->free_blocks(), 0u);
}

TEST(OverlappedCp, SharedExecutorParkedExceptionRethrown) {
  DrainExecutor exec(1);
  auto agg = make_agg(nullptr, &exec);
  OverlappedCpDriver driver(*agg);
  Rng rng(10);
  driver.submit(batch(rng, 800));
  fault::crash_hooks().arm("wa.in_overlap_drain", 1);
  driver.start_cp();
  EXPECT_THROW(driver.wait_idle(), fault::CrashPoint);
  fault::crash_hooks().disarm_all();
  EXPECT_FALSE(driver.drain_in_flight());
  // The executor survives the parked exception: a fresh drain scheduled
  // on the same executor thread completes normally.
  driver.submit(batch(rng, 800));
  driver.start_cp();
  driver.wait_idle();
  EXPECT_EQ(driver.stats().cps_started, 2u);
  EXPECT_EQ(driver.stats().cps_completed, 1u);
}

TEST(OverlappedCp, TwoDriversShareOneExecutor) {
  // One executor thread: the two drivers' drains serialize through it,
  // and each driver's wait_idle sees only its own completion.
  DrainExecutor exec(1);
  auto a = make_agg(nullptr, &exec);
  auto b = make_agg(nullptr, &exec);
  OverlappedCpDriver da(*a);
  OverlappedCpDriver db(*b);
  Rng rng(11);
  da.submit(batch(rng, 4000));
  db.submit(batch(rng, 4000));
  da.start_cp();
  db.start_cp();
  da.wait_idle();
  db.wait_idle();
  EXPECT_EQ(da.stats().cps_completed, 1u);
  EXPECT_EQ(db.stats().cps_completed, 1u);
  EXPECT_GT(a->free_blocks(), 0u);
  EXPECT_GT(b->free_blocks(), 0u);
}

}  // namespace
}  // namespace wafl
