// Parameterized end-to-end sweep: the full CP machinery must uphold its
// invariants for every combination of AA-selection policy, media type,
// and RAID-group count.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "wafl/consistency_point.hpp"

namespace wafl {
namespace {

using Combo =
    std::tuple<AaSelectPolicy, MediaType, std::uint32_t /*raid groups*/>;

class AllocatorSweep : public ::testing::TestWithParam<Combo> {
 protected:
  std::unique_ptr<Aggregate> make() const {
    const auto& [policy, media, rg_count] = GetParam();
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 3;
    rg.parity_devices = 1;
    rg.device_blocks = 16 * 1024;
    rg.media.type = media;
    if (media == MediaType::kSsd) {
      rg.media.ssd.pages_per_erase_block = 1024;
    }
    if (media == MediaType::kSmr) {
      rg.media.smr.zone_blocks = 4096;
      rg.media.azcs = true;
    }
    rg.aa_stripes = 1024;
    cfg.raid_groups.assign(rg_count, rg);
    cfg.policy = policy;
    auto agg = std::make_unique<Aggregate>(cfg, 99);

    FlexVolConfig vol;
    vol.file_blocks = agg->total_blocks() / 2;
    vol.vvbn_blocks =
        (vol.file_blocks / kFlatAaBlocks + 2) * kFlatAaBlocks;
    vol.aa_blocks = kFlatAaBlocks;
    vol.policy = policy;
    agg->add_volume(vol);
    return agg;
  }

  static std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
    std::vector<DirtyBlock> out;
    for (std::uint64_t l = lo; l < hi; ++l) out.push_back({0, l});
    return out;
  }
};

TEST_P(AllocatorSweep, WriteOverwriteCycleHoldsInvariants) {
  auto agg = make();
  const FlexVol& vol = agg->volume(0);
  const std::uint64_t file = vol.file_blocks();

  // Fill 60%, then three overwrite waves.
  ConsistencyPoint::run(*agg, range(0, file * 6 / 10));
  for (int wave = 0; wave < 3; ++wave) {
    const std::uint64_t lo = static_cast<std::uint64_t>(wave) * 997;
    ConsistencyPoint::run(*agg, range(lo, lo + file / 4));

    // Accounting invariants after every CP.
    ASSERT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
    for (RaidGroupId rg = 0; rg < agg->raid_group_count(); ++rg) {
      const auto& layout = agg->rg_layout(rg);
      ASSERT_EQ(agg->rg_scoreboard(rg).total_free(),
                agg->activemap().metafile().free_in_range(
                    layout.base(), layout.base() + layout.total_blocks()));
    }
  }

  // Mapping invariants: unique live vvbns/pvbns, coherent ownership.
  std::set<Vbn> vvbns, pvbns;
  std::uint64_t mapped = 0;
  for (std::uint64_t l = 0; l < file; ++l) {
    if (!vol.is_mapped(l)) continue;
    ++mapped;
    ASSERT_TRUE(vvbns.insert(vol.vvbn_of(l)).second);
    const Vbn p = vol.pvbn_of(l);
    ASSERT_TRUE(pvbns.insert(p).second);
    ASSERT_TRUE(agg->activemap().is_allocated(p));
    const auto owner = agg->owner_of(p);
    ASSERT_TRUE(owner.has_value());
    ASSERT_EQ(owner->vvbn, vol.vvbn_of(l));
  }
  EXPECT_EQ(agg->total_blocks() - agg->free_blocks(), mapped);
}

TEST_P(AllocatorSweep, EveryRaidGroupReceivesWrites) {
  auto agg = make();
  ConsistencyPoint::run(*agg, range(0, agg->volume(0).file_blocks() / 2));
  for (RaidGroupId rg = 0; rg < agg->raid_group_count(); ++rg) {
    EXPECT_GT(agg->raid_group(rg).stats().data_blocks_written, 0u)
        << "RAID group " << rg << " was never written";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, AllocatorSweep,
    ::testing::Combine(::testing::Values(AaSelectPolicy::kCache,
                                         AaSelectPolicy::kRandom),
                       ::testing::Values(MediaType::kHdd, MediaType::kSsd,
                                         MediaType::kSmr),
                       ::testing::Values(1u, 3u)),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      std::string name = std::get<0>(param_info.param) ==
                                 AaSelectPolicy::kCache
                             ? "cache"
                             : "random";
      name += "_";
      name += media_type_name(std::get<1>(param_info.param));
      name += "_rg" + std::to_string(std::get<2>(param_info.param));
      return name;
    });

}  // namespace
}  // namespace wafl
