// Snapshots and delayed-free reclamation (§1/§2.2 COW snapshots; §3.3.2's
// delayed-free use of the HBPS; §4.1.1's "freeing of blocks due to other
// internal activity, such as snapshot deletion").
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "wafl/consistency_point.hpp"

namespace wafl {
namespace {

struct Rig {
  Rig() : agg(make_config(), 21) {
    FlexVolConfig vcfg;
    vcfg.vvbn_blocks = 128 * 1024;
    vcfg.file_blocks = 64 * 1024;
    vcfg.aa_blocks = 8192;
    agg.add_volume(vcfg);
  }

  static AggregateConfig make_config() {
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 4;
    rg.parity_devices = 1;
    rg.device_blocks = 64 * 1024;
    rg.media.type = MediaType::kHdd;
    rg.aa_stripes = 2048;
    cfg.raid_groups = {rg};
    return cfg;
  }

  std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
    std::vector<DirtyBlock> out;
    for (std::uint64_t l = lo; l < hi; ++l) out.push_back({0, l});
    return out;
  }

  CpStats cp(std::uint64_t lo, std::uint64_t hi) {
    return ConsistencyPoint::run(agg, range(lo, hi));
  }

  Aggregate agg;
};

TEST(Snapshots, OverwritesDoNotFreeHeldBlocks) {
  Rig rig;
  rig.cp(0, 20'000);
  const std::uint64_t used_before =
      rig.agg.total_blocks() - rig.agg.free_blocks();

  FlexVol& vol = rig.agg.volume(0);
  const SnapId snap = vol.create_snapshot();
  EXPECT_EQ(vol.snapshot_count(), 1u);

  const CpStats stats = rig.cp(0, 10'000);
  // COW under a snapshot: nothing freed, 10 K new blocks live alongside
  // the held old copies.
  EXPECT_EQ(stats.blocks_freed, 0u);
  EXPECT_EQ(rig.agg.total_blocks() - rig.agg.free_blocks(),
            used_before + 10'000);

  // The snapshot still sees the frozen image.
  for (std::uint64_t l = 0; l < 10'000; l += 537) {
    const Vbn old_vvbn = vol.snapshot_vvbn_of(snap, l);
    ASSERT_NE(old_vvbn, kInvalidVbn);
    ASSERT_NE(old_vvbn, vol.vvbn_of(l));  // live file moved on
    ASSERT_TRUE(vol.activemap().is_allocated(old_vvbn));
  }
}

TEST(Snapshots, DeletionLogsDelayedFreesAndCpsReclaimThem) {
  Rig rig;
  rig.cp(0, 20'000);
  FlexVol& vol = rig.agg.volume(0);
  const SnapId snap = vol.create_snapshot();
  rig.cp(0, 10'000);  // 10 K held copies now exist

  vol.delete_snapshot(snap);
  // Overwritten blocks' old copies (10 K) are now delayed frees; the 10 K
  // unchanged blocks stay live and free nothing.
  EXPECT_EQ(vol.pending_delayed_frees(), 10'000u);

  // Subsequent CPs drain the debt a few regions at a time.
  std::uint64_t cps = 0;
  while (vol.pending_delayed_frees() > 0) {
    rig.cp(30'000 + cps * 10, 30'000 + cps * 10 + 10);
    ++cps;
    ASSERT_LT(cps, 100u);
  }
  EXPECT_GT(cps, 0u);
  // All space accounted for: 20 K live + 10 K+ small writes.
  const std::uint64_t live = 20'000 + cps * 10;
  EXPECT_EQ(rig.agg.total_blocks() - rig.agg.free_blocks(), live);
  EXPECT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
  EXPECT_TRUE(vol.cache().validate());
}

TEST(Snapshots, SharedBlocksSurviveUntilLastSnapshotDies) {
  Rig rig;
  rig.cp(0, 5'000);
  FlexVol& vol = rig.agg.volume(0);
  const SnapId s1 = vol.create_snapshot();
  const SnapId s2 = vol.create_snapshot();  // same image, both hold
  rig.cp(0, 5'000);                         // old copies held by s1 AND s2

  vol.delete_snapshot(s1);
  EXPECT_EQ(vol.pending_delayed_frees(), 0u);  // s2 still holds everything
  vol.delete_snapshot(s2);
  EXPECT_EQ(vol.pending_delayed_frees(), 5'000u);
}

TEST(Snapshots, ActiveBlocksNeverBecomeDelayedFrees) {
  Rig rig;
  rig.cp(0, 8'000);
  FlexVol& vol = rig.agg.volume(0);
  const SnapId snap = vol.create_snapshot();
  // No overwrites: the live file still references every snapshotted block.
  vol.delete_snapshot(snap);
  EXPECT_EQ(vol.pending_delayed_frees(), 0u);
  // Everything still readable.
  for (std::uint64_t l = 0; l < 8'000; l += 769) {
    ASSERT_TRUE(vol.is_mapped(l));
    ASSERT_TRUE(vol.activemap().is_allocated(vol.vvbn_of(l)));
  }
}

TEST(Snapshots, ReclaimedPhysicalBlocksReturnToAggregate) {
  Rig rig;
  rig.cp(0, 16'000);
  FlexVol& vol = rig.agg.volume(0);
  const SnapId snap = vol.create_snapshot();

  // Capture the held pvbns before overwriting.
  std::set<Vbn> held_pvbns;
  for (std::uint64_t l = 0; l < 16'000; ++l) {
    held_pvbns.insert(vol.pvbn_of(l));
  }
  rig.cp(0, 16'000);
  vol.delete_snapshot(snap);
  while (vol.pending_delayed_frees() > 0) {
    rig.cp(20'000, 20'001);
  }
  // Every held physical block is free again and unowned.
  for (const Vbn p : held_pvbns) {
    ASSERT_FALSE(rig.agg.activemap().is_allocated(p));
    ASSERT_FALSE(rig.agg.owner_of(p).has_value());
  }
}

TEST(Snapshots, ChurnUnderSnapshotKeepsInvariants) {
  Rig rig;
  rig.cp(0, 30'000);
  FlexVol& vol = rig.agg.volume(0);
  std::vector<SnapId> snaps;
  for (int round = 0; round < 6; ++round) {
    snaps.push_back(vol.create_snapshot());
    rig.cp(static_cast<std::uint64_t>(round) * 4'000,
           static_cast<std::uint64_t>(round) * 4'000 + 6'000);
    if (round % 2 == 1) {
      vol.delete_snapshot(snaps[static_cast<std::size_t>(round) / 2]);
    }
    ASSERT_EQ(vol.scoreboard().total_free(), vol.free_blocks());
    ASSERT_TRUE(vol.cache().validate());
  }
  for (std::size_t i = 3; i < snaps.size(); ++i) {
    vol.delete_snapshot(snaps[i]);
  }
  while (vol.pending_delayed_frees() > 0) {
    rig.cp(40'000, 40'002);
  }
  // Final coherence: live mappings unique, accounting exact.
  std::set<Vbn> vvbns;
  std::uint64_t mapped = 0;
  for (std::uint64_t l = 0; l < vol.file_blocks(); ++l) {
    if (!vol.is_mapped(l)) continue;
    ++mapped;
    ASSERT_TRUE(vvbns.insert(vol.vvbn_of(l)).second);
  }
  EXPECT_EQ(vol.config().vvbn_blocks - vol.free_blocks(), mapped);
}

TEST(SnapshotsDeathTest, DeletingUnknownSnapshotAsserts) {
  Rig rig;
  rig.cp(0, 100);
  EXPECT_DEATH(rig.agg.volume(0).delete_snapshot(42), "no such snapshot");
}

}  // namespace
}  // namespace wafl
