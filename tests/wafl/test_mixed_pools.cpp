// Object-store pools and mixed-media aggregates (§2.1's Fabric Pool and
// Flash Pool configurations).
//
// Physical storage with native redundancy gets flat 32 Ki-VBN AAs managed
// by the bounded-memory HBPS and persisted in the two-block RAID-agnostic
// TopAA form (§3.1, §3.3.2, §3.4); RAID groups keep the max-heap.  Both
// kinds coexist in one aggregate.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "device/object_store.hpp"
#include "wafl/consistency_point.hpp"
#include "wafl/mount.hpp"

namespace wafl {
namespace {

RaidGroupConfig object_pool(std::uint64_t blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 1;
  rg.parity_devices = 0;
  rg.device_blocks = blocks;
  rg.media.type = MediaType::kObjectStore;
  return rg;
}

RaidGroupConfig ssd_group(std::uint64_t device_blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 3;
  rg.parity_devices = 1;
  rg.device_blocks = device_blocks;
  rg.media.type = MediaType::kSsd;
  rg.media.ssd.pages_per_erase_block = 1024;
  rg.aa_stripes = 2048;
  return rg;
}

std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
  std::vector<DirtyBlock> out;
  for (std::uint64_t l = lo; l < hi; ++l) out.push_back({0, l});
  return out;
}

TEST(ObjectStorePool, UsesFlatAasAndHbps) {
  AggregateConfig cfg;
  cfg.raid_groups = {object_pool(4 * kFlatAaBlocks)};
  Aggregate agg(cfg, 1);
  EXPECT_TRUE(agg.rg_is_raid_agnostic(0));
  // §3.2.1: AA = 32 Ki consecutive VBNs in the absence of RAID geometry.
  EXPECT_EQ(agg.rg_layout(0).aa_blocks(), kFlatAaBlocks);
  EXPECT_EQ(agg.rg_layout(0).aa_count(), 4u);
  EXPECT_EQ(agg.rg_cache(0).size(), 4u);
}

TEST(ObjectStorePool, WritesFlowAndAccountCorrectly) {
  AggregateConfig cfg;
  cfg.raid_groups = {object_pool(8 * kFlatAaBlocks)};
  Aggregate agg(cfg, 1);
  FlexVolConfig vol;
  vol.file_blocks = 100'000;
  vol.vvbn_blocks = 4ull * kFlatAaBlocks;
  agg.add_volume(vol);

  const CpStats stats = ConsistencyPoint::run(agg, range(0, 50'000));
  EXPECT_EQ(stats.blocks_written, 50'000u);
  // No RAID: no parity I/O at all.
  EXPECT_EQ(stats.parity_read_blocks, 0u);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - 50'000);
  // Colocation shows up as large PUTs: one per 64-block tetris window
  // rather than per block.
  const auto& os = dynamic_cast<const ObjectStoreModel&>(
      agg.data_device(0, 0));
  EXPECT_EQ(os.blocks_put(), 50'000u);
  EXPECT_LE(os.puts_issued(), 50'000u / 64 + 16);
  EXPECT_TRUE(agg.rg_cache(0).validate());
}

TEST(ObjectStorePool, OverwritesAndInvariants) {
  AggregateConfig cfg;
  cfg.raid_groups = {object_pool(8 * kFlatAaBlocks)};
  Aggregate agg(cfg, 1);
  FlexVolConfig vol;
  vol.file_blocks = 120'000;
  vol.vvbn_blocks = 5ull * kFlatAaBlocks;
  agg.add_volume(vol);

  ConsistencyPoint::run(agg, range(0, 100'000));
  const CpStats stats = ConsistencyPoint::run(agg, range(20'000, 60'000));
  EXPECT_EQ(stats.blocks_freed, 40'000u);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - 100'000);
  EXPECT_EQ(agg.rg_scoreboard(0).total_free(), agg.free_blocks());
}

TEST(ObjectStorePool, TopAaRoundTripsThroughMount) {
  AggregateConfig cfg;
  cfg.raid_groups = {object_pool(8 * kFlatAaBlocks)};
  Aggregate agg(cfg, 1);
  FlexVolConfig vol;
  vol.file_blocks = 80'000;
  vol.vvbn_blocks = 3ull * kFlatAaBlocks;
  agg.add_volume(vol);
  ConsistencyPoint::run(agg, range(0, 60'000));

  agg.topaa_store().reset_stats();
  const MountReport r = mount_all(agg, /*use_topaa=*/true);
  EXPECT_EQ(r.rgs_seeded, 1u);
  // The pool's gate is the two-block RAID-agnostic form.
  EXPECT_EQ(agg.topaa_store().stats().block_reads,
            TopAaFile::kRaidAgnosticBlocks);

  // First CP from the seeded HBPS.
  const CpStats stats = ConsistencyPoint::run(agg, range(60'000, 62'000));
  EXPECT_EQ(stats.blocks_written, 2000u);
  EXPECT_TRUE(agg.rg_cache(0).validate());
}

TEST(FlashPoolStyle, MixedSsdAndObjectStoreAggregate) {
  // A Fabric Pool-like aggregate: one SSD RAID group plus an object-store
  // pool, each with its own cache form, sharing one physical VBN space.
  AggregateConfig cfg;
  cfg.raid_groups = {ssd_group(32 * 1024), object_pool(4 * kFlatAaBlocks)};
  Aggregate agg(cfg, 5);
  EXPECT_FALSE(agg.rg_is_raid_agnostic(0));
  EXPECT_TRUE(agg.rg_is_raid_agnostic(1));

  FlexVolConfig vol;
  vol.file_blocks = 120'000;
  vol.vvbn_blocks = 5ull * kFlatAaBlocks;
  agg.add_volume(vol);

  ConsistencyPoint::run(agg, range(0, 100'000));
  // Both pools took writes.
  EXPECT_GT(agg.raid_group(0).stats().data_blocks_written, 0u);
  EXPECT_GT(agg.raid_group(1).stats().data_blocks_written, 0u);

  // Overwrite churn; invariants per pool.
  ConsistencyPoint::run(agg, range(10'000, 50'000));
  for (RaidGroupId rg = 0; rg < 2; ++rg) {
    const auto& layout = agg.rg_layout(rg);
    ASSERT_EQ(agg.rg_scoreboard(rg).total_free(),
              agg.activemap().metafile().free_in_range(
                  layout.base(), layout.base() + layout.total_blocks()));
    ASSERT_TRUE(agg.rg_cache(rg).validate());
  }

  // Mount both forms from their TopAA slots.
  const MountReport r = mount_all(agg, /*use_topaa=*/true);
  EXPECT_EQ(r.rgs_seeded, 2u);
  const CpStats stats = ConsistencyPoint::run(agg, range(100'000, 102'000));
  EXPECT_EQ(stats.blocks_written, 2000u);
}

TEST(FlashPoolStyle, CleanerSkipsHbpsPools) {
  AggregateConfig cfg;
  cfg.raid_groups = {object_pool(4 * kFlatAaBlocks)};
  Aggregate agg(cfg, 7);
  EXPECT_FALSE(agg.checkout_aa(0, 0));  // HBPS pools are not heap-cleanable
}

}  // namespace
}  // namespace wafl
