// Concurrency battery for the sharded intake front end (DESIGN.md §14).
//
// test_overlapped_cp.cpp proves the driver protocol; this suite proves the
// protocol stays correct UNDER CONTENTION.  The matrix crosses writer
// counts (2/4/8) with the two pressure regimes — drain-in-flight with free
// intake, and a watermark low enough that backpressure engages against the
// drain — and every cell asserts conservation: raw submissions all count,
// claim winners all drain, and start/complete never diverge.  The
// emit-while-freeze race hammers the one window the shard design must get
// right: the freeze acquiring every shard lock while submitters race
// claims into those same shards.  tools/check.sh --tsan runs this whole
// suite under ThreadSanitizer, which is the actual proof — the asserts
// here catch lost or duplicated blocks, TSAN catches the orderings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wafl/overlapped_cp.hpp"

namespace wafl {
namespace {

constexpr std::size_t kVols = 2;

std::unique_ptr<Aggregate> make_agg(ThreadPool* pool = nullptr) {
  AggregateConfig cfg;
  RaidGroupConfig hdd;
  hdd.data_devices = 4;
  hdd.parity_devices = 1;
  hdd.device_blocks = 64 * 1024;
  hdd.media.type = MediaType::kHdd;
  hdd.aa_stripes = 2048;
  cfg.raid_groups = {hdd, hdd};
  auto agg = std::make_unique<Aggregate>(cfg, 77, Runtime{}.with_pool(pool));
  for (std::size_t v = 0; v < kVols; ++v) {
    FlexVolConfig vol;
    vol.file_blocks = 30'000;
    vol.vvbn_blocks = 3ull * kFlatAaBlocks;
    vol.aa_blocks = 8192;
    agg->add_volume(vol);
  }
  return agg;
}

std::vector<DirtyBlock> batch(Rng& rng, std::uint64_t n) {
  std::vector<DirtyBlock> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(
        {static_cast<VolumeId>(rng.below(kVols)), rng.below(25'000)});
  }
  return out;
}

/// Conservation invariants every matrix cell must satisfy once idle:
/// nothing lost, nothing double-counted, stall accounting coherent.
void expect_conserved(const OverlapStats& s, std::uint64_t raw_submitted) {
  EXPECT_EQ(s.blocks_admitted, raw_submitted);
  EXPECT_LE(s.blocks_coalesced, s.blocks_admitted);
  EXPECT_EQ(s.cps_started, s.cps_completed);
  EXPECT_EQ(s.submit_stalls == 0, s.stall_ns == 0);
}

// --- Matrix: writers × drain-in-flight ------------------------------------

/// N writers stream batches while the control thread freezes whatever has
/// accumulated, over and over — every freeze races live intake, every
/// drain overlaps it.  The generous watermark keeps backpressure out of
/// the picture; that regime gets its own cell below.
void run_drain_in_flight_cell(unsigned writers) {
  SCOPED_TRACE("writers=" + std::to_string(writers));
  ThreadPool pool(4);
  auto agg = make_agg(&pool);
  OverlappedCpDriver driver(*agg);
  constexpr int kBatches = 30;
  constexpr std::uint64_t kBatch = 64;
  std::atomic<unsigned> live{writers};
  std::vector<std::thread> threads;
  threads.reserve(writers);
  for (unsigned t = 0; t < writers; ++t) {
    threads.emplace_back([&driver, &live, writers, t] {
      Rng rng(1000u * writers + t);
      for (int i = 0; i < kBatches; ++i) {
        driver.submit(batch(rng, kBatch));
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  while (live.load(std::memory_order_acquire) > 0) {
    if (driver.active_dirty() > 0) {
      driver.start_cp();
    } else {
      std::this_thread::yield();
    }
  }
  for (auto& th : threads) th.join();
  driver.start_cp();  // sweep the tail generation
  driver.wait_idle();
  const OverlapStats s = driver.stats();
  expect_conserved(s, std::uint64_t{writers} * kBatches * kBatch);
  EXPECT_EQ(driver.active_dirty(), 0u);
  // Leases were offered on every admitting batch: before the first freeze
  // every reserve misses (nothing armed yet), afterwards the re-armed runs
  // serve hits.  Either way the accounting must have moved.
  EXPECT_GT(s.lease_hits + s.lease_misses, 0u);
  if (s.lease_hits > 0) {
    EXPECT_GT(s.lease_blocks_reserved, 0u);
  }
}

TEST(ConcurrentIntake, DrainInFlightWriters2) { run_drain_in_flight_cell(2); }
TEST(ConcurrentIntake, DrainInFlightWriters4) { run_drain_in_flight_cell(4); }
TEST(ConcurrentIntake, DrainInFlightWriters8) { run_drain_in_flight_cell(8); }

// --- Matrix: writers × backpressure-engaged -------------------------------

/// Same writer fan-in, but a tiny watermark against a long preloaded
/// drain: submits during the drain must hit the backpressure rule.  A
/// preempted round can lose the race on a loaded box (the drain finishes
/// before any writer reaches the watermark), so rounds retry like
/// OverlappedCp.BackpressureStallsUntilDrainCompletes; raw-count
/// conservation is tracked across however many rounds run.
void run_backpressure_cell(unsigned writers) {
  SCOPED_TRACE("writers=" + std::to_string(writers));
  ThreadPool pool(4);
  auto agg = make_agg(&pool);
  OverlappedCpConfig cfg;
  cfg.dirty_high_watermark = 8;
  OverlappedCpDriver driver(*agg, cfg);
  Rng preload_rng(9);
  std::uint64_t raw = 0;
  for (int round = 0; round < 16 && driver.stats().submit_stalls == 0;
       ++round) {
    driver.submit(batch(preload_rng, 20'000));
    raw += 20'000;
    driver.start_cp();
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (unsigned t = 0; t < writers; ++t) {
      threads.emplace_back([&driver, writers, round, t] {
        Rng rng(5000u * writers + 100u * static_cast<unsigned>(round) + t);
        for (int i = 0; i < 8; ++i) {
          driver.submit(batch(rng, 16));
        }
      });
    }
    for (auto& th : threads) th.join();
    raw += std::uint64_t{writers} * 8 * 16;
  }
  driver.start_cp();  // sweep the leftovers
  driver.wait_idle();
  const OverlapStats s = driver.stats();
  EXPECT_GE(s.submit_stalls, 1u);
  EXPECT_GT(s.stall_ns, 0u);
  expect_conserved(s, raw);
  EXPECT_EQ(driver.active_dirty(), 0u);
}

TEST(ConcurrentIntake, BackpressureWriters2) { run_backpressure_cell(2); }
TEST(ConcurrentIntake, BackpressureWriters4) { run_backpressure_cell(4); }
TEST(ConcurrentIntake, BackpressureWriters8) { run_backpressure_cell(8); }

// --- Emit-while-freeze race -----------------------------------------------

// The freeze takes every shard lock in id order and folds while writers
// race single-block submits into those same shards.  Control freezes
// back-to-back as fast as the drains allow, maximizing the number of
// submit/freeze boundary crossings; each submit lands wholly in one
// generation or the next, never torn across the fold.
TEST(ConcurrentIntake, EmitWhileFreezeRace) {
  ThreadPool pool(4);
  auto agg = make_agg(&pool);
  OverlappedCpDriver driver(*agg);
  constexpr unsigned kWriters = 4;
  constexpr int kSubmits = 1500;
  std::atomic<unsigned> live{kWriters};
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&driver, &live, t] {
      Rng rng(31u + t);
      for (int i = 0; i < kSubmits; ++i) {
        driver.submit(static_cast<VolumeId>(rng.below(kVols)),
                      rng.below(25'000));
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  std::uint64_t freezes = 0;
  while (live.load(std::memory_order_acquire) > 0) {
    driver.start_cp();  // freeze whatever raced in — empty CPs included
    ++freezes;
  }
  for (auto& th : threads) th.join();
  driver.start_cp();
  driver.wait_idle();
  const OverlapStats s = driver.stats();
  expect_conserved(s, std::uint64_t{kWriters} * kSubmits);
  EXPECT_EQ(s.cps_completed, freezes + 1);
  EXPECT_EQ(driver.active_dirty(), 0u);
  // The claim space recycled cleanly across all those generations: a
  // fresh duplicate pair coalesces to exactly one winner.
  driver.submit(0, 42);
  driver.submit(0, 42);
  EXPECT_EQ(driver.active_dirty(), 1u);
  driver.start_cp();
  driver.wait_idle();
}

// Content-keyed explicit routing (the determinism oracle's mode) under
// contention: every thread owns a disjoint shard subset, so no two
// threads ever contend on a shard lock — only on the claim bitmap.
TEST(ConcurrentIntake, SubmitToShardDisjointOwners) {
  ThreadPool pool(4);
  auto agg = make_agg(&pool);
  OverlappedCpDriver driver(*agg);
  const std::size_t shards = driver.intake_shards();
  ASSERT_GE(shards, 4u);
  constexpr unsigned kWriters = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (unsigned t = 0; t < kWriters; ++t) {
    threads.emplace_back([&driver, shards, t] {
      for (int i = 0; i < kRounds; ++i) {
        for (std::size_t sh = t; sh < shards; sh += kWriters) {
          const DirtyBlock b{static_cast<VolumeId>(sh % kVols),
                             static_cast<std::uint64_t>(i) * shards + sh};
          driver.submit_to_shard(sh, std::span<const DirtyBlock>(&b, 1));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  driver.start_cp();
  driver.wait_idle();
  const OverlapStats s = driver.stats();
  expect_conserved(s, std::uint64_t{kRounds} * shards);
  EXPECT_EQ(s.blocks_coalesced, 0u);  // all (vol, logical) keys distinct
  EXPECT_EQ(driver.active_dirty(), 0u);
}

}  // namespace
}  // namespace wafl
