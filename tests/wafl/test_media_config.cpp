#include "wafl/media_config.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wafl/aa_select.hpp"
#include "wafl/flexvol.hpp"

namespace wafl {
namespace {

TEST(MediaConfigFactory, MakesEachMediaType) {
  MediaConfig cfg;
  cfg.type = MediaType::kHdd;
  EXPECT_EQ(make_device(cfg, 1024)->media_type(), MediaType::kHdd);
  cfg.type = MediaType::kSsd;
  EXPECT_EQ(make_device(cfg, 1024)->media_type(), MediaType::kSsd);
  cfg.type = MediaType::kSmr;
  EXPECT_EQ(make_device(cfg, 1024)->media_type(), MediaType::kSmr);
  cfg.type = MediaType::kObjectStore;
  EXPECT_EQ(make_device(cfg, 1024)->media_type(), MediaType::kObjectStore);
}

TEST(MediaConfigFactory, SsdFtlSelection) {
  MediaConfig cfg;
  cfg.type = MediaType::kSsd;
  cfg.ssd_ftl = SsdFtl::kBlockMapped;
  auto block_mapped = make_device(cfg, 4096);
  EXPECT_NE(dynamic_cast<BlockMappedSsdModel*>(block_mapped.get()), nullptr);
  cfg.ssd_ftl = SsdFtl::kPageMapped;
  auto page_mapped = make_device(cfg, 4096);
  EXPECT_NE(dynamic_cast<SsdModel*>(page_mapped.get()), nullptr);
}

TEST(MediaConfigFactory, AzcsWrapperDeliversRequestedDataCapacity) {
  MediaConfig cfg;
  cfg.type = MediaType::kSmr;
  cfg.azcs = true;
  // The wrapper exposes 63/64 of the raw media; the factory inflates the
  // raw size so the caller gets at least the DATA capacity asked for.
  const auto dev = make_device(cfg, 10'000);
  EXPECT_GE(dev->capacity_blocks(), 10'000u);
  EXPECT_NE(dynamic_cast<AzcsDevice*>(dev.get()), nullptr);
}

TEST(MediaConfigFactory, AzcsExactRegionMultiple) {
  MediaConfig cfg;
  cfg.type = MediaType::kHdd;
  cfg.azcs = true;
  const auto dev = make_device(cfg, 63 * 100);
  EXPECT_EQ(dev->capacity_blocks(), 63u * 100u);
}

TEST(MediaGeometryView, ConveysEraseBlockAndZone) {
  MediaConfig cfg;
  cfg.type = MediaType::kSsd;
  cfg.ssd.pages_per_erase_block = 2048;
  EXPECT_EQ(media_geometry(cfg).erase_block_blocks, 2048u);

  cfg = MediaConfig{};
  cfg.type = MediaType::kSmr;
  cfg.smr.zone_blocks = 16384;
  EXPECT_EQ(media_geometry(cfg).zone_blocks, 16384u);
  EXPECT_FALSE(media_geometry(cfg).azcs);

  // With AZCS, the zone converts to data-block units (63/64).
  cfg.azcs = true;
  EXPECT_EQ(media_geometry(cfg).zone_blocks, 16384u * 63 / 64);
  EXPECT_TRUE(media_geometry(cfg).azcs);
}

TEST(AaSelectRandom, PickerRespectsExclusionAndScores) {
  const AaLayout l = AaLayout::flat(0, 4 * 1024, 1024);
  AaScoreBoard board(l);
  // Empty out AAs 0..2; only AA 3 has free space.
  for (AaId aa = 0; aa < 3; ++aa) {
    for (std::uint32_t i = 0; i < 1024; ++i) {
      board.note_alloc(l.aa_begin(aa) + i);
    }
  }
  board.apply_cp_deltas();
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(pick_random_nonempty_aa(board, rng), 3u);
  }
  // Excluding the only candidate leaves nothing.
  EXPECT_EQ(pick_random_nonempty_aa(board, rng, /*exclude=*/3),
            kInvalidAaId);
}

}  // namespace
}  // namespace wafl
