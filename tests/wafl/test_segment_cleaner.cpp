#include "wafl/segment_cleaner.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "wafl/consistency_point.hpp"

namespace wafl {
namespace {

struct Rig {
  Rig() : agg(make_config(), 4) {
    FlexVolConfig vcfg;
    vcfg.vvbn_blocks = 128 * 1024;
    vcfg.file_blocks = 96 * 1024;
    vcfg.aa_blocks = 8192;
    agg.add_volume(vcfg);
  }

  static AggregateConfig make_config() {
    AggregateConfig cfg;
    RaidGroupConfig rg;
    rg.data_devices = 4;
    rg.parity_devices = 1;
    rg.device_blocks = 64 * 1024;
    rg.media.type = MediaType::kHdd;
    rg.aa_stripes = 1024;  // 32 AAs of 4096 blocks
    cfg.raid_groups = {rg};
    return cfg;
  }

  std::vector<DirtyBlock> range(std::uint64_t lo, std::uint64_t hi) {
    std::vector<DirtyBlock> out;
    for (std::uint64_t l = lo; l < hi; ++l) out.push_back({0, l});
    return out;
  }

  /// Writes then punches holes: leaves AAs ~75% free.
  void fragment() {
    ConsistencyPoint::run(agg, range(0, 80'000));
    // Overwrite 3 of every 4 blocks so the old copies free up, spread
    // across the whole span.  Split into two CPs so allocations never
    // outrun the deferred frees' headroom.
    std::vector<DirtyBlock> d;
    for (std::uint64_t l = 0; l < 40'000; ++l) {
      if (l % 4 != 0) d.push_back({0, l});
    }
    ConsistencyPoint::run(agg, d);
    d.clear();
    for (std::uint64_t l = 40'000; l < 80'000; ++l) {
      if (l % 4 != 0) d.push_back({0, l});
    }
    ConsistencyPoint::run(agg, d);
  }

  Aggregate agg;
};

TEST(SegmentCleaner, GeneratesEmptyAas) {
  Rig rig;
  rig.fragment();

  auto count_empty = [&] {
    std::uint32_t n = 0;
    const auto& board = rig.agg.rg_scoreboard(0);
    const auto& layout = rig.agg.rg_layout(0);
    for (AaId aa = 0; aa < board.aa_count(); ++aa) {
      if (board.score(aa) == layout.aa_capacity(aa)) ++n;
    }
    return n;
  };
  const std::uint32_t before = count_empty();

  CleanerConfig ccfg;
  ccfg.relocation_budget = 8192;
  ccfg.empty_pool_target = before + 2;
  SegmentCleaner cleaner(ccfg);
  const CleanerReport report = cleaner.run(rig.agg);
  EXPECT_GT(report.aas_cleaned, 0u);
  EXPECT_GT(report.blocks_relocated, 0u);
  EXPECT_GE(count_empty(), before + 2);
  EXPECT_TRUE(rig.agg.rg_cache(0).validate());
}

TEST(SegmentCleaner, DataRemainsReachableAfterCleaning) {
  Rig rig;
  rig.fragment();

  // Remember every logical mapping before cleaning.
  const FlexVol& vol = rig.agg.volume(0);
  std::vector<Vbn> vvbn_before(80'000);
  for (std::uint64_t l = 0; l < 80'000; ++l) {
    vvbn_before[l] = vol.vvbn_of(l);
  }

  CleanerConfig ccfg;
  ccfg.empty_pool_target = 1000;  // clean as much as the budget allows
  SegmentCleaner cleaner(ccfg);
  const CleanerReport report = cleaner.run(rig.agg);
  EXPECT_GT(report.blocks_relocated, 0u);

  // Virtual mappings unchanged; physical mappings all live and unique.
  std::set<Vbn> pvbns;
  for (std::uint64_t l = 0; l < 80'000; ++l) {
    ASSERT_EQ(vol.vvbn_of(l), vvbn_before[l]);
    const Vbn p = vol.pvbn_of(l);
    ASSERT_TRUE(rig.agg.activemap().is_allocated(p));
    ASSERT_TRUE(pvbns.insert(p).second);
    // Ownership stays coherent with the maps.
    const auto owner = rig.agg.owner_of(p);
    ASSERT_TRUE(owner.has_value());
    EXPECT_EQ(owner->vol, 0u);
    EXPECT_EQ(owner->vvbn, vol.vvbn_of(l));
  }
  // Global accounting: live blocks unchanged by cleaning.
  EXPECT_EQ(rig.agg.total_blocks() - rig.agg.free_blocks(), 80'000u);
}

TEST(SegmentCleaner, RespectsBudget) {
  Rig rig;
  rig.fragment();
  CleanerConfig ccfg;
  ccfg.relocation_budget = 1500;
  ccfg.empty_pool_target = 1000;  // unbounded pool: budget is the limit
  SegmentCleaner cleaner(ccfg);
  const CleanerReport report = cleaner.run(rig.agg);
  EXPECT_LE(report.blocks_relocated, 1500u);
}

TEST(SegmentCleaner, CleansEachAaOnce) {
  Rig rig;
  rig.fragment();
  CleanerConfig ccfg;
  ccfg.empty_pool_target = 1000;
  ccfg.relocation_budget = 4096;
  SegmentCleaner cleaner(ccfg);
  const CleanerReport first = cleaner.run(rig.agg);
  EXPECT_GT(first.aas_cleaned, 0u);
  const std::size_t cleaned_after_first = cleaner.cleaned_count(0);

  // Without new fragmentation, a second pass cleans different AAs (or
  // nothing) — never the same AA twice.
  const CleanerReport second = cleaner.run(rig.agg);
  EXPECT_GE(cleaner.cleaned_count(0),
            cleaned_after_first + second.aas_cleaned);
}

TEST(SegmentCleaner, SkipsMostlyFullAas) {
  Rig rig;
  // Dense data: every AA ~97% full — cleaning would be all relocation.
  ConsistencyPoint::run(rig.agg, rig.range(0, 96'000));
  CleanerConfig ccfg;
  ccfg.min_free_fraction = 0.5;
  ccfg.empty_pool_target = 1000;
  SegmentCleaner cleaner(ccfg);
  const CleanerReport report = cleaner.run(rig.agg);
  EXPECT_EQ(report.aas_cleaned, 0u);
  EXPECT_EQ(report.blocks_relocated, 0u);
}

TEST(SegmentCleaner, SkipsUnownedBlocks) {
  Rig rig;
  Rng rng(6);
  rig.agg.seed_rg_occupancy(0, 0.3, rng);  // unowned data everywhere
  SegmentCleaner cleaner;
  const CleanerReport report = cleaner.run(rig.agg);
  EXPECT_EQ(report.aas_cleaned, 0u);
  EXPECT_GT(report.aas_skipped_unowned, 0u);
}

TEST(SegmentCleaner, ImprovesSubsequentStripeFullness) {
  Rig rig;
  rig.fragment();

  // Consume most remaining pristine space so the allocator must use
  // fragmented AAs...
  auto fill_rest = [&](std::uint64_t lo) {
    ConsistencyPoint::run(rig.agg, rig.range(lo, lo + 8'000));
  };
  fill_rest(80'000);

  // ...then measure a write burst with and without prior cleaning.
  Rig cleaned_rig;
  cleaned_rig.fragment();
  ConsistencyPoint::run(cleaned_rig.agg, cleaned_rig.range(80'000, 88'000));
  CleanerConfig ccfg;
  ccfg.relocation_budget = 32'768;
  ccfg.empty_pool_target = 6;
  SegmentCleaner cleaner(ccfg);
  cleaner.run(cleaned_rig.agg);

  const CpStats dirty_burst =
      ConsistencyPoint::run(rig.agg, rig.range(88'000, 92'000));
  const CpStats clean_burst = ConsistencyPoint::run(
      cleaned_rig.agg, cleaned_rig.range(88'000, 92'000));

  const auto fullness = [](const CpStats& s) {
    return static_cast<double>(s.full_stripes) /
           static_cast<double>(s.full_stripes + s.partial_stripes);
  };
  EXPECT_GE(fullness(clean_burst) + 1e-9, fullness(dirty_burst));
}

}  // namespace
}  // namespace wafl
