#include "wafl/aggregate.hpp"

#include <gtest/gtest.h>

#include <set>

namespace wafl {
namespace {

AggregateConfig two_rg_hdd(AaSelectPolicy policy = AaSelectPolicy::kCache) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 3;
  rg.parity_devices = 1;
  rg.device_blocks = 16 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 1024;  // 16 AAs of 3072 blocks per group
  cfg.raid_groups = {rg, rg};
  cfg.policy = policy;
  return cfg;
}

TEST(Aggregate, GeometrySetup) {
  Aggregate agg(two_rg_hdd(), 1);
  EXPECT_EQ(agg.raid_group_count(), 2u);
  EXPECT_EQ(agg.total_blocks(), 2u * 3u * 16u * 1024u);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks());
  EXPECT_EQ(agg.rg_base(0), 0u);
  EXPECT_EQ(agg.rg_base(1), 3u * 16u * 1024u);
  EXPECT_EQ(agg.rg_layout(0).aa_count(), 16u);
  EXPECT_EQ(agg.rg_cache(0).size(), 16u);
}

TEST(Aggregate, AaSizingPolicyAppliedWhenNotOverridden) {
  AggregateConfig cfg = two_rg_hdd();
  cfg.raid_groups[0].aa_stripes.reset();
  cfg.raid_groups[1].aa_stripes.reset();
  // Default HDD sizing: 4096 stripes => 16384/4096 = 4 AAs per group.
  Aggregate agg(cfg, 1);
  EXPECT_EQ(agg.rg_layout(0).aa_count(), 4u);
  EXPECT_EQ(agg.rg_layout(0).aa_blocks(), 4096u * 3u);
}

TEST(Aggregate, AllocatesUniquePvbns) {
  Aggregate agg(two_rg_hdd(), 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  ASSERT_TRUE(agg.allocate_pvbns(10'000, out, stats));
  ASSERT_EQ(out.size(), 10'000u);
  std::set<Vbn> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size());
  for (const Vbn v : out) {
    EXPECT_LT(v, agg.total_blocks());
  }
}

TEST(Aggregate, RoundRobinSpreadsAcrossGroups) {
  Aggregate agg(two_rg_hdd(), 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  ASSERT_TRUE(agg.allocate_pvbns(6000, out, stats));
  CpStats finish;
  agg.finish_cp(finish);

  const auto& s0 = agg.raid_group(0).stats();
  const auto& s1 = agg.raid_group(1).stats();
  EXPECT_GT(s0.data_blocks_written, 0u);
  EXPECT_GT(s1.data_blocks_written, 0u);
  // On an empty aggregate, the split is essentially even.
  const auto hi = std::max(s0.data_blocks_written, s1.data_blocks_written);
  const auto lo = std::min(s0.data_blocks_written, s1.data_blocks_written);
  EXPECT_LT(hi - lo, 400u);
}

TEST(Aggregate, EmptyAggregateWritesFullStripes) {
  Aggregate agg(two_rg_hdd(), 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  // Exactly 10 tetrises worth per group.
  const std::uint64_t blocks = 2 * 10 * 64 * 3;
  ASSERT_TRUE(agg.allocate_pvbns(blocks, out, stats));
  CpStats finish;
  agg.finish_cp(finish);
  CpStats total = stats;
  total.merge(finish);
  EXPECT_GT(total.full_stripes, 0u);
  EXPECT_EQ(total.partial_stripes, 0u);
  EXPECT_EQ(total.parity_read_blocks, 0u);
  EXPECT_EQ(total.blocks_written, blocks);
}

TEST(Aggregate, BlocksMarkedAllocatedAfterFinish) {
  Aggregate agg(two_rg_hdd(), 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  ASSERT_TRUE(agg.allocate_pvbns(100, out, stats));
  CpStats finish;
  agg.finish_cp(finish);
  for (const Vbn v : out) {
    EXPECT_TRUE(agg.activemap().is_allocated(v));
  }
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - 100);
}

TEST(Aggregate, DeferredFreesApplyAtFinish) {
  Aggregate agg(two_rg_hdd(), 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  ASSERT_TRUE(agg.allocate_pvbns(100, out, stats));
  CpStats finish;
  agg.finish_cp(finish);

  agg.begin_cp();
  for (int i = 0; i < 50; ++i) {
    agg.defer_free_pvbn(out[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - 100);  // not yet
  CpStats finish2;
  agg.finish_cp(finish2);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - 50);
  EXPECT_EQ(finish2.blocks_freed, 50u);
}

TEST(Aggregate, ScoreboardsAndHeapsStayConsistent) {
  Aggregate agg(two_rg_hdd(), 1);
  for (int cp = 0; cp < 5; ++cp) {
    agg.begin_cp();
    CpStats stats;
    std::vector<Vbn> out;
    ASSERT_TRUE(agg.allocate_pvbns(3000, out, stats));
    // Free some of what we just wrote next CP.
    CpStats finish;
    agg.finish_cp(finish);
    agg.begin_cp();
    for (std::size_t i = 0; i < out.size(); i += 2) {
      agg.defer_free_pvbn(out[i]);
    }
    CpStats finish2;
    agg.finish_cp(finish2);
  }
  for (RaidGroupId rg = 0; rg < 2; ++rg) {
    EXPECT_TRUE(agg.rg_cache(rg).validate());
    // The scoreboard's total must match the activemap's view of the RG
    // range.
    const auto& layout = agg.rg_layout(rg);
    const std::uint64_t free_in_rg =
        agg.activemap().metafile().free_in_range(
            layout.base(), layout.base() + layout.total_blocks());
    EXPECT_EQ(agg.rg_scoreboard(rg).total_free(), free_in_rg);
  }
}

TEST(Aggregate, SkipThresholdBiasesAwayFromFragmentedGroup) {
  AggregateConfig cfg = two_rg_hdd();
  cfg.rg_skip_free_fraction = 0.4;
  Aggregate agg(cfg, 1);

  // Nearly fill the whole aggregate so no pristine AA remains anywhere.
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> all;
  ASSERT_TRUE(agg.allocate_pvbns(agg.total_blocks() * 95 / 100, all, stats));
  CpStats f1;
  agg.finish_cp(f1);
  agg.begin_cp();
  // Free every second block of RG1's range only: RG1 AAs become ~50% free
  // while RG0 AAs stay nearly full (well under the 40% threshold).
  for (const Vbn v : all) {
    if (v >= agg.rg_base(1) && (v % 2 == 0)) {
      agg.defer_free_pvbn(v);
    }
  }
  CpStats f2;
  agg.finish_cp(f2);

  agg.raid_group(0).reset_stats();
  agg.raid_group(1).reset_stats();
  agg.begin_cp();
  std::vector<Vbn> out;
  CpStats s3;
  ASSERT_TRUE(agg.allocate_pvbns(20'000, out, s3));
  CpStats f3;
  agg.finish_cp(f3);
  // RG0's in-flight cursor AA may still drain, but fresh checkouts avoid
  // the fragmented group: the healthy group takes the vast majority.
  const std::uint64_t rg0 = agg.raid_group(0).stats().data_blocks_written;
  const std::uint64_t rg1 = agg.raid_group(1).stats().data_blocks_written;
  EXPECT_GT(rg1, 4 * rg0);
  EXPECT_GT(rg1, 15'000u);
}

TEST(Aggregate, ForcedProgressWhenAllGroupsFragmented) {
  AggregateConfig cfg = two_rg_hdd();
  cfg.rg_skip_free_fraction = 0.99;  // everything below threshold
  Aggregate agg(cfg, 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  // Consume a little so no AA is pristine.
  ASSERT_TRUE(agg.allocate_pvbns(100, out, stats));
  CpStats f;
  agg.finish_cp(f);

  agg.begin_cp();
  std::vector<Vbn> out2;
  CpStats s2;
  // All groups under threshold: the allocator must still make progress.
  EXPECT_TRUE(agg.allocate_pvbns(1000, out2, s2));
  EXPECT_EQ(out2.size(), 1000u);
}

TEST(Aggregate, OutOfSpaceReturnsFalse) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 2;
  rg.parity_devices = 1;
  rg.device_blocks = 128;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 64;
  cfg.raid_groups = {rg};
  Aggregate agg(cfg, 1);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  EXPECT_FALSE(agg.allocate_pvbns(1000, out, stats));
  EXPECT_EQ(out.size(), 256u);  // everything there was
}

TEST(Aggregate, SsdDevicesGetTrimOnFree) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 2;
  rg.parity_devices = 1;
  rg.device_blocks = 4096;
  rg.media.type = MediaType::kSsd;
  rg.media.ssd.pages_per_erase_block = 64;
  rg.media.ssd_ftl = SsdFtl::kPageMapped;
  rg.aa_stripes = 512;
  cfg.raid_groups = {rg};
  Aggregate agg(cfg, 1);

  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  ASSERT_TRUE(agg.allocate_pvbns(1000, out, stats));
  CpStats f;
  agg.finish_cp(f);

  auto& ssd = dynamic_cast<SsdModel&>(agg.data_device(0, 0));
  const std::uint64_t valid_before = ssd.valid_pages();
  EXPECT_GT(valid_before, 0u);

  agg.begin_cp();
  for (const Vbn v : out) {
    agg.defer_free_pvbn(v);
  }
  CpStats f2;
  agg.finish_cp(f2);
  EXPECT_LT(ssd.valid_pages(), valid_before);
  EXPECT_EQ(ssd.valid_pages(), 0u);
}

TEST(Aggregate, RandomPolicyAllocatesCorrectly) {
  Aggregate agg(two_rg_hdd(AaSelectPolicy::kRandom), 7);
  agg.begin_cp();
  CpStats stats;
  std::vector<Vbn> out;
  ASSERT_TRUE(agg.allocate_pvbns(5000, out, stats));
  std::set<Vbn> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), out.size());
  CpStats f;
  agg.finish_cp(f);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - 5000);
}

TEST(Aggregate, VolumesShareThePhysicalPool) {
  Aggregate agg(two_rg_hdd(), 1);
  FlexVolConfig vcfg;
  vcfg.vvbn_blocks = 8192;
  vcfg.file_blocks = 4096;
  vcfg.aa_blocks = 1024;
  FlexVol& v0 = agg.add_volume(vcfg);
  FlexVol& v1 = agg.add_volume(vcfg);
  EXPECT_EQ(agg.volume_count(), 2u);
  EXPECT_EQ(v0.id(), 0u);
  EXPECT_EQ(v1.id(), 1u);
  EXPECT_NE(&agg.volume(0), &agg.volume(1));
}

}  // namespace
}  // namespace wafl
