// Growth paths of the bitmap substrate (§3.1 RAID-group growth).
#include <gtest/gtest.h>

#include "bitmap/activemap.hpp"
#include "bitmap/bitmap_metafile.hpp"

namespace wafl {
namespace {

TEST(BitmapGrowth, BitmapExtendsWithClearBits) {
  Bitmap bm(100);
  bm.set(50);
  bm.set(99);
  bm.grow(300);
  EXPECT_EQ(bm.size(), 300u);
  EXPECT_TRUE(bm.test(50));
  EXPECT_TRUE(bm.test(99));
  EXPECT_EQ(bm.count_set(0, 300), 2u);
  EXPECT_EQ(bm.find_first_set(100, 300), 300u);
  bm.set(299);
  EXPECT_EQ(bm.count_set(0, 300), 3u);
}

TEST(BitmapGrowth, GrowWithinSameWord) {
  Bitmap bm(10);
  bm.set(9);
  bm.grow(20);
  EXPECT_TRUE(bm.test(9));
  EXPECT_EQ(bm.count_set(0, 20), 1u);
  EXPECT_FALSE(bm.test(10));
}

TEST(BitmapGrowth, MetafileGrowExtendsSummaries) {
  BitmapMetafile mf(kBitsPerBitmapBlock + 100);  // 1 full + 1 partial block
  mf.set_allocated(5);
  mf.set_allocated(kBitsPerBitmapBlock + 50);
  const std::uint64_t free_before = mf.total_free();

  mf.grow(3 * kBitsPerBitmapBlock);
  EXPECT_EQ(mf.metafile_blocks(), 3u);
  // The partial block gained its missing bits; new block fully free.
  EXPECT_EQ(mf.block_free_count(1), kBitsPerBitmapBlock - 1);
  EXPECT_EQ(mf.block_free_count(2), kBitsPerBitmapBlock);
  EXPECT_EQ(mf.total_free(),
            free_before + (kBitsPerBitmapBlock - 100) + kBitsPerBitmapBlock);
  // Old allocations intact.
  EXPECT_TRUE(mf.test(5));
  EXPECT_TRUE(mf.test(kBitsPerBitmapBlock + 50));
  // New range allocatable.
  mf.set_allocated(2 * kBitsPerBitmapBlock + 7);
  EXPECT_EQ(mf.block_free_count(2), kBitsPerBitmapBlock - 1);
}

TEST(BitmapGrowth, GrownMetafileFlushesAndReloads) {
  BlockStore store(1);
  BitmapMetafile mf(kBitsPerBitmapBlock, &store, 0);
  mf.set_allocated(3);
  mf.flush();

  store.grow(3);
  mf.grow(3 * kBitsPerBitmapBlock);
  mf.set_allocated(2 * kBitsPerBitmapBlock + 1);
  mf.flush();

  BitmapMetafile reloaded(3 * kBitsPerBitmapBlock, &store, 0);
  reloaded.load_all();
  EXPECT_TRUE(reloaded.test(3));
  EXPECT_TRUE(reloaded.test(2 * kBitsPerBitmapBlock + 1));
  EXPECT_EQ(reloaded.total_free(), mf.total_free());
}

TEST(BitmapGrowth, ActivemapGrowKeepsDeferredSemantics) {
  Activemap am(1000);
  am.allocate(10);
  am.defer_free(10);
  am.grow(5000);
  EXPECT_EQ(am.size_blocks(), 5000u);
  am.allocate(4000);
  EXPECT_EQ(am.apply_deferred_frees(), 1u);
  EXPECT_FALSE(am.is_allocated(10));
  EXPECT_TRUE(am.is_allocated(4000));
  EXPECT_EQ(am.total_free(), 4999u);
}

TEST(BlockStoreGrowth, GrowRaisesBound) {
  BlockStore store(2);
  store.grow(4);
  std::array<std::byte, kBlockSize> buf{};
  store.write(3, buf);  // would have asserted before the grow
  EXPECT_TRUE(store.is_materialized(3));
}

TEST(BlockStoreGrowthDeathTest, ShrinkAsserts) {
  BlockStore store(4);
  EXPECT_DEATH(store.grow(2), "");
}

}  // namespace
}  // namespace wafl
