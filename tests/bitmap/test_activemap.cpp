#include "bitmap/activemap.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

TEST(Activemap, AllocateIsImmediate) {
  Activemap am(1000);
  EXPECT_FALSE(am.is_allocated(10));
  am.allocate(10);
  EXPECT_TRUE(am.is_allocated(10));
  EXPECT_EQ(am.total_free(), 999u);
}

TEST(Activemap, DeferredFreeAppliesAtBoundary) {
  Activemap am(1000);
  am.allocate(1);
  am.allocate(2);
  am.defer_free(1);
  // Deferred: the bit stays set until the CP boundary, so the block cannot
  // be reused within the same CP (COW safety).
  EXPECT_TRUE(am.is_allocated(1));
  EXPECT_EQ(am.pending_frees(), 1u);
  EXPECT_EQ(am.apply_deferred_frees(), 1u);
  EXPECT_FALSE(am.is_allocated(1));
  EXPECT_TRUE(am.is_allocated(2));
  EXPECT_EQ(am.pending_frees(), 0u);
}

TEST(Activemap, LastAppliedFreesExposesBatch) {
  Activemap am(100);
  am.allocate(3);
  am.allocate(4);
  am.defer_free(3);
  am.defer_free(4);
  am.apply_deferred_frees();
  const auto frees = am.last_applied_frees();
  ASSERT_EQ(frees.size(), 2u);
  EXPECT_EQ(frees[0], 3u);
  EXPECT_EQ(frees[1], 4u);
}

TEST(Activemap, ApplyWithNothingPending) {
  Activemap am(100);
  EXPECT_EQ(am.apply_deferred_frees(), 0u);
  EXPECT_TRUE(am.last_applied_frees().empty());
}

TEST(Activemap, MultipleCpCycles) {
  Activemap am(100);
  for (int cycle = 0; cycle < 5; ++cycle) {
    const Vbn v = static_cast<Vbn>(cycle);
    am.allocate(v);
    am.defer_free(v);
    EXPECT_EQ(am.apply_deferred_frees(), 1u);
    EXPECT_EQ(am.total_free(), 100u);
  }
}

TEST(ActivemapDeathTest, DeferFreeOfFreeBlockAsserts) {
  Activemap am(100);
  EXPECT_DEATH(am.defer_free(5), "free block");
}

TEST(ActivemapDeathTest, ReuseWithinCpAsserts) {
  Activemap am(100);
  am.allocate(5);
  am.defer_free(5);
  // Still allocated until the boundary: re-allocating must trip.
  EXPECT_DEATH(am.allocate(5), "double allocation");
}

}  // namespace
}  // namespace wafl
