#include "bitmap/bitmap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace wafl {
namespace {

TEST(Bitmap, StartsAllClear) {
  Bitmap bm(100);
  EXPECT_EQ(bm.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(bm.test(i));
  }
  EXPECT_EQ(bm.count_set(0, 100), 0u);
  EXPECT_EQ(bm.count_clear(0, 100), 100u);
}

TEST(Bitmap, InitiallySetConstructorRespectsTail) {
  Bitmap bm(70, /*initially_set=*/true);
  EXPECT_EQ(bm.count_set(0, 70), 70u);
  // Whole-word popcount must not see ghost bits past size().
  EXPECT_EQ(bm.count_clear(0, 70), 0u);
}

TEST(Bitmap, SetClearTest) {
  Bitmap bm(128);
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(127);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(127));
  EXPECT_FALSE(bm.test(1));
  bm.clear(63);
  EXPECT_FALSE(bm.test(63));
  EXPECT_EQ(bm.count_set(0, 128), 3u);
}

TEST(Bitmap, CountSetSubRanges) {
  Bitmap bm(256);
  for (std::uint64_t i = 0; i < 256; i += 3) {
    bm.set(i);
  }
  // Brute-force cross-check on many (begin, end) pairs.
  for (std::uint64_t begin = 0; begin <= 256; begin += 17) {
    for (std::uint64_t end = begin; end <= 256; end += 13) {
      std::uint64_t expect = 0;
      for (std::uint64_t i = begin; i < end; ++i) {
        if (i % 3 == 0) ++expect;
      }
      EXPECT_EQ(bm.count_set(begin, end), expect)
          << "begin=" << begin << " end=" << end;
    }
  }
}

TEST(Bitmap, CountWithinSingleWord) {
  Bitmap bm(64);
  bm.set(5);
  bm.set(6);
  bm.set(7);
  EXPECT_EQ(bm.count_set(5, 8), 3u);
  EXPECT_EQ(bm.count_set(6, 7), 1u);
  EXPECT_EQ(bm.count_set(0, 5), 0u);
  EXPECT_EQ(bm.count_set(8, 64), 0u);
  EXPECT_EQ(bm.count_set(3, 3), 0u);
}

TEST(Bitmap, FindFirstClear) {
  Bitmap bm(200, true);
  bm.clear(130);
  EXPECT_EQ(bm.find_first_clear(0, 200), 130u);
  EXPECT_EQ(bm.find_first_clear(131, 200), 200u);
  EXPECT_EQ(bm.find_first_clear(130, 200), 130u);
  EXPECT_EQ(bm.find_first_clear(0, 130), 130u);  // none in range => end
}

TEST(Bitmap, FindFirstSet) {
  Bitmap bm(200);
  bm.set(64);
  bm.set(65);
  EXPECT_EQ(bm.find_first_set(0, 200), 64u);
  EXPECT_EQ(bm.find_first_set(65, 200), 65u);
  EXPECT_EQ(bm.find_first_set(66, 200), 200u);
  EXPECT_EQ(bm.find_first_set(64, 64), 64u);  // empty range => end
}

TEST(Bitmap, FindRespectsRangeEnd) {
  Bitmap bm(128);
  bm.set(100);
  // The set bit is inside the word but beyond `end`.
  EXPECT_EQ(bm.find_first_set(0, 100), 100u);
  EXPECT_EQ(bm.find_first_set(0, 99), 99u);
}

TEST(Bitmap, ClearRunLength) {
  Bitmap bm(100);
  bm.set(10);
  EXPECT_EQ(bm.clear_run_length(0, 100), 10u);
  EXPECT_EQ(bm.clear_run_length(11, 100), 89u);
  EXPECT_EQ(bm.clear_run_length(10, 100), 0u);
}

TEST(Bitmap, RandomizedAgainstReference) {
  const std::uint64_t n = 1000;
  Bitmap bm(n);
  std::vector<bool> ref(n, false);
  Rng rng(99);
  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t i = rng.below(n);
    if (rng.chance(0.5)) {
      if (!ref[i]) {
        bm.set(i);
        ref[i] = true;
      }
    } else if (ref[i]) {
      bm.clear(i);
      ref[i] = false;
    }
  }
  std::uint64_t expect_set = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(bm.test(i), ref[i]);
    if (ref[i]) ++expect_set;
  }
  EXPECT_EQ(bm.count_set(0, n), expect_set);

  // find_first_clear agrees with the reference from arbitrary starts.
  for (std::uint64_t start = 0; start < n; start += 37) {
    std::uint64_t expect = n;
    for (std::uint64_t i = start; i < n; ++i) {
      if (!ref[i]) {
        expect = i;
        break;
      }
    }
    EXPECT_EQ(bm.find_first_clear(start, n), expect);
  }
}

TEST(Bitmap, SizeNotMultipleOf64) {
  Bitmap bm(65);
  bm.set(64);
  EXPECT_EQ(bm.count_set(0, 65), 1u);
  EXPECT_EQ(bm.find_first_set(0, 65), 64u);
  bm.clear(64);
  EXPECT_EQ(bm.find_first_clear(64, 65), 64u);
}

}  // namespace
}  // namespace wafl
