#include "bitmap/bitmap_metafile.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

constexpr std::uint64_t kTwoBlocks = 2 * kBitsPerBitmapBlock;

TEST(BitmapMetafile, InitialSummaries) {
  BitmapMetafile mf(kTwoBlocks + 100);
  EXPECT_EQ(mf.metafile_blocks(), 3u);
  EXPECT_EQ(mf.block_free_count(0), kBitsPerBitmapBlock);
  EXPECT_EQ(mf.block_free_count(1), kBitsPerBitmapBlock);
  EXPECT_EQ(mf.block_free_count(2), 100u);
  EXPECT_EQ(mf.total_free(), kTwoBlocks + 100);
}

TEST(BitmapMetafile, AllocFreeUpdatesSummary) {
  BitmapMetafile mf(kTwoBlocks);
  mf.set_allocated(5);
  mf.set_allocated(kBitsPerBitmapBlock + 7);
  EXPECT_EQ(mf.block_free_count(0), kBitsPerBitmapBlock - 1);
  EXPECT_EQ(mf.block_free_count(1), kBitsPerBitmapBlock - 1);
  EXPECT_EQ(mf.total_free(), kTwoBlocks - 2);
  mf.set_free(5);
  EXPECT_EQ(mf.block_free_count(0), kBitsPerBitmapBlock);
  EXPECT_EQ(mf.total_free(), kTwoBlocks - 1);
}

TEST(BitmapMetafile, FreeInRangeAlignedUsesSummary) {
  BitmapMetafile mf(kTwoBlocks);
  for (std::uint64_t i = 0; i < 10; ++i) {
    mf.set_allocated(i);
  }
  EXPECT_EQ(mf.free_in_range(0, kBitsPerBitmapBlock),
            kBitsPerBitmapBlock - 10);
  EXPECT_EQ(mf.free_in_range(0, kTwoBlocks), kTwoBlocks - 10);
  // Unaligned ranges take the popcount path; results must agree.
  EXPECT_EQ(mf.free_in_range(0, 10), 0u);
  EXPECT_EQ(mf.free_in_range(5, 15), 5u);
}

TEST(BitmapMetafile, DirtyTrackingPerBlock) {
  BitmapMetafile mf(kTwoBlocks);
  EXPECT_EQ(mf.dirty_blocks(), 0u);
  mf.set_allocated(0);
  mf.set_allocated(1);
  mf.set_allocated(2);
  EXPECT_EQ(mf.dirty_blocks(), 1u);  // same metafile block
  mf.set_allocated(kBitsPerBitmapBlock);
  EXPECT_EQ(mf.dirty_blocks(), 2u);
  mf.begin_cp();
  EXPECT_EQ(mf.dirty_blocks(), 0u);
  mf.set_free(1);
  EXPECT_EQ(mf.dirty_blocks(), 1u);
}

TEST(BitmapMetafile, IntakeGenerationFoldsAtFreeze) {
  // Generation split (DESIGN.md §13): mark_dirty_intake stages into the
  // active set without touching the CP-visible dirty set; the freeze
  // folds and resets it.
  BitmapMetafile mf(kTwoBlocks);
  EXPECT_EQ(mf.freeze_dirty_generation(), 0u);  // empty freeze is a no-op
  mf.mark_dirty_intake(0);
  mf.mark_dirty_intake(1);
  mf.mark_dirty_intake(0);  // coalesced within the generation
  EXPECT_EQ(mf.intake_dirty_blocks(), 2u);
  EXPECT_EQ(mf.dirty_blocks(), 0u);

  EXPECT_EQ(mf.freeze_dirty_generation(), 2u);
  EXPECT_EQ(mf.intake_dirty_blocks(), 0u);
  EXPECT_EQ(mf.dirty_blocks(), 2u);

  // Re-staging a block that is already CP-dirty folds into the same dirty
  // entry — no double counting.
  mf.mark_dirty_intake(1);
  EXPECT_EQ(mf.freeze_dirty_generation(), 1u);
  EXPECT_EQ(mf.dirty_blocks(), 2u);
}

TEST(BitmapMetafile, ConcurrentIntakeMarksFoldOnce) {
  // mark_dirty_intake is the lock-free intake path (DESIGN.md §14): a CAS
  // claim per metafile block plus an MPSC list append by the winner.  Many
  // threads hammering overlapping block sets must coalesce to exactly one
  // staged entry per distinct block, and the freeze folds each once.
  constexpr std::uint64_t kBlocks = 7;
  BitmapMetafile mf(kBlocks * kBitsPerBitmapBlock);
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&mf, t] {
      Rng rng(40u + t);
      for (int i = 0; i < 4000; ++i) {
        mf.mark_dirty_intake(rng.below(kBlocks));
      }
    });
  }
  for (auto& w : writers) w.join();
  // 32k draws over 7 blocks: every block was marked by someone, and the
  // claims coalesced the rest.
  EXPECT_EQ(mf.intake_dirty_blocks(), kBlocks);
  EXPECT_EQ(mf.dirty_blocks(), 0u);
  EXPECT_EQ(mf.freeze_dirty_generation(), kBlocks);
  EXPECT_EQ(mf.intake_dirty_blocks(), 0u);
  EXPECT_EQ(mf.dirty_blocks(), kBlocks);
  // The claim space recycled: the next generation coalesces afresh.
  mf.mark_dirty_intake(3);
  mf.mark_dirty_intake(3);
  EXPECT_EQ(mf.intake_dirty_blocks(), 1u);
  EXPECT_EQ(mf.freeze_dirty_generation(), 1u);
}

TEST(BitmapMetafile, FlushWritesOnlyDirtyBlocks) {
  BlockStore store(4);
  BitmapMetafile mf(kTwoBlocks, &store, 0);
  mf.set_allocated(3);
  const std::uint64_t flushed = mf.flush();
  EXPECT_EQ(flushed, 1u);
  EXPECT_EQ(store.stats().block_writes, 1u);
  EXPECT_TRUE(store.is_materialized(0));
  EXPECT_FALSE(store.is_materialized(1));
  EXPECT_EQ(mf.dirty_blocks(), 0u);
}

TEST(BitmapMetafile, FlushLoadRoundTrip) {
  BlockStore store(8);
  Rng rng(5);
  BitmapMetafile mf(kTwoBlocks + 500, &store, 0);
  std::vector<Vbn> allocated;
  for (int i = 0; i < 3000; ++i) {
    const Vbn v = rng.below(kTwoBlocks + 500);
    if (!mf.test(v)) {
      mf.set_allocated(v);
      allocated.push_back(v);
    }
  }
  mf.flush();

  BitmapMetafile reloaded(kTwoBlocks + 500, &store, 0);
  reloaded.load_all();
  EXPECT_EQ(reloaded.total_free(), mf.total_free());
  for (const Vbn v : allocated) {
    EXPECT_TRUE(reloaded.test(v));
  }
  for (std::uint64_t b = 0; b < mf.metafile_blocks(); ++b) {
    EXPECT_EQ(reloaded.block_free_count(b), mf.block_free_count(b));
  }
}

TEST(BitmapMetafile, LoadAllCountsReads) {
  BlockStore store(8);
  BitmapMetafile mf(kTwoBlocks, &store, 0);
  mf.set_allocated(0);
  mf.flush();
  store.reset_stats();

  BitmapMetafile reloaded(kTwoBlocks, &store, 0);
  reloaded.load_all();
  // The mount-path scan reads EVERY metafile block (§3.4's linear walk).
  EXPECT_EQ(store.stats().block_reads, reloaded.metafile_blocks());
}

TEST(BitmapMetafile, LoadAllParallelMatchesSerial) {
  BlockStore store(8);
  Rng rng(17);
  BitmapMetafile mf(kTwoBlocks + 123, &store, 0);
  for (int i = 0; i < 5000; ++i) {
    const Vbn v = rng.below(kTwoBlocks + 123);
    if (!mf.test(v)) mf.set_allocated(v);
  }
  mf.flush();

  BitmapMetafile serial(kTwoBlocks + 123, &store, 0);
  serial.load_all();
  ThreadPool pool(3);
  BitmapMetafile parallel(kTwoBlocks + 123, &store, 0);
  parallel.load_all(&pool);
  EXPECT_EQ(serial.total_free(), parallel.total_free());
  for (std::uint64_t b = 0; b < serial.metafile_blocks(); ++b) {
    EXPECT_EQ(serial.block_free_count(b), parallel.block_free_count(b));
  }
}

TEST(BitmapMetafile, FindFree) {
  BitmapMetafile mf(1000);
  for (Vbn v = 0; v < 100; ++v) {
    mf.set_allocated(v);
  }
  EXPECT_EQ(mf.find_free(0, 1000), 100u);
  EXPECT_EQ(mf.find_free(0, 100), 100u);
  EXPECT_EQ(mf.find_free(500, 1000), 500u);
}

TEST(BitmapMetafile, StoreBaseOffset) {
  BlockStore store(10);
  BitmapMetafile mf(kBitsPerBitmapBlock, &store, /*store_base_block=*/5);
  mf.set_allocated(0);
  mf.flush();
  EXPECT_TRUE(store.is_materialized(5));
  EXPECT_FALSE(store.is_materialized(0));
}

TEST(BitmapMetafile, SplitFreeMatchesSetFree) {
  // The CP boundary's two-phase protocol — clear_unaccounted (bits only,
  // group-parallel) then account_frees (summary + dirty, serial) — must
  // land in exactly the state set_free produces.
  const std::uint64_t n = 2 * kBitsPerBitmapBlock;
  BitmapMetafile split(n);
  BitmapMetafile fused(n);
  std::vector<Vbn> victims;
  for (Vbn v = 0; v < n; v += 97) victims.push_back(v);
  for (const Vbn v : victims) {
    split.set_allocated(v);
    fused.set_allocated(v);
  }
  split.flush();
  fused.flush();

  for (const Vbn v : victims) split.clear_unaccounted(v);
  // Bits cleared, but nothing accounted yet: summaries and dirty state
  // still describe the pre-free world.
  EXPECT_EQ(split.total_free(), n - victims.size());
  EXPECT_EQ(split.dirty_blocks(), 0u);
  split.account_frees(victims);

  for (const Vbn v : victims) fused.set_free(v);

  EXPECT_EQ(split.total_free(), fused.total_free());
  EXPECT_EQ(split.dirty_blocks(), fused.dirty_blocks());
  for (std::uint64_t b = 0; b < split.metafile_blocks(); ++b) {
    EXPECT_EQ(split.block_free_count(b), fused.block_free_count(b));
  }
  for (Vbn v = 0; v < n; ++v) {
    ASSERT_EQ(split.test(v), fused.test(v)) << "bit " << v;
  }
}

TEST(BitmapMetafile, BatchedFreesMatchPerBitFuzz) {
  // clear_frees_batched + apply_free_deltas must land bit-for-bit and
  // count-for-count where the per-bit reference path (clear_unaccounted +
  // account_frees) lands, for random allocation densities and an
  // explicitly unsorted free order — the CP hands it deferral order.
  Rng rng(20180813);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t n = kBitsPerBitmapBlock + rng.below(kTwoBlocks);
    BitmapMetafile batched(n);
    BitmapMetafile per_bit(n);
    std::vector<Vbn> victims;
    for (Vbn v = 0; v < n; ++v) {
      if (rng.chance(0.2)) {
        batched.set_allocated(v);
        per_bit.set_allocated(v);
        if (rng.chance(0.5)) victims.push_back(v);
      }
    }
    batched.flush();
    per_bit.flush();
    // Shuffle: deferral order is allocation-history order, not VBN order.
    for (std::size_t i = victims.size(); i > 1; --i) {
      std::swap(victims[i - 1], victims[rng.below(i)]);
    }

    const BitmapMetafile::FreeDelta d = batched.clear_frees_batched(victims);
    // Bits cleared, nothing accounted yet.
    EXPECT_EQ(batched.dirty_blocks(), 0u);
    batched.apply_free_deltas(d);

    for (const Vbn v : victims) per_bit.clear_unaccounted(v);
    per_bit.account_frees(victims);

    ASSERT_EQ(batched.total_free(), per_bit.total_free()) << "round " << round;
    ASSERT_EQ(batched.dirty_blocks(), per_bit.dirty_blocks());
    for (std::uint64_t b = 0; b < batched.metafile_blocks(); ++b) {
      ASSERT_EQ(batched.block_free_count(b), per_bit.block_free_count(b))
          << "round " << round << " block " << b;
    }
    for (Vbn v = 0; v < n; ++v) {
      ASSERT_EQ(batched.test(v), per_bit.test(v)) << "bit " << v;
    }
    // Delta blocks come out ascending (the merge relies on it for
    // deterministic dirty order).
    for (std::size_t i = 1; i < d.per_block.size(); ++i) {
      ASSERT_LT(d.per_block[i - 1].first, d.per_block[i].first);
    }
  }
}

TEST(BitmapMetafile, BatchedFreesEmptyAndSingle) {
  BitmapMetafile mf(kTwoBlocks);
  EXPECT_TRUE(mf.clear_frees_batched({}).per_block.empty());
  mf.set_allocated(kBitsPerBitmapBlock + 3);
  const std::vector<Vbn> one = {kBitsPerBitmapBlock + 3};
  const BitmapMetafile::FreeDelta d = mf.clear_frees_batched(one);
  ASSERT_EQ(d.per_block.size(), 1u);
  EXPECT_EQ(d.per_block[0].first, 1u);
  EXPECT_EQ(d.per_block[0].second, 1u);
  mf.apply_free_deltas(d);
  EXPECT_EQ(mf.total_free(), kTwoBlocks);
}

TEST(BitmapMetafile, FreeInRangeUnalignedMatchesBruteForce) {
  // Interior whole blocks must come from the summary whatever the edge
  // alignment; the brute-force popcount over the same range is the oracle.
  Rng rng(99);
  const std::uint64_t n = 3 * kBitsPerBitmapBlock + 777;
  BitmapMetafile mf(n);
  for (Vbn v = 0; v < n; ++v) {
    if (rng.chance(0.3)) mf.set_allocated(v);
  }
  auto brute = [&](Vbn lo, Vbn hi) {
    std::uint64_t c = 0;
    for (Vbn v = lo; v < hi; ++v) c += mf.test(v) ? 0u : 1u;
    return c;
  };
  const std::pair<Vbn, Vbn> ranges[] = {
      {0, n},                                        // everything
      {5, kBitsPerBitmapBlock - 3},                  // inside one block
      {7, 2 * kBitsPerBitmapBlock + 11},             // both edges partial
      {kBitsPerBitmapBlock, 3 * kBitsPerBitmapBlock},          // aligned
      {kBitsPerBitmapBlock, 2 * kBitsPerBitmapBlock + 900},    // tail partial
      {123, 3 * kBitsPerBitmapBlock},                // head partial
      {n - 1, n},                                    // single trailing bit
      {42, 42},                                      // empty
  };
  for (const auto& [lo, hi] : ranges) {
    ASSERT_EQ(mf.free_in_range(lo, hi), brute(lo, hi))
        << "range [" << lo << ", " << hi << ")";
  }
}

TEST(BitmapMetafile, LoadAllMasksFinalBlockTail) {
  // The last metafile block's on-media image covers more bits than the
  // tracked space; load_all's word-level copy must not let that tail leak
  // into the bit vector or the free counts.
  BlockStore store(4);
  const std::uint64_t n = kBitsPerBitmapBlock + 100;  // block 1 is partial
  BitmapMetafile mf(n, &store, 0);
  mf.set_allocated(kBitsPerBitmapBlock + 99);
  mf.flush();
  // Poison the unused tail of the last on-media block.
  for (std::size_t bit = 100; bit < 200; ++bit) {
    store.corrupt(1, bit);
  }
  BitmapMetafile reloaded(n, &store, 0);
  reloaded.load_all();
  EXPECT_EQ(reloaded.total_free(), n - 1);
  EXPECT_EQ(reloaded.block_free_count(1), 99u);
  EXPECT_TRUE(reloaded.test(kBitsPerBitmapBlock + 99));
  // The poisoned bits are beyond size(); growth must hand them out clean.
  reloaded.grow(n + 100);
  EXPECT_EQ(reloaded.free_in_range(n, n + 100), 100u);
}

TEST(BitmapMetafileDeathTest, DoubleAllocationAsserts) {
  BitmapMetafile mf(100);
  mf.set_allocated(1);
  EXPECT_DEATH(mf.set_allocated(1), "double allocation");
}

TEST(BitmapMetafileDeathTest, FreeingFreeBlockAsserts) {
  BitmapMetafile mf(100);
  EXPECT_DEATH(mf.set_free(1), "freeing a free block");
}

TEST(BitmapMetafileDeathTest, ClearUnaccountedOnFreeBlockAsserts) {
  BitmapMetafile mf(100);
  EXPECT_DEATH(mf.clear_unaccounted(1), "freeing a free block");
}

TEST(BitmapMetafileDeathTest, AccountingUnclearedFreeAsserts) {
  BitmapMetafile mf(100);
  mf.set_allocated(1);
  const std::vector<Vbn> frees = {1};
  EXPECT_DEATH(mf.account_frees(frees), "accounting an uncleared free");
}

}  // namespace
}  // namespace wafl
