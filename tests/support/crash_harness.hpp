// CrashHarness: the crash-consistency proof rig (DESIGN.md §9).
//
// One harness instance models one machine lifetime:
//
//   1. run_clean_cps(): a seeded overwrite/snapshot workload runs N CPs to
//      completion, auditing live ownership invariants and snapshotting the
//      committed store bytes after every CP;
//   2. run_crash_cp(): one more CP runs with the configured crash trigger
//      armed (a named WAFL_CRASH_POINT, or a FaultEngine write-count
//      trigger) and the configured media faults (torn/dropped writes)
//      active.  The CrashPoint unwinds out of ConsistencyPoint::run,
//      freezing the BlockStores exactly as a power loss would;
//   3. verify_recovery(): everything in memory is discarded.  Fresh
//      aggregates are reconstructed over copies of the surviving bytes
//      and recovered twice — once through the TopAA fast path, once
//      through the full bitmap scan — then cross-checked:
//
//      I-A  both recoveries load identical bitmaps, and WAFL Iron finds
//           the same damage in both, repairs it, and is idempotent (a
//           second run is clean);
//      I-B  after Iron the TopAA bytes on both recoveries' media are
//           identical, and after background completion every cache
//           (heap tops, HBPS encodes, scoreboards) is identical between
//           the TopAA-path and scan-path recoveries — the §3.4 claim
//           that TopAA is a pure cache of the bitmaps;
//      I-C  recovery is deterministic: a third recovery from the same
//           bytes reproduces the first bit-for-bit, and an identical
//           follow-up CP on both recovered instances produces identical
//           stats, bitmaps, and block placements;
//      I-D  journal-bounded divergence: every persisted bitmap block is
//           either the last committed image, the crashed instance's
//           in-memory image, or a torn/dropped mix explained by a
//           FaultEngine journal record — no unexplained media state.
//
// The harness never uses gtest macros; failures accumulate as strings in
// the CrashVerdict so sweep tests can prefix them with a repro seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "util/thread_pool.hpp"
#include "wafl/aggregate.hpp"
#include "wafl/consistency_point.hpp"

namespace wafl::test {

struct CrashCaseConfig {
  /// Seeds the workload, the aggregate, and (by default) the fault plan.
  std::uint64_t seed = 1;
  /// Adds a RAID-agnostic object-store pool (HBPS + two-block TopAA) next
  /// to the two heap-managed HDD groups.
  bool object_store_pool = false;
  /// CP/recovery thread-pool workers; 0 runs everything serially.
  unsigned workers = 0;
  /// Completed CPs before the crash CP.
  unsigned clean_cps = 3;
  /// Runs the crash CP through the OverlappedCpDriver: half the dirty
  /// batch is submitted before start_cp(), the rest as intake while the
  /// frozen generation drains.  The crash then lands inside freeze
  /// (start_cp throws) or inside the concurrent drain (rethrown at
  /// wait_idle); intake admitted after the freeze is lost, exactly the
  /// §13 crash semantics.
  bool overlapped = false;
  /// With `overlapped`: the crash CP's intake is admitted from two writer
  /// threads through submit_to_shard with content-keyed routing (the
  /// DESIGN.md §14 determinism-preserving mode), joined before each
  /// control call — so a crash unwinding out of start_cp()/wait_idle()
  /// lands with no live writers, and the case stays seed-reproducible.
  bool concurrent_intake = false;

  /// Named crash point to arm for the crash CP (empty: none).
  std::string crash_hook;
  std::uint64_t crash_hook_nth = 1;

  /// Media faults active during the crash CP only, shared by every store
  /// of the aggregate (plan.seed 0 derives one from `seed`).  Its
  /// crash_after_writes trigger is the alternative to `crash_hook`.
  fault::FaultPlan plan;

  /// Read bit-rot on the aggregate TopAA store during the first
  /// recovery's mount (exercises the damaged-TopAA fallback on an
  /// otherwise honest medium).
  double recovery_bitrot_prob = 0.0;
};

struct CrashVerdict {
  bool crashed = false;
  std::string crash_point;
  std::uint64_t torn_writes = 0;
  std::uint64_t dropped_writes = 0;
  /// TopAA blocks Iron rewrote on the first recovery.
  std::size_t iron_rewrites = 0;
  std::vector<std::string> failures;
  /// Flight-recorder dump captured when the crash CP unwound (or, for a
  /// failed verdict with no crash, at verification time).  Empty when the
  /// obs layer is compiled out.
  std::string flight_dump;

  bool ok() const noexcept { return failures.empty(); }
  std::string message() const;
};

class CrashHarness {
 public:
  explicit CrashHarness(const CrashCaseConfig& cfg);
  ~CrashHarness();

  CrashHarness(const CrashHarness&) = delete;
  CrashHarness& operator=(const CrashHarness&) = delete;

  /// Steps 1–3 in sequence; the sweep entry point.
  CrashVerdict run_all();

  void run_clean_cps();
  /// Runs the crash CP.  Returns the crash point that fired ("" when the
  /// CP completed — e.g. no trigger configured, or a write-count trigger
  /// the CP never reached).  "iron."-prefixed hooks are NOT armed here —
  /// they fire inside repair, not inside a CP; see
  /// maybe_crash_during_repair().
  std::string run_crash_cp();
  /// The mid-repair leg of the sweep: when cfg_.crash_hook names an
  /// "iron." point, deterministically corrupts one group and one volume
  /// TopAA slot, recovers a fresh instance, and runs Iron with the hook
  /// armed.  The partially-repaired media (staged verify state is lost;
  /// a crash mid-apply leaves a prefix of repairs) is folded back into
  /// the surviving bytes, so verify_recovery() then proves recovery from
  /// a crashed repair.  No-op for other hooks.
  void maybe_crash_during_repair();
  CrashVerdict verify_recovery();

  /// Reconstructs a fresh aggregate over copies of the surviving store
  /// bytes and runs the recovery mount.  verify_recovery() does this
  /// internally; exposed so tests can crash *inside* recovery too.
  std::unique_ptr<Aggregate> recover(bool use_topaa);

  /// The live (possibly crashed) instance, for tests that attach their
  /// own FaultEngines to individual stores before run_crash_cp().
  Aggregate& aggregate() { return *agg_; }
  ThreadPool* pool() { return pool_ ? pool_.get() : nullptr; }

  /// Folds a test-owned engine's journal into the I-D divergence check
  /// (records must reference this harness's stores).
  void add_journal(const std::vector<fault::FaultRecord>& extra);

 private:
  struct CacheDigest {
    std::vector<std::vector<AaPick>> heap_tops;
    std::vector<std::vector<std::byte>> rg_hbps;
    std::vector<std::vector<AaScore>> rg_scores;
    std::vector<std::vector<std::byte>> vol_hbps;
    std::vector<std::vector<AaScore>> vol_scores;
  };

  std::unique_ptr<Aggregate> make_aggregate() const;
  std::unique_ptr<Aggregate> rebuild();
  void attach_engine(FaultInjector* injector);
  void detach_engine();
  std::vector<DirtyBlock> next_dirty(double lo, double hi);
  std::vector<DirtyBlock> followup_dirty() const;
  void mutate_snapshots();
  void audit_live(Aggregate& agg, const std::string& when);
  void snapshot_committed();
  void capture_truth();
  void check_journal_bounded();
  static CacheDigest digest_of(Aggregate& agg);
  void compare_digests(const CacheDigest& a, const CacheDigest& b,
                       const std::string& tag);
  void compare_store_range(const BlockStore& a, const BlockStore& b,
                           std::uint64_t lo, std::uint64_t hi,
                           const std::string& tag);
  void compare_bitmaps(Aggregate& a, Aggregate& b, const std::string& tag);
  void fail(std::string msg) { failures_.push_back(std::move(msg)); }

  CrashCaseConfig cfg_;
  Rng wl_rng_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Aggregate> agg_;

  /// Store bytes as of the last *completed* CP.
  std::unique_ptr<BlockStore> committed_meta_;
  std::unique_ptr<BlockStore> committed_topaa_;
  std::vector<std::unique_ptr<BlockStore>> committed_vols_;

  /// In-memory bitmap words of the crashed instance, captured at catch.
  std::vector<std::uint64_t> truth_agg_words_;
  std::vector<std::vector<std::uint64_t>> truth_vol_words_;

  std::unique_ptr<fault::FaultEngine> engine_;
  /// Stores the harness attached engine_ to (and must detach from).
  std::vector<BlockStore*> attached_;
  /// Live snapshot ids per volume (workload bookkeeping).
  std::vector<std::vector<SnapId>> snaps_;
  std::vector<fault::FaultRecord> journal_;
  bool crashed_ = false;
  bool crash_cp_ran_ = false;
  std::string crash_point_;
  std::string flight_dump_;
  std::vector<std::string> failures_;
};

}  // namespace wafl::test
