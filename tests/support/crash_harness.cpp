#include "support/crash_harness.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "core/topaa.hpp"
#include "fault/crash_point.hpp"
#include "obs/obs.hpp"
#include "wafl/iron.hpp"
#include "wafl/mount.hpp"
#include "wafl/overlapped_cp.hpp"

namespace wafl::test {
namespace {

/// Serializes one bitmap-metafile block image from raw words — the same
/// layout BitmapMetafile::serialize_block writes, reproduced here so the
/// I-D check can compute the "expected new" image from the crashed
/// instance's in-memory words without going through a metafile.
void serialize_words(const std::vector<std::uint64_t>& words,
                     std::uint64_t block, std::span<std::byte> out) {
  constexpr std::uint64_t kWordsPerBlock = kBlockSize / 8;
  const std::uint64_t first = block * kWordsPerBlock;
  const std::uint64_t have =
      first < words.size()
          ? std::min<std::uint64_t>(kWordsPerBlock, words.size() - first)
          : 0;
  if (have > 0) {
    std::memcpy(out.data(), words.data() + first, have * 8);
  }
  if (have < kWordsPerBlock) {
    std::memset(out.data() + have * 8, 0, (kWordsPerBlock - have) * 8);
  }
}

std::vector<std::byte> image_bytes(const TopAaImage& img) {
  std::vector<std::byte> out;
  out.reserve(img.nblocks * kBlockSize);
  for (std::uint64_t b = 0; b < img.nblocks; ++b) {
    out.insert(out.end(), img.blocks[b].begin(), img.blocks[b].end());
  }
  return out;
}

}  // namespace

std::string CrashVerdict::message() const {
  std::string out;
  for (const std::string& f : failures) {
    out += f;
    out += '\n';
  }
  return out;
}

CrashHarness::CrashHarness(const CrashCaseConfig& cfg)
    : cfg_(cfg), wl_rng_(cfg.seed ^ 0x57AF1ULL) {
  if (cfg_.workers > 0) {
    pool_ = std::make_unique<ThreadPool>(cfg_.workers);
  }
  agg_ = make_aggregate();
  snaps_.resize(agg_->volume_count());
  snapshot_committed();
  capture_truth();
}

CrashHarness::~CrashHarness() {
  fault::crash_hooks().disarm_all();
  detach_engine();
  WAFL_OBS(obs::set_span_capture(false));
}

std::unique_ptr<Aggregate> CrashHarness::make_aggregate() const {
  AggregateConfig acfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 8 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 512;
  acfg.raid_groups = {rg, rg};
  if (cfg_.object_store_pool) {
    RaidGroupConfig pool;
    pool.data_devices = 1;
    pool.parity_devices = 0;
    pool.device_blocks = 2 * kFlatAaBlocks;
    pool.media.type = MediaType::kObjectStore;
    acfg.raid_groups.push_back(pool);
  }
  auto agg = std::make_unique<Aggregate>(
      acfg, cfg_.seed, Runtime{}.with_pool(pool_ ? pool_.get() : nullptr));
  // vvbn sizing bounds worst-case demand: 8 Ki active + 8 Ki held by the
  // (at most one) live snapshot + 8 Ki pending delayed frees < 32 Ki.
  FlexVolConfig vcfg;
  vcfg.vvbn_blocks = 32 * 1024;
  vcfg.file_blocks = 8 * 1024;
  vcfg.aa_blocks = 4096;
  agg->add_volume(vcfg);
  agg->add_volume(vcfg);
  return agg;
}

std::unique_ptr<Aggregate> CrashHarness::rebuild() {
  // Only store bytes survive a crash: the fresh instance gets the same
  // configuration (geometry and seeds are "on the boot media") and copies
  // of the surviving blocks; every in-memory structure starts cold.
  std::unique_ptr<Aggregate> fresh = make_aggregate();
  fresh->meta_store().copy_contents_from(agg_->meta_store());
  fresh->topaa_store().copy_contents_from(agg_->topaa_store());
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    fresh->volume(v).store().copy_contents_from(agg_->volume(v).store());
  }
  return fresh;
}

void CrashHarness::attach_engine(FaultInjector* injector) {
  auto attach = [&](BlockStore& store) {
    // Skip stores a test already instrumented with its own engine.
    if (store.fault_injector() != nullptr) return;
    store.set_fault_injector(injector);
    attached_.push_back(&store);
  };
  attach(agg_->meta_store());
  attach(agg_->topaa_store());
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    attach(agg_->volume(v).store());
  }
}

void CrashHarness::detach_engine() {
  for (BlockStore* store : attached_) {
    store->set_fault_injector(nullptr);
  }
  attached_.clear();
}

std::vector<DirtyBlock> CrashHarness::next_dirty(double lo, double hi) {
  std::vector<DirtyBlock> dirty;
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    const double p = lo + (hi - lo) * wl_rng_.uniform();
    for (std::uint64_t l = 0; l < agg_->volume(v).file_blocks(); ++l) {
      if (wl_rng_.chance(p)) dirty.push_back({v, l});
    }
  }
  if (dirty.empty()) dirty.push_back({0, 0});
  return dirty;
}

std::vector<DirtyBlock> CrashHarness::followup_dirty() const {
  // Independent of workload-rng position so R1/R2/R3 see the same batch.
  Rng rng(cfg_.seed * 0x9E3779B97F4A7C15ULL + 0xF011);
  std::vector<DirtyBlock> dirty;
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    for (std::uint64_t l = 0; l < agg_->volume(v).file_blocks(); ++l) {
      if (rng.chance(0.25)) dirty.push_back({v, l});
    }
  }
  return dirty;
}

void CrashHarness::mutate_snapshots() {
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    FlexVol& vol = agg_->volume(v);
    // At most one live snapshot per volume keeps the vvbn-space demand
    // bounded (see make_aggregate's sizing comment).
    if (snaps_[v].empty() && wl_rng_.chance(0.35)) {
      snaps_[v].push_back(vol.create_snapshot());
    }
    if (!snaps_[v].empty() && wl_rng_.chance(0.35)) {
      const std::size_t i =
          static_cast<std::size_t>(wl_rng_.below(snaps_[v].size()));
      vol.delete_snapshot(snaps_[v][i]);
      snaps_[v].erase(snaps_[v].begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
}

void CrashHarness::audit_live(Aggregate& agg, const std::string& when) {
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    FlexVol& vol = agg.volume(v);
    for (std::uint64_t l = 0; l < vol.file_blocks(); ++l) {
      if (failures_.size() > 64) return;  // don't flood on a broken build
      if (!vol.is_mapped(l)) continue;
      const Vbn vvbn = vol.vvbn_of(l);
      const Vbn pvbn = vol.pvbn_of(l);
      if (pvbn == kInvalidVbn) {
        fail(when + ": vol " + std::to_string(v) + " logical " +
             std::to_string(l) + " mapped to vvbn without a pvbn");
        continue;
      }
      if (!vol.activemap().is_allocated(vvbn)) {
        fail(when + ": vol " + std::to_string(v) + " vvbn " +
             std::to_string(vvbn) + " is referenced but free in its bitmap");
      }
      if (!agg.activemap().is_allocated(pvbn)) {
        fail(when + ": pvbn " + std::to_string(pvbn) +
             " is referenced by vol " + std::to_string(v) +
             " but free in the aggregate bitmap");
      }
      const auto owner = agg.owner_of(pvbn);
      if (!owner.has_value() || owner->vol != v || owner->vvbn != vvbn) {
        fail(when + ": pvbn " + std::to_string(pvbn) +
             " ownership disagrees with vol " + std::to_string(v) +
             " vvbn " + std::to_string(vvbn));
      }
    }
  }
}

void CrashHarness::snapshot_committed() {
  committed_meta_ =
      std::make_unique<BlockStore>(agg_->meta_store().capacity_blocks());
  committed_meta_->copy_contents_from(agg_->meta_store());
  committed_topaa_ =
      std::make_unique<BlockStore>(agg_->topaa_store().capacity_blocks());
  committed_topaa_->copy_contents_from(agg_->topaa_store());
  committed_vols_.clear();
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    BlockStore& store = agg_->volume(v).store();
    committed_vols_.push_back(
        std::make_unique<BlockStore>(store.capacity_blocks()));
    committed_vols_.back()->copy_contents_from(store);
  }
}

void CrashHarness::capture_truth() {
  truth_agg_words_ = agg_->activemap().metafile().bits().words();
  truth_vol_words_.clear();
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    truth_vol_words_.push_back(
        agg_->volume(v).activemap().metafile().bits().words());
  }
}

void CrashHarness::run_clean_cps() {
  for (unsigned i = 0; i < cfg_.clean_cps; ++i) {
    // The first CP populates heavily so later CPs overwrite (and free).
    const std::vector<DirtyBlock> dirty =
        i == 0 ? next_dirty(0.80, 0.90) : next_dirty(0.08, 0.35);
    ConsistencyPoint::run(*agg_, dirty);
    audit_live(*agg_, "after clean CP " + std::to_string(i));
    snapshot_committed();
    capture_truth();
    if (i + 1 < cfg_.clean_cps) mutate_snapshots();
  }
}

std::string CrashHarness::run_crash_cp() {
  WAFL_ASSERT_MSG(!crash_cp_ran_, "run_crash_cp called twice");
  crash_cp_ran_ = true;

  fault::FaultPlan plan = cfg_.plan;
  const bool need_engine =
      plan.torn_write_prob > 0 || plan.dropped_write_prob > 0 ||
      plan.read_bitrot_prob > 0 || plan.crash_after_writes > 0;
  if (need_engine) {
    if (plan.seed == 0) plan.seed = cfg_.seed ^ 0xFA51;
    engine_ = std::make_unique<fault::FaultEngine>(plan);
    attach_engine(engine_.get());
  }
  // "iron." hooks fire inside repair, which runs after recovery, not
  // inside the crash CP — arming one here would leave it unfired (a
  // sweep failure).  maybe_crash_during_repair() arms them instead.
  if (!cfg_.crash_hook.empty() && cfg_.crash_hook.rfind("iron.", 0) != 0) {
    fault::crash_hooks().arm(cfg_.crash_hook, cfg_.crash_hook_nth);
  }

  // Arm the black box: spans recorded from here on land in the flight
  // recorder's window, and counter deltas are taken against this mark.
  WAFL_OBS({
    obs::set_span_capture(true);
    obs::flight_recorder().mark();
  });

  const std::vector<DirtyBlock> dirty = next_dirty(0.08, 0.35);
  try {
    if (cfg_.overlapped) {
      OverlappedCpDriver driver(*agg_);
      // Concurrent-intake cases admit each half from two writer threads
      // with content-keyed shard routing (every shard sees the same
      // subsequence regardless of interleaving, so the crashed in-memory
      // truth stays seed-deterministic).  Writers are joined before the
      // control thread proceeds: crash points fire on the control or
      // drain side only, never under a writer.
      const auto admit = [&](std::span<const DirtyBlock> part) {
        if (!cfg_.concurrent_intake) {
          driver.submit(part);
          return;
        }
        const std::size_t shards = driver.intake_shards();
        std::vector<std::vector<DirtyBlock>> slices(shards);
        for (const DirtyBlock& b : part) {
          std::uint64_t h =
              (static_cast<std::uint64_t>(b.vol) << 32) ^ b.logical;
          h *= 0x9E3779B97F4A7C15ULL;
          slices[(h ^ (h >> 29)) % shards].push_back(b);
        }
        std::thread writers[2];
        for (std::size_t t = 0; t < 2; ++t) {
          writers[t] = std::thread([&driver, &slices, shards, t] {
            for (std::size_t j = t; j < shards; j += 2) {
              driver.submit_to_shard(j, slices[j]);
            }
          });
        }
        for (auto& w : writers) w.join();
      };
      const std::span<const DirtyBlock> all(dirty);
      const std::size_t half = all.size() / 2;
      admit(all.subspan(0, half));
      driver.start_cp();  // freeze here: cp.in_gen_swap fires on this thread
      admit(all.subspan(half));  // intake while the drain runs
      driver.wait_idle();  // a drain-side CrashPoint rethrows here
      // CP 1 committed: with back-to-back CPs every completed drain is a
      // commit point, so a crash in CP 2 must be judged against CP 1's
      // flushed media, not the pre-sequence snapshot.
      snapshot_committed();
      // Trigger never fired: drain the still-active second half too so a
      // completed overlapped crash CP commits the whole batch.
      driver.start_cp();
      driver.wait_idle();
    } else {
      ConsistencyPoint::run(*agg_, dirty);
    }
  } catch (const fault::CrashPoint& cp) {
    crashed_ = true;
    crash_point_ = cp.point();
    // The CrashPoint unwound every open TraceSpan on its way here, so the
    // dump shows the crashed CP's partial span tree plus the crash note.
    WAFL_OBS(flight_dump_ = obs::flight_recorder().dump());
  }

  fault::crash_hooks().disarm_all();
  if (engine_) {
    engine_->disarm();
    const std::vector<fault::FaultRecord> j = engine_->journal();
    journal_.insert(journal_.end(), j.begin(), j.end());
    detach_engine();
  }
  capture_truth();
  // A completed CP (no trigger reached) advances the committed state.
  if (!crashed_) snapshot_committed();
  return crash_point_;
}

void CrashHarness::add_journal(const std::vector<fault::FaultRecord>& extra) {
  journal_.insert(journal_.end(), extra.begin(), extra.end());
}

std::unique_ptr<Aggregate> CrashHarness::recover(bool use_topaa) {
  std::unique_ptr<Aggregate> fresh = rebuild();
  recover_mount(*fresh, use_topaa);
  return fresh;
}

void CrashHarness::maybe_crash_during_repair() {
  if (cfg_.crash_hook.rfind("iron.", 0) != 0) return;

  // Give Iron real damage to stage and apply: scribble one group TopAA
  // slot and one volume TopAA slot (seed-deterministic bytes).  TopAA
  // blocks are outside every I-D region, so the surviving bytes stay
  // journal-explainable.
  {
    Rng rng(cfg_.seed ^ 0x1A09);
    alignas(8) std::byte junk[kBlockSize];
    for (std::size_t i = 0; i < kBlockSize; ++i) {
      junk[i] = static_cast<std::byte>(rng.below(256));
    }
    agg_->topaa_store().write(agg_->rg_topaa_block(0), junk);
    BlockStore& vstore = agg_->volume(0).store();
    vstore.write(vstore.capacity_blocks() - TopAaFile::kRaidAgnosticBlocks,
                 junk);
  }

  // Recover a fresh instance over the damaged bytes, then crash inside
  // the armed Iron phase.  The verify fan-out stages without writing, so
  // a crash there loses nothing; a crash mid-apply leaves a prefix of
  // repairs in fixed unit order.
  std::unique_ptr<Aggregate> inst = recover(/*use_topaa=*/true);
  fault::crash_hooks().arm(cfg_.crash_hook, cfg_.crash_hook_nth);
  WAFL_OBS(obs::flight_recorder().mark());
  try {
    iron_check_topaa(*inst);
  } catch (const fault::CrashPoint& cp) {
    crashed_ = true;
    crash_point_ = cp.point();
    WAFL_OBS(flight_dump_ = obs::flight_recorder().dump());
  }
  fault::crash_hooks().disarm_all();

  // Fold the (possibly partially) repaired media back into the surviving
  // bytes: recovery itself wrote nothing, Iron wrote only TopAA slots,
  // so only those differ — verify_recovery() now proves recovery from a
  // crashed repair.
  agg_->topaa_store().copy_contents_from(inst->topaa_store());
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    agg_->volume(v).store().copy_contents_from(inst->volume(v).store());
  }
}

void CrashHarness::check_journal_bounded() {
  struct Region {
    const BlockStore* persisted;
    const BlockStore* committed;
    const std::vector<std::uint64_t>* truth;
    std::uint64_t nblocks;
    std::string tag;
  };
  std::vector<Region> regions;
  regions.push_back({&agg_->meta_store(), committed_meta_.get(),
                     &truth_agg_words_,
                     agg_->activemap().metafile().metafile_blocks(),
                     "agg.meta"});
  for (VolumeId v = 0; v < agg_->volume_count(); ++v) {
    regions.push_back(
        {&agg_->volume(v).store(), committed_vols_[v].get(),
         &truth_vol_words_[v],
         agg_->volume(v).activemap().metafile().metafile_blocks(),
         "vol" + std::to_string(v) + ".meta"});
  }

  alignas(8) std::byte persisted[kBlockSize];
  alignas(8) std::byte committed[kBlockSize];
  alignas(8) std::byte expected[kBlockSize];
  for (const Region& r : regions) {
    for (std::uint64_t b = 0; b < r.nblocks; ++b) {
      // BlockStore::peek bypasses counters and injectors: this is the
      // harness looking at the raw media.
      r.persisted->peek(b, persisted);
      r.committed->peek(b, committed);
      serialize_words(*r.truth, b, expected);
      if (std::memcmp(persisted, committed, kBlockSize) == 0) continue;
      if (std::memcmp(persisted, expected, kBlockSize) == 0) continue;
      // Divergence must be a journaled torn write: the persisted prefix
      // of the new image over the committed tail.
      bool explained = false;
      for (const fault::FaultRecord& rec : journal_) {
        if (rec.kind != fault::FaultRecord::Kind::kTorn) continue;
        if (rec.store != r.persisted || rec.block != b) continue;
        const std::size_t k = rec.detail;
        if (k <= kBlockSize &&
            std::memcmp(persisted, expected, k) == 0 &&
            std::memcmp(persisted + k, committed + k, kBlockSize - k) == 0) {
          explained = true;
          break;
        }
      }
      if (!explained) {
        fail("I-D: " + r.tag + " block " + std::to_string(b) +
             " is neither the committed nor the in-memory image and no "
             "torn-write journal record explains it");
      }
    }
  }
}

CrashHarness::CacheDigest CrashHarness::digest_of(Aggregate& agg) {
  CacheDigest d;
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    const AaScoreBoard& board = agg.rg_scoreboard(rg);
    std::vector<AaScore> scores;
    scores.reserve(board.aa_count());
    for (AaId aa = 0; aa < board.aa_count(); ++aa) {
      scores.push_back(board.score(aa));
    }
    d.rg_scores.push_back(std::move(scores));
    if (agg.rg_is_raid_agnostic(rg)) {
      d.rg_hbps.push_back(
          image_bytes(TopAaFile::encode_raid_agnostic(agg.rg_hbps(rg))));
    } else {
      const MaxHeapAaCache& heap = agg.rg_heap(rg);
      d.heap_tops.push_back(heap.top(heap.size()));
    }
  }
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    const FlexVol& vol = agg.volume(v);
    std::vector<AaScore> scores;
    scores.reserve(vol.scoreboard().aa_count());
    for (AaId aa = 0; aa < vol.scoreboard().aa_count(); ++aa) {
      scores.push_back(vol.scoreboard().score(aa));
    }
    d.vol_scores.push_back(std::move(scores));
    d.vol_hbps.push_back(
        image_bytes(TopAaFile::encode_raid_agnostic(vol.cache())));
  }
  return d;
}

void CrashHarness::compare_digests(const CacheDigest& a, const CacheDigest& b,
                                   const std::string& tag) {
  if (a.heap_tops != b.heap_tops) fail(tag + ": heap top entries differ");
  if (a.rg_hbps != b.rg_hbps) fail(tag + ": group HBPS encodings differ");
  if (a.rg_scores != b.rg_scores) fail(tag + ": group scoreboards differ");
  if (a.vol_hbps != b.vol_hbps) fail(tag + ": volume HBPS encodings differ");
  if (a.vol_scores != b.vol_scores) {
    fail(tag + ": volume scoreboards differ");
  }
}

void CrashHarness::compare_store_range(const BlockStore& a,
                                       const BlockStore& b, std::uint64_t lo,
                                       std::uint64_t hi,
                                       const std::string& tag) {
  alignas(8) std::byte ba[kBlockSize];
  alignas(8) std::byte bb[kBlockSize];
  for (std::uint64_t blk = lo; blk < hi; ++blk) {
    a.peek(blk, ba);
    b.peek(blk, bb);
    if (std::memcmp(ba, bb, kBlockSize) != 0) {
      fail(tag + ": media block " + std::to_string(blk) + " differs");
      return;
    }
  }
}

void CrashHarness::compare_bitmaps(Aggregate& a, Aggregate& b,
                                   const std::string& tag) {
  if (a.activemap().metafile().bits().words() !=
      b.activemap().metafile().bits().words()) {
    fail(tag + ": aggregate bitmap words differ");
  }
  for (VolumeId v = 0; v < a.volume_count(); ++v) {
    if (a.volume(v).activemap().metafile().bits().words() !=
        b.volume(v).activemap().metafile().bits().words()) {
      fail(tag + ": vol " + std::to_string(v) + " bitmap words differ");
    }
  }
}

CrashVerdict CrashHarness::verify_recovery() {
  CrashVerdict verdict;
  verdict.crashed = crashed_;
  verdict.crash_point = crash_point_;
  for (const fault::FaultRecord& rec : journal_) {
    if (rec.kind == fault::FaultRecord::Kind::kTorn) ++verdict.torn_writes;
    if (rec.kind == fault::FaultRecord::Kind::kDropped) {
      ++verdict.dropped_writes;
    }
  }

  // I-D first: the raw media must be explainable before anything mounts.
  check_journal_bounded();

  // Two independent recoveries over the same surviving bytes.
  std::unique_ptr<Aggregate> r1 = rebuild();
  std::unique_ptr<fault::FaultEngine> rot;
  if (cfg_.recovery_bitrot_prob > 0) {
    fault::FaultPlan rp;
    rp.seed = cfg_.seed ^ 0xB17;
    rp.read_bitrot_prob = cfg_.recovery_bitrot_prob;
    rot = std::make_unique<fault::FaultEngine>(rp);
    r1->topaa_store().set_fault_injector(rot.get());
  }
  recover_mount(*r1, /*use_topaa=*/true);
  if (rot) r1->topaa_store().set_fault_injector(nullptr);

  std::unique_ptr<Aggregate> r2 = recover(/*use_topaa=*/false);

  // I-A: same bytes -> same loaded bitmaps; Iron sees the same damage in
  // both, and a second pass finds nothing left to repair.
  compare_bitmaps(*r1, *r2, "I-A post-mount");
  const IronReport i1 = iron_check_topaa(*r1);
  const IronReport i2 = iron_check_topaa(*r2);
  if (i1.rg_unreadable != i2.rg_unreadable || i1.rg_stale != i2.rg_stale ||
      i1.rg_rewritten != i2.rg_rewritten ||
      i1.vol_unreadable != i2.vol_unreadable ||
      i1.vol_stale != i2.vol_stale || i1.vol_rewritten != i2.vol_rewritten) {
    fail("I-A: Iron reports differ between TopAA and scan recoveries");
  }
  verdict.iron_rewrites = i1.rg_rewritten + i1.vol_rewritten;
  if (!iron_check_topaa(*r1).clean()) {
    fail("I-A: Iron is not idempotent on the TopAA-path recovery");
  }
  if (!iron_check_topaa(*r2).clean()) {
    fail("I-A: Iron is not idempotent on the scan-path recovery");
  }

  // I-B: post-Iron the two recoveries' media are bit-identical, and after
  // background completion so is every cache.
  compare_store_range(r1->meta_store(), r2->meta_store(), 0,
                      r1->meta_store().capacity_blocks(), "I-B agg meta");
  compare_store_range(r1->topaa_store(), r2->topaa_store(), 0,
                      r1->topaa_store().capacity_blocks(), "I-B agg topaa");
  for (VolumeId v = 0; v < r1->volume_count(); ++v) {
    compare_store_range(r1->volume(v).store(), r2->volume(v).store(), 0,
                        r1->volume(v).store().capacity_blocks(),
                        "I-B vol" + std::to_string(v) + " store");
  }
  complete_background(*r1);
  complete_background(*r2);
  const CacheDigest d1 = digest_of(*r1);
  compare_digests(d1, digest_of(*r2), "I-B topaa-vs-scan");

  // Cache/bitmap agreement on the recovered instance.
  for (RaidGroupId rg = 0; rg < r1->raid_group_count(); ++rg) {
    const AaLayout& layout = r1->rg_layout(rg);
    const Vbn base = r1->rg_base(rg);
    const std::uint64_t span =
        static_cast<std::uint64_t>(layout.aa_count()) * layout.aa_blocks();
    if (r1->rg_scoreboard(rg).total_free() !=
        r1->activemap().metafile().free_in_range(base, base + span)) {
      fail("I-B: group " + std::to_string(rg) +
           " scoreboard disagrees with the recovered bitmap");
    }
  }

  // I-C: a third recovery replays the first bit-for-bit, and an identical
  // follow-up CP lands identically on both recovered instances.
  {
    std::unique_ptr<Aggregate> r3 = recover(/*use_topaa=*/true);
    iron_check_topaa(*r3);
    complete_background(*r3);
    compare_digests(d1, digest_of(*r3), "I-C replay");
    compare_store_range(r1->topaa_store(), r3->topaa_store(), 0,
                        r1->topaa_store().capacity_blocks(), "I-C topaa");
  }
  const std::vector<DirtyBlock> followup = followup_dirty();
  const CpStats s1 = ConsistencyPoint::run(*r1, followup);
  const CpStats s2 = ConsistencyPoint::run(*r2, followup);
  const auto cmp_stat = [&](const char* name, std::uint64_t a,
                            std::uint64_t b) {
    if (a != b) {
      fail("I-C: follow-up CP " + std::string(name) + " differs: " +
           std::to_string(a) + " vs " + std::to_string(b));
    }
  };
  cmp_stat("blocks_written", s1.blocks_written, s2.blocks_written);
  cmp_stat("blocks_freed", s1.blocks_freed, s2.blocks_freed);
  cmp_stat("vol_meta_blocks", s1.vol_meta_blocks, s2.vol_meta_blocks);
  cmp_stat("agg_meta_blocks", s1.agg_meta_blocks, s2.agg_meta_blocks);
  cmp_stat("meta_flush_blocks", s1.meta_flush_blocks, s2.meta_flush_blocks);
  cmp_stat("tetrises", s1.tetrises, s2.tetrises);
  cmp_stat("full_stripes", s1.full_stripes, s2.full_stripes);
  cmp_stat("partial_stripes", s1.partial_stripes, s2.partial_stripes);
  cmp_stat("vol_bits_scanned", s1.vol_bits_scanned, s2.vol_bits_scanned);
  cmp_stat("agg_bits_scanned", s1.agg_bits_scanned, s2.agg_bits_scanned);
  compare_bitmaps(*r1, *r2, "I-C post-follow-up");
  for (VolumeId v = 0; v < r1->volume_count(); ++v) {
    for (std::uint64_t l = 0; l < r1->volume(v).file_blocks(); ++l) {
      if (r1->volume(v).is_mapped(l) != r2->volume(v).is_mapped(l) ||
          (r1->volume(v).is_mapped(l) &&
           r1->volume(v).pvbn_of(l) != r2->volume(v).pvbn_of(l))) {
        fail("I-C: follow-up CP placed vol " + std::to_string(v) +
             " logical " + std::to_string(l) + " differently");
        break;
      }
    }
  }
  audit_live(*r1, "post-recovery follow-up CP (TopAA path)");
  audit_live(*r2, "post-recovery follow-up CP (scan path)");

  verdict.failures = failures_;
  verdict.flight_dump = flight_dump_;
  // A failing verdict with no crash-time dump (e.g. an invariant broke
  // without any injected crash) still gets the current black-box window.
  WAFL_OBS({
    if (!verdict.ok() && verdict.flight_dump.empty()) {
      verdict.flight_dump = obs::flight_recorder().dump();
    }
  });
  return verdict;
}

CrashVerdict CrashHarness::run_all() {
  run_clean_cps();
  run_crash_cp();
  maybe_crash_during_repair();
  return verify_recovery();
}

}  // namespace wafl::test
