#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownSequence) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Sample variance of the classic sequence: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double v = i * 0.37 - 5.0;
    all.add(v);
    (i < 37 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean_before = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  RunningStat c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(LatencyRecorder, PercentilesOfUniformRamp) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) {
    r.add(static_cast<double>(i));
  }
  EXPECT_EQ(r.count(), 100u);
  EXPECT_DOUBLE_EQ(r.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(100), 100.0);
  EXPECT_NEAR(r.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(r.percentile(99), 99.01, 0.1);
  EXPECT_NEAR(r.mean(), 50.5, 1e-9);
}

TEST(LatencyRecorder, AddAfterPercentileResorts) {
  LatencyRecorder r;
  r.add(10.0);
  EXPECT_DOUBLE_EQ(r.percentile(50), 10.0);
  r.add(0.0);
  EXPECT_DOUBLE_EQ(r.percentile(0), 0.0);
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder r;
  EXPECT_DOUBLE_EQ(r.mean(), 0.0);
  EXPECT_DOUBLE_EQ(r.percentile(99), 0.0);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);    // bin 0
  h.add(0.999);  // bin 0
  h.add(5.0);    // bin 5
  h.add(9.999);  // bin 9
  h.add(-3.0);   // clamps to bin 0
  h.add(42.0);   // clamps to bin 9
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 3u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

}  // namespace
}  // namespace wafl
