#include "util/checksum.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

namespace wafl {
namespace {

std::uint32_t crc_of(std::string_view s) {
  return crc32c(s.data(), s.size());
}

TEST(Crc32c, KnownVectors) {
  // Standard CRC-32C test vectors (RFC 3720 appendix / common suites).
  EXPECT_EQ(crc_of(""), 0x00000000u);
  EXPECT_EQ(crc_of("a"), 0xC1D04330u);
  EXPECT_EQ(crc_of("123456789"), 0xE3069283u);
}

TEST(Crc32c, AllZeros32Bytes) {
  const std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32c, SensitiveToSingleBitFlip) {
  std::vector<std::byte> buf(4096, std::byte{0x5A});
  const std::uint32_t before = crc32c(buf);
  buf[1000] ^= std::byte{0x01};
  EXPECT_NE(crc32c(buf), before);
}

TEST(Crc32c, SensitiveToPosition) {
  std::vector<std::byte> a(64, std::byte{0});
  std::vector<std::byte> b(64, std::byte{0});
  a[0] = std::byte{1};
  b[1] = std::byte{1};
  EXPECT_NE(crc32c(a), crc32c(b));
}

TEST(Crc32c, SeedChaining) {
  // CRC of the concatenation equals CRC of part2 seeded with CRC(part1).
  const std::string_view part1 = "12345";
  const std::string_view part2 = "6789";
  const std::uint32_t c1 = crc32c(part1.data(), part1.size());
  const std::uint32_t chained = crc32c(part2.data(), part2.size(), c1);
  EXPECT_EQ(chained, crc_of("123456789"));
}

TEST(Crc32c, SpanAndPointerOverloadsAgree) {
  std::vector<std::byte> buf(128);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i * 7);
  }
  EXPECT_EQ(crc32c(buf), crc32c(buf.data(), buf.size()));
}

}  // namespace
}  // namespace wafl
