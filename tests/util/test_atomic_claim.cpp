// Randomized oracle fuzz for AtomicClaimBitmap's CAS word-claim path
// (DESIGN.md §14).
//
// Property under test: across any set of racing claimers, each bit is won
// EXACTLY once per set/clear cycle, losers always observe the set bit, and
// claims of distinct bits in one word never destroy each other (the
// compare_exchange retry).  Each case derives threads, bit-space size, and
// attempt pattern from one seed — same-word contention, adjacent-word
// straddles, and full-word saturation all fall out of the pattern draw —
// and verifies against a per-bit oracle: winners across all threads must
// partition the distinct attempted bits.
//
// Reproduce one case exactly like the crash sweep:
//
//   WAFL_CLAIM_SEED=<seed> ./waflfree_tests
//       --gtest_filter='AtomicClaimFuzz.*'
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/atomic_bitmap.hpp"
#include "util/rng.hpp"

namespace wafl {
namespace {

constexpr int kCases = 48;

std::uint64_t case_seed(int index) {
  return 0xC1A10000u + 0x9E3779B97F4A7C15ULL *
                           (static_cast<std::uint64_t>(index) + 1);
}

void run_case(int index, std::uint64_t seed) {
  SCOPED_TRACE("claim case " + std::to_string(index) + " seed " +
               std::to_string(seed) + "; reproduce with WAFL_CLAIM_SEED=" +
               std::to_string(seed));
  Rng rng(seed);
  const unsigned threads = static_cast<unsigned>(rng.between(2, 8));
  // Pattern: 0 = uniform over many words, 1 = one word (max intra-word
  // CAS contention), 2 = two adjacent words straddling the boundary,
  // 3 = full saturation (every thread attempts every bit).
  const std::uint64_t pattern = rng.below(4);
  const std::uint64_t nbits = pattern == 1   ? 64
                              : pattern == 2 ? 128
                                             : 64 + rng.below(960);

  // Pre-generate each thread's attempts (deterministic, duplicates
  // intended — a duplicate is a claim the thread itself must lose).
  std::vector<std::vector<std::uint64_t>> attempts(threads);
  for (unsigned t = 0; t < threads; ++t) {
    if (pattern == 3) {
      for (std::uint64_t b = 0; b < nbits; ++b) attempts[t].push_back(b);
    } else {
      const std::uint64_t n = rng.between(32, 512);
      for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t bit = rng.below(nbits);
        if (pattern == 2) bit = 32 + bit % 64;  // straddle words 0 and 1
        attempts[t].push_back(bit);
      }
    }
  }

  AtomicClaimBitmap bm(nbits);
  std::vector<std::vector<std::uint64_t>> won(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&bm, &attempts, &won, t] {
      for (const std::uint64_t bit : attempts[t]) {
        if (bm.try_claim(bit)) {
          won[t].push_back(bit);
        } else {
          // Loser guarantee: the bit is visibly held the moment the
          // claim fails (acquire on the failed CAS / early load).
          if (!bm.test(bit)) won[t].push_back(~0ull);  // flagged below
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Oracle: distinct attempted bits, and per-bit win counts.
  std::vector<std::uint64_t> wins(nbits, 0);
  std::vector<std::uint8_t> attempted(nbits, 0);
  std::uint64_t distinct = 0;
  for (unsigned t = 0; t < threads; ++t) {
    for (const std::uint64_t bit : attempts[t]) {
      if (attempted[bit] == 0) {
        attempted[bit] = 1;
        ++distinct;
      }
    }
    for (const std::uint64_t bit : won[t]) {
      ASSERT_NE(bit, ~0ull) << "loser observed an unclaimed bit";
      ++wins[bit];
    }
  }
  std::uint64_t total_wins = 0;
  for (std::uint64_t b = 0; b < nbits; ++b) {
    ASSERT_LE(wins[b], 1u) << "bit " << b << " won twice";
    EXPECT_EQ(wins[b], attempted[b]) << "bit " << b;
    EXPECT_EQ(bm.test(b), attempted[b] != 0) << "bit " << b;
    total_wins += wins[b];
  }
  EXPECT_EQ(total_wins, distinct);
  EXPECT_EQ(bm.popcount(), distinct);

  // The set/clear cycle re-arms: clearing every winner makes each bit
  // claimable exactly once again (serially here — clear() requires the
  // freeze's exclusion, which the join above provides).
  for (unsigned t = 0; t < threads; ++t) {
    for (const std::uint64_t bit : won[t]) bm.clear(bit);
  }
  EXPECT_EQ(bm.popcount(), 0u);
  for (std::uint64_t b = 0; b < nbits; ++b) {
    if (attempted[b] != 0) {
      EXPECT_TRUE(bm.try_claim(b));
      EXPECT_FALSE(bm.try_claim(b));
    }
  }
}

TEST(AtomicClaimFuzz, SeededSweep) {
  if (const char* seed_env = std::getenv("WAFL_CLAIM_SEED")) {
    run_case(-1, std::strtoull(seed_env, nullptr, 0));
    return;
  }
  for (int i = 0; i < kCases; ++i) {
    run_case(i, case_seed(i));
  }
}

// grow() keeps existing claims and exposes fresh claimable space — the
// RAID-group-growth path, serial by contract.
TEST(AtomicClaimFuzz, GrowPreservesClaims) {
  AtomicClaimBitmap bm(70);
  EXPECT_TRUE(bm.try_claim(0));
  EXPECT_TRUE(bm.try_claim(69));
  bm.grow(300);
  EXPECT_EQ(bm.size_bits(), 300u);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(69));
  EXPECT_FALSE(bm.try_claim(69));
  EXPECT_TRUE(bm.try_claim(299));
  EXPECT_EQ(bm.popcount(), 3u);
  bm.reset();
  EXPECT_EQ(bm.popcount(), 0u);
  EXPECT_TRUE(bm.try_claim(0));
}

}  // namespace
}  // namespace wafl
