#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace wafl {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.between(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(17);
  std::array<int, 10> buckets{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.below(10)];
  }
  for (const int c : buckets) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(5.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, ChanceProbability) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(ZipfSampler, UniformWhenThetaZero) {
  ZipfSampler z(100, 0.0);
  Rng rng(29);
  std::vector<int> counts(100, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[z.sample(rng)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 100, n / 200);
  }
}

TEST(ZipfSampler, SkewConcentratesOnLowRanks) {
  ZipfSampler z(1000, 1.0);
  Rng rng(31);
  std::uint64_t top10 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (z.sample(rng) < 10) ++top10;
  }
  // With theta=1 over 1000 items, the top 10 ranks carry ~39% of the mass.
  EXPECT_GT(top10, static_cast<std::uint64_t>(0.3 * n));
  EXPECT_LT(top10, static_cast<std::uint64_t>(0.5 * n));
}

TEST(ZipfSampler, AllRanksReachable) {
  ZipfSampler z(4, 2.0);
  Rng rng(37);
  std::array<bool, 4> seen{};
  for (int i = 0; i < 100000; ++i) {
    seen[z.sample(rng)] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(ZipfSampler, SingleItem) {
  ZipfSampler z(1, 1.0);
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(z.sample(rng), 0u);
  }
}

}  // namespace
}  // namespace wafl
