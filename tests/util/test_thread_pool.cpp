#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/task_context.hpp"

namespace wafl {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPool) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
  pool.parallel_for(7, 3, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(3);
  std::atomic<int> hits{0};
  pool.parallel_for(41, 42, [&](std::size_t i) {
    EXPECT_EQ(i, 41u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ParallelForWithSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 100, [&](std::size_t i) {
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ParallelForMoreItemsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 10000, [&](std::size_t i) {
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
}

TEST(ThreadPool, SequentialParallelForCalls) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.parallel_for(0, 100, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000);
}

TEST(ThreadPool, ParallelForDynamicCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for_dynamic(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForDynamicEmptyAndSingle) {
  ThreadPool pool(2);
  pool.parallel_for_dynamic(7, 3, [](std::size_t) { FAIL(); });
  std::atomic<int> hits{0};
  pool.parallel_for_dynamic(41, 42, [&](std::size_t i) {
    EXPECT_EQ(i, 41u);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 1);
}

TEST(ThreadPool, ParallelForDynamicUnevenWork) {
  // Dynamic scheduling exists for skewed per-item cost: one slow item
  // must not serialize the rest behind a static chunk boundary.
  ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for_dynamic(0, 200, [&](std::size_t i) {
    std::uint64_t acc = 0;
    const std::uint64_t spins = (i == 0) ? 200'000 : 10;
    for (std::uint64_t k = 0; k < spins; ++k) acc += k % 7;
    sum.fetch_add(i + (acc & 1));
  });
  EXPECT_GE(sum.load(), 200ull * 199 / 2);
}

TEST(ThreadPool, ParallelForDynamicChunkedCoversEveryIndexOnce) {
  // The chunked variant amortizes the shared counter over `chunk` items;
  // coverage must stay exactly-once for ranges that are not a multiple of
  // the chunk size (the last chunk is partial).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'037);  // prime, not a chunk multiple
  pool.parallel_for_dynamic(0, hits.size(), /*chunk=*/64, [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForDynamicChunkedEdgeShapes) {
  ThreadPool pool(2);
  // Empty, chunk larger than the range, and chunk == range.
  pool.parallel_for_dynamic(9, 2, /*chunk=*/16, [](std::size_t) { FAIL(); });
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for_dynamic(0, 5, /*chunk=*/100,
                            [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 10u);
  sum.store(0);
  pool.parallel_for_dynamic(0, 8, /*chunk=*/8,
                            [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 28u);
}

TEST(ThreadPool, ParallelForDynamicChunkedRethrows) {
  // An exception thrown mid-chunk abandons the remaining chunks.
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for_dynamic(0, 1000, /*chunk=*/32,
                                         [](std::size_t i) {
                                           if (i == 321) {
                                             throw std::runtime_error("c");
                                           }
                                         }),
               std::runtime_error);
  std::atomic<int> after{0};
  pool.parallel_for_dynamic(0, 64, /*chunk=*/7,
                            [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, ParallelForDynamicWithSingleThreadPool) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for_dynamic(0, 100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  // A crash point fired inside the parallel CP boundary must unwind to
  // the caller as one exception, not std::terminate the process.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(0, 1000, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 17) throw std::runtime_error("boom at 17");
    });
    FAIL() << "expected the worker exception on the calling thread";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), "boom at 17");
  }
  // Remaining iterations were abandoned best-effort, never re-run.
  EXPECT_LE(ran.load(), 1000);
  // The pool survives and is reusable afterwards.
  std::atomic<int> after{0};
  pool.parallel_for(0, 100, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, ParallelForDynamicRethrowsFirstException) {
  ThreadPool pool(3);
  std::atomic<int> throws{0};
  EXPECT_THROW(pool.parallel_for_dynamic(0, 500,
                                         [&](std::size_t i) {
                                           if (i % 100 == 3) {
                                             throws.fetch_add(1);
                                             throw std::runtime_error("x");
                                           }
                                         }),
               std::runtime_error);
  // Several workers may throw; exactly one exception reaches the caller
  // and the rest are swallowed after the loop stops.
  EXPECT_GE(throws.load(), 1);
  std::atomic<int> after{0};
  pool.parallel_for_dynamic(0, 100, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 100);
}

TEST(ThreadPool, ExceptionWithSingleThreadPool) {
  // With one worker the calling thread still participates; the rethrow
  // path must work when the throwing iteration runs on the caller.
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10,
                                 [](std::size_t i) {
                                   if (i >= 5) throw std::runtime_error("c");
                                 }),
               std::runtime_error);
  pool.wait_idle();  // pool healthy
}

TEST(ThreadPool, ThreadCountDefaultsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, TaskContextPropagatesToSubmittedTasks) {
  // submit() snapshots the submitter's context word; every task runs under
  // it and worker threads are restored to their own afterwards.
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  {
    TaskContextScope scope(0xC0FFEE);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&wrong] {
        if (current_task_context() != 0xC0FFEE) wrong.fetch_add(1);
      });
    }
  }
  pool.wait_idle();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(current_task_context(), 0u);
}

TEST(ThreadPool, TaskContextNestingSurvivesChunkedOverload) {
  // The chunked dynamic variant runs many items per pool task; every item
  // of every chunk must see the submitter's context, and a nested
  // parallel_for inside an item must propagate the *item's* context, not
  // the worker thread's previous one.
  ThreadPool pool(4);
  std::atomic<int> wrong_outer{0};
  std::atomic<int> wrong_inner{0};
  TaskContextScope scope(7001);
  pool.parallel_for_dynamic(0, 1000, /*chunk=*/64, [&](std::size_t i) {
    if (current_task_context() != 7001) wrong_outer.fetch_add(1);
    if (i == 500) {
      // Nest: re-label the context for an inner fan-out from a worker.
      TaskContextScope inner_scope(8002);
      pool.parallel_for(0, 64, [&](std::size_t) {
        if (current_task_context() != 8002) wrong_inner.fetch_add(1);
      });
      // The inner scope's end restores the outer context on this thread.
    }
    if (current_task_context() != 7001) wrong_outer.fetch_add(1);
  });
  EXPECT_EQ(wrong_outer.load(), 0);
  EXPECT_EQ(wrong_inner.load(), 0);
}

TEST(ThreadPool, TaskContextRestoredAcrossExceptionRethrow) {
  // A worker's context restoration is scope-based, so a throwing task must
  // not leak its context into the next task the worker picks up — and the
  // caller's own context survives the rethrow.
  ThreadPool pool(3);
  TaskContextScope scope(4242);
  EXPECT_THROW(pool.parallel_for(0, 300,
                                 [](std::size_t i) {
                                   if (i == 50) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  EXPECT_EQ(current_task_context(), 4242u);

  // Tasks submitted after the failed loop see the fresh context, never a
  // stale word left behind by the aborted tasks.
  std::atomic<int> wrong{0};
  {
    TaskContextScope next(5151);
    pool.parallel_for_dynamic(0, 200, [&](std::size_t) {
      if (current_task_context() != 5151) wrong.fetch_add(1);
    });
  }
  EXPECT_EQ(wrong.load(), 0);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // No wait_idle: destruction must still run everything already queued.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace wafl
