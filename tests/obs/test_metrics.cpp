// Unit tests for the wafl::obs metric primitives and registry.  These use
// LOCAL Registry/metric instances (not the process-global singleton) so
// they are independent of whatever instrumentation other tests trigger,
// and they run identically in WAFL_OBS_ENABLED=ON and OFF builds — the
// obs library itself is always compiled.
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace wafl::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, CrossThreadTotalIsExact) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Counter, MergeFoldsTotals) {
  Counter a;
  Counter b;
  a.add(10);
  b.add(32);
  a.merge(b);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(b.value(), 32u);  // merge reads, never mutates, the source
}

TEST(Gauge, SetAddAndNegative) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, BasicStats) {
  LogHistogram h;
  h.record(1.0);
  h.record(100.0);
  h.record(10'000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10'101.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10'000.0);
}

TEST(LogHistogram, FirstSampleSetsBothExtrema) {
  LogHistogram h;
  h.record(5.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
}

TEST(LogHistogram, NegativeAndNanClampToZero) {
  LogHistogram h;
  h.record(-12.0);
  h.record(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(LogHistogram, BucketBoundsRoundTrip) {
  // Every sampled value must land in a bucket whose [lo, hi) covers it.
  for (const double v : {0.0, 0.5, 1.0, 3.0, 1000.0, 1e9, 1e15}) {
    const std::uint32_t i = LogHistogram::bucket_of(v);
    EXPECT_LE(LogHistogram::bucket_lo(i), v) << "v=" << v;
    EXPECT_GT(LogHistogram::bucket_hi(i), v) << "v=" << v;
  }
}

TEST(LogHistogram, PercentileBracketsAndOrdering) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const double p50 = h.percentile(50.0);
  const double p90 = h.percentile(90.0);
  const double p99 = h.percentile(99.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log-linear buckets with 8 sub-buckets bound relative error ≈ 6%.
  EXPECT_NEAR(p50, 500.0, 500.0 * 0.10);
  EXPECT_NEAR(p99, 990.0, 990.0 * 0.10);
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_LE(h.percentile(100.0), h.max());
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram combined;
  for (int i = 1; i <= 100; ++i) {
    a.record(static_cast<double>(i));
    combined.record(static_cast<double>(i));
  }
  for (int i = 500; i <= 600; ++i) {
    b.record(static_cast<double>(i));
    combined.record(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.percentile(90.0), combined.percentile(90.0));
}

TEST(LogHistogram, ResetRestoresEmptyState) {
  LogHistogram h;
  h.record(3.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  h.record(8.0);  // extrema sentinels must have been re-armed
  EXPECT_DOUBLE_EQ(h.min(), 8.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(LinearHistogram, ClampsToEdgeBins) {
  LinearHistogram h(0.0, 1.0, 10);
  h.record(-0.5);
  h.record(0.05);
  h.record(0.95);
  h.record(2.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
}

TEST(LinearHistogram, PercentileInterpolatesWithinBin) {
  LinearHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.record(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.percentile(50.0), 50.0, 1.5);
  EXPECT_NEAR(h.percentile(90.0), 90.0, 1.5);
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, LabelsDistinguishInstances) {
  Registry reg;
  Counter& d0 = reg.counter("dev.busy", "rg=\"0\",dev=\"0\"");
  Counter& d1 = reg.counter("dev.busy", "rg=\"0\",dev=\"1\"");
  EXPECT_NE(&d0, &d1);
  d0.add(5);
  EXPECT_EQ(d1.value(), 0u);
}

TEST(Registry, EntriesAreSortedAndComplete) {
  Registry reg;
  reg.counter("b.count");
  reg.gauge("a.gauge");
  reg.histogram("c.hist");
  reg.linear_histogram("a.frac", 0.0, 1.0, 8);
  const std::vector<Registry::Entry> entries = reg.entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].name, "a.frac");
  EXPECT_EQ(entries[1].name, "a.gauge");
  EXPECT_EQ(entries[2].name, "b.count");
  EXPECT_EQ(entries[3].name, "c.hist");
}

TEST(Registry, ResetZeroesInPlaceKeepingHandles) {
  Registry reg;
  Counter& c = reg.counter("n");
  LogHistogram& h = reg.histogram("h");
  c.add(9);
  h.record(1.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // handle still live and usable
  EXPECT_EQ(reg.counter("n").value(), 1u);
}

TEST(Export, PrometheusRendersCounterGaugeHistogram) {
  Registry reg;
  reg.counter("wafl.cp.count").add(3);
  reg.gauge("wafl.depth").set(-2);
  LogHistogram& h = reg.histogram("wafl.cp.total_ns");
  h.record(100.0);
  h.record(200.0);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("# TYPE wafl_cp_count counter"), std::string::npos);
  EXPECT_NE(text.find("wafl_cp_count 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wafl_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("wafl_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wafl_cp_total_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("wafl_cp_total_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("wafl_cp_total_ns_sum 300"), std::string::npos);
  EXPECT_NE(text.find("wafl_cp_total_ns_count 2"), std::string::npos);
}

TEST(Export, PrometheusBucketsAreCumulative) {
  Registry reg;
  LogHistogram& h = reg.histogram("lat");
  h.record(1.0);    // bucket [1, 1.125)
  h.record(1000.0);  // a much later bucket
  const std::string text = to_prometheus(reg);
  // The +Inf bucket must equal the total count, and the earlier non-empty
  // bucket line must carry the running total (1), not the bucket count.
  EXPECT_NE(text.find("lat_bucket{le=\"1.125\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 2"), std::string::npos);
}

TEST(Export, PrometheusLabelsRendered) {
  Registry reg;
  reg.counter("dev.busy", "rg=\"1\",dev=\"2\"").add(7);
  const std::string text = to_prometheus(reg);
  EXPECT_NE(text.find("dev_busy{rg=\"1\",dev=\"2\"} 7"), std::string::npos);
}

TEST(Export, JsonIsStableAndCarriesSummaryStats) {
  Registry reg;
  reg.counter("wafl.cp.count").add(2);
  LinearHistogram& h = reg.linear_histogram("frac", 0.0, 1.0, 4);
  h.record(0.1);
  h.record(0.9);
  const std::string a = to_json(reg);
  const std::string b = to_json(reg);
  EXPECT_EQ(a, b);  // entries() sorts; output must be deterministic
  EXPECT_NE(a.find("\"name\": \"wafl.cp.count\""), std::string::npos);
  EXPECT_NE(a.find("\"value\": 2"), std::string::npos);
  EXPECT_NE(a.find("\"kind\": \"linear\""), std::string::npos);
  EXPECT_NE(a.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(a.find("\"p50\""), std::string::npos);
  EXPECT_NE(a.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace wafl::obs
