// Whole-CP span timelines: one ConsistencyPoint at each worker count,
// asserting every emitted span closed with sane timestamps, unique ids,
// resolvable parents, and the expected per-phase structure.  These drive
// real CPs and are therefore slower than the unit checks in
// test_span.cpp; they run under the `trace` ctest label (tools/check.sh
// --trace) and stay out of the default `-LE slow` path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "wafl/consistency_point.hpp"

namespace wafl::obs {
namespace {

constexpr VolumeId kVols = 2;

std::unique_ptr<Aggregate> make_agg(ThreadPool* pool = nullptr) {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 8 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 512;
  cfg.raid_groups = {rg, rg};
  auto agg =
      std::make_unique<Aggregate>(cfg, 7, Runtime{}.with_pool(pool));
  for (std::size_t v = 0; v < kVols; ++v) {
    FlexVolConfig vol;
    vol.file_blocks = 4'000;
    vol.vvbn_blocks = 16 * 1024;
    vol.aa_blocks = 4096;
    agg->add_volume(vol);
  }
  return agg;
}

std::vector<DirtyBlock> dirty_batch(Rng& rng, std::uint64_t per_vol) {
  std::vector<DirtyBlock> out;
  for (VolumeId v = 0; v < kVols; ++v) {
    for (std::uint64_t i = 0; i < per_vol; ++i) {
      out.push_back({v, rng.below(4'000)});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DirtyBlock& a, const DirtyBlock& b) {
              return a.vol != b.vol ? a.vol < b.vol : a.logical < b.logical;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const DirtyBlock& a, const DirtyBlock& b) {
                          return a.vol == b.vol && a.logical == b.logical;
                        }),
            out.end());
  return out;
}

/// Flips the global capture gate for one run; restores it (off) and
/// drains the collector no matter how the test exits.
struct CaptureGuard {
  explicit CaptureGuard(bool on) {
    spans().clear();
    set_span_capture(on);
  }
  ~CaptureGuard() {
    set_span_capture(false);
    spans().clear();
  }
};

/// One CP at each worker count: every emitted span is closed (it is in
/// the snapshot at all), has sane timestamps, unique id, a resolvable
/// parent, and the expected single-instance phase structure.
TEST(SpanTimeline, BalancedMonotonicAcrossWorkerCounts) {
  if constexpr (!kEnabled) {
    GTEST_SKIP() << "observability compiled out";
  }
  for (const unsigned workers : {0u, 1u, 2u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    CaptureGuard guard(true);
    std::unique_ptr<ThreadPool> pool;
    if (workers > 0) {
      pool = std::make_unique<ThreadPool>(workers);
    }

    auto agg = make_agg(pool ? pool.get() : nullptr);
    Rng rng(workers + 1);
    const std::uint64_t before_ns = monotonic_ns();
    ConsistencyPoint::run(*agg, dirty_batch(rng, 600));
    const std::uint64_t after_ns = monotonic_ns();

    const std::vector<SpanRecord> snap = spans().snapshot();
    ASSERT_FALSE(snap.empty());
    EXPECT_EQ(spans().dropped(), 0u);

    std::unordered_set<std::uint64_t> ids;
    std::size_t cp_roots = 0;
    for (const SpanRecord& r : snap) {
      EXPECT_TRUE(ids.insert(r.id).second) << "duplicate span id " << r.id;
      EXPECT_GE(r.t1_ns, r.t0_ns);
      EXPECT_GE(r.t0_ns, before_ns);
      EXPECT_LE(r.t1_ns, after_ns);
      if (r.kind == SpanKind::kCp) {
        ++cp_roots;
      }
    }
    EXPECT_EQ(cp_roots, 1u);
    // Snapshot order is (t0, id): start times are non-decreasing.
    for (std::size_t i = 1; i < snap.size(); ++i) {
      EXPECT_GE(snap[i].t0_ns, snap[i - 1].t0_ns);
    }
    // Causal closure: every parent reference resolves within the CP.
    std::size_t once_kinds = 0;
    std::unordered_map<SpanKind, std::size_t> per_kind;
    for (const SpanRecord& r : snap) {
      if (r.parent != 0) {
        EXPECT_TRUE(ids.contains(r.parent));
      }
      ++per_kind[r.kind];
    }
    for (const SpanKind k :
         {SpanKind::kCpSort, SpanKind::kCpAlloc, SpanKind::kCpVolumes,
          SpanKind::kFcBoundary, SpanKind::kFcFlush, SpanKind::kFcTopaa,
          SpanKind::kFcFold, SpanKind::kCpAggFinish}) {
      EXPECT_EQ(per_kind[k], 1u) << span_kind_name(k);
      ++once_kinds;
    }
    EXPECT_EQ(once_kinds, 8u);
    // Per-group kinds fire once per RAID group.
    EXPECT_EQ(per_kind[SpanKind::kFcRgBoundary], 2u);
    EXPECT_EQ(per_kind[SpanKind::kFcRgTopaa], 2u);
  }
}

}  // namespace
}  // namespace wafl::obs
