// wafl::obs span layer: buffer/collector mechanics, the runtime capture
// gate, causal parentage across ThreadPool fan-outs, exporter shape, and
// a concurrent emit-while-snapshot stress (the TSAN target —
// tools/check.sh --tsan selects this suite by name).  The slower
// whole-CP timeline checks live in test_span_timeline.cpp under the
// `trace` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "util/task_context.hpp"
#include "util/thread_pool.hpp"

namespace wafl::obs {
namespace {

/// Every span test flips the global capture gate; restore it (off) and
/// drain the collector no matter how the test exits.
struct CaptureGuard {
  explicit CaptureGuard(bool on) {
    spans().clear();
    set_span_capture(on);
  }
  ~CaptureGuard() {
    set_span_capture(false);
    spans().clear();
  }
};

TEST(SpanTrace, BufferPushCollectAndWrap) {
  SpanBuffer buf(/*tid=*/3, /*capacity=*/8);
  SpanRecord r;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    r.id = i;
    r.t0_ns = i * 10;
    r.t1_ns = i * 10 + 5;
    buf.push(r);
  }
  std::vector<SpanRecord> out;
  buf.collect(out);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().tid, 3u);
  EXPECT_EQ(buf.pushed(), 5u);

  // Wrap: 20 total pushes into 8 slots keeps only the newest 8.
  for (std::uint64_t i = 6; i <= 20; ++i) {
    r.id = i;
    buf.push(r);
  }
  out.clear();
  buf.collect(out);
  ASSERT_EQ(out.size(), 8u);
  std::uint64_t min_id = ~0ull;
  for (const SpanRecord& rec : out) min_id = std::min(min_id, rec.id);
  EXPECT_EQ(min_id, 13u);
  EXPECT_EQ(buf.pushed(), 20u);

  buf.clear();
  out.clear();
  buf.collect(out);
  EXPECT_TRUE(out.empty());
}

TEST(SpanTrace, CaptureGateDefaultsOff) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  ASSERT_FALSE(span_capture_enabled());
  spans().clear();
  const std::uint64_t ctx_before = current_task_context();
  {
    TraceSpan span(SpanKind::kCp, 1, 2);
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.id(), 0u);
    // A gated-off span must not perturb the causality word either.
    EXPECT_EQ(current_task_context(), ctx_before);
  }
  EXPECT_TRUE(spans().snapshot().empty());
}

TEST(SpanTrace, ParentageAcrossThreadPool) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  CaptureGuard guard(true);
  ThreadPool pool(4);

  std::uint64_t root_id = 0;
  {
    TraceSpan root(SpanKind::kCp, 42);
    root_id = root.id();
    ASSERT_NE(root_id, 0u);
    // Chunked static fan-out: worker tasks inherit the submitter's
    // context, so spans opened inside become children of `root` even
    // though they open on other threads.
    pool.parallel_for(0, 64, [](std::size_t i) {
      TraceSpan child(SpanKind::kRgFill, i);
      (void)child;
    });
  }

  const std::vector<SpanRecord> snap = spans().snapshot();
  std::size_t children = 0;
  for (const SpanRecord& r : snap) {
    if (r.kind != SpanKind::kRgFill) continue;
    ++children;
    EXPECT_EQ(r.parent, root_id);
  }
  EXPECT_EQ(children, 64u);
}

TEST(SpanTrace, NestedSpansRestoreParentage) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  CaptureGuard guard(true);

  TraceSpan outer(SpanKind::kCp);
  {
    TraceSpan mid(SpanKind::kWaPlan);
    TraceSpan inner(SpanKind::kWaExecute);
    EXPECT_EQ(current_task_context(), inner.id());
  }
  // Both inner scopes closed: the causality word is back to `outer`.
  EXPECT_EQ(current_task_context(), outer.id());
  TraceSpan sibling(SpanKind::kWaMerge);
  sibling.end();
  outer.end();

  const std::vector<SpanRecord> snap = spans().snapshot();
  std::unordered_map<std::uint64_t, SpanRecord> by_id;
  for (const SpanRecord& r : snap) by_id[r.id] = r;
  ASSERT_EQ(snap.size(), 4u);
  for (const SpanRecord& r : snap) {
    if (r.kind == SpanKind::kCp) {
      EXPECT_EQ(r.parent, 0u);
    }
    if (r.kind == SpanKind::kWaPlan) {
      EXPECT_EQ(by_id.at(r.parent).kind, SpanKind::kCp);
    }
    if (r.kind == SpanKind::kWaExecute) {
      EXPECT_EQ(by_id.at(r.parent).kind, SpanKind::kWaPlan);
    }
    if (r.kind == SpanKind::kWaMerge) {
      EXPECT_EQ(by_id.at(r.parent).kind, SpanKind::kCp);
    }
  }
}

TEST(SpanTrace, ChromeJsonShape) {
  std::vector<SpanRecord> recs(2);
  recs[0] = {1, 0, 1'000'000, 4'000'000, 7, 9, SpanKind::kCp, 0};
  recs[1] = {2, 1, 2'000'000, 3'500'000, 1, 0, SpanKind::kWaPlan, 5};
  const std::string json = spans_to_chrome_json(recs);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"cp\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"wa.plan\""), std::string::npos);
  // ts is relative to the earliest span, in microseconds.
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 3000.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1500.000"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"parent\": 1"), std::string::npos);
  EXPECT_EQ(spans_to_chrome_json({}).find("error"), std::string::npos);
}

TEST(SpanTrace, SummarySelfTimeAndCriticalPath) {
  // Root [0,100ms] with children [10,40] and [20,60] (overlapping) plus
  // [70,90]: child-union 10..60 ∪ 70..90 = 70ms, so root self = 30ms.
  // Critical path = root self + max(overlap cluster) + trailing child
  // = 30 + 40 + 20 = 90ms.
  const auto ms = [](std::uint64_t m) { return m * 1'000'000; };
  std::vector<SpanRecord> recs(4);
  recs[0] = {1, 0, ms(0), ms(100), 0, 0, SpanKind::kCp, 0};
  recs[1] = {2, 1, ms(10), ms(40), 0, 0, SpanKind::kWaPlan, 0};
  recs[2] = {3, 1, ms(20), ms(60), 0, 0, SpanKind::kWaExecute, 1};
  recs[3] = {4, 1, ms(70), ms(90), 0, 0, SpanKind::kWaMerge, 1};
  const std::string json = span_summary_json(recs, /*dropped=*/0);
  EXPECT_NE(json.find("\"span_count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"window_ms\": 100.000"), std::string::npos);
  EXPECT_NE(json.find("\"critical_path_ms\": 90.000"), std::string::npos);
  // Root self time: 100 - 70 of child cover.
  EXPECT_NE(json.find("\"self_ms\": 30.000"), std::string::npos);
  // Thread 1 busy: [20,60] ∪ [70,90] = 60ms of the 100ms window.
  EXPECT_NE(json.find("\"busy_ms\": 60.000"), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\": 0.6"), std::string::npos);
}

/// TSAN target: four producers emit while the main thread snapshots
/// concurrently; every record a racing snapshot yields is internally
/// consistent, and a quiesced snapshot sees exactly the survivors.
TEST(SpanTrace, ConcurrentEmissionWhileSnapshotting) {
  if constexpr (!kEnabled) GTEST_SKIP() << "observability compiled out";
  CaptureGuard guard(true);
  ThreadPool pool(4);
  std::atomic<bool> done{false};

  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<SpanRecord> snap = spans().snapshot();
      for (const SpanRecord& r : snap) {
        ASSERT_NE(r.id, 0u);
        ASSERT_GE(r.t1_ns, r.t0_ns);
      }
    }
  });
  // Enough spans per task to wrap the 8192-slot rings while the reader
  // races the overwrites.
  pool.parallel_for_dynamic(0, 32, [](std::size_t i) {
    TraceSpan task_span(SpanKind::kCpVolSlice, i);
    for (int j = 0; j < 2'000; ++j) {
      TraceSpan s(SpanKind::kRgFill, i, static_cast<std::uint64_t>(j));
      (void)s;
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  const std::vector<SpanRecord> snap = spans().snapshot();
  // 32 tasks x 2000 inner + 32 task spans were pushed; the rings hold
  // whatever survived the wraps, and dropped() accounts for the rest.
  std::uint64_t total = snap.size() + spans().dropped();
  EXPECT_EQ(total, 32u * 2'000u + 32u);
}

}  // namespace
}  // namespace wafl::obs
