// Unit tests for the wafl::obs trace ring, plus an end-to-end check that
// a real consistency point leaves a well-ordered event trail in the
// process-global trace (the latter only runs when obs is compiled in).
#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "wafl/aggregate.hpp"
#include "wafl/consistency_point.hpp"

namespace wafl::obs {
namespace {

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 1u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(4096).capacity(), 4096u);
}

TEST(TraceRing, KeepsMostRecentEventsInSeqOrder) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.emit(EventType::kDeviceIo, /*a=*/0, /*b=*/i);
  }
  EXPECT_EQ(ring.emitted(), 20u);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The 8 survivors are the last 8 emits (seq 12..19), oldest first, and
  // seq never wraps even though the ring storage did.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].b, 12 + i);
  }
}

TEST(TraceRing, SnapshotBeforeWraparoundIsComplete) {
  TraceRing ring(16);
  ring.emit(EventType::kCpBegin, 1, 100);
  ring.emit(EventType::kCpEnd, 1, 90, 10, 5000);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, EventType::kCpBegin);
  EXPECT_EQ(events[0].a, 1u);
  EXPECT_EQ(events[0].b, 100u);
  EXPECT_EQ(events[1].type, EventType::kCpEnd);
  EXPECT_EQ(events[1].c, 10u);
  EXPECT_EQ(events[1].d, 5000u);
}

TEST(TraceRing, ClearIsAFullReset) {
  TraceRing ring(8);
  ring.emit(EventType::kSsdGc);
  ring.emit(EventType::kSsdGc);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.emitted(), 0u);  // isolation semantics: seq restarts too
  ring.emit(EventType::kSsdGc);
  const std::vector<TraceEvent> events = ring.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 0u);
}

TEST(TraceRing, EventTypeNamesAreStable) {
  EXPECT_EQ(event_type_name(EventType::kCpBegin), "cp_begin");
  EXPECT_EQ(event_type_name(EventType::kCpEnd), "cp_end");
  EXPECT_EQ(event_type_name(EventType::kAaCheckout), "aa_checkout");
  EXPECT_EQ(event_type_name(EventType::kHbpsReplenish), "hbps_replenish");
  EXPECT_EQ(event_type_name(EventType::kTopAaMount), "topaa_mount");
}

TEST(TraceRing, JsonExportNamesEvents) {
  TraceRing ring(8);
  ring.emit(EventType::kTetris, 3, 7, 256, 2);
  const std::string json = trace_to_json(ring);
  EXPECT_NE(json.find("\"type\": \"tetris\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"c\": 256"), std::string::npos);
}

// End-to-end: running a CP through a real aggregate must leave cp_begin
// before cp_end in the global trace, with checkout events in between and
// consistent payloads.  Skipped when instrumentation is compiled out.
TEST(TraceIntegration, ConsistencyPointLeavesOrderedTrail) {
  if (!kEnabled) GTEST_SKIP() << "obs instrumentation compiled out";

  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 16 * 1024;
  rg.media.type = MediaType::kHdd;
  cfg.raid_groups = {rg};
  Aggregate agg(cfg, /*rng_seed=*/7);

  FlexVolConfig vol_cfg;
  vol_cfg.file_blocks = 8 * 1024;
  vol_cfg.vvbn_blocks = 2ull * kFlatAaBlocks;
  FlexVol& vol = agg.add_volume(vol_cfg);

  trace().clear();
  std::vector<DirtyBlock> dirty;
  for (std::uint64_t l = 0; l < 4'000; ++l) dirty.push_back({vol.id(), l});
  const CpStats stats = ConsistencyPoint::run(agg, dirty);

  const std::vector<TraceEvent> events = trace().snapshot();
  ASSERT_FALSE(events.empty());

  std::size_t begin_at = events.size();
  std::size_t end_at = events.size();
  std::uint64_t checkouts = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == EventType::kCpBegin && begin_at == events.size()) {
      begin_at = i;
    }
    if (events[i].type == EventType::kCpEnd) end_at = i;
    if (events[i].type == EventType::kAaCheckout) ++checkouts;
  }
  ASSERT_LT(begin_at, events.size()) << "no cp_begin event";
  ASSERT_LT(end_at, events.size()) << "no cp_end event";
  EXPECT_LT(begin_at, end_at);
  EXPECT_GT(checkouts, 0u) << "CP wrote blocks but checked out no AAs";

  // cp_end payload mirrors the CpStats the caller saw.
  EXPECT_EQ(events[end_at].b, stats.blocks_written);
  EXPECT_EQ(events[end_at].c, stats.blocks_freed);
  EXPECT_GT(events[end_at].d, 0u);  // wall-clock duration

  // Timestamps are monotone non-decreasing in emit order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].t_ns, events[i].t_ns);
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
}

}  // namespace
}  // namespace wafl::obs
