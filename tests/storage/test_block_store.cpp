#include "storage/block_store.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "fault/crash_point.hpp"
#include "fault/fault.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace wafl {
namespace {

using Block = std::array<std::byte, kBlockSize>;

Block make_block(std::uint8_t fill) {
  Block b;
  b.fill(static_cast<std::byte>(fill));
  return b;
}

TEST(BlockStore, ReadBackWhatWasWritten) {
  BlockStore store(16);
  const Block in = make_block(0xAB);
  store.write(3, in);
  Block out{};
  store.read(3, out);
  EXPECT_EQ(out, in);
}

TEST(BlockStore, UnwrittenBlocksReadAsZero) {
  BlockStore store(16);
  Block out = make_block(0xFF);
  store.read(7, out);
  EXPECT_EQ(out, make_block(0x00));
}

TEST(BlockStore, OverwriteReplacesContents) {
  BlockStore store(16);
  store.write(0, make_block(0x11));
  store.write(0, make_block(0x22));
  Block out{};
  store.read(0, out);
  EXPECT_EQ(out, make_block(0x22));
}

TEST(BlockStore, CountsReadsAndWrites) {
  BlockStore store(16);
  Block buf{};
  store.write(1, make_block(1));
  store.write(2, make_block(2));
  store.read(1, buf);
  EXPECT_EQ(store.stats().block_writes, 2u);
  EXPECT_EQ(store.stats().block_reads, 1u);
  EXPECT_EQ(store.stats().total(), 3u);
  store.reset_stats();
  EXPECT_EQ(store.stats().total(), 0u);
}

TEST(BlockStore, SparseMaterialization) {
  BlockStore store(1'000'000);
  EXPECT_EQ(store.materialized_blocks(), 0u);
  store.write(999'999, make_block(5));
  EXPECT_EQ(store.materialized_blocks(), 1u);
  EXPECT_TRUE(store.is_materialized(999'999));
  EXPECT_FALSE(store.is_materialized(0));
}

TEST(BlockStore, CorruptFlipsExactlyOneBit) {
  BlockStore store(4);
  store.write(2, make_block(0x00));
  store.corrupt(2, 12345);
  Block out{};
  store.read(2, out);
  int set_bits = 0;
  for (const std::byte b : out) {
    set_bits += __builtin_popcount(static_cast<unsigned>(b));
  }
  EXPECT_EQ(set_bits, 1);
  EXPECT_EQ(out[12345 / 8], static_cast<std::byte>(1u << (12345 % 8)));
}

TEST(BlockStore, CorruptTwiceRestores) {
  BlockStore store(4);
  store.write(0, make_block(0x3C));
  store.corrupt(0, 99);
  store.corrupt(0, 99);
  Block out{};
  store.read(0, out);
  EXPECT_EQ(out, make_block(0x3C));
}

TEST(BlockStore, PeekBypassesCountersAndInjector) {
  BlockStore store(8);
  store.write(5, make_block(0x5A));
  store.reset_stats();

  fault::FaultPlan plan;
  plan.seed = 1;
  plan.read_bitrot_prob = 1.0;  // every counted read would rot
  fault::FaultEngine engine(plan);
  store.set_fault_injector(&engine);
  Block out{};
  store.peek(5, out);
  store.set_fault_injector(nullptr);

  EXPECT_EQ(out, make_block(0x5A));  // no rot: peek is the harness's view
  EXPECT_EQ(store.stats().total(), 0u);
  EXPECT_TRUE(engine.journal().empty());
}

TEST(BlockStore, CopyContentsFromDeepCopies) {
  BlockStore src(16);
  src.write(2, make_block(0x22));
  src.write(9, make_block(0x99));

  BlockStore dst(16);
  dst.write(1, make_block(0x11));  // replaced wholesale by the copy
  dst.copy_contents_from(src);

  // Contents are replaced; counters are the destination's own history.
  EXPECT_EQ(dst.stats().block_writes, 1u);
  EXPECT_EQ(dst.materialized_blocks(), 2u);
  EXPECT_FALSE(dst.is_materialized(1));
  Block out{};
  dst.peek(2, out);
  EXPECT_EQ(out, make_block(0x22));
  // Deep copy: mutating the source afterwards must not leak through.
  src.write(2, make_block(0xEE));
  dst.peek(2, out);
  EXPECT_EQ(out, make_block(0x22));
}

TEST(BlockStoreGrowth, GrowRaisesCapacityAndKeepsContents) {
  BlockStore store(4);
  store.write(3, make_block(0x33));
  store.grow(10);
  EXPECT_EQ(store.capacity_blocks(), 10u);
  Block out{};
  store.read(3, out);
  EXPECT_EQ(out, make_block(0x33));
  store.write(9, make_block(0x44));  // newly addressable
  EXPECT_TRUE(store.is_materialized(9));
}

TEST(BlockStoreGrowth, TornWriteInGrownRange) {
  // Growth (§3.1) then a torn first write of a newly addressable block:
  // the persisted prefix lands over the sparse-zero "old contents".
  BlockStore inner(4);
  fault::FaultPlan plan;
  plan.seed = 2;
  plan.torn_write_prob = 1.0;
  plan.torn_bytes = 96;
  plan.only_block = 6;
  fault::FaultyBlockStore faulty(inner, plan);
  faulty.grow(8);
  EXPECT_EQ(faulty.capacity_blocks(), 8u);

  faulty.write(6, make_block(0xC6));
  Block out{};
  inner.peek(6, out);
  for (std::size_t i = 0; i < kBlockSize; ++i) {
    ASSERT_EQ(out[i], i < 96 ? std::byte{0xC6} : std::byte{0x00}) << i;
  }
}

TEST(BlockStoreGrowth, WriteCountCrashInGrownRange) {
  BlockStore inner(2);
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.crash_after_writes = 2;
  plan.crash_write_fault = fault::CrashWriteFault::kDropped;
  fault::FaultyBlockStore faulty(inner, plan);
  faulty.grow(4);

  faulty.write(2, make_block(0xA2));
  EXPECT_THROW(faulty.write(3, make_block(0xA3)), fault::CrashPoint);
  // The pre-crash write in the grown range survived; the crashing one
  // was dropped; capacity survives the "reboot".
  EXPECT_TRUE(faulty.is_materialized(2));
  EXPECT_FALSE(faulty.is_materialized(3));
  EXPECT_EQ(inner.capacity_blocks(), 4u);
}

TEST(BlockStoreConcurrent, DisjointSlotWritersLandIntact) {
  // The single-writer-per-slot contract: many threads writing DISTINCT
  // blocks concurrently must each land their full payload.  This is the
  // access pattern of the parallel metafile flush and TopAA commits.
  BlockStore store(4096);
  ThreadPool pool(4);
  pool.parallel_for_dynamic(0, 4096, /*chunk=*/64, [&](std::size_t b) {
    store.write(b, make_block(static_cast<std::uint8_t>(b & 0xFF)));
  });
  for (std::uint64_t b = 0; b < 4096; ++b) {
    Block out{};
    store.peek(b, out);
    ASSERT_EQ(out, make_block(static_cast<std::uint8_t>(b & 0xFF)))
        << "block " << b;
  }
}

TEST(BlockStoreConcurrent, CountersExactUnderConcurrency) {
  // The sharded relaxed counters must not lose increments: the totals are
  // the CP accounting the benches and acceptance gates read.
  BlockStore store(8192);
  ThreadPool pool(4);
  pool.parallel_for_dynamic(0, 8192, /*chunk=*/32, [&](std::size_t b) {
    store.write(b, make_block(1));
  });
  pool.parallel_for_dynamic(0, 8192, /*chunk=*/32, [&](std::size_t b) {
    Block out{};
    store.read(b, out);
    store.read(b, out);
  });
  EXPECT_EQ(store.stats().block_writes, 8192u);
  EXPECT_EQ(store.stats().block_reads, 2u * 8192u);
}

TEST(BlockStoreConcurrent, ConcurrentReadersOfOneBlock) {
  // Read-read sharing on a single slot is unrestricted; every reader sees
  // the (quiescent) payload.
  BlockStore store(4);
  store.write(2, make_block(0x7E));
  std::vector<std::thread> readers;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&store, &ok] {
      for (int i = 0; i < 1000; ++i) {
        Block out{};
        store.read(2, out);
        if (out == make_block(0x7E)) ok.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(ok.load(), 4000);
}

TEST(BlockStoreConcurrent, ParallelLoadStyleMixedTraffic) {
  // The mount-path shape: concurrent reads of disjoint blocks interleaved
  // with writes to OTHER disjoint blocks (volumes load while the aggregate
  // flushes elsewhere).  Materialization races on the shard maps are the
  // risk; contents and counters must come out exact.
  BlockStore store(2048);
  for (std::uint64_t b = 0; b < 1024; ++b) {
    store.write(b, make_block(static_cast<std::uint8_t>(b & 0xFF)));
  }
  store.reset_stats();
  ThreadPool pool(4);
  std::atomic<std::uint64_t> mismatches{0};
  pool.parallel_for_dynamic(0, 2048, /*chunk=*/16, [&](std::size_t b) {
    if (b < 1024) {
      Block out{};
      store.read(b, out);
      if (out != make_block(static_cast<std::uint8_t>(b & 0xFF))) {
        mismatches.fetch_add(1);
      }
    } else {
      store.write(b, make_block(static_cast<std::uint8_t>(b & 0xFF)));
    }
  });
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(store.stats().block_reads, 1024u);
  EXPECT_EQ(store.stats().block_writes, 1024u);
}

TEST(BlockStoreDeathTest, OutOfRangeWriteAsserts) {
  BlockStore store(4);
  const Block b = make_block(0);
  EXPECT_DEATH(store.write(4, b), "out of range");
}

TEST(BlockStoreDeathTest, CorruptUnwrittenAsserts) {
  BlockStore store(4);
  EXPECT_DEATH(store.corrupt(1, 0), "unwritten");
}

}  // namespace
}  // namespace wafl
