#include "storage/block_store.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/units.hpp"

namespace wafl {
namespace {

using Block = std::array<std::byte, kBlockSize>;

Block make_block(std::uint8_t fill) {
  Block b;
  b.fill(static_cast<std::byte>(fill));
  return b;
}

TEST(BlockStore, ReadBackWhatWasWritten) {
  BlockStore store(16);
  const Block in = make_block(0xAB);
  store.write(3, in);
  Block out{};
  store.read(3, out);
  EXPECT_EQ(out, in);
}

TEST(BlockStore, UnwrittenBlocksReadAsZero) {
  BlockStore store(16);
  Block out = make_block(0xFF);
  store.read(7, out);
  EXPECT_EQ(out, make_block(0x00));
}

TEST(BlockStore, OverwriteReplacesContents) {
  BlockStore store(16);
  store.write(0, make_block(0x11));
  store.write(0, make_block(0x22));
  Block out{};
  store.read(0, out);
  EXPECT_EQ(out, make_block(0x22));
}

TEST(BlockStore, CountsReadsAndWrites) {
  BlockStore store(16);
  Block buf{};
  store.write(1, make_block(1));
  store.write(2, make_block(2));
  store.read(1, buf);
  EXPECT_EQ(store.stats().block_writes, 2u);
  EXPECT_EQ(store.stats().block_reads, 1u);
  EXPECT_EQ(store.stats().total(), 3u);
  store.reset_stats();
  EXPECT_EQ(store.stats().total(), 0u);
}

TEST(BlockStore, SparseMaterialization) {
  BlockStore store(1'000'000);
  EXPECT_EQ(store.materialized_blocks(), 0u);
  store.write(999'999, make_block(5));
  EXPECT_EQ(store.materialized_blocks(), 1u);
  EXPECT_TRUE(store.is_materialized(999'999));
  EXPECT_FALSE(store.is_materialized(0));
}

TEST(BlockStore, CorruptFlipsExactlyOneBit) {
  BlockStore store(4);
  store.write(2, make_block(0x00));
  store.corrupt(2, 12345);
  Block out{};
  store.read(2, out);
  int set_bits = 0;
  for (const std::byte b : out) {
    set_bits += __builtin_popcount(static_cast<unsigned>(b));
  }
  EXPECT_EQ(set_bits, 1);
  EXPECT_EQ(out[12345 / 8], static_cast<std::byte>(1u << (12345 % 8)));
}

TEST(BlockStore, CorruptTwiceRestores) {
  BlockStore store(4);
  store.write(0, make_block(0x3C));
  store.corrupt(0, 99);
  store.corrupt(0, 99);
  Block out{};
  store.read(0, out);
  EXPECT_EQ(out, make_block(0x3C));
}

TEST(BlockStoreDeathTest, OutOfRangeWriteAsserts) {
  BlockStore store(4);
  const Block b = make_block(0);
  EXPECT_DEATH(store.write(4, b), "out of range");
}

TEST(BlockStoreDeathTest, CorruptUnwrittenAsserts) {
  BlockStore store(4);
  EXPECT_DEATH(store.corrupt(1, 0), "unwritten");
}

}  // namespace
}  // namespace wafl
