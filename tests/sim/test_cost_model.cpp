#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace wafl {
namespace {

TEST(CostModel, CpCpuSumsTheCountedWork) {
  CostModel cost;
  CpStats s;
  s.blocks_written = 10;
  s.vol_meta_blocks = 2;
  s.agg_meta_blocks = 3;
  s.meta_flush_blocks = 5;
  s.vol_bits_scanned = 100;
  s.agg_bits_scanned = 200;
  s.tetrises = 4;
  s.vol_pick_free_frac.add(0.5);  // 1 switch
  s.agg_pick_free_frac.add(0.5);  // 1 switch

  const SimTime expect = 10 * cost.per_block_ns +
                         (2 + 3) * cost.per_meta_block_ns +
                         5 * cost.per_flush_block_ns +
                         300 * cost.per_bit_scanned_ns +
                         2 * cost.per_aa_switch_ns + 4 * cost.per_tetris_ns;
  EXPECT_EQ(cost.cp_cpu_ns(s), expect);
}

TEST(CostModel, EmptyCpCostsNothing) {
  CostModel cost;
  EXPECT_EQ(cost.cp_cpu_ns(CpStats{}), 0u);
  EXPECT_EQ(cost.cp_storage_ns(CpStats{}), 0u);
}

TEST(CostModel, StorageAddsMetaFlushCharge) {
  CostModel cost;
  CpStats s;
  s.storage_time_ns = 1'000'000;
  s.meta_flush_blocks = 10;
  EXPECT_EQ(cost.cp_storage_ns(s),
            1'000'000u + 10 * cost.meta_flush_storage_ns);
}

TEST(CostModel, MoreWorkCostsMore) {
  CostModel cost;
  CpStats small, big;
  small.blocks_written = 100;
  big.blocks_written = 100;
  big.vol_meta_blocks = 50;
  big.agg_bits_scanned = 100'000;
  EXPECT_GT(cost.cp_cpu_ns(big), cost.cp_cpu_ns(small));
}

TEST(CpStats, MergeAccumulatesEverything) {
  CpStats a, b;
  a.blocks_written = 1;
  a.tetrises = 2;
  a.vol_bits_scanned = 3;
  a.vol_pick_free_frac.add(0.25);
  b.blocks_written = 10;
  b.tetrises = 20;
  b.vol_bits_scanned = 30;
  b.vol_pick_free_frac.add(0.75);
  a.merge(b);
  EXPECT_EQ(a.blocks_written, 11u);
  EXPECT_EQ(a.tetrises, 22u);
  EXPECT_EQ(a.vol_bits_scanned, 33u);
  EXPECT_EQ(a.vol_pick_free_frac.count(), 2u);
  EXPECT_DOUBLE_EQ(a.vol_pick_free_frac.mean(), 0.5);
}

}  // namespace
}  // namespace wafl
