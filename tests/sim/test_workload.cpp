#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <map>

namespace wafl {
namespace {

TEST(RandomOverwriteWorkload, TargetsAlignedAndInRange) {
  RandomOverwriteWorkload wl({0, 1}, 10'000, 2, 0.0);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const DirtyBlock db = wl.next_write(rng);
    EXPECT_LT(db.vol, 2u);
    EXPECT_LT(db.logical, 10'000u);
    EXPECT_EQ(db.logical % 2, 0u);
  }
}

TEST(RandomOverwriteWorkload, UniformCoversSpan) {
  RandomOverwriteWorkload wl({0}, 100, 1, 0.0);
  Rng rng(2);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20'000; ++i) {
    ++counts[wl.next_write(rng).logical];
  }
  EXPECT_EQ(counts.size(), 100u);  // every slot hit
}

TEST(RandomOverwriteWorkload, ZipfSkewsAndScatters) {
  RandomOverwriteWorkload wl({0}, 10'000, 1, 1.0);
  Rng rng(3);
  std::map<std::uint64_t, int> counts;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[wl.next_write(rng).logical];
  }
  // Skew: the hottest single block gets far more than uniform share.
  int hottest = 0;
  for (const auto& [block, c] : counts) {
    hottest = std::max(hottest, c);
  }
  EXPECT_GT(hottest, 20 * n / 10'000);
  // Scatter: hot blocks are not clustered at the start of the file — the
  // top-20 hot blocks should spread across the span.
  std::vector<std::pair<int, std::uint64_t>> by_heat;
  for (const auto& [block, c] : counts) {
    by_heat.push_back({c, block});
  }
  std::sort(by_heat.rbegin(), by_heat.rend());
  std::uint64_t in_first_tenth = 0;
  for (int i = 0; i < 20; ++i) {
    if (by_heat[static_cast<std::size_t>(i)].second < 1000) ++in_first_tenth;
  }
  EXPECT_LT(in_first_tenth, 10u);
}

TEST(RandomOverwriteWorkload, DeterministicAcrossRuns) {
  RandomOverwriteWorkload wl1({0}, 1000, 2, 0.8);
  RandomOverwriteWorkload wl2({0}, 1000, 2, 0.8);
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    const DirtyBlock x = wl1.next_write(a);
    const DirtyBlock y = wl2.next_write(b);
    EXPECT_EQ(x.vol, y.vol);
    EXPECT_EQ(x.logical, y.logical);
  }
}

TEST(SequentialWorkload, RoundRobinsVolumesAndAdvances) {
  SequentialWorkload wl({0, 1}, 100, 2);
  Rng rng(1);
  EXPECT_EQ(wl.next_write(rng).vol, 0u);
  EXPECT_EQ(wl.next_write(rng).vol, 1u);
  const DirtyBlock third = wl.next_write(rng);
  EXPECT_EQ(third.vol, 0u);
  EXPECT_EQ(third.logical, 2u);  // advanced by one op (2 blocks)
}

TEST(SequentialWorkload, WrapsAtSpanEnd) {
  SequentialWorkload wl({0}, 6, 2);  // 3 op slots
  Rng rng(1);
  EXPECT_EQ(wl.next_write(rng).logical, 0u);
  EXPECT_EQ(wl.next_write(rng).logical, 2u);
  EXPECT_EQ(wl.next_write(rng).logical, 4u);
  EXPECT_EQ(wl.next_write(rng).logical, 0u);  // wrapped
}

}  // namespace
}  // namespace wafl
