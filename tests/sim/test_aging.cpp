#include "sim/aging.hpp"

#include <gtest/gtest.h>

#include <array>

#include "util/stats.hpp"

namespace wafl {
namespace {

AggregateConfig small_agg() {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 32 * 1024;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 1024;
  cfg.raid_groups = {rg};
  return cfg;
}

FlexVolConfig small_vol() {
  FlexVolConfig v;
  v.vvbn_blocks = 128 * 1024;
  v.file_blocks = 96 * 1024;
  v.aa_blocks = 8192;
  return v;
}

TEST(Aging, FillsToRequestedFraction) {
  Aggregate agg(small_agg(), 1);
  agg.add_volume(small_vol());
  AgingConfig cfg;
  cfg.fill_fraction = 0.5;
  cfg.overwrite_passes = 0.0;
  cfg.cp_blocks = 16'384;
  const AgingReport r = age_filesystem(agg, std::array{VolumeId{0}}, cfg);

  const auto expect_filled =
      static_cast<std::uint64_t>(0.5 * 96 * 1024);
  EXPECT_EQ(r.blocks_filled, expect_filled);
  EXPECT_EQ(r.blocks_overwritten, 0u);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - expect_filled);
  // Every filled logical block is mapped.
  const FlexVol& vol = agg.volume(0);
  for (std::uint64_t l = 0; l < expect_filled; l += 997) {
    EXPECT_TRUE(vol.is_mapped(l));
  }
  EXPECT_FALSE(vol.is_mapped(expect_filled));
}

TEST(Aging, OverwritesPreserveLiveBlockCount) {
  Aggregate agg(small_agg(), 1);
  agg.add_volume(small_vol());
  AgingConfig cfg;
  cfg.fill_fraction = 0.4;
  cfg.overwrite_passes = 1.5;
  cfg.cp_blocks = 16'384;
  const AgingReport r = age_filesystem(agg, std::array{VolumeId{0}}, cfg);
  EXPECT_GT(r.blocks_overwritten, 0u);

  // COW invariant: live data count is unchanged by overwrites.
  const auto expect_filled = static_cast<std::uint64_t>(0.4 * 96 * 1024);
  EXPECT_EQ(agg.free_blocks(), agg.total_blocks() - expect_filled);
  EXPECT_EQ(agg.volume(0).free_blocks(), 128u * 1024u - expect_filled);
}

TEST(Aging, SkewedChurnProducesNonUniformFreeSpace) {
  // The §4.1 premise: aging makes per-AA free space non-uniform, which is
  // exactly what the AA cache exploits (chosen 61% free vs 46% average).
  Aggregate agg(small_agg(), 1);
  agg.add_volume(small_vol());
  AgingConfig cfg;
  cfg.fill_fraction = 0.55;
  cfg.overwrite_passes = 3.0;
  cfg.zipf_theta = 0.9;
  cfg.cp_blocks = 16'384;
  age_filesystem(agg, std::array{VolumeId{0}}, cfg);

  RunningStat aa_free;
  const auto& board = agg.rg_scoreboard(0);
  const auto& layout = agg.rg_layout(0);
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    aa_free.add(static_cast<double>(board.score(aa)) /
                static_cast<double>(layout.aa_capacity(aa)));
  }
  // Spread exists: best AA is clearly better than the mean.
  EXPECT_GT(aa_free.max(), aa_free.mean() + 0.05);
  EXPECT_GT(aa_free.stddev(), 0.02);
}

TEST(Aging, CpsAreBatched) {
  Aggregate agg(small_agg(), 1);
  agg.add_volume(small_vol());
  AgingConfig cfg;
  cfg.fill_fraction = 0.25;
  cfg.overwrite_passes = 0.5;
  cfg.cp_blocks = 8192;
  const AgingReport r = age_filesystem(agg, std::array{VolumeId{0}}, cfg);
  // At least fill/cp_blocks CPs, plus the overwrite batches.
  EXPECT_GE(r.cps_run, (r.blocks_filled + r.blocks_overwritten) / 8192);
}

TEST(Aging, MultipleVolumes) {
  Aggregate agg(small_agg(), 1);
  FlexVolConfig v = small_vol();
  v.vvbn_blocks = 32 * 1024;
  v.file_blocks = 16 * 1024;
  v.aa_blocks = 4096;
  agg.add_volume(v);
  agg.add_volume(v);
  AgingConfig cfg;
  cfg.fill_fraction = 0.5;
  cfg.overwrite_passes = 0.5;
  cfg.cp_blocks = 8192;
  age_filesystem(agg, std::array{VolumeId{0}, VolumeId{1}}, cfg);
  EXPECT_EQ(agg.volume(0).free_blocks(), agg.volume(1).free_blocks());
}

}  // namespace
}  // namespace wafl
