#include "sim/latency_sim.hpp"

#include <gtest/gtest.h>

#include <array>

#include "sim/aging.hpp"

namespace wafl {
namespace {

AggregateConfig ssd_agg() {
  AggregateConfig cfg;
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = 32 * 1024;
  rg.media.type = MediaType::kSsd;
  rg.media.ssd.pages_per_erase_block = 1024;
  rg.aa_stripes = 2048;
  cfg.raid_groups = {rg};
  return cfg;
}

FlexVolConfig vol_cfg() {
  FlexVolConfig v;
  v.vvbn_blocks = 128 * 1024;
  v.file_blocks = 96 * 1024;
  v.aa_blocks = 8192;
  return v;
}

SimConfig sim_cfg() {
  SimConfig cfg;
  cfg.cp_trigger_blocks = 4096;
  cfg.dirty_high_watermark = 12'288;
  cfg.blocks_per_op = 2;
  return cfg;
}

struct Rig {
  Rig() : agg(ssd_agg(), 5) {
    agg.add_volume(vol_cfg());
    AgingConfig aging;
    aging.fill_fraction = 0.5;
    aging.overwrite_passes = 0.3;
    aging.cp_blocks = 8192;
    age_filesystem(agg, std::array{VolumeId{0}}, aging);
    workload = std::make_unique<RandomOverwriteWorkload>(
        std::vector<VolumeId>{0}, 48 * 1024, 2, 0.9);
  }

  Aggregate agg;
  std::unique_ptr<RandomOverwriteWorkload> workload;
};

TEST(LatencySimulator, LowLoadHasLowLatency) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint p = sim.run(/*offered=*/2000, /*seconds=*/2.0);
  EXPECT_GT(p.ops_completed, 1000u);
  // At 2k ops/s on 20 modeled cores, admission dominates: well under 1 ms.
  EXPECT_LT(p.mean_latency_ms, 1.0);
  // Achieved tracks offered at low load (within Poisson noise).
  EXPECT_NEAR(p.achieved_ops_per_sec, 2000, 200);
}

TEST(LatencySimulator, SaturationCapsThroughputAndInflatesLatency) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint low = sim.run(2000, 2.0);
  const LoadPoint insane = sim.run(500'000, 2.0);
  // The hockey stick: throughput saturates below offered, latency blows up.
  EXPECT_LT(insane.achieved_ops_per_sec, 500'000 * 0.8);
  EXPECT_GT(insane.mean_latency_ms, 10 * low.mean_latency_ms);
}

TEST(LatencySimulator, ThroughputMonotoneUntilSaturation) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint a = sim.run(1000, 1.5);
  const LoadPoint b = sim.run(4000, 1.5);
  EXPECT_GT(b.achieved_ops_per_sec, a.achieved_ops_per_sec * 2);
}

TEST(LatencySimulator, CpsActuallyRun) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint p = sim.run(20'000, 2.0);
  EXPECT_GT(p.cps, 2u);
  EXPECT_GT(p.cp_totals.blocks_written, 0u);
  EXPECT_GT(p.cp_totals.blocks_freed, 0u);  // overwrites free old copies
  EXPECT_GT(p.mean_agg_pick_free, 0.0);
  EXPECT_GT(p.mean_vol_pick_free, 0.0);
  EXPECT_GE(p.write_amplification, 1.0);
}

TEST(LatencySimulator, CpuPerOpIsReported) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint p = sim.run(10'000, 1.5);
  // At least the admission cost, plus CP work.
  EXPECT_GT(p.cpu_us_per_op, 100.0);
  EXPECT_LT(p.cpu_us_per_op, 2000.0);
}

TEST(LatencySimulator, ReadsMixIn) {
  Rig rig;
  SimConfig cfg = sim_cfg();
  cfg.read_fraction = 0.5;
  LatencySimulator sim(rig.agg, *rig.workload, cfg);
  const LoadPoint p = sim.run(10'000, 1.5);
  EXPECT_GT(p.ops_completed, 5000u);
  // Reads dirty nothing, so CP volume is roughly halved versus all-write;
  // just assert the system stays healthy.
  EXPECT_GT(p.cps, 0u);
}

TEST(LatencySimulator, OverlappedCpShiftsTheKnee) {
  // Same aged state, same offered load: the overlapped model keeps only
  // the freeze share of CP CPU on the admission path, so at a load where
  // CP work contends with admission, latency drops and throughput holds
  // or improves (the knee shifts right — EXPERIMENTS.md).
  Rig stw_rig, ov_rig;
  SimConfig ov_cfg = sim_cfg();
  ov_cfg.overlapped_cp = true;
  LatencySimulator stw(stw_rig.agg, *stw_rig.workload, sim_cfg());
  LatencySimulator ov(ov_rig.agg, *ov_rig.workload, ov_cfg);
  const LoadPoint a = stw.run(20'000, 2.0);
  const LoadPoint b = ov.run(20'000, 2.0);
  EXPECT_GT(a.cps, 2u);
  EXPECT_GT(b.cps, 2u);
  EXPECT_LT(b.mean_latency_ms, a.mean_latency_ms);
  EXPECT_GE(b.achieved_ops_per_sec, a.achieved_ops_per_sec * 0.99);
  // The CP work itself does not shrink — it just stops blocking
  // admission — so per-op CPU stays in the same ballpark.
  EXPECT_NEAR(b.cpu_us_per_op, a.cpu_us_per_op, a.cpu_us_per_op * 0.5);
}

TEST(LatencySimulator, OverlappedCpDeterministic) {
  Rig rig1, rig2;
  SimConfig cfg = sim_cfg();
  cfg.overlapped_cp = true;
  LatencySimulator sim1(rig1.agg, *rig1.workload, cfg);
  LatencySimulator sim2(rig2.agg, *rig2.workload, cfg);
  const LoadPoint a = sim1.run(5000, 1.0);
  const LoadPoint b = sim2.run(5000, 1.0);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.cps, b.cps);
}

TEST(LatencySimulator, IntakeThreadsShiftTheKnee) {
  // DESIGN.md §14: intake_threads models the sharded front end as N
  // admission servers, each at the single-front-end service rate
  // (op_admission_ns / cpu_cores = 6 µs/op here, so one server knees near
  // 166k ops/s).  Offered load past that knee: four servers push the
  // admission bottleneck out, so achieved throughput rises and latency
  // falls.  CP CPU still blocks every server (the freeze holds all shard
  // locks), so this is a knee shift, not a free 4x.
  Rig one_rig, four_rig;
  SimConfig four = sim_cfg();
  four.intake_threads = 4;
  LatencySimulator one(one_rig.agg, *one_rig.workload, sim_cfg());
  LatencySimulator quad(four_rig.agg, *four_rig.workload, four);
  const LoadPoint a = one.run(300'000, 1.5);
  const LoadPoint b = quad.run(300'000, 1.5);
  EXPECT_GT(b.achieved_ops_per_sec, a.achieved_ops_per_sec * 1.2);
  EXPECT_LT(b.mean_latency_ms, a.mean_latency_ms);
}

TEST(LatencySimulator, IntakeThreadsDeterministic) {
  // The multi-server pick (earliest-free, lowest index on ties) keeps the
  // sharded-intake model as reproducible as the single-server one.
  Rig rig1, rig2;
  SimConfig cfg = sim_cfg();
  cfg.intake_threads = 4;
  cfg.overlapped_cp = true;
  LatencySimulator sim1(rig1.agg, *rig1.workload, cfg);
  LatencySimulator sim2(rig2.agg, *rig2.workload, cfg);
  const LoadPoint a = sim1.run(5000, 1.0);
  const LoadPoint b = sim2.run(5000, 1.0);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.cps, b.cps);
}

TEST(LatencySimulator, DeterministicGivenSeedAndState) {
  Rig rig1, rig2;
  LatencySimulator sim1(rig1.agg, *rig1.workload, sim_cfg());
  LatencySimulator sim2(rig2.agg, *rig2.workload, sim_cfg());
  const LoadPoint a = sim1.run(5000, 1.0);
  const LoadPoint b = sim2.run(5000, 1.0);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.cps, b.cps);
}

}  // namespace
}  // namespace wafl

namespace wafl {
namespace {

TEST(LatencySimulatorClosedLoop, ThroughputScalesWithPopulation) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint small = sim.run_closed(2, 1.5);
  const LoadPoint large = sim.run_closed(64, 1.5);
  EXPECT_GT(large.achieved_ops_per_sec, small.achieved_ops_per_sec * 2);
}

TEST(LatencySimulatorClosedLoop, LittlesLawHolds) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const std::size_t clients = 128;
  const LoadPoint p = sim.run_closed(clients, 2.0);
  // Mean concurrency == throughput x mean latency (within the tolerance
  // set by end effects and the residual-blocked accounting).
  const double concurrency =
      p.achieved_ops_per_sec * p.mean_latency_ms / 1e3;
  EXPECT_GT(concurrency, clients * 0.5);
  EXPECT_LT(concurrency, clients * 1.5);
}

TEST(LatencySimulatorClosedLoop, SaturatedLatencyGrowsLinearly) {
  Rig rig;
  LatencySimulator sim(rig.agg, *rig.workload, sim_cfg());
  const LoadPoint a = sim.run_closed(128, 1.5);
  const LoadPoint b = sim.run_closed(512, 1.5);
  // Past saturation, 4x the clients buys little throughput but ~4x the
  // latency (queueing).
  EXPECT_LT(b.achieved_ops_per_sec, a.achieved_ops_per_sec * 2.5);
  EXPECT_GT(b.mean_latency_ms, a.mean_latency_ms * 1.5);
}

TEST(LatencySimulatorClosedLoop, DeterministicGivenSeedAndState) {
  Rig rig1, rig2;
  LatencySimulator sim1(rig1.agg, *rig1.workload, sim_cfg());
  LatencySimulator sim2(rig2.agg, *rig2.workload, sim_cfg());
  const LoadPoint a = sim1.run_closed(32, 1.0);
  const LoadPoint b = sim2.run_closed(32, 1.0);
  EXPECT_EQ(a.ops_completed, b.ops_completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
}

TEST(LatencySimulatorClosedLoop, ReadsMixIn) {
  Rig rig;
  SimConfig cfg = sim_cfg();
  cfg.read_fraction = 0.5;
  LatencySimulator sim(rig.agg, *rig.workload, cfg);
  const LoadPoint p = sim.run_closed(64, 1.5);
  EXPECT_GT(p.ops_completed, 1000u);
  EXPECT_GT(p.cps, 0u);
}

}  // namespace
}  // namespace wafl
