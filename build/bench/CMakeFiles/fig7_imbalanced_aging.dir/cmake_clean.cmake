file(REMOVE_RECURSE
  "CMakeFiles/fig7_imbalanced_aging.dir/fig7_imbalanced_aging.cpp.o"
  "CMakeFiles/fig7_imbalanced_aging.dir/fig7_imbalanced_aging.cpp.o.d"
  "fig7_imbalanced_aging"
  "fig7_imbalanced_aging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_imbalanced_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
