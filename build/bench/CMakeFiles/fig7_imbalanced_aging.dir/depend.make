# Empty dependencies file for fig7_imbalanced_aging.
# This may be replaced when dependencies are built.
