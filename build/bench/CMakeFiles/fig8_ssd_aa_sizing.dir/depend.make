# Empty dependencies file for fig8_ssd_aa_sizing.
# This may be replaced when dependencies are built.
