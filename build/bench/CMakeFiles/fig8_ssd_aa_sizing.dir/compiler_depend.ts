# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig8_ssd_aa_sizing.
