file(REMOVE_RECURSE
  "CMakeFiles/fig8_ssd_aa_sizing.dir/fig8_ssd_aa_sizing.cpp.o"
  "CMakeFiles/fig8_ssd_aa_sizing.dir/fig8_ssd_aa_sizing.cpp.o.d"
  "fig8_ssd_aa_sizing"
  "fig8_ssd_aa_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_ssd_aa_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
