# Empty compiler generated dependencies file for ablation_cleaning.
# This may be replaced when dependencies are built.
