file(REMOVE_RECURSE
  "CMakeFiles/ablation_cleaning.dir/ablation_cleaning.cpp.o"
  "CMakeFiles/ablation_cleaning.dir/ablation_cleaning.cpp.o.d"
  "ablation_cleaning"
  "ablation_cleaning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cleaning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
