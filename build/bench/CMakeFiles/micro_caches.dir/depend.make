# Empty dependencies file for micro_caches.
# This may be replaced when dependencies are built.
