file(REMOVE_RECURSE
  "CMakeFiles/micro_caches.dir/micro_caches.cpp.o"
  "CMakeFiles/micro_caches.dir/micro_caches.cpp.o.d"
  "micro_caches"
  "micro_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
