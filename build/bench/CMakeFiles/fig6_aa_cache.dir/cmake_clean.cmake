file(REMOVE_RECURSE
  "CMakeFiles/fig6_aa_cache.dir/fig6_aa_cache.cpp.o"
  "CMakeFiles/fig6_aa_cache.dir/fig6_aa_cache.cpp.o.d"
  "fig6_aa_cache"
  "fig6_aa_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aa_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
