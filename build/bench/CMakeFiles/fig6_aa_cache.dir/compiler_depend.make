# Empty compiler generated dependencies file for fig6_aa_cache.
# This may be replaced when dependencies are built.
