file(REMOVE_RECURSE
  "CMakeFiles/ablation_hbps_geometry.dir/ablation_hbps_geometry.cpp.o"
  "CMakeFiles/ablation_hbps_geometry.dir/ablation_hbps_geometry.cpp.o.d"
  "ablation_hbps_geometry"
  "ablation_hbps_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hbps_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
