
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_hbps_geometry.cpp" "bench/CMakeFiles/ablation_hbps_geometry.dir/ablation_hbps_geometry.cpp.o" "gcc" "bench/CMakeFiles/ablation_hbps_geometry.dir/ablation_hbps_geometry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wafl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wafl/CMakeFiles/wafl_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wafl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/wafl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/wafl_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wafl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/wafl_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wafl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
