# Empty dependencies file for ablation_hbps_geometry.
# This may be replaced when dependencies are built.
