file(REMOVE_RECURSE
  "CMakeFiles/fig9_smr_aa_sizing.dir/fig9_smr_aa_sizing.cpp.o"
  "CMakeFiles/fig9_smr_aa_sizing.dir/fig9_smr_aa_sizing.cpp.o.d"
  "fig9_smr_aa_sizing"
  "fig9_smr_aa_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_smr_aa_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
