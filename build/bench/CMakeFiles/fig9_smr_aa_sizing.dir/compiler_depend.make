# Empty compiler generated dependencies file for fig9_smr_aa_sizing.
# This may be replaced when dependencies are built.
