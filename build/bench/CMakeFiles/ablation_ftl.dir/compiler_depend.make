# Empty compiler generated dependencies file for ablation_ftl.
# This may be replaced when dependencies are built.
