file(REMOVE_RECURSE
  "CMakeFiles/ablation_ftl.dir/ablation_ftl.cpp.o"
  "CMakeFiles/ablation_ftl.dir/ablation_ftl.cpp.o.d"
  "ablation_ftl"
  "ablation_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
