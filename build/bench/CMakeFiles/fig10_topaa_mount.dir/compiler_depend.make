# Empty compiler generated dependencies file for fig10_topaa_mount.
# This may be replaced when dependencies are built.
