file(REMOVE_RECURSE
  "CMakeFiles/fig10_topaa_mount.dir/fig10_topaa_mount.cpp.o"
  "CMakeFiles/fig10_topaa_mount.dir/fig10_topaa_mount.cpp.o.d"
  "fig10_topaa_mount"
  "fig10_topaa_mount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_topaa_mount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
