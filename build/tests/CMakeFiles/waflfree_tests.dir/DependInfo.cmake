
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bitmap/test_activemap.cpp" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_activemap.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_activemap.cpp.o.d"
  "/root/repo/tests/bitmap/test_bitmap.cpp" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_bitmap.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_bitmap.cpp.o.d"
  "/root/repo/tests/bitmap/test_bitmap_metafile.cpp" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_bitmap_metafile.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_bitmap_metafile.cpp.o.d"
  "/root/repo/tests/bitmap/test_growth_bitmap.cpp" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_growth_bitmap.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/bitmap/test_growth_bitmap.cpp.o.d"
  "/root/repo/tests/core/test_aa_layout.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_aa_layout.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_aa_layout.cpp.o.d"
  "/root/repo/tests/core/test_aa_sizing.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_aa_sizing.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_aa_sizing.cpp.o.d"
  "/root/repo/tests/core/test_hbps.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_hbps.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_hbps.cpp.o.d"
  "/root/repo/tests/core/test_hbps_param.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_hbps_param.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_hbps_param.cpp.o.d"
  "/root/repo/tests/core/test_max_heap_cache.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_max_heap_cache.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_max_heap_cache.cpp.o.d"
  "/root/repo/tests/core/test_scoreboard.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_scoreboard.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_scoreboard.cpp.o.d"
  "/root/repo/tests/core/test_topaa.cpp" "tests/CMakeFiles/waflfree_tests.dir/core/test_topaa.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/core/test_topaa.cpp.o.d"
  "/root/repo/tests/device/test_azcs.cpp" "tests/CMakeFiles/waflfree_tests.dir/device/test_azcs.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/device/test_azcs.cpp.o.d"
  "/root/repo/tests/device/test_hdd.cpp" "tests/CMakeFiles/waflfree_tests.dir/device/test_hdd.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/device/test_hdd.cpp.o.d"
  "/root/repo/tests/device/test_object_store.cpp" "tests/CMakeFiles/waflfree_tests.dir/device/test_object_store.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/device/test_object_store.cpp.o.d"
  "/root/repo/tests/device/test_smr.cpp" "tests/CMakeFiles/waflfree_tests.dir/device/test_smr.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/device/test_smr.cpp.o.d"
  "/root/repo/tests/device/test_ssd.cpp" "tests/CMakeFiles/waflfree_tests.dir/device/test_ssd.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/device/test_ssd.cpp.o.d"
  "/root/repo/tests/device/test_ssd_block_mapped.cpp" "tests/CMakeFiles/waflfree_tests.dir/device/test_ssd_block_mapped.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/device/test_ssd_block_mapped.cpp.o.d"
  "/root/repo/tests/raid/test_geometry_param.cpp" "tests/CMakeFiles/waflfree_tests.dir/raid/test_geometry_param.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/raid/test_geometry_param.cpp.o.d"
  "/root/repo/tests/raid/test_raid_geometry.cpp" "tests/CMakeFiles/waflfree_tests.dir/raid/test_raid_geometry.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/raid/test_raid_geometry.cpp.o.d"
  "/root/repo/tests/raid/test_tetris.cpp" "tests/CMakeFiles/waflfree_tests.dir/raid/test_tetris.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/raid/test_tetris.cpp.o.d"
  "/root/repo/tests/sim/test_aging.cpp" "tests/CMakeFiles/waflfree_tests.dir/sim/test_aging.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/sim/test_aging.cpp.o.d"
  "/root/repo/tests/sim/test_cost_model.cpp" "tests/CMakeFiles/waflfree_tests.dir/sim/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/sim/test_cost_model.cpp.o.d"
  "/root/repo/tests/sim/test_latency_sim.cpp" "tests/CMakeFiles/waflfree_tests.dir/sim/test_latency_sim.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/sim/test_latency_sim.cpp.o.d"
  "/root/repo/tests/sim/test_workload.cpp" "tests/CMakeFiles/waflfree_tests.dir/sim/test_workload.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/sim/test_workload.cpp.o.d"
  "/root/repo/tests/storage/test_block_store.cpp" "tests/CMakeFiles/waflfree_tests.dir/storage/test_block_store.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/storage/test_block_store.cpp.o.d"
  "/root/repo/tests/util/test_checksum.cpp" "tests/CMakeFiles/waflfree_tests.dir/util/test_checksum.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/util/test_checksum.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/waflfree_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_stats.cpp" "tests/CMakeFiles/waflfree_tests.dir/util/test_stats.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/util/test_stats.cpp.o.d"
  "/root/repo/tests/util/test_thread_pool.cpp" "tests/CMakeFiles/waflfree_tests.dir/util/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/util/test_thread_pool.cpp.o.d"
  "/root/repo/tests/wafl/test_aggregate.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_aggregate.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_aggregate.cpp.o.d"
  "/root/repo/tests/wafl/test_allocator_param.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_allocator_param.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_allocator_param.cpp.o.d"
  "/root/repo/tests/wafl/test_consistency_point.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_consistency_point.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_consistency_point.cpp.o.d"
  "/root/repo/tests/wafl/test_delayed_free.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_delayed_free.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_delayed_free.cpp.o.d"
  "/root/repo/tests/wafl/test_flexvol.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_flexvol.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_flexvol.cpp.o.d"
  "/root/repo/tests/wafl/test_growth.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_growth.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_growth.cpp.o.d"
  "/root/repo/tests/wafl/test_iron.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_iron.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_iron.cpp.o.d"
  "/root/repo/tests/wafl/test_media_config.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_media_config.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_media_config.cpp.o.d"
  "/root/repo/tests/wafl/test_mixed_pools.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_mixed_pools.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_mixed_pools.cpp.o.d"
  "/root/repo/tests/wafl/test_mount.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_mount.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_mount.cpp.o.d"
  "/root/repo/tests/wafl/test_parallel_cp.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_parallel_cp.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_parallel_cp.cpp.o.d"
  "/root/repo/tests/wafl/test_segment_cleaner.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_segment_cleaner.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_segment_cleaner.cpp.o.d"
  "/root/repo/tests/wafl/test_snapshots.cpp" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_snapshots.cpp.o" "gcc" "tests/CMakeFiles/waflfree_tests.dir/wafl/test_snapshots.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wafl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wafl/CMakeFiles/wafl_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wafl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/wafl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/wafl_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wafl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/wafl_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wafl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
