# Empty dependencies file for waflfree_tests.
# This may be replaced when dependencies are built.
