# Empty dependencies file for failover_replay.
# This may be replaced when dependencies are built.
