file(REMOVE_RECURSE
  "CMakeFiles/failover_replay.dir/failover_replay.cpp.o"
  "CMakeFiles/failover_replay.dir/failover_replay.cpp.o.d"
  "failover_replay"
  "failover_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failover_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
