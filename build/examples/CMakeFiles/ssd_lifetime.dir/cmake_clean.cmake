file(REMOVE_RECURSE
  "CMakeFiles/ssd_lifetime.dir/ssd_lifetime.cpp.o"
  "CMakeFiles/ssd_lifetime.dir/ssd_lifetime.cpp.o.d"
  "ssd_lifetime"
  "ssd_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
