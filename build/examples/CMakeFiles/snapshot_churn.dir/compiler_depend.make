# Empty compiler generated dependencies file for snapshot_churn.
# This may be replaced when dependencies are built.
