file(REMOVE_RECURSE
  "libwafl_storage.a"
)
