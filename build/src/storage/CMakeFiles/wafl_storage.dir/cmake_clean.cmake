file(REMOVE_RECURSE
  "CMakeFiles/wafl_storage.dir/block_store.cpp.o"
  "CMakeFiles/wafl_storage.dir/block_store.cpp.o.d"
  "libwafl_storage.a"
  "libwafl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
