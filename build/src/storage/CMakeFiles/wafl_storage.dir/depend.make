# Empty dependencies file for wafl_storage.
# This may be replaced when dependencies are built.
