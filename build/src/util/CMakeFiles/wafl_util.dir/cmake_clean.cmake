file(REMOVE_RECURSE
  "CMakeFiles/wafl_util.dir/checksum.cpp.o"
  "CMakeFiles/wafl_util.dir/checksum.cpp.o.d"
  "CMakeFiles/wafl_util.dir/thread_pool.cpp.o"
  "CMakeFiles/wafl_util.dir/thread_pool.cpp.o.d"
  "libwafl_util.a"
  "libwafl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
