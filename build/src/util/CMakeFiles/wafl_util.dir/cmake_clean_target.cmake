file(REMOVE_RECURSE
  "libwafl_util.a"
)
