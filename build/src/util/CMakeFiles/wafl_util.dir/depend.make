# Empty dependencies file for wafl_util.
# This may be replaced when dependencies are built.
