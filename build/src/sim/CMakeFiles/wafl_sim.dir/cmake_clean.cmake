file(REMOVE_RECURSE
  "CMakeFiles/wafl_sim.dir/aging.cpp.o"
  "CMakeFiles/wafl_sim.dir/aging.cpp.o.d"
  "CMakeFiles/wafl_sim.dir/latency_sim.cpp.o"
  "CMakeFiles/wafl_sim.dir/latency_sim.cpp.o.d"
  "CMakeFiles/wafl_sim.dir/workload.cpp.o"
  "CMakeFiles/wafl_sim.dir/workload.cpp.o.d"
  "libwafl_sim.a"
  "libwafl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
