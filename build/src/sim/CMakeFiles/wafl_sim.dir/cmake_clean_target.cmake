file(REMOVE_RECURSE
  "libwafl_sim.a"
)
