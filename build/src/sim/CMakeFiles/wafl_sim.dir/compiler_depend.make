# Empty compiler generated dependencies file for wafl_sim.
# This may be replaced when dependencies are built.
