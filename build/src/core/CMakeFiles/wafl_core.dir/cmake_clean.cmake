file(REMOVE_RECURSE
  "CMakeFiles/wafl_core.dir/aa_sizing.cpp.o"
  "CMakeFiles/wafl_core.dir/aa_sizing.cpp.o.d"
  "CMakeFiles/wafl_core.dir/hbps.cpp.o"
  "CMakeFiles/wafl_core.dir/hbps.cpp.o.d"
  "CMakeFiles/wafl_core.dir/max_heap_cache.cpp.o"
  "CMakeFiles/wafl_core.dir/max_heap_cache.cpp.o.d"
  "CMakeFiles/wafl_core.dir/scoreboard.cpp.o"
  "CMakeFiles/wafl_core.dir/scoreboard.cpp.o.d"
  "CMakeFiles/wafl_core.dir/topaa.cpp.o"
  "CMakeFiles/wafl_core.dir/topaa.cpp.o.d"
  "libwafl_core.a"
  "libwafl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
