# Empty compiler generated dependencies file for wafl_core.
# This may be replaced when dependencies are built.
