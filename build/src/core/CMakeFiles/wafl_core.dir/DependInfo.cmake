
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aa_sizing.cpp" "src/core/CMakeFiles/wafl_core.dir/aa_sizing.cpp.o" "gcc" "src/core/CMakeFiles/wafl_core.dir/aa_sizing.cpp.o.d"
  "/root/repo/src/core/hbps.cpp" "src/core/CMakeFiles/wafl_core.dir/hbps.cpp.o" "gcc" "src/core/CMakeFiles/wafl_core.dir/hbps.cpp.o.d"
  "/root/repo/src/core/max_heap_cache.cpp" "src/core/CMakeFiles/wafl_core.dir/max_heap_cache.cpp.o" "gcc" "src/core/CMakeFiles/wafl_core.dir/max_heap_cache.cpp.o.d"
  "/root/repo/src/core/scoreboard.cpp" "src/core/CMakeFiles/wafl_core.dir/scoreboard.cpp.o" "gcc" "src/core/CMakeFiles/wafl_core.dir/scoreboard.cpp.o.d"
  "/root/repo/src/core/topaa.cpp" "src/core/CMakeFiles/wafl_core.dir/topaa.cpp.o" "gcc" "src/core/CMakeFiles/wafl_core.dir/topaa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wafl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wafl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/wafl_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/wafl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/wafl_raid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
