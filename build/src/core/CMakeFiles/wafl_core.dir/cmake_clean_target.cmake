file(REMOVE_RECURSE
  "libwafl_core.a"
)
