
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wafl/aggregate.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/aggregate.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/aggregate.cpp.o.d"
  "/root/repo/src/wafl/consistency_point.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/consistency_point.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/consistency_point.cpp.o.d"
  "/root/repo/src/wafl/delayed_free.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/delayed_free.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/delayed_free.cpp.o.d"
  "/root/repo/src/wafl/flexvol.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/flexvol.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/flexvol.cpp.o.d"
  "/root/repo/src/wafl/iron.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/iron.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/iron.cpp.o.d"
  "/root/repo/src/wafl/media_config.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/media_config.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/media_config.cpp.o.d"
  "/root/repo/src/wafl/mount.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/mount.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/mount.cpp.o.d"
  "/root/repo/src/wafl/segment_cleaner.cpp" "src/wafl/CMakeFiles/wafl_fs.dir/segment_cleaner.cpp.o" "gcc" "src/wafl/CMakeFiles/wafl_fs.dir/segment_cleaner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wafl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wafl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/wafl_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/wafl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/wafl_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/wafl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
