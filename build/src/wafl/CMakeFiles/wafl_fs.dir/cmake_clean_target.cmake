file(REMOVE_RECURSE
  "libwafl_fs.a"
)
