file(REMOVE_RECURSE
  "CMakeFiles/wafl_fs.dir/aggregate.cpp.o"
  "CMakeFiles/wafl_fs.dir/aggregate.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/consistency_point.cpp.o"
  "CMakeFiles/wafl_fs.dir/consistency_point.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/delayed_free.cpp.o"
  "CMakeFiles/wafl_fs.dir/delayed_free.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/flexvol.cpp.o"
  "CMakeFiles/wafl_fs.dir/flexvol.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/iron.cpp.o"
  "CMakeFiles/wafl_fs.dir/iron.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/media_config.cpp.o"
  "CMakeFiles/wafl_fs.dir/media_config.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/mount.cpp.o"
  "CMakeFiles/wafl_fs.dir/mount.cpp.o.d"
  "CMakeFiles/wafl_fs.dir/segment_cleaner.cpp.o"
  "CMakeFiles/wafl_fs.dir/segment_cleaner.cpp.o.d"
  "libwafl_fs.a"
  "libwafl_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
