# Empty compiler generated dependencies file for wafl_fs.
# This may be replaced when dependencies are built.
