file(REMOVE_RECURSE
  "libwafl_raid.a"
)
