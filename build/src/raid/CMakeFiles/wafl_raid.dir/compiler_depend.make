# Empty compiler generated dependencies file for wafl_raid.
# This may be replaced when dependencies are built.
