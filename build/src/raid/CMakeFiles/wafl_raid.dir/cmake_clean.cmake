file(REMOVE_RECURSE
  "CMakeFiles/wafl_raid.dir/raid_group.cpp.o"
  "CMakeFiles/wafl_raid.dir/raid_group.cpp.o.d"
  "libwafl_raid.a"
  "libwafl_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
