file(REMOVE_RECURSE
  "CMakeFiles/wafl_bitmap.dir/bitmap.cpp.o"
  "CMakeFiles/wafl_bitmap.dir/bitmap.cpp.o.d"
  "CMakeFiles/wafl_bitmap.dir/bitmap_metafile.cpp.o"
  "CMakeFiles/wafl_bitmap.dir/bitmap_metafile.cpp.o.d"
  "libwafl_bitmap.a"
  "libwafl_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
