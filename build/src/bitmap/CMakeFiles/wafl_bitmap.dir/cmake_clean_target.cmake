file(REMOVE_RECURSE
  "libwafl_bitmap.a"
)
