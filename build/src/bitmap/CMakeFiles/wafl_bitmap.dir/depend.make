# Empty dependencies file for wafl_bitmap.
# This may be replaced when dependencies are built.
