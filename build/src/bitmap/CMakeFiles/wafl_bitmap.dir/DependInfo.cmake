
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitmap/bitmap.cpp" "src/bitmap/CMakeFiles/wafl_bitmap.dir/bitmap.cpp.o" "gcc" "src/bitmap/CMakeFiles/wafl_bitmap.dir/bitmap.cpp.o.d"
  "/root/repo/src/bitmap/bitmap_metafile.cpp" "src/bitmap/CMakeFiles/wafl_bitmap.dir/bitmap_metafile.cpp.o" "gcc" "src/bitmap/CMakeFiles/wafl_bitmap.dir/bitmap_metafile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wafl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wafl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
