
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/azcs.cpp" "src/device/CMakeFiles/wafl_device.dir/azcs.cpp.o" "gcc" "src/device/CMakeFiles/wafl_device.dir/azcs.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/device/CMakeFiles/wafl_device.dir/device.cpp.o" "gcc" "src/device/CMakeFiles/wafl_device.dir/device.cpp.o.d"
  "/root/repo/src/device/hdd.cpp" "src/device/CMakeFiles/wafl_device.dir/hdd.cpp.o" "gcc" "src/device/CMakeFiles/wafl_device.dir/hdd.cpp.o.d"
  "/root/repo/src/device/smr.cpp" "src/device/CMakeFiles/wafl_device.dir/smr.cpp.o" "gcc" "src/device/CMakeFiles/wafl_device.dir/smr.cpp.o.d"
  "/root/repo/src/device/ssd.cpp" "src/device/CMakeFiles/wafl_device.dir/ssd.cpp.o" "gcc" "src/device/CMakeFiles/wafl_device.dir/ssd.cpp.o.d"
  "/root/repo/src/device/ssd_block_mapped.cpp" "src/device/CMakeFiles/wafl_device.dir/ssd_block_mapped.cpp.o" "gcc" "src/device/CMakeFiles/wafl_device.dir/ssd_block_mapped.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wafl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/raid/CMakeFiles/wafl_raid.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/wafl_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/wafl_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
