file(REMOVE_RECURSE
  "CMakeFiles/wafl_device.dir/azcs.cpp.o"
  "CMakeFiles/wafl_device.dir/azcs.cpp.o.d"
  "CMakeFiles/wafl_device.dir/device.cpp.o"
  "CMakeFiles/wafl_device.dir/device.cpp.o.d"
  "CMakeFiles/wafl_device.dir/hdd.cpp.o"
  "CMakeFiles/wafl_device.dir/hdd.cpp.o.d"
  "CMakeFiles/wafl_device.dir/smr.cpp.o"
  "CMakeFiles/wafl_device.dir/smr.cpp.o.d"
  "CMakeFiles/wafl_device.dir/ssd.cpp.o"
  "CMakeFiles/wafl_device.dir/ssd.cpp.o.d"
  "CMakeFiles/wafl_device.dir/ssd_block_mapped.cpp.o"
  "CMakeFiles/wafl_device.dir/ssd_block_mapped.cpp.o.d"
  "libwafl_device.a"
  "libwafl_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafl_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
