file(REMOVE_RECURSE
  "libwafl_device.a"
)
