# Empty dependencies file for wafl_device.
# This may be replaced when dependencies are built.
