#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace wafl::obs {

// --- Counter ----------------------------------------------------------------

std::size_t Counter::shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

// --- LogHistogram -----------------------------------------------------------

void LogHistogram::add_d(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void LogHistogram::min_d(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void LogHistogram::max_d(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint32_t LogHistogram::bucket_of(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // [0, 1) plus NaN / negatives
  int exp = 0;
  const double frac2 = std::frexp(v, &exp);  // v = frac2 * 2^exp, frac2 in [0.5,1)
  const auto octave = static_cast<std::uint32_t>(exp - 1);  // floor(log2 v)
  if (octave >= kOctaves) return kBuckets - 1;
  // frac2*2 is in [1, 2): linear position within the octave.
  const auto sub = std::min<std::uint32_t>(
      kSubBuckets - 1,
      static_cast<std::uint32_t>((frac2 * 2.0 - 1.0) *
                                 static_cast<double>(kSubBuckets)));
  return octave * kSubBuckets + sub;
}

double LogHistogram::bucket_lo(std::uint32_t i) noexcept {
  if (i == 0) return 0.0;
  const std::uint32_t octave = i / kSubBuckets;
  const std::uint32_t sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) /
                              static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

double LogHistogram::bucket_hi(std::uint32_t i) noexcept {
  const std::uint32_t octave = i / kSubBuckets;
  const std::uint32_t sub = i % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) /
                              static_cast<double>(kSubBuckets),
                    static_cast<int>(octave));
}

void LogHistogram::record(double v) noexcept {
  if (!(v >= 0.0)) v = 0.0;
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_d(sum_, v);
  min_d(min_, v);
  max_d(max_, v);
}

double LogHistogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target sample, 1-based, matching "p% of samples are <= x".
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::uint64_t rank = std::max<std::uint64_t>(1, target);
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (cum + c >= rank) {
      const double lo = bucket_lo(i);
      const double hi = bucket_hi(i);
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(c);
      const double v = lo + (hi - lo) * frac;
      return std::clamp(v, min(), max());
    }
    cum += c;
  }
  return max();
}

void LogHistogram::merge(const LogHistogram& o) noexcept {
  const std::uint64_t on = o.count();
  if (on == 0) return;
  for (std::uint32_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = o.bucket_count(i);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(on, std::memory_order_relaxed);
  add_d(sum_, o.sum());
  min_d(min_, o.min());
  max_d(max_, o.max());
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// --- LinearHistogram --------------------------------------------------------

LinearHistogram::LinearHistogram(double lo, double hi, std::uint32_t bins)
    : lo_(lo), hi_(hi), buckets_(bins) {
  WAFL_ASSERT(hi > lo && bins > 0);
}

void LinearHistogram::record(double v) noexcept {
  const double t = (v - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::int64_t>(t * static_cast<double>(buckets_.size()));
  bin = std::clamp<std::int64_t>(
      bin, 0, static_cast<std::int64_t>(buckets_.size()) - 1);
  buckets_[static_cast<std::size_t>(bin)].fetch_add(1,
                                                    std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

double LinearHistogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double LinearHistogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  const std::uint64_t rank = std::max<std::uint64_t>(1, target);
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < bins(); ++i) {
    const std::uint64_t c = bucket_count(i);
    if (c == 0) continue;
    if (cum + c >= rank) {
      const double frac =
          static_cast<double>(rank - cum) / static_cast<double>(c);
      return bucket_lo(i) + (bucket_hi(i) - bucket_lo(i)) * frac;
    }
    cum += c;
  }
  return hi_;
}

void LinearHistogram::merge(const LinearHistogram& o) noexcept {
  WAFL_ASSERT(o.lo_ == lo_ && o.hi_ == hi_ && o.bins() == bins());
  for (std::uint32_t i = 0; i < bins(); ++i) {
    const std::uint64_t c = o.bucket_count(i);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(o.count(), std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  const double add = o.sum();
  while (!sum_.compare_exchange_weak(cur, cur + add,
                                     std::memory_order_relaxed)) {
  }
}

void LinearHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Registry::Metric& Registry::get_or_create(std::string_view name,
                                          std::string_view labels, Kind kind,
                                          double lo, double hi,
                                          std::uint32_t bins) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      metrics_.try_emplace(Key{std::string(name), std::string(labels)});
  Metric& m = it->second;
  if (inserted) {
    m.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        m.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        m.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kLogHistogram:
        m.log_hist = std::make_unique<LogHistogram>();
        break;
      case Kind::kLinearHistogram:
        m.linear_hist = std::make_unique<LinearHistogram>(lo, hi, bins);
        break;
    }
  }
  WAFL_ASSERT_MSG(m.kind == kind, "metric re-registered with another kind");
  return m;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  return *get_or_create(name, labels, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  return *get_or_create(name, labels, Kind::kGauge).gauge;
}

LogHistogram& Registry::histogram(std::string_view name,
                                  std::string_view labels) {
  return *get_or_create(name, labels, Kind::kLogHistogram).log_hist;
}

LinearHistogram& Registry::linear_histogram(std::string_view name, double lo,
                                            double hi, std::uint32_t bins,
                                            std::string_view labels) {
  return *get_or_create(name, labels, Kind::kLinearHistogram, lo, hi, bins)
              .linear_hist;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, m] : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        m.counter->reset();
        break;
      case Kind::kGauge:
        m.gauge->reset();
        break;
      case Kind::kLogHistogram:
        m.log_hist->reset();
        break;
      case Kind::kLinearHistogram:
        m.linear_hist->reset();
        break;
    }
  }
}

std::vector<Registry::Entry> Registry::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& [key, m] : metrics_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.kind = m.kind;
    e.counter = m.counter.get();
    e.gauge = m.gauge.get();
    e.log_hist = m.log_hist.get();
    e.linear_hist = m.linear_hist.get();
    out.push_back(std::move(e));
  }
  return out;  // std::map iterates sorted by (name, labels)
}

}  // namespace wafl::obs
