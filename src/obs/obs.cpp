#include "obs/obs.hpp"

namespace wafl::obs {

Registry& registry() {
  static Registry r;
  return r;
}

TraceRing& trace() {
  static TraceRing t;
  return t;
}

void reset_all() {
  registry().reset();
  trace().clear();
  spans().clear();
  flight_recorder().clear();
}

}  // namespace wafl::obs
