// RAII timing hooks feeding obs histograms.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace wafl::obs {

/// Monotonic wall time in nanoseconds (steady_clock).
inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Records the scope's wall duration (ns) into a LogHistogram on
/// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LogHistogram& h) noexcept
      : hist_(h), start_ns_(monotonic_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    hist_.record(static_cast<double>(monotonic_ns() - start_ns_));
  }

 private:
  LogHistogram& hist_;
  std::uint64_t start_ns_;
};

/// Multi-phase stopwatch: lap() returns the ns since the previous lap (or
/// construction) and restarts the interval — one timer spans a whole CP
/// with a lap per phase.
class PhaseTimer {
 public:
  PhaseTimer() noexcept : last_ns_(monotonic_ns()) {}

  std::uint64_t lap() noexcept {
    const std::uint64_t now = monotonic_ns();
    const std::uint64_t d = now - last_ns_;
    last_ns_ = now;
    return d;
  }

 private:
  std::uint64_t last_ns_;
};

}  // namespace wafl::obs
