// wafl::obs metrics — counters, gauges, and histograms with cheap
// concurrent accumulation and a merge() path mirroring RunningStat::merge.
//
// Design constraints, in priority order:
//   1. Hot-path cost: an increment must be a relaxed atomic add on a slot
//      other threads are unlikely to share.  Counters stripe across
//      cache-line-padded shards keyed by thread; histograms use relaxed
//      per-bucket adds (distinct latencies land on distinct lines).
//   2. Bounded memory, const queries: LogHistogram answers percentile()
//      from O(bins) bucket counts without storing samples — unlike
//      util/stats.hpp's LatencyRecorder, which keeps every sample and
//      sorts on (mutating) query.
//   3. Thread-local accumulate-then-merge: workers that want zero shared
//      traffic own a local histogram and merge() it in afterwards, the
//      same pattern CpStats uses for parallel CP volume slices.
//
// All metric objects are immovable once registered; the Registry hands out
// stable references so call sites can cache them.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/assert.hpp"

namespace wafl::obs {

/// Monotonic counter, striped over cache-line-padded shards so concurrent
/// writers from different threads rarely contend on one line.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t d) noexcept {
    shards_[shard_index()].v.fetch_add(d, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Merged total across all shards.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Folds another counter's total into this one.
  void merge(const Counter& o) noexcept { add(o.value()); }

  void reset() noexcept {
    for (Shard& s : shards_) {
      s.v.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  static constexpr std::size_t kShards = 8;

  /// Threads are assigned shards round-robin on first use; the assignment
  /// is thread-local, so steady-state adds touch one private-ish line.
  static std::size_t shard_index() noexcept;

  std::array<Shard, kShards> shards_{};
};

/// Last-value gauge (signed: depths and deltas go down as well as up).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram for latency-like values (non-negative, huge
/// dynamic range).  Buckets are log-linear: each power-of-two octave is
/// split into kSubBuckets linear sub-buckets, bounding the relative error
/// of percentile() by 1/(2*kSubBuckets) ≈ 6%.  Queries are const and cost
/// O(bins); memory is O(bins) regardless of sample count.
class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBuckets = 8;
  static constexpr std::uint32_t kOctaves = 64;
  static constexpr std::uint32_t kBuckets = kSubBuckets * kOctaves;

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = delete;
  LogHistogram& operator=(const LogHistogram&) = delete;

  /// Records one sample.  Negative and NaN values clamp to 0.
  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return load_d(sum_); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double min() const noexcept { return count() == 0 ? 0.0 : load_d(min_); }
  double max() const noexcept { return count() == 0 ? 0.0 : load_d(max_); }

  /// p in [0, 100].  Const: walks the bucket counts and interpolates
  /// linearly inside the bucket holding the rank.
  double percentile(double p) const noexcept;

  /// Folds another histogram into this one (parallel accumulate-then-merge,
  /// mirroring RunningStat::merge).
  void merge(const LogHistogram& o) noexcept;

  void reset() noexcept;

  std::uint64_t bucket_count(std::uint32_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive lower / exclusive upper value bound of bucket i.
  static double bucket_lo(std::uint32_t i) noexcept;
  static double bucket_hi(std::uint32_t i) noexcept;
  static std::uint32_t bucket_of(double v) noexcept;

 private:
  static double load_d(const std::atomic<double>& a) noexcept {
    return a.load(std::memory_order_relaxed);
  }
  static void add_d(std::atomic<double>& a, double d) noexcept;
  static void min_d(std::atomic<double>& a, double v) noexcept;
  static void max_d(std::atomic<double>& a, double v) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Extrema use +/-inf sentinels so concurrent first samples race safely.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Fixed-bin linear histogram over [lo, hi) — for bounded-domain values
/// like free fractions, where log buckets would be uselessly coarse.
/// Out-of-range samples clamp to the edge bins (like util Histogram), but
/// accumulation is concurrent and queries are const.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::uint32_t bins);
  LinearHistogram(const LinearHistogram&) = delete;
  LinearHistogram& operator=(const LinearHistogram&) = delete;

  void record(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double percentile(double p) const noexcept;

  /// Folds another histogram with identical geometry into this one.
  void merge(const LinearHistogram& o) noexcept;

  void reset() noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::uint32_t bins() const noexcept {
    return static_cast<std::uint32_t>(buckets_.size());
  }
  std::uint64_t bucket_count(std::uint32_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double bucket_lo(std::uint32_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(buckets_.size());
  }
  double bucket_hi(std::uint32_t i) const noexcept {
    return bucket_lo(i + 1);
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Hierarchical metric registry.  Names are dotted paths
/// ("wafl.cp.blocks_written"); an optional label string ('rg="0",dev="1"')
/// distinguishes instances of one metric family.  get-or-create is
/// mutex-guarded; the returned references stay valid for the registry's
/// lifetime, so hot paths resolve once and cache the handle.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  LogHistogram& histogram(std::string_view name, std::string_view labels = {});
  LinearHistogram& linear_histogram(std::string_view name, double lo,
                                    double hi, std::uint32_t bins,
                                    std::string_view labels = {});

  /// Zeroes every registered metric in place (registrations and handed-out
  /// references survive) — bench/test isolation.
  void reset();

  enum class Kind { kCounter, kGauge, kLogHistogram, kLinearHistogram };

  /// One registered metric, for exporters.  Exactly one pointer is set.
  struct Entry {
    std::string name;
    std::string labels;
    Kind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LogHistogram* log_hist = nullptr;
    const LinearHistogram* linear_hist = nullptr;
  };

  /// Snapshot of all registrations, sorted by (name, labels).
  std::vector<Entry> entries() const;

 private:
  struct Metric {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> log_hist;
    std::unique_ptr<LinearHistogram> linear_hist;
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  Metric& get_or_create(std::string_view name, std::string_view labels,
                        Kind kind, double lo = 0.0, double hi = 0.0,
                        std::uint32_t bins = 0);

  mutable std::mutex mu_;
  std::map<Key, Metric> metrics_;
};

}  // namespace wafl::obs
