// wafl::obs — umbrella header: compile-time gate, global registry/trace
// singletons, and the WAFL_OBS() instrumentation macro.
//
// Gating strategy: the obs *library* is always compiled (its unit tests
// run in both configurations), but instrumentation call sites wrap
// themselves in WAFL_OBS(...), which expands to `if constexpr (kEnabled)`.
// Both branches always typecheck — so the OFF configuration cannot rot —
// yet with WAFL_OBS_ENABLED=0 the instrumentation is dead code the
// compiler deletes outright.
#pragma once

#include "obs/export.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

#ifndef WAFL_OBS_ENABLED
#define WAFL_OBS_ENABLED 1
#endif

namespace wafl::obs {

inline constexpr bool kEnabled = WAFL_OBS_ENABLED != 0;

/// Process-global metrics registry.  Handles from it are stable; hot
/// paths resolve their metrics once and cache the references.
Registry& registry();

/// Process-global event trace ring.
TraceRing& trace();

/// Zeroes the global registry and clears the trace, the span buffers and
/// the flight recorder — test/bench isolation.  (The span collector and
/// flight recorder singletons live in span.hpp / flight_recorder.hpp:
/// obs::spans(), obs::flight_recorder().)
void reset_all();

}  // namespace wafl::obs

/// Instrumentation gate: statements inside compile in every configuration
/// but only execute (and survive dead-code elimination) when obs is on.
///   WAFL_OBS(obs::registry().counter("wafl.cp.ops").add(n));
#define WAFL_OBS(...)                        \
  do {                                       \
    if constexpr (::wafl::obs::kEnabled) {   \
      __VA_ARGS__;                           \
    }                                        \
  } while (0)
