#include "obs/span.hpp"

#include <algorithm>

#include "obs/scoped_timer.hpp"
#include "util/task_context.hpp"

namespace wafl::obs {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::atomic<bool> g_span_capture{false};

}  // namespace

std::string_view span_kind_name(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kCp: return "cp";
    case SpanKind::kCpSort: return "cp.sort";
    case SpanKind::kCpAlloc: return "cp.alloc";
    case SpanKind::kCpVolumes: return "cp.volumes";
    case SpanKind::kCpVolSlice: return "cp.vol_slice";
    case SpanKind::kCpDelayedFree: return "cp.delayed_free";
    case SpanKind::kCpVolFinish: return "cp.vol_finish";
    case SpanKind::kCpAggFinish: return "cp.agg_finish";
    case SpanKind::kCpFreeze: return "cp.freeze";
    case SpanKind::kCpDrain: return "cp.drain";
    case SpanKind::kCpIntake: return "cp.intake";
    case SpanKind::kCpStall: return "cp.stall";
    case SpanKind::kCpLeaseDrain: return "cp.lease_drain";
    case SpanKind::kWaPlan: return "wa.plan";
    case SpanKind::kWaExecute: return "wa.execute";
    case SpanKind::kWaRgExecute: return "wa.rg_execute";
    case SpanKind::kWaMerge: return "wa.merge";
    case SpanKind::kRgFill: return "rg.fill";
    case SpanKind::kRgTetrisFlush: return "rg.tetris_flush";
    case SpanKind::kFcWindows: return "fc.windows";
    case SpanKind::kFcOwner: return "fc.owner";
    case SpanKind::kFcPartition: return "fc.partition";
    case SpanKind::kFcBoundary: return "fc.boundary";
    case SpanKind::kFcRgBoundary: return "fc.rg_boundary";
    case SpanKind::kFcMerge: return "fc.merge";
    case SpanKind::kFcFlush: return "fc.flush";
    case SpanKind::kFcFlushBlock: return "fc.flush_block";
    case SpanKind::kFcTopaa: return "fc.topaa";
    case SpanKind::kFcRgTopaa: return "fc.rg_topaa";
    case SpanKind::kFcFold: return "fc.fold";
    case SpanKind::kMount: return "mount";
    case SpanKind::kMountVolSeed: return "mount.vol_seed";
    case SpanKind::kMountScan: return "mount.scan";
    case SpanKind::kRecoverLoad: return "recover.load";
    case SpanKind::kIronCheck: return "iron.check";
    case SpanKind::kCleanerPass: return "cleaner.pass";
    case SpanKind::kCleanerCleanOne: return "cleaner.clean_one";
  }
  return "unknown";
}

SpanBuffer::SpanBuffer(std::uint32_t tid, std::size_t capacity)
    : tid_(tid),
      mask_(round_up_pow2(std::max<std::size_t>(2, capacity)) - 1),
      slots_(mask_ + 1) {}

void SpanBuffer::push(const SpanRecord& r) noexcept {
  const std::uint64_t ticket =
      pushed_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& s = slots_[static_cast<std::size_t>(ticket - 1) & mask_];
  // Seqlock write protocol, expressed without thread fences (gcc's
  // -fsanitize=thread cannot instrument atomic_thread_fence): invalidate
  // the ticket, fill the fields with release stores, publish with a
  // release ticket store.  A reader that observes any of this writer's
  // field values acquire-synchronizes with that store, which makes the
  // preceding ticket invalidation visible to its re-check — so a torn
  // read always fails validation.
  s.ticket.store(0, std::memory_order_relaxed);
  s.id.store(r.id, std::memory_order_release);
  s.parent.store(r.parent, std::memory_order_release);
  s.t0.store(r.t0_ns, std::memory_order_release);
  s.t1.store(r.t1_ns, std::memory_order_release);
  s.a.store(r.a, std::memory_order_release);
  s.b.store(r.b, std::memory_order_release);
  s.kind.store(static_cast<std::uint32_t>(r.kind), std::memory_order_release);
  s.ticket.store(ticket, std::memory_order_release);
}

void SpanBuffer::collect(std::vector<SpanRecord>& out) const {
  for (const Slot& s : slots_) {
    const std::uint64_t before = s.ticket.load(std::memory_order_acquire);
    if (before == 0) continue;
    SpanRecord r;
    // Acquire field loads: seeing a newer writer's value imports that
    // writer's ticket invalidation, so the `after` re-check (which the
    // acquire loads also pin in place) catches the tear.
    r.id = s.id.load(std::memory_order_acquire);
    r.parent = s.parent.load(std::memory_order_acquire);
    r.t0_ns = s.t0.load(std::memory_order_acquire);
    r.t1_ns = s.t1.load(std::memory_order_acquire);
    r.a = s.a.load(std::memory_order_acquire);
    r.b = s.b.load(std::memory_order_acquire);
    r.kind = static_cast<SpanKind>(s.kind.load(std::memory_order_acquire));
    r.tid = tid_;
    const std::uint64_t after = s.ticket.load(std::memory_order_relaxed);
    if (after != before) continue;  // overwritten mid-read; skip
    out.push_back(r);
  }
}

void SpanBuffer::clear() noexcept {
  for (Slot& s : slots_) {
    s.ticket.store(0, std::memory_order_release);
  }
  pushed_.store(0, std::memory_order_release);
}

SpanBuffer& SpanCollector::local() {
  thread_local struct Tls {
    SpanCollector* owner = nullptr;
    std::shared_ptr<SpanBuffer> buf;
  } tls;
  if (tls.owner != this) {
    std::lock_guard lk(mu_);
    auto buf =
        std::make_shared<SpanBuffer>(static_cast<std::uint32_t>(buffers_.size()));
    buffers_.push_back(buf);
    tls.owner = this;
    tls.buf = std::move(buf);
  }
  return *tls.buf;
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  std::vector<std::shared_ptr<SpanBuffer>> bufs;
  {
    std::lock_guard lk(mu_);
    bufs = buffers_;
  }
  std::vector<SpanRecord> out;
  for (const auto& b : bufs) {
    b->collect(out);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& x, const SpanRecord& y) {
              return x.t0_ns != y.t0_ns ? x.t0_ns < y.t0_ns : x.id < y.id;
            });
  return out;
}

std::uint64_t SpanCollector::dropped() const {
  std::lock_guard lk(mu_);
  std::uint64_t d = 0;
  for (const auto& b : buffers_) {
    const std::uint64_t pushed = b->pushed();
    if (pushed > b->capacity()) d += pushed - b->capacity();
  }
  return d;
}

std::size_t SpanCollector::buffer_count() const {
  std::lock_guard lk(mu_);
  return buffers_.size();
}

void SpanCollector::clear() {
  std::lock_guard lk(mu_);
  for (const auto& b : buffers_) {
    b->clear();
  }
}

SpanCollector& spans() {
  static SpanCollector c;
  return c;
}

bool span_capture_enabled() noexcept {
  return g_span_capture.load(std::memory_order_relaxed);
}

void set_span_capture(bool on) noexcept {
  g_span_capture.store(on, std::memory_order_relaxed);
}

void TraceSpan::open(SpanKind kind, std::uint64_t a, std::uint64_t b) noexcept {
  kind_ = kind;
  a_ = a;
  b_ = b;
  parent_ = current_task_context();
  id_ = spans().next_id();
  set_task_context(id_);
  active_ = true;
  t0_ = monotonic_ns();  // last, so setup cost stays outside the interval
}

void TraceSpan::end() noexcept {
  if (!active_) return;
  SpanRecord r;
  r.id = id_;
  r.parent = parent_;
  r.t0_ns = t0_;
  r.t1_ns = monotonic_ns();
  r.a = a_;
  r.b = b_;
  r.kind = kind_;
  spans().local().push(r);
  set_task_context(parent_);
  active_ = false;
}

}  // namespace wafl::obs
