// Black-box flight recorder: a bounded ring of annotated moments plus a
// counter baseline, rendered as a readable post-mortem dump.
//
// The crash harness mark()s it before the crash CP; crash hooks and the
// fault engine note() the exact trigger as it fires; on any invariant
// failure the harness dump()s — recent spans since the mark, the notes,
// and every counter that moved — so a WAFL_CRASH_SEED repro line ships
// with a timeline instead of a bare seed.  All state is process-global
// (like registry()/spans()) and cheap enough to leave armed everywhere;
// note() is off the hot path by construction (it fires on crashes, not
// per block).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wafl::obs {

class FlightRecorder;
class Registry;

/// Process-global recorder.
FlightRecorder& flight_recorder();

class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Points mark()/dump() counter snapshots at `reg` instead of the
  /// process-global registry (per-aggregate runtimes — wafl::RuntimeBundle
  /// binds its recorder to its own registry).  Null reverts to the global.
  /// Set before concurrent use; the binding itself is not synchronized.
  void bind_registry(Registry* reg) noexcept { reg_ = reg; }

  /// Starts (or restarts) an observation window: snapshots every counter
  /// in the global registry and timestamps the mark.  dump() reports
  /// deltas and spans relative to the latest mark.
  void mark();

  /// Records an annotated moment ("crash", "wa.before_bitmap_flush", 3).
  /// Bounded ring; the oldest note is dropped past capacity.
  void note(std::string_view tag, std::string_view what,
            std::uint64_t detail = 0);

  /// Human-readable post-mortem: notes since the mark, the most recent
  /// spans (≤ max_spans, only those overlapping the window), and counter
  /// deltas vs the mark()ed baseline.  Empty sections are elided.
  std::string dump(std::size_t max_spans = 48) const;

  /// Drops notes and the baseline (test isolation).
  void clear();

 private:
  /// The bound registry, or the process-global one.
  Registry& source() const;

  struct Note {
    std::uint64_t t_ns;
    std::string tag;
    std::string what;
    std::uint64_t detail;
  };

  Registry* reg_ = nullptr;
  mutable std::mutex mu_;
  std::vector<Note> notes_;
  std::vector<std::pair<std::string, std::uint64_t>> baseline_;  // name{labels}
  std::uint64_t mark_ns_ = 0;

  static constexpr std::size_t kMaxNotes = 64;
};

}  // namespace wafl::obs
