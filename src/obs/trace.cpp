#include "obs/trace.hpp"

#include "obs/scoped_timer.hpp"
#include "util/assert.hpp"

namespace wafl::obs {

std::string_view event_type_name(EventType t) noexcept {
  switch (t) {
    case EventType::kCpBegin:
      return "cp_begin";
    case EventType::kCpEnd:
      return "cp_end";
    case EventType::kAaCheckout:
      return "aa_checkout";
    case EventType::kAaPutback:
      return "aa_putback";
    case EventType::kHbpsReplenish:
      return "hbps_replenish";
    case EventType::kHbpsRebin:
      return "hbps_rebin";
    case EventType::kHeapRebalance:
      return "heap_rebalance";
    case EventType::kTetris:
      return "tetris";
    case EventType::kDeviceIo:
      return "device_io";
    case EventType::kSsdGc:
      return "ssd_gc";
    case EventType::kCleanerPass:
      return "cleaner_pass";
    case EventType::kTopAaMount:
      return "topaa_mount";
  }
  return "unknown";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : ring_(round_up_pow2(capacity == 0 ? 1 : capacity)) {}

void TraceRing::emit(EventType type, std::uint32_t a, std::uint64_t b,
                     std::uint64_t c, std::uint64_t d) {
  const std::uint64_t now = monotonic_ns();
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent& e = ring_[next_seq_ & (ring_.size() - 1)];
  e.seq = next_seq_++;
  e.t_ns = now;
  e.type = type;
  e.a = a;
  e.b = b;
  e.c = c;
  e.d = d;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  const std::uint64_t n = next_seq_;
  const std::uint64_t cap = ring_.size();
  const std::uint64_t first = n > cap ? n - cap : 0;
  out.reserve(static_cast<std::size_t>(n - first));
  for (std::uint64_t s = first; s < n; ++s) {
    out.push_back(ring_[s & (cap - 1)]);
  }
  return out;
}

std::uint64_t TraceRing::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  next_seq_ = 0;
}

}  // namespace wafl::obs
