// Exporters: Prometheus text exposition and JSON snapshots.
//
// Both render a Registry::entries() snapshot, so output order is stable
// (sorted by name then labels) and suitable for golden tests.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

namespace wafl::obs {

/// Prometheus text exposition format (version 0.0.4).  Dotted metric
/// names become underscore-separated; histograms render cumulative
/// `_bucket{le="..."}` series for their non-empty buckets plus `+Inf`,
/// `_sum`, and `_count`.
std::string to_prometheus(const Registry& reg);

/// Pretty-printed JSON snapshot: {"counters": [...], "gauges": [...],
/// "histograms": [...]}.  Histogram entries carry summary stats
/// (count/sum/mean/p50/p90/p99) plus their non-empty buckets.
std::string to_json(const Registry& reg);

/// JSON array of the ring's current events, oldest first.
std::string trace_to_json(const TraceRing& ring);

/// Chrome trace_event JSON (Perfetto / chrome://tracing loadable): one
/// complete event (ph "X") per span, ts/dur in microseconds relative to
/// the earliest span, tid = the emitting buffer's registration index,
/// span/parent ids and the a/b payloads in args.
std::string spans_to_chrome_json(const std::vector<SpanRecord>& spans);

/// Timeline summary JSON object: per-kind count / wall / self time (self
/// = wall minus the union of child intervals), per-RAID-group breakdown
/// for the rg-labelled kinds, per-thread busy time and occupancy over the
/// snapshot window, and a critical-path estimate (longest self-time chain
/// through the span forest, overlapping siblings counted once).
/// `dropped` is SpanCollector::dropped() at snapshot time.
std::string span_summary_json(const std::vector<SpanRecord>& spans,
                              std::uint64_t dropped = 0);

/// to_json() with a "span_summary" section appended — the shape benches
/// write into their *.metrics.json dumps.
std::string to_json_with_spans(const Registry& reg,
                               const std::vector<SpanRecord>& spans,
                               std::uint64_t dropped = 0);

}  // namespace wafl::obs
