// Exporters: Prometheus text exposition and JSON snapshots.
//
// Both render a Registry::entries() snapshot, so output order is stable
// (sorted by name then labels) and suitable for golden tests.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wafl::obs {

/// Prometheus text exposition format (version 0.0.4).  Dotted metric
/// names become underscore-separated; histograms render cumulative
/// `_bucket{le="..."}` series for their non-empty buckets plus `+Inf`,
/// `_sum`, and `_count`.
std::string to_prometheus(const Registry& reg);

/// Pretty-printed JSON snapshot: {"counters": [...], "gauges": [...],
/// "histograms": [...]}.  Histogram entries carry summary stats
/// (count/sum/mean/p50/p90/p99) plus their non-empty buckets.
std::string to_json(const Registry& reg);

/// JSON array of the ring's current events, oldest first.
std::string trace_to_json(const TraceRing& ring);

}  // namespace wafl::obs
