// wafl::obs trace — bounded ring buffer of structured events.
//
// The trace answers "what happened around this CP?" where metrics only
// answer "how much, in total".  Events are fixed-size PODs (no strings,
// no allocation on emit); the ring keeps the most recent `capacity`
// events and overwrites the oldest, so a long run costs O(capacity)
// memory no matter how many CPs it executes.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace wafl::obs {

/// Event taxonomy.  One enumerator per structurally distinct occurrence in
/// the allocation / CP / device pipeline; payload field meaning is
/// documented per type below (a is a small id, b/c/d carry magnitudes).
enum class EventType : std::uint8_t {
  kCpBegin,        // a=cp number       b=dirty ops queued
  kCpEnd,          // a=cp number       b=blocks written  c=blocks freed  d=duration ns
  kAaCheckout,     // a=rg/vol id       b=AA id           c=score (free blocks)  d=capacity
  kAaPutback,      // a=rg/vol id       b=AA id           c=score at putback
  kHbpsReplenish,  // a=rg/vol id       b=AAs re-sorted into bins
  kHbpsRebin,      // a=0 (unowned)     b=AA id           c=old bin  d=new bin
  kHeapRebalance,  // a=rg/vol id       b=scores re-keyed this CP
  kTetris,         // a=rg id           b=stripes         c=blocks written  d=parity reads
  kDeviceIo,       // a=rg id           b=device index    c=busy ns this CP
  kSsdGc,          // a=0 (unowned)     b=pages relocated c=erases total
  kCleanerPass,    // a=cp number       b=AAs cleaned     c=blocks relocated
  kTopAaMount,     // a=used_topaa(0/1) b=rgs seeded      c=vols seeded  d=gate block reads
};

/// Short stable name for dumps and tests ("cp_begin", "aa_checkout", ...).
std::string_view event_type_name(EventType t) noexcept;

/// One trace record.  `seq` increments monotonically per-emit and never
/// wraps, so consumers can both order events and detect how many were
/// overwritten (`emitted - size`).
struct TraceEvent {
  std::uint64_t seq = 0;
  std::uint64_t t_ns = 0;  // monotonic_ns() at emit
  EventType type = EventType::kCpBegin;
  std::uint32_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
};

/// Mutex-guarded ring.  Emission is a lock + two stores — cheap relative
/// to the CP-boundary and device-completion call sites it instruments
/// (the per-block hot loop emits no events).
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (masked indexing).
  explicit TraceRing(std::size_t capacity = 4096);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void emit(EventType type, std::uint32_t a = 0, std::uint64_t b = 0,
            std::uint64_t c = 0, std::uint64_t d = 0);

  /// Events currently held, oldest first (≤ capacity of the most recent).
  std::vector<TraceEvent> snapshot() const;

  /// Total events ever emitted (≥ snapshot().size()).
  std::uint64_t emitted() const;

  std::size_t capacity() const noexcept { return ring_.size(); }

  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace wafl::obs
