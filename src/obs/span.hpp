// wafl::obs spans — causal, timed intervals over the CP pipeline.
//
// Where TraceRing records point events ("a tetris flushed"), spans record
// *intervals with ancestry*: every span knows its parent, and parentage
// survives ThreadPool fan-outs because the pool propagates the opened
// span's id through util's task-context word (src/util/task_context.hpp)
// into every worker task.  The result is a tree per CP — root span,
// phase children, per-RAID-group grandchildren — exportable as a Chrome
// trace_event timeline and summarizable into per-phase self times, worker
// occupancy and a critical-path estimate.
//
// Emission is lock-free: each thread owns a bounded ring of all-atomic
// slots (single writer, seqlock-validated readers), registered once with
// the process-global SpanCollector.  Capture is additionally gated by a
// *runtime* flag, default off, so instrumented binaries pay one relaxed
// load per span site unless a bench/test/harness opts in — that is what
// keeps the check.sh --overhead gate honest with tracing compiled in.
// With WAFL_OBS_ENABLED=0 the TraceSpan constructor/destructor bodies are
// `if constexpr`-deleted entirely.
#pragma once

#ifndef WAFL_OBS_ENABLED
#define WAFL_OBS_ENABLED 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace wafl::obs {

/// Span taxonomy: one enumerator per profiled surface.  The fc.* kinds
/// bracket exactly the code regions the CpPhaseProfile buckets time, so a
/// trace's per-phase wall times reconcile with the profile (the
/// micro_parallel_cp acceptance check).  a/b are small payloads whose
/// meaning is per-kind (a is usually a rg/volume/cp id, b a magnitude).
enum class SpanKind : std::uint8_t {
  // Consistency-point phases (consistency_point.cpp).
  kCp,             // a=cp ordinal   b=dirty blocks
  kCpSort,         // b=dirty blocks
  kCpAlloc,        // b=blocks allocated
  kCpVolumes,      // b=volumes
  kCpVolSlice,     // a=volume       b=ops in slice
  kCpDelayedFree,  // b=frees applied
  kCpVolFinish,    // a=volume
  kCpAggFinish,
  // Overlapped-CP generation split (consistency_point.cpp,
  // overlapped_cp.cpp).  Freeze and drain are the two halves of every CP;
  // intake and stall are emitted by the OverlappedCpDriver on the intake
  // thread, so a trace of an overlapped run shows the two lanes —
  // cp.intake on the caller, cp.drain on the drain thread — concurrently.
  kCpFreeze,  // a=cp ordinal   b=dirty blocks
  kCpDrain,   // a=cp ordinal   b=dirty blocks
  kCpIntake,  // a=cp ordinal (generation being filled)   b=blocks admitted
  kCpStall,   // a=cp ordinal draining   b=blocks waiting
  kCpLeaseDrain,  // a=cp ordinal   b=lease blocks used this generation
  // WriteAllocator::allocate — the plan/execute/merge split.
  kWaPlan,      // a=groups   b=blocks requested
  kWaExecute,   // b=blocks requested
  kWaRgExecute, // a=rg       b=blocks planned
  kWaMerge,     // b=blocks allocated
  // RgAllocator engine.
  kRgFill,         // a=rg   b=blocks taken
  kRgTetrisFlush,  // a=rg   b=window blocks
  // WriteAllocator::finish_cp phases (mirror CpPhaseProfile buckets).
  kFcWindows,
  kFcOwner,
  kFcPartition,
  kFcBoundary,
  kFcRgBoundary,  // a=rg   b=frees applied
  kFcMerge,
  kFcFlush,
  kFcFlushBlock,  // a=metafile block index
  kFcTopaa,
  kFcRgTopaa,  // a=rg
  kFcFold,
  // Mount / recovery (mount.cpp).
  kMount,         // a=used_topaa(0/1)
  kMountVolSeed,  // a=volume
  kMountScan,     // full-bitmap-scan fallback
  kRecoverLoad,
  // Iron repair + segment cleaner.
  kIronCheck,       // b=TopAA blocks rewritten
  kCleanerPass,     // b=blocks relocated
  kCleanerCleanOne, // a=rg   b=blocks moved
};

/// Short stable dotted name ("fc.boundary", "wa.rg_execute", ...) for
/// exports and dumps.
std::string_view span_kind_name(SpanKind k) noexcept;

/// One closed span, as read back out of a buffer.
struct SpanRecord {
  std::uint64_t id = 0;      // 1-based, process-unique
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t t0_ns = 0;   // monotonic_ns() open/close
  std::uint64_t t1_ns = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  SpanKind kind = SpanKind::kCp;
  std::uint32_t tid = 0;  // emitting buffer's registration index
};

/// Single-writer bounded ring of all-atomic slots.  The owning thread
/// pushes; any thread may collect().  A collect racing a wrapping push
/// skips the slot being overwritten (seqlock ticket validation) instead
/// of blocking — emission never takes a lock.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::uint32_t tid, std::size_t capacity = 8192);
  SpanBuffer(const SpanBuffer&) = delete;
  SpanBuffer& operator=(const SpanBuffer&) = delete;

  /// Owner-thread only.  r.tid is ignored (the buffer knows its own).
  void push(const SpanRecord& r) noexcept;

  /// Appends every consistent record to `out` (unordered).
  void collect(std::vector<SpanRecord>& out) const;

  /// Total spans ever pushed; pushed() - size-held = overwritten.
  std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint32_t tid() const noexcept { return tid_; }

  void clear() noexcept;

 private:
  struct Slot {
    /// 0 = empty/being written; else the 1-based push ordinal.  Per-slot
    /// tickets differ by `capacity` across wraps, so a reader's
    /// before/after comparison detects any concurrent overwrite.
    std::atomic<std::uint64_t> ticket{0};
    std::atomic<std::uint64_t> id{0};
    std::atomic<std::uint64_t> parent{0};
    std::atomic<std::uint64_t> t0{0};
    std::atomic<std::uint64_t> t1{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    std::atomic<std::uint32_t> kind{0};
  };

  std::uint32_t tid_;
  std::size_t mask_;
  std::atomic<std::uint64_t> pushed_{0};
  std::vector<Slot> slots_;
};

/// Registry of per-thread SpanBuffers plus the span-id allocator.  Each
/// thread's first emission through local() registers a buffer; the
/// collector keeps it alive (shared_ptr) past thread exit so late
/// snapshots still see the records.
class SpanCollector {
 public:
  SpanCollector() = default;
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// The calling thread's buffer in this collector (registered on first
  /// use).  A thread alternating between two collectors re-registers —
  /// fine for tests, and the production path has exactly one collector.
  SpanBuffer& local();

  std::uint64_t next_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Every consistent record across all buffers, sorted by (t0, id).
  std::vector<SpanRecord> snapshot() const;

  /// Spans overwritten before they could be snapshot, summed over buffers.
  std::uint64_t dropped() const;

  std::size_t buffer_count() const;

  /// Empties every registered buffer (buffers stay registered).
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<SpanBuffer>> buffers_;
  std::atomic<std::uint64_t> next_id_{0};
};

/// Process-global collector (parallels obs::registry()/obs::trace()).
SpanCollector& spans();

/// Runtime capture gate, default OFF.  Flipping it on/off is safe at any
/// time; spans already open finish normally.
bool span_capture_enabled() noexcept;
void set_span_capture(bool on) noexcept;

/// RAII span.  Opening publishes the span id as the thread's task
/// context, so ThreadPool tasks submitted inside the scope (and spans
/// they open) become children; closing restores the parent id.  Closes
/// on destruction — including exception unwind, which is how a crashed
/// CP's partial timeline still reaches the flight recorder — or eagerly
/// via end() for phase code that is not block-structured.
class TraceSpan {
 public:
  explicit TraceSpan(SpanKind kind, std::uint64_t a = 0,
                     std::uint64_t b = 0) noexcept {
    if constexpr (WAFL_OBS_ENABLED != 0) {
      if (span_capture_enabled()) open(kind, a, b);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if constexpr (WAFL_OBS_ENABLED != 0) {
      if (active_) end();
    }
  }

  /// Updates the a payload before close (e.g. a CP number assigned after
  /// the span opened).
  void set_a(std::uint64_t a) noexcept { a_ = a; }
  /// Updates the b payload before close (e.g. blocks moved, rewrites).
  void set_b(std::uint64_t b) noexcept { b_ = b; }

  /// Closes the span now (idempotent; no-op if capture was off at open).
  void end() noexcept;

  std::uint64_t id() const noexcept { return id_; }
  bool active() const noexcept { return active_; }

 private:
  void open(SpanKind kind, std::uint64_t a, std::uint64_t b) noexcept;

  bool active_ = false;
  SpanKind kind_ = SpanKind::kCp;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

}  // namespace wafl::obs
