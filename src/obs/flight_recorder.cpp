#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/scoped_timer.hpp"
#include "obs/span.hpp"

namespace wafl::obs {

namespace {

std::string fmt_rel_ms(std::uint64_t t_ns, std::uint64_t base_ns) {
  char buf[48];
  if (t_ns >= base_ns) {
    std::snprintf(buf, sizeof(buf), "+%.3fms",
                  static_cast<double>(t_ns - base_ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "-%.3fms",
                  static_cast<double>(base_ns - t_ns) / 1e6);
  }
  return buf;
}

std::string counter_key(const Registry::Entry& e) {
  return e.labels.empty() ? e.name : e.name + "{" + e.labels + "}";
}

}  // namespace

FlightRecorder& flight_recorder() {
  static FlightRecorder fr;
  return fr;
}

Registry& FlightRecorder::source() const {
  return reg_ != nullptr ? *reg_ : registry();
}

void FlightRecorder::mark() {
  std::vector<std::pair<std::string, std::uint64_t>> base;
  for (const Registry::Entry& e : source().entries()) {
    if (e.kind != Registry::Kind::kCounter) continue;
    base.emplace_back(counter_key(e), e.counter->value());
  }
  std::lock_guard lk(mu_);
  baseline_ = std::move(base);
  mark_ns_ = monotonic_ns();
  notes_.clear();
}

void FlightRecorder::note(std::string_view tag, std::string_view what,
                          std::uint64_t detail) {
  std::lock_guard lk(mu_);
  if (notes_.size() >= kMaxNotes) {
    notes_.erase(notes_.begin());
  }
  notes_.push_back(
      Note{monotonic_ns(), std::string(tag), std::string(what), detail});
}

std::string FlightRecorder::dump(std::size_t max_spans) const {
  std::vector<Note> notes;
  std::map<std::string, std::uint64_t> base;
  std::uint64_t mark_ns = 0;
  {
    std::lock_guard lk(mu_);
    notes = notes_;
    for (const auto& [k, v] : baseline_) base.emplace(k, v);
    mark_ns = mark_ns_;
  }
  const std::uint64_t now = monotonic_ns();

  std::string out = "flight recorder dump";
  if (mark_ns != 0) {
    out += " (window " + fmt_rel_ms(now, mark_ns) + " since mark)";
  }
  out += '\n';

  if (!notes.empty()) {
    out += "  notes:\n";
    for (const Note& n : notes) {
      out += "    " + fmt_rel_ms(n.t_ns, mark_ns != 0 ? mark_ns : n.t_ns) +
             "  [" + n.tag + "]  " + n.what;
      if (n.detail != 0) {
        out += "  n=" + std::to_string(n.detail);
      }
      out += '\n';
    }
  }

  std::vector<SpanRecord> all = spans().snapshot();
  // Keep spans overlapping the observation window, most recent last.
  std::vector<SpanRecord> in_window;
  for (const SpanRecord& s : all) {
    if (mark_ns == 0 || s.t1_ns >= mark_ns) in_window.push_back(s);
  }
  const std::size_t total = in_window.size();
  if (total > max_spans) {
    // Drop the oldest by end time; re-sort the survivors by start.
    std::sort(in_window.begin(), in_window.end(),
              [](const SpanRecord& x, const SpanRecord& y) {
                return x.t1_ns < y.t1_ns;
              });
    in_window.erase(in_window.begin(),
                    in_window.end() - static_cast<std::ptrdiff_t>(max_spans));
    std::sort(in_window.begin(), in_window.end(),
              [](const SpanRecord& x, const SpanRecord& y) {
                return x.t0_ns != y.t0_ns ? x.t0_ns < y.t0_ns : x.id < y.id;
              });
  }
  if (!in_window.empty()) {
    out += "  spans (" + std::to_string(in_window.size()) + " of " +
           std::to_string(total) + " in window):\n";
    for (const SpanRecord& s : in_window) {
      const std::uint64_t base_ns = mark_ns != 0 ? mark_ns : in_window[0].t0_ns;
      out += "    [" + fmt_rel_ms(s.t0_ns, base_ns) + " .. " +
             fmt_rel_ms(s.t1_ns, base_ns) + "]  tid" + std::to_string(s.tid) +
             "  " + std::string(span_kind_name(s.kind)) +
             "  a=" + std::to_string(s.a) + " b=" + std::to_string(s.b) +
             "  id=" + std::to_string(s.id) +
             " parent=" + std::to_string(s.parent) + '\n';
    }
  }

  std::string deltas;
  for (const Registry::Entry& e : source().entries()) {
    if (e.kind != Registry::Kind::kCounter) continue;
    const std::uint64_t cur = e.counter->value();
    const auto it = base.find(counter_key(e));
    const std::uint64_t old = it != base.end() ? it->second : 0;
    if (cur == old) continue;
    deltas += "    " + counter_key(e) + "  ";
    deltas += cur >= old ? "+" + std::to_string(cur - old)
                         : "-" + std::to_string(old - cur);
    deltas += '\n';
  }
  if (!deltas.empty()) {
    out += "  counter deltas since mark:\n" + deltas;
  }
  return out;
}

void FlightRecorder::clear() {
  std::lock_guard lk(mu_);
  notes_.clear();
  baseline_.clear();
  mark_ns_ = 0;
}

}  // namespace wafl::obs
