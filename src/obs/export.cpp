#include "obs/export.hpp"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace wafl::obs {

namespace {

/// Shortest stable rendering of a double that survives both JSON parsers
/// and Prometheus scrapers ("12", "0.4375", "1.234568e+09").
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; dotted wafl names map
/// onto underscores ("wafl.cp.blocks_written" -> "wafl_cp_blocks_written").
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& ch : out) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    if (!ok) ch = '_';
  }
  return out;
}

/// "{rg="0"}" or "" — optionally with an extra le="..." pair merged in.
std::string prom_labels(const std::string& labels, const std::string& le = {}) {
  if (labels.empty() && le.empty()) return {};
  std::string out = "{";
  out += labels;
  if (!le.empty()) {
    if (!labels.empty()) out += ',';
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
  return out;
}

void prom_type_line(std::string& out, const std::string& name,
                    const char* type, std::string& last_typed) {
  if (last_typed == name) return;  // one TYPE line per family
  last_typed = name;
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// Shared cumulative-bucket rendering for both histogram kinds.
/// `n_bins`, `bin_count(i)`, `bin_hi(i)` abstract over the geometry.
template <typename CountFn, typename HiFn>
void prom_histogram(std::string& out, const std::string& name,
                    const std::string& labels, std::uint32_t n_bins,
                    CountFn bin_count, HiFn bin_hi, double sum,
                    std::uint64_t count) {
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < n_bins; ++i) {
    const std::uint64_t c = bin_count(i);
    if (c == 0) continue;
    cum += c;
    out += name;
    out += "_bucket";
    out += prom_labels(labels, fmt_double(bin_hi(i)));
    out += ' ';
    out += fmt_u64(cum);
    out += '\n';
  }
  out += name;
  out += "_bucket";
  out += prom_labels(labels, "+Inf");
  out += ' ';
  out += fmt_u64(count);
  out += '\n';
  out += name;
  out += "_sum";
  out += prom_labels(labels);
  out += ' ';
  out += fmt_double(sum);
  out += '\n';
  out += name;
  out += "_count";
  out += prom_labels(labels);
  out += ' ';
  out += fmt_u64(count);
  out += '\n';
}

/// JSON string escaping for the (printable-ASCII) names and label strings
/// we generate; control characters degrade to \u00XX.
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

template <typename CountFn, typename LoFn, typename HiFn>
void json_buckets(std::string& out, std::uint32_t n_bins, CountFn bin_count,
                  LoFn bin_lo, HiFn bin_hi) {
  out += "\"buckets\": [";
  bool first = true;
  for (std::uint32_t i = 0; i < n_bins; ++i) {
    const std::uint64_t c = bin_count(i);
    if (c == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "{\"lo\": ";
    out += fmt_double(bin_lo(i));
    out += ", \"hi\": ";
    out += fmt_double(bin_hi(i));
    out += ", \"count\": ";
    out += fmt_u64(c);
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string to_prometheus(const Registry& reg) {
  std::string out;
  std::string last_typed;
  for (const Registry::Entry& e : reg.entries()) {
    const std::string name = prom_name(e.name);
    switch (e.kind) {
      case Registry::Kind::kCounter:
        prom_type_line(out, name, "counter", last_typed);
        out += name;
        out += prom_labels(e.labels);
        out += ' ';
        out += fmt_u64(e.counter->value());
        out += '\n';
        break;
      case Registry::Kind::kGauge:
        prom_type_line(out, name, "gauge", last_typed);
        out += name;
        out += prom_labels(e.labels);
        out += ' ';
        out += fmt_i64(e.gauge->value());
        out += '\n';
        break;
      case Registry::Kind::kLogHistogram: {
        prom_type_line(out, name, "histogram", last_typed);
        const LogHistogram& h = *e.log_hist;
        prom_histogram(
            out, name, e.labels, LogHistogram::kBuckets,
            [&h](std::uint32_t i) { return h.bucket_count(i); },
            [](std::uint32_t i) { return LogHistogram::bucket_hi(i); },
            h.sum(), h.count());
        break;
      }
      case Registry::Kind::kLinearHistogram: {
        prom_type_line(out, name, "histogram", last_typed);
        const LinearHistogram& h = *e.linear_hist;
        prom_histogram(
            out, name, e.labels, h.bins(),
            [&h](std::uint32_t i) { return h.bucket_count(i); },
            [&h](std::uint32_t i) { return h.bucket_hi(i); }, h.sum(),
            h.count());
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Registry& reg) {
  const std::vector<Registry::Entry> entries = reg.entries();
  std::string counters, gauges, hists;
  for (const Registry::Entry& e : entries) {
    switch (e.kind) {
      case Registry::Kind::kCounter:
        if (!counters.empty()) counters += ",\n";
        counters += "    {\"name\": " + json_str(e.name) +
                    ", \"labels\": " + json_str(e.labels) +
                    ", \"value\": " + fmt_u64(e.counter->value()) + "}";
        break;
      case Registry::Kind::kGauge:
        if (!gauges.empty()) gauges += ",\n";
        gauges += "    {\"name\": " + json_str(e.name) +
                  ", \"labels\": " + json_str(e.labels) +
                  ", \"value\": " + fmt_i64(e.gauge->value()) + "}";
        break;
      case Registry::Kind::kLogHistogram:
      case Registry::Kind::kLinearHistogram: {
        if (!hists.empty()) hists += ",\n";
        std::string h = "    {\"name\": " + json_str(e.name) +
                        ", \"labels\": " + json_str(e.labels);
        if (e.kind == Registry::Kind::kLogHistogram) {
          const LogHistogram& lh = *e.log_hist;
          h += ", \"kind\": \"log\"";
          h += ", \"count\": " + fmt_u64(lh.count());
          h += ", \"sum\": " + fmt_double(lh.sum());
          h += ", \"mean\": " + fmt_double(lh.mean());
          h += ", \"min\": " + fmt_double(lh.min());
          h += ", \"max\": " + fmt_double(lh.max());
          h += ", \"p50\": " + fmt_double(lh.percentile(50.0));
          h += ", \"p90\": " + fmt_double(lh.percentile(90.0));
          h += ", \"p99\": " + fmt_double(lh.percentile(99.0));
          h += ", ";
          json_buckets(
              h, LogHistogram::kBuckets,
              [&lh](std::uint32_t i) { return lh.bucket_count(i); },
              [](std::uint32_t i) { return LogHistogram::bucket_lo(i); },
              [](std::uint32_t i) { return LogHistogram::bucket_hi(i); });
        } else {
          const LinearHistogram& lh = *e.linear_hist;
          h += ", \"kind\": \"linear\"";
          h += ", \"count\": " + fmt_u64(lh.count());
          h += ", \"sum\": " + fmt_double(lh.sum());
          h += ", \"mean\": " + fmt_double(lh.mean());
          h += ", \"p50\": " + fmt_double(lh.percentile(50.0));
          h += ", \"p90\": " + fmt_double(lh.percentile(90.0));
          h += ", \"p99\": " + fmt_double(lh.percentile(99.0));
          h += ", ";
          json_buckets(
              h, lh.bins(),
              [&lh](std::uint32_t i) { return lh.bucket_count(i); },
              [&lh](std::uint32_t i) { return lh.bucket_lo(i); },
              [&lh](std::uint32_t i) { return lh.bucket_hi(i); });
        }
        h += '}';
        hists += h;
        break;
      }
    }
  }
  std::string out = "{\n  \"counters\": [\n";
  out += counters;
  out += "\n  ],\n  \"gauges\": [\n";
  out += gauges;
  out += "\n  ],\n  \"histograms\": [\n";
  out += hists;
  out += "\n  ]\n}\n";
  return out;
}

std::string trace_to_json(const TraceRing& ring) {
  std::string out = "[\n";
  bool first = true;
  for (const TraceEvent& e : ring.snapshot()) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"seq\": " + fmt_u64(e.seq) + ", \"t_ns\": " + fmt_u64(e.t_ns) +
           ", \"type\": " + json_str(std::string(event_type_name(e.type))) +
           ", \"a\": " + fmt_u64(e.a) + ", \"b\": " + fmt_u64(e.b) +
           ", \"c\": " + fmt_u64(e.c) + ", \"d\": " + fmt_u64(e.d) + "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace wafl::obs
