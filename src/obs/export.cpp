#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace wafl::obs {

namespace {

/// Shortest stable rendering of a double that survives both JSON parsers
/// and Prometheus scrapers ("12", "0.4375", "1.234568e+09").
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  return buf;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; dotted wafl names map
/// onto underscores ("wafl.cp.blocks_written" -> "wafl_cp_blocks_written").
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& ch : out) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_' || ch == ':';
    if (!ok) ch = '_';
  }
  return out;
}

/// "{rg="0"}" or "" — optionally with an extra le="..." pair merged in.
std::string prom_labels(const std::string& labels, const std::string& le = {}) {
  if (labels.empty() && le.empty()) return {};
  std::string out = "{";
  out += labels;
  if (!le.empty()) {
    if (!labels.empty()) out += ',';
    out += "le=\"";
    out += le;
    out += '"';
  }
  out += '}';
  return out;
}

void prom_type_line(std::string& out, const std::string& name,
                    const char* type, std::string& last_typed) {
  if (last_typed == name) return;  // one TYPE line per family
  last_typed = name;
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// Shared cumulative-bucket rendering for both histogram kinds.
/// `n_bins`, `bin_count(i)`, `bin_hi(i)` abstract over the geometry.
template <typename CountFn, typename HiFn>
void prom_histogram(std::string& out, const std::string& name,
                    const std::string& labels, std::uint32_t n_bins,
                    CountFn bin_count, HiFn bin_hi, double sum,
                    std::uint64_t count) {
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < n_bins; ++i) {
    const std::uint64_t c = bin_count(i);
    if (c == 0) continue;
    cum += c;
    out += name;
    out += "_bucket";
    out += prom_labels(labels, fmt_double(bin_hi(i)));
    out += ' ';
    out += fmt_u64(cum);
    out += '\n';
  }
  out += name;
  out += "_bucket";
  out += prom_labels(labels, "+Inf");
  out += ' ';
  out += fmt_u64(count);
  out += '\n';
  out += name;
  out += "_sum";
  out += prom_labels(labels);
  out += ' ';
  out += fmt_double(sum);
  out += '\n';
  out += name;
  out += "_count";
  out += prom_labels(labels);
  out += ' ';
  out += fmt_u64(count);
  out += '\n';
}

/// JSON string escaping for the (printable-ASCII) names and label strings
/// we generate; control characters degrade to \u00XX.
std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
  return out;
}

template <typename CountFn, typename LoFn, typename HiFn>
void json_buckets(std::string& out, std::uint32_t n_bins, CountFn bin_count,
                  LoFn bin_lo, HiFn bin_hi) {
  out += "\"buckets\": [";
  bool first = true;
  for (std::uint32_t i = 0; i < n_bins; ++i) {
    const std::uint64_t c = bin_count(i);
    if (c == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += "{\"lo\": ";
    out += fmt_double(bin_lo(i));
    out += ", \"hi\": ";
    out += fmt_double(bin_hi(i));
    out += ", \"count\": ";
    out += fmt_u64(c);
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string to_prometheus(const Registry& reg) {
  std::string out;
  std::string last_typed;
  for (const Registry::Entry& e : reg.entries()) {
    const std::string name = prom_name(e.name);
    switch (e.kind) {
      case Registry::Kind::kCounter:
        prom_type_line(out, name, "counter", last_typed);
        out += name;
        out += prom_labels(e.labels);
        out += ' ';
        out += fmt_u64(e.counter->value());
        out += '\n';
        break;
      case Registry::Kind::kGauge:
        prom_type_line(out, name, "gauge", last_typed);
        out += name;
        out += prom_labels(e.labels);
        out += ' ';
        out += fmt_i64(e.gauge->value());
        out += '\n';
        break;
      case Registry::Kind::kLogHistogram: {
        prom_type_line(out, name, "histogram", last_typed);
        const LogHistogram& h = *e.log_hist;
        prom_histogram(
            out, name, e.labels, LogHistogram::kBuckets,
            [&h](std::uint32_t i) { return h.bucket_count(i); },
            [](std::uint32_t i) { return LogHistogram::bucket_hi(i); },
            h.sum(), h.count());
        break;
      }
      case Registry::Kind::kLinearHistogram: {
        prom_type_line(out, name, "histogram", last_typed);
        const LinearHistogram& h = *e.linear_hist;
        prom_histogram(
            out, name, e.labels, h.bins(),
            [&h](std::uint32_t i) { return h.bucket_count(i); },
            [&h](std::uint32_t i) { return h.bucket_hi(i); }, h.sum(),
            h.count());
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Registry& reg) {
  const std::vector<Registry::Entry> entries = reg.entries();
  std::string counters, gauges, hists;
  for (const Registry::Entry& e : entries) {
    switch (e.kind) {
      case Registry::Kind::kCounter:
        if (!counters.empty()) counters += ",\n";
        counters += "    {\"name\": " + json_str(e.name) +
                    ", \"labels\": " + json_str(e.labels) +
                    ", \"value\": " + fmt_u64(e.counter->value()) + "}";
        break;
      case Registry::Kind::kGauge:
        if (!gauges.empty()) gauges += ",\n";
        gauges += "    {\"name\": " + json_str(e.name) +
                  ", \"labels\": " + json_str(e.labels) +
                  ", \"value\": " + fmt_i64(e.gauge->value()) + "}";
        break;
      case Registry::Kind::kLogHistogram:
      case Registry::Kind::kLinearHistogram: {
        if (!hists.empty()) hists += ",\n";
        std::string h = "    {\"name\": " + json_str(e.name) +
                        ", \"labels\": " + json_str(e.labels);
        if (e.kind == Registry::Kind::kLogHistogram) {
          const LogHistogram& lh = *e.log_hist;
          h += ", \"kind\": \"log\"";
          h += ", \"count\": " + fmt_u64(lh.count());
          h += ", \"sum\": " + fmt_double(lh.sum());
          h += ", \"mean\": " + fmt_double(lh.mean());
          h += ", \"min\": " + fmt_double(lh.min());
          h += ", \"max\": " + fmt_double(lh.max());
          h += ", \"p50\": " + fmt_double(lh.percentile(50.0));
          h += ", \"p90\": " + fmt_double(lh.percentile(90.0));
          h += ", \"p99\": " + fmt_double(lh.percentile(99.0));
          h += ", ";
          json_buckets(
              h, LogHistogram::kBuckets,
              [&lh](std::uint32_t i) { return lh.bucket_count(i); },
              [](std::uint32_t i) { return LogHistogram::bucket_lo(i); },
              [](std::uint32_t i) { return LogHistogram::bucket_hi(i); });
        } else {
          const LinearHistogram& lh = *e.linear_hist;
          h += ", \"kind\": \"linear\"";
          h += ", \"count\": " + fmt_u64(lh.count());
          h += ", \"sum\": " + fmt_double(lh.sum());
          h += ", \"mean\": " + fmt_double(lh.mean());
          h += ", \"p50\": " + fmt_double(lh.percentile(50.0));
          h += ", \"p90\": " + fmt_double(lh.percentile(90.0));
          h += ", \"p99\": " + fmt_double(lh.percentile(99.0));
          h += ", ";
          json_buckets(
              h, lh.bins(),
              [&lh](std::uint32_t i) { return lh.bucket_count(i); },
              [&lh](std::uint32_t i) { return lh.bucket_lo(i); },
              [&lh](std::uint32_t i) { return lh.bucket_hi(i); });
        }
        h += '}';
        hists += h;
        break;
      }
    }
  }
  std::string out = "{\n  \"counters\": [\n";
  out += counters;
  out += "\n  ],\n  \"gauges\": [\n";
  out += gauges;
  out += "\n  ],\n  \"histograms\": [\n";
  out += hists;
  out += "\n  ]\n}\n";
  return out;
}

namespace {

/// Total length of the union of [lo, hi) intervals, optionally clipped to
/// [clip_lo, clip_hi).  `iv` is sorted in place by start.
std::uint64_t union_length(std::vector<std::pair<std::uint64_t, std::uint64_t>>& iv,
                           std::uint64_t clip_lo, std::uint64_t clip_hi) {
  std::sort(iv.begin(), iv.end());
  std::uint64_t total = 0;
  std::uint64_t cur_lo = 0, cur_hi = 0;
  bool open = false;
  for (auto [lo, hi] : iv) {
    lo = std::max(lo, clip_lo);
    hi = std::min(hi, clip_hi);
    if (lo >= hi) continue;
    if (!open) {
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else if (lo <= cur_hi) {
      cur_hi = std::max(cur_hi, hi);
    } else {
      total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
    }
  }
  if (open) total += cur_hi - cur_lo;
  return total;
}

/// Span kinds whose `a` payload is a RAID-group id (per-rg breakdown).
bool kind_is_per_rg(SpanKind k) {
  switch (k) {
    case SpanKind::kWaRgExecute:
    case SpanKind::kRgFill:
    case SpanKind::kRgTetrisFlush:
    case SpanKind::kFcRgBoundary:
    case SpanKind::kFcRgTopaa:
      return true;
    default:
      return false;
  }
}

struct SpanForest {
  const std::vector<SpanRecord>* spans = nullptr;
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> children;
  std::vector<std::size_t> roots;

  explicit SpanForest(const std::vector<SpanRecord>& s) : spans(&s) {
    by_id.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) by_id.emplace(s[i].id, i);
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i].parent != 0 && by_id.count(s[i].parent) != 0) {
        children[s[i].parent].push_back(i);
      } else {
        roots.push_back(i);
      }
    }
  }

  std::uint64_t self_ns(std::size_t i) const {
    const SpanRecord& s = (*spans)[i];
    const auto it = children.find(s.id);
    const std::uint64_t wall = s.t1_ns - s.t0_ns;
    if (it == children.end()) return wall;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> iv;
    iv.reserve(it->second.size());
    for (std::size_t c : it->second) {
      iv.emplace_back((*spans)[c].t0_ns, (*spans)[c].t1_ns);
    }
    const std::uint64_t covered = union_length(iv, s.t0_ns, s.t1_ns);
    return wall > covered ? wall - covered : 0;
  }

  /// Critical-path estimate: self time plus, for each cluster of
  /// time-overlapping children, the longest child path (concurrent
  /// siblings collapse to the slowest; sequential clusters add up).
  std::uint64_t crit_ns(std::size_t i) const {
    const auto it = children.find((*spans)[i].id);
    std::uint64_t total = self_ns(i);
    if (it != children.end()) total += cluster_crit(it->second);
    return total;
  }

  /// Cluster-combine an arbitrary sibling set (also used for the roots).
  std::uint64_t cluster_crit(const std::vector<std::size_t>& sibs) const {
    std::vector<std::size_t> order = sibs;
    std::sort(order.begin(), order.end(), [this](std::size_t x, std::size_t y) {
      return (*spans)[x].t0_ns < (*spans)[y].t0_ns;
    });
    std::uint64_t total = 0;
    std::size_t k = 0;
    while (k < order.size()) {
      std::uint64_t cluster_end = (*spans)[order[k]].t1_ns;
      std::uint64_t best = crit_ns(order[k]);
      std::size_t j = k + 1;
      while (j < order.size() && (*spans)[order[j]].t0_ns < cluster_end) {
        cluster_end = std::max(cluster_end, (*spans)[order[j]].t1_ns);
        best = std::max(best, crit_ns(order[j]));
        ++j;
      }
      total += best;
      k = j;
    }
    return total;
  }
};

std::string fmt_ms(std::uint64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", static_cast<double>(ns) / 1e6);
  return buf;
}

}  // namespace

std::string spans_to_chrome_json(const std::vector<SpanRecord>& spans) {
  // ~0 sentinel, not 0: a genuine t0 of 0 must not re-arm the min scan.
  std::uint64_t t_min = ~0ull;
  for (const SpanRecord& s : spans) t_min = std::min(t_min, s.t0_ns);
  if (spans.empty()) t_min = 0;
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  char buf[64];
  for (const SpanRecord& s : spans) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"name\": " +
           json_str(std::string(span_kind_name(s.kind))) +
           ", \"cat\": \"wafl\", \"ph\": \"X\"";
    std::snprintf(buf, sizeof(buf), ", \"ts\": %.3f",
                  static_cast<double>(s.t0_ns - t_min) / 1e3);
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"dur\": %.3f",
                  static_cast<double>(s.t1_ns - s.t0_ns) / 1e3);
    out += buf;
    out += ", \"pid\": 1, \"tid\": " + fmt_u64(s.tid);
    out += ", \"args\": {\"id\": " + fmt_u64(s.id) +
           ", \"parent\": " + fmt_u64(s.parent) + ", \"a\": " + fmt_u64(s.a) +
           ", \"b\": " + fmt_u64(s.b) + "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string span_summary_json(const std::vector<SpanRecord>& spans,
                              std::uint64_t dropped) {
  const SpanForest forest(spans);

  struct KindAgg {
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t self_ns = 0;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        by_rg;  // rg -> {count, wall_ns}
  };
  std::map<std::string, KindAgg> kinds;  // name-keyed: stable output order
  std::map<std::uint32_t, std::vector<std::pair<std::uint64_t, std::uint64_t>>>
      tid_iv;
  std::uint64_t t_min = ~0ull, t_max = 0;

  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    KindAgg& k = kinds[std::string(span_kind_name(s.kind))];
    k.count += 1;
    k.wall_ns += s.t1_ns - s.t0_ns;
    k.self_ns += forest.self_ns(i);
    if (kind_is_per_rg(s.kind)) {
      auto& [cnt, wall] = k.by_rg[s.a];
      cnt += 1;
      wall += s.t1_ns - s.t0_ns;
    }
    tid_iv[s.tid].emplace_back(s.t0_ns, s.t1_ns);
    t_min = std::min(t_min, s.t0_ns);
    t_max = std::max(t_max, s.t1_ns);
  }
  const std::uint64_t window_ns = t_max > t_min ? t_max - t_min : 0;

  std::string out = "{\n    \"span_count\": " +
                    fmt_u64(static_cast<std::uint64_t>(spans.size())) +
                    ",\n    \"dropped\": " + fmt_u64(dropped) +
                    ",\n    \"window_ms\": " + fmt_ms(window_ns) +
                    ",\n    \"critical_path_ms\": " +
                    fmt_ms(spans.empty() ? 0 : forest.cluster_crit(forest.roots)) +
                    ",\n    \"phases\": [\n";
  bool first = true;
  for (const auto& [name, k] : kinds) {
    if (!first) out += ",\n";
    first = false;
    out += "      {\"kind\": " + json_str(name) +
           ", \"count\": " + fmt_u64(k.count) +
           ", \"wall_ms\": " + fmt_ms(k.wall_ns) +
           ", \"self_ms\": " + fmt_ms(k.self_ns);
    if (!k.by_rg.empty()) {
      out += ", \"by_rg\": [";
      bool f2 = true;
      for (const auto& [rg, cw] : k.by_rg) {
        if (!f2) out += ", ";
        f2 = false;
        out += "{\"rg\": " + fmt_u64(rg) + ", \"count\": " + fmt_u64(cw.first) +
               ", \"wall_ms\": " + fmt_ms(cw.second) + "}";
      }
      out += ']';
    }
    out += '}';
  }
  out += "\n    ],\n    \"threads\": [\n";
  first = true;
  for (auto& [tid, iv] : tid_iv) {
    const std::uint64_t busy = union_length(iv, t_min, t_max);
    if (!first) out += ",\n";
    first = false;
    out += "      {\"tid\": " + fmt_u64(tid) +
           ", \"busy_ms\": " + fmt_ms(busy) + ", \"occupancy\": " +
           fmt_double(window_ns > 0
                          ? static_cast<double>(busy) /
                                static_cast<double>(window_ns)
                          : 0.0) +
           '}';
  }
  out += "\n    ]\n  }";
  return out;
}

std::string to_json_with_spans(const Registry& reg,
                               const std::vector<SpanRecord>& spans,
                               std::uint64_t dropped) {
  std::string out = to_json(reg);
  // Splice "span_summary" in before the closing brace of the to_json()
  // object (its last two characters are "}\n").
  const std::size_t close = out.rfind('}');
  if (close == std::string::npos) return out;
  std::string spliced = out.substr(0, close);
  spliced += ",\n  \"span_summary\": ";
  spliced += span_summary_json(spans, dropped);
  spliced += "\n}\n";
  return spliced;
}

std::string trace_to_json(const TraceRing& ring) {
  std::string out = "[\n";
  bool first = true;
  for (const TraceEvent& e : ring.snapshot()) {
    if (!first) out += ",\n";
    first = false;
    out += "  {\"seq\": " + fmt_u64(e.seq) + ", \"t_ns\": " + fmt_u64(e.t_ns) +
           ", \"type\": " + json_str(std::string(event_type_name(e.type))) +
           ", \"a\": " + fmt_u64(e.a) + ", \"b\": " + fmt_u64(e.b) +
           ", \"c\": " + fmt_u64(e.c) + ", \"d\": " + fmt_u64(e.d) + "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace wafl::obs
