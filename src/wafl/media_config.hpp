// Media configuration and device construction for WAFL file systems.
#pragma once

#include <cstdint>
#include <memory>

#include "core/aa_sizing.hpp"
#include "device/azcs.hpp"
#include "device/device.hpp"
#include "device/hdd.hpp"
#include "device/object_store.hpp"
#include "device/smr.hpp"
#include "device/ssd.hpp"
#include "device/ssd_block_mapped.hpp"

namespace wafl {

/// Which FTL scheme an SSD uses (see ssd.hpp / ssd_block_mapped.hpp).
enum class SsdFtl {
  /// Replacement-block FTL, the paper-era enterprise behaviour (default).
  kBlockMapped,
  /// Page-mapped log-structured FTL with greedy GC.
  kPageMapped,
};

/// Everything needed to instantiate one storage device and size its AAs.
struct MediaConfig {
  MediaType type = MediaType::kHdd;
  HddParams hdd{};
  SsdParams ssd{};
  SsdFtl ssd_ftl = SsdFtl::kBlockMapped;
  SmrParams smr{};
  ObjectStoreParams object_store{};
  /// Wrap the device in an AZCS checksum-region layout (§3.2.4).
  bool azcs = false;
};

/// Creates a device of `capacity_blocks` 4 KiB blocks.  With azcs set, the
/// capacity is the raw media size and the returned device exposes the
/// (smaller) data capacity.
std::unique_ptr<DeviceModel> make_device(const MediaConfig& cfg,
                                         std::uint64_t capacity_blocks);

/// The sizing-policy view of a MediaConfig.  For AZCS-wrapped devices the
/// zone size is converted to data-block units, since allocation areas are
/// defined over the data-block space the file system sees.
MediaGeometry media_geometry(const MediaConfig& cfg);

}  // namespace wafl
