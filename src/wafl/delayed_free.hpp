// Delayed-free tracking — the paper's second use of the HBPS (§3.3.2):
// "The HBPS data structure has other uses in WAFL when millions of items
//  need to be sorted in close-to-optimal order and with minimal memory
//  usage.  For example, it is used to track delayed-free scores."
//
// Background (from the paper's companion work on free-space reclamation):
// frees produced by snapshot deletion and other internal operations are
// not applied immediately; they accumulate per bitmap-block-sized region
// as *delayed frees* and are processed region by region so that each pass
// dirties one bitmap block.  Processing the RICHEST regions first returns
// the most free space per metafile-block update — exactly the
// near-optimal-ordering problem the HBPS solves in two pages.
//
// DelayedFreeLog scores each region by its pending-free count and serves
// regions in close-to-richest-first order.  Scores move between bins in
// O(1); a drained region re-enters at score 0.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/hbps.hpp"
#include "util/mpsc_log.hpp"
#include "util/types.hpp"

namespace wafl {

class DelayedFreeLog {
 public:
  /// Tracks VBNs in [0, total_blocks), in regions of `region_blocks`
  /// (default: one bitmap-metafile block of VBNs).
  explicit DelayedFreeLog(std::uint64_t total_blocks,
                          std::uint32_t region_blocks = kBitsPerBitmapBlock);

  /// Pass-through to the internal HBPS: routes its rebin counting to the
  /// owner's runtime-scoped "wafl.hbps.rebins" handle (null: uncounted).
  void bind_rebin_counter(obs::Counter* c) noexcept {
    hbps_.bind_rebin_counter(c);
  }

  std::uint32_t region_count() const noexcept {
    return static_cast<std::uint32_t>(pending_.size());
  }
  std::uint32_t region_of(Vbn v) const noexcept {
    return static_cast<std::uint32_t>(v / region_blocks_);
  }

  /// Logs a delayed free of `v` directly into the frozen (drainable)
  /// generation.  Only safe while no CP is draining this log.
  void log_free(Vbn v);

  /// Stages a delayed free of `v` in the *active* generation ledger.
  /// Region scores and drain order are untouched until the next
  /// freeze_generation() folds the ledger in, so an in-flight CP
  /// draining the frozen generation never observes it.  MPSC: any number
  /// of intake threads may stage concurrently (DESIGN.md §14); the fold
  /// consumes reservation-index order, which equals staging order for a
  /// single producer.
  void log_free_active(Vbn v);

  /// Generation swap at CP freeze: folds the active ledger into the
  /// drainable log in staging order.  Returns the number folded.
  /// Requires stagers quiesced (the driver holds every intake shard
  /// lock, or the workload is single-threaded).
  std::uint64_t freeze_generation();

  /// Frees staged in the active generation, not yet visible to drains.
  std::uint64_t active_total() const noexcept { return active_.size(); }

  /// Total frees logged but not yet drained, across both generations.
  std::uint64_t pending_total() const noexcept {
    return pending_total_ + active_.size();
  }
  /// Frees drainable right now (frozen generation only).
  std::uint64_t drainable_total() const noexcept { return pending_total_; }
  std::uint32_t pending_in_region(std::uint32_t region) const {
    return pending_[region].count;
  }

  /// Takes the (close-to-)richest region and returns its VBN list for
  /// processing; the region's score drops to zero.  Returns nullopt when
  /// nothing is pending.  The HBPS guarantee applies: the chosen region's
  /// count is within one bin width of the true maximum.
  struct Drain {
    std::uint32_t region;
    std::vector<Vbn> vbns;
  };
  std::optional<Drain> drain_richest();

  /// Structural check for tests.
  bool validate() const;

 private:
  struct Region {
    std::uint32_t count = 0;
    std::vector<Vbn> vbns;
  };

  std::uint32_t region_blocks_;
  std::vector<Region> pending_;
  std::uint64_t pending_total_ = 0;
  MpscLog<Vbn> active_;
  Hbps hbps_;
};

}  // namespace wafl
