// Overlapped back-to-back consistency points (DESIGN.md §13).
//
// Real WAFL never stops the world: it admits the next CP's writes while
// the previous CP drains to media, which is what keeps client latency
// flat as load approaches the knee (§2).  This driver supplies that
// behaviour over the generation split:
//
//   - intake (submit) fills the ACTIVE generation: driver-owned dirty
//     lists coalesced per (volume, logical), plus active-ledger delayed
//     frees staged by snapshot deletion;
//   - start_cp() freezes: ConsistencyPoint::freeze() swaps the active
//     generation into the FROZEN one (cheap, no media I/O) and the
//     phased drain is launched on a dedicated thread, parallelizing its
//     interior on the ThreadPool exactly as the stop-the-world path does;
//   - submit keeps admitting into the new active generation while the
//     frozen one drains, blocking only when the active generation
//     reaches the high watermark before the drain completes (the
//     backpressure rule).
//
// The drain is the ONLY mutator of the aggregate while in flight; intake
// touches driver-owned buffers only.  Control operations (start_cp,
// wait_idle, snapshot ops) quiesce the drain first and must come from
// one thread; submit() is thread-safe and may be called from many.
//
// Determinism: freeze captures exactly the blocks submitted so far, in
// submission order, so a scripted workload produces byte-identical media
// and stats to running ConsistencyPoint::run() over the same batches —
// the oracle in tests/wafl/test_cp_determinism.cpp checks this at
// several worker counts.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "wafl/consistency_point.hpp"

namespace wafl {

class ThreadPool;

struct OverlappedCpConfig {
  /// Backpressure: submit() blocks once the active generation holds this
  /// many dirty blocks while a drain is in flight.  With no drain in
  /// flight intake is never blocked (the caller decides when to CP).
  std::uint64_t dirty_high_watermark = 128 * 1024;
  /// When non-zero, submit() starts a CP itself once the active
  /// generation reaches this many blocks and no drain is in flight.
  std::uint64_t auto_cp_trigger = 0;
};

/// Cumulative driver counters (monotonic; snapshot via stats()).
struct OverlapStats {
  std::uint64_t cps_started = 0;
  std::uint64_t cps_completed = 0;
  std::uint64_t blocks_admitted = 0;
  /// submit() calls that hit the backpressure rule.
  std::uint64_t submit_stalls = 0;
  /// Wall time submit() spent blocked on backpressure (always during a
  /// drain — that is the only time the rule applies).
  std::uint64_t stall_ns = 0;
  /// Total frozen-generation drain wall time.
  std::uint64_t drain_ns = 0;
  /// Total generation-swap (freeze) wall time.
  std::uint64_t freeze_ns = 0;
  /// Sum of gaps from one drain's completion to the next drain's launch
  /// (back-to-back CPs make this the freeze cost plus scheduling).
  std::uint64_t gap_ns = 0;
  /// CpStats accumulated over every completed CP.
  CpStats cp;

  /// Fraction of drain wall time during which intake was admissible
  /// (not blocked by backpressure): 1 - stall/drain.  Stop-the-world
  /// intake would score 0; full overlap scores 1.
  double overlap_fraction() const noexcept {
    if (drain_ns == 0) return 1.0;
    const double stalled =
        stall_ns > drain_ns ? 1.0
                            : static_cast<double>(stall_ns) /
                                  static_cast<double>(drain_ns);
    return 1.0 - stalled;
  }
};

class OverlappedCpDriver {
 public:
  OverlappedCpDriver(Aggregate& agg, ThreadPool* pool = nullptr,
                     OverlappedCpConfig cfg = {});
  /// Joins any in-flight drain.  A drain error nobody collected via
  /// wait_idle()/start_cp() is dropped here (destructors cannot throw);
  /// call wait_idle() first when the error matters.
  ~OverlappedCpDriver();

  OverlappedCpDriver(const OverlappedCpDriver&) = delete;
  OverlappedCpDriver& operator=(const OverlappedCpDriver&) = delete;

  // --- Intake (thread-safe) -------------------------------------------------

  /// Admits one dirty block into the active generation, coalescing with
  /// any unfrozen earlier write to the same (vol, logical).  Blocks on
  /// the backpressure rule.
  void submit(VolumeId vol, std::uint64_t logical) {
    const DirtyBlock b{vol, logical};
    submit(std::span<const DirtyBlock>(&b, 1));
  }
  /// Batch intake; one cp.intake span per call.
  void submit(std::span<const DirtyBlock> blocks);

  // --- Control (single-threaded, quiesce the drain) -------------------------

  /// Freezes the active generation and launches its drain asynchronously.
  /// Waits for any prior drain first (back-to-back CPs: at most one in
  /// flight), rethrowing its error if it failed.  No-op dirty lists are
  /// allowed (an empty CP still runs — snapshot debt may be pending).
  void start_cp();

  /// Waits for the in-flight drain (if any) and rethrows its error.
  void wait_idle();

  bool drain_in_flight() const;

  /// Snapshot ops route through the driver so they order against the
  /// generation swap: they quiesce the drain, apply, and the staged
  /// frees fold at the NEXT freeze (identical to the stop-the-world
  /// ordering).
  SnapId create_snapshot(VolumeId vol);
  void delete_snapshot(VolumeId vol, SnapId id);

  // --- Introspection --------------------------------------------------------

  /// Dirty blocks currently in the active generation.
  std::uint64_t active_dirty() const;
  OverlapStats stats() const;
  const OverlappedCpConfig& config() const noexcept { return cfg_; }

 private:
  /// Waits for the drain under `lk` and rethrows a pending drain error.
  void quiesce_locked(std::unique_lock<std::mutex>& lk);
  /// Freezes + launches the drain; requires no drain in flight.
  void launch_cp_locked(std::unique_lock<std::mutex>& lk);
  void drain_main(ConsistencyPoint::Frozen frozen);

  Aggregate& agg_;
  ThreadPool* pool_;
  OverlappedCpConfig cfg_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  /// Active generation: submission-ordered dirty list plus a per-volume
  /// seen-flag vector that coalesces re-dirtied blocks.  Swapped out at
  /// freeze; flags are cleared by walking the list (O(dirty), not
  /// O(volume size)).
  std::vector<DirtyBlock> dirty_;
  std::vector<std::vector<bool>> seen_;

  bool drain_in_flight_ = false;
  std::thread drain_thread_;
  std::exception_ptr drain_error_;
  std::uint64_t last_drain_end_ns_ = 0;

  OverlapStats stats_;
};

}  // namespace wafl
