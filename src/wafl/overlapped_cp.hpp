// Overlapped back-to-back consistency points (DESIGN.md §13) with a
// sharded concurrent intake front end (DESIGN.md §14).
//
// Real WAFL never stops the world: it admits the next CP's writes while
// the previous CP drains to media, which is what keeps client latency
// flat as load approaches the knee (§2).  This driver supplies that
// behaviour over the generation split, and — since the front-end rework —
// lets N client threads admit writes simultaneously:
//
//   - intake (submit) fills the ACTIVE generation across `intake_shards`
//     independent shards.  A submitting thread takes only its shard's
//     lock; cross-shard coalescing of re-dirtied (vol, logical) blocks
//     goes through a per-volume AtomicClaimBitmap — racing writers CAS
//     for the claim and exactly one appends the block to its shard's
//     dirty list.  Each shard also holds an advisory lease on a
//     contiguous AA run (IntakeLeases) reserved bump-pointer style, the
//     Blelloch & Wei constant-time shape;
//   - start_cp() freezes: with every shard lock held (shard-id order),
//     leases are drained and re-armed from the AA caches' top picks and
//     the shards fold into one batch in shard-id order — the canonical
//     fold order.  ConsistencyPoint::freeze() then swaps the active
//     generation into the FROZEN one (cheap, no media I/O) and the
//     phased drain is launched on a drain executor (the runtime's shared
//     one, or a lazily owned single-thread executor);
//   - submit keeps admitting into the new active generation while the
//     frozen one drains, blocking only when the active generation
//     reaches the high watermark before the drain completes (the
//     backpressure rule, checked BEFORE the shard lock so a stalled
//     writer never blocks the freeze).
//
// Lock order: mu_ (control) before shard locks; shard locks in shard-id
// order; never mu_ while holding a shard lock.  The drain is the ONLY
// mutator of the aggregate while in flight; intake touches driver-owned
// buffers only.  Control operations (start_cp, wait_idle, snapshot ops)
// quiesce the drain first and must come from one thread; submit() /
// submit_to_shard() are thread-safe and may be called from many.
//
// Determinism under contention: a shard's dirty list is in claim-winner
// program order, the freeze folds shards 0..S-1, and the CP's stable
// sort by volume runs on that canonical sequence.  Routing is the only
// interleaving-dependent input — so a workload that fixes its routing
// (submit_to_shard with a content-keyed shard) produces byte-identical
// media and stats at ANY writer count, which
// CpDeterminism.ConcurrentIntakeMatchesSerial checks at T=1/2/4/8.
// Leases never feed the CP (advisory, score-neutral), so they cannot
// perturb this; a lease lost to a crash is blocks never allocated.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "util/atomic_bitmap.hpp"
#include "wafl/consistency_point.hpp"
#include "wafl/intake.hpp"
#include "wafl/runtime.hpp"

namespace wafl {

class ThreadPool;

struct OverlappedCpConfig {
  /// Backpressure: submit() blocks once the active generation holds this
  /// many dirty blocks while a drain is in flight.  With no drain in
  /// flight intake is never blocked (the caller decides when to CP).
  std::uint64_t dirty_high_watermark = 128 * 1024;
  /// When non-zero, submit() starts a CP itself once the active
  /// generation reaches this many blocks and no drain is in flight.
  std::uint64_t auto_cp_trigger = 0;
  /// Intake shards.  Submitting threads spread round-robin across shards
  /// and contend only within one; the freeze folds all shards in id
  /// order.  1 reproduces the single-list driver exactly.
  std::size_t intake_shards = 8;
  /// AA runs per RAID group offered to the lease re-arm at each freeze
  /// (const top-k heap reads; 0 disables leasing).
  std::size_t lease_aas_per_group = 2;
};

/// Cumulative driver counters (monotonic; snapshot via stats()).
struct OverlapStats {
  std::uint64_t cps_started = 0;
  std::uint64_t cps_completed = 0;
  /// Raw submitted blocks, including ones coalesced away.
  std::uint64_t blocks_admitted = 0;
  /// Submitted blocks dropped as re-dirties of an active-generation block
  /// (claim lost — some shard already holds the (vol, logical)).
  std::uint64_t blocks_coalesced = 0;
  /// submit() calls that hit the backpressure rule.
  std::uint64_t submit_stalls = 0;
  /// Wall time submit() spent blocked on backpressure (always during a
  /// drain — that is the only time the rule applies).
  std::uint64_t stall_ns = 0;
  /// Total frozen-generation drain wall time.
  std::uint64_t drain_ns = 0;
  /// Total generation-swap (freeze) wall time.
  std::uint64_t freeze_ns = 0;
  /// Sum of gaps from one drain's completion to the next drain's launch
  /// (back-to-back CPs make this the freeze cost plus scheduling).
  std::uint64_t gap_ns = 0;
  /// Advisory-lease accounting (DESIGN.md §14): batches served from a
  /// shard's leased run vs. falling through, and blocks granted.
  std::uint64_t lease_hits = 0;
  std::uint64_t lease_misses = 0;
  std::uint64_t lease_blocks_reserved = 0;
  /// CpStats accumulated over every completed CP.
  CpStats cp;

  /// Fraction of drain wall time during which intake was admissible
  /// (not blocked by backpressure): 1 - stall/drain.  Stop-the-world
  /// intake would score 0; full overlap scores 1.
  double overlap_fraction() const noexcept {
    if (drain_ns == 0) return 1.0;
    const double stalled =
        stall_ns > drain_ns ? 1.0
                            : static_cast<double>(stall_ns) /
                                  static_cast<double>(drain_ns);
    return 1.0 - stalled;
  }
};

class OverlappedCpDriver {
 public:
  /// Drains run on the aggregate runtime's DrainExecutor; a runtime
  /// without one gets a lazily owned single-thread executor, which
  /// reproduces the old dedicated-drain-thread behaviour.  Drains must
  /// NOT run as ThreadPool tasks: a drain occupying a pool worker would
  /// deadlock waiting for its own parallel_for parts (the drain-executor
  /// rule, DESIGN.md §16).  CP fan-out rides the runtime's pool.
  explicit OverlappedCpDriver(Aggregate& agg, OverlappedCpConfig cfg = {});
  /// Waits for any in-flight drain.  A drain error nobody collected via
  /// wait_idle()/start_cp() is dropped here (destructors cannot throw);
  /// call wait_idle() first when the error matters.
  ~OverlappedCpDriver();

  OverlappedCpDriver(const OverlappedCpDriver&) = delete;
  OverlappedCpDriver& operator=(const OverlappedCpDriver&) = delete;

  // --- Intake (thread-safe, any number of threads) --------------------------

  /// Admits one dirty block into the active generation, coalescing with
  /// any unfrozen earlier write to the same (vol, logical).  Blocks on
  /// the backpressure rule.
  void submit(VolumeId vol, std::uint64_t logical) {
    const DirtyBlock b{vol, logical};
    submit(std::span<const DirtyBlock>(&b, 1));
  }
  /// Batch intake into the calling thread's home shard (threads spread
  /// round-robin); one cp.intake span per call.
  void submit(std::span<const DirtyBlock> blocks);
  /// Batch intake into an explicit shard — for callers that key routing
  /// by content so the per-shard sequences (and hence the CP) are
  /// invariant across writer counts.
  void submit_to_shard(std::size_t shard, std::span<const DirtyBlock> blocks);

  // --- Control (single-threaded, quiesce the drain) -------------------------

  /// Freezes the active generation and launches its drain asynchronously.
  /// Waits for any prior drain first (back-to-back CPs: at most one in
  /// flight), rethrowing its error if it failed.  No-op dirty lists are
  /// allowed (an empty CP still runs — snapshot debt may be pending).
  void start_cp();

  /// Waits for the in-flight drain (if any) and rethrows its error.
  void wait_idle();

  bool drain_in_flight() const;

  /// Snapshot ops route through the driver so they order against the
  /// generation swap: they quiesce the drain, apply, and the staged
  /// frees fold at the NEXT freeze (identical to the stop-the-world
  /// ordering).
  SnapId create_snapshot(VolumeId vol);
  void delete_snapshot(VolumeId vol, SnapId id);

  // --- Introspection --------------------------------------------------------

  /// Dirty blocks currently in the active generation (all shards).
  std::uint64_t active_dirty() const;
  OverlapStats stats() const;
  const OverlappedCpConfig& config() const noexcept { return cfg_; }
  std::size_t intake_shards() const noexcept { return shards_.size(); }

 private:
  /// One intake shard: its lock, its slice of the active generation in
  /// claim-winner order, and its counters (folded into stats_ at freeze
  /// for the cumulative ones, summed live by stats()).  Cache-line
  /// isolated so shard locks never false-share.
  struct alignas(64) Shard {
    std::mutex mu;
    std::vector<DirtyBlock> dirty;
    std::uint64_t coalesced = 0;
    std::uint64_t lease_hits = 0;
    std::uint64_t lease_misses = 0;
    std::uint64_t lease_blocks = 0;
    obs::Counter* admitted_metric = nullptr;
    obs::Counter* coalesced_metric = nullptr;
    obs::Counter* lease_hit_metric = nullptr;
    obs::Counter* lease_miss_metric = nullptr;
  };

  /// The calling thread's home shard for this driver (round-robin
  /// assigned on first submit).
  std::size_t home_shard();

  /// Blocks until the backpressure rule admits intake.  Called before
  /// taking any shard lock (a stalled writer must not block the freeze).
  void backpressure_wait();

  /// Waits for the drain under `lk` and rethrows a pending drain error.
  void quiesce_locked(std::unique_lock<std::mutex>& lk);
  /// Freezes + launches the drain; requires no drain in flight.
  void launch_cp_locked(std::unique_lock<std::mutex>& lk);
  void drain_main(ConsistencyPoint::Frozen frozen);

  Aggregate& agg_;
  OverlappedCpConfig cfg_;
  /// Where drain_main runs.  Points at the runtime's executor, or at
  /// owned_exec_ when the runtime has none.
  DrainExecutor* drain_exec_;
  std::unique_ptr<DrainExecutor> owned_exec_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  /// Intake shards plus the cross-shard coalescing claims: one claim bit
  /// per (volume, logical).  A claim is set by the winning submitter and
  /// cleared entry-by-entry during the freeze fold (O(dirty), with every
  /// shard lock held).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<AtomicClaimBitmap> claims_;
  IntakeLeases leases_;

  /// Dirty blocks across all shards (claim winners only) — the
  /// backpressure/auto-trigger gauge, updated outside the shard locks.
  std::atomic<std::uint64_t> active_count_{0};
  /// Raw submitted blocks (OverlapStats::blocks_admitted).
  std::atomic<std::uint64_t> admitted_total_{0};
  /// Generation ordinal for intake-side spans (OverlapStats::cps_started
  /// is authoritative, under mu_; this mirror is read lock-free).
  std::atomic<std::uint64_t> generation_{0};

  /// True from launch until drain_main's last act (clear + notify under
  /// mu_); the destructor and quiesce wait on it, so a drain job never
  /// touches a destroyed driver.
  std::atomic<bool> drain_in_flight_{false};
  std::exception_ptr drain_error_;
  std::uint64_t last_drain_end_ns_ = 0;

  OverlapStats stats_;
};

}  // namespace wafl
