// Segment cleaner: just-in-time free-space defragmentation (§3.3.1).
//
// "WAFL improves AA scores through a process similar to segment cleaning,
//  in which the content of all in-use blocks in an entire allocation area
//  is relocated elsewhere on storage in order to generate completely empty
//  AAs.  Each AA near the top of the max-heap goes through this cleaning
//  process once, thereby ensuring a small pool of cleaned AAs.  Cleaning
//  AAs with the best scores implies the relocation of the fewest in-use
//  blocks, so just-in-time cleaning of AAs provided by the AA cache yields
//  the best return on investment."
//
// The cleaner consults each RAID group's max-heap for its best not-yet-
// cleaned AA, relocates that AA's live blocks through the normal write
// allocator (the moves land in OTHER AAs because the source is checked
// out), and rewrites the owning volumes' container maps — virtual VBNs
// and the logical file never change.  The freed source blocks apply at
// the CP boundary, returning the AA to the heap with a perfect score.
//
// Blocks without a registered owner (e.g. seeded by the aging hooks)
// cannot be relocated; an AA containing any is skipped.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "wafl/aggregate.hpp"

namespace wafl {

struct CleanerConfig {
  /// Upper bound on live blocks relocated per run() call (the cleaner's
  /// I/O budget per CP interval).
  std::uint64_t relocation_budget = 16'384;
  /// Cleaned-AA pool target per RAID group: stop cleaning a group once
  /// this many of its AAs are completely empty.
  std::uint32_t empty_pool_target = 4;
  /// Never clean an AA whose free fraction is below this — relocating a
  /// mostly-full AA is a poor return on investment.
  double min_free_fraction = 0.5;
};

struct CleanerReport {
  std::uint64_t aas_cleaned = 0;
  std::uint64_t blocks_relocated = 0;
  std::uint64_t aas_skipped_unowned = 0;
  /// CP counters of the cleaning CP (device time, stripes, ...).
  CpStats cp;
};

class SegmentCleaner {
 public:
  explicit SegmentCleaner(CleanerConfig cfg = {}) : cfg_(cfg) {}

  /// Runs one cleaning pass over every RAID group, as its own CP.  Safe
  /// to interleave with client CPs (call between ConsistencyPoint::run
  /// invocations).
  CleanerReport run(Aggregate& agg);

  /// AAs already cleaned once ("each AA ... goes through this cleaning
  /// process once"), per RAID group.
  std::size_t cleaned_count(RaidGroupId rg) const {
    return rg < cleaned_.size() ? cleaned_[rg].size() : 0;
  }

 private:
  /// Relocates every owned live block of `aa` in group `rg`.  Returns the
  /// number of blocks moved, or -1 if the AA contains unowned blocks and
  /// was left untouched.
  std::int64_t clean_one(Aggregate& agg, RaidGroupId rg, AaId aa,
                         CpStats& stats);

  CleanerConfig cfg_;
  std::vector<std::unordered_set<AaId>> cleaned_;
};

}  // namespace wafl
