// Allocation-area selection policy.
//
// The paper's evaluation (§4.1) compares the AA caches against a baseline
// in which "randomly selected AAs" guide the allocator.  Both FlexVols and
// RAID groups therefore support two policies:
//   - kCache:  consult the AA cache (max-heap or HBPS) for the emptiest AA;
//   - kRandom: pick a random AA that still has free blocks — the disabled-
//     cache baseline of Figure 6.
#pragma once

#include <cstdint>

#include "core/scoreboard.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace wafl {

enum class AaSelectPolicy {
  kCache,
  kRandom,
};

/// Uniformly picks an AA with a nonzero score, excluding `exclude` (the AA
/// a cursor is already filling).  Falls back to a linear scan when random
/// probing keeps missing (nearly full file system).  Returns kInvalidAaId
/// when no AA has free space.
AaId pick_random_nonempty_aa(const AaScoreBoard& board, Rng& rng,
                             AaId exclude = kInvalidAaId);

}  // namespace wafl
