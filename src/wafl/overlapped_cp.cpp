#include "wafl/overlapped_cp.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "fault/crash_point.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace wafl {

OverlappedCpDriver::OverlappedCpDriver(Aggregate& agg, OverlappedCpConfig cfg)
    : agg_(agg),
      cfg_(cfg),
      drain_exec_(agg.runtime().drain_executor()),
      leases_(std::max<std::size_t>(1, cfg.intake_shards)) {
  WAFL_ASSERT(cfg_.dirty_high_watermark > 0);
  WAFL_ASSERT(cfg_.intake_shards > 0);
  if (drain_exec_ == nullptr) {
    // No shared executor in the runtime: own a single drain thread — the
    // old dedicated-thread behaviour, one driver at a time.
    owned_exec_ = std::make_unique<DrainExecutor>(1);
    drain_exec_ = owned_exec_.get();
  }
  const Runtime& rt = agg.runtime();
  shards_.reserve(cfg_.intake_shards);
  for (std::size_t s = 0; s < cfg_.intake_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
    WAFL_OBS({
      obs::Registry& reg = rt.registry();
      const std::string label =
          rt.labels("shard=\"" + std::to_string(s) + "\"");
      Shard& sh = *shards_.back();
      sh.admitted_metric = &reg.counter("wafl.cp.intake_admitted", label);
      sh.coalesced_metric = &reg.counter("wafl.cp.intake_coalesced", label);
      sh.lease_hit_metric = &reg.counter("wafl.cp.lease_hits", label);
      sh.lease_miss_metric = &reg.counter("wafl.cp.lease_misses", label);
    });
  }
  claims_.reserve(agg_.volume_count());
  for (VolumeId v = 0; v < agg_.volume_count(); ++v) {
    claims_.emplace_back(agg_.volume(v).file_blocks());
  }
}

OverlappedCpDriver::~OverlappedCpDriver() {
  // Wait out any in-flight drain: its job captured `this`, and on a
  // shared executor we cannot join a thread to make it finish — the wait
  // on drain_in_flight_ is the ownership boundary.  drain_main touches no
  // member after clearing the flag (it notifies under mu_ first).
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] {
    return !drain_in_flight_.load(std::memory_order_relaxed);
  });
  // A pending drain_error_ dies with us — see the header contract.
}

std::size_t OverlappedCpDriver::home_shard() {
  // Round-robin thread->shard assignment, sticky per (thread, driver).
  static std::atomic<std::size_t> rr{0};
  thread_local const OverlappedCpDriver* cached_driver = nullptr;
  thread_local std::size_t cached_shard = 0;
  if (cached_driver != this) {
    cached_driver = this;
    cached_shard = rr.fetch_add(1, std::memory_order_relaxed) % shards_.size();
  }
  return cached_shard;
}

void OverlappedCpDriver::backpressure_wait() {
  // Fast path: two relaxed-ish loads.  The rule only applies while a
  // drain is in flight, so overshoot past the watermark by concurrent
  // racers is bounded by one batch per writer — the watermark is a
  // throttle, not a hard capacity.
  if (!drain_in_flight_.load(std::memory_order_acquire) ||
      active_count_.load(std::memory_order_relaxed) <
          cfg_.dirty_high_watermark) {
    return;
  }
  std::unique_lock<std::mutex> lk(mu_);
  if (!drain_in_flight_.load(std::memory_order_relaxed) ||
      active_count_.load(std::memory_order_relaxed) <
          cfg_.dirty_high_watermark) {
    return;
  }
  ++stats_.submit_stalls;
  obs::TraceSpan stall_span(obs::SpanKind::kCpStall,
                            generation_.load(std::memory_order_relaxed),
                            active_count_.load(std::memory_order_relaxed));
  const std::uint64_t t0 = obs::monotonic_ns();
  cv_.wait(lk, [this] {
    return !drain_in_flight_.load(std::memory_order_relaxed) ||
           active_count_.load(std::memory_order_relaxed) <
               cfg_.dirty_high_watermark;
  });
  stats_.stall_ns += obs::monotonic_ns() - t0;
}

void OverlappedCpDriver::submit(std::span<const DirtyBlock> blocks) {
  submit_to_shard(home_shard(), blocks);
}

void OverlappedCpDriver::submit_to_shard(std::size_t shard,
                                         std::span<const DirtyBlock> blocks) {
  WAFL_ASSERT(shard < shards_.size());
  obs::TraceSpan intake_span(obs::SpanKind::kCpIntake,
                             generation_.load(std::memory_order_relaxed),
                             blocks.size());
  // Backpressure BEFORE the shard lock: a stalled writer holding its
  // shard's lock would deadlock the freeze (which takes every shard lock
  // while the stall can only clear after the NEXT freeze).
  backpressure_wait();
  Shard& sh = *shards_[shard];
  std::uint64_t added = 0;
  {
    std::lock_guard<std::mutex> sl(sh.mu);
    for (const DirtyBlock& b : blocks) {
      WAFL_ASSERT(b.vol < claims_.size());
      WAFL_ASSERT(b.logical < claims_[b.vol].size_bits());
      if (!claims_[b.vol].try_claim(b.logical)) {
        ++sh.coalesced;  // re-dirty: some shard already holds it
        continue;
      }
      sh.dirty.push_back(b);
      ++added;
    }
    if (added != 0 && cfg_.lease_aas_per_group != 0) {
      // Advisory contiguous-run reservation (one fetch_add; see
      // intake.hpp).  Inside the shard lock so the freeze's all-locks
      // window never races a reserve.
      const LeaseGrant g = leases_.reserve(shard, added);
      if (g.hit) {
        ++sh.lease_hits;
        sh.lease_blocks += g.len;
      } else {
        ++sh.lease_misses;
      }
      WAFL_OBS({
        if (sh.lease_hit_metric != nullptr) {
          (g.hit ? sh.lease_hit_metric : sh.lease_miss_metric)->inc();
        }
      });
    }
    WAFL_OBS({
      if (sh.admitted_metric != nullptr) {
        sh.admitted_metric->add(added);
        sh.coalesced_metric->add(blocks.size() - added);
      }
    });
  }
  if (added != 0) {
    active_count_.fetch_add(added, std::memory_order_relaxed);
  }
  admitted_total_.fetch_add(blocks.size(), std::memory_order_relaxed);

  if (cfg_.auto_cp_trigger != 0 &&
      !drain_in_flight_.load(std::memory_order_acquire) &&
      active_count_.load(std::memory_order_relaxed) >= cfg_.auto_cp_trigger) {
    std::unique_lock<std::mutex> lk(mu_);
    // Re-check under mu_: a racing submitter may have launched already.
    if (!drain_in_flight_.load(std::memory_order_relaxed) &&
        active_count_.load(std::memory_order_relaxed) >=
            cfg_.auto_cp_trigger) {
      launch_cp_locked(lk);
    }
  }
}

void OverlappedCpDriver::quiesce_locked(std::unique_lock<std::mutex>& lk) {
  cv_.wait(lk,
           [this] { return !drain_in_flight_.load(std::memory_order_relaxed); });
  if (drain_error_ != nullptr) {
    std::exception_ptr err = std::exchange(drain_error_, nullptr);
    std::rethrow_exception(err);
  }
}

void OverlappedCpDriver::start_cp() {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  launch_cp_locked(lk);
}

void OverlappedCpDriver::launch_cp_locked(std::unique_lock<std::mutex>& lk) {
  WAFL_ASSERT(!drain_in_flight_.load(std::memory_order_relaxed));

  std::vector<DirtyBlock> batch;
  {
    // The freeze window: every shard lock in shard-id order (after mu_ —
    // the one place both levels are held).  No writer is mid-claim, so
    // the claim bits and the shard lists agree exactly.
    std::vector<std::unique_lock<std::mutex>> shard_locks;
    shard_locks.reserve(shards_.size());
    for (auto& sh : shards_) shard_locks.emplace_back(sh->mu);

    WAFL_CRASH_POINT_RT(agg_.runtime(), "cp.in_lease_drain");

    // Drain + re-arm the advisory leases from the AA caches' current top
    // picks (const heap reads — no drain is in flight).  A crash past
    // this point loses only leases and unfrozen intake: blocks that were
    // never allocated.
    {
      obs::TraceSpan lease_span(obs::SpanKind::kCpLeaseDrain,
                                stats_.cps_started, 0);
      std::vector<LeaseRegion> regions;
      if (cfg_.lease_aas_per_group != 0) {
        regions = agg_.lease_regions(cfg_.lease_aas_per_group);
      }
      std::uint64_t lease_used = 0;
      for (const LeaseDrain& d : leases_.drain_and_rearm(regions)) {
        lease_used += d.used;
      }
      lease_span.set_b(lease_used);
    }

    // Fold shards 0..S-1 — the canonical order — into one batch,
    // releasing each entry's coalescing claim.  O(dirty) total, however
    // many writers raced: claims clear entry-by-entry, never by scan.
    std::uint64_t total = 0;
    for (const auto& sh : shards_) total += sh->dirty.size();
    batch.reserve(total);
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      for (const DirtyBlock& b : sh.dirty) {
        claims_[b.vol].clear(b.logical);
        batch.push_back(b);
      }
      sh.dirty.clear();
      stats_.blocks_coalesced += std::exchange(sh.coalesced, 0);
      stats_.lease_hits += std::exchange(sh.lease_hits, 0);
      stats_.lease_misses += std::exchange(sh.lease_misses, 0);
      stats_.lease_blocks_reserved += std::exchange(sh.lease_blocks, 0);
    }
    active_count_.store(0, std::memory_order_relaxed);
  }

  ++stats_.cps_started;
  generation_.fetch_add(1, std::memory_order_relaxed);
  drain_in_flight_.store(true, std::memory_order_release);
  lk.unlock();

  const std::uint64_t freeze_t0 = obs::monotonic_ns();
  ConsistencyPoint::Frozen frozen;
  try {
    frozen = ConsistencyPoint::freeze(agg_, batch);
  } catch (...) {
    std::unique_lock<std::mutex> relk(mu_);
    drain_in_flight_.store(false, std::memory_order_release);
    --stats_.cps_started;
    generation_.fetch_sub(1, std::memory_order_relaxed);
    cv_.notify_all();
    throw;
  }
  {
    std::unique_lock<std::mutex> relk(mu_);
    stats_.freeze_ns += obs::monotonic_ns() - freeze_t0;
  }
  drain_exec_->submit(
      [this, f = std::move(frozen)]() mutable { drain_main(std::move(f)); });
  lk.lock();
}

void OverlappedCpDriver::drain_main(ConsistencyPoint::Frozen frozen) {
  const std::uint64_t t0 = obs::monotonic_ns();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (last_drain_end_ns_ != 0) {
      stats_.gap_ns += t0 - last_drain_end_ns_;
    }
  }
  CpStats cp;
  std::exception_ptr err;
  try {
    cp = ConsistencyPoint::drain(agg_, std::move(frozen));
  } catch (...) {
    err = std::current_exception();
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  // Last act: publish results, clear the flag, notify — all under mu_,
  // touching no member afterwards (the destructor may be waiting).
  std::unique_lock<std::mutex> lk(mu_);
  stats_.drain_ns += t1 - t0;
  last_drain_end_ns_ = t1;
  if (err != nullptr) {
    drain_error_ = err;
  } else {
    ++stats_.cps_completed;
    stats_.cp.merge(cp);
  }
  drain_in_flight_.store(false, std::memory_order_release);
  cv_.notify_all();
}

void OverlappedCpDriver::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
}

bool OverlappedCpDriver::drain_in_flight() const {
  return drain_in_flight_.load(std::memory_order_acquire);
}

SnapId OverlappedCpDriver::create_snapshot(VolumeId vol) {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  return agg_.volume(vol).create_snapshot();
}

void OverlappedCpDriver::delete_snapshot(VolumeId vol, SnapId id) {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  // Stages active-ledger frees; they fold at the next freeze, exactly
  // where a stop-the-world workload's deletion would fold.
  agg_.volume(vol).delete_snapshot(id);
}

std::uint64_t OverlappedCpDriver::active_dirty() const {
  return active_count_.load(std::memory_order_acquire);
}

OverlapStats OverlappedCpDriver::stats() const {
  std::unique_lock<std::mutex> lk(mu_);
  OverlapStats out = stats_;
  out.blocks_admitted = admitted_total_.load(std::memory_order_relaxed);
  // Live (not-yet-folded) shard counters; mu_ is held, so the shard-lock
  // acquisition order matches the freeze path's.
  for (const auto& shp : shards_) {
    std::lock_guard<std::mutex> sl(shp->mu);
    out.blocks_coalesced += shp->coalesced;
    out.lease_hits += shp->lease_hits;
    out.lease_misses += shp->lease_misses;
    out.lease_blocks_reserved += shp->lease_blocks;
  }
  return out;
}

}  // namespace wafl
