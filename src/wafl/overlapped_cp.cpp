#include "wafl/overlapped_cp.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace wafl {

OverlappedCpDriver::OverlappedCpDriver(Aggregate& agg, ThreadPool* pool,
                                       OverlappedCpConfig cfg)
    : agg_(agg), pool_(pool), cfg_(cfg) {
  WAFL_ASSERT(cfg_.dirty_high_watermark > 0);
  seen_.resize(agg_.volume_count());
  for (VolumeId v = 0; v < agg_.volume_count(); ++v) {
    seen_[v].assign(agg_.volume(v).file_blocks(), false);
  }
}

OverlappedCpDriver::~OverlappedCpDriver() {
  if (drain_thread_.joinable()) {
    drain_thread_.join();
  }
  // A pending drain_error_ dies with us — see the header contract.
}

void OverlappedCpDriver::submit(std::span<const DirtyBlock> blocks) {
  std::unique_lock<std::mutex> lk(mu_);
  obs::TraceSpan intake_span(obs::SpanKind::kCpIntake, stats_.cps_started,
                             blocks.size());
  if (drain_in_flight_ && dirty_.size() >= cfg_.dirty_high_watermark) {
    // Backpressure: the active generation is full and can only shrink
    // when the frozen drain completes and a freeze swaps us out.
    ++stats_.submit_stalls;
    obs::TraceSpan stall_span(obs::SpanKind::kCpStall, stats_.cps_started,
                              dirty_.size());
    const std::uint64_t t0 = obs::monotonic_ns();
    cv_.wait(lk, [this] {
      return !drain_in_flight_ || dirty_.size() < cfg_.dirty_high_watermark;
    });
    stats_.stall_ns += obs::monotonic_ns() - t0;
  }
  for (const DirtyBlock& b : blocks) {
    WAFL_ASSERT(b.vol < seen_.size());
    WAFL_ASSERT(b.logical < seen_[b.vol].size());
    if (seen_[b.vol][b.logical]) continue;  // coalesce re-dirty
    seen_[b.vol][b.logical] = true;
    dirty_.push_back(b);
  }
  stats_.blocks_admitted += blocks.size();
  if (cfg_.auto_cp_trigger != 0 && !drain_in_flight_ &&
      dirty_.size() >= cfg_.auto_cp_trigger) {
    launch_cp_locked(lk);
  }
}

void OverlappedCpDriver::quiesce_locked(std::unique_lock<std::mutex>& lk) {
  cv_.wait(lk, [this] { return !drain_in_flight_; });
  if (drain_error_ != nullptr) {
    std::exception_ptr err = std::exchange(drain_error_, nullptr);
    if (drain_thread_.joinable()) drain_thread_.join();
    std::rethrow_exception(err);
  }
}

void OverlappedCpDriver::start_cp() {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  launch_cp_locked(lk);
}

void OverlappedCpDriver::launch_cp_locked(std::unique_lock<std::mutex>& lk) {
  WAFL_ASSERT(!drain_in_flight_);
  // Reap the previous drain thread before starting the next.
  if (drain_thread_.joinable()) drain_thread_.join();

  // Swap the active generation out under the lock (concurrent submits
  // now build the next one); the aggregate-side swap below runs unlocked
  // — no drain is in flight and intake never touches the aggregate.
  std::vector<DirtyBlock> batch;
  batch.swap(dirty_);
  for (const DirtyBlock& b : batch) {
    seen_[b.vol][b.logical] = false;
  }
  ++stats_.cps_started;
  drain_in_flight_ = true;
  lk.unlock();

  const std::uint64_t freeze_t0 = obs::monotonic_ns();
  ConsistencyPoint::Frozen frozen;
  try {
    frozen = ConsistencyPoint::freeze(agg_, batch);
  } catch (...) {
    std::unique_lock<std::mutex> relk(mu_);
    drain_in_flight_ = false;
    --stats_.cps_started;
    cv_.notify_all();
    throw;
  }
  {
    std::unique_lock<std::mutex> relk(mu_);
    stats_.freeze_ns += obs::monotonic_ns() - freeze_t0;
  }
  drain_thread_ = std::thread(
      [this, f = std::move(frozen)]() mutable { drain_main(std::move(f)); });
  lk.lock();
}

void OverlappedCpDriver::drain_main(ConsistencyPoint::Frozen frozen) {
  const std::uint64_t t0 = obs::monotonic_ns();
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (last_drain_end_ns_ != 0) {
      stats_.gap_ns += t0 - last_drain_end_ns_;
    }
  }
  CpStats cp;
  std::exception_ptr err;
  try {
    cp = ConsistencyPoint::drain(agg_, std::move(frozen), pool_);
  } catch (...) {
    err = std::current_exception();
  }
  const std::uint64_t t1 = obs::monotonic_ns();
  std::unique_lock<std::mutex> lk(mu_);
  stats_.drain_ns += t1 - t0;
  last_drain_end_ns_ = t1;
  if (err != nullptr) {
    drain_error_ = err;
  } else {
    ++stats_.cps_completed;
    stats_.cp.merge(cp);
  }
  drain_in_flight_ = false;
  cv_.notify_all();
}

void OverlappedCpDriver::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  if (drain_thread_.joinable()) drain_thread_.join();
}

bool OverlappedCpDriver::drain_in_flight() const {
  std::unique_lock<std::mutex> lk(mu_);
  return drain_in_flight_;
}

SnapId OverlappedCpDriver::create_snapshot(VolumeId vol) {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  return agg_.volume(vol).create_snapshot();
}

void OverlappedCpDriver::delete_snapshot(VolumeId vol, SnapId id) {
  std::unique_lock<std::mutex> lk(mu_);
  quiesce_locked(lk);
  // Stages active-ledger frees; they fold at the next freeze, exactly
  // where a stop-the-world workload's deletion would fold.
  agg_.volume(vol).delete_snapshot(id);
}

std::uint64_t OverlappedCpDriver::active_dirty() const {
  std::unique_lock<std::mutex> lk(mu_);
  return dirty_.size();
}

OverlapStats OverlappedCpDriver::stats() const {
  std::unique_lock<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace wafl
