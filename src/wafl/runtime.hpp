// wafl::Runtime — the per-aggregate execution context (DESIGN.md §16).
//
// Historically every service an aggregate needs was process-global: the
// obs registry, the span collector, the flight recorder, the crash-hook
// registry, and a nullable raw `ThreadPool*` default argument threaded
// ad hoc through the CP, mount, Iron and scan paths.  One process could
// therefore simulate exactly one aggregate: a second instance would alias
// its rg="N"/vol="N" metric labels, share armed crash hooks, and spawn a
// private drain thread per OverlappedCpDriver.
//
// Runtime makes the context explicit.  It is a small copyable value of
// non-owning handles:
//
//   - an obs Registry scope (plus an `agg="<id>"` label dimension merged
//     into every labelled metric the aggregate registers),
//   - a SpanCollector handle (the span *timeline* stays process-wide by
//     design — parent propagation rides the shared ThreadPool's task
//     context, so one fleet produces one coherent timeline; the handle
//     exists so a harness can point dumps at a private collector),
//   - a FlightRecorder, bound to the runtime's registry,
//   - a CrashHooks registry (so a FaultPlan armed on aggregate A cannot
//     fire inside aggregate B — invariants I-A..I-D are per-runtime),
//   - a CpPhaseProfile (per-aggregate phase accounting),
//   - a *shared* ThreadPool handle and a capped DrainExecutor for
//     overlapped-CP drains.
//
// Every handle is nullable; a null handle falls back to the matching
// process-global singleton, so `Runtime{}` (== process_runtime()) is
// byte-for-byte the old behaviour and single-aggregate call sites stay
// source-compatible.  RuntimeBundle owns one full set of per-aggregate
// instances and wires them together — the fleet driver holds one bundle
// per member.
//
// Drain-executor rule: overlapped-CP drains must NEVER run as ThreadPool
// tasks.  A drain occupying a pool worker blocks inside parallel_for
// waiting for its parts — parts that are queued *behind* it; with few
// workers and several draining aggregates that is a deadlock.  Drains
// therefore run on a DrainExecutor: a tiny dedicated-thread executor,
// capped at a fleet-wide thread count, whose workers act as external
// callers into the shared pool (concurrent parallel_for from multiple
// external threads is supported).  A driver whose runtime carries no
// executor lazily owns a single-thread one — exactly the old dedicated
// drain thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fault/crash_point.hpp"
#include "obs/obs.hpp"

namespace wafl {

class ThreadPool;
struct CpPhaseProfile;  // write_allocator.hpp (would be a circular include)

/// Capped executor for overlapped-CP drains (see the drain-executor rule
/// above).  Jobs run FIFO across `threads` dedicated workers; destruction
/// drains the queue, then joins.  Completion signalling stays with the
/// submitter (OverlappedCpDriver's drain_in_flight_ flag) — the executor
/// itself is fire-and-forget, like ThreadPool::submit.
class DrainExecutor {
 public:
  explicit DrainExecutor(std::size_t threads = 1);
  ~DrainExecutor();

  DrainExecutor(const DrainExecutor&) = delete;
  DrainExecutor& operator=(const DrainExecutor&) = delete;

  void submit(std::function<void()> job);
  std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

class Runtime {
 public:
  Runtime() = default;

  // --- Scoped services (null handle => process-global fallback) ----------
  obs::Registry& registry() const {
    return registry_ != nullptr ? *registry_ : obs::registry();
  }
  obs::SpanCollector& spans() const {
    return spans_ != nullptr ? *spans_ : obs::spans();
  }
  obs::FlightRecorder& flight_recorder() const {
    return flight_ != nullptr ? *flight_ : obs::flight_recorder();
  }
  fault::CrashHooks& crash_hooks() const {
    return hooks_ != nullptr ? *hooks_ : fault::crash_hooks();
  }
  /// Per-aggregate phase accounting (out of line: CpPhaseProfile lives in
  /// write_allocator.hpp, which includes this header).
  CpPhaseProfile& cp_phase_profile() const;

  /// The shared worker pool (null: every parallel phase runs serially —
  /// the same code path, bit-identical results).
  ThreadPool* pool() const noexcept { return pool_; }
  /// The fleet drain executor (null: each OverlappedCpDriver lazily owns
  /// a single-thread one).
  DrainExecutor* drain_executor() const noexcept { return drain_exec_; }

  const std::string& agg_id() const noexcept { return agg_id_; }

  /// Merges the runtime's aggregate dimension into a label string:
  /// labels("rg=\"3\"") is `agg="<id>",rg="3"` — and `rg="3"` unchanged
  /// when agg_id is empty, which is what keeps single-aggregate metric
  /// exports byte-stable.
  std::string labels(std::string_view base = {}) const;

  // --- Builder-style wiring ----------------------------------------------
  Runtime& with_agg_id(std::string id) {
    agg_id_ = std::move(id);
    return *this;
  }
  Runtime& with_registry(obs::Registry* r) {
    registry_ = r;
    return *this;
  }
  Runtime& with_spans(obs::SpanCollector* s) {
    spans_ = s;
    return *this;
  }
  Runtime& with_flight_recorder(obs::FlightRecorder* f) {
    flight_ = f;
    return *this;
  }
  Runtime& with_crash_hooks(fault::CrashHooks* h) {
    hooks_ = h;
    return *this;
  }
  Runtime& with_cp_phase_profile(CpPhaseProfile* p) {
    profile_ = p;
    return *this;
  }
  Runtime& with_pool(ThreadPool* p) {
    pool_ = p;
    return *this;
  }
  Runtime& with_drain_executor(DrainExecutor* e) {
    drain_exec_ = e;
    return *this;
  }

 private:
  std::string agg_id_;
  obs::Registry* registry_ = nullptr;
  obs::SpanCollector* spans_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  fault::CrashHooks* hooks_ = nullptr;
  CpPhaseProfile* profile_ = nullptr;
  ThreadPool* pool_ = nullptr;
  DrainExecutor* drain_exec_ = nullptr;
};

/// The process-default context: every handle null, so every service is
/// the matching process-global singleton.  What `Aggregate` uses when
/// constructed without an explicit Runtime.
const Runtime& process_runtime();

/// One aggregate's owned service instances, wired together: the flight
/// recorder snapshots *this* registry, crash hooks count/note into *this*
/// scope.  Non-movable (Runtime values point into it); keep the bundle
/// alive for as long as its aggregate.
struct RuntimeBundle {
  explicit RuntimeBundle(std::string agg_id);
  ~RuntimeBundle();

  RuntimeBundle(const RuntimeBundle&) = delete;
  RuntimeBundle& operator=(const RuntimeBundle&) = delete;

  /// A Runtime over this bundle's services plus the shared execution
  /// handles (either may be null).
  Runtime runtime(ThreadPool* pool, DrainExecutor* exec);

  std::string agg_id;
  obs::Registry registry;
  obs::FlightRecorder flight;
  fault::CrashHooks hooks;
  std::unique_ptr<CpPhaseProfile> profile;
};

}  // namespace wafl

/// A named crash point routed through an explicit Runtime.  Source form of
/// WAFL_CRASH_POINT for code that carries a context — an armed hook in one
/// aggregate's runtime never fires in another's.
#define WAFL_CRASH_POINT_RT(rt, name) ((rt).crash_hooks().hit(name))
