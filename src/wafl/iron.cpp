#include "wafl/iron.hpp"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "obs/obs.hpp"

namespace wafl {
namespace {

/// Recomputes the true top-K (descending score, ascending id on ties) from
/// a freshly scanned scoreboard.
std::vector<AaPick> recompute_top(const AaScoreBoard& board, std::size_t k) {
  std::vector<AaPick> all;
  all.reserve(board.aa_count());
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    all.push_back({aa, board.score(aa)});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const AaPick& a, const AaPick& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.aa < b.aa;
                    });
  all.resize(k);
  return all;
}

/// A persisted heap-form TopAA is acceptable when every entry carries the
/// block's true score and no omitted AA scores strictly higher than the
/// worst persisted entry (ties are interchangeable).
bool raid_aware_content_ok(const std::vector<AaPick>& persisted,
                           const AaScoreBoard& fresh) {
  if (persisted.size() !=
      std::min<std::size_t>(kTopAaRaidAwareEntries, fresh.aa_count())) {
    return false;
  }
  std::unordered_set<AaId> in_file;
  AaScore worst = persisted.empty() ? 0 : persisted.back().score;
  for (const AaPick& p : persisted) {
    if (p.aa >= fresh.aa_count()) return false;
    if (fresh.score(p.aa) != p.score) return false;
    if (!in_file.insert(p.aa).second) return false;  // duplicate entry
  }
  for (AaId aa = 0; aa < fresh.aa_count(); ++aa) {
    if (!in_file.contains(aa) && fresh.score(aa) > worst) {
      return false;  // a better AA was omitted
    }
  }
  return true;
}

/// A persisted HBPS is acceptable when its histogram matches the bin
/// counts recomputed from the bitmaps exactly (the list is, by design,
/// any valid subset of the best bins, so only counts are checkable).
bool raid_agnostic_content_ok(const Hbps& persisted,
                              const AaScoreBoard& fresh) {
  if (persisted.size() != fresh.aa_count()) return false;
  std::vector<std::uint32_t> counts(persisted.bin_count(), 0);
  for (AaId aa = 0; aa < fresh.aa_count(); ++aa) {
    ++counts[persisted.bin_of(std::min(fresh.score(aa),
                                       persisted.config().max_score))];
  }
  for (std::uint32_t b = 0; b < persisted.bin_count(); ++b) {
    if (persisted.histogram_count(b) != counts[b]) return false;
  }
  return true;
}

}  // namespace

IronReport iron_check_topaa(Aggregate& agg) {
  IronReport report;
  obs::TraceSpan span(obs::SpanKind::kIronCheck);

  // --- RAID groups / pools ---------------------------------------------------
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    ++report.rg_checked;
    const AaLayout& layout = agg.rg_layout(rg);
    const AaScoreBoard fresh(layout, agg.activemap().metafile());
    TopAaFile file(agg.topaa_store(), agg.rg_topaa_block(rg));

    bool rewrite = false;
    if (agg.rg_is_raid_agnostic(rg)) {
      auto loaded = file.load_raid_agnostic();
      if (!loaded.has_value()) {
        ++report.rg_unreadable;
        rewrite = true;
      } else if (!raid_agnostic_content_ok(*loaded, fresh)) {
        ++report.rg_stale;
        rewrite = true;
      }
      if (rewrite) {
        Hbps rebuilt(Hbps::Config{
            layout.aa_blocks(),
            std::max<std::uint32_t>(1, layout.aa_blocks() / kHbpsBinCount),
            kHbpsListCapacity});
        rebuilt.build(fresh);
        file.save_raid_agnostic(rebuilt);
      }
    } else {
      const auto loaded = file.load_raid_aware();
      if (!loaded.has_value()) {
        ++report.rg_unreadable;
        rewrite = true;
      } else if (!raid_aware_content_ok(*loaded, fresh)) {
        ++report.rg_stale;
        rewrite = true;
      }
      if (rewrite) {
        file.save_raid_aware(
            recompute_top(fresh, kTopAaRaidAwareEntries));
      }
    }
    if (rewrite) ++report.rg_rewritten;
  }

  // --- Volumes -----------------------------------------------------------------
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    ++report.vol_checked;
    FlexVol& vol = agg.volume(v);
    const AaScoreBoard fresh(vol.layout(), vol.activemap().metafile());
    const std::uint64_t base =
        vol.store().capacity_blocks() - TopAaFile::kRaidAgnosticBlocks;
    TopAaFile file(vol.store(), base);

    bool rewrite = false;
    auto loaded = file.load_raid_agnostic();
    if (!loaded.has_value()) {
      ++report.vol_unreadable;
      rewrite = true;
    } else if (!raid_agnostic_content_ok(*loaded, fresh)) {
      ++report.vol_stale;
      rewrite = true;
    }
    if (rewrite) {
      Hbps rebuilt(Hbps::Config{
          vol.layout().aa_blocks(),
          std::max<std::uint32_t>(1,
                                  vol.layout().aa_blocks() / kHbpsBinCount),
          kHbpsListCapacity});
      rebuilt.build(fresh);
      file.save_raid_agnostic(rebuilt);
      ++report.vol_rewritten;
    }
  }

  WAFL_OBS({
    obs::Registry& reg = obs::registry();
    reg.counter("wafl.iron.runs").inc();
    reg.counter("wafl.iron.rg_unreadable").add(report.rg_unreadable);
    reg.counter("wafl.iron.rg_stale").add(report.rg_stale);
    reg.counter("wafl.iron.vol_unreadable").add(report.vol_unreadable);
    reg.counter("wafl.iron.vol_stale").add(report.vol_stale);
    reg.counter("wafl.iron.rewrites")
        .add(report.rg_rewritten + report.vol_rewritten);
  });
  span.set_b(report.rg_rewritten + report.vol_rewritten);
  return report;
}

}  // namespace wafl
