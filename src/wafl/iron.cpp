#include "wafl/iron.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "fault/crash_point.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

/// Recomputes the true top-K (descending score, ascending id on ties) from
/// a freshly scanned scoreboard.
std::vector<AaPick> recompute_top(const AaScoreBoard& board, std::size_t k) {
  std::vector<AaPick> all;
  all.reserve(board.aa_count());
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    all.push_back({aa, board.score(aa)});
  }
  k = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                    all.end(), [](const AaPick& a, const AaPick& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.aa < b.aa;
                    });
  all.resize(k);
  return all;
}

/// A persisted heap-form TopAA is acceptable when every entry carries the
/// block's true score and no omitted AA scores strictly higher than the
/// worst persisted entry (ties are interchangeable).
bool raid_aware_content_ok(const std::vector<AaPick>& persisted,
                           const AaScoreBoard& fresh) {
  if (persisted.size() !=
      std::min<std::size_t>(kTopAaRaidAwareEntries, fresh.aa_count())) {
    return false;
  }
  std::unordered_set<AaId> in_file;
  AaScore worst = persisted.empty() ? 0 : persisted.back().score;
  for (const AaPick& p : persisted) {
    if (p.aa >= fresh.aa_count()) return false;
    if (fresh.score(p.aa) != p.score) return false;
    if (!in_file.insert(p.aa).second) return false;  // duplicate entry
  }
  for (AaId aa = 0; aa < fresh.aa_count(); ++aa) {
    if (!in_file.contains(aa) && fresh.score(aa) > worst) {
      return false;  // a better AA was omitted
    }
  }
  return true;
}

/// A persisted HBPS is acceptable when its histogram matches the bin
/// counts recomputed from the bitmaps exactly (the list is, by design,
/// any valid subset of the best bins, so only counts are checkable).
bool raid_agnostic_content_ok(const Hbps& persisted,
                              const AaScoreBoard& fresh) {
  if (persisted.size() != fresh.aa_count()) return false;
  std::vector<std::uint32_t> counts(persisted.bin_count(), 0);
  for (AaId aa = 0; aa < fresh.aa_count(); ++aa) {
    ++counts[persisted.bin_of(std::min(fresh.score(aa),
                                       persisted.config().max_score))];
  }
  for (std::uint32_t b = 0; b < persisted.bin_count(); ++b) {
    if (persisted.histogram_count(b) != counts[b]) return false;
  }
  return true;
}

Hbps rebuilt_hbps(const AaLayout& layout, const AaScoreBoard& fresh) {
  Hbps rebuilt(Hbps::Config{
      layout.aa_blocks(),
      std::max<std::uint32_t>(1, layout.aa_blocks() / kHbpsBinCount),
      kHbpsListCapacity});
  rebuilt.build(fresh);
  return rebuilt;
}

/// One checkable unit (RAID group or volume) with its verdict and, when
/// repair is needed, the staged replacement image.  Filled by the
/// (possibly parallel) verify fan-out, consumed by the serial apply —
/// verdicts and images are pure functions of the media, so the unit
/// array's content is worker-count-independent.
struct RepairUnit {
  bool is_vol = false;
  RaidGroupId rg = 0;
  VolumeId vol = 0;
  bool unreadable = false;
  bool stale = false;
  bool rewrite = false;
  bool raid_agnostic = false;
  std::vector<AaPick> picks;   // staged heap-form image
  std::optional<Hbps> hbps;    // staged HBPS-form image
};

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

IronReport iron_check_topaa(Aggregate& agg) {
  IronReport report;
  const Runtime& rt = agg.runtime();
  ThreadPool* pool = rt.pool();
  obs::TraceSpan span(obs::SpanKind::kIronCheck);

  // Units in fixed id order: groups, then volumes.  This order is the
  // serial apply order (and so the media write order) whatever the
  // verify scheduling was.
  std::vector<RepairUnit> units;
  units.reserve(agg.raid_group_count() + agg.volume_count());
  for (RaidGroupId rg = 0; rg < agg.raid_group_count(); ++rg) {
    RepairUnit u;
    u.rg = rg;
    u.raid_agnostic = agg.rg_is_raid_agnostic(rg);
    units.push_back(std::move(u));
  }
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    RepairUnit u;
    u.is_vol = true;
    u.vol = v;
    u.raid_agnostic = true;
    units.push_back(std::move(u));
  }

  // --- Verify fan-out: read, cross-check, stage — never write ------------
  const auto t_verify = std::chrono::steady_clock::now();
  auto verify_one = [&](std::size_t i) {
    RepairUnit& u = units[i];
    if (!u.is_vol) {
      const AaLayout& layout = agg.rg_layout(u.rg);
      const AaScoreBoard fresh(layout, agg.activemap().metafile());
      TopAaFile file(agg.topaa_store(), agg.rg_topaa_block(u.rg));
      if (u.raid_agnostic) {
        const auto loaded = file.load_raid_agnostic();
        if (!loaded.has_value()) {
          u.unreadable = true;
        } else if (!raid_agnostic_content_ok(*loaded, fresh)) {
          u.stale = true;
        }
        u.rewrite = u.unreadable || u.stale;
        if (u.rewrite) u.hbps = rebuilt_hbps(layout, fresh);
      } else {
        const auto loaded = file.load_raid_aware();
        if (!loaded.has_value()) {
          u.unreadable = true;
        } else if (!raid_aware_content_ok(*loaded, fresh)) {
          u.stale = true;
        }
        u.rewrite = u.unreadable || u.stale;
        if (u.rewrite) u.picks = recompute_top(fresh, kTopAaRaidAwareEntries);
      }
    } else {
      FlexVol& vol = agg.volume(u.vol);
      const AaScoreBoard fresh(vol.layout(), vol.activemap().metafile());
      const std::uint64_t base =
          vol.store().capacity_blocks() - TopAaFile::kRaidAgnosticBlocks;
      TopAaFile file(vol.store(), base);
      const auto loaded = file.load_raid_agnostic();
      if (!loaded.has_value()) {
        u.unreadable = true;
      } else if (!raid_agnostic_content_ok(*loaded, fresh)) {
        u.stale = true;
      }
      u.rewrite = u.unreadable || u.stale;
      if (u.rewrite) u.hbps = rebuilt_hbps(vol.layout(), fresh);
    }
    // Fires whatever the verdict: a crash here loses only staged,
    // never-written state, at any point of the fan-out.
    WAFL_CRASH_POINT_RT(rt, "iron.in_parallel_verify");
  };
  if (pool != nullptr && pool->thread_count() > 0 && units.size() > 1) {
    pool->parallel_for_dynamic(0, units.size(), verify_one);
  } else {
    for (std::size_t i = 0; i < units.size(); ++i) verify_one(i);
  }
  report.verify_ms = ms_since(t_verify);

  // --- Serial counter fold ----------------------------------------------
  for (const RepairUnit& u : units) {
    if (!u.is_vol) {
      ++report.rg_checked;
      if (u.unreadable) ++report.rg_unreadable;
      if (u.stale) ++report.rg_stale;
      if (u.rewrite) ++report.rg_rewritten;
    } else {
      ++report.vol_checked;
      if (u.unreadable) ++report.vol_unreadable;
      if (u.stale) ++report.vol_stale;
      if (u.rewrite) ++report.vol_rewritten;
    }
  }

  // --- Serial apply: staged images land in fixed unit order --------------
  const auto t_apply = std::chrono::steady_clock::now();
  for (RepairUnit& u : units) {
    // Fires per unit even when clean, so a crash can land between any
    // two applies — including before the first and after the last.
    WAFL_CRASH_POINT_RT(rt, "iron.in_repair_apply");
    if (!u.rewrite) continue;
    if (!u.is_vol) {
      TopAaFile file(agg.topaa_store(), agg.rg_topaa_block(u.rg));
      if (u.raid_agnostic) {
        file.save_raid_agnostic(*u.hbps);
      } else {
        file.save_raid_aware(u.picks);
      }
    } else {
      FlexVol& vol = agg.volume(u.vol);
      TopAaFile file(vol.store(),
                     vol.store().capacity_blocks() -
                         TopAaFile::kRaidAgnosticBlocks);
      file.save_raid_agnostic(*u.hbps);
    }
  }
  report.apply_ms = ms_since(t_apply);

  WAFL_OBS({
    obs::Registry& reg = rt.registry();
    const std::string l = rt.labels();
    reg.counter("wafl.iron.runs", l).inc();
    reg.counter("wafl.iron.rg_unreadable", l).add(report.rg_unreadable);
    reg.counter("wafl.iron.rg_stale", l).add(report.rg_stale);
    reg.counter("wafl.iron.vol_unreadable", l).add(report.vol_unreadable);
    reg.counter("wafl.iron.vol_stale", l).add(report.vol_stale);
    reg.counter("wafl.iron.rewrites", l)
        .add(report.rg_rewritten + report.vol_rewritten);
  });
  span.set_b(report.rg_rewritten + report.vol_rewritten);
  return report;
}

}  // namespace wafl
