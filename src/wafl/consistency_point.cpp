#include "wafl/consistency_point.hpp"

#include <algorithm>

#include "fault/crash_point.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

/// Handles for the CP-boundary metric fold, resolved per call against the
/// aggregate runtime's registry (a CP is far too coarse for ~20 hash
/// lookups to matter).  The hot allocation loop never touches the
/// registry: per-block accounting rides on CpStats exactly as before, and
/// this fold turns one CP's stats into one batch of counter adds.
struct CpMetrics {
  obs::Counter& count;
  obs::Counter& ops;
  obs::Counter& blocks_written;
  obs::Counter& blocks_freed;
  obs::Counter& vol_meta_blocks;
  obs::Counter& agg_meta_blocks;
  obs::Counter& meta_flush_blocks;
  obs::Counter& tetrises;
  obs::Counter& full_stripes;
  obs::Counter& partial_stripes;
  obs::Counter& parity_read_blocks;
  obs::Counter& write_chains;
  obs::Counter& vol_bits_scanned;
  obs::Counter& agg_bits_scanned;
  // Incremented at the replenish sites themselves (aggregate pools don't
  // route through CpStats); resolved here only so the metric is registered
  // — and therefore exported — from the first CP even if it never fires.
  obs::Counter& hbps_replenishes;
  obs::LogHistogram& storage_time_ns;
  obs::LogHistogram& phase_sort_ns;
  obs::LogHistogram& phase_alloc_ns;
  obs::LogHistogram& phase_volumes_ns;
  obs::LogHistogram& phase_delayed_free_ns;
  obs::LogHistogram& phase_boundary_ns;
  obs::LogHistogram& total_ns;
};

CpMetrics cp_metrics(const Runtime& rt) {
  obs::Registry& r = rt.registry();
  const std::string l = rt.labels();
  return CpMetrics{
      r.counter("wafl.cp.count", l),
      r.counter("wafl.cp.ops", l),
      r.counter("wafl.cp.blocks_written", l),
      r.counter("wafl.cp.blocks_freed", l),
      r.counter("wafl.cp.vol_meta_blocks", l),
      r.counter("wafl.cp.agg_meta_blocks", l),
      r.counter("wafl.cp.meta_flush_blocks", l),
      r.counter("wafl.cp.tetrises", l),
      r.counter("wafl.cp.full_stripes", l),
      r.counter("wafl.cp.partial_stripes", l),
      r.counter("wafl.cp.parity_read_blocks", l),
      r.counter("wafl.cp.write_chains", l),
      r.counter("wafl.vol.bits_scanned", l),
      r.counter("wafl.agg.bits_scanned", l),
      r.counter("wafl.hbps.replenishes", l),
      r.histogram("wafl.cp.storage_time_ns", l),
      r.histogram("wafl.cp.phase.sort_ns", l),
      r.histogram("wafl.cp.phase.alloc_ns", l),
      r.histogram("wafl.cp.phase.volumes_ns", l),
      r.histogram("wafl.cp.phase.delayed_free_ns", l),
      r.histogram("wafl.cp.phase.boundary_ns", l),
      r.histogram("wafl.cp.phase.total_ns", l),
  };
}

/// One volume's slice of the CP: vvbn allocation + remapping over a
/// contiguous run of the (vol-sorted) dirty list.  Everything it touches
/// is either volume-local or a disjoint element of the aggregate's owner
/// table, so slices for different volumes run concurrently.
struct VolumeSlice {
  VolumeId vol;
  std::size_t begin = 0;  // index into the sorted dirty list / pvbns
  std::size_t end = 0;
  CpStats stats;                 // merged into the CP's stats afterwards
  std::vector<Vbn> freed_pvbns;  // applied serially afterwards
};

void run_slice(Aggregate& agg, std::span<const DirtyBlock> dirty,
               std::span<const Vbn> pvbns, VolumeSlice& slice) {
  // Parent: the cp.volumes span on the scheduling thread — the pool
  // carried its id here through the task-context word.
  obs::TraceSpan span(obs::SpanKind::kCpVolSlice, slice.vol,
                      slice.end - slice.begin);
  FlexVol& vol = agg.volume(slice.vol);
  for (std::size_t i = slice.begin; i < slice.end; ++i) {
    const DirtyBlock& db = dirty[i];
    const Vbn vvbn = vol.allocate_vvbn(slice.stats);
    const Vbn pvbn = pvbns[i];
    const Vbn freed_pvbn = vol.remap(db.logical, vvbn, pvbn);
    agg.set_owner(pvbn, slice.vol, vvbn);
    if (freed_pvbn != kInvalidVbn) {
      slice.freed_pvbns.push_back(freed_pvbn);
    }
  }
}

}  // namespace

ConsistencyPoint::Frozen ConsistencyPoint::freeze(
    Aggregate& agg, std::span<const DirtyBlock> dirty) {
  Frozen frozen;
  obs::PhaseTimer phase_timer;
  frozen.start_ns = obs::monotonic_ns();
  WAFL_OBS({
    obs::Counter& count = cp_metrics(agg.runtime()).count;
    count.inc();
    frozen.cp_no = static_cast<std::uint32_t>(count.value());
    obs::trace().emit(obs::EventType::kCpBegin, frozen.cp_no, dirty.size());
  });
  obs::TraceSpan freeze_span(obs::SpanKind::kCpFreeze, frozen.cp_no,
                             dirty.size());
  agg.begin_cp();
  // The generation swap: every intake-staged mutation (active-ledger
  // delayed frees, intake dirty sets) folds into the generation this CP
  // drains.  `cp.in_gen_swap` fires inside, mid-swap.
  agg.freeze_cp_generation();

  // Group the dirty list by volume (stable, preserving per-volume order)
  // so each volume's work is one contiguous slice.
  obs::TraceSpan sort_span(obs::SpanKind::kCpSort, 0, dirty.size());
  frozen.dirty.assign(dirty.begin(), dirty.end());
  std::stable_sort(frozen.dirty.begin(), frozen.dirty.end(),
                   [](const DirtyBlock& a, const DirtyBlock& b) {
                     return a.vol < b.vol;
                   });
  sort_span.end();
  WAFL_OBS(cp_metrics(agg.runtime())
               .phase_sort_ns.record(static_cast<double>(phase_timer.lap())));
  return frozen;
}

CpStats ConsistencyPoint::drain(Aggregate& agg, Frozen&& frozen) {
  ThreadPool* pool = agg.runtime().pool();
  CpStats stats;
  obs::PhaseTimer phase_timer;
  const std::uint64_t cp_start_ns = frozen.start_ns;
  const std::uint32_t cp_no = frozen.cp_no;
  obs::TraceSpan drain_span(obs::SpanKind::kCpDrain, cp_no,
                            frozen.dirty.size());
  const std::vector<DirtyBlock>& sorted = frozen.dirty;

  // Phase 1: physical allocation in write order — a serial plan assigns
  // demand to RAID groups (round-robin rotation + skip bias), then the
  // per-group tetris fills execute in parallel on the pool.
  obs::TraceSpan alloc_span(obs::SpanKind::kCpAlloc, 0, sorted.size());
  std::vector<Vbn> pvbns;
  pvbns.reserve(sorted.size());
  const bool ok = agg.allocate_pvbns(sorted.size(), pvbns, stats);
  WAFL_ASSERT_MSG(ok, "aggregate out of space during CP");
  alloc_span.set_b(pvbns.size());
  alloc_span.end();
  WAFL_OBS(cp_metrics(agg.runtime())
               .phase_alloc_ns.record(static_cast<double>(phase_timer.lap())));

  // Phase 2: per-volume virtual allocation and remapping — parallel
  // across volumes when a pool is supplied [10].
  obs::TraceSpan volumes_span(obs::SpanKind::kCpVolumes);
  std::vector<VolumeSlice> slices;
  for (std::size_t i = 0; i < sorted.size();) {
    VolumeSlice slice;
    slice.vol = sorted[i].vol;
    slice.begin = i;
    while (i < sorted.size() && sorted[i].vol == slice.vol) ++i;
    slice.end = i;
    slices.push_back(std::move(slice));
  }
  if (pool != nullptr && slices.size() > 1) {
    pool->parallel_for(0, slices.size(), [&](std::size_t k) {
      run_slice(agg, sorted, pvbns, slices[k]);
    });
  } else {
    for (VolumeSlice& slice : slices) {
      run_slice(agg, sorted, pvbns, slice);
    }
  }
  for (VolumeSlice& slice : slices) {
    stats.merge(slice.stats);
    for (const Vbn freed_pvbn : slice.freed_pvbns) {
      agg.clear_owner(freed_pvbn);
      agg.defer_free_pvbn(freed_pvbn);
    }
  }
  volumes_span.set_b(slices.size());
  volumes_span.end();
  WAFL_OBS(cp_metrics(agg.runtime())
               .phase_volumes_ns.record(
                   static_cast<double>(phase_timer.lap())));

  // Phase 2b: reclaim a bounded slice of any pending delayed frees
  // (snapshot-deletion debt) — richest regions first, a few regions per
  // CP, so bulk deletions amortize across CPs instead of stalling one.
  obs::TraceSpan delayed_span(obs::SpanKind::kCpDelayedFree);
  std::vector<Vbn> reclaimed_pvbns;
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    agg.volume(v).process_delayed_frees(kDelayedFreeRegionsPerCp,
                                        reclaimed_pvbns);
  }
  for (const Vbn pvbn : reclaimed_pvbns) {
    agg.clear_owner(pvbn);
    agg.defer_free_pvbn(pvbn);
  }
  delayed_span.set_b(reclaimed_pvbns.size());
  delayed_span.end();
  WAFL_OBS(cp_metrics(agg.runtime())
               .phase_delayed_free_ns.record(
                   static_cast<double>(phase_timer.lap())));

  // Phase 3: the CP boundary — apply frees, rebalance caches, flush
  // metafiles, persist TopAA, account device time.  The aggregate side
  // fans the group-disjoint work out across the pool (bit-identical to
  // serial; see write_allocator.hpp).
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    // nth selects the gap: a crash here leaves volumes [0, nth) flushed
    // with their TopAA committed, and the rest — plus the whole aggregate
    // side — at the previous CP.
    WAFL_CRASH_POINT_RT(agg.runtime(), "cp.before_volume_finish");
    obs::TraceSpan vol_finish_span(obs::SpanKind::kCpVolFinish, v);
    agg.volume(v).finish_cp(stats);
  }
  WAFL_CRASH_POINT_RT(agg.runtime(), "cp.before_agg_finish");
  obs::TraceSpan agg_finish_span(obs::SpanKind::kCpAggFinish);
  agg.finish_cp(stats);
  agg_finish_span.end();

  // Fold this CP's stats into the global registry (one batch of adds per
  // CP) and close out the trace.
  WAFL_OBS({
    CpMetrics m = cp_metrics(agg.runtime());
    m.phase_boundary_ns.record(static_cast<double>(phase_timer.lap()));
    const std::uint64_t dur_ns = obs::monotonic_ns() - cp_start_ns;
    m.total_ns.record(static_cast<double>(dur_ns));
    m.ops.add(stats.ops);
    m.blocks_written.add(stats.blocks_written);
    m.blocks_freed.add(stats.blocks_freed);
    m.vol_meta_blocks.add(stats.vol_meta_blocks);
    m.agg_meta_blocks.add(stats.agg_meta_blocks);
    m.meta_flush_blocks.add(stats.meta_flush_blocks);
    m.tetrises.add(stats.tetrises);
    m.full_stripes.add(stats.full_stripes);
    m.partial_stripes.add(stats.partial_stripes);
    m.parity_read_blocks.add(stats.parity_read_blocks);
    m.write_chains.add(stats.write_chains);
    m.vol_bits_scanned.add(stats.vol_bits_scanned);
    m.agg_bits_scanned.add(stats.agg_bits_scanned);
    m.storage_time_ns.record(static_cast<double>(stats.storage_time_ns));
    obs::trace().emit(obs::EventType::kCpEnd, cp_no, stats.blocks_written,
                      stats.blocks_freed, dur_ns);
  });
  return stats;
}

CpStats ConsistencyPoint::run(Aggregate& agg,
                              std::span<const DirtyBlock> dirty) {
  obs::TraceSpan cp_span(obs::SpanKind::kCp, 0, dirty.size());
  Frozen frozen = freeze(agg, dirty);
  cp_span.set_a(frozen.cp_no);
  return drain(agg, std::move(frozen));
}

}  // namespace wafl
