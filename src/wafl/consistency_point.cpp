#include "wafl/consistency_point.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace wafl {
namespace {

/// One volume's slice of the CP: vvbn allocation + remapping over a
/// contiguous run of the (vol-sorted) dirty list.  Everything it touches
/// is either volume-local or a disjoint element of the aggregate's owner
/// table, so slices for different volumes run concurrently.
struct VolumeSlice {
  VolumeId vol;
  std::size_t begin = 0;  // index into the sorted dirty list / pvbns
  std::size_t end = 0;
  CpStats stats;                 // merged into the CP's stats afterwards
  std::vector<Vbn> freed_pvbns;  // applied serially afterwards
};

void run_slice(Aggregate& agg, std::span<const DirtyBlock> dirty,
               std::span<const Vbn> pvbns, VolumeSlice& slice) {
  FlexVol& vol = agg.volume(slice.vol);
  for (std::size_t i = slice.begin; i < slice.end; ++i) {
    const DirtyBlock& db = dirty[i];
    const Vbn vvbn = vol.allocate_vvbn(slice.stats);
    const Vbn pvbn = pvbns[i];
    const Vbn freed_pvbn = vol.remap(db.logical, vvbn, pvbn);
    agg.set_owner(pvbn, slice.vol, vvbn);
    if (freed_pvbn != kInvalidVbn) {
      slice.freed_pvbns.push_back(freed_pvbn);
    }
  }
}

}  // namespace

CpStats ConsistencyPoint::run(Aggregate& agg,
                              std::span<const DirtyBlock> dirty,
                              ThreadPool* pool) {
  CpStats stats;
  agg.begin_cp();

  // Group the dirty list by volume (stable, preserving per-volume order)
  // so each volume's work is one contiguous slice.
  std::vector<DirtyBlock> sorted(dirty.begin(), dirty.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const DirtyBlock& a, const DirtyBlock& b) {
                     return a.vol < b.vol;
                   });

  // Phase 1: physical allocation in write order — the allocator walks
  // tetris windows round-robin across RAID groups.
  std::vector<Vbn> pvbns;
  pvbns.reserve(sorted.size());
  const bool ok = agg.allocate_pvbns(sorted.size(), pvbns, stats);
  WAFL_ASSERT_MSG(ok, "aggregate out of space during CP");

  // Phase 2: per-volume virtual allocation and remapping — parallel
  // across volumes when a pool is supplied [10].
  std::vector<VolumeSlice> slices;
  for (std::size_t i = 0; i < sorted.size();) {
    VolumeSlice slice;
    slice.vol = sorted[i].vol;
    slice.begin = i;
    while (i < sorted.size() && sorted[i].vol == slice.vol) ++i;
    slice.end = i;
    slices.push_back(std::move(slice));
  }
  if (pool != nullptr && slices.size() > 1) {
    pool->parallel_for(0, slices.size(), [&](std::size_t k) {
      run_slice(agg, sorted, pvbns, slices[k]);
    });
  } else {
    for (VolumeSlice& slice : slices) {
      run_slice(agg, sorted, pvbns, slice);
    }
  }
  for (VolumeSlice& slice : slices) {
    stats.merge(slice.stats);
    for (const Vbn freed_pvbn : slice.freed_pvbns) {
      agg.clear_owner(freed_pvbn);
      agg.defer_free_pvbn(freed_pvbn);
    }
  }

  // Phase 2b: reclaim a bounded slice of any pending delayed frees
  // (snapshot-deletion debt) — richest regions first, a few regions per
  // CP, so bulk deletions amortize across CPs instead of stalling one.
  std::vector<Vbn> reclaimed_pvbns;
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    agg.volume(v).process_delayed_frees(kDelayedFreeRegionsPerCp,
                                        reclaimed_pvbns);
  }
  for (const Vbn pvbn : reclaimed_pvbns) {
    agg.clear_owner(pvbn);
    agg.defer_free_pvbn(pvbn);
  }

  // Phase 3: the CP boundary — apply frees, rebalance caches, flush
  // metafiles, persist TopAA, account device time.
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    agg.volume(v).finish_cp(stats);
  }
  agg.finish_cp(stats);
  return stats;
}

}  // namespace wafl
