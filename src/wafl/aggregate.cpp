#include "wafl/aggregate.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

std::uint64_t bitmap_blocks_for(std::uint64_t nbits) {
  return (nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock;
}

std::uint64_t sum_data_blocks(const AggregateConfig& cfg) {
  std::uint64_t total = 0;
  for (const auto& rg : cfg.raid_groups) {
    total += rg.device_blocks * rg.data_devices;
  }
  return total;
}

}  // namespace

Aggregate::RgState::RgState(RaidGroupId id, RaidGeometry geom, Vbn base_vbn,
                            std::uint32_t aa_stripes_, double skip_fraction,
                            bool raid_agnostic)
    : raid(id, geom),
      base(base_vbn),
      aa_stripes(aa_stripes_),
      layout(AaLayout::raid(base_vbn, geom, aa_stripes_)),
      board(layout) {
  skip_threshold = static_cast<AaScore>(
      skip_fraction * static_cast<double>(layout.aa_blocks()));
  device_busy.assign(geom.total_devices(), 0);
  if (raid_agnostic) {
    // Object-store pool (§3.3.2): bounded-memory HBPS over flat AAs.
    auto h = std::make_unique<Hbps>(Hbps::Config{
        layout.aa_blocks(),
        std::max<std::uint32_t>(1, layout.aa_blocks() / kHbpsBinCount),
        kHbpsListCapacity});
    hbps = h.get();
    cache = std::move(h);
  } else {
    // RAID group (§3.3.1): exact max-heap over every AA.
    auto h = std::make_unique<MaxHeapAaCache>(layout.aa_count());
    heap = h.get();
    cache = std::move(h);
  }
}

void Aggregate::RgState::build_cache() {
  if (hbps != nullptr) {
    hbps->build(board);
  } else {
    heap->build(board);
  }
}

const MaxHeapAaCache& Aggregate::rg_heap(RaidGroupId rg) const {
  const RgState& state = *rgs_.at(rg);
  WAFL_ASSERT_MSG(state.heap != nullptr, "group has no max-heap (HBPS pool)");
  return *state.heap;
}

Aggregate::Aggregate(const AggregateConfig& cfg, std::uint64_t rng_seed)
    : cfg_(cfg),
      rng_(rng_seed),
      total_blocks_(sum_data_blocks(cfg)),
      meta_store_(bitmap_blocks_for(sum_data_blocks(cfg))),
      topaa_store_(cfg.raid_groups.size() * TopAaFile::kRaidAgnosticBlocks),
      activemap_(sum_data_blocks(cfg), &meta_store_, 0),
      owner_(sum_data_blocks(cfg), kNoOwner) {
  WAFL_ASSERT(!cfg.raid_groups.empty());
  Vbn base = 0;
  RaidGroupId id = 0;
  for (const RaidGroupConfig& rgc : cfg.raid_groups) {
    append_raid_group(rgc, id, base);
    base += static_cast<Vbn>(rgc.device_blocks) * rgc.data_devices;
    ++id;
  }
}

void Aggregate::append_raid_group(const RaidGroupConfig& rgc, RaidGroupId id,
                                  Vbn base) {
  WAFL_ASSERT(rgc.device_blocks % kTetrisStripes == 0);
  const bool raid_agnostic = rgc.media.type == MediaType::kObjectStore;
  if (raid_agnostic) {
    // Native redundancy: no RAID geometry (§3.1) — one logical device,
    // no parity, flat consecutive-VBN AAs.
    WAFL_ASSERT_MSG(rgc.data_devices == 1 && rgc.parity_devices == 0,
                    "object-store pools are 1 device, 0 parity");
  }
  const RaidGeometry geom(rgc.data_devices, rgc.parity_devices,
                          rgc.device_blocks);
  const std::uint32_t aa_stripes = rgc.aa_stripes.value_or(
      choose_raid_aa_stripes(media_geometry(rgc.media)));
  WAFL_ASSERT_MSG(geom.stripes() % aa_stripes == 0,
                  "device size must be a whole number of AAs");
  auto rg = std::make_unique<RgState>(id, geom, base, aa_stripes,
                                      cfg_.rg_skip_free_fraction,
                                      raid_agnostic);
  for (std::uint32_t d = 0; d < rgc.data_devices; ++d) {
    rg->data_devices.push_back(make_device(rgc.media, rgc.device_blocks));
  }
  for (std::uint32_t p = 0; p < rgc.parity_devices; ++p) {
    rg->parity_devices.push_back(make_device(rgc.media, rgc.device_blocks));
  }
  if (cfg_.policy == AaSelectPolicy::kCache) {
    rg->build_cache();
  }
  rgs_.push_back(std::move(rg));
}

RaidGroupId Aggregate::add_raid_group(const RaidGroupConfig& rgc) {
  // Quiescence: growth happens between CPs, like adding a shelf.
  WAFL_ASSERT_MSG(activemap_.pending_frees() == 0,
                  "add_raid_group during a CP");
  for (const auto& rg : rgs_) {
    WAFL_ASSERT_MSG(rg->window_writes.empty(),
                    "add_raid_group with open tetris windows");
  }
  const auto id = static_cast<RaidGroupId>(rgs_.size());
  const Vbn base = total_blocks_;
  total_blocks_ += static_cast<Vbn>(rgc.device_blocks) * rgc.data_devices;
  activemap_.grow(total_blocks_);
  meta_store_.grow(bitmap_blocks_for(total_blocks_));
  topaa_store_.grow((id + 1ull) * TopAaFile::kRaidAgnosticBlocks);
  owner_.resize(total_blocks_, kNoOwner);
  append_raid_group(rgc, id, base);
  return id;
}

FlexVol& Aggregate::add_volume(const FlexVolConfig& vcfg) {
  const auto id = static_cast<VolumeId>(volumes_.size());
  volumes_.push_back(std::make_unique<FlexVol>(id, vcfg, rng_.next()));
  return *volumes_.back();
}

double Aggregate::mean_write_amplification() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& rg : rgs_) {
    for (const auto& dev : rg->data_devices) {
      if (dev->media_type() == MediaType::kSsd ||
          dev->media_type() == MediaType::kSmr) {
        sum += dev->write_amplification();
        ++n;
      }
    }
  }
  return n == 0 ? 1.0 : sum / static_cast<double>(n);
}

void Aggregate::reset_wear_windows() {
  for (const auto& rg : rgs_) {
    for (const auto& dev : rg->data_devices) dev->reset_wear_window();
    for (const auto& dev : rg->parity_devices) dev->reset_wear_window();
  }
}

void Aggregate::set_owner(Vbn pvbn, VolumeId vol, Vbn vvbn) {
  WAFL_ASSERT(pvbn < total_blocks_);
  WAFL_ASSERT(vvbn < (1ull << 48));
  owner_[pvbn] = (static_cast<std::uint64_t>(vol) << 48) | vvbn;
}

void Aggregate::clear_owner(Vbn pvbn) {
  WAFL_ASSERT(pvbn < total_blocks_);
  owner_[pvbn] = kNoOwner;
}

std::optional<Aggregate::BlockOwner> Aggregate::owner_of(Vbn pvbn) const {
  WAFL_ASSERT(pvbn < total_blocks_);
  const std::uint64_t packed = owner_[pvbn];
  if (packed == kNoOwner) return std::nullopt;
  return BlockOwner{static_cast<VolumeId>(packed >> 48),
                    packed & ((1ull << 48) - 1)};
}

bool Aggregate::checkout_aa(RaidGroupId rg, AaId aa) {
  WAFL_ASSERT_MSG(cfg_.policy == AaSelectPolicy::kCache,
                  "checkout_aa requires the cache policy");
  RgState& state = *rgs_.at(rg);
  if (state.heap == nullptr) return false;  // HBPS pools are not cleaned
  return state.heap->remove(aa);
}

void Aggregate::checkin_aa(RaidGroupId rg, AaId aa) {
  RgState& state = *rgs_.at(rg);
  state.cache->insert(aa, state.board.score(aa));
}

void Aggregate::seed_rg_occupancy(RaidGroupId rg_id, double fraction,
                                  Rng& rng) {
  RgState& rg = *rgs_.at(rg_id);
  WAFL_ASSERT_MSG(rg.window_writes.empty() && rg.cursor_aa == kInvalidAaId,
                  "seed_rg_occupancy during a CP");
  WAFL_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  const Vbn begin = rg.base;
  const Vbn end = rg.base + rg.raid.geometry().data_blocks();
  for (Vbn v = begin; v < end; ++v) {
    if (!activemap_.is_allocated(v) && rng.chance(fraction)) {
      activemap_.allocate(v);
    }
  }
  activemap_.metafile().begin_cp();  // discard the artificial dirty set
  rg.board = AaScoreBoard(rg.layout, activemap_.metafile());
  if (cfg_.policy == AaSelectPolicy::kCache) {
    rg.build_cache();
  }
}

void Aggregate::begin_cp() {
  for (const auto& rg : rgs_) {
    std::fill(rg->device_busy.begin(), rg->device_busy.end(), 0);
  }
}

std::uint64_t Aggregate::live_aa_free(const RgState& rg, AaId aa) const {
  return activemap_.metafile().free_in_range(rg.layout.aa_begin(aa),
                                             rg.layout.aa_end(aa));
}

bool Aggregate::ensure_rg_cursor(RgState& rg, CpStats& stats, bool force) {
  // Candidate selection consults the cache (or random choice), whose
  // scores are only updated at CP boundaries (§3.3); a candidate may have
  // been consumed earlier in THIS CP, so each pick is validated against
  // the live activemap before the cursor commits to it.
  int random_attempts = 0;
  for (;;) {
    if (rg.cursor_aa != kInvalidAaId) return true;

    AaId aa = kInvalidAaId;
    if (cfg_.policy == AaSelectPolicy::kCache) {
      if (rg.hbps != nullptr && rg.hbps->needs_replenish()) {
        // §3.3.2's background scan, for HBPS-managed pools.
        rg.hbps->build(rg.board);
        WAFL_OBS({
          static obs::Counter& replenishes =
              obs::registry().counter("wafl.hbps.replenishes");
          replenishes.inc();
          obs::trace().emit(obs::EventType::kHbpsReplenish, rg.raid.id(),
                            rg.layout.aa_count());
        });
      }
      const auto best = rg.cache->peek_best_score();
      if (!best.has_value()) return false;
      if (!force && *best < rg.skip_threshold) return false;
      aa = rg.cache->take_best()->aa;
      if (live_aa_free(rg, aa) == 0) {
        // Stale entry (consumed this CP, or empty since last CP): keep it
        // out of rotation until the boundary re-scores it.
        rg.retired.push_back(aa);
        continue;
      }
    } else {
      if (random_attempts++ < 64) {
        aa = static_cast<AaId>(rng_.below(rg.layout.aa_count()));
        if (live_aa_free(rg, aa) == 0) continue;
      } else {
        // Random probing keeps missing: linear sweep by live free count.
        aa = kInvalidAaId;
        for (AaId i = 0; i < rg.layout.aa_count(); ++i) {
          if (live_aa_free(rg, i) > 0) {
            aa = i;
            break;
          }
        }
        if (aa == kInvalidAaId) return false;
      }
    }

    const double free_frac = static_cast<double>(rg.board.score(aa)) /
                             static_cast<double>(rg.layout.aa_capacity(aa));
    stats.agg_pick_free_frac.add(free_frac);
    WAFL_OBS({
      static obs::Counter& checkouts =
          obs::registry().counter("wafl.agg.aa_checkouts");
      static obs::LinearHistogram& free_hist = obs::registry().linear_histogram(
          "wafl.agg.aa_checkout_free_frac", 0.0, 1.0, 64);
      checkouts.inc();
      free_hist.record(free_frac);
      obs::trace().emit(obs::EventType::kAaCheckout, rg.raid.id(), aa,
                        rg.board.score(aa), rg.layout.aa_capacity(aa));
    });
    rg.cursor_aa = aa;
    rg.cursor_pos = rg.layout.aa_begin(aa);
    return true;
  }
}

std::uint64_t Aggregate::fill_window(RgState& rg, std::uint64_t need,
                                     std::vector<Vbn>& out, CpStats& stats,
                                     bool force) {
  const BitmapMetafile& map = activemap_.metafile();
  const RaidGeometry& geom = rg.raid.geometry();
  const std::uint64_t bpt = geom.blocks_per_tetris();

  for (;;) {
    if (!ensure_rg_cursor(rg, stats, force)) return 0;
    const Vbn aa_end = rg.layout.aa_end(rg.cursor_aa);

    if (rg.window_writes.empty()) {
      // No tetris is open: jump straight to the AA's next free block so a
      // run of fully-consumed windows costs one bitmap scan, not one turn
      // per window.
      const Vbn v = map.find_free(rg.cursor_pos, aa_end);
      stats.agg_bits_scanned +=
          (v == aa_end ? aa_end : v + 1) - rg.cursor_pos;
      if (v == aa_end) {
        if (cfg_.policy == AaSelectPolicy::kCache) {
          rg.retired.push_back(rg.cursor_aa);
        }
        rg.cursor_aa = kInvalidAaId;
        continue;
      }
      rg.cursor_pos = v;
    }

    const std::uint64_t local = rg.cursor_pos - rg.base;
    const Vbn window_end =
        std::min<Vbn>(rg.base + (local / bpt + 1) * bpt, aa_end);

    std::uint64_t taken = 0;
    while (taken < need) {
      const Vbn v = map.find_free(rg.cursor_pos, window_end);
      stats.agg_bits_scanned += (v == window_end ? window_end : v + 1) -
                                rg.cursor_pos;
      if (v == window_end) {
        rg.cursor_pos = window_end;
        break;
      }
      rg.cursor_pos = v + 1;
      out.push_back(v);
      rg.window_writes.push_back(v);
      ++taken;
    }

    if (rg.cursor_pos == window_end) {
      // Window exhausted: write it out and advance (possibly off the AA).
      emit_window(rg, stats);
      if (window_end == aa_end) {
        if (cfg_.policy == AaSelectPolicy::kCache) {
          rg.retired.push_back(rg.cursor_aa);
        }
        rg.cursor_aa = kInvalidAaId;
      }
    }
    if (taken > 0) return taken;
    // Otherwise the open window had no free blocks left (a previous turn
    // drained it): it has been emitted above; try again from a fresh jump.
  }
}

bool Aggregate::allocate_pvbns(std::uint64_t n, std::vector<Vbn>& out,
                               CpStats& stats) {
  std::uint64_t remaining = n;
  bool force = false;
  while (remaining > 0) {
    std::uint64_t round_total = 0;
    for (std::size_t i = 0; i < rgs_.size() && remaining > 0; ++i) {
      RgState& rg = *rgs_[rr_next_];
      rr_next_ = (rr_next_ + 1) % rgs_.size();
      const std::uint64_t got = fill_window(rg, remaining, out, stats, force);
      remaining -= got;
      round_total += got;
    }
    if (round_total == 0) {
      if (!force) {
        // Every group declined under the fragmentation threshold; the
        // allocator must still make progress (§3.3.1's "resume").
        force = true;
        continue;
      }
      return false;  // genuinely out of space
    }
    force = false;
  }
  return true;
}

void Aggregate::emit_window(RgState& rg, CpStats& stats) {
  if (rg.window_writes.empty()) return;

  const RaidGeometry& geom = rg.raid.geometry();
  // Convert to group-local VBNs (ascending by construction).
  std::vector<Vbn> local;
  local.reserve(rg.window_writes.size());
  for (const Vbn v : rg.window_writes) {
    local.push_back(v - rg.base);
  }
  const std::uint64_t tetris = geom.tetris_of(local.front());
  WAFL_ASSERT(geom.tetris_of(local.back()) == tetris);

  const TetrisWrite tw = rg.raid.builder().build(
      tetris, local, [&](Vbn lv) { return activemap_.metafile().test(rg.base + lv); });
  rg.raid.stats().accumulate(tw);

  ++stats.tetrises;
  stats.full_stripes += tw.full_stripes;
  stats.partial_stripes += tw.partial_stripes;
  stats.parity_read_blocks += tw.parity_read_blocks;
  stats.write_chains += tw.total_chains();
  stats.blocks_written += tw.data_blocks_written;
  WAFL_OBS(obs::trace().emit(obs::EventType::kTetris, rg.raid.id(),
                             tw.full_stripes + tw.partial_stripes,
                             tw.data_blocks_written, tw.parity_read_blocks));

  // Submit to the device models.  Parity-computation reads are spread
  // evenly across the group's devices.
  const std::uint32_t ndev = geom.total_devices();
  const std::uint64_t read_share = tw.parity_read_blocks / ndev;
  std::uint64_t read_extra = tw.parity_read_blocks % ndev;
  for (std::uint32_t d = 0; d < geom.data_devices(); ++d) {
    const std::uint64_t reads = read_share + (read_extra > 0 ? 1 : 0);
    if (read_extra > 0) --read_extra;
    rg.device_busy[d] +=
        rg.data_devices[d]->write_batch(tw.device_runs[d], reads);
  }
  for (std::uint32_t p = 0; p < geom.parity_devices(); ++p) {
    const std::uint64_t reads = read_share + (read_extra > 0 ? 1 : 0);
    if (read_extra > 0) --read_extra;
    rg.device_busy[geom.data_devices() + p] +=
        rg.parity_devices[p]->write_batch(tw.parity_runs[p], reads);
  }

  // Mark the window's blocks allocated only now: the tetris classification
  // above must see pre-CP occupancy.
  for (const Vbn v : rg.window_writes) {
    activemap_.allocate(v);
    rg.board.note_alloc(v);
  }
  rg.window_writes.clear();
}

void Aggregate::defer_free_pvbn(Vbn v) {
  activemap_.defer_free(v);
  rgs_[rg_of_pvbn(v)]->board.note_free(v);
}

RaidGroupId Aggregate::rg_of_pvbn(Vbn v) const {
  WAFL_ASSERT(v < total_blocks_);
  for (std::size_t i = 0; i < rgs_.size(); ++i) {
    const RgState& rg = *rgs_[i];
    if (v < rg.base + rg.raid.geometry().data_blocks()) {
      return static_cast<RaidGroupId>(i);
    }
  }
  WAFL_ASSERT_MSG(false, "pvbn beyond all RAID groups");
  return 0;
}

void Aggregate::finish_cp(CpStats& stats) {
  // Flush any windows the CP left open; the next CP will reopen them and
  // pay the partial-stripe cost of the blocks written now.
  for (const auto& rg : rgs_) {
    emit_window(*rg, stats);
  }

  // Apply the batched frees and tell translation-layer media (TRIM).
  stats.blocks_freed += activemap_.apply_deferred_frees();
  for (const Vbn v : activemap_.last_applied_frees()) {
    RgState& rg = *rgs_[rg_of_pvbn(v)];
    const BlockLocation loc = rg.raid.geometry().to_location(v - rg.base);
    rg.data_devices[loc.device]->invalidate(loc.dbn);
  }

  // CP-boundary rebalance (§3.3.1) and retired-AA re-admission.
  for (const auto& rgp : rgs_) {
    RgState& rg = *rgp;
    const auto changes = rg.board.apply_cp_deltas();
    if (cfg_.policy == AaSelectPolicy::kCache) {
      rg.cache->apply_changes(changes);
      WAFL_OBS({
        static obs::Counter& cp_rekeys =
            obs::registry().counter("wafl.heap.cp_rekeys");
        cp_rekeys.add(changes.size());
        obs::trace().emit(obs::EventType::kHeapRebalance, rg.raid.id(),
                          changes.size());
      });
      for (const AaId aa : rg.retired) {
        rg.cache->insert(aa, rg.board.score(aa));
        WAFL_OBS({
          static obs::Counter& putbacks =
              obs::registry().counter("wafl.agg.aa_putbacks");
          putbacks.inc();
          obs::trace().emit(obs::EventType::kAaPutback, rg.raid.id(), aa,
                            rg.board.score(aa));
        });
      }
      rg.retired.clear();
    }
  }

  stats.agg_meta_blocks += activemap_.metafile().dirty_blocks();
  stats.meta_flush_blocks += activemap_.metafile().flush();

  if (cfg_.policy == AaSelectPolicy::kCache) {
    for (std::size_t i = 0; i < rgs_.size(); ++i) {
      RgState& rg = *rgs_[i];
      TopAaFile topaa(topaa_store_,
                      i * TopAaFile::kRaidAgnosticBlocks);
      if (rg.heap != nullptr) {
        // The persisted top set must include the allocator cursor's
        // checked-out AA (cursors do not survive failover, §3.4) — merge
        // it back before truncating to the block's capacity.
        auto best = rg.heap->top(kTopAaRaidAwareEntries);
        if (rg.cursor_aa != kInvalidAaId) {
          best.push_back({rg.cursor_aa, rg.board.score(rg.cursor_aa)});
          std::sort(best.begin(), best.end(),
                    [](const AaPick& a, const AaPick& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.aa < b.aa;
                    });
          if (best.size() > kTopAaRaidAwareEntries) {
            best.resize(kTopAaRaidAwareEntries);
          }
        }
        topaa.save_raid_aware(best);
        stats.meta_flush_blocks += TopAaFile::kRaidAwareBlocks;
      } else {
        // The persisted HBPS must account for the cursor's checked-out AA
        // (cursors do not survive failover, §3.4).
        if (rg.cursor_aa != kInvalidAaId) {
          Hbps snapshot = *rg.hbps;
          snapshot.insert(rg.cursor_aa, rg.board.score(rg.cursor_aa));
          topaa.save_raid_agnostic(snapshot);
        } else {
          topaa.save_raid_agnostic(*rg.hbps);
        }
        stats.meta_flush_blocks += TopAaFile::kRaidAgnosticBlocks;
      }
    }
  }

  // Devices operate in parallel; the CP's storage time is the slowest one.
  SimTime slowest = 0;
  for (const auto& rg : rgs_) {
    for (const SimTime t : rg->device_busy) {
      slowest = std::max(slowest, t);
    }
  }
  stats.storage_time_ns = std::max(stats.storage_time_ns, slowest);

  // Per-device busy-time fold + completion events (devices in a sim CP
  // "complete" at the boundary).
  WAFL_OBS({
    for (const auto& rgp : rgs_) {
      const RgState& rg = *rgp;
      for (std::size_t d = 0; d < rg.device_busy.size(); ++d) {
        const SimTime busy = rg.device_busy[d];
        if (busy == 0) continue;
        const std::string labels = "rg=\"" + std::to_string(rg.raid.id()) +
                                   "\",dev=\"" + std::to_string(d) + "\"";
        obs::registry()
            .counter("wafl.device.busy_ns", labels)
            .add(static_cast<std::uint64_t>(busy));
        obs::trace().emit(obs::EventType::kDeviceIo, rg.raid.id(), d,
                          static_cast<std::uint64_t>(busy));
      }
    }
  });
}

std::size_t Aggregate::mount_from_topaa() {
  std::size_t seeded = 0;
  for (std::size_t i = 0; i < rgs_.size(); ++i) {
    RgState& rg = *rgs_[i];
    TopAaFile topaa(topaa_store_,
                    i * TopAaFile::kRaidAgnosticBlocks);
    rg.cursor_aa = kInvalidAaId;
    rg.window_writes.clear();
    rg.retired.clear();
    bool ok = false;
    if (rg.heap != nullptr) {
      const auto picks = topaa.load_raid_aware();
      if (picks.has_value()) {
        rg.heap->seed(*picks);
        ok = true;
      }
    } else {
      auto loaded = topaa.load_raid_agnostic();
      if (loaded.has_value()) {
        *rg.hbps = std::move(*loaded);
        ok = true;
      }
    }
    if (ok) {
      ++seeded;
    } else {
      // Damaged/missing TopAA: rebuild this group the slow way.
      rg.board = AaScoreBoard(rg.layout, activemap_.metafile());
      rg.build_cache();
    }
  }
  return seeded;
}

void Aggregate::scan_rebuild(ThreadPool* pool) {
  activemap_.metafile().load_all(pool);
  auto rebuild_one = [this](std::size_t i) {
    RgState& rg = *rgs_[i];
    rg.board = AaScoreBoard(rg.layout, activemap_.metafile());
    rg.cursor_aa = kInvalidAaId;
    rg.window_writes.clear();
    rg.retired.clear();
    if (cfg_.policy == AaSelectPolicy::kCache) {
      rg.build_cache();
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(0, rgs_.size(), rebuild_one);
  } else {
    for (std::size_t i = 0; i < rgs_.size(); ++i) rebuild_one(i);
  }
}

}  // namespace wafl
