#include "wafl/aggregate.hpp"

#include "fault/crash_point.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

std::uint64_t bitmap_blocks_for(std::uint64_t nbits) {
  return (nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock;
}

std::uint64_t sum_data_blocks(const AggregateConfig& cfg) {
  std::uint64_t total = 0;
  for (const auto& rg : cfg.raid_groups) {
    total += rg.device_blocks * rg.data_devices;
  }
  return total;
}

}  // namespace

Aggregate::Aggregate(const AggregateConfig& cfg, std::uint64_t rng_seed,
                     Runtime rt)
    : cfg_(cfg),
      rng_(rng_seed),
      runtime_(std::move(rt)),
      total_blocks_(sum_data_blocks(cfg)),
      meta_store_(bitmap_blocks_for(sum_data_blocks(cfg))),
      topaa_store_(cfg.raid_groups.size() * TopAaFile::kRaidAgnosticBlocks),
      activemap_(sum_data_blocks(cfg), &meta_store_, 0),
      walloc_(cfg.policy, cfg.rg_skip_free_fraction, rng_, activemap_,
              topaa_store_, &runtime_),
      owner_(sum_data_blocks(cfg), kNoOwner) {
  WAFL_ASSERT(!cfg.raid_groups.empty());
  Vbn base = 0;
  for (const RaidGroupConfig& rgc : cfg.raid_groups) {
    walloc_.add_group(rgc, base);
    base += static_cast<Vbn>(rgc.device_blocks) * rgc.data_devices;
  }
}

RaidGroupId Aggregate::add_raid_group(const RaidGroupConfig& rgc) {
  // Quiescence: growth happens between CPs, like adding a shelf.
  WAFL_ASSERT_MSG(activemap_.pending_frees() == 0,
                  "add_raid_group during a CP");
  WAFL_ASSERT_MSG(walloc_.windows_idle(),
                  "add_raid_group with open tetris windows");
  const Vbn base = total_blocks_;
  total_blocks_ += static_cast<Vbn>(rgc.device_blocks) * rgc.data_devices;
  activemap_.grow(total_blocks_);
  meta_store_.grow(bitmap_blocks_for(total_blocks_));
  topaa_store_.grow((walloc_.group_count() + 1ull) *
                    TopAaFile::kRaidAgnosticBlocks);
  owner_.resize(total_blocks_, kNoOwner);
  return walloc_.add_group(rgc, base);
}

std::uint64_t Aggregate::freeze_cp_generation() {
  // Aggregate-level state first, then the volumes; the crash point sits
  // between the two so the sweep exercises a genuinely half-swapped
  // generation (aggregate frozen, volumes still staging).  Nothing here
  // touches media, so recovery sees exactly the last completed CP.
  std::uint64_t folded = activemap_.metafile().freeze_dirty_generation();
  walloc_.freeze_generation();
  WAFL_CRASH_POINT_RT(runtime_, "cp.in_gen_swap");
  for (const auto& vol : volumes_) {
    folded += vol->freeze_cp_generation();
  }
  return folded;
}

FlexVol& Aggregate::add_volume(const FlexVolConfig& vcfg) {
  const auto id = static_cast<VolumeId>(volumes_.size());
  volumes_.push_back(
      std::make_unique<FlexVol>(id, vcfg, rng_.next(), &runtime_));
  return *volumes_.back();
}

double Aggregate::mean_write_amplification() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (RaidGroupId rg = 0; rg < walloc_.group_count(); ++rg) {
    const RgAllocator& group = walloc_.group(rg);
    for (DeviceId d = 0; d < group.raid().geometry().data_devices(); ++d) {
      const DeviceModel& dev = group.data_device(d);
      if (dev.media_type() == MediaType::kSsd ||
          dev.media_type() == MediaType::kSmr) {
        sum += dev.write_amplification();
        ++n;
      }
    }
  }
  return n == 0 ? 1.0 : sum / static_cast<double>(n);
}

void Aggregate::reset_wear_windows() {
  for (RaidGroupId rg = 0; rg < walloc_.group_count(); ++rg) {
    RgAllocator& group = walloc_.group(rg);
    const RaidGeometry& geom = group.raid().geometry();
    for (DeviceId d = 0; d < geom.data_devices(); ++d) {
      group.data_device(d).reset_wear_window();
    }
    for (DeviceId p = 0; p < geom.parity_devices(); ++p) {
      group.parity_device(p).reset_wear_window();
    }
  }
}

void Aggregate::set_owner(Vbn pvbn, VolumeId vol, Vbn vvbn) {
  WAFL_ASSERT(pvbn < total_blocks_);
  WAFL_ASSERT(vvbn < (1ull << 48));
  owner_[pvbn] = (static_cast<std::uint64_t>(vol) << 48) | vvbn;
}

void Aggregate::clear_owner(Vbn pvbn) {
  WAFL_ASSERT(pvbn < total_blocks_);
  owner_[pvbn] = kNoOwner;
}

std::optional<Aggregate::BlockOwner> Aggregate::owner_of(Vbn pvbn) const {
  WAFL_ASSERT(pvbn < total_blocks_);
  const std::uint64_t packed = owner_[pvbn];
  if (packed == kNoOwner) return std::nullopt;
  return BlockOwner{static_cast<VolumeId>(packed >> 48),
                    packed & ((1ull << 48) - 1)};
}

}  // namespace wafl
