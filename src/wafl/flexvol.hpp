// FlexVol: one virtualized WAFL file-system instance (§2.1).
//
// A FlexVol owns a *virtual* VBN space with its own bitmap metafile.  Data
// in the volume carries two addresses: the virtual VBN (this class) and the
// physical VBN in the aggregate (assigned by the aggregate's allocator and
// recorded here in the container map).
//
// Virtual-VBN allocation has no physical-layout consequence; its goal is
// colocation in the number space so that each CP touches as few bitmap-
// metafile blocks as possible (§2.5).  The volume therefore uses flat
// 32 Ki-VBN allocation areas (one per metafile block) ranked by an HBPS
// cache (§3.3.2), or random AA selection for the Figure 6 baseline.
//
// The volume also exposes a single flat file ("the LUN"): logical block l
// maps to its current (vvbn, pvbn) pair, re-mapped on every overwrite —
// WAFL's copy-on-write behaviour reduced to the block-map essentials.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bitmap/activemap.hpp"
#include "core/hbps.hpp"
#include "obs/obs.hpp"
#include "core/scoreboard.hpp"
#include "core/topaa.hpp"
#include "storage/block_store.hpp"
#include "util/rng.hpp"
#include "wafl/aa_select.hpp"
#include "wafl/cp_stats.hpp"
#include "wafl/delayed_free.hpp"
#include "wafl/runtime.hpp"

namespace wafl {

/// Snapshot identifier within one FlexVol.
using SnapId = std::uint32_t;

struct FlexVolConfig {
  /// Virtual VBN space size in blocks.
  std::uint64_t vvbn_blocks = 0;
  /// Logical file (LUN) size in blocks; must be <= vvbn_blocks.
  std::uint64_t file_blocks = 0;
  /// AA size; the default matches one bitmap-metafile block (§3.2.1).
  std::uint32_t aa_blocks = kFlatAaBlocks;
  AaSelectPolicy policy = AaSelectPolicy::kCache;
};

class FlexVol {
 public:
  /// `rt` scopes the volume's metric handles and mount-scan pool; the
  /// owning Aggregate passes its own runtime (null: process default).
  FlexVol(VolumeId id, const FlexVolConfig& cfg, std::uint64_t rng_seed,
          const Runtime* rt = nullptr);

  VolumeId id() const noexcept { return id_; }
  const FlexVolConfig& config() const noexcept { return cfg_; }
  std::uint64_t file_blocks() const noexcept { return cfg_.file_blocks; }

  // --- Logical file view ----------------------------------------------------
  bool is_mapped(std::uint64_t l) const {
    WAFL_ASSERT(l < cfg_.file_blocks);
    return block_map_[l] != kInvalidVbn;
  }
  Vbn vvbn_of(std::uint64_t l) const {
    WAFL_ASSERT(l < cfg_.file_blocks);
    return block_map_[l];
  }
  Vbn pvbn_of(std::uint64_t l) const {
    const Vbn v = vvbn_of(l);
    return v == kInvalidVbn ? kInvalidVbn : container_map_[v];
  }
  /// Container-map lookup: physical location of a virtual block
  /// (kInvalidVbn if unmapped).
  Vbn pvbn_of_vvbn(Vbn vvbn) const {
    WAFL_ASSERT(vvbn < cfg_.vvbn_blocks);
    return container_map_[vvbn];
  }

  // --- CP-side allocation ---------------------------------------------------

  /// Allocates the next virtual VBN: sequential fill of the current AA,
  /// taking a fresh AA from the cache (or at random) when exhausted.
  /// Records pick quality into `stats`.
  Vbn allocate_vvbn(CpStats& stats);

  /// Binds logical block l to (vvbn, pvbn), deferring the free of any
  /// previous mapping to the CP boundary.  Returns the freed pvbn (for the
  /// aggregate to free) or kInvalidVbn if l was unmapped.
  Vbn remap(std::uint64_t l, Vbn vvbn, Vbn pvbn);

  /// Points an existing virtual block at a new physical location — the
  /// segment cleaner's operation (§3.3.1): physical relocation changes
  /// neither the logical file nor the virtual VBN.  Returns the old pvbn.
  Vbn relocate(Vbn vvbn, Vbn new_pvbn);

  // --- Snapshots (§1/§2.2: COW snapshots; their deletion is the "other
  // internal activity" whose bulk frees feed the delayed-free machinery
  // and §4.1.1's free-space non-uniformity) -----------------------------------

  /// Freezes the current logical image.  Blocks it references stay
  /// allocated across future overwrites until every holding snapshot is
  /// deleted.
  SnapId create_snapshot();

  /// Deletes a snapshot.  Blocks no longer referenced by the active file
  /// or any remaining snapshot become DELAYED frees: they are logged per
  /// AA-sized region (richest-region-first drain via the HBPS-backed
  /// DelayedFreeLog) and reclaimed incrementally by subsequent CPs.
  void delete_snapshot(SnapId id);

  std::size_t snapshot_count() const noexcept { return snapshots_.size(); }

  /// The vvbn snapshot `id` holds for logical block l (kInvalidVbn if the
  /// block was unwritten at snapshot time).
  Vbn snapshot_vvbn_of(SnapId id, std::uint64_t l) const;

  /// Delayed frees logged but not yet reclaimed.
  std::uint64_t pending_delayed_frees() const noexcept {
    return delayed_.pending_total();
  }

  /// Generation swap at CP freeze (DESIGN.md §13): folds intake-staged
  /// state — active-ledger delayed frees and intake-dirtied metafile
  /// blocks — into the frozen generation the starting CP will drain.
  /// Cheap (O(staged entries)), touches no media.  Returns entries folded.
  std::uint64_t freeze_cp_generation();

  /// Reclaims up to `max_regions` richest regions of delayed frees:
  /// defers the vvbn frees to this CP and appends the matching physical
  /// blocks to `freed_pvbns` for the aggregate to free.  Returns blocks
  /// reclaimed.
  std::uint64_t process_delayed_frees(std::size_t max_regions,
                                      std::vector<Vbn>& freed_pvbns);

  /// Applies deferred frees, folds score deltas into the HBPS, re-admits
  /// retired AAs, flushes the bitmap metafile, and persists the TopAA
  /// blocks.  Adds this volume's contribution to `stats`.
  void finish_cp(CpStats& stats);

  // --- Mount (§3.4) ----------------------------------------------------------

  /// Seeds the cache from the TopAA metafile — the fast path that gates
  /// the first CP after mount.  Reads only the two TopAA blocks.  Returns
  /// false (after falling back to scan_rebuild) when the metafile is
  /// missing or damaged.  A damaged-TopAA fallback scan fans out per AA
  /// on the runtime's pool (pipelined metafile walk); results are
  /// pool-independent.
  bool mount_from_topaa();

  /// Restores the scoreboard by reading the bitmap metafile back from the
  /// store.  After a TopAA mount this runs in the background while the
  /// seeded cache already serves the allocator (§3.4).  With a pool in
  /// the runtime the walk + scoring run as the pipelined per-AA scan;
  /// byte-identical to the serial path at any worker count.
  void rebuild_scoreboard();

  /// Full (slow) rebuild: rebuild_scoreboard() plus a from-scratch cache
  /// build — the path taken when no TopAA metafile is usable.
  void scan_rebuild();

  // --- Introspection ---------------------------------------------------------
  const Activemap& activemap() const noexcept { return activemap_; }
  const AaScoreBoard& scoreboard() const noexcept { return board_; }
  const Hbps& cache() const noexcept { return cache_; }
  const AaLayout& layout() const noexcept { return layout_; }
  BlockStore& store() noexcept { return store_; }
  std::uint64_t free_blocks() const noexcept {
    return activemap_.total_free();
  }
  /// Free fraction of the AA the cursor is currently filling (test hook).
  std::optional<AaId> cursor_aa() const noexcept {
    return cursor_aa_ == kInvalidAaId ? std::nullopt
                                      : std::optional<AaId>(cursor_aa_);
  }

 private:
  /// Ensures the cursor points at an AA with free space; returns false on
  /// a truly full volume.
  bool ensure_cursor(CpStats& stats);
  void retire_cursor();

  const Runtime* rt_;
  VolumeId id_;
  FlexVolConfig cfg_;
  Rng rng_;

  /// Backing store: bitmap metafile blocks, then two TopAA blocks.
  BlockStore store_;
  std::uint64_t topaa_base_;

  Activemap activemap_;
  AaLayout layout_;
  AaScoreBoard board_;
  Hbps cache_;

  AaId cursor_aa_ = kInvalidAaId;
  Vbn cursor_pos_ = 0;
  std::vector<AaId> retired_;

  std::vector<Vbn> block_map_;      // logical -> vvbn
  std::vector<Vbn> container_map_;  // vvbn -> pvbn

  struct Snapshot {
    SnapId id;
    std::vector<Vbn> block_map;  // logical -> vvbn at freeze time
  };
  std::vector<Snapshot> snapshots_;
  SnapId next_snap_id_ = 1;
  /// vvbns referenced by at least one snapshot.
  Bitmap snap_held_;
  /// Bulk frees from snapshot deletion, reclaimed region by region.
  DelayedFreeLog delayed_;

  /// Obs handles resolved once at construction, labelled vol="<id>" (a
  /// registry lookup per event would hash the name on every allocation).
  /// Null when obs is compiled out.
  struct Metrics {
    obs::Counter* checkouts = nullptr;
    obs::LinearHistogram* checkout_free_frac = nullptr;
    obs::Counter* putbacks = nullptr;
    obs::Counter* scoreboard_changed = nullptr;
    obs::Counter* hbps_replenishes = nullptr;
    /// Bound into cache_ and delayed_ (core never sees the registry).
    obs::Counter* hbps_rebins = nullptr;
  };
  void resolve_metrics();
  /// (Re)binds the HBPS rebin counters — after construction and whenever
  /// cache_ is replaced wholesale (TopAA load, scan rebuild).
  void bind_cache_counters();
  Metrics metrics_{};
};

}  // namespace wafl
