#include "wafl/media_config.hpp"

#include "util/assert.hpp"
#include "util/units.hpp"

namespace wafl {

std::unique_ptr<DeviceModel> make_device(const MediaConfig& cfg,
                                         std::uint64_t capacity_blocks) {
  if (cfg.azcs) {
    // The AZCS wrapper exposes 63 data blocks per 64 raw blocks; size the
    // raw media so the DATA capacity matches what the caller asked for.
    capacity_blocks = (capacity_blocks + kAzcsDataBlocksPerRegion - 1) /
                      kAzcsDataBlocksPerRegion * kAzcsRegionBlocks;
  }
  std::unique_ptr<DeviceModel> dev;
  switch (cfg.type) {
    case MediaType::kHdd:
      dev = std::make_unique<HddModel>(capacity_blocks, cfg.hdd);
      break;
    case MediaType::kSsd:
      if (cfg.ssd_ftl == SsdFtl::kBlockMapped) {
        dev = std::make_unique<BlockMappedSsdModel>(capacity_blocks,
                                                    cfg.ssd);
      } else {
        dev = std::make_unique<SsdModel>(capacity_blocks, cfg.ssd);
      }
      break;
    case MediaType::kSmr:
      dev = std::make_unique<SmrModel>(capacity_blocks, cfg.smr);
      break;
    case MediaType::kObjectStore:
      dev = std::make_unique<ObjectStoreModel>(capacity_blocks,
                                               cfg.object_store);
      break;
  }
  WAFL_ASSERT(dev != nullptr);
  if (cfg.azcs) {
    dev = std::make_unique<AzcsDevice>(std::move(dev));
  }
  return dev;
}

MediaGeometry media_geometry(const MediaConfig& cfg) {
  MediaGeometry g;
  g.type = cfg.type;
  g.azcs = cfg.azcs;
  switch (cfg.type) {
    case MediaType::kSsd:
      g.erase_block_blocks = cfg.ssd.pages_per_erase_block;
      break;
    case MediaType::kSmr:
      g.zone_blocks = cfg.smr.zone_blocks;
      if (cfg.azcs) {
        // The file system addresses data blocks; 63 of every 64 physical
        // blocks are data, so a physical zone covers fewer data blocks.
        g.zone_blocks =
            g.zone_blocks * kAzcsDataBlocksPerRegion / kAzcsRegionBlocks;
      }
      break;
    case MediaType::kHdd:
    case MediaType::kObjectStore:
      break;
  }
  return g;
}

}  // namespace wafl
