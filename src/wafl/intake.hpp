// Intake leases: per-shard reservations of contiguous block runs for the
// concurrent allocation front end (DESIGN.md §14).
//
// Blelloch & Wei's concurrent fixed-size allocator reserves from a shared
// pool in constant time with one fetch_add per grab; WAFL's front end
// wants the same shape so N intake threads can claim contiguous runs out
// of the best allocation areas without a lock.  Each intake shard holds a
// lease on one AA-sized region (chosen from the AA caches' current top
// picks); reserve() is a bump-pointer fetch_add against the shard's slot,
// so a hit costs one atomic op and hands back a contiguous [base, base+n)
// run.  A miss (lease exhausted, or no lease armed) falls through to the
// normal CP-time allocation path.
//
// Leases are ADVISORY and score-neutral by design: the CP's physical
// write allocation never reads them, so they cannot perturb the plan/
// execute pipeline's deterministic output, and a lease lost in a crash is
// indistinguishable from blocks that were never allocated (crash
// invariants I-A..I-D hold trivially; the sweep checks this with the
// cp.in_lease_drain hook).  What they buy is the front-end contract —
// contiguous-run placement hints plus hit/miss/contention accounting that
// the obs layer exports per shard — while the deterministic allocator
// remains the single source of truth for media state.
//
// Concurrency contract: reserve(shard, n) races only with itself on one
// slot (the driver calls it under that shard's intake lock, but the slot
// is atomic so even lock-free callers stay safe).  drain_and_rearm()
// requires ALL shards quiesced — the driver holds every shard lock during
// the CP freeze — and folds shard slots in shard-id order, which is what
// keeps the canonical fold order fixed under contention.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace wafl {

/// One leasable run of physical blocks: an AA (or AA prefix) of RAID
/// group `rg` starting at absolute VBN `base`.
struct LeaseRegion {
  RaidGroupId rg = 0;
  Vbn base = 0;
  std::uint64_t len = 0;
};

/// Result of one reserve(): a contiguous run [base, base + len) when hit,
/// len possibly short of the request at lease exhaustion.
struct LeaseGrant {
  bool hit = false;
  Vbn base = 0;
  std::uint64_t len = 0;
};

/// Per-shard drain record, reported at every generation swap.
struct LeaseDrain {
  RaidGroupId rg = 0;
  /// Blocks reserved out of the lease this generation (clamped to len).
  std::uint64_t used = 0;
  /// The lease's full capacity this generation (0 = shard was unarmed).
  std::uint64_t len = 0;
};

class IntakeLeases {
 public:
  explicit IntakeLeases(std::size_t shards);

  IntakeLeases(const IntakeLeases&) = delete;
  IntakeLeases& operator=(const IntakeLeases&) = delete;

  std::size_t shard_count() const noexcept { return nshards_; }

  /// Reserves up to `n` contiguous blocks from `shard`'s lease.  One
  /// fetch_add; never blocks, never touches another shard.
  LeaseGrant reserve(std::size_t shard, std::uint64_t n) noexcept;

  /// Generation swap: reads every shard's usage (shard-id order), then
  /// re-arms shard i with regions[i % regions.size()] (unarmed when
  /// `regions` is empty).  Requires all reservers quiesced.
  std::vector<LeaseDrain> drain_and_rearm(std::span<const LeaseRegion> regions);

 private:
  /// Cache-line isolated so shard slots never false-share.
  struct alignas(64) Slot {
    Vbn base = 0;
    std::uint64_t len = 0;
    RaidGroupId rg = 0;
    std::atomic<std::uint64_t> used{0};
  };

  std::size_t nshards_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace wafl
