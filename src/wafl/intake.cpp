#include "wafl/intake.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wafl {

IntakeLeases::IntakeLeases(std::size_t shards)
    : nshards_(shards), slots_(std::make_unique<Slot[]>(shards)) {
  WAFL_ASSERT(shards > 0);
}

LeaseGrant IntakeLeases::reserve(std::size_t shard, std::uint64_t n) noexcept {
  WAFL_ASSERT(shard < nshards_);
  Slot& s = slots_[shard];
  if (s.len == 0) return {};  // unarmed
  // Bump-pointer reservation (Blelloch & Wei): the fetch_add is the whole
  // critical section.  Overshoot past len just means misses until rearm.
  const std::uint64_t at = s.used.fetch_add(n, std::memory_order_relaxed);
  if (at >= s.len) return {};
  return {true, s.base + at, std::min(n, s.len - at)};
}

std::vector<LeaseDrain> IntakeLeases::drain_and_rearm(
    std::span<const LeaseRegion> regions) {
  std::vector<LeaseDrain> drained;
  drained.reserve(nshards_);
  for (std::size_t i = 0; i < nshards_; ++i) {
    Slot& s = slots_[i];
    const std::uint64_t raw = s.used.load(std::memory_order_relaxed);
    drained.push_back({s.rg, std::min(raw, s.len), s.len});
    if (regions.empty()) {
      s.base = 0;
      s.len = 0;
      s.rg = 0;
    } else {
      const LeaseRegion& r = regions[i % regions.size()];
      s.base = r.base;
      s.len = r.len;
      s.rg = r.rg;
    }
    s.used.store(0, std::memory_order_relaxed);
  }
  return drained;
}

}  // namespace wafl
