#include "wafl/runtime.hpp"

#include <utility>

#include "wafl/write_allocator.hpp"

namespace wafl {

// --- DrainExecutor ---------------------------------------------------------

DrainExecutor::DrainExecutor(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

DrainExecutor::~DrainExecutor() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void DrainExecutor::submit(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void DrainExecutor::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

// --- Runtime ---------------------------------------------------------------

CpPhaseProfile& Runtime::cp_phase_profile() const {
  return profile_ != nullptr ? *profile_ : ::wafl::cp_phase_profile();
}

std::string Runtime::labels(std::string_view base) const {
  if (agg_id_.empty()) return std::string(base);
  std::string out = "agg=\"" + agg_id_ + "\"";
  if (!base.empty()) {
    out += ',';
    out += base;
  }
  return out;
}

const Runtime& process_runtime() {
  static const Runtime rt;
  return rt;
}

// --- RuntimeBundle ---------------------------------------------------------

RuntimeBundle::RuntimeBundle(std::string id)
    : agg_id(std::move(id)), profile(std::make_unique<CpPhaseProfile>()) {
  flight.bind_registry(&registry);
  hooks.bind_obs(&registry, &flight);
}

RuntimeBundle::~RuntimeBundle() = default;

Runtime RuntimeBundle::runtime(ThreadPool* pool, DrainExecutor* exec) {
  return Runtime{}
      .with_agg_id(agg_id)
      .with_registry(&registry)
      .with_flight_recorder(&flight)
      .with_crash_hooks(&hooks)
      .with_cp_phase_profile(profile.get())
      .with_pool(pool)
      .with_drain_executor(exec);
}

}  // namespace wafl
