#include "wafl/mount.hpp"

#include <chrono>

#include "fault/crash_point.hpp"
#include "obs/obs.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

std::uint64_t total_reads(Aggregate& agg) {
  std::uint64_t reads = agg.meta_store().stats().block_reads +
                        agg.topaa_store().stats().block_reads;
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    reads += agg.volume(v).store().stats().block_reads;
  }
  return reads;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

// Volumes own disjoint state and stores, so per-volume mount work fans
// out; the concurrent-safe BlockStore keeps each volume's store walk
// sound next to the others.  Serial with no pool (or one volume), which
// is also the replay-exact path for the named mount crash hooks.
void for_each_volume(Aggregate& agg, ThreadPool* pool,
                     const std::function<void(VolumeId)>& fn) {
  const std::size_t n = agg.volume_count();
  if (pool != nullptr && n > 1) {
    pool->parallel_for_dynamic(0, n, [&](std::size_t v) {
      fn(static_cast<VolumeId>(v));
    });
  } else {
    for (VolumeId v = 0; v < n; ++v) {
      fn(v);
    }
  }
}

}  // namespace

MountReport mount_all(Aggregate& agg, bool use_topaa) {
  MountReport report;
  report.used_topaa = use_topaa;
  const Runtime& rt = agg.runtime();
  ThreadPool* pool = rt.pool();
  obs::TraceSpan mount_span(obs::SpanKind::kMount, use_topaa ? 1 : 0);

  const std::uint64_t reads0 = total_reads(agg);
  const auto t0 = std::chrono::steady_clock::now();

  WAFL_CRASH_POINT_RT(rt, "mount.begin");
  if (use_topaa) {
    report.rgs_seeded = agg.mount_from_topaa();
    for (VolumeId v = 0; v < agg.volume_count(); ++v) {
      WAFL_CRASH_POINT_RT(rt, "mount.before_vol_seed");
      obs::TraceSpan seed_span(obs::SpanKind::kMountVolSeed, v);
      // The damaged-volume fallback scan inside mount_from_topaa fans
      // out per AA on the runtime's pool (results are pool-independent);
      // the volume loop itself stays serial so the per-volume crash hook
      // keeps its replay-exact firing order.
      if (agg.volume(v).mount_from_topaa()) {
        ++report.vols_seeded;
      }
    }
  } else {
    WAFL_CRASH_POINT_RT(rt, "mount.before_scan");
    agg.scan_rebuild();
    // Two levels of fan-out: volumes in parallel, and each volume's scan
    // fans out per AA on the same pool.  The nested submission is safe
    // because each volume's seeder (the task running the volume) steals
    // read work when no pool worker picks up its readers — see
    // core/scan_pipeline.hpp.
    for_each_volume(agg, pool,
                    [&](VolumeId v) { agg.volume(v).scan_rebuild(); });
  }

  report.gate_cpu_seconds = seconds_since(t0);
  report.gate_block_reads = total_reads(agg) - reads0;

  WAFL_OBS({
    obs::Registry& reg = rt.registry();
    const std::string l = rt.labels();
    reg.counter("wafl.mount.count", l).inc();
    reg.counter("wafl.mount.rgs_seeded", l).add(report.rgs_seeded);
    reg.counter("wafl.mount.vols_seeded", l).add(report.vols_seeded);
    reg.counter("wafl.mount.gate_block_reads", l)
        .add(report.gate_block_reads);
    obs::trace().emit(obs::EventType::kTopAaMount,
                      report.used_topaa ? 1u : 0u, report.rgs_seeded,
                      report.vols_seeded, report.gate_block_reads);
  });
  return report;
}

std::uint64_t complete_background(Aggregate& agg) {
  const std::uint64_t reads0 = total_reads(agg);
  agg.scan_rebuild();
  for_each_volume(agg, agg.runtime().pool(),
                  [&](VolumeId v) { agg.volume(v).scan_rebuild(); });
  return total_reads(agg) - reads0;
}

MountReport recover_mount(Aggregate& agg, bool use_topaa) {
  WAFL_CRASH_POINT_RT(agg.runtime(), "recover.begin");
  // Ground truth first: a reconstructed aggregate's in-memory bitmaps are
  // all-free until loaded, and every recovery decision — TopAA fallback
  // scans, Iron recomputation, the next CP's allocations — reads them.
  obs::TraceSpan load_span(obs::SpanKind::kRecoverLoad);
  agg.load_activemap();
  for_each_volume(agg, agg.runtime().pool(),
                  [&](VolumeId v) { agg.volume(v).rebuild_scoreboard(); });
  load_span.end();
  return mount_all(agg, use_topaa);
}

}  // namespace wafl
