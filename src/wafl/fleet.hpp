// Multi-aggregate fleet driver (DESIGN.md §16).
//
// One process, N aggregates: each fleet member owns a RuntimeBundle (its
// own metric registry scope, flight recorder, crash hooks and phase
// profile) and an Aggregate wired to it, while ALL members share one
// ThreadPool for CP fan-out and one capped DrainExecutor for overlapped
// drains.  A member's workload is a scripted, seeded stream pushed
// through an OverlappedCpDriver with content-keyed shard routing — so the
// dirty sequence each CP freezes is a pure function of the member's
// config, never of scheduling.  That gives the fleet its determinism
// oracle: a member's media after a fleet run is byte-identical to the
// same member run alone (run_solo), at any pool size, with any
// neighbours.  tests/wafl/test_fleet.cpp enforces it; bench/fleet_driver
// reports fleet throughput, per-CP gap and drain contention.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wafl/aggregate.hpp"
#include "wafl/overlapped_cp.hpp"
#include "wafl/runtime.hpp"

namespace wafl {

/// One member: its aggregate shape plus its scripted workload.
struct FleetMemberConfig {
  /// Becomes the runtime's agg_id — the `agg="<id>"` label dimension and
  /// the key of the per-member metrics snapshot.
  std::string id;
  AggregateConfig agg;
  std::vector<FlexVolConfig> volumes;
  /// Aggregate construction seed (volume seeds derive from it).
  std::uint64_t rng_seed = 1;

  /// Scripted workload: `cps` rounds of `blocks_per_cp` seeded dirty
  /// blocks, each round frozen and drained through the overlapped driver.
  std::uint64_t cps = 4;
  std::uint64_t blocks_per_cp = 8192;
  std::uint64_t workload_seed = 1;
  OverlappedCpConfig overlap{};
};

/// What one member's run produced.
struct FleetMemberResult {
  std::string id;
  OverlapStats stats;
  /// FNV-1a over every materialized block of every store the aggregate
  /// owns (media_digest below) — the determinism oracle's operand.
  std::uint64_t media_digest = 0;
  /// JSON snapshot of the member's own registry (empty with obs off).
  std::string metrics_json;
  double wall_seconds = 0.0;
};

struct FleetResult {
  std::vector<FleetMemberResult> members;
  double wall_seconds = 0.0;
};

/// FNV-1a (64-bit) over (block_no, payload) of every materialized block,
/// stores in fixed order: bitmap metafile, TopAA, then each volume's
/// store.  Uses peek — counter-free, injector-free: the bytes the media
/// really holds.
std::uint64_t media_digest(Aggregate& agg);

/// One aggregate + its owned runtime services, runnable standalone.  The
/// shared handles (`pool`, `exec`) may be null: null pool runs CP fan-out
/// serially, null exec gives the driver a lazily owned single-thread
/// executor — both are the bit-identical fallbacks the determinism oracle
/// relies on.
class FleetMember {
 public:
  FleetMember(FleetMemberConfig cfg, ThreadPool* pool, DrainExecutor* exec);

  Aggregate& aggregate() { return *agg_; }
  RuntimeBundle& bundle() { return *bundle_; }
  const FleetMemberConfig& config() const noexcept { return cfg_; }

  /// Runs the scripted workload to completion on the calling thread:
  /// `cps` rounds of seeded intake (content-keyed submit_to_shard
  /// routing, invariant across shard scheduling) each followed by
  /// start_cp(); drains overlap the next round's intake.  Returns the
  /// driver's stats.
  OverlapStats run_workload();

  /// Result snapshot (digest + per-member registry JSON) after a run.
  FleetMemberResult result(const OverlapStats& stats,
                           double wall_seconds) const;

 private:
  FleetMemberConfig cfg_;
  /// Declared before agg_: the aggregate's Runtime points into it.
  std::unique_ptr<RuntimeBundle> bundle_;
  std::unique_ptr<Aggregate> agg_;
};

/// Runs every member's workload concurrently — one submitter thread per
/// member — over one shared pool and one capped drain executor
/// (`drain_threads` dedicated threads for the whole fleet).  Members are
/// fully isolated (own registry, hooks, media); only execution is shared.
FleetResult run_fleet(const std::vector<FleetMemberConfig>& configs,
                      ThreadPool* pool, std::size_t drain_threads = 2);

/// Runs one member's workload alone: no shared pool (serial fan-out), a
/// lazily owned drain executor.  The oracle baseline — a fleet run of the
/// same config must produce a byte-identical media digest.
FleetMemberResult run_solo(const FleetMemberConfig& cfg,
                           ThreadPool* pool);

// --- Geometry presets (the mixed-media fleet shapes §4 evaluates) --------
/// 4+1 HDD group, the historical 4096-stripe AA default (§3.2.1).
RaidGroupConfig fleet_hdd_group(std::uint64_t device_blocks);
/// 4+1 SSD group (block-mapped FTL), erase-block-aligned AAs (§3.2.2).
RaidGroupConfig fleet_ssd_group(std::uint64_t device_blocks);
/// 4+1 SMR group under AZCS zone checksums (§3.2.4).
RaidGroupConfig fleet_smr_group(std::uint64_t device_blocks);

}  // namespace wafl
