// Iron: online verification and repair of the TopAA metafiles (§3.4).
//
// "In rare cases, if the metafile blocks are damaged in the physical media
//  and RAID is unable to reconstruct them ..., the online WAFL repair
//  tool — WAFL Iron — is used to recompute and recover them."
//
// The TopAA metafiles are pure caches: every byte is recomputable from the
// bitmap metafiles.  Iron walks each RAID group's and each volume's TopAA
// blocks, cross-checks them against freshly recomputed AA scores, and
// rewrites any block that is unreadable (checksum failure) or stale
// (scores that disagree with the bitmaps — e.g. left behind by a torn
// update).  Must run quiescent (between CPs, no allocator cursors held by
// a cleaner).
#pragma once

#include <cstdint>

#include "wafl/aggregate.hpp"

namespace wafl {

class ThreadPool;

struct IronReport {
  std::size_t rg_checked = 0;
  /// Groups whose TopAA block failed its checksum / structure check.
  std::size_t rg_unreadable = 0;
  /// Groups whose TopAA content disagreed with the bitmaps.
  std::size_t rg_stale = 0;
  std::size_t rg_rewritten = 0;

  std::size_t vol_checked = 0;
  std::size_t vol_unreadable = 0;
  std::size_t vol_stale = 0;
  std::size_t vol_rewritten = 0;

  /// Wall time of the (possibly parallel) read/verify fan-out and of the
  /// serial repair apply — the two phases of the pFSCK-style split.  The
  /// Amdahl-projected repair speedup gate in tools/check.sh reads these
  /// off a serial run.
  double verify_ms = 0.0;
  double apply_ms = 0.0;

  bool clean() const noexcept {
    return rg_rewritten == 0 && vol_rewritten == 0;
  }
};

/// Verifies every TopAA metafile against scores recomputed from the bitmap
/// metafiles, rewriting damaged or stale blocks.  Returns what it found.
/// Read-only when everything checks out.
///
/// Structured as plan/execute/merge (the PR-5 allocator discipline,
/// applied to repair): a per-unit (RAID group / volume) read+verify
/// fan-out on the aggregate runtime's pool that STAGES repair images
/// without writing, a serial
/// counter fold, then a serial apply that writes the staged images in
/// fixed unit order.  Verdicts and staged images are pure functions of
/// the media, every store slot keeps exactly one writer, and the writes
/// happen in one deterministic order — so reports and repaired media are
/// byte-identical at any worker count, and a crash inside the verify
/// fan-out loses nothing while a crash mid-apply leaves a prefix of
/// repairs that a re-run completes idempotently (TopAA is a pure cache).
/// Crash hooks: "iron.in_parallel_verify" (once per unit, inside the
/// fan-out), "iron.in_repair_apply" (once per unit, serial apply order).
IronReport iron_check_topaa(Aggregate& agg);

}  // namespace wafl
