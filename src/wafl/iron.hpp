// Iron: online verification and repair of the TopAA metafiles (§3.4).
//
// "In rare cases, if the metafile blocks are damaged in the physical media
//  and RAID is unable to reconstruct them ..., the online WAFL repair
//  tool — WAFL Iron — is used to recompute and recover them."
//
// The TopAA metafiles are pure caches: every byte is recomputable from the
// bitmap metafiles.  Iron walks each RAID group's and each volume's TopAA
// blocks, cross-checks them against freshly recomputed AA scores, and
// rewrites any block that is unreadable (checksum failure) or stale
// (scores that disagree with the bitmaps — e.g. left behind by a torn
// update).  Must run quiescent (between CPs, no allocator cursors held by
// a cleaner).
#pragma once

#include <cstdint>

#include "wafl/aggregate.hpp"

namespace wafl {

struct IronReport {
  std::size_t rg_checked = 0;
  /// Groups whose TopAA block failed its checksum / structure check.
  std::size_t rg_unreadable = 0;
  /// Groups whose TopAA content disagreed with the bitmaps.
  std::size_t rg_stale = 0;
  std::size_t rg_rewritten = 0;

  std::size_t vol_checked = 0;
  std::size_t vol_unreadable = 0;
  std::size_t vol_stale = 0;
  std::size_t vol_rewritten = 0;

  bool clean() const noexcept {
    return rg_rewritten == 0 && vol_rewritten == 0;
  }
};

/// Verifies every TopAA metafile against scores recomputed from the bitmap
/// metafiles, rewriting damaged or stale blocks.  Returns what it found.
/// Read-only when everything checks out.
IronReport iron_check_topaa(Aggregate& agg);

}  // namespace wafl
