// WriteAllocator: the aggregate's physical write-allocation engine.
//
// The engine is two layers, mirroring the sharded architecture of the
// paper's companion work ("Scalable Write Allocation in the WAFL File
// System" [10]): per-shard allocators over disjoint state, coordinated by
// a thin layer that only partitions demand.
//
//  - RgAllocator: one RAID group's (or object-store pool's) complete
//    allocation state — geometry and device models, AA layout, scoreboard,
//    AA cache (max-heap §3.3.1 or HBPS §3.3.2), the allocator cursor and
//    open tetris window, the retired-AA list, per-CP device-busy
//    accounting, and this group's TopAA slot (§3.4).  No RgAllocator
//    method reads or writes another group's state.
//
//  - WriteAllocator: owns the group list and the cross-group policy — the
//    round-robin tetris rotation ("WAFL attempts to write to all RAID
//    groups available in an aggregate"), §3.3.1's skip/resume
//    fragmentation bias, and the CP boundary's phase structure.
//
// Plan/execute allocation.  Physical allocation itself is a two-stage
// pipeline.  A cheap serial PLAN walks the CP's demand and assigns each
// pvbn-to-be to a RAID group using only CP-start information: the
// round-robin rotation, §3.3.1's skip bias driven by peek_best_score, and
// per-group capacity read from the free-count summary.  The plan is a
// per-group list of contiguous output runs — group-disjoint by
// construction.  EXECUTE then fans the groups over the ThreadPool: each
// RgAllocator checks AAs out of its own cache, fills tetris windows,
// issues writes to its group-owned devices, and stages its activemap bits
// (set_allocated_unaccounted — bit set now, summary delta folded later).
// A serial MERGE applies the per-group AllocDeltas to the shared summary
// and folds per-group CpStats, both in fixed group order.
//
// CP-boundary parallelism.  Because groups are disjoint, most of
// finish_cp fans out across groups on a ThreadPool — not just the
// in-memory boundary work (applying the group's deferred frees,
// invalidating translated media, folding score deltas into the cache,
// re-admitting retired AAs, staging the TopAA block image) but the
// persistence tail too: the metafile flush fans out per dirty block and
// the TopAA commits per group, which the concurrent-safe BlockStore
// (single writer per slot, disjoint-slot I/O unlocked) makes sound.
// Determinism is preserved by construction, not by luck:
//
//  1. demand is partitioned before any fan-out.  On the allocation side
//     the serial plan fixes every group's quota and output positions
//     before a single block is taken; on the free side the deferred frees
//     are split by owning group in deferral order (the owner-lookup pass
//     itself fans out, but each owner[i] is a pure function of frees[i],
//     so the partition is identical whatever the worker count);
//  2. each parallel phase touches only disjoint state.  Execute and
//     cp_boundary are group-disjoint; bitmap bit sets and clears are
//     group-disjoint at word granularity too, because device_blocks is a
//     multiple of kTetrisStripes (64), so every group's VBN range spans
//     whole 64-bit bitmap words.  The metafile flush partitions the dirty
//     list, so every metafile store block has exactly one writer; the
//     TopAA commits write per-group slots that never share a store block;
//  3. everything genuinely shared stays serial, in fixed group order: the
//     metafile's free-count summary and dirty set (metafile blocks can
//     straddle group boundaries, so the AllocDelta/FreeDelta merges are
//     serial) and every CpStats fold.
//
// The result is bit-identical file-system state and CpStats for any worker
// count, including none.  Only observability output (trace-event and
// metric-update interleaving) and the order store writes land within one
// phase are outside the contract — which is also why write-count crash
// triggers under workers>0 are interleaving-dependent; named crash hooks
// at workers=0 replay exactly (DESIGN.md §9-§10).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bitmap/activemap.hpp"
#include "core/hbps.hpp"
#include "core/max_heap_cache.hpp"
#include "core/scoreboard.hpp"
#include "core/topaa.hpp"
#include "obs/obs.hpp"
#include "raid/raid_group.hpp"
#include "storage/block_store.hpp"
#include "util/rng.hpp"
#include "wafl/aa_select.hpp"
#include "wafl/cp_stats.hpp"
#include "wafl/intake.hpp"
#include "wafl/media_config.hpp"
#include "wafl/runtime.hpp"

namespace wafl {

class ThreadPool;

struct RaidGroupConfig {
  std::uint32_t data_devices = 4;
  std::uint32_t parity_devices = 1;
  /// Data blocks per device (must be a multiple of kTetrisStripes).
  std::uint64_t device_blocks = 0;
  MediaConfig media{};
  /// AA size override in stripes; by default the §3.2 sizing policy runs.
  std::optional<std::uint32_t> aa_stripes{};
};

/// One RAID group's allocation engine.  See the file comment for the
/// disjointness rules that make cp_boundary() safe to run concurrently
/// across groups.
class RgAllocator {
 public:
  /// Builds the group's full state from its config: geometry, devices,
  /// layout, scoreboard, and the cache form the media dictates (§3.3).
  /// The group owns the TopAa slot at `topaa_base` of `topaa_store`.
  /// Metrics, phase profiles and crash points route through `rt` (null:
  /// the process-default runtime).
  RgAllocator(RaidGroupId id, const RaidGroupConfig& rgc, Vbn base,
              AaSelectPolicy policy, double skip_fraction,
              Activemap& activemap, BlockStore& topaa_store,
              std::uint64_t topaa_base, const Runtime* rt = nullptr);

  // --- Structure accessors (re-exported by the Aggregate facade) -----------
  RaidGroupId id() const noexcept { return raid_.id(); }
  const RaidGroup& raid() const noexcept { return raid_; }
  RaidGroup& raid() noexcept { return raid_; }
  Vbn base() const noexcept { return base_; }
  const AaLayout& layout() const noexcept { return layout_; }
  const AaScoreBoard& board() const noexcept { return board_; }
  const AaCache& cache() const noexcept { return *cache_; }
  /// The group's max-heap; asserts on HBPS pools.
  const MaxHeapAaCache& heap() const;
  /// The group's HBPS; asserts on heap (RAID) groups.
  const Hbps& hbps() const;
  /// True for object-store pools managed by the HBPS (§3.3.2).
  bool raid_agnostic() const noexcept { return hbps_ != nullptr; }
  DeviceModel& data_device(DeviceId d) { return *data_devices_.at(d); }
  DeviceModel& parity_device(DeviceId d) { return *parity_devices_.at(d); }
  const DeviceModel& data_device(DeviceId d) const {
    return *data_devices_.at(d);
  }
  const DeviceModel& parity_device(DeviceId d) const {
    return *parity_devices_.at(d);
  }
  /// First VBN past this group's range.
  Vbn end() const noexcept { return base_ + raid_.geometry().data_blocks(); }
  /// True when no tetris window is open (quiescence check for growth).
  bool window_idle() const noexcept { return window_writes_.empty(); }

  /// The group's current best-`k` AA runs as leasable regions for the
  /// concurrent intake front end (DESIGN.md §14).  A const read of the
  /// heap's top picks: nothing is checked out or re-scored, so the CP's
  /// own allocation pipeline is unaffected (leases stay score-neutral).
  /// Empty for HBPS pools and while the cache is empty.
  std::vector<LeaseRegion> lease_regions(std::size_t k) const;

  // --- Segment-cleaner coordination (§3.3.1) -------------------------------
  /// Removes `aa` from the heap so the allocator cannot target it while
  /// the cleaner relocates its blocks.  False when already out (allocator
  /// cursor or another checkout) or when the group has no heap.
  bool checkout(AaId aa);
  /// Returns a checked-out AA to the cache at its current board score.
  void checkin(AaId aa);

  // --- CP-side allocation --------------------------------------------------
  /// Starts a CP interval: clears per-CP device-busy accounting.
  void begin_cp();

  /// Allocates up to `need` pvbns from the group's current tetris window,
  /// checking out a fresh AA when needed; honors the skip threshold unless
  /// `force`.  Returns the number taken (0 when the group declines or is
  /// full).  `rng` drives the kRandom policy.
  std::uint64_t fill(std::uint64_t need, std::vector<Vbn>& out,
                     CpStats& stats, bool force, Rng& rng);

  /// Builds and submits the TetrisWrite for the open window, then marks
  /// the window's blocks allocated.
  void flush_window(CpStats& stats);

  /// Records a deferred free against the group's scoreboard.
  void note_free(Vbn v) { board_.note_free(v); }

  /// The group-disjoint half of the CP boundary; safe to run concurrently
  /// with other groups' cp_boundary calls.  Clears this group's deferred
  /// frees word-batched (this group's bitmap words are disjoint from
  /// every other group's), invalidates translated media in deferral
  /// order, folds score deltas into the cache, re-admits retired AAs, and
  /// stages — but does not write — the group's TopAA block image.
  /// Returns the per-metafile-block freed counts; the caller folds them
  /// into the shared free-count summary serially, in group order
  /// (apply_free_deltas — metafile blocks can straddle group boundaries).
  BitmapMetafile::FreeDelta cp_boundary(std::span<const Vbn> frees);

  /// Companion to cp_boundary(): writes the staged TopAA image to the
  /// group's slot and returns the number of blocks written (0 unless the
  /// cache policy staged an image).  Groups write disjoint slots, so
  /// commits run concurrently across groups; the caller folds the counts
  /// into CpStats serially.
  std::uint64_t commit_topaa();

  /// Slowest device's busy time this CP.
  SimTime slowest_device_busy() const;

  /// Folds per-device busy time into the cached per-device counters and
  /// emits device trace events.  Serial, at the CP boundary.
  void fold_device_metrics() const;

  // --- Mount (§3.4) and rebuild --------------------------------------------
  /// Seeds the cache from the group's TopAA slot; on damage falls back to
  /// a scoreboard rescan + full cache rebuild.  Returns true when seeded
  /// from TopAA.
  bool mount_seed();

  /// Rebuilds scoreboard and cache from the (already loaded) activemap.
  void rebuild_from_scan();

  /// rebuild_from_scan() with the per-AA scores already computed by the
  /// pipelined mount scan (identical values by construction — the
  /// pipeline uses the scoreboard's own scoring expression), so adoption
  /// skips the second metafile walk and just resets allocator state and
  /// rebuilds the cache.
  void adopt_scan(std::vector<AaScore> scores);

  /// Re-derives the scoreboard from the activemap and rebuilds the cache
  /// (aging-seed support).  Asserts the group is quiescent.
  void reseed_board();

 private:
  friend class WriteAllocator;

  // --- Plan/execute support (driven by WriteAllocator::allocate) ----------
  /// Plan-time eligibility under §3.3.1's skip bias: true when the group's
  /// best cached AA scores at or above the skip threshold.  Runs the
  /// deterministic HBPS replenish first if the list is dry, so a drained
  /// list never masquerades as fragmentation.
  bool plan_eligible();
  /// Exact upper bound on what execute can deliver: free bits in the
  /// group's range minus blocks already claimed by the open tetris window
  /// (claimed blocks stay bit-clear until the window flushes).  Exact
  /// because frees are deferred to the CP boundary.
  std::uint64_t plan_capacity() const;
  /// Free blocks remaining in the checked-out cursor AA (0 without one):
  /// what the group can deliver without another checkout — the cursor-
  /// drain allowance a bias-ineligible group still gets.
  std::uint64_t plan_cursor_free() const;
  /// Enters staged-allocation mode: flush_window() sets activemap bits
  /// only (word-disjoint across groups) and counts them in a per-metafile-
  /// block overlay instead of touching the shared summary/dirty set.
  void begin_staged_alloc();
  /// Leaves staged mode, returning the overlay as an AllocDelta for the
  /// serial summary merge.
  BitmapMetafile::AllocDelta end_staged_alloc();

  /// Free blocks an AA has RIGHT NOW (activemap view, which unlike the
  /// scoreboard reflects this CP's own allocations — including staged
  /// ones, via the overlay, while in staged mode).
  std::uint64_t live_aa_free(AaId aa) const;

  /// Ensures an AA is checked out; honors the skip threshold unless
  /// `force`.  False when the group cannot allocate now.
  bool ensure_cursor(CpStats& stats, bool force, Rng& rng);

  /// Rebuilds the cache from the scoreboard (heap or HBPS form).
  void build_cache();

  /// Resolves the per-group labelled metric handles (rg="N", plus the
  /// runtime's agg="<id>" dimension when set).
  void resolve_metrics();
  /// (Re)binds the cache's internal counters — after construction and
  /// after mount_seed() replaces the HBPS image (the loaded copy arrives
  /// unbound).
  void bind_cache_counters();

  const Runtime* rt_;
  AaSelectPolicy policy_;
  RaidGroup raid_;
  Vbn base_;
  std::uint32_t aa_stripes_;
  AaScore skip_threshold_;  // best-AA score below this => skip the group
  std::vector<std::unique_ptr<DeviceModel>> data_devices_;
  std::vector<std::unique_ptr<DeviceModel>> parity_devices_;
  AaLayout layout_;
  AaScoreBoard board_;
  /// Exactly one of these is set: heap for RAID groups, hbps for
  /// object-store pools (then `cache_` aliases it).
  MaxHeapAaCache* heap_ = nullptr;
  Hbps* hbps_ = nullptr;
  std::unique_ptr<AaCache> cache_;

  Activemap& activemap_;
  BlockStore& topaa_store_;
  std::uint64_t topaa_base_;

  AaId cursor_aa_ = kInvalidAaId;
  Vbn cursor_pos_ = 0;  // absolute pvbn
  std::vector<Vbn> window_writes_;
  std::vector<AaId> retired_;
  std::vector<SimTime> device_busy_;  // data then parity, this CP

  /// Staged-allocation mode (execute phase): per-metafile-block count of
  /// bits set via set_allocated_unaccounted(), pending the serial summary
  /// merge.  `staged_base_` is the group's first metafile block.
  bool staged_ = false;
  std::vector<std::uint32_t> staged_allocs_;
  std::uint64_t staged_base_ = 0;

  /// TopAA image staged by cp_boundary() for commit_topaa() to write.
  TopAaImage staged_topaa_;
  bool topaa_staged_ = false;

  /// Metric handles cached at construction, labelled rg="N" so per-group
  /// series stay separate (function-local statics merged all groups into
  /// one).  Null when obs is compiled out.
  struct Metrics {
    obs::Counter* checkouts = nullptr;
    obs::LinearHistogram* checkout_free_frac = nullptr;
    obs::Counter* putbacks = nullptr;
    obs::Counter* cp_rekeys = nullptr;
    obs::Counter* scoreboard_changed = nullptr;
    obs::Counter* hbps_replenishes = nullptr;
    /// Bound into the cache structures (core never reaches the registry).
    obs::Counter* heap_rekeys = nullptr;
    obs::Counter* hbps_rebins = nullptr;
    std::vector<obs::Counter*> device_busy;  // data then parity
  };
  Metrics metrics_{};
};

/// Wall-clock time allocate()/finish_cp() spent in each of their phases,
/// accumulated across calls until reset().  A diagnostic aid for benches
/// and tools — the parallel-CP bench derives its serial-fraction and
/// Amdahl-implied speedup numbers from it; the engine itself never reads
/// it.  Written by the allocate/finish_cp caller thread only, so it is
/// meaningful per-process for one aggregate running CPs at a time (which
/// is every bench and test).
struct CpPhaseProfile {
  // allocate() — the plan/execute pipeline.
  double plan_ms = 0.0;         // serial: per-group quota/run assignment
  double execute_ms = 0.0;      // parallel: per-group tetris fill
  double alloc_merge_ms = 0.0;  // serial: AllocDelta + stats folds, spill
  // finish_cp().
  double windows_ms = 0.0;    // serial: flush open tetris windows
  double owner_ms = 0.0;      // parallel: per-free owner lookup
  double partition_ms = 0.0;  // serial: scatter frees into group runs
  double boundary_ms = 0.0;   // parallel: per-group cp_boundary
  double merge_ms = 0.0;      // serial: FreeDelta summary folds
  double flush_ms = 0.0;      // parallel: metafile dirty-block flush
  double topaa_ms = 0.0;      // parallel: per-group TopAA commits
  double fold_ms = 0.0;       // serial: stats and metric folds

  double serial_ms() const noexcept {
    return plan_ms + alloc_merge_ms + windows_ms + partition_ms + merge_ms +
           fold_ms;
  }
  double parallel_ms() const noexcept {
    return execute_ms + owner_ms + boundary_ms + flush_ms + topaa_ms;
  }
  double total_ms() const noexcept { return serial_ms() + parallel_ms(); }
  void reset() noexcept { *this = CpPhaseProfile{}; }
};

/// Process-global phase profile (like obs::registry()).
CpPhaseProfile& cp_phase_profile();

/// The thin coordinator: demand partitioning across per-group engines.
class WriteAllocator {
 public:
  /// The engine allocates against `activemap` (shared with ownership and
  /// volume machinery, which stay in Aggregate) and persists TopAA images
  /// into `topaa_store`, one slot of TopAaFile::kRaidAgnosticBlocks per
  /// group.  `rng` drives the kRandom policy.  `rt` supplies the worker
  /// pool, metric scope and crash-hook registry (null: the process-default
  /// runtime — global singletons, serial execution).
  WriteAllocator(AaSelectPolicy policy, double skip_fraction, Rng& rng,
                 Activemap& activemap, BlockStore& topaa_store,
                 const Runtime* rt = nullptr);
  ~WriteAllocator();

  WriteAllocator(const WriteAllocator&) = delete;
  WriteAllocator& operator=(const WriteAllocator&) = delete;
  /// Movable so Aggregate stays a return-by-value type (benches build one
  /// in a helper).  The reference members still bind to the original
  /// aggregate's activemap/rng/stores, so — exactly like Activemap's
  /// store pointer before this refactor — a moved-to engine is only valid
  /// when the move is elided or the source aggregate outlives it.
  WriteAllocator(WriteAllocator&&) = default;

  /// Registers a group over [base, base + data blocks).  Ranges must be
  /// appended in ascending VBN order.  The round-robin pointer is clamped
  /// so mid-run growth cannot leave it referencing a rotation slot that
  /// only exists in the new, larger modulus (the pre-engine bug: growth
  /// silently skewed the rotation until the pointer next wrapped).
  RaidGroupId add_group(const RaidGroupConfig& rgc, Vbn base);

  std::size_t group_count() const noexcept { return groups_.size(); }
  RgAllocator& group(RaidGroupId rg) { return *groups_.at(rg); }
  const RgAllocator& group(RaidGroupId rg) const { return *groups_.at(rg); }
  /// The group whose VBN range holds `v`.
  RaidGroupId group_of_pvbn(Vbn v) const;
  AaSelectPolicy policy() const noexcept { return policy_; }

  /// True when no group has an open tetris window (growth quiescence).
  bool windows_idle() const;

  // --- Segment-cleaner support ---------------------------------------------
  /// Checks a specific AA out of the group's heap.  Requires the cache
  /// policy.  False when the AA is already out or the group is HBPS.
  bool checkout_aa(RaidGroupId rg, AaId aa);
  /// Returns a checked-out AA at its current scoreboard score.
  void checkin_aa(RaidGroupId rg, AaId aa);

  // --- CP-side allocation --------------------------------------------------
  void begin_cp();

  /// Generation swap at CP freeze (DESIGN.md §13).  The engine's staged
  /// accounting is local to each allocate() call and every finish_cp()
  /// drains TopAA staging and the tetris windows to empty, so the swap is
  /// a generation bump: anything still open (e.g. windows the segment
  /// cleaner filled between CPs) belongs to the generation being frozen
  /// and is flushed by that generation's drain.
  void freeze_generation() { ++generation_; }
  /// CP generations frozen so far (the in-flight drain's generation id).
  std::uint64_t generation() const noexcept { return generation_; }

  /// Leasable regions for the concurrent intake front end: each group's
  /// best `per_group` AA runs, concatenated in group-id order (the
  /// canonical order, so lease assignment is deterministic).  Const heap
  /// reads only — safe between CPs, never during a drain.
  std::vector<LeaseRegion> lease_regions(std::size_t per_group) const;

  /// Allocates `n` pvbns in write order, appending to `out`.  Under the
  /// cache policy this is the plan/execute pipeline: a serial plan fixes
  /// every group's quota and output positions (round-robin rotation with
  /// §3.3.1's skip bias, escalating to force when every group declines),
  /// execute fans the group-disjoint fills over the runtime's pool
  /// (serially, in group order, when the runtime has none — the same code
  /// path, so results are bit-identical at any worker count), and a
  /// serial merge folds the staged summary deltas and per-group stats in
  /// group order.  The kRandom policy keeps the serial rotation loop.
  /// False when out of space; `out` then carries exactly the pvbns
  /// actually allocated.
  bool allocate(std::uint64_t n, std::vector<Vbn>& out, CpStats& stats);

  /// Records a deferred free against the owning group's scoreboard (the
  /// activemap deferral itself stays with the Aggregate).
  void note_free(Vbn v) { groups_[group_of_pvbn(v)]->note_free(v); }

  /// The CP boundary.  Serial prologue (flush open windows, partition the
  /// deferred frees by group); parallel phase A (per-group cp_boundary);
  /// serial merge (fold each group's FreeDelta into the shared summary,
  /// in group order); parallel phase B1 (metafile flush, partitioned by
  /// dirty block) and B2 (per-group TopAA commits); serial stats and
  /// metric folds.  With no pool in the runtime every phase runs strictly
  /// serially in the same order.  Results are bit-identical for any
  /// worker count.
  void finish_cp(CpStats& stats);

  // --- Mount (§3.4) ----------------------------------------------------------
  /// Seeds every group's cache from its TopAA slot; damaged groups fall
  /// back to a scoreboard scan.  Returns the number seeded from TopAA.
  std::size_t mount_from_topaa();

  /// Reloads the bitmap metafile from its store and rebuilds every group's
  /// scoreboard and cache; per-group rebuilds parallelize on the
  /// runtime's pool.
  void scan_rebuild();

  /// Aging-seed hook: marks a random `fraction` of the group's blocks
  /// allocated and re-derives its scoreboard and cache (§4.2).
  void seed_occupancy(RaidGroupId rg, double fraction, Rng& rng);

 private:
  /// The pre-split serial rotation loop: fill whichever group the rotation
  /// points at until demand is met or a forced round yields nothing.
  /// Remains the whole story for the kRandom policy and serves as the
  /// safety-net spill path when an executed plan comes up short.
  bool allocate_serial(std::uint64_t n, std::vector<Vbn>& out,
                       CpStats& stats);

  const Runtime* rt_;
  AaSelectPolicy policy_;
  double skip_fraction_;
  Rng& rng_;
  Activemap& activemap_;
  BlockStore& topaa_store_;

  std::vector<std::unique_ptr<RgAllocator>> groups_;
  /// Round-robin pointer for tetris distribution across groups.
  std::size_t rr_next_ = 0;
  /// Bumped by freeze_generation() at every CP freeze.
  std::uint64_t generation_ = 0;
};

}  // namespace wafl
