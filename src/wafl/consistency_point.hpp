// Consistency point: WAFL's atomic flush of a batch of modifications
// (§2.1).
//
// The CP is where every paper mechanism meets:
//   - each dirty logical block gets BOTH a new virtual VBN (FlexVol,
//     HBPS-guided, §3.3.2) and a new physical VBN (aggregate, max-heap-
//     guided tetris fill, §3.3.1);
//   - the overwritten blocks' old VBNs are freed in one batch at the CP
//     boundary, producing the score deltas that rebalance the caches;
//   - the physical writes stream to the device models as tetrises, which
//     yields stripe/chain/FTL behaviour;
//   - bitmap metafiles are flushed (their dirty-block counts are the
//     colocation cost §2.5 cares about) and TopAA metafiles are persisted
//     (§3.4).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "wafl/aggregate.hpp"
#include "wafl/cp_stats.hpp"

namespace wafl {

class ThreadPool;

/// One dirty user block awaiting write-out.
struct DirtyBlock {
  VolumeId vol;
  std::uint64_t logical;
};

class ConsistencyPoint {
 public:
  /// Delayed-free regions reclaimed per volume per CP (bounds the extra
  /// metafile-block traffic a snapshot deletion adds to any one CP).
  static constexpr std::size_t kDelayedFreeRegionsPerCp = 4;

  /// The frozen generation: the CP's input, captured by freeze() and
  /// consumed by drain().  Holds the dirty list grouped by volume
  /// (stable sort — per-volume submission order preserved, which is what
  /// makes the overlapped driver byte-identical to stop-the-world).
  struct Frozen {
    std::vector<DirtyBlock> dirty;
    std::uint32_t cp_no = 0;
    std::uint64_t start_ns = 0;
  };

  /// CP start (DESIGN.md §13): swaps the active generation of every piece
  /// of CP-mutable dirty state into the frozen generation — Aggregate::
  /// freeze_cp_generation() — and captures/sorts the dirty list.  Cheap
  /// (no media I/O, O(dirty + staged entries)); the returned snapshot is
  /// bit-identical to what the pre-split run() operated on, which the
  /// determinism oracle checks.  Crash hook `cp.in_gen_swap` fires
  /// mid-swap (aggregate frozen, volumes still staging).
  static Frozen freeze(Aggregate& agg, std::span<const DirtyBlock> dirty);

  /// The phased CP work over a frozen generation: physical allocation,
  /// per-volume remap, delayed-free reclaim, and the boundary.  Under the
  /// OverlappedCpDriver this runs on a drain executor while intake fills
  /// the next active generation; it is the ONLY mutator of the aggregate
  /// while in flight.  Fan-out rides the aggregate runtime's pool.
  static CpStats drain(Aggregate& agg, Frozen&& frozen);

  /// Runs one stop-the-world CP over `dirty` (already coalesced: at most
  /// one entry per (vol, logical) pair): freeze() + drain() back to back.
  /// Returns the CP's counters; `ops` is left 0 for the caller to fill
  /// (the CP does not know how blocks group into client operations).
  ///
  /// With a thread pool in the aggregate's runtime, every substantial CP
  /// phase now shards — the
  /// direction of the paper's companion work, "Scalable Write Allocation
  /// in the WAFL File System" [10].  The per-volume phase (virtual VBN
  /// allocation and remapping) runs in parallel across volumes, which own
  /// disjoint state.  Physical allocation runs as a plan/execute split: a
  /// cheap serial plan partitions demand across RAID groups (round-robin
  /// rotation + §3.3.1 skip bias, from CP-start information only), the
  /// group-disjoint tetris fills execute in parallel, and a serial merge
  /// folds the staged summary deltas and stats.  The CP boundary's
  /// per-RAID-group half (free application, device invalidation, score
  /// folds, cache re-admission, TopAA image builds), the metafile flush
  /// (per dirty block) and the TopAA commits (per group slot) fan out via
  /// WriteAllocator::finish_cp; only the shared summary merges and stats
  /// folds remain serial.  The result is bit-identical to the serial path
  /// at any worker count.
  static CpStats run(Aggregate& agg, std::span<const DirtyBlock> dirty);
};

}  // namespace wafl
