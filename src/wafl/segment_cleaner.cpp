#include "wafl/segment_cleaner.hpp"

#include "obs/obs.hpp"

namespace wafl {
namespace {

/// The group's best cleaning candidate: highest-scoring AA that is not
/// already empty, not yet cleaned, free enough to be worth the I/O, and
/// resident in the heap (not an allocator cursor).
AaId pick_candidate(const RgAllocator& group,
                    const std::unordered_set<AaId>& cleaned,
                    double min_free_fraction) {
  const AaScoreBoard& board = group.board();
  const AaLayout& layout = group.layout();
  AaId best = kInvalidAaId;
  AaScore best_score = 0;
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    const AaScore score = board.score(aa);
    const AaScore capacity = layout.aa_capacity(aa);
    if (score == capacity) continue;  // already empty
    if (cleaned.contains(aa)) continue;
    if (static_cast<double>(score) <
        min_free_fraction * static_cast<double>(capacity)) {
      continue;
    }
    if (!group.heap().contains(aa)) continue;  // checked out elsewhere
    if (best == kInvalidAaId || score > best_score) {
      best = aa;
      best_score = score;
    }
  }
  return best;
}

std::uint32_t empty_aa_count(const RgAllocator& group) {
  const AaScoreBoard& board = group.board();
  const AaLayout& layout = group.layout();
  std::uint32_t empties = 0;
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    if (board.score(aa) == layout.aa_capacity(aa)) ++empties;
  }
  return empties;
}

}  // namespace

std::int64_t SegmentCleaner::clean_one(Aggregate& agg, RaidGroupId rg,
                                       AaId aa, CpStats& stats) {
  obs::TraceSpan span(obs::SpanKind::kCleanerCleanOne, rg);
  const AaLayout& layout = agg.write_allocator().group(rg).layout();
  const Vbn begin = layout.aa_begin(aa);
  const Vbn end = layout.aa_end(aa);

  // Collect the AA's live blocks and verify they are all relocatable.
  std::vector<Vbn> live;
  for (Vbn v = begin; v < end; ++v) {
    if (!agg.activemap().is_allocated(v)) continue;
    if (!agg.owner_of(v).has_value()) {
      return -1;  // unowned data (aging seeds): cannot relocate safely
    }
    live.push_back(v);
  }

  // Relocate through the normal allocator; the source AA is checked out,
  // so the new locations land in other AAs.  Cleaning must not start
  // without relocation headroom — a partial failure would leak blocks.
  std::vector<Vbn> targets;
  targets.reserve(live.size());
  const bool ok = agg.allocate_pvbns(live.size(), targets, stats);
  WAFL_ASSERT_MSG(ok, "segment cleaner ran out of relocation space");
  for (std::size_t i = 0; i < live.size(); ++i) {
    const auto owner = *agg.owner_of(live[i]);
    const Vbn old = agg.volume(owner.vol).relocate(owner.vvbn, targets[i]);
    WAFL_ASSERT(old == live[i]);
    agg.set_owner(targets[i], owner.vol, owner.vvbn);
    agg.clear_owner(live[i]);
    agg.defer_free_pvbn(live[i]);
  }
  span.set_b(live.size());
  return static_cast<std::int64_t>(live.size());
}

CleanerReport SegmentCleaner::run(Aggregate& agg) {
  CleanerReport report;
  obs::TraceSpan pass_span(obs::SpanKind::kCleanerPass);
  // The cleaner is an allocation-engine client: candidate selection and
  // AA checkout speak to the WriteAllocator directly; the aggregate is
  // only consulted for what it still owns (activemap, block ownership,
  // volumes).
  WriteAllocator& walloc = agg.write_allocator();
  if (cleaned_.size() < walloc.group_count()) {
    cleaned_.resize(walloc.group_count());
  }

  agg.begin_cp();
  std::uint64_t budget = cfg_.relocation_budget;

  for (RaidGroupId rg = 0; rg < walloc.group_count(); ++rg) {
    const RgAllocator& group = walloc.group(rg);
    if (group.raid_agnostic()) continue;  // heap-managed groups only
    while (budget > 0 && empty_aa_count(group) < cfg_.empty_pool_target) {
      const AaId aa =
          pick_candidate(group, cleaned_[rg], cfg_.min_free_fraction);
      if (aa == kInvalidAaId) break;

      const std::uint64_t live_blocks =
          group.layout().aa_capacity(aa) - group.board().score(aa);
      if (live_blocks > budget) break;  // not affordable this pass
      if (live_blocks > agg.free_blocks() / 2) break;  // no headroom

      if (!walloc.checkout_aa(rg, aa)) break;
      const std::int64_t moved = clean_one(agg, rg, aa, report.cp);
      walloc.checkin_aa(rg, aa);
      if (moved < 0) {
        // Unmovable content: remember so we stop retrying it.
        cleaned_[rg].insert(aa);
        ++report.aas_skipped_unowned;
        continue;
      }
      cleaned_[rg].insert(aa);
      ++report.aas_cleaned;
      report.blocks_relocated += static_cast<std::uint64_t>(moved);
      budget -= static_cast<std::uint64_t>(moved);
    }
  }

  // The cleaning pass commits as its own CP: frees apply, caches rebalance,
  // metafiles flush.
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    agg.volume(v).finish_cp(report.cp);
  }
  agg.finish_cp(report.cp);

  WAFL_OBS({
    const Runtime& rt = agg.runtime();
    obs::Registry& reg = rt.registry();
    const std::string l = rt.labels();
    reg.counter("wafl.cleaner.passes", l).inc();
    reg.counter("wafl.cleaner.aas_cleaned", l).add(report.aas_cleaned);
    reg.counter("wafl.cleaner.blocks_relocated", l)
        .add(report.blocks_relocated);
    obs::trace().emit(obs::EventType::kCleanerPass,
                      static_cast<std::uint32_t>(
                          reg.counter("wafl.cleaner.passes", l).value()),
                      report.aas_cleaned, report.blocks_relocated);
  });
  pass_span.set_b(report.blocks_relocated);
  return report;
}

}  // namespace wafl
