// Per-consistency-point statistics.
//
// These counters are the raw material for both the simulation's cost model
// (CPU time scales with ops, blocks, and metafile-block touches; storage
// time comes from the device models) and the paper's reported metrics
// (chosen-AA free fractions, stripe fullness, write amplification inputs).
#pragma once

#include <cstdint>

#include "util/stats.hpp"
#include "util/types.hpp"

namespace wafl {

struct CpStats {
  /// Modifying operations folded into this CP.
  std::uint64_t ops = 0;
  /// Data blocks written (== pvbns allocated).
  std::uint64_t blocks_written = 0;
  /// Blocks freed by client overwrites in this CP.
  std::uint64_t blocks_freed = 0;

  /// Distinct FlexVol bitmap-metafile blocks dirtied (all volumes).
  std::uint64_t vol_meta_blocks = 0;
  /// Distinct aggregate bitmap-metafile blocks dirtied.
  std::uint64_t agg_meta_blocks = 0;
  /// Metafile blocks flushed to storage at the CP boundary.
  std::uint64_t meta_flush_blocks = 0;

  /// RAID write accounting, summed over all tetrises of the CP.
  std::uint64_t tetrises = 0;
  std::uint64_t full_stripes = 0;
  std::uint64_t partial_stripes = 0;
  std::uint64_t parity_read_blocks = 0;
  std::uint64_t write_chains = 0;

  /// Device busy time of the slowest device (devices run in parallel).
  SimTime storage_time_ns = 0;

  /// AA checkout quality: free fraction (score / capacity) of each AA the
  /// allocator took during the CP.
  RunningStat vol_pick_free_frac;
  RunningStat agg_pick_free_frac;

  /// HBPS list refills triggered by allocation outrunning frees (§3.3.2).
  std::uint64_t hbps_replenishes = 0;

  /// Bitmap bits examined while searching for free blocks.  This is the
  /// mechanistic CPU cost of allocation: filling an AA that is f% free
  /// examines ~1/f bits per block allocated, so emptier chosen AAs mean
  /// less search work (§2.5 / §4.1.2's computational-overhead reduction).
  std::uint64_t vol_bits_scanned = 0;
  std::uint64_t agg_bits_scanned = 0;

  void merge(const CpStats& other) {
    ops += other.ops;
    blocks_written += other.blocks_written;
    blocks_freed += other.blocks_freed;
    vol_meta_blocks += other.vol_meta_blocks;
    agg_meta_blocks += other.agg_meta_blocks;
    meta_flush_blocks += other.meta_flush_blocks;
    tetrises += other.tetrises;
    full_stripes += other.full_stripes;
    partial_stripes += other.partial_stripes;
    parity_read_blocks += other.parity_read_blocks;
    write_chains += other.write_chains;
    storage_time_ns += other.storage_time_ns;
    hbps_replenishes += other.hbps_replenishes;
    vol_bits_scanned += other.vol_bits_scanned;
    agg_bits_scanned += other.agg_bits_scanned;
    vol_pick_free_frac.merge(other.vol_pick_free_frac);
    agg_pick_free_frac.merge(other.agg_pick_free_frac);
  }
};

}  // namespace wafl
