#include "wafl/fleet.hpp"

#include <chrono>
#include <span>
#include <thread>
#include <utility>

#include "obs/export.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace wafl {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_store(std::uint64_t& h, const BlockStore& store) {
  BlockStore::Block block;
  for (std::uint64_t b = 0; b < store.capacity_blocks(); ++b) {
    if (!store.is_materialized(b)) continue;
    store.peek(b, block);
    fnv_bytes(h, &b, sizeof(b));
    fnv_bytes(h, block.data(), block.size());
  }
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  const auto dt = std::chrono::steady_clock::now() - t0;
  return std::chrono::duration<double>(dt).count();
}

/// Content-keyed shard for a dirty block: a fixed hash of (vol, logical),
/// so the per-shard intake sequences — and therefore the frozen batch —
/// are invariant across writer scheduling, shard counts aside.
std::size_t shard_of(VolumeId vol, std::uint64_t logical,
                     std::size_t shards) {
  std::uint64_t h = kFnvOffset;
  fnv_bytes(h, &vol, sizeof(vol));
  fnv_bytes(h, &logical, sizeof(logical));
  return static_cast<std::size_t>(h % shards);
}

}  // namespace

std::uint64_t media_digest(Aggregate& agg) {
  std::uint64_t h = kFnvOffset;
  fnv_store(h, agg.meta_store());
  fnv_store(h, agg.topaa_store());
  for (VolumeId v = 0; v < agg.volume_count(); ++v) {
    fnv_store(h, agg.volume(v).store());
  }
  return h;
}

FleetMember::FleetMember(FleetMemberConfig cfg, ThreadPool* pool,
                         DrainExecutor* exec)
    : cfg_(std::move(cfg)),
      bundle_(std::make_unique<RuntimeBundle>(cfg_.id)) {
  agg_ = std::make_unique<Aggregate>(cfg_.agg, cfg_.rng_seed,
                                     bundle_->runtime(pool, exec));
  for (const FlexVolConfig& vol : cfg_.volumes) {
    agg_->add_volume(vol);
  }
}

OverlapStats FleetMember::run_workload() {
  OverlappedCpDriver driver(*agg_, cfg_.overlap);
  const std::size_t shards = driver.intake_shards();
  const std::size_t vols = agg_->volume_count();
  Rng rng(cfg_.workload_seed);
  std::vector<std::vector<DirtyBlock>> batches(shards);
  for (std::uint64_t cp = 0; cp < cfg_.cps; ++cp) {
    for (auto& b : batches) b.clear();
    for (std::uint64_t i = 0; i < cfg_.blocks_per_cp; ++i) {
      const auto vol = static_cast<VolumeId>(rng.below(vols));
      const std::uint64_t logical =
          rng.below(agg_->volume(vol).file_blocks());
      batches[shard_of(vol, logical, shards)].push_back({vol, logical});
    }
    // Shard-id submission order; with one submitter per member this also
    // fixes each shard's internal sequence, so the freeze fold sees one
    // canonical batch however the neighbours were scheduled.
    for (std::size_t s = 0; s < shards; ++s) {
      if (batches[s].empty()) continue;
      driver.submit_to_shard(s, std::span<const DirtyBlock>(batches[s]));
    }
    driver.start_cp();
  }
  driver.wait_idle();
  return driver.stats();
}

FleetMemberResult FleetMember::result(const OverlapStats& stats,
                                      double wall_seconds) const {
  FleetMemberResult r;
  r.id = cfg_.id;
  r.stats = stats;
  r.media_digest = ::wafl::media_digest(*agg_);
  if constexpr (obs::kEnabled) {
    r.metrics_json = obs::to_json(bundle_->registry);
  }
  r.wall_seconds = wall_seconds;
  return r;
}

FleetResult run_fleet(const std::vector<FleetMemberConfig>& configs,
                      ThreadPool* pool, std::size_t drain_threads) {
  FleetResult result;
  DrainExecutor exec(drain_threads == 0 ? 1 : drain_threads);
  std::vector<std::unique_ptr<FleetMember>> members;
  members.reserve(configs.size());
  for (const FleetMemberConfig& cfg : configs) {
    members.push_back(std::make_unique<FleetMember>(cfg, pool, &exec));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<OverlapStats> stats(members.size());
  std::vector<double> walls(members.size(), 0.0);
  std::vector<std::thread> submitters;
  submitters.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    submitters.emplace_back([&, m] {
      const auto m0 = std::chrono::steady_clock::now();
      stats[m] = members[m]->run_workload();
      walls[m] = seconds_since(m0);
    });
  }
  for (std::thread& t : submitters) t.join();
  result.wall_seconds = seconds_since(t0);

  result.members.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    result.members.push_back(members[m]->result(stats[m], walls[m]));
  }
  return result;
}

FleetMemberResult run_solo(const FleetMemberConfig& cfg, ThreadPool* pool) {
  FleetMember member(cfg, pool, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  const OverlapStats stats = member.run_workload();
  return member.result(stats, seconds_since(t0));
}

RaidGroupConfig fleet_hdd_group(std::uint64_t device_blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = device_blocks;
  rg.media.type = MediaType::kHdd;
  rg.aa_stripes = 4096;
  return rg;
}

RaidGroupConfig fleet_ssd_group(std::uint64_t device_blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = device_blocks;
  rg.media.type = MediaType::kSsd;
  rg.media.ssd.pages_per_erase_block = 1024;
  rg.aa_stripes = 2048;
  return rg;
}

RaidGroupConfig fleet_smr_group(std::uint64_t device_blocks) {
  RaidGroupConfig rg;
  rg.data_devices = 4;
  rg.parity_devices = 1;
  rg.device_blocks = device_blocks;
  rg.media.type = MediaType::kSmr;
  rg.media.azcs = true;
  rg.aa_stripes = 2048;
  return rg;
}

}  // namespace wafl
