#include "wafl/delayed_free.hpp"

#include "util/assert.hpp"

namespace wafl {
namespace {

Hbps::Config log_config(std::uint32_t region_blocks) {
  Hbps::Config cfg;
  cfg.max_score = region_blocks;
  cfg.bin_width = std::max<std::uint32_t>(1, region_blocks / kHbpsBinCount);
  cfg.list_capacity = kHbpsListCapacity;
  return cfg;
}

}  // namespace

DelayedFreeLog::DelayedFreeLog(std::uint64_t total_blocks,
                               std::uint32_t region_blocks)
    : region_blocks_(region_blocks),
      pending_((total_blocks + region_blocks - 1) / region_blocks),
      hbps_(log_config(region_blocks)) {
  WAFL_ASSERT(total_blocks > 0);
  WAFL_ASSERT(region_blocks > 0);
  for (std::uint32_t r = 0; r < pending_.size(); ++r) {
    hbps_.insert(r, 0);
  }
}

void DelayedFreeLog::log_free(Vbn v) {
  const std::uint32_t r = region_of(v);
  WAFL_ASSERT(r < pending_.size());
  Region& region = pending_[r];
  WAFL_ASSERT_MSG(region.count < region_blocks_,
                  "region has more delayed frees than blocks");
  region.vbns.push_back(v);
  ++region.count;
  ++pending_total_;
  hbps_.update_score(r, region.count - 1, region.count);
}

void DelayedFreeLog::log_free_active(Vbn v) {
  WAFL_ASSERT(region_of(v) < pending_.size());
  active_.push(v);
}

std::uint64_t DelayedFreeLog::freeze_generation() {
  return active_.consume_ordered([this](Vbn v) { log_free(v); });
}

std::optional<DelayedFreeLog::Drain> DelayedFreeLog::drain_richest() {
  if (pending_total_ == 0) return std::nullopt;

  // Zero-count regions can share the worst bin with one-count regions, so
  // skim until a non-empty region surfaces; skimmed regions go straight
  // back at score 0.
  std::vector<std::uint32_t> zeros;
  std::optional<Drain> out;
  for (;;) {
    auto pick = hbps_.take_best();
    if (!pick.has_value()) {
      // The two-page list ran dry: rebuild from the exact counts — the
      // §3.3.2 background replenish.
      std::vector<AaScore> scores(pending_.size());
      for (std::uint32_t r = 0; r < pending_.size(); ++r) {
        scores[r] = pending_[r].count;
      }
      hbps_.build(scores);
      pick = hbps_.take_best();
      WAFL_ASSERT(pick.has_value());
    }
    const std::uint32_t r = pick->aa;
    if (pending_[r].count == 0) {
      zeros.push_back(r);
      continue;
    }
    out.emplace();
    out->region = r;
    out->vbns.swap(pending_[r].vbns);
    pending_total_ -= pending_[r].count;
    pending_[r].count = 0;
    hbps_.insert(r, 0);  // drained: back in at the bottom
    break;
  }
  for (const std::uint32_t r : zeros) {
    hbps_.insert(r, 0);
  }
  return out;
}

bool DelayedFreeLog::validate() const {
  std::uint64_t total = 0;
  for (const Region& region : pending_) {
    if (region.count != region.vbns.size()) return false;
    total += region.count;
  }
  bool staged_ok = true;
  active_.for_each([&](Vbn v) {
    if (region_of(v) >= pending_.size()) staged_ok = false;
  });
  return staged_ok && total == pending_total_ && hbps_.validate();
}

}  // namespace wafl
