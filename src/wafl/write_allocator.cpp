#include "wafl/write_allocator.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "core/aa_sizing.hpp"
#include "core/scan_pipeline.hpp"
#include "fault/crash_point.hpp"
#include "util/thread_pool.hpp"

namespace wafl {

// ---------------------------------------------------------------------------
// RgAllocator
// ---------------------------------------------------------------------------

RgAllocator::RgAllocator(RaidGroupId id, const RaidGroupConfig& rgc, Vbn base,
                         AaSelectPolicy policy, double skip_fraction,
                         Activemap& activemap, BlockStore& topaa_store,
                         std::uint64_t topaa_base, const Runtime* rt)
    : rt_(rt != nullptr ? rt : &process_runtime()),
      policy_(policy),
      raid_(id, RaidGeometry(rgc.data_devices, rgc.parity_devices,
                             rgc.device_blocks)),
      base_(base),
      aa_stripes_(rgc.aa_stripes.value_or(
          choose_raid_aa_stripes(media_geometry(rgc.media)))),
      layout_(AaLayout::raid(base, raid_.geometry(), aa_stripes_)),
      board_(layout_),
      activemap_(activemap),
      topaa_store_(topaa_store),
      topaa_base_(topaa_base) {
  WAFL_ASSERT(rgc.device_blocks % kTetrisStripes == 0);
  WAFL_ASSERT_MSG(raid_.geometry().stripes() % aa_stripes_ == 0,
                  "device size must be a whole number of AAs");
  const bool raid_agnostic = rgc.media.type == MediaType::kObjectStore;
  if (raid_agnostic) {
    // Native redundancy: no RAID geometry (§3.1) — one logical device,
    // no parity, flat consecutive-VBN AAs.
    WAFL_ASSERT_MSG(rgc.data_devices == 1 && rgc.parity_devices == 0,
                    "object-store pools are 1 device, 0 parity");
    // Object-store pool (§3.3.2): bounded-memory HBPS over flat AAs.
    auto h = std::make_unique<Hbps>(Hbps::Config{
        layout_.aa_blocks(),
        std::max<std::uint32_t>(1, layout_.aa_blocks() / kHbpsBinCount),
        kHbpsListCapacity});
    hbps_ = h.get();
    cache_ = std::move(h);
  } else {
    // RAID group (§3.3.1): exact max-heap over every AA.
    auto h = std::make_unique<MaxHeapAaCache>(layout_.aa_count());
    heap_ = h.get();
    cache_ = std::move(h);
  }
  skip_threshold_ = static_cast<AaScore>(
      skip_fraction * static_cast<double>(layout_.aa_blocks()));
  device_busy_.assign(raid_.geometry().total_devices(), 0);
  for (std::uint32_t d = 0; d < rgc.data_devices; ++d) {
    data_devices_.push_back(make_device(rgc.media, rgc.device_blocks));
  }
  for (std::uint32_t p = 0; p < rgc.parity_devices; ++p) {
    parity_devices_.push_back(make_device(rgc.media, rgc.device_blocks));
  }
  if (policy_ == AaSelectPolicy::kCache) {
    build_cache();
  }
  resolve_metrics();
  bind_cache_counters();
}

void RgAllocator::resolve_metrics() {
  WAFL_OBS({
    obs::Registry& reg = rt_->registry();
    const std::string rg =
        rt_->labels("rg=\"" + std::to_string(raid_.id()) + "\"");
    metrics_.checkouts = &reg.counter("wafl.agg.aa_checkouts", rg);
    metrics_.checkout_free_frac = &reg.linear_histogram(
        "wafl.agg.aa_checkout_free_frac", 0.0, 1.0, 64, rg);
    metrics_.putbacks = &reg.counter("wafl.agg.aa_putbacks", rg);
    metrics_.cp_rekeys = &reg.counter("wafl.heap.cp_rekeys", rg);
    metrics_.scoreboard_changed =
        &reg.counter("wafl.scoreboard.cp_changed_aas", rg);
    metrics_.hbps_replenishes = &reg.counter("wafl.hbps.replenishes", rg);
    // Aggregate-wide (rg-unlabelled) counters the cache structures tick
    // directly; every group in a runtime shares the same handles.
    metrics_.heap_rekeys = &reg.counter("wafl.heap.rekeys", rt_->labels());
    metrics_.hbps_rebins = &reg.counter("wafl.hbps.rebins", rt_->labels());
    for (std::uint32_t d = 0; d < raid_.geometry().total_devices(); ++d) {
      metrics_.device_busy.push_back(&reg.counter(
          "wafl.device.busy_ns", rg + ",dev=\"" + std::to_string(d) + "\""));
    }
  });
}

void RgAllocator::bind_cache_counters() {
  if (heap_ != nullptr) {
    heap_->bind_rekey_counter(metrics_.heap_rekeys);
  }
  if (hbps_ != nullptr) {
    hbps_->bind_rebin_counter(metrics_.hbps_rebins);
  }
}

void RgAllocator::build_cache() {
  if (hbps_ != nullptr) {
    hbps_->build(board_);
  } else {
    heap_->build(board_);
  }
}

const MaxHeapAaCache& RgAllocator::heap() const {
  WAFL_ASSERT_MSG(heap_ != nullptr, "group has no max-heap (HBPS pool)");
  return *heap_;
}

const Hbps& RgAllocator::hbps() const {
  WAFL_ASSERT_MSG(hbps_ != nullptr, "group has no HBPS (RAID group)");
  return *hbps_;
}

std::vector<LeaseRegion> RgAllocator::lease_regions(std::size_t k) const {
  std::vector<LeaseRegion> out;
  if (heap_ == nullptr) return out;  // HBPS pools have no cheap top-k read
  for (const AaPick& p : heap_->top(k)) {
    out.push_back({id(), layout_.aa_begin(p.aa), layout_.aa_capacity(p.aa)});
  }
  return out;
}

bool RgAllocator::checkout(AaId aa) {
  if (heap_ == nullptr) return false;  // HBPS pools are not cleaned
  return heap_->remove(aa);
}

void RgAllocator::checkin(AaId aa) {
  cache_->insert(aa, board_.score(aa));
}

void RgAllocator::begin_cp() {
  std::fill(device_busy_.begin(), device_busy_.end(), 0);
}

std::uint64_t RgAllocator::live_aa_free(AaId aa) const {
  const BitmapMetafile& map = activemap_.metafile();
  if (staged_) {
    // Staged allocations are bit-set but not yet in the summary: edge
    // blocks (popcount) are exact already; interior blocks subtract the
    // overlay.  An AA's interior blocks never straddle groups, so the
    // group-local overlay covers every block the query consults.
    return map.free_in_range_staged(layout_.aa_begin(aa), layout_.aa_end(aa),
                                    staged_allocs_, staged_base_);
  }
  return map.free_in_range(layout_.aa_begin(aa), layout_.aa_end(aa));
}

bool RgAllocator::plan_eligible() {
  if (policy_ != AaSelectPolicy::kCache) return true;
  if (hbps_ != nullptr && hbps_->needs_replenish()) {
    // §3.3.2's background scan — run it at plan time so a drained list
    // does not read as fragmentation.  Deterministic: the plan is serial
    // and the scan is a pure function of the group's scoreboard.
    hbps_->build(board_);
    WAFL_OBS({
      metrics_.hbps_replenishes->inc();
      obs::trace().emit(obs::EventType::kHbpsReplenish, raid_.id(),
                        layout_.aa_count());
    });
  }
  const auto best = cache_->peek_best_score();
  return best.has_value() && *best >= skip_threshold_;
}

std::uint64_t RgAllocator::plan_capacity() const {
  // Frees are deferred to the CP boundary, so the bitmap's free count is
  // an exact bound for the whole CP; subtract blocks the open tetris
  // window has claimed but not yet bit-set.
  const std::uint64_t free = activemap_.metafile().free_in_range(base_, end());
  WAFL_ASSERT(free >= window_writes_.size());
  return free - window_writes_.size();
}

std::uint64_t RgAllocator::plan_cursor_free() const {
  if (cursor_aa_ == kInvalidAaId) return 0;
  return activemap_.metafile().free_in_range(cursor_pos_,
                                             layout_.aa_end(cursor_aa_));
}

void RgAllocator::begin_staged_alloc() {
  WAFL_ASSERT(!staged_);
  staged_ = true;
  staged_base_ = base_ / kBitsPerBitmapBlock;
  const std::uint64_t last = (end() - 1) / kBitsPerBitmapBlock;
  staged_allocs_.assign(last - staged_base_ + 1, 0);
}

BitmapMetafile::AllocDelta RgAllocator::end_staged_alloc() {
  WAFL_ASSERT(staged_);
  BitmapMetafile::AllocDelta d;
  for (std::size_t i = 0; i < staged_allocs_.size(); ++i) {
    if (staged_allocs_[i] != 0) {
      d.per_block.emplace_back(staged_base_ + i, staged_allocs_[i]);
    }
  }
  staged_ = false;
  staged_allocs_.clear();
  return d;
}

bool RgAllocator::ensure_cursor(CpStats& stats, bool force, Rng& rng) {
  // Candidate selection consults the cache (or random choice), whose
  // scores are only updated at CP boundaries (§3.3); a candidate may have
  // been consumed earlier in THIS CP, so each pick is validated against
  // the live activemap before the cursor commits to it.
  int random_attempts = 0;
  for (;;) {
    if (cursor_aa_ != kInvalidAaId) return true;

    AaId aa = kInvalidAaId;
    if (policy_ == AaSelectPolicy::kCache) {
      if (hbps_ != nullptr && hbps_->needs_replenish()) {
        // §3.3.2's background scan, for HBPS-managed pools.
        hbps_->build(board_);
        WAFL_OBS({
          metrics_.hbps_replenishes->inc();
          obs::trace().emit(obs::EventType::kHbpsReplenish, raid_.id(),
                            layout_.aa_count());
        });
      }
      const auto best = cache_->peek_best_score();
      if (!best.has_value()) return false;
      if (!force && *best < skip_threshold_) return false;
      aa = cache_->take_best()->aa;
      if (live_aa_free(aa) == 0) {
        // Stale entry (consumed this CP, or empty since last CP): keep it
        // out of rotation until the boundary re-scores it.
        retired_.push_back(aa);
        continue;
      }
    } else {
      if (random_attempts++ < 64) {
        aa = static_cast<AaId>(rng.below(layout_.aa_count()));
        if (live_aa_free(aa) == 0) continue;
      } else {
        // Random probing keeps missing: linear sweep by live free count.
        aa = kInvalidAaId;
        for (AaId i = 0; i < layout_.aa_count(); ++i) {
          if (live_aa_free(i) > 0) {
            aa = i;
            break;
          }
        }
        if (aa == kInvalidAaId) return false;
      }
    }

    const double free_frac = static_cast<double>(board_.score(aa)) /
                             static_cast<double>(layout_.aa_capacity(aa));
    stats.agg_pick_free_frac.add(free_frac);
    WAFL_OBS({
      metrics_.checkouts->inc();
      metrics_.checkout_free_frac->record(free_frac);
      obs::trace().emit(obs::EventType::kAaCheckout, raid_.id(), aa,
                        board_.score(aa), layout_.aa_capacity(aa));
    });
    cursor_aa_ = aa;
    cursor_pos_ = layout_.aa_begin(aa);
    return true;
  }
}

std::uint64_t RgAllocator::fill(std::uint64_t need, std::vector<Vbn>& out,
                                CpStats& stats, bool force, Rng& rng) {
  obs::TraceSpan span(obs::SpanKind::kRgFill, raid_.id());
  const BitmapMetafile& map = activemap_.metafile();
  const RaidGeometry& geom = raid_.geometry();
  const std::uint64_t bpt = geom.blocks_per_tetris();

  for (;;) {
    if (!ensure_cursor(stats, force, rng)) return 0;
    const Vbn aa_end = layout_.aa_end(cursor_aa_);

    if (window_writes_.empty()) {
      // No tetris is open: jump straight to the AA's next free block so a
      // run of fully-consumed windows costs one bitmap scan, not one turn
      // per window.
      const Vbn v = map.find_free(cursor_pos_, aa_end);
      stats.agg_bits_scanned += (v == aa_end ? aa_end : v + 1) - cursor_pos_;
      if (v == aa_end) {
        if (policy_ == AaSelectPolicy::kCache) {
          retired_.push_back(cursor_aa_);
        }
        cursor_aa_ = kInvalidAaId;
        continue;
      }
      cursor_pos_ = v;
    }

    const std::uint64_t local = cursor_pos_ - base_;
    const Vbn window_end =
        std::min<Vbn>(base_ + (local / bpt + 1) * bpt, aa_end);

    std::uint64_t taken = 0;
    while (taken < need) {
      const Vbn v = map.find_free(cursor_pos_, window_end);
      stats.agg_bits_scanned +=
          (v == window_end ? window_end : v + 1) - cursor_pos_;
      if (v == window_end) {
        cursor_pos_ = window_end;
        break;
      }
      cursor_pos_ = v + 1;
      out.push_back(v);
      window_writes_.push_back(v);
      ++taken;
    }

    if (cursor_pos_ == window_end) {
      // Window exhausted: write it out and advance (possibly off the AA).
      flush_window(stats);
      if (window_end == aa_end) {
        if (policy_ == AaSelectPolicy::kCache) {
          retired_.push_back(cursor_aa_);
        }
        cursor_aa_ = kInvalidAaId;
      }
    }
    if (taken > 0) {
      span.set_b(taken);
      return taken;
    }
    // Otherwise the open window had no free blocks left (a previous turn
    // drained it): it has been emitted above; try again from a fresh jump.
  }
}

void RgAllocator::flush_window(CpStats& stats) {
  if (window_writes_.empty()) return;
  obs::TraceSpan span(obs::SpanKind::kRgTetrisFlush, raid_.id(),
                      window_writes_.size());

  const RaidGeometry& geom = raid_.geometry();
  // Convert to group-local VBNs (ascending by construction).
  std::vector<Vbn> local;
  local.reserve(window_writes_.size());
  for (const Vbn v : window_writes_) {
    local.push_back(v - base_);
  }
  const std::uint64_t tetris = geom.tetris_of(local.front());
  WAFL_ASSERT(geom.tetris_of(local.back()) == tetris);

  const TetrisWrite tw = raid_.builder().build(tetris, local, [&](Vbn lv) {
    return activemap_.metafile().test(base_ + lv);
  });
  raid_.stats().accumulate(tw);

  ++stats.tetrises;
  stats.full_stripes += tw.full_stripes;
  stats.partial_stripes += tw.partial_stripes;
  stats.parity_read_blocks += tw.parity_read_blocks;
  stats.write_chains += tw.total_chains();
  stats.blocks_written += tw.data_blocks_written;
  WAFL_OBS(obs::trace().emit(obs::EventType::kTetris, raid_.id(),
                             tw.full_stripes + tw.partial_stripes,
                             tw.data_blocks_written, tw.parity_read_blocks));

  // Submit to the device models.  Parity-computation reads are spread
  // evenly across the group's devices.
  const std::uint32_t ndev = geom.total_devices();
  const std::uint64_t read_share = tw.parity_read_blocks / ndev;
  std::uint64_t read_extra = tw.parity_read_blocks % ndev;
  for (std::uint32_t d = 0; d < geom.data_devices(); ++d) {
    const std::uint64_t reads = read_share + (read_extra > 0 ? 1 : 0);
    if (read_extra > 0) --read_extra;
    device_busy_[d] += data_devices_[d]->write_batch(tw.device_runs[d], reads);
  }
  for (std::uint32_t p = 0; p < geom.parity_devices(); ++p) {
    const std::uint64_t reads = read_share + (read_extra > 0 ? 1 : 0);
    if (read_extra > 0) --read_extra;
    device_busy_[geom.data_devices() + p] +=
        parity_devices_[p]->write_batch(tw.parity_runs[p], reads);
  }

  // Mark the window's blocks allocated only now: the tetris classification
  // above must see pre-CP occupancy.  In staged mode (the parallel execute
  // phase) only the bits are set — they are word-disjoint across groups —
  // and the shared summary/dirty accounting waits in the overlay for the
  // serial merge.
  for (const Vbn v : window_writes_) {
    if (staged_) {
      activemap_.allocate_unaccounted(v);
      ++staged_allocs_[v / kBitsPerBitmapBlock - staged_base_];
    } else {
      activemap_.allocate(v);
    }
    board_.note_alloc(v);
  }
  window_writes_.clear();
}

BitmapMetafile::FreeDelta RgAllocator::cp_boundary(
    std::span<const Vbn> frees) {
  obs::TraceSpan span(obs::SpanKind::kFcRgBoundary, raid_.id(), frees.size());
  // Apply this group's share of the CP's deferred frees: clear the bits
  // word-batched (this group's bitmap words are disjoint from every other
  // group's; the shared free-count summary and dirty set are settled
  // serially by the caller via apply_free_deltas) and tell
  // translation-layer media (TRIM) in deferral order, as the per-bit
  // path did.
  BitmapMetafile& map = activemap_.metafile();
  const RaidGeometry& geom = raid_.geometry();
  BitmapMetafile::FreeDelta delta = map.clear_frees_batched(frees);
  for (const Vbn v : frees) {
    const BlockLocation loc = geom.to_location(v - base_);
    data_devices_[loc.device]->invalidate(loc.dbn);
  }
  // Crash here = power loss after the in-memory frees of one group were
  // applied but before anything of this CP persisted.  May fire on a pool
  // thread; ThreadPool rethrows on the caller.
  WAFL_CRASH_POINT_RT(*rt_, "rg.after_frees");

  // CP-boundary rebalance (§3.3.1) and retired-AA re-admission.
  const auto changes = board_.apply_cp_deltas();
  WAFL_OBS(metrics_.scoreboard_changed->add(changes.size()));
  if (policy_ == AaSelectPolicy::kCache) {
    cache_->apply_changes(changes);
    WAFL_OBS({
      metrics_.cp_rekeys->add(changes.size());
      obs::trace().emit(obs::EventType::kHeapRebalance, raid_.id(),
                        changes.size());
    });
    for (const AaId aa : retired_) {
      cache_->insert(aa, board_.score(aa));
      WAFL_OBS({
        metrics_.putbacks->inc();
        obs::trace().emit(obs::EventType::kAaPutback, raid_.id(), aa,
                          board_.score(aa));
      });
    }
    retired_.clear();

    // Stage (but do not write) this group's TopAA image; the persisted
    // set must include the allocator cursor's checked-out AA — cursors do
    // not survive failover (§3.4).
    if (heap_ != nullptr) {
      auto best = heap_->top(kTopAaRaidAwareEntries);
      if (cursor_aa_ != kInvalidAaId) {
        best.push_back({cursor_aa_, board_.score(cursor_aa_)});
        std::sort(best.begin(), best.end(),
                  [](const AaPick& a, const AaPick& b) {
                    if (a.score != b.score) return a.score > b.score;
                    return a.aa < b.aa;
                  });
        if (best.size() > kTopAaRaidAwareEntries) {
          best.resize(kTopAaRaidAwareEntries);
        }
      }
      staged_topaa_ = TopAaFile::encode_raid_aware(best);
    } else {
      if (cursor_aa_ != kInvalidAaId) {
        Hbps snapshot = *hbps_;
        snapshot.insert(cursor_aa_, board_.score(cursor_aa_));
        staged_topaa_ = TopAaFile::encode_raid_agnostic(snapshot);
      } else {
        staged_topaa_ = TopAaFile::encode_raid_agnostic(*hbps_);
      }
    }
    topaa_staged_ = true;
  }
  WAFL_CRASH_POINT_RT(*rt_, "rg.after_topaa_encode");
  return delta;
}

std::uint64_t RgAllocator::commit_topaa() {
  if (!topaa_staged_) return 0;
  obs::TraceSpan span(obs::SpanKind::kFcRgTopaa, raid_.id(),
                      staged_topaa_.nblocks);
  TopAaFile topaa(topaa_store_, topaa_base_);
  topaa.commit(staged_topaa_);
  topaa_staged_ = false;
  return staged_topaa_.nblocks;
}

SimTime RgAllocator::slowest_device_busy() const {
  SimTime slowest = 0;
  for (const SimTime t : device_busy_) {
    slowest = std::max(slowest, t);
  }
  return slowest;
}

void RgAllocator::fold_device_metrics() const {
  WAFL_OBS({
    for (std::size_t d = 0; d < device_busy_.size(); ++d) {
      const SimTime busy = device_busy_[d];
      if (busy == 0) continue;
      metrics_.device_busy[d]->add(static_cast<std::uint64_t>(busy));
      obs::trace().emit(obs::EventType::kDeviceIo, raid_.id(), d,
                        static_cast<std::uint64_t>(busy));
    }
  });
}

bool RgAllocator::mount_seed() {
  TopAaFile topaa(topaa_store_, topaa_base_);
  cursor_aa_ = kInvalidAaId;
  window_writes_.clear();
  retired_.clear();
  bool ok = false;
  if (heap_ != nullptr) {
    const auto picks = topaa.load_raid_aware();
    if (picks.has_value()) {
      heap_->seed(*picks);
      ok = true;
    }
  } else {
    auto loaded = topaa.load_raid_agnostic();
    if (loaded.has_value()) {
      // The loaded image arrives with no counter binding; restore ours.
      *hbps_ = std::move(*loaded);
      bind_cache_counters();
      ok = true;
    }
  }
  if (!ok) {
    // Damaged/missing TopAA: rebuild this group the slow way.
    board_ = AaScoreBoard(layout_, activemap_.metafile());
    build_cache();
  }
  return ok;
}

void RgAllocator::rebuild_from_scan() {
  board_ = AaScoreBoard(layout_, activemap_.metafile());
  cursor_aa_ = kInvalidAaId;
  window_writes_.clear();
  retired_.clear();
  if (policy_ == AaSelectPolicy::kCache) {
    build_cache();
  }
}

void RgAllocator::adopt_scan(std::vector<AaScore> scores) {
  board_ = AaScoreBoard(layout_, std::move(scores));
  cursor_aa_ = kInvalidAaId;
  window_writes_.clear();
  retired_.clear();
  if (policy_ == AaSelectPolicy::kCache) {
    build_cache();
  }
}

void RgAllocator::reseed_board() {
  WAFL_ASSERT_MSG(window_writes_.empty() && cursor_aa_ == kInvalidAaId,
                  "reseed_board during a CP");
  board_ = AaScoreBoard(layout_, activemap_.metafile());
  if (policy_ == AaSelectPolicy::kCache) {
    build_cache();
  }
}

// ---------------------------------------------------------------------------
// WriteAllocator
// ---------------------------------------------------------------------------

WriteAllocator::WriteAllocator(AaSelectPolicy policy, double skip_fraction,
                               Rng& rng, Activemap& activemap,
                               BlockStore& topaa_store, const Runtime* rt)
    : rt_(rt != nullptr ? rt : &process_runtime()),
      policy_(policy),
      skip_fraction_(skip_fraction),
      rng_(rng),
      activemap_(activemap),
      topaa_store_(topaa_store) {}

WriteAllocator::~WriteAllocator() = default;

RaidGroupId WriteAllocator::add_group(const RaidGroupConfig& rgc, Vbn base) {
  const auto id = static_cast<RaidGroupId>(groups_.size());
  WAFL_ASSERT(groups_.empty() || base == groups_.back()->end());
  groups_.push_back(std::make_unique<RgAllocator>(
      id, rgc, base, policy_, skip_fraction_, activemap_, topaa_store_,
      id * TopAaFile::kRaidAgnosticBlocks, rt_));
  // Growth changes the rotation modulus; keep the pointer inside the new
  // group list so the next CP's rotation starts from a live slot.
  if (rr_next_ >= groups_.size()) {
    rr_next_ = 0;
  }
  return id;
}

RaidGroupId WriteAllocator::group_of_pvbn(Vbn v) const {
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    if (v < groups_[i]->end()) {
      return static_cast<RaidGroupId>(i);
    }
  }
  WAFL_ASSERT_MSG(false, "pvbn beyond all RAID groups");
  return 0;
}

std::vector<LeaseRegion> WriteAllocator::lease_regions(
    std::size_t per_group) const {
  std::vector<LeaseRegion> out;
  for (const auto& rg : groups_) {
    for (const LeaseRegion& r : rg->lease_regions(per_group)) {
      out.push_back(r);
    }
  }
  return out;
}

bool WriteAllocator::windows_idle() const {
  for (const auto& rg : groups_) {
    if (!rg->window_idle()) return false;
  }
  return true;
}

bool WriteAllocator::checkout_aa(RaidGroupId rg, AaId aa) {
  WAFL_ASSERT_MSG(policy_ == AaSelectPolicy::kCache,
                  "checkout_aa requires the cache policy");
  return groups_.at(rg)->checkout(aa);
}

void WriteAllocator::checkin_aa(RaidGroupId rg, AaId aa) {
  groups_.at(rg)->checkin(aa);
}

void WriteAllocator::begin_cp() {
  for (const auto& rg : groups_) {
    rg->begin_cp();
  }
}

bool WriteAllocator::allocate_serial(std::uint64_t n, std::vector<Vbn>& out,
                                     CpStats& stats) {
  std::uint64_t remaining = n;
  bool force = false;
  while (remaining > 0) {
    std::uint64_t round_total = 0;
    for (std::size_t i = 0; i < groups_.size() && remaining > 0; ++i) {
      RgAllocator& rg = *groups_[rr_next_];
      rr_next_ = (rr_next_ + 1) % groups_.size();
      const std::uint64_t got = rg.fill(remaining, out, stats, force, rng_);
      remaining -= got;
      round_total += got;
    }
    if (round_total == 0) {
      if (!force) {
        // Every group declined under the fragmentation threshold; the
        // allocator must still make progress (§3.3.1's "resume").
        force = true;
        continue;
      }
      return false;  // genuinely out of space
    }
    force = false;
  }
  return true;
}

bool WriteAllocator::allocate(std::uint64_t n, std::vector<Vbn>& out,
                              CpStats& stats) {
  if (n == 0) return true;
  if (policy_ != AaSelectPolicy::kCache || groups_.empty()) {
    // The kRandom policy draws from the shared rng per probe; its demand
    // cannot be partitioned up front, so it keeps the serial rotation.
    return allocate_serial(n, out, stats);
  }
  ThreadPool* pool = rt_->pool();
  CpPhaseProfile& prof = rt_->cp_phase_profile();
  auto mark = std::chrono::steady_clock::now();
  auto lap = [&mark](double& bucket) {
    const auto now = std::chrono::steady_clock::now();
    bucket += std::chrono::duration<double, std::milli>(now - mark).count();
    mark = now;
  };

  // --- Plan (serial).  Assign every output position to a group using only
  // CP-start information: the same rotation the serial loop ran, with
  // §3.3.1's skip bias answered by peek_best_score instead of a checkout.
  // Chunks are one tetris window (blocks_per_tetris), matching the serial
  // loop's per-turn granularity; a bias-ineligible group with an open
  // cursor may still drain that cursor (the serial loop's ensure_cursor
  // only re-tests the threshold on the NEXT checkout), so its quota is
  // capped at the cursor's remaining free blocks.  Capacity caps make the
  // plan exactly executable: frees are deferred, so the free-bit count
  // cannot shrink under execute's feet.
  //
  // The wa.* spans open/close at the same marks the lap() calls use, so a
  // trace's per-phase times reconcile with CpPhaseProfile.
  const std::size_t ngroups = groups_.size();
  obs::TraceSpan plan_span(obs::SpanKind::kWaPlan, ngroups, n);
  struct GroupPlan {
    std::vector<std::pair<std::size_t, std::uint64_t>> runs;  // (pos, count)
    std::uint64_t planned = 0;
  };
  std::vector<GroupPlan> plan(ngroups);
  std::vector<std::uint64_t> capacity(ngroups), cursor_free(ngroups);
  std::vector<bool> eligible(ngroups);
  for (std::size_t g = 0; g < ngroups; ++g) {
    capacity[g] = groups_[g]->plan_capacity();
    cursor_free[g] = groups_[g]->plan_cursor_free();
    eligible[g] = groups_[g]->plan_eligible();
  }
  std::uint64_t remaining = n;
  std::size_t pos = 0;
  bool force = false;
  while (remaining > 0) {
    std::uint64_t round_total = 0;
    for (std::size_t i = 0; i < ngroups && remaining > 0; ++i) {
      const std::size_t g = rr_next_;
      rr_next_ = (rr_next_ + 1) % ngroups;
      const std::uint64_t bpt =
          groups_[g]->raid().geometry().blocks_per_tetris();
      const std::uint64_t avail = capacity[g] - plan[g].planned;
      std::uint64_t chunk = 0;
      if (avail > 0) {
        if (force || eligible[g]) {
          chunk = std::min({remaining, avail, bpt});
        } else if (plan[g].planned < cursor_free[g]) {
          chunk = std::min(
              {remaining, avail, bpt, cursor_free[g] - plan[g].planned});
        }
      }
      if (chunk > 0) {
        plan[g].runs.emplace_back(pos, chunk);
        plan[g].planned += chunk;
        pos += chunk;
        remaining -= chunk;
        round_total += chunk;
      }
    }
    if (round_total == 0) {
      if (!force) {
        // Every group declined under the fragmentation threshold; the
        // allocator must still make progress (§3.3.1's "resume").
        force = true;
        continue;
      }
      break;  // total capacity assigned; the spill below reports the rest
    }
    force = false;
  }
  // Crash here = power loss after demand was partitioned but before any
  // block was taken; nothing has been mutated yet.
  WAFL_CRASH_POINT_RT(*rt_, "wa.in_alloc_plan");
  plan_span.end();
  lap(prof.plan_ms);
  obs::TraceSpan execute_span(obs::SpanKind::kWaExecute, 0, n - remaining);

  // --- Execute (parallel).  Group work lists are disjoint by construction
  // and every fill touches only group-owned state: its own cache, cursor,
  // window, devices, and bitmap words (staged mode defers the shared
  // summary).  Per-group CpStats keep the folds out of the hot loop.
  const std::uint64_t planned_total = n - remaining;
  const std::size_t out_base = out.size();
  out.resize(out_base + static_cast<std::size_t>(planned_total));
  std::vector<std::vector<Vbn>> got(ngroups);
  std::vector<CpStats> gstats(ngroups);
  std::vector<BitmapMetafile::AllocDelta> deltas(ngroups);
  std::size_t active_groups = 0;
  for (const GroupPlan& gp : plan) {
    if (gp.planned > 0) ++active_groups;
  }
  auto execute_one = [&](std::size_t g) {
    if (plan[g].planned == 0) return;
    obs::TraceSpan rg_span(obs::SpanKind::kWaRgExecute, g, plan[g].planned);
    // Crash here = power loss mid-parallel-allocation: bits of some groups
    // staged, nothing persisted (device models are simulation state).  May
    // fire on a pool thread; ThreadPool rethrows on the caller.
    WAFL_CRASH_POINT_RT(*rt_, "wa.in_alloc_execute");
    RgAllocator& rg = *groups_[g];
    rg.begin_staged_alloc();
    Rng unused(0);  // the cache policy never consults it
    std::vector<Vbn>& mine = got[g];
    mine.reserve(static_cast<std::size_t>(plan[g].planned));
    while (mine.size() < plan[g].planned) {
      if (rg.fill(plan[g].planned - mine.size(), mine, gstats[g],
                  /*force=*/true, unused) == 0) {
        break;  // group cannot meet its quota; the spill recovers
      }
    }
    deltas[g] = rg.end_staged_alloc();
  };
  if (pool != nullptr && active_groups > 1) {
    pool->parallel_for_dynamic(0, ngroups, execute_one);
  } else {
    for (std::size_t g = 0; g < ngroups; ++g) {
      execute_one(g);
    }
  }
  execute_span.end();
  lap(prof.execute_ms);
  obs::TraceSpan merge_span(obs::SpanKind::kWaMerge, 0, planned_total);

  // --- Merge (serial, fixed group order): staged summary deltas, stats
  // folds, and the scatter of each group's blocks into its planned output
  // positions.
  BitmapMetafile& map = activemap_.metafile();
  std::vector<std::size_t> missing;  // unfilled positions in `out`
  for (std::size_t g = 0; g < ngroups; ++g) {
    map.apply_alloc_deltas(deltas[g]);
    stats.merge(gstats[g]);
    std::size_t k = 0;
    for (const auto& [p, count] : plan[g].runs) {
      for (std::uint64_t i = 0; i < count; ++i) {
        if (k < got[g].size()) {
          out[out_base + p + i] = got[g][k++];
        } else {
          missing.push_back(out_base + p + i);
        }
      }
    }
  }

  // --- Spill (serial safety net).  A group that could not meet its quota
  // (execute shortfall) or demand beyond total capacity falls back to the
  // serial rotation; on genuine exhaustion the unfilled positions are
  // compacted out so `out` carries exactly the allocated pvbns.
  bool ok = true;
  if (!missing.empty() || remaining > 0) {
    std::sort(missing.begin(), missing.end());
    std::vector<Vbn> extra;
    ok = allocate_serial(missing.size() + remaining, extra, stats);
    std::size_t k = 0;
    for (; k < missing.size() && k < extra.size(); ++k) {
      out[missing[k]] = extra[k];
    }
    if (k < missing.size()) {
      std::vector<Vbn> compact;
      compact.reserve(out.size());
      std::size_t mi = k;
      for (std::size_t p = 0; p < out.size(); ++p) {
        if (mi < missing.size() && p == missing[mi]) {
          ++mi;
          continue;
        }
        compact.push_back(out[p]);
      }
      out.swap(compact);
      ok = false;
    }
    for (; k < extra.size(); ++k) {
      out.push_back(extra[k]);
    }
  }
  merge_span.end();
  lap(prof.alloc_merge_ms);
  return ok;
}

CpPhaseProfile& cp_phase_profile() {
  static CpPhaseProfile profile;
  return profile;
}

void WriteAllocator::finish_cp(CpStats& stats) {
  ThreadPool* pool = rt_->pool();
  CpPhaseProfile& prof = rt_->cp_phase_profile();
  auto mark = std::chrono::steady_clock::now();
  auto lap = [&mark](double& bucket) {
    const auto now = std::chrono::steady_clock::now();
    bucket += std::chrono::duration<double, std::milli>(now - mark).count();
    mark = now;
  };
  const bool fan_out = pool != nullptr && groups_.size() > 1;

  // Fires once on every CP's boundary drain; under the overlapped driver
  // this is the window where intake is concurrently filling the active
  // generation (DESIGN.md §13).
  WAFL_CRASH_POINT_RT(*rt_, "wa.in_overlap_drain");

  // Serial: flush any windows the CP left open (the next CP reopens them
  // and pays the partial-stripe cost of the blocks written now), then
  // collect the deferred frees.  Each fc.* span opens right after the
  // previous lap() mark and ends right before its own, so trace times
  // reconcile with the CpPhaseProfile buckets.
  obs::TraceSpan windows_span(obs::SpanKind::kFcWindows);
  for (const auto& rg : groups_) {
    rg->flush_window(stats);
  }
  const std::span<const Vbn> frees = activemap_.take_deferred_frees();
  stats.blocks_freed += frees.size();
  windows_span.set_b(frees.size());
  windows_span.end();
  lap(prof.windows_ms);
  obs::TraceSpan owner_span(obs::SpanKind::kFcOwner, 0, frees.size());

  // Owner lookup (parallel): owner[k] is a pure function of frees[k]
  // alone, so the pass fans out over the free list without affecting the
  // partition it feeds.  The linear scan over group ends is fine — group
  // counts are small; the per-free cost is the cache misses, not the scan.
  std::vector<std::uint32_t> owner(frees.size());
  std::vector<Vbn> ends(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    ends[g] = groups_[g]->end();
  }
  auto owner_of = [&](std::size_t k) {
    const Vbn v = frees[k];
    for (std::size_t g = 0; g < ends.size(); ++g) {
      if (v < ends[g]) {
        owner[k] = static_cast<std::uint32_t>(g);
        return;
      }
    }
    WAFL_ASSERT_MSG(false, "freed pvbn beyond all RAID groups");
  };
  constexpr std::size_t kOwnerChunk = 8192;
  if (fan_out && frees.size() >= 2 * kOwnerChunk) {
    pool->parallel_for_dynamic(0, frees.size(), kOwnerChunk, owner_of);
  } else {
    for (std::size_t k = 0; k < frees.size(); ++k) {
      owner_of(k);
    }
  }
  owner_span.end();
  lap(prof.owner_ms);
  obs::TraceSpan partition_span(obs::SpanKind::kFcPartition, 0, frees.size());

  // Partition (serial): counting scatter into one flat buffer.  Each
  // group's run preserves deferral order, so cp_boundary sees exactly the
  // batch the serial path would hand it whatever the worker count.
  std::vector<std::size_t> count(groups_.size(), 0);
  for (const std::uint32_t g : owner) {
    ++count[g];
  }
  std::vector<std::size_t> offset(groups_.size(), 0);
  std::size_t acc = 0;
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    offset[g] = acc;
    acc += count[g];
  }
  std::vector<Vbn> parted(frees.size());
  std::vector<std::size_t> cursor = offset;
  for (std::size_t k = 0; k < frees.size(); ++k) {
    parted[cursor[owner[k]]++] = frees[k];
  }
  partition_span.end();
  lap(prof.partition_ms);
  obs::TraceSpan boundary_span(obs::SpanKind::kFcBoundary, 0, frees.size());
  WAFL_CRASH_POINT_RT(*rt_, "wa.before_boundary");

  // Phase A (parallel): each group's boundary work touches only that
  // group's state plus its own disjoint bitmap words (see the file
  // comment's disjointness argument).  Dynamic scheduling: per-group cost
  // tracks its free batch and AA churn, which can be very uneven.
  std::vector<BitmapMetafile::FreeDelta> deltas(groups_.size());
  auto boundary_one = [&](std::size_t i) {
    deltas[i] = groups_[i]->cp_boundary(
        std::span<const Vbn>(parted.data() + offset[i], count[i]));
  };
  if (fan_out) {
    pool->parallel_for_dynamic(0, groups_.size(), boundary_one);
  } else {
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      boundary_one(i);
    }
  }
  boundary_span.end();
  lap(prof.boundary_ms);
  WAFL_CRASH_POINT_RT(*rt_, "wa.after_boundary");
  obs::TraceSpan fc_merge_span(obs::SpanKind::kFcMerge);

  // Serial merge, in fixed group order: the free-count summary and dirty
  // set are shared (metafile blocks can straddle group boundaries).
  BitmapMetafile& map = activemap_.metafile();
  for (const auto& delta : deltas) {
    map.apply_free_deltas(delta);
  }
  stats.agg_meta_blocks += map.dirty_blocks();
  // The persistence steps below are the crash window the recovery story
  // is about: a crash in the gap between any two of them leaves bitmaps
  // and TopAA at different CPs, and mount + Iron must reconcile them.
  fc_merge_span.end();
  lap(prof.merge_ms);
  obs::TraceSpan flush_span(obs::SpanKind::kFcFlush);
  WAFL_CRASH_POINT_RT(*rt_, "wa.before_bitmap_flush");

  // Phase B1 (parallel): flush the dirty metafile blocks.  The dirty list
  // is partitioned, so each store block has exactly one writer; chunked
  // dynamic scheduling amortizes the shared counter over the fine,
  // near-uniform per-block work.  On an exception (a crash point or an
  // injected crash mid-flush) begin_cp() is skipped, leaving the dirty
  // set intact — same as a serial crash partway down the list.
  const std::span<const std::uint64_t> dirty = map.dirty_list();
  auto flush_one = [&](std::size_t k) {
    obs::TraceSpan block_span(obs::SpanKind::kFcFlushBlock, dirty[k]);
    WAFL_CRASH_POINT_RT(*rt_, "wa.in_bitmap_flush");
    map.flush_block(dirty[k]);
  };
  if (fan_out && dirty.size() > 1) {
    pool->parallel_for_dynamic(0, dirty.size(), /*chunk=*/8, flush_one);
  } else {
    for (std::size_t k = 0; k < dirty.size(); ++k) {
      flush_one(k);
    }
  }
  stats.meta_flush_blocks += dirty.size();
  map.begin_cp();
  flush_span.set_b(dirty.size());
  flush_span.end();
  lap(prof.flush_ms);
  obs::TraceSpan topaa_span(obs::SpanKind::kFcTopaa);
  WAFL_CRASH_POINT_RT(*rt_, "wa.after_bitmap_flush");

  // Phase B2 (parallel): commit the staged TopAA images — per-group slots
  // never share a store block.  The block counts fold serially below.
  std::vector<std::uint64_t> topaa_blocks(groups_.size(), 0);
  auto commit_one = [&](std::size_t i) {
    WAFL_CRASH_POINT_RT(*rt_, "wa.before_topaa_commit");
    topaa_blocks[i] = groups_[i]->commit_topaa();
  };
  if (fan_out) {
    pool->parallel_for_dynamic(0, groups_.size(), commit_one);
  } else {
    for (std::size_t i = 0; i < groups_.size(); ++i) {
      commit_one(i);
    }
  }
  for (const std::uint64_t n : topaa_blocks) {
    stats.meta_flush_blocks += n;
  }
  topaa_span.end();
  lap(prof.topaa_ms);
  obs::TraceSpan fold_span(obs::SpanKind::kFcFold);
  WAFL_CRASH_POINT_RT(*rt_, "wa.after_topaa_commits");

  // Devices operate in parallel; the CP's storage time is the slowest one.
  SimTime slowest = 0;
  for (const auto& rg : groups_) {
    slowest = std::max(slowest, rg->slowest_device_busy());
  }
  stats.storage_time_ns = std::max(stats.storage_time_ns, slowest);

  // Per-device busy-time fold + completion events (devices in a sim CP
  // "complete" at the boundary).
  for (const auto& rg : groups_) {
    rg->fold_device_metrics();
  }
  fold_span.end();
  lap(prof.fold_ms);
}

std::size_t WriteAllocator::mount_from_topaa() {
  std::size_t seeded = 0;
  for (const auto& rg : groups_) {
    if (rg->mount_seed()) {
      ++seeded;
    }
  }
  return seeded;
}

void WriteAllocator::scan_rebuild() {
  ThreadPool* pool = rt_->pool();
  obs::TraceSpan span(obs::SpanKind::kMountScan, 0, groups_.size());
  // One pipelined walk of the shared aggregate metafile scores every
  // group's AAs (the groups are the scan units); the per-group adoption
  // then only resets allocator state and rebuilds the cache.  The
  // geometry here has 2-3 groups, so the intra-metafile per-AA fan-out
  // is where the parallelism lives, not the group loop.
  std::vector<std::vector<AaScore>> scores(groups_.size());
  std::vector<ScanUnit> units(groups_.size());
  for (std::size_t i = 0; i < groups_.size(); ++i) {
    units[i] = {&groups_[i]->layout(), &scores[i]};
  }
  pipelined_bitmap_scan(activemap_.metafile(), units, pool);
  const auto t0 = std::chrono::steady_clock::now();
  auto adopt_one = [&](std::size_t i) {
    groups_[i]->adopt_scan(std::move(scores[i]));
  };
  if (pool != nullptr && groups_.size() > 1) {
    pool->parallel_for_dynamic(0, groups_.size(), adopt_one);
  } else {
    for (std::size_t i = 0; i < groups_.size(); ++i) adopt_one(i);
  }
  scan_profile().build_ns.fetch_add(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      std::memory_order_relaxed);
}

void WriteAllocator::seed_occupancy(RaidGroupId rg_id, double fraction,
                                    Rng& rng) {
  RgAllocator& rg = *groups_.at(rg_id);
  WAFL_ASSERT(fraction >= 0.0 && fraction <= 1.0);
  const Vbn begin = rg.base();
  const Vbn end = rg.end();
  for (Vbn v = begin; v < end; ++v) {
    if (!activemap_.is_allocated(v) && rng.chance(fraction)) {
      activemap_.allocate(v);
    }
  }
  activemap_.metafile().begin_cp();  // discard the artificial dirty set
  rg.reseed_board();
}

}  // namespace wafl
