// Mount orchestration and timing (§3.4, Figure 10).
//
// After a failover or reboot, write allocation — and therefore the first
// CP, which gates the restoration of client access — cannot begin until
// the AA caches are operational.  Two paths exist:
//
//   - TopAA path: read each RAID group's one-block TopAA metafile and each
//     FlexVol's two-block HBPS metafile; seed the caches.  Work is
//     constant per file system, independent of size.  The full caches are
//     then completed in the background (complete_background()).
//
//   - Scan path: linearly walk every bitmap metafile block, recompute all
//     AA scores, and build the caches from scratch.  Work is linear in
//     file-system size.
//
// mount_all() executes the chosen path and reports what it cost: metafile
// blocks read (the I/O term — the dominant cost on real systems, modeled
// by the caller from a per-read latency) and measured CPU seconds (the
// popcount/build term, measured for real).
#pragma once

#include <cstdint>

#include "wafl/aggregate.hpp"

namespace wafl {

class ThreadPool;

struct MountReport {
  bool used_topaa = false;
  /// Metafile blocks read while gating the first CP.
  std::uint64_t gate_block_reads = 0;
  /// Wall-clock CPU seconds spent in the gating phase (measured).
  double gate_cpu_seconds = 0.0;
  /// RAID groups successfully seeded from TopAA (TopAA path only).
  std::size_t rgs_seeded = 0;
  /// FlexVols successfully seeded from TopAA (TopAA path only).
  std::size_t vols_seeded = 0;
};

/// Brings every AA cache in the aggregate (and its FlexVols) to an
/// operational state via the requested path.  A pool in the aggregate's
/// runtime parallelizes the scan path's bitmap walks.
MountReport mount_all(Aggregate& agg, bool use_topaa);

/// After a TopAA mount: completes the caches in the background (full
/// bitmap walk + cache rebuild) — the work the TopAA path deferred off the
/// client-visible mount gate.  Returns the metafile blocks it read.
std::uint64_t complete_background(Aggregate& agg);

/// Crash-recovery mount: mount_all for an aggregate *reconstructed over
/// surviving media* (fresh process, stores copied from the crashed
/// instance) rather than a live failover within one process.  The bitmap
/// metafiles — the ground truth everything else is recomputed from — are
/// reloaded from the stores first, then the requested path brings up the
/// AA caches.  On the TopAA path the boards seeded groups/volumes carry
/// are the freshly-loaded-bitmap ones; the caches still come from the
/// TopAA blocks, so the §3.4 gate cost is unchanged.
MountReport recover_mount(Aggregate& agg, bool use_topaa);

}  // namespace wafl
