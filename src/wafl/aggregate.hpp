// Aggregate: the shared pool of physical storage hosting FlexVols (§2.1).
//
// The aggregate's physical VBN space is the concatenation of its RAID
// groups' ranges.  Each RAID group carries its own allocation-area layout
// (media-sized, §3.2), scoreboard, and AA cache, plus per-device media
// models.  Per §3.3, the cache form follows the storage's redundancy:
// RAID groups get the max-heap over all AAs (§3.3.1); object-store pools
// — "underlying storage with native resiliency and redundancy" — get the
// two-page HBPS over flat 32 Ki-VBN AAs (§3.3.2), persisted as the
// two-block RAID-agnostic TopAA form.
//
// Physical allocation works the way the paper's write allocator does:
//   - WAFL "attempts to write to all RAID groups available in an aggregate
//     in order to maximize the total write throughput" — the allocator
//     round-robins tetris windows across eligible RAID groups;
//   - within a group it fills the checked-out AA's free blocks in
//     sequential VBN order, one 64-stripe tetris window at a time;
//   - a group whose best AA score falls below a threshold is skipped while
//     other groups remain eligible (§3.3.1's stop/resume fragmentation
//     bias) — this produces Figure 7's aging-proportional write balance,
//     and, because fragmented windows simply carry fewer free blocks, the
//     bias also emerges naturally per tetris;
//   - completed windows become TetrisWrites: full/partial stripe
//     classification, parity I/O, and per-device write runs submitted to
//     the device models.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bitmap/activemap.hpp"
#include "core/hbps.hpp"
#include "core/max_heap_cache.hpp"
#include "core/scoreboard.hpp"
#include "core/topaa.hpp"
#include "raid/raid_group.hpp"
#include "storage/block_store.hpp"
#include "util/rng.hpp"
#include "wafl/aa_select.hpp"
#include "wafl/cp_stats.hpp"
#include "wafl/flexvol.hpp"
#include "wafl/media_config.hpp"

namespace wafl {

class ThreadPool;

struct RaidGroupConfig {
  std::uint32_t data_devices = 4;
  std::uint32_t parity_devices = 1;
  /// Data blocks per device (must be a multiple of kTetrisStripes).
  std::uint64_t device_blocks = 0;
  MediaConfig media{};
  /// AA size override in stripes; by default the §3.2 sizing policy runs.
  std::optional<std::uint32_t> aa_stripes{};
};

struct AggregateConfig {
  std::vector<RaidGroupConfig> raid_groups;
  AaSelectPolicy policy = AaSelectPolicy::kCache;
  /// Skip a RAID group when its best AA's free fraction drops below this
  /// while other groups remain eligible (0 disables the §3.3.1 bias).
  double rg_skip_free_fraction = 0.0;
};

class Aggregate {
 public:
  Aggregate(const AggregateConfig& cfg, std::uint64_t rng_seed);

  // --- Volumes ---------------------------------------------------------------
  FlexVol& add_volume(const FlexVolConfig& cfg);
  FlexVol& volume(VolumeId id) { return *volumes_.at(id); }
  const FlexVol& volume(VolumeId id) const { return *volumes_.at(id); }
  std::size_t volume_count() const noexcept { return volumes_.size(); }

  // --- Geometry --------------------------------------------------------------
  std::size_t raid_group_count() const noexcept { return rgs_.size(); }
  std::uint64_t total_blocks() const noexcept { return total_blocks_; }
  std::uint64_t free_blocks() const noexcept {
    return activemap_.total_free();
  }
  const RaidGroup& raid_group(RaidGroupId rg) const {
    return rgs_.at(rg)->raid;
  }
  RaidGroup& raid_group(RaidGroupId rg) { return rgs_.at(rg)->raid; }
  Vbn rg_base(RaidGroupId rg) const { return rgs_.at(rg)->base; }
  const AaLayout& rg_layout(RaidGroupId rg) const {
    return rgs_.at(rg)->layout;
  }
  const AaScoreBoard& rg_scoreboard(RaidGroupId rg) const {
    return rgs_.at(rg)->board;
  }
  const AaCache& rg_cache(RaidGroupId rg) const { return *rgs_.at(rg)->cache; }
  /// The group's heap, for RAID groups only (asserts otherwise).
  const MaxHeapAaCache& rg_heap(RaidGroupId rg) const;
  /// True when the group is an object-store pool using the HBPS (§3.3.2).
  bool rg_is_raid_agnostic(RaidGroupId rg) const {
    return rgs_.at(rg)->hbps != nullptr;
  }
  DeviceModel& data_device(RaidGroupId rg, DeviceId d) {
    return *rgs_.at(rg)->data_devices.at(d);
  }
  DeviceModel& parity_device(RaidGroupId rg, DeviceId d) {
    return *rgs_.at(rg)->parity_devices.at(d);
  }

  const Activemap& activemap() const noexcept { return activemap_; }
  /// Store holding the aggregate's bitmap-metafile blocks.
  BlockStore& meta_store() noexcept { return meta_store_; }
  /// Store holding the per-group TopAA slots (kept separate from the
  /// bitmap area so RAID-group growth can extend the bitmaps in place).
  BlockStore& topaa_store() noexcept { return topaa_store_; }
  /// First block of the group's TopAA slot in topaa_store() (each group
  /// owns a two-block slot; the heap form uses only the first block).
  std::uint64_t rg_topaa_block(RaidGroupId rg) const {
    WAFL_ASSERT(rg < rgs_.size());
    return rg * TopAaFile::kRaidAgnosticBlocks;
  }

  /// Adds a RAID group (or object-store pool) to a live aggregate —
  /// §3.1's "RAID group creation and growth", how §4.2's imbalanced-age
  /// configurations arise.  Must be called between CPs.  Returns the new
  /// group's id.
  RaidGroupId add_raid_group(const RaidGroupConfig& rgc);

  /// Mean write amplification across SSD/SMR data devices, 1.0 otherwise.
  double mean_write_amplification() const;
  void reset_wear_windows();

  /// Bench/test hook emulating §4.2's pre-aged RAID groups: marks a random
  /// `fraction` of the group's blocks allocated (as if aged by historic
  /// churn "until a random 50% of its blocks were used") and rebuilds the
  /// group's scoreboard and cache.  Must be called while no CP is in
  /// flight.  The seeded blocks belong to no volume and are never freed.
  void seed_rg_occupancy(RaidGroupId rg, double fraction, Rng& rng);

  // --- Physical-block ownership (the container-map back-pointer WAFL keeps
  // via its container files; needed by the segment cleaner to relocate
  // in-use blocks, §3.3.1) ---------------------------------------------------

  /// Owner of one physical block.
  struct BlockOwner {
    VolumeId vol;
    Vbn vvbn;
  };

  /// Records that `pvbn` now holds volume `vol`'s virtual block `vvbn`.
  void set_owner(Vbn pvbn, VolumeId vol, Vbn vvbn);
  /// Clears ownership (the block was freed).
  void clear_owner(Vbn pvbn);
  /// Owner of `pvbn`, or nullopt for unowned blocks (free, or seeded by
  /// seed_rg_occupancy).
  std::optional<BlockOwner> owner_of(Vbn pvbn) const;

  // --- Segment-cleaner support (§3.3.1) --------------------------------------

  /// Checks a specific AA out of the group's heap so the write allocator
  /// cannot target it while the cleaner relocates its blocks.  Returns
  /// false when the AA is already out (allocator cursor, or another
  /// checkout).  Requires the cache policy.
  bool checkout_aa(RaidGroupId rg, AaId aa);

  /// Returns a checked-out AA to the heap at its current scoreboard
  /// score.  Safe mid-CP: pending deltas re-key it at the CP boundary.
  void checkin_aa(RaidGroupId rg, AaId aa);

  // --- CP-side allocation ------------------------------------------------------

  /// Starts a CP interval: clears per-CP device busy accounting.
  void begin_cp();

  /// Allocates `n` physical VBNs in write order, appending to `out`.
  /// Returns false when the aggregate cannot supply them (out of space).
  bool allocate_pvbns(std::uint64_t n, std::vector<Vbn>& out, CpStats& stats);

  /// Defers the free of a physical VBN to the CP boundary.
  void defer_free_pvbn(Vbn v);

  /// Flushes open tetris windows, applies deferred frees (with device
  /// invalidation), folds score deltas into the heaps, re-admits retired
  /// AAs, flushes the bitmap metafile, and persists per-group TopAA blocks.
  void finish_cp(CpStats& stats);

  // --- Mount (§3.4) --------------------------------------------------------------

  /// Seeds every RAID group's heap from its TopAA block.  Groups whose
  /// block is damaged fall back to a scoreboard scan.  Returns the number
  /// of groups seeded from TopAA.
  std::size_t mount_from_topaa();

  /// Reads the bitmap metafile back from the store and rebuilds all
  /// scoreboards (and full heaps); parallelized across groups when a pool
  /// is supplied.  This is both the no-TopAA mount path and the background
  /// completion after a TopAA seed.
  void scan_rebuild(ThreadPool* pool = nullptr);

 private:
  struct RgState {
    RgState(RaidGroupId id, RaidGeometry geom, Vbn base_vbn,
            std::uint32_t aa_stripes_, double skip_fraction,
            bool raid_agnostic);

    RaidGroup raid;
    Vbn base;
    std::uint32_t aa_stripes;
    AaScore skip_threshold;  // best-AA score below this => skip the group
    std::vector<std::unique_ptr<DeviceModel>> data_devices;
    std::vector<std::unique_ptr<DeviceModel>> parity_devices;
    AaLayout layout;
    AaScoreBoard board;
    /// Exactly one of these is set: heap for RAID groups, hbps for
    /// object-store pools (then `cache` aliases it).
    MaxHeapAaCache* heap = nullptr;
    Hbps* hbps = nullptr;
    std::unique_ptr<AaCache> cache;
    /// Rebuilds the cache from the scoreboard (heap or HBPS form).
    void build_cache();

    AaId cursor_aa = kInvalidAaId;
    Vbn cursor_pos = 0;  // absolute pvbn
    std::vector<Vbn> window_writes;
    std::vector<AaId> retired;
    std::vector<SimTime> device_busy;  // data then parity, this CP
  };

  /// Creates and registers one group's state (shared by the constructor
  /// and add_raid_group).
  void append_raid_group(const RaidGroupConfig& rgc, RaidGroupId id,
                         Vbn base);

  /// Free blocks an AA has RIGHT NOW (activemap view, which unlike the
  /// scoreboard reflects this CP's own allocations).
  std::uint64_t live_aa_free(const RgState& rg, AaId aa) const;

  /// Ensures `rg` has an AA checked out; honors the skip threshold unless
  /// `force`.  Returns false when the group cannot allocate now.
  bool ensure_rg_cursor(RgState& rg, CpStats& stats, bool force);

  /// Allocates up to `need` pvbns from rg's current tetris window.
  std::uint64_t fill_window(RgState& rg, std::uint64_t need,
                            std::vector<Vbn>& out, CpStats& stats,
                            bool force);

  /// Builds and submits the TetrisWrite for rg's open window, then marks
  /// the window's blocks allocated.
  void emit_window(RgState& rg, CpStats& stats);

  RaidGroupId rg_of_pvbn(Vbn v) const;

  AggregateConfig cfg_;
  Rng rng_;
  std::uint64_t total_blocks_ = 0;

  std::vector<std::unique_ptr<RgState>> rgs_;
  /// Round-robin pointer for tetris distribution across groups.
  std::size_t rr_next_ = 0;

  BlockStore meta_store_;
  BlockStore topaa_store_;
  Activemap activemap_;

  /// pvbn -> packed owner (vol in the top 16 bits, vvbn below;
  /// kNoOwner when unowned).
  static constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};
  std::vector<std::uint64_t> owner_;

  std::vector<std::unique_ptr<FlexVol>> volumes_;
};

}  // namespace wafl
