// Aggregate: the shared pool of physical storage hosting FlexVols (§2.1).
//
// The aggregate's physical VBN space is the concatenation of its RAID
// groups' ranges.  Since the WriteAllocator extraction, this class owns
// only what is genuinely aggregate-wide:
//
//  - the volumes and the physical-block ownership table (the container-map
//    back-pointer the segment cleaner needs);
//  - the activemap and its bitmap-metafile store;
//  - the TopAA store (per-group slots, kept separate from the bitmap area
//    so RAID-group growth can extend the bitmaps in place);
//  - growth (§3.1) and aging/wear bookkeeping.
//
// Everything physical-allocation-shaped — per-group geometry, devices,
// scoreboards, AA caches, tetris windows, the round-robin rotation and
// §3.3.1 skip bias, the CP boundary's free/rebalance/persist machinery —
// lives in wafl/write_allocator.{hpp,cpp}; the CP-side methods here
// delegate to it.  The group accessors (rg_layout etc.) are re-exports
// kept for tests, benches, and the mount/cleaner call sites.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bitmap/activemap.hpp"
#include "storage/block_store.hpp"
#include "util/rng.hpp"
#include "wafl/cp_stats.hpp"
#include "wafl/flexvol.hpp"
#include "wafl/write_allocator.hpp"

namespace wafl {

class ThreadPool;

struct AggregateConfig {
  std::vector<RaidGroupConfig> raid_groups;
  AaSelectPolicy policy = AaSelectPolicy::kCache;
  /// Skip a RAID group when its best AA's free fraction drops below this
  /// while other groups remain eligible (0 disables the §3.3.1 bias).
  double rg_skip_free_fraction = 0.0;
};

class Aggregate {
 public:
  /// `rt` scopes everything the aggregate observes or executes on: its
  /// metric registry (with the agg="<id>" label dimension), flight
  /// recorder, crash hooks, phase profile, and worker pool.  The default
  /// Runtime routes to the process-global singletons with no pool —
  /// exactly the pre-Runtime behaviour.
  Aggregate(const AggregateConfig& cfg, std::uint64_t rng_seed,
            Runtime rt = {});

  /// The runtime every layer under this aggregate routes through.
  const Runtime& runtime() const noexcept { return runtime_; }

  // --- Volumes ---------------------------------------------------------------
  FlexVol& add_volume(const FlexVolConfig& cfg);
  FlexVol& volume(VolumeId id) { return *volumes_.at(id); }
  const FlexVol& volume(VolumeId id) const { return *volumes_.at(id); }
  std::size_t volume_count() const noexcept { return volumes_.size(); }

  // --- The write-allocation engine -------------------------------------------
  WriteAllocator& write_allocator() noexcept { return walloc_; }
  const WriteAllocator& write_allocator() const noexcept { return walloc_; }

  // --- Geometry (re-exports of per-group engine state) -----------------------
  std::size_t raid_group_count() const noexcept {
    return walloc_.group_count();
  }
  std::uint64_t total_blocks() const noexcept { return total_blocks_; }
  std::uint64_t free_blocks() const noexcept {
    return activemap_.total_free();
  }
  const RaidGroup& raid_group(RaidGroupId rg) const {
    return walloc_.group(rg).raid();
  }
  RaidGroup& raid_group(RaidGroupId rg) { return walloc_.group(rg).raid(); }
  Vbn rg_base(RaidGroupId rg) const { return walloc_.group(rg).base(); }
  const AaLayout& rg_layout(RaidGroupId rg) const {
    return walloc_.group(rg).layout();
  }
  const AaScoreBoard& rg_scoreboard(RaidGroupId rg) const {
    return walloc_.group(rg).board();
  }
  const AaCache& rg_cache(RaidGroupId rg) const {
    return walloc_.group(rg).cache();
  }
  /// The group's heap, for RAID groups only (asserts otherwise).
  const MaxHeapAaCache& rg_heap(RaidGroupId rg) const {
    return walloc_.group(rg).heap();
  }
  /// The group's HBPS, for object-store pools only (asserts otherwise).
  const Hbps& rg_hbps(RaidGroupId rg) const {
    return walloc_.group(rg).hbps();
  }
  /// True when the group is an object-store pool using the HBPS (§3.3.2).
  bool rg_is_raid_agnostic(RaidGroupId rg) const {
    return walloc_.group(rg).raid_agnostic();
  }
  DeviceModel& data_device(RaidGroupId rg, DeviceId d) {
    return walloc_.group(rg).data_device(d);
  }
  DeviceModel& parity_device(RaidGroupId rg, DeviceId d) {
    return walloc_.group(rg).parity_device(d);
  }

  const Activemap& activemap() const noexcept { return activemap_; }
  /// Store holding the aggregate's bitmap-metafile blocks.
  BlockStore& meta_store() noexcept { return meta_store_; }
  /// Store holding the per-group TopAA slots.
  BlockStore& topaa_store() noexcept { return topaa_store_; }
  /// First block of the group's TopAA slot in topaa_store() (each group
  /// owns a two-block slot; the heap form uses only the first block).
  std::uint64_t rg_topaa_block(RaidGroupId rg) const {
    WAFL_ASSERT(rg < walloc_.group_count());
    return rg * TopAaFile::kRaidAgnosticBlocks;
  }

  /// Adds a RAID group (or object-store pool) to a live aggregate —
  /// §3.1's "RAID group creation and growth", how §4.2's imbalanced-age
  /// configurations arise.  Must be called between CPs.  Returns the new
  /// group's id.
  RaidGroupId add_raid_group(const RaidGroupConfig& rgc);

  /// Mean write amplification across SSD/SMR data devices, 1.0 otherwise.
  double mean_write_amplification() const;
  void reset_wear_windows();

  /// Bench/test hook emulating §4.2's pre-aged RAID groups: marks a random
  /// `fraction` of the group's blocks allocated (as if aged by historic
  /// churn "until a random 50% of its blocks were used") and rebuilds the
  /// group's scoreboard and cache.  Must be called while no CP is in
  /// flight.  The seeded blocks belong to no volume and are never freed.
  void seed_rg_occupancy(RaidGroupId rg, double fraction, Rng& rng) {
    walloc_.seed_occupancy(rg, fraction, rng);
  }

  // --- Physical-block ownership (the container-map back-pointer WAFL keeps
  // via its container files; needed by the segment cleaner to relocate
  // in-use blocks, §3.3.1) ---------------------------------------------------

  /// Owner of one physical block.
  struct BlockOwner {
    VolumeId vol;
    Vbn vvbn;
  };

  /// Records that `pvbn` now holds volume `vol`'s virtual block `vvbn`.
  void set_owner(Vbn pvbn, VolumeId vol, Vbn vvbn);
  /// Clears ownership (the block was freed).
  void clear_owner(Vbn pvbn);
  /// Owner of `pvbn`, or nullopt for unowned blocks (free, or seeded by
  /// seed_rg_occupancy).
  std::optional<BlockOwner> owner_of(Vbn pvbn) const;

  // --- Segment-cleaner support (§3.3.1) --------------------------------------

  /// Checks a specific AA out of the group's heap so the write allocator
  /// cannot target it while the cleaner relocates its blocks.  Returns
  /// false when the AA is already out (allocator cursor, or another
  /// checkout).  Requires the cache policy.
  bool checkout_aa(RaidGroupId rg, AaId aa) {
    return walloc_.checkout_aa(rg, aa);
  }

  /// Returns a checked-out AA to the heap at its current scoreboard
  /// score.  Safe mid-CP: pending deltas re-key it at the CP boundary.
  void checkin_aa(RaidGroupId rg, AaId aa) { walloc_.checkin_aa(rg, aa); }

  // --- CP-side allocation ------------------------------------------------------

  /// Starts a CP interval: clears per-CP device busy accounting.
  void begin_cp() { walloc_.begin_cp(); }

  /// Generation swap at CP freeze (DESIGN.md §13): folds every intake-
  /// staged (active-generation) mutation — the aggregate activemap's
  /// intake dirty set, the engine's generation, and each volume's staged
  /// delayed frees and intake dirty blocks — into the frozen generation
  /// the starting CP drains.  O(staged entries), touches no media, and
  /// is called with no CP in flight, so a crash mid-swap loses only
  /// unfrozen in-memory intake (the same blast radius as a crash between
  /// CPs).  Returns the number of staged entries folded.
  std::uint64_t freeze_cp_generation();

  /// Leasable AA runs for the concurrent intake front end (DESIGN.md
  /// §14): each group's best `per_group` cached AAs in group-id order.
  /// Const reads of the AA caches; call only while no drain is mutating
  /// them (the overlapped driver does so inside its freeze window).
  std::vector<LeaseRegion> lease_regions(std::size_t per_group) const {
    return walloc_.lease_regions(per_group);
  }

  /// Allocates `n` physical VBNs in write order, appending to `out`.
  /// With a pool in the runtime, the engine's execute phase fans out per
  /// RAID group; results are bit-identical at any worker count (see
  /// write_allocator).  Returns false when the aggregate cannot supply
  /// them (out of space).
  bool allocate_pvbns(std::uint64_t n, std::vector<Vbn>& out, CpStats& stats) {
    return walloc_.allocate(n, out, stats);
  }

  /// Defers the free of a physical VBN to the CP boundary.
  void defer_free_pvbn(Vbn v) {
    activemap_.defer_free(v);
    walloc_.note_free(v);
  }

  /// The CP boundary: flushes open tetris windows, applies deferred frees
  /// (with device invalidation), folds score deltas into the caches,
  /// re-admits retired AAs, flushes the bitmap metafile, and persists
  /// per-group TopAA blocks.  With a pool in the runtime, the
  /// group-disjoint work fans out across groups; results are bit-identical
  /// to the serial path (see write_allocator.hpp for the determinism
  /// argument).
  void finish_cp(CpStats& stats) { walloc_.finish_cp(stats); }

  // --- Mount (§3.4) --------------------------------------------------------------

  /// Seeds every RAID group's heap from its TopAA block.  Groups whose
  /// block is damaged fall back to a scoreboard scan.  Returns the number
  /// of groups seeded from TopAA.
  std::size_t mount_from_topaa() { return walloc_.mount_from_topaa(); }

  /// Reads the bitmap metafile back from the store and rebuilds all
  /// scoreboards (and full heaps); parallelized across groups on the
  /// runtime's pool.  This is both the no-TopAA mount path and the
  /// background completion after a TopAA seed.
  void scan_rebuild() { walloc_.scan_rebuild(); }

  /// Crash-recovery support: reloads the aggregate's bitmap metafile from
  /// its backing store without rebuilding any scoreboard or cache.  A
  /// reconstructed aggregate (fresh object over surviving store bytes —
  /// see recover_mount in wafl/mount.hpp) needs its bits loaded before
  /// either mount path runs; volumes reload theirs via
  /// FlexVol::rebuild_scoreboard().
  void load_activemap() { activemap_.metafile().load_all(runtime_.pool()); }

 private:
  AggregateConfig cfg_;
  Rng rng_;
  /// Declared before walloc_ and the volumes: they keep pointers into it.
  Runtime runtime_;
  std::uint64_t total_blocks_ = 0;

  BlockStore meta_store_;
  BlockStore topaa_store_;
  Activemap activemap_;
  WriteAllocator walloc_;

  /// pvbn -> packed owner (vol in the top 16 bits, vvbn below;
  /// kNoOwner when unowned).
  static constexpr std::uint64_t kNoOwner = ~std::uint64_t{0};
  std::vector<std::uint64_t> owner_;

  std::vector<std::unique_ptr<FlexVol>> volumes_;
};

}  // namespace wafl
