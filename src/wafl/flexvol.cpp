#include "wafl/flexvol.hpp"

#include <algorithm>
#include <chrono>

#include "core/scan_pipeline.hpp"
#include "obs/obs.hpp"

namespace wafl {
namespace {

std::uint64_t bitmap_blocks_for(std::uint64_t nbits) {
  return (nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock;
}

}  // namespace

AaId pick_random_nonempty_aa(const AaScoreBoard& board, Rng& rng,
                             AaId exclude) {
  const AaId n = board.aa_count();
  WAFL_ASSERT(n > 0);
  // Random probing succeeds quickly unless nearly everything is full.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto aa = static_cast<AaId>(rng.below(n));
    if (aa != exclude && board.score(aa) > 0) return aa;
  }
  // Deterministic fallback: linear scan from a random start.
  const auto start = static_cast<AaId>(rng.below(n));
  for (AaId i = 0; i < n; ++i) {
    const AaId aa = (start + i) % n;
    if (aa != exclude && board.score(aa) > 0) return aa;
  }
  return kInvalidAaId;
}

FlexVol::FlexVol(VolumeId id, const FlexVolConfig& cfg, std::uint64_t rng_seed,
                 const Runtime* rt)
    : rt_(rt != nullptr ? rt : &process_runtime()),
      id_(id),
      cfg_(cfg),
      rng_(rng_seed),
      store_(bitmap_blocks_for(cfg.vvbn_blocks) +
             TopAaFile::kRaidAgnosticBlocks),
      topaa_base_(bitmap_blocks_for(cfg.vvbn_blocks)),
      activemap_(cfg.vvbn_blocks, &store_, 0),
      layout_(AaLayout::flat(0, cfg.vvbn_blocks, cfg.aa_blocks)),
      board_(layout_),
      cache_(Hbps::Config{/*max_score=*/cfg.aa_blocks,
                          /*bin_width=*/std::max<std::uint32_t>(
                              1, cfg.aa_blocks / kHbpsBinCount),
                          /*list_capacity=*/kHbpsListCapacity}),
      block_map_(cfg.file_blocks, kInvalidVbn),
      container_map_(cfg.vvbn_blocks, kInvalidVbn),
      snap_held_(cfg.vvbn_blocks),
      delayed_(cfg.vvbn_blocks, cfg.aa_blocks) {
  WAFL_ASSERT(cfg.vvbn_blocks > 0);
  WAFL_ASSERT(cfg.file_blocks <= cfg.vvbn_blocks);
  if (cfg_.policy == AaSelectPolicy::kCache) {
    cache_.build(board_);
  }
  resolve_metrics();
  bind_cache_counters();
}

void FlexVol::resolve_metrics() {
  WAFL_OBS({
    obs::Registry& reg = rt_->registry();
    const std::string vol =
        rt_->labels("vol=\"" + std::to_string(id_) + "\"");
    metrics_.checkouts = &reg.counter("wafl.vol.aa_checkouts", vol);
    metrics_.checkout_free_frac = &reg.linear_histogram(
        "wafl.vol.aa_checkout_free_frac", 0.0, 1.0, 64, vol);
    metrics_.putbacks = &reg.counter("wafl.vol.aa_putbacks", vol);
    metrics_.scoreboard_changed =
        &reg.counter("wafl.scoreboard.cp_changed_aas", vol);
    metrics_.hbps_replenishes = &reg.counter("wafl.hbps.replenishes", vol);
    // Aggregate-wide (vol-unlabelled): the cache structures tick this
    // directly; every volume in a runtime shares the handle.
    metrics_.hbps_rebins = &reg.counter("wafl.hbps.rebins", rt_->labels());
  });
}

void FlexVol::bind_cache_counters() {
  cache_.bind_rebin_counter(metrics_.hbps_rebins);
  delayed_.bind_rebin_counter(metrics_.hbps_rebins);
}

bool FlexVol::ensure_cursor(CpStats& stats) {
  // Cache/board scores only change at CP boundaries (§3.3), so every
  // candidate is validated against the live activemap before the cursor
  // commits — an AA consumed earlier in this same CP must be skipped.
  auto live_free = [this](AaId aa) {
    return activemap_.metafile().free_in_range(layout_.aa_begin(aa),
                                               layout_.aa_end(aa));
  };

  int random_attempts = 0;
  for (;;) {
    if (cursor_aa_ != kInvalidAaId) return true;

    AaId aa = kInvalidAaId;
    if (cfg_.policy == AaSelectPolicy::kCache) {
      if (cache_.needs_replenish()) {
        // §3.3.2: the background scan refills the list when the allocator
        // consumes AAs faster than frees replenish them, or when AAs from
        // better score ranges are stranded outside the list.
        cache_.build(board_);
        ++stats.hbps_replenishes;
        WAFL_OBS({
          metrics_.hbps_replenishes->inc();
          obs::trace().emit(obs::EventType::kHbpsReplenish, id_,
                            layout_.aa_count());
        });
      }
      const auto pick = cache_.take_best();
      if (!pick.has_value()) return false;
      aa = pick->aa;
      if (live_free(aa) == 0) {
        // Stale cache entry (full AA behind coarse bins, or consumed this
        // CP): keep it out until the boundary re-scores it.
        retired_.push_back(aa);
        continue;
      }
    } else {
      if (random_attempts++ < 64) {
        aa = pick_random_nonempty_aa(board_, rng_);
        if (aa == kInvalidAaId || live_free(aa) == 0) continue;
      } else {
        aa = kInvalidAaId;
        for (AaId i = 0; i < layout_.aa_count(); ++i) {
          if (live_free(i) > 0) {
            aa = i;
            break;
          }
        }
        if (aa == kInvalidAaId) return false;
      }
    }

    const double free_frac = static_cast<double>(board_.score(aa)) /
                             static_cast<double>(layout_.aa_capacity(aa));
    stats.vol_pick_free_frac.add(free_frac);
    WAFL_OBS({
      metrics_.checkouts->inc();
      metrics_.checkout_free_frac->record(free_frac);
      obs::trace().emit(obs::EventType::kAaCheckout, id_, aa, board_.score(aa),
                        layout_.aa_capacity(aa));
    });
    cursor_aa_ = aa;
    cursor_pos_ = layout_.aa_begin(aa);
    return true;
  }
}

void FlexVol::retire_cursor() {
  WAFL_ASSERT(cursor_aa_ != kInvalidAaId);
  if (cfg_.policy == AaSelectPolicy::kCache) {
    retired_.push_back(cursor_aa_);
  }
  cursor_aa_ = kInvalidAaId;
}

Vbn FlexVol::allocate_vvbn(CpStats& stats) {
  for (;;) {
    const bool ok = ensure_cursor(stats);
    WAFL_ASSERT_MSG(ok, "FlexVol out of space");
    const Vbn end = layout_.aa_end(cursor_aa_);
    const Vbn v = activemap_.metafile().find_free(cursor_pos_, end);
    stats.vol_bits_scanned += (v == end ? end : v + 1) - cursor_pos_;
    if (v == end) {
      retire_cursor();
      continue;
    }
    cursor_pos_ = v + 1;
    activemap_.allocate(v);
    board_.note_alloc(v);
    if (cursor_pos_ == end) {
      retire_cursor();
    }
    return v;
  }
}

Vbn FlexVol::remap(std::uint64_t l, Vbn vvbn, Vbn pvbn) {
  WAFL_ASSERT(l < cfg_.file_blocks);
  WAFL_ASSERT(container_map_[vvbn] == kInvalidVbn);
  Vbn freed_pvbn = kInvalidVbn;
  const Vbn old_vvbn = block_map_[l];
  if (old_vvbn != kInvalidVbn && !snap_held_.test(old_vvbn)) {
    freed_pvbn = container_map_[old_vvbn];
    container_map_[old_vvbn] = kInvalidVbn;
    activemap_.defer_free(old_vvbn);
    board_.note_free(old_vvbn);
  }
  // A snapshot-held old block stays allocated and mapped; it is reclaimed
  // (as a delayed free) when its last holding snapshot is deleted.
  block_map_[l] = vvbn;
  container_map_[vvbn] = pvbn;
  return freed_pvbn;
}

Vbn FlexVol::relocate(Vbn vvbn, Vbn new_pvbn) {
  WAFL_ASSERT(vvbn < cfg_.vvbn_blocks);
  WAFL_ASSERT_MSG(container_map_[vvbn] != kInvalidVbn,
                  "relocating an unmapped vvbn");
  const Vbn old_pvbn = container_map_[vvbn];
  container_map_[vvbn] = new_pvbn;
  return old_pvbn;
}

SnapId FlexVol::create_snapshot() {
  Snapshot snap;
  snap.id = next_snap_id_++;
  snap.block_map = block_map_;
  for (const Vbn v : snap.block_map) {
    if (v != kInvalidVbn) {
      snap_held_.set(v);
    }
  }
  snapshots_.push_back(std::move(snap));
  return snapshots_.back().id;
}

Vbn FlexVol::snapshot_vvbn_of(SnapId id, std::uint64_t l) const {
  WAFL_ASSERT(l < cfg_.file_blocks);
  for (const Snapshot& snap : snapshots_) {
    if (snap.id == id) return snap.block_map[l];
  }
  WAFL_ASSERT_MSG(false, "no such snapshot");
  return kInvalidVbn;
}

void FlexVol::delete_snapshot(SnapId id) {
  const auto it = std::find_if(
      snapshots_.begin(), snapshots_.end(),
      [id](const Snapshot& snap) { return snap.id == id; });
  WAFL_ASSERT_MSG(it != snapshots_.end(), "no such snapshot");
  const Snapshot deleted = std::move(*it);
  snapshots_.erase(it);

  // Still-held = union of the remaining snapshots' references.
  Bitmap still_held(cfg_.vvbn_blocks);
  for (const Snapshot& snap : snapshots_) {
    for (const Vbn v : snap.block_map) {
      if (v != kInvalidVbn) still_held.set(v);
    }
  }
  // Active = the live file's current references.
  Bitmap active(cfg_.vvbn_blocks);
  for (const Vbn v : block_map_) {
    if (v != kInvalidVbn) active.set(v);
  }

  // Blocks only the deleted snapshot referenced become delayed frees —
  // logged per region and reclaimed richest-region-first (§3.3.2's
  // delayed-free use of the HBPS), not freed in one giant burst.
  for (const Vbn v : deleted.block_map) {
    if (v == kInvalidVbn || !snap_held_.test(v)) continue;
    if (still_held.test(v)) continue;
    snap_held_.clear(v);
    if (!active.test(v)) {
      // Staged in the active generation: the in-flight (frozen) CP's
      // richest-first drain order is already fixed; these enter the
      // drainable log at the next freeze_cp_generation().  The ledger is
      // an MPSC log (DESIGN.md §14), so deletions staged from intake
      // threads need no volume-wide lock.
      delayed_.log_free_active(v);
    }
  }
}

std::uint64_t FlexVol::freeze_cp_generation() {
  return delayed_.freeze_generation() +
         activemap_.metafile().freeze_dirty_generation();
}

std::uint64_t FlexVol::process_delayed_frees(std::size_t max_regions,
                                             std::vector<Vbn>& freed_pvbns) {
  std::uint64_t reclaimed = 0;
  for (std::size_t i = 0; i < max_regions; ++i) {
    const auto drain = delayed_.drain_richest();
    if (!drain.has_value()) break;
    for (const Vbn vvbn : drain->vbns) {
      const Vbn pvbn = container_map_[vvbn];
      WAFL_ASSERT(pvbn != kInvalidVbn);
      container_map_[vvbn] = kInvalidVbn;
      activemap_.defer_free(vvbn);
      board_.note_free(vvbn);
      freed_pvbns.push_back(pvbn);
      ++reclaimed;
    }
  }
  return reclaimed;
}

void FlexVol::finish_cp(CpStats& stats) {
  // A volume untouched by this CP has nothing to apply, flush, or persist.
  if (activemap_.metafile().dirty_blocks() == 0 &&
      activemap_.pending_frees() == 0 && retired_.empty()) {
    return;
  }

  // Frees are counted once, at the aggregate (vvbn and pvbn frees are 1:1
  // for overwrites).
  activemap_.apply_deferred_frees();

  const auto changes = board_.apply_cp_deltas();
  WAFL_OBS(metrics_.scoreboard_changed->add(changes.size()));
  if (cfg_.policy == AaSelectPolicy::kCache) {
    cache_.apply_changes(changes);
    for (const AaId aa : retired_) {
      cache_.insert(aa, board_.score(aa));
      WAFL_OBS({
        metrics_.putbacks->inc();
        obs::trace().emit(obs::EventType::kAaPutback, id_, aa,
                          board_.score(aa));
      });
    }
    retired_.clear();
    if (cache_.needs_replenish()) {
      cache_.build(board_);
      ++stats.hbps_replenishes;
      WAFL_OBS({
        metrics_.hbps_replenishes->inc();
        obs::trace().emit(obs::EventType::kHbpsReplenish, id_,
                          layout_.aa_count());
      });
    }
  }

  stats.vol_meta_blocks += activemap_.metafile().dirty_blocks();
  const std::uint64_t flushed = activemap_.metafile().flush();
  stats.meta_flush_blocks += flushed;

  if (cfg_.policy == AaSelectPolicy::kCache) {
    TopAaFile topaa(store_, topaa_base_);
    if (cursor_aa_ != kInvalidAaId) {
      // The persisted structure must account for EVERY AA: the cursor's
      // checked-out AA would otherwise be orphaned after a mount (the
      // cursor does not survive a failover, §3.4).
      Hbps snapshot = cache_;
      snapshot.insert(cursor_aa_, board_.score(cursor_aa_));
      topaa.save_raid_agnostic(snapshot);
    } else {
      topaa.save_raid_agnostic(cache_);
    }
    stats.meta_flush_blocks += TopAaFile::kRaidAgnosticBlocks;
  }
}

bool FlexVol::mount_from_topaa() {
  TopAaFile topaa(store_, topaa_base_);
  auto loaded = topaa.load_raid_agnostic();
  if (!loaded.has_value()) {
    scan_rebuild();
    return false;
  }
  // The loaded image arrives with no counter binding; restore ours.
  cache_ = std::move(*loaded);
  bind_cache_counters();
  cursor_aa_ = kInvalidAaId;
  retired_.clear();
  return true;
}

void FlexVol::rebuild_scoreboard() {
  ThreadPool* pool = rt_->pool();
  // Linear walk of the bitmap metafile (§3.4): read every block back from
  // the store, then recompute per-AA scores — as one pipelined pass that
  // overlaps the block reads with the scoring (serial below the cutover
  // or without a pool; identical scores either way).
  std::vector<AaScore> scores;
  const ScanUnit unit{&layout_, &scores};
  pipelined_bitmap_scan(activemap_.metafile(), std::span(&unit, 1), pool);
  board_ = AaScoreBoard(layout_, std::move(scores));
}

void FlexVol::scan_rebuild() {
  rebuild_scoreboard();
  cursor_aa_ = kInvalidAaId;
  retired_.clear();
  if (cfg_.policy == AaSelectPolicy::kCache) {
    const auto t0 = std::chrono::steady_clock::now();
    cache_ = Hbps(cache_.config());
    bind_cache_counters();
    cache_.build(board_);
    scan_profile().build_ns.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count()),
        std::memory_order_relaxed);
  }
}

}  // namespace wafl
