// Dense bit vector with the operations free-space tracking needs.
//
// Convention used throughout the library: a SET bit means the block is
// ALLOCATED (in use); a clear bit means free.  This matches WAFL's
// activemap semantics ("the i-th bit tracks the state of the i-th block of
// the file system", §2.5).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/types.hpp"

namespace wafl {

class Bitmap {
 public:
  /// Creates a bitmap of `nbits` bits, all clear (all blocks free) unless
  /// `initially_set`.
  explicit Bitmap(std::uint64_t nbits, bool initially_set = false)
      : nbits_(nbits),
        words_((nbits + 63) / 64,
               initially_set ? ~std::uint64_t{0} : std::uint64_t{0}) {
    trim_tail();
  }

  std::uint64_t size() const noexcept { return nbits_; }

  /// Extends the bitmap to `new_nbits` (>= size()); new bits are clear.
  void grow(std::uint64_t new_nbits) {
    WAFL_ASSERT(new_nbits >= nbits_);
    nbits_ = new_nbits;
    words_.resize((new_nbits + 63) / 64, 0);
  }

  bool test(std::uint64_t i) const noexcept {
    WAFL_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::uint64_t i) noexcept {
    WAFL_ASSERT(i < nbits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void clear(std::uint64_t i) noexcept {
    WAFL_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Number of SET bits in [begin, end).
  std::uint64_t count_set(std::uint64_t begin, std::uint64_t end) const;

  /// Number of CLEAR bits (free blocks) in [begin, end).
  std::uint64_t count_clear(std::uint64_t begin, std::uint64_t end) const {
    WAFL_ASSERT(begin <= end && end <= nbits_);
    return (end - begin) - count_set(begin, end);
  }

  /// First clear bit in [begin, end), or `end` if none.
  std::uint64_t find_first_clear(std::uint64_t begin, std::uint64_t end) const;

  /// First set bit in [begin, end), or `end` if none.
  std::uint64_t find_first_set(std::uint64_t begin, std::uint64_t end) const;

  /// Length of the run of clear bits starting at `begin`, capped at `end`.
  std::uint64_t clear_run_length(std::uint64_t begin, std::uint64_t end) const;

  /// Clears every bit of `mask` in word `w`; asserts each was set (a
  /// double free is a file-system bug, never a recoverable condition).
  /// The word-batched CP free path: one RMW per touched word instead of
  /// one per bit.
  void clear_word_mask(std::uint64_t w, std::uint64_t mask) noexcept {
    WAFL_ASSERT(w < words_.size());
    WAFL_ASSERT_MSG((words_[w] & mask) == mask, "freeing a free block");
    words_[w] &= ~mask;
  }

  /// Bulk word overwrite for deserialization (the mount walk): words
  /// [first_word, first_word + src.size()) take `src`'s values verbatim.
  /// If the run covers the final word, bits beyond size() are re-cleared,
  /// so garbage a torn or corrupt medium left past the tracked range
  /// cannot skew whole-word popcounts.
  void store_words(std::uint64_t first_word,
                   std::span<const std::uint64_t> src) noexcept {
    WAFL_ASSERT(first_word + src.size() <= words_.size());
    std::memcpy(words_.data() + first_word, src.data(), src.size() * 8);
    if (first_word + src.size() == words_.size()) {
      trim_tail();
    }
  }

  /// Raw word access for serialization (little-endian word layout).
  const std::vector<std::uint64_t>& words() const noexcept { return words_; }

 private:
  // Bits beyond nbits_ in the last word must stay clear so whole-word
  // popcounts are exact.
  void trim_tail() noexcept {
    const std::uint64_t tail = nbits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (std::uint64_t{1} << tail) - 1;
    }
  }

  std::uint64_t nbits_;
  std::vector<std::uint64_t> words_;
};

}  // namespace wafl
