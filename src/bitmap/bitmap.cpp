#include "bitmap/bitmap.hpp"

#include <bit>

namespace wafl {

std::uint64_t Bitmap::count_set(std::uint64_t begin, std::uint64_t end) const {
  WAFL_ASSERT(begin <= end && end <= nbits_);
  if (begin == end) return 0;

  const std::uint64_t first_word = begin >> 6;
  const std::uint64_t last_word = (end - 1) >> 6;

  if (first_word == last_word) {
    std::uint64_t w = words_[first_word];
    w >>= (begin & 63);
    const std::uint64_t span_bits = end - begin;
    if (span_bits < 64) w &= (std::uint64_t{1} << span_bits) - 1;
    return static_cast<std::uint64_t>(std::popcount(w));
  }

  std::uint64_t total = 0;
  // Head partial word.
  total += static_cast<std::uint64_t>(
      std::popcount(words_[first_word] >> (begin & 63)));
  // Middle full words.
  for (std::uint64_t w = first_word + 1; w < last_word; ++w) {
    total += static_cast<std::uint64_t>(std::popcount(words_[w]));
  }
  // Tail partial word.
  const std::uint64_t tail_bits = ((end - 1) & 63) + 1;
  std::uint64_t tail = words_[last_word];
  if (tail_bits < 64) tail &= (std::uint64_t{1} << tail_bits) - 1;
  total += static_cast<std::uint64_t>(std::popcount(tail));
  return total;
}

std::uint64_t Bitmap::find_first_clear(std::uint64_t begin,
                                       std::uint64_t end) const {
  WAFL_ASSERT(begin <= end && end <= nbits_);
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t word_idx = i >> 6;
    // Invert so clear bits become set, mask off bits below i.
    std::uint64_t w = ~words_[word_idx] & ~((std::uint64_t{1} << (i & 63)) - 1);
    if (w != 0) {
      const std::uint64_t bit =
          (word_idx << 6) +
          static_cast<std::uint64_t>(std::countr_zero(w));
      return bit < end ? bit : end;
    }
    i = (word_idx + 1) << 6;
  }
  return end;
}

std::uint64_t Bitmap::find_first_set(std::uint64_t begin,
                                     std::uint64_t end) const {
  WAFL_ASSERT(begin <= end && end <= nbits_);
  std::uint64_t i = begin;
  while (i < end) {
    const std::uint64_t word_idx = i >> 6;
    std::uint64_t w = words_[word_idx] & ~((std::uint64_t{1} << (i & 63)) - 1);
    if (w != 0) {
      const std::uint64_t bit =
          (word_idx << 6) +
          static_cast<std::uint64_t>(std::countr_zero(w));
      return bit < end ? bit : end;
    }
    i = (word_idx + 1) << 6;
  }
  return end;
}

std::uint64_t Bitmap::clear_run_length(std::uint64_t begin,
                                       std::uint64_t end) const {
  const std::uint64_t next_set = find_first_set(begin, end);
  return next_set - begin;
}

}  // namespace wafl
