#include "bitmap/bitmap_metafile.hpp"

#include <cstring>

#include "util/thread_pool.hpp"

namespace wafl {

namespace {
constexpr std::uint64_t kWordsPerBlock = kBitsPerBitmapBlock / 64;
}  // namespace

BitmapMetafile::BitmapMetafile(std::uint64_t nbits, BlockStore* store,
                               std::uint64_t store_base_block)
    : bits_(nbits),
      free_per_block_((nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock),
      total_free_(nbits),
      dirty_flag_(free_per_block_.size(), false),
      store_(store),
      store_base_(store_base_block) {
  // All bits start clear (free); the last block may cover fewer bits.
  for (std::uint64_t b = 0; b < free_per_block_.size(); ++b) {
    const std::uint64_t lo = b * kBitsPerBitmapBlock;
    const std::uint64_t hi = std::min<std::uint64_t>(
        lo + kBitsPerBitmapBlock, nbits);
    free_per_block_[b] = static_cast<std::uint32_t>(hi - lo);
  }
}

void BitmapMetafile::set_allocated(Vbn v) {
  WAFL_ASSERT_MSG(!bits_.test(v), "double allocation");
  bits_.set(v);
  const std::uint64_t b = v / kBitsPerBitmapBlock;
  WAFL_ASSERT(free_per_block_[b] > 0);
  --free_per_block_[b];
  --total_free_;
  mark_dirty(b);
}

void BitmapMetafile::set_free(Vbn v) {
  WAFL_ASSERT_MSG(bits_.test(v), "freeing a free block");
  bits_.clear(v);
  const std::uint64_t b = v / kBitsPerBitmapBlock;
  ++free_per_block_[b];
  ++total_free_;
  mark_dirty(b);
}

void BitmapMetafile::account_frees(std::span<const Vbn> freed) {
  for (const Vbn v : freed) {
    WAFL_ASSERT_MSG(!bits_.test(v), "accounting an uncleared free");
    const std::uint64_t b = v / kBitsPerBitmapBlock;
    ++free_per_block_[b];
    ++total_free_;
    mark_dirty(b);
  }
}

std::uint64_t BitmapMetafile::free_in_range(Vbn begin, Vbn end) const {
  WAFL_ASSERT(begin <= end && end <= bits_.size());
  // Fast path: block-aligned range answered from the summary.
  if (begin % kBitsPerBitmapBlock == 0 && end % kBitsPerBitmapBlock == 0) {
    std::uint64_t total = 0;
    for (std::uint64_t b = begin / kBitsPerBitmapBlock;
         b < end / kBitsPerBitmapBlock; ++b) {
      total += free_per_block_[b];
    }
    return total;
  }
  return bits_.count_clear(begin, end);
}

void BitmapMetafile::begin_cp() {
  for (const std::uint64_t b : dirty_list_) {
    dirty_flag_[b] = false;
  }
  dirty_list_.clear();
}

std::uint64_t BitmapMetafile::flush() {
  const std::uint64_t flushed = dirty_list_.size();
  if (store_ != nullptr) {
    alignas(8) std::byte buf[kBlockSize];
    for (const std::uint64_t b : dirty_list_) {
      serialize_block(b, buf);
      store_->write(store_base_ + b, buf);
    }
  }
  begin_cp();
  return flushed;
}

void BitmapMetafile::load_all(ThreadPool* pool) {
  // Read serialized blocks into the word array, then recompute summaries.
  auto load_block = [this](std::size_t b) {
    alignas(8) std::byte buf[kBlockSize];
    store_->read(store_base_ + b, buf);
    const std::uint64_t lo_bit = b * kBitsPerBitmapBlock;
    const std::uint64_t hi_bit =
        std::min<std::uint64_t>(lo_bit + kBitsPerBitmapBlock, bits_.size());
    std::uint64_t word[1];
    for (std::uint64_t i = 0; i < kWordsPerBlock; ++i) {
      const std::uint64_t bit0 = lo_bit + i * 64;
      if (bit0 >= hi_bit) break;
      std::memcpy(word, buf + i * 8, 8);
      for (std::uint64_t j = 0; j < 64 && bit0 + j < hi_bit; ++j) {
        const bool want = (word[0] >> j) & 1u;
        if (want != bits_.test(bit0 + j)) {
          if (want) {
            bits_.set(bit0 + j);
          } else {
            bits_.clear(bit0 + j);
          }
        }
      }
    }
    free_per_block_[b] =
        static_cast<std::uint32_t>(bits_.count_clear(lo_bit, hi_bit));
  };

  WAFL_ASSERT_MSG(store_ != nullptr, "load_all without a backing store");
  // BlockStore reads mutate shared I/O counters, so the store walk itself is
  // serial; per-block summary recomputation dominates and parallelizes, but
  // with interleaved reads that is unsafe.  Parallelize only the summary
  // recount pass.
  if (pool == nullptr) {
    for (std::uint64_t b = 0; b < free_per_block_.size(); ++b) {
      load_block(static_cast<std::size_t>(b));
    }
  } else {
    for (std::uint64_t b = 0; b < free_per_block_.size(); ++b) {
      load_block(static_cast<std::size_t>(b));
    }
    // Recount summaries in parallel (idempotent over loaded bits).
    pool->parallel_for(0, free_per_block_.size(), [this](std::size_t b) {
      const std::uint64_t lo = b * kBitsPerBitmapBlock;
      const std::uint64_t hi = std::min<std::uint64_t>(
          lo + kBitsPerBitmapBlock, bits_.size());
      free_per_block_[b] =
          static_cast<std::uint32_t>(bits_.count_clear(lo, hi));
    });
  }
  total_free_ = 0;
  for (const std::uint32_t f : free_per_block_) total_free_ += f;
  begin_cp();
}

void BitmapMetafile::grow(std::uint64_t new_nbits) {
  WAFL_ASSERT(new_nbits >= bits_.size());
  const std::uint64_t old_nbits = bits_.size();
  bits_.grow(new_nbits);
  const std::uint64_t new_blocks =
      (new_nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock;
  // The previously-last block may have been partial; its free count gains
  // the bits the growth added to it.
  if (!free_per_block_.empty()) {
    const std::uint64_t last = free_per_block_.size() - 1;
    const std::uint64_t old_hi = old_nbits;
    const std::uint64_t last_hi =
        std::min<std::uint64_t>((last + 1) * kBitsPerBitmapBlock, new_nbits);
    if (last_hi > old_hi) {
      free_per_block_[last] += static_cast<std::uint32_t>(last_hi - old_hi);
      total_free_ += last_hi - old_hi;
      mark_dirty(last);
    }
  }
  for (std::uint64_t b = free_per_block_.size(); b < new_blocks; ++b) {
    const std::uint64_t lo = b * kBitsPerBitmapBlock;
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + kBitsPerBitmapBlock, new_nbits);
    free_per_block_.push_back(static_cast<std::uint32_t>(hi - lo));
    dirty_flag_.push_back(false);
    total_free_ += hi - lo;
  }
}

void BitmapMetafile::mark_dirty(std::uint64_t block) {
  if (!dirty_flag_[block]) {
    dirty_flag_[block] = true;
    dirty_list_.push_back(block);
  }
}

void BitmapMetafile::serialize_block(std::uint64_t block,
                                     std::span<std::byte> out) const {
  WAFL_ASSERT(out.size() == kBlockSize);
  const auto& words = bits_.words();
  const std::uint64_t first_word = block * kWordsPerBlock;
  const std::uint64_t have =
      first_word < words.size()
          ? std::min<std::uint64_t>(kWordsPerBlock, words.size() - first_word)
          : 0;
  if (have > 0) {
    std::memcpy(out.data(), words.data() + first_word, have * 8);
  }
  if (have < kWordsPerBlock) {
    std::memset(out.data() + have * 8, 0, (kWordsPerBlock - have) * 8);
  }
}

}  // namespace wafl
