#include "bitmap/bitmap_metafile.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "util/thread_pool.hpp"

namespace wafl {

namespace {
constexpr std::uint64_t kWordsPerBlock = kBitsPerBitmapBlock / 64;
}  // namespace

BitmapMetafile::BitmapMetafile(std::uint64_t nbits, BlockStore* store,
                               std::uint64_t store_base_block)
    : bits_(nbits),
      free_per_block_((nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock),
      total_free_(nbits),
      dirty_flag_(free_per_block_.size(), false),
      intake_claims_(free_per_block_.size()),
      store_(store),
      store_base_(store_base_block) {
  // All bits start clear (free); the last block may cover fewer bits.
  for (std::uint64_t b = 0; b < free_per_block_.size(); ++b) {
    const std::uint64_t lo = b * kBitsPerBitmapBlock;
    const std::uint64_t hi = std::min<std::uint64_t>(
        lo + kBitsPerBitmapBlock, nbits);
    free_per_block_[b] = static_cast<std::uint32_t>(hi - lo);
  }
}

void BitmapMetafile::set_allocated(Vbn v) {
  WAFL_ASSERT_MSG(!bits_.test(v), "double allocation");
  bits_.set(v);
  const std::uint64_t b = v / kBitsPerBitmapBlock;
  WAFL_ASSERT(free_per_block_[b] > 0);
  --free_per_block_[b];
  --total_free_;
  mark_dirty(b);
}

void BitmapMetafile::set_free(Vbn v) {
  WAFL_ASSERT_MSG(bits_.test(v), "freeing a free block");
  bits_.clear(v);
  const std::uint64_t b = v / kBitsPerBitmapBlock;
  ++free_per_block_[b];
  ++total_free_;
  mark_dirty(b);
}

void BitmapMetafile::account_frees(std::span<const Vbn> freed) {
  for (const Vbn v : freed) {
    WAFL_ASSERT_MSG(!bits_.test(v), "accounting an uncleared free");
    const std::uint64_t b = v / kBitsPerBitmapBlock;
    ++free_per_block_[b];
    ++total_free_;
    mark_dirty(b);
  }
}

BitmapMetafile::FreeDelta BitmapMetafile::clear_frees_batched(
    std::span<const Vbn> frees) {
  FreeDelta d;
  if (frees.empty()) return d;

  // Scatter pass: accumulate one mask per touched word in a dense scratch
  // spanning [w_lo, w_hi].  A CP's per-group free batch is dense within
  // the group's VBN range, so the scratch stays proportional to the group
  // (and zeroing it is a linear memset), not to the whole aggregate.
  std::uint64_t w_lo = frees.front() >> 6;
  std::uint64_t w_hi = w_lo;
  for (const Vbn v : frees) {
    WAFL_ASSERT(v < bits_.size());
    const std::uint64_t w = v >> 6;
    w_lo = std::min(w_lo, w);
    w_hi = std::max(w_hi, w);
  }
  std::vector<std::uint64_t> masks(w_hi - w_lo + 1, 0);
  for (const Vbn v : frees) {
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    std::uint64_t& mask = masks[(v >> 6) - w_lo];
    WAFL_ASSERT_MSG((mask & bit) == 0, "duplicate free in batch");
    mask |= bit;
  }

  // Apply pass, ascending: one RMW per touched word, one popcount per
  // word folded into the owning metafile block's freed count.
  std::uint64_t cur_block = (w_lo * 64) / kBitsPerBitmapBlock;
  std::uint32_t freed_in_block = 0;
  for (std::uint64_t w = w_lo; w <= w_hi; ++w) {
    const std::uint64_t mask = masks[w - w_lo];
    if (mask == 0) continue;
    const std::uint64_t b = (w * 64) / kBitsPerBitmapBlock;
    if (b != cur_block) {
      if (freed_in_block != 0) {
        d.per_block.emplace_back(cur_block, freed_in_block);
      }
      cur_block = b;
      freed_in_block = 0;
    }
    bits_.clear_word_mask(w, mask);
    freed_in_block += static_cast<std::uint32_t>(std::popcount(mask));
  }
  if (freed_in_block != 0) {
    d.per_block.emplace_back(cur_block, freed_in_block);
  }
  return d;
}

void BitmapMetafile::apply_free_deltas(const FreeDelta& d) {
  for (const auto& [b, n] : d.per_block) {
    free_per_block_[b] += n;
    total_free_ += n;
    mark_dirty(b);
  }
}

void BitmapMetafile::apply_alloc_deltas(const AllocDelta& d) {
  for (const auto& [b, n] : d.per_block) {
    WAFL_ASSERT(free_per_block_[b] >= n);
    free_per_block_[b] -= n;
    total_free_ -= n;
    mark_dirty(b);
  }
}

std::uint64_t BitmapMetafile::free_in_range(Vbn begin, Vbn end) const {
  WAFL_ASSERT(begin <= end && end <= bits_.size());
  // Whole metafile blocks come from the O(1)-per-block summary; only the
  // partial edge blocks (at most two) pay a popcount.
  const Vbn lo_block_end =
      std::min<Vbn>((begin / kBitsPerBitmapBlock + 1) * kBitsPerBitmapBlock,
                    end);
  if (begin % kBitsPerBitmapBlock != 0 || lo_block_end == end) {
    // Range starts mid-block (or lies inside one block entirely).
    if (lo_block_end == end) return bits_.count_clear(begin, end);
    std::uint64_t total = bits_.count_clear(begin, lo_block_end);
    return total + free_in_range(lo_block_end, end);
  }
  std::uint64_t total = 0;
  const std::uint64_t end_whole = end / kBitsPerBitmapBlock;
  for (std::uint64_t b = begin / kBitsPerBitmapBlock; b < end_whole; ++b) {
    total += free_per_block_[b];
  }
  if (end % kBitsPerBitmapBlock != 0) {
    total += bits_.count_clear(end_whole * kBitsPerBitmapBlock, end);
  }
  return total;
}

std::uint64_t BitmapMetafile::free_in_range_staged(
    Vbn begin, Vbn end, std::span<const std::uint32_t> staged,
    std::uint64_t staged_base) const {
  WAFL_ASSERT(begin <= end && end <= bits_.size());
  // Same shape as free_in_range(): popcount the (at most two) partial edge
  // blocks — the live bits already include staged allocations, so those
  // are exact — and adjust the summary of interior whole blocks by the
  // staged overlay.
  const Vbn lo_block_end =
      std::min<Vbn>((begin / kBitsPerBitmapBlock + 1) * kBitsPerBitmapBlock,
                    end);
  if (begin % kBitsPerBitmapBlock != 0 || lo_block_end == end) {
    if (lo_block_end == end) return bits_.count_clear(begin, end);
    std::uint64_t total = bits_.count_clear(begin, lo_block_end);
    return total + free_in_range_staged(lo_block_end, end, staged,
                                        staged_base);
  }
  std::uint64_t total = 0;
  const std::uint64_t end_whole = end / kBitsPerBitmapBlock;
  for (std::uint64_t b = begin / kBitsPerBitmapBlock; b < end_whole; ++b) {
    std::uint32_t free = free_per_block_[b];
    if (b >= staged_base && b - staged_base < staged.size()) {
      WAFL_ASSERT(free >= staged[b - staged_base]);
      free -= staged[b - staged_base];
    }
    total += free;
  }
  if (end % kBitsPerBitmapBlock != 0) {
    total += bits_.count_clear(end_whole * kBitsPerBitmapBlock, end);
  }
  return total;
}

void BitmapMetafile::begin_cp() {
  for (const std::uint64_t b : dirty_list_) {
    dirty_flag_[b] = false;
  }
  dirty_list_.clear();
}

std::uint64_t BitmapMetafile::flush() {
  const std::uint64_t flushed = dirty_list_.size();
  if (store_ != nullptr) {
    for (const std::uint64_t b : dirty_list_) {
      flush_block(b);
    }
  }
  begin_cp();
  return flushed;
}

void BitmapMetafile::flush_block(std::uint64_t b) const {
  WAFL_ASSERT(store_ != nullptr && b < free_per_block_.size());
  alignas(8) std::byte buf[kBlockSize];
  serialize_block(b, buf);
  store_->write(store_base_ + b, buf);
}

void BitmapMetafile::load_block(std::uint64_t b) {
  WAFL_ASSERT_MSG(store_ != nullptr, "load_block without a backing store");
  WAFL_ASSERT(b < free_per_block_.size());
  alignas(8) std::uint64_t words[kWordsPerBlock];
  store_->read(store_base_ + b,
               std::span(reinterpret_cast<std::byte*>(words), kBlockSize));
  const std::uint64_t first_word = b * kWordsPerBlock;
  const std::uint64_t have = std::min<std::uint64_t>(
      kWordsPerBlock, bits_.words().size() - first_word);
  bits_.store_words(first_word, std::span(words, have));
  const std::uint64_t lo_bit = b * kBitsPerBitmapBlock;
  const std::uint64_t hi_bit =
      std::min<std::uint64_t>(lo_bit + kBitsPerBitmapBlock, bits_.size());
  free_per_block_[b] =
      static_cast<std::uint32_t>(bits_.count_clear(lo_bit, hi_bit));
}

void BitmapMetafile::finish_load() {
  total_free_ = 0;
  for (const std::uint32_t f : free_per_block_) total_free_ += f;
  begin_cp();
}

void BitmapMetafile::load_all(ThreadPool* pool) {
  WAFL_ASSERT_MSG(store_ != nullptr, "load_all without a backing store");
  // One metafile block is one read, one word-level copy into the bit
  // vector, and one popcount for the summary.  Blocks touch disjoint word
  // ranges and the store allows disjoint-slot concurrent reads, so the
  // whole walk fans out per block (see load_block()).
  const std::uint64_t nblocks = free_per_block_.size();
  if (pool == nullptr || nblocks < 2) {
    for (std::uint64_t b = 0; b < nblocks; ++b) {
      load_block(b);
    }
  } else {
    pool->parallel_for_dynamic(
        0, static_cast<std::size_t>(nblocks), /*chunk=*/8,
        [this](std::size_t b) { load_block(b); });
  }
  finish_load();
}

void BitmapMetafile::grow(std::uint64_t new_nbits) {
  WAFL_ASSERT(new_nbits >= bits_.size());
  const std::uint64_t old_nbits = bits_.size();
  bits_.grow(new_nbits);
  const std::uint64_t new_blocks =
      (new_nbits + kBitsPerBitmapBlock - 1) / kBitsPerBitmapBlock;
  // The previously-last block may have been partial; its free count gains
  // the bits the growth added to it.
  if (!free_per_block_.empty()) {
    const std::uint64_t last = free_per_block_.size() - 1;
    const std::uint64_t old_hi = old_nbits;
    const std::uint64_t last_hi =
        std::min<std::uint64_t>((last + 1) * kBitsPerBitmapBlock, new_nbits);
    if (last_hi > old_hi) {
      free_per_block_[last] += static_cast<std::uint32_t>(last_hi - old_hi);
      total_free_ += last_hi - old_hi;
      mark_dirty(last);
    }
  }
  for (std::uint64_t b = free_per_block_.size(); b < new_blocks; ++b) {
    const std::uint64_t lo = b * kBitsPerBitmapBlock;
    const std::uint64_t hi =
        std::min<std::uint64_t>(lo + kBitsPerBitmapBlock, new_nbits);
    free_per_block_.push_back(static_cast<std::uint32_t>(hi - lo));
    dirty_flag_.push_back(false);
    total_free_ += hi - lo;
  }
  intake_claims_.grow(free_per_block_.size());
}

void BitmapMetafile::mark_dirty_intake(std::uint64_t block) {
  WAFL_ASSERT(block < free_per_block_.size());
  if (intake_claims_.try_claim(block)) {
    intake_list_.push(block);
  }
}

std::uint64_t BitmapMetafile::freeze_dirty_generation() {
  return intake_list_.consume_ordered([this](std::uint64_t b) {
    intake_claims_.clear(b);
    mark_dirty(b);
  });
}

void BitmapMetafile::mark_dirty(std::uint64_t block) {
  if (!dirty_flag_[block]) {
    dirty_flag_[block] = true;
    dirty_list_.push_back(block);
  }
}

void BitmapMetafile::serialize_block(std::uint64_t block,
                                     std::span<std::byte> out) const {
  WAFL_ASSERT(out.size() == kBlockSize);
  const auto& words = bits_.words();
  const std::uint64_t first_word = block * kWordsPerBlock;
  const std::uint64_t have =
      first_word < words.size()
          ? std::min<std::uint64_t>(kWordsPerBlock, words.size() - first_word)
          : 0;
  if (have > 0) {
    std::memcpy(out.data(), words.data() + first_word, have * 8);
  }
  if (have < kWordsPerBlock) {
    std::memset(out.data() + have * 8, 0, (kWordsPerBlock - have) * 8);
  }
}

}  // namespace wafl
