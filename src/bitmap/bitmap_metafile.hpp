// Bitmap metafile: the persistent free-space bitmap, structured as 4 KiB
// blocks of 32 Ki bits each (§2.5, §3.2.1).
//
// Beyond the raw bits, this class maintains exactly the bookkeeping the
// paper's machinery depends on:
//
//  - a per-metafile-block summary of free (clear) bits, which is what makes
//    a flat 32 Ki-VBN allocation area's score available in O(1) — the AA
//    boundary coincides with the metafile-block boundary by design;
//  - a dirty-block set for the current consistency point, so the CP can
//    flush only modified metafile blocks and so the CPU cost model can
//    charge per *distinct metafile block touched* (§2.5: colocating
//    allocations minimizes the number of metafile blocks consulted and
//    updated);
//  - flush/load against a BlockStore, which is how mount-time rebuild cost
//    (a linear walk of the bitmap metafiles, §3.4) is accounted.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "storage/block_store.hpp"
#include "util/atomic_bitmap.hpp"
#include "util/mpsc_log.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl {

class ThreadPool;

class BitmapMetafile {
 public:
  /// A metafile tracking `nbits` VBNs.  If `store` is non-null, flush()
  /// persists dirty blocks to it starting at `store_base_block`.
  BitmapMetafile(std::uint64_t nbits, BlockStore* store = nullptr,
                 std::uint64_t store_base_block = 0);

  std::uint64_t size_bits() const noexcept { return bits_.size(); }
  std::uint64_t metafile_blocks() const noexcept {
    return free_per_block_.size();
  }

  bool test(Vbn v) const noexcept { return bits_.test(v); }

  /// Marks VBN allocated.  Asserts the bit was free — a double allocation
  /// is a file-system bug, never a recoverable condition.
  void set_allocated(Vbn v);

  /// Marks VBN free.  Asserts the bit was allocated.
  void set_free(Vbn v);

  /// Clears the bit for `v` WITHOUT updating the free-count summary or
  /// the dirty set; the caller must pass the same VBNs to account_frees()
  /// before the next query or flush.  Splitting the two lets bit clears
  /// run concurrently for VBNs in disjoint 64-bit words (the per-RAID-
  /// group CP boundary — group ranges are multiples of kTetrisStripes, so
  /// they never share a word) while the shared summary stays serial.
  /// Asserts the bit was allocated.
  void clear_unaccounted(Vbn v) {
    WAFL_ASSERT_MSG(bits_.test(v), "freeing a free block");
    bits_.clear(v);
  }

  /// Serial companion to clear_unaccounted(): folds already-cleared VBNs
  /// into the per-block free counts, the total, and the dirty set.
  /// Per-bit reference path; the CP boundary uses the word-batched pair
  /// below (the fuzz suite holds the two equivalent).
  void account_frees(std::span<const Vbn> freed);

  /// Allocation mirror of clear_unaccounted(): sets the bit for `v`
  /// WITHOUT updating the free-count summary or the dirty set; the caller
  /// must fold the same VBNs in via apply_alloc_deltas() before the next
  /// summary query or flush.  Same word-disjointness contract as the free
  /// side: concurrent callers are safe when their VBNs never share a
  /// 64-bit word, which per-RAID-group ownership guarantees.  Asserts the
  /// bit was free.
  void set_allocated_unaccounted(Vbn v) {
    WAFL_ASSERT_MSG(!bits_.test(v), "allocating an allocated block");
    bits_.set(v);
  }

  /// Per-metafile-block allocated counts staged by a set_allocated_
  /// unaccounted() caller, for the serial summary merge in
  /// apply_alloc_deltas().
  struct AllocDelta {
    /// (metafile block, allocated count), ascending by block.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> per_block;
  };

  /// Serial companion to set_allocated_unaccounted(): folds a staged
  /// allocation delta into the per-block free counts, the total, and the
  /// dirty set.  Equivalent to having called set_allocated() per VBN.
  void apply_alloc_deltas(const AllocDelta& d);

  /// Per-metafile-block freed counts produced by clear_frees_batched(),
  /// for the serial summary merge in apply_free_deltas().
  struct FreeDelta {
    /// (metafile block, freed count), ascending by block.
    std::vector<std::pair<std::uint64_t, std::uint32_t>> per_block;
  };

  /// Word-batched companion to clear_unaccounted(): clears the bits of
  /// `frees` (any order, no duplicates, all currently set — asserted)
  /// one 64-bit mask per touched word, and returns the per-block freed
  /// counts (ascending by block) for apply_free_deltas().  Internally a
  /// scatter pass accumulates masks in a dense scratch over the span's
  /// word range, then one ascending walk applies them — no sort, so a
  /// CP's deferral-order free list feeds straight in.  Touches only the
  /// bit words `frees` covers: concurrent calls are safe when the
  /// callers' VBNs live in disjoint words, which the per-RAID-group CP
  /// boundary guarantees (group ranges are multiples of kTetrisStripes,
  /// so they never share a word).
  FreeDelta clear_frees_batched(std::span<const Vbn> frees);

  /// Serial companion: folds a clear_frees_batched() delta into the
  /// per-block free counts, the total, and the dirty set.  Equivalent to
  /// account_frees() over the same VBNs.
  void apply_free_deltas(const FreeDelta& d);

  /// Free (clear) bits in [begin, end); interior whole metafile blocks
  /// are answered from the summary, only the two partial edge blocks (if
  /// any) by popcount — O(blocks) whatever the alignment.
  std::uint64_t free_in_range(Vbn begin, Vbn end) const;

  /// free_in_range() while set_allocated_unaccounted() allocations are
  /// staged: the live bits already reflect them but the summary does not,
  /// so partial edge blocks (answered by popcount) are correct as-is and
  /// interior whole blocks subtract the caller's staged-count overlay.
  /// `staged[b - staged_base]` is the number of staged (bit-set,
  /// unaccounted) allocations in metafile block `b`; blocks outside the
  /// overlay are assumed to have none.
  std::uint64_t free_in_range_staged(Vbn begin, Vbn end,
                                     std::span<const std::uint32_t> staged,
                                     std::uint64_t staged_base) const;

  /// Free bits within metafile block `b` — the O(1) summary lookup.
  std::uint32_t block_free_count(std::uint64_t b) const {
    WAFL_ASSERT(b < free_per_block_.size());
    return free_per_block_[b];
  }

  std::uint64_t total_free() const noexcept { return total_free_; }

  /// First free VBN at or after `begin`, below `end`; `end` if none.
  Vbn find_free(Vbn begin, Vbn end) const {
    return bits_.find_first_clear(begin, end);
  }

  const Bitmap& bits() const noexcept { return bits_; }

  // --- Consistency-point bookkeeping -------------------------------------

  /// Distinct metafile blocks modified since the last begin_cp().
  std::uint64_t dirty_blocks() const noexcept { return dirty_list_.size(); }

  /// The dirty set itself (distinct blocks, dirtying order), for a
  /// caller-partitioned parallel flush: partition this list, flush_block()
  /// each entry exactly once, then begin_cp().  Invalidated by any
  /// mutation of the metafile.
  std::span<const std::uint64_t> dirty_list() const noexcept {
    return dirty_list_;
  }

  /// Starts a fresh CP interval: clears the dirty set (without flushing).
  void begin_cp();

  // --- Generation split (overlapped CPs, DESIGN.md §13) -------------------

  /// Records that `block` was modified by *intake* — the active
  /// generation — without entering it into the main (frozen) dirty set
  /// an in-flight CP may be partitioning for flush.  Idempotent per
  /// generation, and thread-safe: concurrent intake threads race a CAS
  /// word claim and exactly one appends the block to the staging list
  /// (DESIGN.md §14).
  void mark_dirty_intake(std::uint64_t block);

  /// Blocks dirtied by intake and not yet folded by
  /// freeze_dirty_generation().
  std::uint64_t intake_dirty_blocks() const noexcept {
    return intake_list_.size();
  }

  /// Generation swap at CP freeze: folds the intake dirty set into the
  /// main dirty set (dirtying order preserved, duplicates collapse) and
  /// leaves the intake set empty.  Returns the number of blocks folded.
  /// Requires intake quiesced (same contract as the rest of the freeze).
  std::uint64_t freeze_dirty_generation();

  /// Writes every dirty metafile block to the backing store (if any) and
  /// clears the dirty set.  Returns the number of blocks written.
  std::uint64_t flush();

  /// Serializes and writes one metafile block to the backing store
  /// without touching the dirty set.  Reads only immutable-during-flush
  /// state, so distinct blocks may flush concurrently (each store block
  /// has exactly one writer — the single-writer-per-slot contract).
  void flush_block(std::uint64_t b) const;

  // --- Mount-time load ----------------------------------------------------

  /// Reads every metafile block from the backing store, rebuilding bits and
  /// summary.  This is the "linear walk of the bitmap metafiles" mount path
  /// (§3.4).  Each block is one word-level copy plus a popcount; with a
  /// pool the whole walk (read + copy + recount) fans out per block, which
  /// the concurrent-safe BlockStore makes sound.
  void load_all(ThreadPool* pool = nullptr);

  /// One step of load_all(): reads metafile block `b` from the backing
  /// store, installing its bit words and per-block free summary.  Blocks
  /// touch disjoint word ranges (kBitsPerBitmapBlock is a multiple of
  /// 64) and the store allows disjoint-slot concurrent reads, so
  /// distinct blocks may load concurrently from any threads.  The
  /// caller must load every block exactly once and then call
  /// finish_load() — this is the entry point the pipelined mount scan
  /// uses to interleave its own seeding with the walk.
  void load_block(std::uint64_t b);

  /// Serial epilogue to a caller-driven load_block() walk: recomputes
  /// the free total from the per-block summaries and starts a fresh CP
  /// interval (exactly what load_all() does after its own walk).
  void finish_load();

  /// Extends the tracked VBN space (RAID-group growth, §3.1).  New bits
  /// are free; new metafile blocks start clean.
  void grow(std::uint64_t new_nbits);

 private:
  void mark_dirty(std::uint64_t block);
  void serialize_block(std::uint64_t block,
                       std::span<std::byte> out) const;

  Bitmap bits_;
  std::vector<std::uint32_t> free_per_block_;
  std::uint64_t total_free_;

  std::vector<bool> dirty_flag_;
  std::vector<std::uint64_t> dirty_list_;
  /// Intake staging: one claim bit per metafile block (CAS-claimed, so
  /// racing intake threads dedupe without a lock) plus the claim winners
  /// in claim order.
  AtomicClaimBitmap intake_claims_;
  MpscLog<std::uint64_t> intake_list_;

  BlockStore* store_;
  std::uint64_t store_base_;
};

}  // namespace wafl
