// Activemap: allocation semantics over a bitmap metafile, with the
// delayed-free batching the paper's CP machinery relies on (§3.3: score
// updates from frees and allocations "are delayed and performed efficiently
// in batched fashion at the CP boundary").
//
// Allocations take effect immediately — they are performed by the CP itself
// while assigning VBNs.  Frees are deferred: client overwrites and deletes
// queue the old VBN, and the whole batch is applied once per CP, which both
// amortizes metafile-block touches and produces the per-AA score deltas in
// one pass.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitmap_metafile.hpp"
#include "util/types.hpp"

namespace wafl {

class Activemap {
 public:
  Activemap(std::uint64_t nbits, BlockStore* store = nullptr,
            std::uint64_t store_base_block = 0)
      : map_(nbits, store, store_base_block) {}

  /// Marks `v` in use.  Immediate; asserts `v` was free.
  void allocate(Vbn v) { map_.set_allocated(v); }

  /// Allocation half of the split-accounting pair: sets the bit only; the
  /// caller folds the counts in later via metafile().apply_alloc_deltas().
  /// Safe concurrently for word-disjoint VBNs (per-RAID-group execute
  /// lists qualify — group ranges are multiples of kTetrisStripes).
  void allocate_unaccounted(Vbn v) { map_.set_allocated_unaccounted(v); }

  bool is_allocated(Vbn v) const noexcept { return map_.test(v); }

  /// Queues `v` to be freed at the next CP boundary.  The bit stays set
  /// until the batch is applied, so the block cannot be re-allocated within
  /// the same CP — exactly WAFL's COW safety rule (a freed block's old
  /// contents must survive until the CP that frees it commits).
  void defer_free(Vbn v) {
    WAFL_ASSERT_MSG(map_.test(v), "deferring free of a free block");
    deferred_frees_.push_back(v);
  }

  /// Applies every queued free in one batch and hands the caller the list
  /// (still valid until the next defer_free) so it can derive AA score
  /// deltas.  Returns the number of blocks freed.
  std::uint64_t apply_deferred_frees() {
    for (const Vbn v : deferred_frees_) {
      map_.set_free(v);
    }
    const std::uint64_t n = deferred_frees_.size();
    applied_frees_.swap(deferred_frees_);
    deferred_frees_.clear();
    return n;
  }

  /// Takes the whole deferred batch WITHOUT touching the bitmap: the
  /// caller applies the bit clears itself — partitioned by RAID group and
  /// possibly concurrent, via metafile().clear_unaccounted() — and then
  /// settles the shared free-count/dirty accounting serially with
  /// metafile().account_frees().  The returned span is what
  /// last_applied_frees() reports, and stays valid until the next
  /// defer_free().
  std::span<const Vbn> take_deferred_frees() {
    applied_frees_.swap(deferred_frees_);
    deferred_frees_.clear();
    return applied_frees_;
  }

  /// Frees applied by the last apply_deferred_frees() (or handed out by
  /// the last take_deferred_frees()) call.
  std::span<const Vbn> last_applied_frees() const noexcept {
    return applied_frees_;
  }

  std::uint64_t pending_frees() const noexcept {
    return deferred_frees_.size();
  }

  std::uint64_t total_free() const noexcept { return map_.total_free(); }
  std::uint64_t size_blocks() const noexcept { return map_.size_bits(); }

  /// Extends the tracked VBN space (§3.1 growth); new blocks are free.
  void grow(std::uint64_t new_nbits) { map_.grow(new_nbits); }

  BitmapMetafile& metafile() noexcept { return map_; }
  const BitmapMetafile& metafile() const noexcept { return map_; }

 private:
  BitmapMetafile map_;
  std::vector<Vbn> deferred_frees_;
  std::vector<Vbn> applied_frees_;
};

}  // namespace wafl
