// Advanced zone checksums (AZCS) layout (§3.2.4).
//
// On devices whose sector size aligns exactly to 4 KiB there is no spare
// room for WAFL's 64-byte per-block identifier, so 63 consecutive data
// blocks share the 64th block of their region as a checksum block.
//
// AzcsDevice decorates a raw DeviceModel:
//
//  - file-system dbns ("data dbns") are remapped past the checksum slots,
//    so the decorated device exposes 63/64 of the raw capacity;
//  - a region completed within the write stream gets its checksum block
//    appended in place — a purely sequential continuation;
//  - a region left incomplete keeps its checksum block buffered (WAFL
//    holds the dirty checksum buffer) for as long as the write stream
//    continues contiguously.  The moment the stream jumps elsewhere — an
//    allocation-area switch whose boundary cuts through a region, Figure
//    4 (B) — the buffered checksum block must be written out, and when the
//    region's remainder is filled later the checksum block is written
//    AGAIN, this time behind the SMR zone's high-water mark where it costs
//    an out-of-place update.  AA sizes aligned to the 63-data-block period
//    (Figure 4 (C)) never split a region across AAs, so neither write
//    happens.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "device/device.hpp"
#include "util/units.hpp"

namespace wafl {

class AzcsDevice final : public DeviceModel {
 public:
  /// Takes ownership of the raw device.  Exposed capacity is the raw
  /// capacity times 63/64 (rounded down to whole regions).
  explicit AzcsDevice(std::unique_ptr<DeviceModel> raw);

  MediaType media_type() const noexcept override {
    return raw_->media_type();
  }
  std::uint64_t capacity_blocks() const noexcept override {
    return data_capacity_;
  }

  using DeviceModel::write_batch;
  SimTime write_batch(std::span<const WriteRun> runs,
                      std::uint64_t read_blocks) override;
  SimTime read_random(std::uint64_t blocks) override;
  void invalidate(Dbn dbn) override;
  double write_amplification() const noexcept override {
    return raw_->write_amplification();
  }
  void reset_wear_window() override { raw_->reset_wear_window(); }

  /// Physical (raw-device) dbn that stores data dbn `d`.
  Dbn data_to_physical(Dbn d) const noexcept {
    const std::uint64_t region = d / kAzcsDataBlocksPerRegion;
    const std::uint64_t off = d % kAzcsDataBlocksPerRegion;
    return region * kAzcsRegionBlocks + off;
  }

  /// Physical dbn of the checksum block protecting data dbn `d`.
  Dbn checksum_block_of_data(Dbn d) const noexcept {
    return checksum_block_of_region(d / kAzcsDataBlocksPerRegion);
  }
  Dbn checksum_block_of_region(std::uint64_t region) const noexcept {
    return region * kAzcsRegionBlocks + kAzcsDataBlocksPerRegion;
  }

  // --- Introspection -------------------------------------------------------
  /// Total checksum-block writes issued to the raw device.
  std::uint64_t checksum_writes() const noexcept { return checksum_writes_; }
  /// Checksum blocks written EARLY because the stream jumped away from an
  /// incomplete region (the Figure 4 (B) cost trigger).
  std::uint64_t checksum_flushes() const noexcept {
    return checksum_flushes_;
  }
  /// Checksum blocks written more than once for one region fill.
  std::uint64_t checksum_rewrites() const noexcept {
    return checksum_rewrites_;
  }
  bool has_pending_region() const noexcept { return pending_region_ >= 0; }

  DeviceModel& raw() noexcept { return *raw_; }

 private:
  /// Appends the pending region's checksum-block write to `physical` (or
  /// submits it directly when called outside a batch).
  void flush_pending(std::vector<WriteRun>* physical);

  void note_checksum_write(std::uint64_t region);

  std::unique_ptr<DeviceModel> raw_;
  std::uint64_t data_capacity_;
  /// True once a region's checksum block has been written at least once
  /// since the region last became empty.
  std::vector<bool> checksum_written_;
  /// Distinct data blocks holding data, per region (detects completion).
  /// In-place rewrites (RAID parity blocks) do not re-count.
  std::vector<std::uint16_t> region_fill_;
  /// Which data dbns are counted in region_fill_.
  Bitmap counted_;

  /// Region whose checksum buffer is dirty but unwritten (-1: none).
  std::int64_t pending_region_ = -1;
  /// Physical dbn the contiguous stream would continue at.
  Dbn expected_next_phys_ = 0;
  bool stream_open_ = false;

  std::uint64_t checksum_writes_ = 0;
  std::uint64_t checksum_flushes_ = 0;
  std::uint64_t checksum_rewrites_ = 0;
};

}  // namespace wafl
