// Storage device model interface.
//
// Device models are *mechanistic* simulators, not fitted curves: each model
// maintains the internal state the corresponding media really has (seek
// position for HDDs, a flash translation layer for SSDs, shingle-zone write
// pointers for SMR) and derives service time from the work that state
// implies.  This is what lets AA sizing/selection change measured
// performance the same way it does on real media (paper §3.2, §4).
//
// The unit of submission is a batch of write runs — the per-device side of
// one tetris — plus any parity-computation reads charged to this device.
// Time is returned in nanoseconds of device busy time; the simulation layer
// owns queueing.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "raid/tetris.hpp"
#include "util/types.hpp"

namespace wafl {

enum class MediaType {
  kHdd,
  kSsd,
  kSmr,
  kObjectStore,
};

/// Converts a MediaType to a short human-readable name.
const char* media_type_name(MediaType t) noexcept;

class DeviceModel {
 public:
  virtual ~DeviceModel() = default;

  virtual MediaType media_type() const noexcept = 0;

  /// Capacity of the device in 4 KiB blocks.
  virtual std::uint64_t capacity_blocks() const noexcept = 0;

  /// Services a batch of write runs plus `read_blocks` parity reads; returns
  /// the device busy time in nanoseconds.
  virtual SimTime write_batch(std::span<const WriteRun> runs,
                              std::uint64_t read_blocks) = 0;

  /// Convenience overload for literal batches:
  /// `dev.write_batch({{0, 64}, {128, 8}})`.
  SimTime write_batch(std::initializer_list<WriteRun> runs,
                      std::uint64_t read_blocks = 0) {
    return write_batch(
        std::span<const WriteRun>(runs.begin(), runs.size()), read_blocks);
  }

  /// Services `blocks` random single-block reads (client read path); returns
  /// busy time in nanoseconds.
  virtual SimTime read_random(std::uint64_t blocks) = 0;

  /// Hint that a block's contents are dead (file-system free).  Media with
  /// a translation layer use this to invalidate the mapped physical block,
  /// like an ATA TRIM / SCSI UNMAP.  Default: ignored.
  virtual void invalidate(Dbn dbn);

  /// Ratio of media-level block writes to host block writes since the last
  /// reset_wear_window().  1.0 for media without a translation layer.
  virtual double write_amplification() const noexcept;

  /// Resets the measurement window used by write_amplification().
  virtual void reset_wear_window();
};

}  // namespace wafl
