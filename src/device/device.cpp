#include "device/device.hpp"

namespace wafl {

const char* media_type_name(MediaType t) noexcept {
  switch (t) {
    case MediaType::kHdd:
      return "HDD";
    case MediaType::kSsd:
      return "SSD";
    case MediaType::kSmr:
      return "SMR";
    case MediaType::kObjectStore:
      return "ObjectStore";
  }
  return "unknown";
}

void DeviceModel::invalidate(Dbn /*dbn*/) {}

double DeviceModel::write_amplification() const noexcept { return 1.0; }

void DeviceModel::reset_wear_window() {}

}  // namespace wafl
