#include "device/smr.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wafl {

SmrModel::SmrModel(std::uint64_t capacity_blocks, SmrParams params)
    : capacity_(capacity_blocks),
      params_(params),
      zone_high_((capacity_blocks + params.zone_blocks - 1) /
                     params.zone_blocks,
                 0) {
  WAFL_ASSERT(capacity_blocks > 0);
  WAFL_ASSERT(params_.zone_blocks > 0);
  WAFL_ASSERT(params_.cleaning_write_factor >= 1);
}

SimTime SmrModel::write_batch(std::span<const WriteRun> runs,
                              std::uint64_t read_blocks) {
  SimTime total = 0;
  for (const WriteRun& run : runs) {
    WAFL_ASSERT(run.start + run.length <= capacity_);
    if (run.start != head_) {
      total += params_.seek_ns;
      ++seeks_;
    }

    // A run may span zones; process zone by zone.
    Dbn pos = run.start;
    std::uint32_t remaining = run.length;
    while (remaining > 0) {
      const std::uint64_t zone = pos / params_.zone_blocks;
      const std::uint64_t zone_base = zone * params_.zone_blocks;
      const std::uint64_t zone_end = zone_base + params_.zone_blocks;
      const auto span = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, zone_end - pos));
      const std::uint64_t off = pos - zone_base;
      std::uint64_t& high = zone_high_[zone];

      if (off < high) {
        // Behind the shingle high-water mark: the drive absorbs the write
        // out of place (media cache) and pays for the eventual cleaning
        // fold as amortized extra media writes.
        const std::uint64_t overlap =
            std::min<std::uint64_t>(span, high - off);
        ++oop_events_;
        oop_blocks_ += overlap;
        window_cleaning_ +=
            overlap * (params_.cleaning_write_factor - 1);
        total += overlap * params_.block_transfer_ns *
                 params_.cleaning_write_factor;
        // Any tail of the span beyond the old high mark is a plain append.
        const std::uint64_t tail = span - overlap;
        total += tail * params_.block_transfer_ns;
        high = std::max<std::uint64_t>(high, off + span);
        window_host_ += span;
      } else {
        high = off + span;
        total += static_cast<SimTime>(span) * params_.block_transfer_ns;
        window_host_ += span;
      }
      pos += span;
      remaining -= span;
    }
    head_ = run.start + run.length;
  }
  // Parity reads (if this disk sits in a RAID group): near-position reads.
  total += read_blocks * (params_.block_transfer_ns + params_.seek_ns / 8);
  return total;
}

SimTime SmrModel::read_random(std::uint64_t blocks) {
  return blocks * (params_.seek_ns + params_.block_transfer_ns);
}

double SmrModel::write_amplification() const noexcept {
  if (window_host_ == 0) return 1.0;
  return static_cast<double>(window_host_ + window_cleaning_) /
         static_cast<double>(window_host_);
}

void SmrModel::reset_wear_window() {
  window_host_ = 0;
  window_cleaning_ = 0;
}

}  // namespace wafl
