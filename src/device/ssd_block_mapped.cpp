#include "device/ssd_block_mapped.hpp"

#include "util/assert.hpp"

namespace wafl {

BlockMappedSsdModel::BlockMappedSsdModel(std::uint64_t capacity_blocks,
                                         SsdParams params)
    : capacity_(capacity_blocks),
      params_(params),
      groups_((capacity_blocks + params.pages_per_erase_block - 1) /
              params.pages_per_erase_block),
      valid_(capacity_blocks),
      written_(capacity_blocks),
      materialized_(groups_, false) {
  WAFL_ASSERT(capacity_blocks > 0);
  WAFL_ASSERT(params_.pages_per_erase_block > 0);
}

void BlockMappedSsdModel::close_open_group() {
  if (open_group_ < 0) return;
  const auto g = static_cast<std::uint64_t>(open_group_);
  const std::uint64_t lo = group_base(g);
  const std::uint64_t hi =
      std::min<std::uint64_t>(lo + params_.pages_per_erase_block, capacity_);

  // Live blocks of the group that the stream did not rewrite must move
  // into the replacement block before the old block can be erased.
  std::uint64_t relocated = 0;
  for (std::uint64_t b = valid_.find_first_set(lo, hi); b < hi;
       b = valid_.find_first_set(b + 1, hi)) {
    if (!written_.test(b)) {
      ++relocated;
    }
  }
  const bool had_block = materialized_[g];
  merge_programs_ += relocated;
  merge_reads_ += relocated;
  window_merge_ += relocated;
  ++merges_;
  if (had_block) {
    ++erases_;  // the group's previous physical block is reclaimed
  }
  materialized_[g] = true;

  pending_merge_time_ += relocated * (params_.program_ns + params_.read_ns) +
                         (had_block ? params_.erase_ns : 0);

  // Clear the written mask for the group.
  for (std::uint64_t b = written_.find_first_set(lo, hi); b < hi;
       b = written_.find_first_set(b + 1, hi)) {
    written_.clear(b);
  }
  open_group_ = -1;
  open_written_ = 0;
}

SimTime BlockMappedSsdModel::write_batch(std::span<const WriteRun> runs,
                                         std::uint64_t read_blocks) {
  pending_merge_time_ = 0;
  std::uint64_t programs = 0;

  for (const WriteRun& run : runs) {
    WAFL_ASSERT(run.start + run.length <= capacity_);
    Dbn pos = run.start;
    std::uint32_t remaining = run.length;
    while (remaining > 0) {
      const std::uint64_t g = pos / params_.pages_per_erase_block;
      if (open_group_ >= 0 && open_group_ != static_cast<std::int64_t>(g)) {
        close_open_group();
      }
      open_group_ = static_cast<std::int64_t>(g);

      const std::uint64_t group_end =
          std::min<std::uint64_t>(group_base(g + 1), capacity_);
      const auto span = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(remaining, group_end - pos));
      for (std::uint32_t i = 0; i < span; ++i) {
        const Dbn b = pos + i;
        if (!written_.test(b)) {
          written_.set(b);
          ++open_written_;
        }
        if (!valid_.test(b)) {
          valid_.set(b);
        }
        ++programs;
      }
      pos += span;
      remaining -= span;
      // A completely rewritten group needs no merge; close it so the next
      // visit starts a fresh replacement cycle.
      if (open_written_ == group_end - group_base(g)) {
        close_open_group();
      }
    }
  }

  host_programs_ += programs;
  window_host_ += programs;
  return programs * params_.program_ns + read_blocks * params_.read_ns +
         pending_merge_time_;
}

SimTime BlockMappedSsdModel::read_random(std::uint64_t blocks) {
  return blocks * params_.read_ns;
}

void BlockMappedSsdModel::invalidate(Dbn dbn) {
  WAFL_ASSERT(dbn < capacity_);
  if (valid_.test(dbn)) {
    valid_.clear(dbn);
  }
  // A freed block written into the still-open replacement needs no merge
  // relocation; clearing valid above already guarantees that.
}

double BlockMappedSsdModel::write_amplification() const noexcept {
  if (window_host_ == 0) return 1.0;
  return static_cast<double>(window_host_ + window_merge_) /
         static_cast<double>(window_host_);
}

void BlockMappedSsdModel::reset_wear_window() {
  window_host_ = 0;
  window_merge_ = 0;
}

}  // namespace wafl
