#include "device/ssd.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace wafl {

SsdModel::SsdModel(std::uint64_t capacity_blocks, SsdParams params)
    : capacity_(capacity_blocks), params_(params) {
  WAFL_ASSERT(capacity_blocks > 0);
  WAFL_ASSERT(params_.op_fraction > 0.0);
  WAFL_ASSERT(capacity_blocks <= 0xFFFF0000u);  // 32-bit page addressing

  const auto physical = static_cast<std::uint64_t>(
      static_cast<double>(capacity_blocks) * (1.0 + params_.op_fraction));
  // Round physical capacity up to whole erase blocks, keeping at least the
  // GC reserve above logical capacity.
  const std::uint32_t ebs = std::max<std::uint32_t>(
      static_cast<std::uint32_t>((physical + params_.pages_per_erase_block -
                                  1) /
                                 params_.pages_per_erase_block),
      static_cast<std::uint32_t>(capacity_blocks /
                                 params_.pages_per_erase_block) +
          params_.gc_reserve_blocks + 2);

  l2p_.assign(capacity_blocks, kUnmapped);
  p2l_.assign(static_cast<std::size_t>(ebs) * params_.pages_per_erase_block,
              kUnmapped);
  valid_count_.assign(ebs, 0);
  is_free_eb_.assign(ebs, true);
  free_ebs_.reserve(ebs);
  // Keep free list ordered so erase block 0 opens first (determinism).
  for (std::uint32_t eb = ebs; eb-- > 0;) {
    free_ebs_.push_back(eb);
  }
  open_eb_ = free_ebs_.back();
  free_ebs_.pop_back();
  is_free_eb_[open_eb_] = false;
  open_fill_ = 0;
}

void SsdModel::unmap_page(std::uint32_t ppn) {
  const std::uint32_t lbn = p2l_[ppn];
  WAFL_ASSERT(lbn != kUnmapped);
  p2l_[ppn] = kUnmapped;
  l2p_[lbn] = kUnmapped;
  const std::uint32_t eb = ppn / params_.pages_per_erase_block;
  WAFL_ASSERT(valid_count_[eb] > 0);
  --valid_count_[eb];
  --mapped_pages_;
}

std::uint32_t SsdModel::take_page() {
  if (open_fill_ == params_.pages_per_erase_block) {
    // Open a fresh erase block; GC keeps the free list stocked.  Near the
    // write cliff one collection may not net a whole block (the victim's
    // valid pages consume most of the reclaimed space), so collect until
    // the reserve is restored — over-provisioning guarantees progress.
    // While GC itself is relocating pages it draws from the reserve
    // instead of recursing.
    if (!gc_active_) {
      while (free_ebs_.size() <= params_.gc_reserve_blocks) {
        garbage_collect();
      }
    }
    WAFL_ASSERT_MSG(!free_ebs_.empty(), "FTL out of free erase blocks");
    open_eb_ = free_ebs_.back();
    free_ebs_.pop_back();
    is_free_eb_[open_eb_] = false;
    open_fill_ = 0;
  }
  const std::uint32_t ppn =
      open_eb_ * params_.pages_per_erase_block + open_fill_;
  ++open_fill_;
  return ppn;
}

void SsdModel::program(std::uint32_t lbn, bool is_gc) {
  const std::uint32_t ppn = take_page();
  WAFL_ASSERT(p2l_[ppn] == kUnmapped);
  p2l_[ppn] = lbn;
  l2p_[lbn] = ppn;
  ++valid_count_[ppn / params_.pages_per_erase_block];
  ++mapped_pages_;
  if (is_gc) {
    ++gc_programs_;
    ++window_gc_;
  } else {
    ++host_programs_;
    ++window_host_;
  }
}

void SsdModel::garbage_collect() {
  // Greedy victim selection: the full erase block with the fewest valid
  // pages costs the fewest relocations (§3.2.2's FTL behaviour).
  std::uint32_t victim = kUnmapped;
  std::uint32_t best_valid = params_.pages_per_erase_block + 1;
  for (std::uint32_t eb = 0;
       eb < static_cast<std::uint32_t>(valid_count_.size()); ++eb) {
    if (eb == open_eb_ || is_free_eb_[eb]) continue;
    if (valid_count_[eb] < best_valid) {
      best_valid = valid_count_[eb];
      victim = eb;
      if (best_valid == 0) break;
    }
  }
  WAFL_ASSERT_MSG(victim != kUnmapped, "GC found no victim");
  WAFL_ASSERT(!gc_active_);
  gc_active_ = true;

  // Relocate the victim's valid pages into the open block.
  const std::uint64_t reads0 = gc_reads_;
  const std::uint32_t base = victim * params_.pages_per_erase_block;
  for (std::uint32_t i = 0; i < params_.pages_per_erase_block; ++i) {
    const std::uint32_t lbn = p2l_[base + i];
    if (lbn == kUnmapped) continue;
    ++gc_reads_;
    unmap_page(base + i);
    program(lbn, /*is_gc=*/true);
  }
  WAFL_ASSERT(valid_count_[victim] == 0);
  ++erases_;
  is_free_eb_[victim] = true;
  free_ebs_.insert(free_ebs_.begin(), victim);  // FIFO reuse for even wear
  gc_active_ = false;

  WAFL_OBS({
    obs::Registry& reg = obs::registry();
    static obs::Counter& collections =
        reg.counter("wafl.ssd.gc_collections");
    static obs::Counter& relocated =
        reg.counter("wafl.ssd.gc_relocated_pages");
    static obs::Counter& erases = reg.counter("wafl.ssd.erases");
    collections.inc();
    relocated.add(gc_reads_ - reads0);
    erases.inc();
    obs::trace().emit(obs::EventType::kSsdGc, 0, gc_reads_ - reads0, erases_);
  });
}

SimTime SsdModel::write_batch(std::span<const WriteRun> runs,
                              std::uint64_t read_blocks) {
  const std::uint64_t host0 = host_programs_;
  const std::uint64_t gc0 = gc_programs_;
  const std::uint64_t reads0 = gc_reads_;
  const std::uint64_t erases0 = erases_;

  for (const WriteRun& run : runs) {
    WAFL_ASSERT(run.start + run.length <= capacity_);
    for (std::uint32_t i = 0; i < run.length; ++i) {
      const auto lbn = static_cast<std::uint32_t>(run.start + i);
      if (l2p_[lbn] != kUnmapped) {
        unmap_page(l2p_[lbn]);
      }
      program(lbn, /*is_gc=*/false);
    }
  }

  const std::uint64_t programs =
      (host_programs_ - host0) + (gc_programs_ - gc0);
  const std::uint64_t reads = (gc_reads_ - reads0) + read_blocks;
  return programs * params_.program_ns + reads * params_.read_ns +
         (erases_ - erases0) * params_.erase_ns;
}

SimTime SsdModel::read_random(std::uint64_t blocks) {
  return blocks * params_.read_ns;
}

void SsdModel::invalidate(Dbn dbn) {
  WAFL_ASSERT(dbn < capacity_);
  const std::uint32_t ppn = l2p_[static_cast<std::size_t>(dbn)];
  if (ppn != kUnmapped) {
    unmap_page(ppn);
  }
}

double SsdModel::write_amplification() const noexcept {
  if (window_host_ == 0) return 1.0;
  return static_cast<double>(window_host_ + window_gc_) /
         static_cast<double>(window_host_);
}

void SsdModel::reset_wear_window() {
  window_host_ = 0;
  window_gc_ = 0;
}

}  // namespace wafl
