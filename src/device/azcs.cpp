#include "device/azcs.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wafl {

AzcsDevice::AzcsDevice(std::unique_ptr<DeviceModel> raw)
    : raw_(std::move(raw)),
      data_capacity_(raw_->capacity_blocks() / kAzcsRegionBlocks *
                     kAzcsDataBlocksPerRegion),
      counted_(data_capacity_) {
  WAFL_ASSERT(raw_ != nullptr);
  const std::uint64_t regions = raw_->capacity_blocks() / kAzcsRegionBlocks;
  checksum_written_.assign(regions, false);
  region_fill_.assign(regions, 0);
}

void AzcsDevice::note_checksum_write(std::uint64_t region) {
  ++checksum_writes_;
  if (checksum_written_[region]) {
    ++checksum_rewrites_;
  }
  checksum_written_[region] = true;
}

void AzcsDevice::flush_pending(std::vector<WriteRun>* physical) {
  if (pending_region_ < 0) return;
  const auto region = static_cast<std::uint64_t>(pending_region_);
  pending_region_ = -1;
  const Dbn csum = checksum_block_of_region(region);
  note_checksum_write(region);
  ++checksum_flushes_;
  if (physical != nullptr) {
    physical->push_back({csum, 1});
  } else {
    const WriteRun run{csum, 1};
    raw_->write_batch(std::span<const WriteRun>(&run, 1), 0);
  }
}

SimTime AzcsDevice::write_batch(std::span<const WriteRun> runs,
                                std::uint64_t read_blocks) {
  std::vector<WriteRun> physical;
  physical.reserve(runs.size() * 2 + 1);

  auto push = [&physical](Dbn start, std::uint32_t length) {
    if (!physical.empty() &&
        physical.back().start + physical.back().length == start) {
      physical.back().length += length;
    } else {
      physical.push_back({start, length});
    }
  };

  for (const WriteRun& run : runs) {
    WAFL_ASSERT(run.start + run.length <= data_capacity_);
    const Dbn phys_start = data_to_physical(run.start);

    // A dirty checksum buffer survives only a perfectly contiguous
    // continuation; any jump forces it to media first (Figure 4 (B)).
    if (pending_region_ >= 0 &&
        !(stream_open_ && phys_start == expected_next_phys_ &&
          run.start / kAzcsDataBlocksPerRegion ==
              static_cast<std::uint64_t>(pending_region_))) {
      flush_pending(&physical);
    }

    Dbn pos = run.start;
    std::uint32_t remaining = run.length;
    while (remaining > 0) {
      const std::uint64_t region = pos / kAzcsDataBlocksPerRegion;
      const std::uint64_t region_off = pos % kAzcsDataBlocksPerRegion;
      const auto span = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          remaining, kAzcsDataBlocksPerRegion - region_off));

      push(data_to_physical(pos), span);
      for (std::uint32_t i = 0; i < span; ++i) {
        if (!counted_.test(pos + i)) {
          counted_.set(pos + i);
          ++region_fill_[region];
        }
      }
      WAFL_ASSERT(region_fill_[region] <= kAzcsDataBlocksPerRegion);

      if (region_fill_[region] == kAzcsDataBlocksPerRegion) {
        // Region complete: its checksum block follows in sequence.
        push(checksum_block_of_region(region), 1);
        note_checksum_write(region);
        if (pending_region_ == static_cast<std::int64_t>(region)) {
          pending_region_ = -1;
        }
      } else {
        // Incomplete region: hold the checksum buffer dirty.  Only the
        // final segment of a run can be incomplete (interior segments
        // always run to their region's end).
        pending_region_ = static_cast<std::int64_t>(region);
      }

      pos += span;
      remaining -= span;
    }
    expected_next_phys_ =
        run.start + run.length < data_capacity_
            ? data_to_physical(run.start + run.length)
            : 0;
    stream_open_ = run.start + run.length < data_capacity_;
  }

  return raw_->write_batch(physical, read_blocks);
}

SimTime AzcsDevice::read_random(std::uint64_t blocks) {
  return raw_->read_random(blocks);
}

void AzcsDevice::invalidate(Dbn dbn) {
  WAFL_ASSERT(dbn < data_capacity_);
  const std::uint64_t region = dbn / kAzcsDataBlocksPerRegion;
  if (counted_.test(dbn)) {
    counted_.clear(dbn);
    WAFL_ASSERT(region_fill_[region] > 0);
    --region_fill_[region];
    if (region_fill_[region] == 0) {
      // Fully dead region: a future fill is a fresh fill, and any dirty
      // checksum buffer for it is moot.
      checksum_written_[region] = false;
      if (pending_region_ == static_cast<std::int64_t>(region)) {
        pending_region_ = -1;
      }
    } else if (pending_region_ == static_cast<std::int64_t>(region)) {
      // Live blocks remain and their identifiers must reach media even
      // though the fill pattern changed: write the checksum block now.
      flush_pending(nullptr);
    }
  }
  raw_->invalidate(data_to_physical(dbn));
}

}  // namespace wafl
