// Drive-managed shingled magnetic recording (SMR) model.
//
// SMR overlaps neighbouring tracks, so within a shingle zone data must be
// written strictly forward: a write behind the zone's high-water mark would
// overwrite the shingled tracks above it and the drive must intervene
// (§3.2.3).  Drive-managed disks of the class the paper sampled handle such
// writes *out of place*: the blocks land in a persistent media cache and
// are folded back into their zone by background cleaning, which costs extra
// media writes (the drive-side write amplification §3.2.3 describes).
//
// Write cases per run:
//   1. append at or past the zone's high-water mark → plain sequential
//      write (plus a head seek if discontiguous);
//   2. write behind the high-water mark → out-of-place update: a seek to
//      the media cache plus the write, with a cleaning charge of
//      `cleaning_write_factor` media writes per cached block (the eventual
//      read-modify-fold of the zone, amortized);
//   3. writes that jump forward within a zone are safe (nothing shingled
//      above them yet) but still pay the positioning delay.
//
// The paper's Figure 9 effect — random checksum-block updates when AZCS
// regions straddle AA boundaries — shows up here as case-2 penalties plus
// extra seeks.
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"

namespace wafl {

struct SmrParams {
  /// Blocks per shingle zone.  16 Ki × 4 KiB = 64 MiB zones.
  std::uint64_t zone_blocks = 16384;
  /// Positioning time for a discontiguous access (ns).
  SimTime seek_ns = 8'000'000;
  /// Sequential transfer time per 4 KiB block (ns). ~190 MiB/s outer tracks.
  SimTime block_transfer_ns = 20'500;
  /// Media writes eventually spent per out-of-place-updated block (cache
  /// write + amortized zone cleaning read/write traffic).
  std::uint32_t cleaning_write_factor = 5;
};

class SmrModel final : public DeviceModel {
 public:
  SmrModel(std::uint64_t capacity_blocks, SmrParams params = {});

  MediaType media_type() const noexcept override { return MediaType::kSmr; }
  std::uint64_t capacity_blocks() const noexcept override {
    return capacity_;
  }

  using DeviceModel::write_batch;
  SimTime write_batch(std::span<const WriteRun> runs,
                      std::uint64_t read_blocks) override;
  SimTime read_random(std::uint64_t blocks) override;

  double write_amplification() const noexcept override;
  void reset_wear_window() override;

  // --- Introspection -------------------------------------------------------
  std::uint64_t seeks_performed() const noexcept { return seeks_; }
  /// Out-of-place (media-cache) update events and blocks.
  std::uint64_t cache_update_events() const noexcept { return oop_events_; }
  std::uint64_t cache_update_blocks() const noexcept { return oop_blocks_; }
  std::uint64_t zone_count() const noexcept { return zone_high_.size(); }
  /// High-water mark (first unwritten block offset) of zone `z`.
  std::uint64_t zone_high(std::uint64_t z) const {
    return zone_high_[static_cast<std::size_t>(z)];
  }

 private:
  std::uint64_t capacity_;
  SmrParams params_;
  std::vector<std::uint64_t> zone_high_;  // per-zone high-water mark (offset)
  Dbn head_ = 0;

  std::uint64_t seeks_ = 0;
  std::uint64_t oop_events_ = 0;
  std::uint64_t oop_blocks_ = 0;
  std::uint64_t window_host_ = 0;
  std::uint64_t window_cleaning_ = 0;
};

}  // namespace wafl
