// Solid-state drive model with a page-mapped flash translation layer.
//
// The FTL is the real mechanism, not a fitted curve (§3.2.2):
//   - logical blocks map to flash pages through an L2P table;
//   - pages group into erase blocks; writes append to an open erase block;
//   - overwrites invalidate the old page;
//   - when free erase blocks run low, greedy garbage collection picks the
//     erase block with the fewest valid pages, relocates those pages, and
//     erases it.
//
// Write amplification — (host programs + GC relocation programs) / host
// programs — therefore *emerges* from the write pattern: directing writes
// at mostly-empty erase blocks (what large, erase-block-aligned AAs plus
// the AA cache achieve) leaves few valid pages for GC to relocate, while
// scattering writes leaves many.  The paper's measured effects (WA 1.77 →
// 1.46 in §4.1.1, halved WA in §4.3) reproduce through this code path.
//
// Over-provisioning: the device exposes `capacity_blocks` but owns
// capacity * (1 + op_fraction) pages, like real enterprise SSDs (§3.2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "device/device.hpp"

namespace wafl {

struct SsdParams {
  /// Pages per erase block.  1024 × 4 KiB = 4 MiB erase block.
  std::uint32_t pages_per_erase_block = 1024;
  /// Over-provisioned fraction of physical capacity (0.07 = 7 %).
  double op_fraction = 0.07;
  /// Free erase blocks GC tries to maintain.
  std::uint32_t gc_reserve_blocks = 4;
  /// Page program time (ns per 4 KiB page, effective with internal
  /// parallelism).
  SimTime program_ns = 10'000;
  /// Page read time (ns).
  SimTime read_ns = 5'000;
  /// Erase-block erase time (ns).
  SimTime erase_ns = 2'000'000;
};

class SsdModel final : public DeviceModel {
 public:
  SsdModel(std::uint64_t capacity_blocks, SsdParams params = {});

  MediaType media_type() const noexcept override { return MediaType::kSsd; }
  std::uint64_t capacity_blocks() const noexcept override {
    return capacity_;
  }

  using DeviceModel::write_batch;
  SimTime write_batch(std::span<const WriteRun> runs,
                      std::uint64_t read_blocks) override;
  SimTime read_random(std::uint64_t blocks) override;
  void invalidate(Dbn dbn) override;

  double write_amplification() const noexcept override;
  void reset_wear_window() override;

  // --- Introspection (tests, benches) -------------------------------------
  std::uint64_t host_programs() const noexcept { return host_programs_; }
  std::uint64_t gc_relocations() const noexcept { return gc_programs_; }
  std::uint64_t erases() const noexcept { return erases_; }
  std::uint64_t physical_pages() const noexcept { return p2l_.size(); }
  std::uint32_t erase_block_count() const noexcept {
    return static_cast<std::uint32_t>(valid_count_.size());
  }
  /// Valid (live) pages currently mapped.
  std::uint64_t valid_pages() const noexcept { return mapped_pages_; }

 private:
  static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

  /// Programs logical block `lbn` into the next free page, garbage
  /// collecting first if required.  Updates maps and counters.
  void program(std::uint32_t lbn, bool is_gc);

  /// Takes the next free page slot in the open erase block, opening a new
  /// one from the free list when exhausted.
  std::uint32_t take_page();

  /// Relocates all valid pages out of the fullest-dead erase block, then
  /// erases it.
  void garbage_collect();

  void unmap_page(std::uint32_t ppn);

  std::uint64_t capacity_;
  SsdParams params_;

  std::vector<std::uint32_t> l2p_;          // logical block -> physical page
  std::vector<std::uint32_t> p2l_;          // physical page -> logical block
  std::vector<std::uint32_t> valid_count_;  // per erase block
  std::vector<bool> is_free_eb_;
  std::vector<std::uint32_t> free_ebs_;

  std::uint32_t open_eb_ = 0;
  std::uint32_t open_fill_ = 0;
  bool gc_active_ = false;
  std::uint64_t mapped_pages_ = 0;

  std::uint64_t host_programs_ = 0;
  std::uint64_t gc_programs_ = 0;
  std::uint64_t gc_reads_ = 0;
  std::uint64_t erases_ = 0;

  // Wear-measurement window.
  std::uint64_t window_host_ = 0;
  std::uint64_t window_gc_ = 0;
};

}  // namespace wafl
