// Block-mapped SSD model (replacement-block FTL).
//
// Enterprise SSDs of the paper's era fold sequential write streams into
// whole erase blocks: the LBA space is divided into erase-block-sized
// groups, a stream writing into group g fills a fresh replacement block,
// and when the stream LEAVES the group the FTL must complete ("merge") the
// replacement by relocating whatever live data of the group was not
// rewritten.  This is precisely the behaviour the paper's §3.2.2 argument
// assumes (Figure 4 A/B):
//
//   - an AA smaller than the erase block ends its stream mid-group, so the
//     merge relocates the untouched remainder;
//   - AAs spanning whole erase blocks, chosen emptiest-first by the AA
//     cache, leave only the group's few live blocks to relocate —
//     write amplification approaches 1 / (free fraction of the chosen AA).
//
// The sibling SsdModel implements a page-mapped log-structured FTL; the
// two are interchangeable via MediaConfig (and compared head-to-head in
// the ablation bench).
//
// Cost/accounting model only — like all device models here it tracks real
// mechanism state (per-group valid bitmaps, the open replacement block)
// but not data contents.
#pragma once

#include <cstdint>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "device/device.hpp"
#include "device/ssd.hpp"

namespace wafl {

class BlockMappedSsdModel final : public DeviceModel {
 public:
  /// Reuses SsdParams; op_fraction and gc_reserve_blocks do not apply to
  /// the replacement-block scheme and are ignored.
  BlockMappedSsdModel(std::uint64_t capacity_blocks, SsdParams params = {});

  MediaType media_type() const noexcept override { return MediaType::kSsd; }
  std::uint64_t capacity_blocks() const noexcept override {
    return capacity_;
  }

  using DeviceModel::write_batch;
  SimTime write_batch(std::span<const WriteRun> runs,
                      std::uint64_t read_blocks) override;
  SimTime read_random(std::uint64_t blocks) override;
  void invalidate(Dbn dbn) override;

  double write_amplification() const noexcept override;
  void reset_wear_window() override;

  // --- Introspection -------------------------------------------------------
  std::uint64_t host_programs() const noexcept { return host_programs_; }
  /// Pages relocated by merges (the FTL's own writes).
  std::uint64_t merge_relocations() const noexcept { return merge_programs_; }
  std::uint64_t merges() const noexcept { return merges_; }
  std::uint64_t erases() const noexcept { return erases_; }
  std::uint64_t group_count() const noexcept { return groups_; }
  /// Live blocks the device currently holds.
  std::uint64_t valid_blocks() const noexcept { return valid_.count_set(0, capacity_); }
  bool has_open_group() const noexcept { return open_group_ >= 0; }

 private:
  /// Completes the open replacement block: relocates the group's live
  /// blocks that this stream did not rewrite, then retires the old block.
  void close_open_group();

  std::uint64_t group_base(std::uint64_t g) const noexcept {
    return g * params_.pages_per_erase_block;
  }

  std::uint64_t capacity_;
  SsdParams params_;
  std::uint64_t groups_;

  Bitmap valid_;    // per-LBA live bit
  Bitmap written_;  // per-LBA written-into-open-replacement bit
  /// True once a group has ever held data (so its merge costs an erase).
  std::vector<bool> materialized_;
  std::int64_t open_group_ = -1;
  std::uint64_t open_written_ = 0;

  std::uint64_t host_programs_ = 0;
  std::uint64_t merge_programs_ = 0;
  std::uint64_t merge_reads_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t erases_ = 0;

  // Wear window.
  std::uint64_t window_host_ = 0;
  std::uint64_t window_merge_ = 0;

  // Time accumulated by merges triggered inside the current batch.
  SimTime pending_merge_time_ = 0;
};

}  // namespace wafl
