// Object-store model: storage with native redundancy and no RAID layout
// (§2.1's Fabric Pool case, §3.1's RAID-agnostic target).
//
// Writes are absorbed as object PUTs: a fixed per-request latency plus a
// size-proportional transfer term.  There is no geometry to exploit, so
// the only lever the write allocator has is colocation — fewer, larger
// contiguous runs mean fewer PUTs (§2.5's analysis that VBN-range
// colocation matters even without RAID).
#pragma once

#include <cstdint>

#include "device/device.hpp"

namespace wafl {

struct ObjectStoreParams {
  /// Per-PUT request overhead (ns).  On-premises object store class.
  SimTime put_overhead_ns = 2'000'000;
  /// Transfer time per 4 KiB block (ns). ~500 MiB/s aggregate.
  SimTime block_transfer_ns = 7'800;
  /// Per-GET overhead (ns).
  SimTime get_overhead_ns = 4'000'000;
  /// Largest contiguous run absorbed by one PUT, in blocks (4 MiB objects).
  std::uint32_t max_put_blocks = 1024;
};

class ObjectStoreModel final : public DeviceModel {
 public:
  ObjectStoreModel(std::uint64_t capacity_blocks,
                   ObjectStoreParams params = {})
      : capacity_(capacity_blocks), params_(params) {}

  MediaType media_type() const noexcept override {
    return MediaType::kObjectStore;
  }
  std::uint64_t capacity_blocks() const noexcept override {
    return capacity_;
  }

  using DeviceModel::write_batch;
  SimTime write_batch(std::span<const WriteRun> runs,
                      std::uint64_t read_blocks) override {
    SimTime total = 0;
    for (const WriteRun& run : runs) {
      WAFL_ASSERT(run.start + run.length <= capacity_);
      // One PUT per max_put_blocks chunk of the run.
      const std::uint64_t puts =
          (run.length + params_.max_put_blocks - 1) / params_.max_put_blocks;
      total += puts * params_.put_overhead_ns +
               static_cast<SimTime>(run.length) * params_.block_transfer_ns;
      puts_ += puts;
      blocks_put_ += run.length;
    }
    total += read_blocks *
             (params_.get_overhead_ns + params_.block_transfer_ns);
    return total;
  }

  SimTime read_random(std::uint64_t blocks) override {
    return blocks * (params_.get_overhead_ns + params_.block_transfer_ns);
  }

  std::uint64_t puts_issued() const noexcept { return puts_; }
  std::uint64_t blocks_put() const noexcept { return blocks_put_; }

 private:
  std::uint64_t capacity_;
  ObjectStoreParams params_;
  std::uint64_t puts_ = 0;
  std::uint64_t blocks_put_ = 0;
};

}  // namespace wafl
