#include "device/hdd.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace wafl {

SimTime HddModel::seek_time(Dbn from, Dbn to) const noexcept {
  if (from == to) return 0;
  const std::uint64_t dist = from < to ? to - from : from - to;
  // Positioning time grows with the square root of seek distance up to the
  // average seek at ~1/3 stroke — the standard first-order disk model.
  const double frac = std::min(
      1.0, static_cast<double>(dist) / (static_cast<double>(capacity_) / 3.0));
  const double t = static_cast<double>(params_.min_seek_ns) +
                   std::sqrt(frac) * static_cast<double>(params_.avg_seek_ns -
                                                         params_.min_seek_ns);
  return static_cast<SimTime>(t);
}

SimTime HddModel::write_batch(std::span<const WriteRun> runs,
                              std::uint64_t read_blocks) {
  SimTime total = 0;
  for (const WriteRun& run : runs) {
    WAFL_ASSERT(run.start + run.length <= capacity_);
    if (run.start != head_) {
      total += seek_time(head_, run.start);
      ++seeks_;
    }
    total += static_cast<SimTime>(run.length) * params_.block_transfer_ns;
    head_ = run.start + run.length;
    blocks_written_ += run.length;
  }
  // Parity-computation reads are near the write window: charge a short
  // positioning delay plus transfer each (they interleave with writes).
  total += read_blocks * (params_.min_seek_ns + params_.block_transfer_ns);
  return total;
}

SimTime HddModel::read_random(std::uint64_t blocks) {
  // Random reads pay a full average seek each.
  return blocks * (params_.avg_seek_ns + params_.block_transfer_ns);
}

}  // namespace wafl
