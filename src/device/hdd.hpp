// Hard disk drive model: positioning time plus sequential transfer.
//
// The model keeps the head position (last accessed dbn).  A write run that
// continues from the current position costs only transfer time; any jump
// costs a positioning delay that grows mildly with distance (short seeks
// are cheaper than full-stroke seeks).  This is the property the paper's
// long write chains exploit (§2.4): many short chains to fragmented free
// space cost many positioning delays, while a few long chains amortize them
// away.
#pragma once

#include <cstdint>

#include "device/device.hpp"

namespace wafl {

struct HddParams {
  /// Average positioning time for a random seek (ns).  7.2K RPM class.
  SimTime avg_seek_ns = 6'000'000;
  /// Minimum positioning time (track-to-track + settle) for tiny jumps.
  SimTime min_seek_ns = 500'000;
  /// Transfer time per 4 KiB block (ns).  ~200 MiB/s media rate.
  SimTime block_transfer_ns = 19'500;
};

class HddModel final : public DeviceModel {
 public:
  HddModel(std::uint64_t capacity_blocks, HddParams params = {})
      : capacity_(capacity_blocks), params_(params) {}

  MediaType media_type() const noexcept override { return MediaType::kHdd; }
  std::uint64_t capacity_blocks() const noexcept override {
    return capacity_;
  }

  using DeviceModel::write_batch;
  SimTime write_batch(std::span<const WriteRun> runs,
                      std::uint64_t read_blocks) override;
  SimTime read_random(std::uint64_t blocks) override;

  /// Positioning cost of moving the head from `from` to `to`.
  SimTime seek_time(Dbn from, Dbn to) const noexcept;

  std::uint64_t seeks_performed() const noexcept { return seeks_; }
  std::uint64_t blocks_written() const noexcept { return blocks_written_; }

 private:
  std::uint64_t capacity_;
  HddParams params_;
  Dbn head_ = 0;
  std::uint64_t seeks_ = 0;
  std::uint64_t blocks_written_ = 0;
};

}  // namespace wafl
