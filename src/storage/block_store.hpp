// A 4 KiB-block store with I/O accounting, safe for concurrent
// disjoint-slot access.
//
// Metafiles (bitmap metafiles, the TopAA metafile) are persisted as arrays
// of 4 KiB blocks.  BlockStore models that persistence layer: it stores
// block payloads sparsely (only blocks that have been written occupy
// memory) and counts reads and writes so that higher layers can attribute
// I/O cost — e.g., mount-time cost with and without TopAA metafiles
// (paper §4.4) is derived directly from these counters.
//
// BlockStore is a correctness substrate, not a performance model: timing
// is assigned by the simulation layer from the counters.
//
// Threading contract (the parallel CP tail and mount walk depend on it):
//
//  - Reads and writes of DISTINCT blocks may run concurrently from any
//    number of threads.  The slot table is sharded (block_no mod kShards,
//    each shard a mutex + map of pointer-stable slots) and the I/O
//    counters are per-shard relaxed atomics, so disjoint-slot I/O shares
//    no unsynchronized state.
//  - Each block has AT MOST ONE writer at a time, and no reader while a
//    writer is copying — the single-writer-per-slot contract.  The CP
//    boundary satisfies it structurally: dirty metafile blocks are
//    partitioned so no block is flushed twice, and TopAA slots are
//    per-group.  A per-slot atomic writer flag asserts violations (a
//    best-effort detector in release; TSan sees the payload race itself).
//  - grow(), set_fault_injector(), reset_stats(), copy_contents_from()
//    and move construction require the store to be quiescent (no
//    concurrent I/O).
//
// Fault injection.  A FaultInjector can be attached to any store, giving
// the crash-consistency harness (src/fault/, tests/support/) a way to
// inject torn writes, dropped writes, read bit-rot and crash triggers on
// the embedded stores that the Aggregate and FlexVols own by value — a
// pure decorator could never see their I/O.  With an injector attached,
// writes additionally serialize on a per-store mutex for the whole
// on_write → apply → after_write triple, so the two-phase crash protocol
// never interleaves two writers on one store.  With no injector attached
// (the default, and all production paths) the hot paths cost one pointer
// compare and skip that mutex entirely.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl {

/// I/O counter snapshot for one BlockStore (see stats()).
struct IoStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;

  std::uint64_t total() const noexcept { return block_reads + block_writes; }
};

class BlockStore;

/// Fault-injection hook consulted by a BlockStore on every read and write.
/// Implemented by wafl::fault::FaultEngine; the two-phase write protocol
/// (decide, apply, then after_write) lets an injector simulate a crash
/// *after* the media absorbed a torn or dropped write: after_write may
/// throw (e.g. wafl::fault::CrashPoint), and by then the store already
/// holds exactly the bytes a real power loss would have left behind.
/// The store holds its fault mutex across the whole triple, so on any one
/// store the three calls of one write never interleave with another
/// write's; an engine shared by several stores must pair the two phases
/// itself (FaultEngine keys its pending crash by store and block).
class FaultInjector {
 public:
  /// Disposition of one write, decided by on_write().
  struct WriteOutcome {
    /// The write is lost entirely; the block keeps its old contents.
    bool drop = false;
    /// Bytes of the new payload that persist (torn write when less than
    /// kBlockSize; the tail keeps the old contents).  Ignored when `drop`.
    std::size_t persist_bytes = kBlockSize;
  };

  virtual ~FaultInjector() = default;

  /// Decides the fate of a write about to be applied.
  virtual WriteOutcome on_write(const BlockStore& store,
                                std::uint64_t block_no,
                                std::span<const std::byte> data) = 0;

  /// Called after the (possibly torn or dropped) write has been applied.
  /// May throw to simulate a crash at this exact point.
  virtual void after_write(const BlockStore& store,
                           std::uint64_t block_no) = 0;

  /// Called after a read filled `data`; may mutate it (read bit-rot).
  /// The stored bytes are never altered — media rot on our model's reads
  /// is transient, which is what the checksum/fallback paths care about.
  virtual void on_read(const BlockStore& store, std::uint64_t block_no,
                       std::span<std::byte> data) = 0;
};

class BlockStore {
 public:
  using Block = std::array<std::byte, kBlockSize>;

  /// Creates a store addressing `capacity_blocks` blocks.  No memory is
  /// consumed until blocks are written.
  explicit BlockStore(std::uint64_t capacity_blocks);

  /// Quiescent-only, like every structural operation (see file comment).
  BlockStore(BlockStore&&) = default;
  BlockStore& operator=(BlockStore&&) = default;

  std::uint64_t capacity_blocks() const noexcept { return capacity_; }

  /// Raises the addressable capacity (storage growth); existing contents
  /// are untouched.  Requires quiescence.
  void grow(std::uint64_t new_capacity_blocks) {
    WAFL_ASSERT(new_capacity_blocks >= capacity_);
    capacity_ = new_capacity_blocks;
  }

  /// Writes one block.  `data` must be exactly kBlockSize bytes.  Safe
  /// concurrently with I/O on other blocks; asserts a second concurrent
  /// writer (or reader) of the same block.
  void write(std::uint64_t block_no, std::span<const std::byte> data);

  /// Reads one block into `out` (exactly kBlockSize bytes).  A block that
  /// has never been written reads as zeroes, like a sparse file.  Safe
  /// concurrently with I/O on other blocks.
  void read(std::uint64_t block_no, std::span<std::byte> out);

  /// Reads one block without touching the I/O counters or the fault
  /// injector — the harness's view of what the media really holds.
  void peek(std::uint64_t block_no, std::span<std::byte> out) const;

  /// True if the block has been written at least once.
  bool is_materialized(std::uint64_t block_no) const;

  /// Deliberately corrupts a stored block by flipping one bit — failure
  /// injection for checksum/fallback paths (TopAA repair, §3.4).
  void corrupt(std::uint64_t block_no, std::size_t bit_index);

  /// Replaces this store's contents with a copy of `other`'s materialized
  /// blocks — crash-recovery reconstruction: a fresh aggregate is built
  /// over the bytes that survived on the failed instance's media.  The
  /// capacities must match; I/O counters are not copied.  Requires both
  /// stores quiescent.
  void copy_contents_from(const BlockStore& other);

  /// Attaches (or, with nullptr, detaches) a fault injector.  The caller
  /// keeps ownership and must detach before the injector dies.  Requires
  /// quiescence.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Counter snapshot (by value: the live counters are sharded atomics).
  /// Exact whenever no I/O is in flight; concurrent calls see some
  /// consistent interleaving.
  IoStats stats() const noexcept;
  /// Zeroes the counters.  Requires quiescence.
  void reset_stats() noexcept;

  /// Number of materialized (written-at-least-once) blocks.
  std::size_t materialized_blocks() const;

 private:
  /// One stored block plus its concurrent-writer detector.  Slots are
  /// heap-allocated and never move once created, so payload copies can
  /// run outside the shard lock.
  struct Slot {
    std::atomic<std::uint32_t> writer{0};
    Block data{};  // zero = the sparse-file "never written" contents
  };

  /// Slot shards: block_no mod kShards.  Adjacent metafile blocks land in
  /// different shards, so a partitioned flush never convoys on one lock.
  /// Counters live with the shard to keep disjoint-slot I/O off shared
  /// cache lines.
  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::unique_ptr<Slot>> slots;
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
  };
  static constexpr std::size_t kShards = 64;

  Shard& shard_of(std::uint64_t block_no) const noexcept {
    return shards_[block_no % kShards];
  }
  /// Finds the block's slot, creating it (zeroed) if absent.
  Slot& materialize_slot(std::uint64_t block_no);
  /// Finds the block's slot, or nullptr if never written.
  Slot* find_slot(std::uint64_t block_no) const;
  /// Copies `persist_bytes` of `data` into the slot under the
  /// single-writer flag; the tail keeps the old contents.
  void apply_write(std::uint64_t block_no, std::span<const std::byte> data,
                   std::size_t persist_bytes);
  void write_with_injector(std::uint64_t block_no,
                           std::span<const std::byte> data);

  std::uint64_t capacity_;
  std::unique_ptr<Shard[]> shards_;
  /// Serializes the two-phase injector protocol per store; untouched on
  /// the injector-free hot path.
  std::unique_ptr<std::mutex> fault_mu_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace wafl
