// A 4 KiB-block store with I/O accounting.
//
// Metafiles (bitmap metafiles, the TopAA metafile) are persisted as arrays
// of 4 KiB blocks.  BlockStore models that persistence layer: it stores
// block payloads sparsely (only blocks that have been written occupy
// memory) and counts reads and writes so that higher layers can attribute
// I/O cost — e.g., mount-time cost with and without TopAA metafiles
// (paper §4.4) is derived directly from these counters.
//
// BlockStore is a correctness substrate, not a performance model: timing
// is assigned by the simulation layer from the counters.
//
// Fault injection.  A FaultInjector can be attached to any store, giving
// the crash-consistency harness (src/fault/, tests/support/) a way to
// inject torn writes, dropped writes, read bit-rot and crash triggers on
// the embedded stores that the Aggregate and FlexVols own by value — a
// pure decorator could never see their I/O.  With no injector attached
// (the default, and all production paths) the hot paths cost one pointer
// compare.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl {

/// Running I/O counters for one BlockStore.
struct IoStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;

  std::uint64_t total() const noexcept { return block_reads + block_writes; }
};

class BlockStore;

/// Fault-injection hook consulted by a BlockStore on every read and write.
/// Implemented by wafl::fault::FaultEngine; the two-phase write protocol
/// (decide, apply, then after_write) lets an injector simulate a crash
/// *after* the media absorbed a torn or dropped write: after_write may
/// throw (e.g. wafl::fault::CrashPoint), and by then the store already
/// holds exactly the bytes a real power loss would have left behind.
class FaultInjector {
 public:
  /// Disposition of one write, decided by on_write().
  struct WriteOutcome {
    /// The write is lost entirely; the block keeps its old contents.
    bool drop = false;
    /// Bytes of the new payload that persist (torn write when less than
    /// kBlockSize; the tail keeps the old contents).  Ignored when `drop`.
    std::size_t persist_bytes = kBlockSize;
  };

  virtual ~FaultInjector() = default;

  /// Decides the fate of a write about to be applied.
  virtual WriteOutcome on_write(const BlockStore& store,
                                std::uint64_t block_no,
                                std::span<const std::byte> data) = 0;

  /// Called after the (possibly torn or dropped) write has been applied.
  /// May throw to simulate a crash at this exact point.
  virtual void after_write(const BlockStore& store,
                           std::uint64_t block_no) = 0;

  /// Called after a read filled `data`; may mutate it (read bit-rot).
  /// The stored bytes are never altered — media rot on our model's reads
  /// is transient, which is what the checksum/fallback paths care about.
  virtual void on_read(const BlockStore& store, std::uint64_t block_no,
                       std::span<std::byte> data) = 0;
};

class BlockStore {
 public:
  using Block = std::array<std::byte, kBlockSize>;

  /// Creates a store addressing `capacity_blocks` blocks.  No memory is
  /// consumed until blocks are written.
  explicit BlockStore(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  std::uint64_t capacity_blocks() const noexcept { return capacity_; }

  /// Raises the addressable capacity (storage growth); existing contents
  /// are untouched.
  void grow(std::uint64_t new_capacity_blocks) {
    WAFL_ASSERT(new_capacity_blocks >= capacity_);
    capacity_ = new_capacity_blocks;
  }

  /// Writes one block.  `data` must be exactly kBlockSize bytes.
  void write(std::uint64_t block_no, std::span<const std::byte> data);

  /// Reads one block into `out` (exactly kBlockSize bytes).  A block that
  /// has never been written reads as zeroes, like a sparse file.
  void read(std::uint64_t block_no, std::span<std::byte> out);

  /// Reads one block without touching the I/O counters or the fault
  /// injector — the harness's view of what the media really holds.
  void peek(std::uint64_t block_no, std::span<std::byte> out) const;

  /// True if the block has been written at least once.
  bool is_materialized(std::uint64_t block_no) const noexcept {
    return blocks_.contains(block_no);
  }

  /// Deliberately corrupts a stored block by flipping one bit — failure
  /// injection for checksum/fallback paths (TopAA repair, §3.4).
  void corrupt(std::uint64_t block_no, std::size_t bit_index);

  /// Replaces this store's contents with a copy of `other`'s materialized
  /// blocks — crash-recovery reconstruction: a fresh aggregate is built
  /// over the bytes that survived on the failed instance's media.  The
  /// capacities must match; I/O counters are not copied.
  void copy_contents_from(const BlockStore& other);

  /// Attaches (or, with nullptr, detaches) a fault injector.  The caller
  /// keeps ownership and must detach before the injector dies.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = IoStats{}; }

  /// Number of materialized (written-at-least-once) blocks.
  std::size_t materialized_blocks() const noexcept { return blocks_.size(); }

 private:
  std::uint64_t capacity_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Block>> blocks_;
  IoStats stats_;
  FaultInjector* injector_ = nullptr;
};

}  // namespace wafl
