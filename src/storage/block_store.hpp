// A 4 KiB-block store with I/O accounting.
//
// Metafiles (bitmap metafiles, the TopAA metafile) are persisted as arrays
// of 4 KiB blocks.  BlockStore models that persistence layer: it stores
// block payloads sparsely (only blocks that have been written occupy
// memory) and counts reads and writes so that higher layers can attribute
// I/O cost — e.g., mount-time cost with and without TopAA metafiles
// (paper §4.4) is derived directly from these counters.
//
// BlockStore is a correctness substrate, not a performance model: timing
// is assigned by the simulation layer from the counters.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "util/assert.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl {

/// Running I/O counters for one BlockStore.
struct IoStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;

  std::uint64_t total() const noexcept { return block_reads + block_writes; }
};

class BlockStore {
 public:
  using Block = std::array<std::byte, kBlockSize>;

  /// Creates a store addressing `capacity_blocks` blocks.  No memory is
  /// consumed until blocks are written.
  explicit BlockStore(std::uint64_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  std::uint64_t capacity_blocks() const noexcept { return capacity_; }

  /// Raises the addressable capacity (storage growth); existing contents
  /// are untouched.
  void grow(std::uint64_t new_capacity_blocks) {
    WAFL_ASSERT(new_capacity_blocks >= capacity_);
    capacity_ = new_capacity_blocks;
  }

  /// Writes one block.  `data` must be exactly kBlockSize bytes.
  void write(std::uint64_t block_no, std::span<const std::byte> data);

  /// Reads one block into `out` (exactly kBlockSize bytes).  A block that
  /// has never been written reads as zeroes, like a sparse file.
  void read(std::uint64_t block_no, std::span<std::byte> out);

  /// True if the block has been written at least once.
  bool is_materialized(std::uint64_t block_no) const noexcept {
    return blocks_.contains(block_no);
  }

  /// Deliberately corrupts a stored block by flipping one bit — failure
  /// injection for checksum/fallback paths (TopAA repair, §3.4).
  void corrupt(std::uint64_t block_no, std::size_t bit_index);

  const IoStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = IoStats{}; }

  /// Number of materialized (written-at-least-once) blocks.
  std::size_t materialized_blocks() const noexcept { return blocks_.size(); }

 private:
  std::uint64_t capacity_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Block>> blocks_;
  IoStats stats_;
};

}  // namespace wafl
