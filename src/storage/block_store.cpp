#include "storage/block_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace wafl {

void BlockStore::write(std::uint64_t block_no,
                       std::span<const std::byte> data) {
  WAFL_ASSERT_MSG(block_no < capacity_, "block write out of range");
  WAFL_ASSERT(data.size() == kBlockSize);

  if (injector_ != nullptr) {
    const FaultInjector::WriteOutcome out =
        injector_->on_write(*this, block_no, data);
    ++stats_.block_writes;  // the write was issued, whatever its fate
    if (out.drop) {
      injector_->after_write(*this, block_no);
      return;
    }
    if (out.persist_bytes < kBlockSize) {
      // Torn write: the first persist_bytes of the new payload land; the
      // tail keeps the old contents (zeroes for a never-written block).
      auto it = blocks_.find(block_no);
      if (it == blocks_.end()) {
        it = blocks_.emplace(block_no, std::make_unique<Block>()).first;
      }
      std::memcpy(it->second->data(), data.data(), out.persist_bytes);
      injector_->after_write(*this, block_no);
      return;
    }
    auto it = blocks_.find(block_no);
    if (it == blocks_.end()) {
      it = blocks_.emplace(block_no, std::make_unique<Block>()).first;
    }
    std::memcpy(it->second->data(), data.data(), kBlockSize);
    injector_->after_write(*this, block_no);
    return;
  }

  auto it = blocks_.find(block_no);
  if (it == blocks_.end()) {
    it = blocks_.emplace(block_no, std::make_unique<Block>()).first;
  }
  std::memcpy(it->second->data(), data.data(), kBlockSize);
  ++stats_.block_writes;
}

void BlockStore::read(std::uint64_t block_no, std::span<std::byte> out) {
  WAFL_ASSERT_MSG(block_no < capacity_, "block read out of range");
  WAFL_ASSERT(out.size() == kBlockSize);
  const auto it = blocks_.find(block_no);
  if (it == blocks_.end()) {
    std::memset(out.data(), 0, kBlockSize);
  } else {
    std::memcpy(out.data(), it->second->data(), kBlockSize);
  }
  ++stats_.block_reads;
  if (injector_ != nullptr) {
    injector_->on_read(*this, block_no, out);
  }
}

void BlockStore::peek(std::uint64_t block_no, std::span<std::byte> out) const {
  WAFL_ASSERT_MSG(block_no < capacity_, "block peek out of range");
  WAFL_ASSERT(out.size() == kBlockSize);
  const auto it = blocks_.find(block_no);
  if (it == blocks_.end()) {
    std::memset(out.data(), 0, kBlockSize);
  } else {
    std::memcpy(out.data(), it->second->data(), kBlockSize);
  }
}

void BlockStore::corrupt(std::uint64_t block_no, std::size_t bit_index) {
  WAFL_ASSERT(bit_index < kBlockSize * 8);
  const auto it = blocks_.find(block_no);
  WAFL_ASSERT_MSG(it != blocks_.end(), "corrupting an unwritten block");
  auto& byte = (*it->second)[bit_index / 8];
  byte ^= static_cast<std::byte>(1u << (bit_index % 8));
}

void BlockStore::copy_contents_from(const BlockStore& other) {
  WAFL_ASSERT_MSG(capacity_ == other.capacity_,
                  "copy_contents_from between differently-sized stores");
  blocks_.clear();
  for (const auto& [block_no, block] : other.blocks_) {
    blocks_.emplace(block_no, std::make_unique<Block>(*block));
  }
}

}  // namespace wafl
