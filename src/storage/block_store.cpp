#include "storage/block_store.hpp"

#include <algorithm>
#include <cstring>

#include "util/assert.hpp"

namespace wafl {

BlockStore::BlockStore(std::uint64_t capacity_blocks)
    : capacity_(capacity_blocks),
      shards_(std::make_unique<Shard[]>(kShards)),
      fault_mu_(std::make_unique<std::mutex>()) {}

BlockStore::Slot& BlockStore::materialize_slot(std::uint64_t block_no) {
  Shard& sh = shard_of(block_no);
  std::lock_guard lock(sh.mu);
  auto it = sh.slots.find(block_no);
  if (it == sh.slots.end()) {
    it = sh.slots.emplace(block_no, std::make_unique<Slot>()).first;
  }
  return *it->second;
}

BlockStore::Slot* BlockStore::find_slot(std::uint64_t block_no) const {
  Shard& sh = shard_of(block_no);
  std::lock_guard lock(sh.mu);
  const auto it = sh.slots.find(block_no);
  return it == sh.slots.end() ? nullptr : it->second.get();
}

void BlockStore::apply_write(std::uint64_t block_no,
                             std::span<const std::byte> data,
                             std::size_t persist_bytes) {
  Slot& slot = materialize_slot(block_no);
  // The payload copy runs outside the shard lock; the writer flag is the
  // single-writer-per-slot contract's release-build detector.
  WAFL_ASSERT_MSG(slot.writer.exchange(1, std::memory_order_acquire) == 0,
                  "two concurrent writers on one block");
  std::memcpy(slot.data.data(), data.data(), persist_bytes);
  slot.writer.store(0, std::memory_order_release);
}

void BlockStore::write(std::uint64_t block_no,
                       std::span<const std::byte> data) {
  WAFL_ASSERT_MSG(block_no < capacity_, "block write out of range");
  WAFL_ASSERT(data.size() == kBlockSize);

  if (injector_ != nullptr) {
    write_with_injector(block_no, data);
    return;
  }
  shard_of(block_no).writes.fetch_add(1, std::memory_order_relaxed);
  apply_write(block_no, data, kBlockSize);
}

void BlockStore::write_with_injector(std::uint64_t block_no,
                                     std::span<const std::byte> data) {
  // The whole two-phase triple under the store's fault mutex: after_write
  // must observe the exact crash decision this write's on_write made, so
  // two writers on one store may not interleave their phases.
  std::lock_guard fault_lock(*fault_mu_);
  const FaultInjector::WriteOutcome out =
      injector_->on_write(*this, block_no, data);
  // The write was issued, whatever its fate.
  shard_of(block_no).writes.fetch_add(1, std::memory_order_relaxed);
  if (!out.drop) {
    // A torn write persists the first persist_bytes of the new payload;
    // the tail keeps the old contents (zeroes for a never-written block).
    apply_write(block_no, data,
                std::min<std::size_t>(out.persist_bytes, kBlockSize));
  }
  injector_->after_write(*this, block_no);
}

void BlockStore::read(std::uint64_t block_no, std::span<std::byte> out) {
  WAFL_ASSERT_MSG(block_no < capacity_, "block read out of range");
  WAFL_ASSERT(out.size() == kBlockSize);
  const Slot* slot = find_slot(block_no);
  shard_of(block_no).reads.fetch_add(1, std::memory_order_relaxed);
  if (slot == nullptr) {
    std::memset(out.data(), 0, kBlockSize);
  } else {
    // Bracketing loads catch a writer that was active when the copy
    // started or began during it (best effort; TSan sees the race itself).
    WAFL_ASSERT_MSG(slot->writer.load(std::memory_order_acquire) == 0,
                    "read raced a writer on the same block");
    std::memcpy(out.data(), slot->data.data(), kBlockSize);
    WAFL_ASSERT_MSG(slot->writer.load(std::memory_order_acquire) == 0,
                    "read raced a writer on the same block");
  }
  if (injector_ != nullptr) {
    injector_->on_read(*this, block_no, out);
  }
}

void BlockStore::peek(std::uint64_t block_no, std::span<std::byte> out) const {
  WAFL_ASSERT_MSG(block_no < capacity_, "block peek out of range");
  WAFL_ASSERT(out.size() == kBlockSize);
  const Slot* slot = find_slot(block_no);
  if (slot == nullptr) {
    std::memset(out.data(), 0, kBlockSize);
  } else {
    std::memcpy(out.data(), slot->data.data(), kBlockSize);
  }
}

bool BlockStore::is_materialized(std::uint64_t block_no) const {
  Shard& sh = shard_of(block_no);
  std::lock_guard lock(sh.mu);
  return sh.slots.contains(block_no);
}

void BlockStore::corrupt(std::uint64_t block_no, std::size_t bit_index) {
  WAFL_ASSERT(bit_index < kBlockSize * 8);
  Slot* slot = find_slot(block_no);
  WAFL_ASSERT_MSG(slot != nullptr, "corrupting an unwritten block");
  auto& byte = slot->data[bit_index / 8];
  byte ^= static_cast<std::byte>(1u << (bit_index % 8));
}

void BlockStore::copy_contents_from(const BlockStore& other) {
  WAFL_ASSERT_MSG(capacity_ == other.capacity_,
                  "copy_contents_from between differently-sized stores");
  for (std::size_t s = 0; s < kShards; ++s) {
    shards_[s].slots.clear();
    for (const auto& [block_no, slot] : other.shards_[s].slots) {
      auto copy = std::make_unique<Slot>();
      copy->data = slot->data;
      shards_[s].slots.emplace(block_no, std::move(copy));
    }
  }
}

IoStats BlockStore::stats() const noexcept {
  IoStats total;
  for (std::size_t s = 0; s < kShards; ++s) {
    total.block_reads += shards_[s].reads.load(std::memory_order_relaxed);
    total.block_writes += shards_[s].writes.load(std::memory_order_relaxed);
  }
  return total;
}

void BlockStore::reset_stats() noexcept {
  for (std::size_t s = 0; s < kShards; ++s) {
    shards_[s].reads.store(0, std::memory_order_relaxed);
    shards_[s].writes.store(0, std::memory_order_relaxed);
  }
}

std::size_t BlockStore::materialized_blocks() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    std::lock_guard lock(shards_[s].mu);
    n += shards_[s].slots.size();
  }
  return n;
}

}  // namespace wafl
