// The TopAA metafile (§3.4): persists AA-cache state so that mount after a
// failover or reboot can start write allocation immediately instead of
// first walking the bitmap metafiles.
//
//  - RAID-aware form: one 4 KiB block per RAID group holding the 512 best
//    (AA, score) pairs.  It seeds the max-heap with high-quality AAs; the
//    full heap is rebuilt in the background while CPs proceed from the
//    seed.
//
//  - RAID-agnostic form: two 4 KiB blocks per FlexVol / flat range into
//    which the HBPS's histogram and list pages are embedded directly, so
//    the cache is ready the moment the blocks are read.
//
// Every block carries a CRC-32C.  A failed checksum or structural check
// makes load return nullopt and the caller falls back to the bitmap-scan
// rebuild — a damaged TopAA can cost time but never correctness
// (cf. WAFL's metadata-protection and WAFL-Iron repair discussion).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/aa_cache.hpp"
#include "core/hbps.hpp"
#include "storage/block_store.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl {

/// A staged TopAA write: the fully-encoded (checksummed) block bytes of a
/// save, built without touching the store.  Encoding is a pure function of
/// the cache state, so per-RAID-group images can be built concurrently at
/// the CP boundary, and since per-group slots never share a store block,
/// the commits themselves also run concurrently across groups (the
/// BlockStore allows disjoint-slot concurrent writes).
struct TopAaImage {
  /// kRaidAwareBlocks or kRaidAgnosticBlocks worth of valid blocks.
  std::uint64_t nblocks = 0;
  std::array<std::array<std::byte, kBlockSize>, 2> blocks{};
};

class TopAaFile {
 public:
  /// Binds the metafile to `blocks` consecutive blocks of `store` starting
  /// at `base_block`.  RAID-aware use needs 1 block; RAID-agnostic needs 2.
  TopAaFile(BlockStore& store, std::uint64_t base_block)
      : store_(&store), base_(base_block) {}

  // --- Staged encode / commit ----------------------------------------------

  /// Encodes up to kTopAaRaidAwareEntries best picks (descending score)
  /// into a one-block image.  Pure; store-free.
  static TopAaImage encode_raid_aware(std::span<const AaPick> best);

  /// Encodes the HBPS's two pages into a two-block image.  Pure.
  static TopAaImage encode_raid_agnostic(const Hbps& hbps);

  /// Writes a staged image to this file's blocks.
  void commit(const TopAaImage& image);

  // --- RAID-aware form -----------------------------------------------------

  /// Persists up to kTopAaRaidAwareEntries best picks (descending score)
  /// into one block.
  void save_raid_aware(std::span<const AaPick> best);

  /// Loads the persisted picks; nullopt on checksum/structure failure.
  std::optional<std::vector<AaPick>> load_raid_aware();

  // --- RAID-agnostic form --------------------------------------------------

  /// Persists the HBPS's two pages into two blocks.
  void save_raid_agnostic(const Hbps& hbps);

  /// Reconstructs the HBPS; nullopt on checksum/structure failure.
  std::optional<Hbps> load_raid_agnostic();

  static constexpr std::uint64_t kRaidAwareBlocks = 1;
  static constexpr std::uint64_t kRaidAgnosticBlocks = 2;

 private:
  BlockStore* store_;
  std::uint64_t base_;
};

}  // namespace wafl
