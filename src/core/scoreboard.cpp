#include "core/scoreboard.hpp"

#include "util/thread_pool.hpp"

namespace wafl {

AaScoreBoard::AaScoreBoard(const AaLayout& layout)
    : layout_(layout),
      scores_(layout.aa_count()),
      deltas_(layout.aa_count(), 0),
      dirty_flag_(layout.aa_count(), false) {
  for (AaId aa = 0; aa < scores_.size(); ++aa) {
    scores_[aa] = layout_.aa_capacity(aa);
  }
}

AaScoreBoard::AaScoreBoard(const AaLayout& layout,
                           const BitmapMetafile& metafile, ThreadPool* pool)
    : layout_(layout),
      scores_(layout.aa_count()),
      deltas_(layout.aa_count(), 0),
      dirty_flag_(layout.aa_count(), false) {
  WAFL_ASSERT(layout.base() + layout.total_blocks() <= metafile.size_bits());
  auto scan_one = [&](std::size_t aa) {
    const auto id = static_cast<AaId>(aa);
    scores_[aa] = static_cast<AaScore>(
        metafile.free_in_range(layout_.aa_begin(id), layout_.aa_end(id)));
  };
  if (pool != nullptr) {
    pool->parallel_for(0, scores_.size(), scan_one);
  } else {
    for (std::size_t aa = 0; aa < scores_.size(); ++aa) scan_one(aa);
  }
}

AaScoreBoard::AaScoreBoard(const AaLayout& layout,
                           std::vector<AaScore> scores)
    : layout_(layout),
      scores_(std::move(scores)),
      deltas_(layout.aa_count(), 0),
      dirty_flag_(layout.aa_count(), false) {
  WAFL_ASSERT_MSG(scores_.size() == layout.aa_count(),
                  "adopted scores must cover every AA");
}

void AaScoreBoard::note_delta(AaId aa, std::int32_t d) {
  deltas_[aa] += d;
  if (!dirty_flag_[aa]) {
    dirty_flag_[aa] = true;
    dirty_.push_back(aa);
  }
}

std::span<const ScoreChange> AaScoreBoard::apply_cp_deltas() {
  changes_.clear();
  for (const AaId aa : dirty_) {
    const std::int32_t d = deltas_[aa];
    deltas_[aa] = 0;
    dirty_flag_[aa] = false;
    if (d == 0) continue;
    const AaScore old_score = scores_[aa];
    const auto capacity = static_cast<std::int64_t>(layout_.aa_capacity(aa));
    const std::int64_t raw = static_cast<std::int64_t>(old_score) + d;
    WAFL_ASSERT_MSG(raw >= 0 && raw <= capacity,
                    "AA score delta out of range");
    const auto new_score = static_cast<AaScore>(raw);
    scores_[aa] = new_score;
    changes_.push_back({aa, old_score, new_score});
  }
  dirty_.clear();
  // Deliberately obs-free: this fold runs concurrently per RAID group at
  // the CP boundary, and callers (RgAllocator, FlexVol) count the changed
  // AAs through their own cached, per-owner-labelled handles.
  return changes_;
}

void AaScoreBoard::rescan(AaId aa, const BitmapMetafile& metafile) {
  WAFL_ASSERT(aa < scores_.size());
  scores_[aa] = static_cast<AaScore>(
      metafile.free_in_range(layout_.aa_begin(aa), layout_.aa_end(aa)));
  if (dirty_flag_[aa]) {
    deltas_[aa] = 0;  // the rescan already reflects any applied state
  }
}

std::uint64_t AaScoreBoard::total_free() const noexcept {
  std::uint64_t total = 0;
  for (const AaScore s : scores_) total += s;
  return total;
}

}  // namespace wafl
