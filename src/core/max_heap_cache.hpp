// RAID-aware AA cache: an indexed in-memory max-heap of ALL allocation
// areas in a RAID group, keyed by AA score (§3.3.1).
//
// "This is an in-memory max-heap of all AAs in a RAID group sorted by
//  score.  The max-heap is rebalanced at the end of each CP after updating
//  the scores of AAs in which VBNs were allocated or freed."
//
// The heap stores (score, aa) pairs; a position index gives O(log n)
// re-keying per changed AA at the CP boundary, so the rebalance cost is
// O(changed · log n) rather than O(n).  Ties break toward the lower AA id
// so behaviour is deterministic.
//
// Memory is ~8 bytes per AA plus 4 bytes of position index: ~1 MiB per
// million AAs, matching the paper's 16 TiB-device example.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/aa_cache.hpp"
#include "core/scoreboard.hpp"
#include "util/assert.hpp"

namespace wafl::obs {
class Counter;
}  // namespace wafl::obs

namespace wafl {

class MaxHeapAaCache final : public AaCache {
 public:
  /// Creates an empty cache able to track AAs with ids below `aa_universe`.
  explicit MaxHeapAaCache(AaId aa_universe);

  /// Routes re-key counting to an owner-resolved counter (null: re-keys go
  /// uncounted).  The owner binds its runtime-scoped "wafl.heap.rekeys"
  /// handle here; the core layer never touches the process-global registry.
  void bind_rekey_counter(obs::Counter* c) noexcept { rekey_counter_ = c; }

  /// Builds the full heap from a scoreboard in O(n).
  void build(const AaScoreBoard& board);

  /// Seeds the heap from a partial set of (aa, score) pairs — the TopAA
  /// mount path (§3.4).  Previously held entries are discarded.
  void seed(std::span<const AaPick> picks);

  std::optional<AaPick> take_best() override;
  std::optional<AaScore> peek_best_score() const override;
  void insert(AaId aa, AaScore score) override;
  void update_score(AaId aa, AaScore old_score, AaScore new_score) override;
  std::size_t size() const noexcept override { return heap_.size(); }

  bool contains(AaId aa) const noexcept {
    return aa < pos_.size() && pos_[aa] != kAbsent;
  }

  /// Checks out a specific AA (the segment cleaner's pick, §3.3.1).
  /// Returns false when the AA is not resident.
  bool remove(AaId aa);

  /// Copies out the best `n` entries in descending score order without
  /// disturbing the heap — used to persist the TopAA metafile (§3.4).
  std::vector<AaPick> top(std::size_t n) const;

  /// Heap-order invariant check — test hook, O(n).
  bool validate() const override;

 private:
  struct Entry {
    AaScore score;
    AaId aa;
  };

  /// True when a ranks strictly better than b (higher score; lower id as
  /// the deterministic tie break).
  static bool better(const Entry& a, const Entry& b) noexcept {
    if (a.score != b.score) return a.score > b.score;
    return a.aa < b.aa;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void place(std::size_t i, Entry e) {
    heap_[i] = e;
    pos_[e.aa] = static_cast<std::uint32_t>(i);
  }
  void remove_at(std::size_t i);

  static constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  // aa -> heap index, kAbsent if not held
  obs::Counter* rekey_counter_ = nullptr;
};

}  // namespace wafl
