// Allocation-area topology (§3.1).
//
// WAFL defines fixed-size regions of the block-number space, called
// allocation areas (AAs), and tracks the availability of free space within
// each region.  Two topologies exist, but both reduce to contiguous VBN
// ranges:
//
//  - RAID-aware: an AA is a set of consecutive stripes (Figure 2/3).  With
//    this library's VBN mapping (see raid_geometry.hpp), S consecutive
//    stripes are exactly S × data_devices consecutive VBNs, so the AA is a
//    contiguous VBN range whose size is aa_stripes × data_devices.
//
//  - RAID-agnostic (FlexVols, object stores): an AA is a set of consecutive
//    VBNs, sized to match bitmap-metafile-block alignment (32 Ki VBNs by
//    default, §3.2.1).
//
// AaLayout is the pure geometry: VBN ↔ AA mapping over a half-open VBN
// range [base, base + blocks).  The last AA may be short if the range is
// not a multiple of the AA size.
#pragma once

#include <cstdint>

#include "raid/raid_geometry.hpp"
#include "util/assert.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl {

class AaLayout {
 public:
  /// Flat (RAID-agnostic) layout: AAs of `aa_blocks` consecutive VBNs over
  /// [base, base + total_blocks).
  static AaLayout flat(Vbn base, std::uint64_t total_blocks,
                       std::uint32_t aa_blocks = kFlatAaBlocks) {
    return AaLayout(base, total_blocks, aa_blocks);
  }

  /// RAID-aware layout: AAs of `aa_stripes` consecutive stripes over the
  /// whole group, whose VBN range starts at `base`.
  static AaLayout raid(Vbn base, const RaidGeometry& geom,
                       std::uint32_t aa_stripes = kDefaultRaidAaStripes) {
    WAFL_ASSERT_MSG(aa_stripes % kTetrisStripes == 0,
                    "AA size must be whole tetrises");
    const std::uint64_t aa_blocks =
        static_cast<std::uint64_t>(aa_stripes) * geom.data_devices();
    WAFL_ASSERT_MSG(aa_blocks <= 0xFFFFFFFFull, "AA too large");
    return AaLayout(base, geom.data_blocks(),
                    static_cast<std::uint32_t>(aa_blocks));
  }

  Vbn base() const noexcept { return base_; }
  std::uint64_t total_blocks() const noexcept { return total_blocks_; }
  std::uint32_t aa_blocks() const noexcept { return aa_blocks_; }

  AaId aa_count() const noexcept {
    return static_cast<AaId>((total_blocks_ + aa_blocks_ - 1) / aa_blocks_);
  }

  AaId aa_of(Vbn v) const noexcept {
    WAFL_ASSERT(v >= base_ && v < base_ + total_blocks_);
    return static_cast<AaId>((v - base_) / aa_blocks_);
  }

  Vbn aa_begin(AaId aa) const noexcept {
    WAFL_ASSERT(aa < aa_count());
    return base_ + static_cast<std::uint64_t>(aa) * aa_blocks_;
  }

  Vbn aa_end(AaId aa) const noexcept {
    WAFL_ASSERT(aa < aa_count());
    const Vbn end = base_ + static_cast<std::uint64_t>(aa + 1) * aa_blocks_;
    const Vbn limit = base_ + total_blocks_;
    return end < limit ? end : limit;
  }

  /// Blocks in this AA (== aa_blocks() except possibly for the last AA).
  std::uint32_t aa_capacity(AaId aa) const noexcept {
    return static_cast<std::uint32_t>(aa_end(aa) - aa_begin(aa));
  }

  /// The best possible score any AA in this layout can have.
  AaScore max_score() const noexcept { return aa_blocks_; }

 private:
  AaLayout(Vbn base, std::uint64_t total_blocks, std::uint32_t aa_blocks)
      : base_(base), total_blocks_(total_blocks), aa_blocks_(aa_blocks) {
    WAFL_ASSERT(aa_blocks > 0);
    WAFL_ASSERT(total_blocks > 0);
  }

  Vbn base_;
  std::uint64_t total_blocks_;
  std::uint32_t aa_blocks_;
};

}  // namespace wafl
