#include "core/hbps.hpp"

#include <cstring>

#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/checksum.hpp"

namespace wafl {

Hbps::Hbps(Config cfg) : cfg_(cfg) {
  WAFL_ASSERT(cfg_.max_score > 0);
  WAFL_ASSERT(cfg_.bin_width > 0 && cfg_.bin_width <= cfg_.max_score);
  WAFL_ASSERT(cfg_.list_capacity > 0);
  // The persisted list page holds 4-byte ids with a trailing CRC.
  WAFL_ASSERT(cfg_.list_capacity <= (kPageBytes - 4) / sizeof(AaId));
  const std::uint32_t bins =
      (cfg_.max_score + cfg_.bin_width - 1) / cfg_.bin_width;
  hist_.assign(bins, 0);
  list_first_.assign(bins, kNoSegment);
  list_count_.assign(bins, 0);
  list_.reserve(cfg_.list_capacity);
}

std::uint32_t Hbps::bin_of(AaScore score) const noexcept {
  WAFL_ASSERT(score <= cfg_.max_score);
  const std::uint32_t b = (cfg_.max_score - score) / cfg_.bin_width;
  return b < bin_count() ? b : bin_count() - 1;
}

AaScore Hbps::bin_upper_bound(std::uint32_t b) const noexcept {
  WAFL_ASSERT(b < bin_count());
  return cfg_.max_score - b * cfg_.bin_width;
}

void Hbps::build(const AaScoreBoard& board) {
  std::vector<AaScore> scores(board.aa_count());
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    scores[aa] = board.score(aa);
  }
  build(scores);
}

void Hbps::build(std::span<const AaScore> scores) {
  std::fill(hist_.begin(), hist_.end(), 0);
  std::fill(list_first_.begin(), list_first_.end(), kNoSegment);
  std::fill(list_count_.begin(), list_count_.end(), 0);
  list_.clear();
  slot_of_.clear();
  tracked_ = 0;

  // Pass 1: histogram over all resident AAs.
  for (AaId aa = 0; aa < scores.size(); ++aa) {
    if (checked_out_.contains(aa)) continue;
    ++hist_[bin_of(scores[aa])];
    ++tracked_;
  }

  // Pass 2: list the AAs of the best bins, best bin first, until the list
  // page is full.  A bin may be listed partially when it straddles the
  // capacity limit; its histogram count stays exact regardless.
  std::uint32_t budget = cfg_.list_capacity;
  for (std::uint32_t b = 0; b < bin_count() && budget > 0; ++b) {
    if (hist_[b] == 0) continue;
    for (AaId aa = 0; aa < scores.size() && budget > 0; ++aa) {
      if (checked_out_.contains(aa)) continue;
      if (bin_of(scores[aa]) != b) continue;
      if (list_count_[b] == 0) {
        list_first_[b] = static_cast<std::int32_t>(list_.size());
      }
      slot_of_[aa] = static_cast<std::uint32_t>(list_.size());
      list_.push_back(aa);
      ++list_count_[b];
      --budget;
    }
  }
}

std::int32_t Hbps::worst_listed_bin() const noexcept {
  for (std::uint32_t b = bin_count(); b-- > 0;) {
    if (list_count_[b] > 0) return static_cast<std::int32_t>(b);
  }
  return kNoSegment;
}

std::int32_t Hbps::best_listed_bin() const noexcept {
  for (std::uint32_t b = 0; b < bin_count(); ++b) {
    if (list_count_[b] > 0) return static_cast<std::int32_t>(b);
  }
  return kNoSegment;
}

std::int32_t Hbps::best_histogram_bin() const noexcept {
  for (std::uint32_t b = 0; b < bin_count(); ++b) {
    if (hist_[b] > 0) return static_cast<std::int32_t>(b);
  }
  return kNoSegment;
}

std::optional<AaPick> Hbps::take_best() {
  const std::int32_t bs = best_listed_bin();
  if (bs == kNoSegment) return std::nullopt;
  const auto b = static_cast<std::uint32_t>(bs);
  // "The write allocator always picks the first AA in the second page."
  const auto slot = static_cast<std::uint32_t>(list_first_[b]);
  const AaId aa = list_[slot];
  unlist_at(slot, b);
  WAFL_ASSERT(hist_[b] > 0);
  --hist_[b];
  --tracked_;
  checked_out_.insert(aa);
  return AaPick{aa, bin_upper_bound(b)};
}

std::optional<AaScore> Hbps::peek_best_score() const {
  const std::int32_t b = best_listed_bin();
  if (b == kNoSegment) return std::nullopt;
  return bin_upper_bound(static_cast<std::uint32_t>(b));
}

void Hbps::insert(AaId aa, AaScore score) {
  WAFL_ASSERT_MSG(!slot_of_.contains(aa), "AA already listed");
  checked_out_.erase(aa);
  const std::uint32_t b = bin_of(score);
  ++hist_[b];
  ++tracked_;
  maybe_list(aa, b);
}

void Hbps::update_score(AaId aa, AaScore old_score, AaScore new_score) {
  if (checked_out_.contains(aa)) return;  // re-keys on insert()
  const std::uint32_t b0 = bin_of(old_score);
  const std::uint32_t b1 = bin_of(new_score);
  if (b0 == b1) return;  // same bin: nothing moves (partial sort)
  WAFL_OBS({
    if (rebin_counter_ != nullptr) rebin_counter_->inc();
    obs::trace().emit(obs::EventType::kHbpsRebin, 0, aa, b0, b1);
  });
  WAFL_ASSERT(hist_[b0] > 0);
  --hist_[b0];
  ++hist_[b1];
  const auto it = slot_of_.find(aa);
  if (it != slot_of_.end()) {
    unlist_at(it->second, b0);
    maybe_list(aa, b1);
  } else {
    // Unlisted AA may now qualify for the list (frees pushed it into a top
    // bin, §3.3.2).
    maybe_list(aa, b1);
  }
}

void Hbps::apply_changes(std::span<const ScoreChange> changes) {
  // Tiny batches: per-change list maintenance is cheaper than a rebuild.
  if (changes.size() < 2) {
    AaCache::apply_changes(changes);
    return;
  }

  // Pass 1: histogram moves — O(1) per change, exactly as update_score()
  // would do them, including the rebin observability.  Checked-out AAs
  // re-key on insert() and same-bin moves change nothing (partial sort),
  // so neither contributes a rebin.  CP batches carry one change per AA
  // (AaScoreBoard::apply_cp_deltas coalesces), so first-wins is exact.
  std::unordered_map<AaId, std::uint32_t> dest;
  dest.reserve(changes.size());
  std::vector<AaId> order;  // effective rebins, batch order
  order.reserve(changes.size());
  for (const ScoreChange& c : changes) {
    if (checked_out_.contains(c.aa)) continue;
    const std::uint32_t b0 = bin_of(c.old_score);
    const std::uint32_t b1 = bin_of(c.new_score);
    if (b0 == b1) continue;
    WAFL_OBS({
      if (rebin_counter_ != nullptr) rebin_counter_->inc();
      obs::trace().emit(obs::EventType::kHbpsRebin, 0, c.aa, b0, b1);
    });
    WAFL_ASSERT(hist_[b0] > 0);
    --hist_[b0];
    ++hist_[b1];
    dest.emplace(c.aa, b1);
    order.push_back(c.aa);
  }
  if (order.empty()) return;

  // Pass 2: one segmented-array shuffle for the whole batch.  Bucket the
  // old list's entries by destination bin — survivors stay put, listed
  // movers follow their new bin — and append unlisted movers (now resident
  // in a possibly-listable bin) in batch order, exactly the candidates the
  // per-change path would have offered maybe_list().
  const std::uint32_t nb = bin_count();
  std::vector<std::vector<AaId>> surv(nb), moved(nb), fresh(nb);
  for (std::uint32_t b = 0; b < nb; ++b) {
    if (list_count_[b] == 0) continue;
    const auto first = static_cast<std::uint32_t>(list_first_[b]);
    for (std::uint32_t i = 0; i < list_count_[b]; ++i) {
      const AaId aa = list_[first + i];
      const auto it = dest.find(aa);
      if (it == dest.end()) {
        surv[b].push_back(aa);
      } else {
        moved[it->second].push_back(aa);
      }
    }
  }
  for (const AaId aa : order) {
    if (!slot_of_.contains(aa)) fresh[dest[aa]].push_back(aa);
  }

  // Rebuild the segments best bin first until the list page is full:
  // within a bin, survivors (old relative order), then listed movers, then
  // fresh candidates.
  std::vector<AaId> nlist;
  nlist.reserve(cfg_.list_capacity);
  slot_of_.clear();
  std::fill(list_first_.begin(), list_first_.end(), kNoSegment);
  std::fill(list_count_.begin(), list_count_.end(), 0);
  for (std::uint32_t b = 0; b < nb; ++b) {
    if (nlist.size() >= cfg_.list_capacity) break;
    auto take = [&](const std::vector<AaId>& v) {
      for (const AaId aa : v) {
        if (nlist.size() >= cfg_.list_capacity) return;
        if (list_count_[b] == 0) {
          list_first_[b] = static_cast<std::int32_t>(nlist.size());
        }
        slot_of_[aa] = static_cast<std::uint32_t>(nlist.size());
        nlist.push_back(aa);
        ++list_count_[b];
      }
    };
    take(surv[b]);
    take(moved[b]);
    take(fresh[b]);
  }
  list_ = std::move(nlist);
}

void Hbps::maybe_list(AaId aa, std::uint32_t b) {
  if (list_.size() >= cfg_.list_capacity) {
    const std::int32_t w = worst_listed_bin();
    WAFL_ASSERT(w != kNoSegment);
    // Only displace when strictly better than the worst listed bin.
    if (static_cast<std::int32_t>(b) >= w) return;
    drop_worst();
  }

  // Make a hole at the end of bin b's segment by moving ONE entry from the
  // front of each worse listed bin to that bin's own end (§3.3.2: "only
  // one AA needs to be moved down from each bin present in the list").
  std::uint32_t hole = static_cast<std::uint32_t>(list_.size());
  list_.push_back(kInvalidAaId);  // grow; filled below
  for (std::uint32_t k = bin_count(); k-- > b + 1;) {
    if (list_count_[k] == 0) continue;
    const auto first = static_cast<std::uint32_t>(list_first_[k]);
    move_entry(first, hole);
    hole = first;
    list_first_[k] = static_cast<std::int32_t>(first + 1);
  }
  list_[hole] = aa;
  slot_of_[aa] = hole;
  if (list_count_[b] == 0) {
    list_first_[b] = static_cast<std::int32_t>(hole);
  }
  ++list_count_[b];
  WAFL_ASSERT(static_cast<std::uint32_t>(list_first_[b]) + list_count_[b] ==
              hole + 1);
}

void Hbps::unlist_at(std::uint32_t i, std::uint32_t b) {
  WAFL_ASSERT(list_count_[b] > 0);
  const auto first = static_cast<std::uint32_t>(list_first_[b]);
  const std::uint32_t last = first + list_count_[b] - 1;
  WAFL_ASSERT(i >= first && i <= last);
  slot_of_.erase(list_[i]);

  // Fill the hole with bin b's own last entry, leaving the hole at the
  // segment's end.
  if (i != last) {
    move_entry(last, i);
  }
  --list_count_[b];
  if (list_count_[b] == 0) {
    list_first_[b] = kNoSegment;
  }

  // Compact every worse listed bin leftward by one: move each bin's LAST
  // entry into the hole that precedes its first slot.
  std::uint32_t hole = last;
  for (std::uint32_t k = b + 1; k < bin_count(); ++k) {
    if (list_count_[k] == 0) continue;
    const auto kfirst = static_cast<std::uint32_t>(list_first_[k]);
    const std::uint32_t klast = kfirst + list_count_[k] - 1;
    WAFL_ASSERT(kfirst == hole + 1);
    move_entry(klast, hole);
    list_first_[k] = static_cast<std::int32_t>(kfirst - 1);
    hole = klast;
  }
  WAFL_ASSERT(hole == list_.size() - 1);
  list_.pop_back();
}

void Hbps::drop_worst() {
  const std::int32_t ws = worst_listed_bin();
  WAFL_ASSERT(ws != kNoSegment);
  const auto w = static_cast<std::uint32_t>(ws);
  const std::uint32_t last =
      static_cast<std::uint32_t>(list_first_[w]) + list_count_[w] - 1;
  WAFL_ASSERT(last == list_.size() - 1);
  slot_of_.erase(list_[last]);
  list_.pop_back();
  --list_count_[w];
  if (list_count_[w] == 0) {
    list_first_[w] = kNoSegment;
  }
}

void Hbps::move_entry(std::uint32_t from, std::uint32_t to) {
  const AaId aa = list_[from];
  list_[to] = aa;
  slot_of_[aa] = to;
}

bool Hbps::validate() const {
  // Histogram total matches tracked count.
  std::size_t hist_total = 0;
  for (const std::uint32_t c : hist_) hist_total += c;
  if (hist_total != tracked_) return false;

  // Segments: ascending bins, contiguous, covering the whole list.
  std::uint32_t cursor = 0;
  for (std::uint32_t b = 0; b < bin_count(); ++b) {
    if (list_count_[b] == 0) {
      if (list_first_[b] != kNoSegment) return false;
      continue;
    }
    if (list_first_[b] != static_cast<std::int32_t>(cursor)) return false;
    if (list_count_[b] > hist_[b]) return false;
    cursor += list_count_[b];
  }
  if (cursor != list_.size()) return false;
  if (list_.size() > cfg_.list_capacity) return false;

  // Slot index agrees with the list.
  if (slot_of_.size() != list_.size()) return false;
  for (std::uint32_t i = 0; i < list_.size(); ++i) {
    const auto it = slot_of_.find(list_[i]);
    if (it == slot_of_.end() || it->second != i) return false;
  }
  return true;
}

// --- Persistence -----------------------------------------------------------

namespace {

struct HistPageHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t max_score;
  std::uint32_t bin_width;
  std::uint32_t bin_count;
  std::uint32_t list_capacity;
  std::uint32_t list_size;
  std::uint32_t reserved;
};

constexpr std::uint32_t kHbpsMagic = 0x48425053;  // "HBPS"
constexpr std::uint32_t kHbpsVersion = 1;
constexpr std::size_t kCrcOffset = Hbps::kPageBytes - 4;

void put_crc(std::span<std::byte> page) {
  const std::uint32_t crc = crc32c(page.data(), kCrcOffset);
  std::memcpy(page.data() + kCrcOffset, &crc, 4);
}

bool check_crc(std::span<const std::byte> page) {
  std::uint32_t stored = 0;
  std::memcpy(&stored, page.data() + kCrcOffset, 4);
  return stored == crc32c(page.data(), kCrcOffset);
}

}  // namespace

void Hbps::save(std::span<std::byte> histogram_page,
                std::span<std::byte> list_page) const {
  WAFL_ASSERT(histogram_page.size() == kPageBytes);
  WAFL_ASSERT(list_page.size() == kPageBytes);
  std::memset(histogram_page.data(), 0, kPageBytes);
  std::memset(list_page.data(), 0, kPageBytes);

  const HistPageHeader hdr{kHbpsMagic,
                           kHbpsVersion,
                           cfg_.max_score,
                           cfg_.bin_width,
                           bin_count(),
                           cfg_.list_capacity,
                           static_cast<std::uint32_t>(list_.size()),
                           0};
  std::memcpy(histogram_page.data(), &hdr, sizeof(hdr));

  // Per-bin: count, first-slot index (as stored in memory; -1 == unlisted).
  std::byte* p = histogram_page.data() + sizeof(hdr);
  WAFL_ASSERT(sizeof(hdr) + bin_count() * 8 + 4 <= kPageBytes);
  for (std::uint32_t b = 0; b < bin_count(); ++b) {
    std::memcpy(p, &hist_[b], 4);
    std::memcpy(p + 4, &list_first_[b], 4);
    p += 8;
  }
  put_crc(histogram_page);

  std::memcpy(list_page.data(), list_.data(), list_.size() * sizeof(AaId));
  put_crc(list_page);
}

std::optional<Hbps> Hbps::load(std::span<const std::byte> histogram_page,
                               std::span<const std::byte> list_page) {
  if (histogram_page.size() != kPageBytes ||
      list_page.size() != kPageBytes) {
    return std::nullopt;
  }
  if (!check_crc(histogram_page) || !check_crc(list_page)) {
    return std::nullopt;
  }

  HistPageHeader hdr{};
  std::memcpy(&hdr, histogram_page.data(), sizeof(hdr));
  if (hdr.magic != kHbpsMagic || hdr.version != kHbpsVersion) {
    return std::nullopt;
  }
  if (hdr.max_score == 0 || hdr.bin_width == 0 ||
      hdr.bin_width > hdr.max_score || hdr.list_capacity == 0 ||
      hdr.list_capacity > (kPageBytes - 4) / sizeof(AaId) ||
      hdr.list_size > hdr.list_capacity) {
    return std::nullopt;
  }

  Hbps out(Config{hdr.max_score, hdr.bin_width, hdr.list_capacity});
  if (out.bin_count() != hdr.bin_count) return std::nullopt;
  if (sizeof(hdr) + hdr.bin_count * 8 + 4 > kPageBytes) return std::nullopt;

  const std::byte* p = histogram_page.data() + sizeof(hdr);
  for (std::uint32_t b = 0; b < hdr.bin_count; ++b) {
    std::memcpy(&out.hist_[b], p, 4);
    std::memcpy(&out.list_first_[b], p + 4, 4);
    p += 8;
  }

  out.list_.resize(hdr.list_size);
  std::memcpy(out.list_.data(), list_page.data(),
              hdr.list_size * sizeof(AaId));

  // Reconstruct derived state (segment counts, slot index, tracked total).
  out.tracked_ = 0;
  for (const std::uint32_t c : out.hist_) out.tracked_ += c;
  // Derive per-bin listed counts from the first-slot indices: segments are
  // contiguous in ascending bin order, so each segment runs to the next
  // segment's first slot (or the end of the list).
  std::uint32_t cursor = 0;
  for (std::uint32_t b = 0; b < hdr.bin_count; ++b) {
    if (out.list_first_[b] == kNoSegment) {
      out.list_count_[b] = 0;
      continue;
    }
    if (out.list_first_[b] != static_cast<std::int32_t>(cursor)) {
      return std::nullopt;  // structurally inconsistent
    }
    std::uint32_t next_first = hdr.list_size;
    for (std::uint32_t nb = b + 1; nb < hdr.bin_count; ++nb) {
      if (out.list_first_[nb] != kNoSegment) {
        next_first = static_cast<std::uint32_t>(out.list_first_[nb]);
        break;
      }
    }
    if (next_first <= cursor) return std::nullopt;
    out.list_count_[b] = next_first - cursor;
    cursor = next_first;
  }
  if (cursor != hdr.list_size) return std::nullopt;

  for (std::uint32_t i = 0; i < hdr.list_size; ++i) {
    if (out.slot_of_.contains(out.list_[i])) return std::nullopt;
    out.slot_of_[out.list_[i]] = i;
  }
  if (!out.validate()) return std::nullopt;
  return out;
}

}  // namespace wafl
