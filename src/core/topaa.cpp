#include "core/topaa.hpp"

#include <cstring>

#include "util/assert.hpp"
#include "util/checksum.hpp"
#include "util/units.hpp"

namespace wafl {
namespace {

constexpr std::uint32_t kTopAaMagic = 0x544F5041;  // "TOPA"
constexpr std::uint32_t kTopAaVersion = 1;

/// The CRC lives inside the header (computed with the crc field zeroed), so
/// header + 510 entries fill the 4 KiB block exactly.
struct TopAaHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint32_t count;
  std::uint32_t crc;
};

struct PersistedPick {
  AaId aa;
  AaScore score;
};

static_assert(sizeof(TopAaHeader) +
                      kTopAaRaidAwareEntries * sizeof(PersistedPick) <=
                  kBlockSize,
              "picks plus header must fit one 4 KiB block");

std::uint32_t block_crc(const std::byte* block) {
  // CRC over the block with the header's crc field treated as zero.
  alignas(8) std::byte copy[kBlockSize];
  std::memcpy(copy, block, kBlockSize);
  std::memset(copy + offsetof(TopAaHeader, crc), 0, 4);
  return crc32c(std::span<const std::byte>(copy, kBlockSize));
}

}  // namespace

TopAaImage TopAaFile::encode_raid_aware(std::span<const AaPick> best) {
  const auto count = static_cast<std::uint32_t>(
      std::min<std::size_t>(best.size(), kTopAaRaidAwareEntries));

  TopAaImage image;
  image.nblocks = kRaidAwareBlocks;
  std::byte* block = image.blocks[0].data();
  TopAaHeader hdr{kTopAaMagic, kTopAaVersion, count, 0};
  std::memcpy(block, &hdr, sizeof(hdr));
  std::byte* p = block + sizeof(hdr);
  for (std::uint32_t i = 0; i < count; ++i) {
    const PersistedPick pp{best[i].aa, best[i].score};
    std::memcpy(p, &pp, sizeof(pp));
    p += sizeof(pp);
  }
  hdr.crc = block_crc(block);
  std::memcpy(block, &hdr, sizeof(hdr));
  return image;
}

TopAaImage TopAaFile::encode_raid_agnostic(const Hbps& hbps) {
  TopAaImage image;
  image.nblocks = kRaidAgnosticBlocks;
  hbps.save(image.blocks[0], image.blocks[1]);
  return image;
}

void TopAaFile::commit(const TopAaImage& image) {
  WAFL_ASSERT(image.nblocks >= 1 && image.nblocks <= image.blocks.size());
  for (std::uint64_t b = 0; b < image.nblocks; ++b) {
    store_->write(base_ + b, image.blocks[b]);
  }
}

void TopAaFile::save_raid_aware(std::span<const AaPick> best) {
  commit(encode_raid_aware(best));
}

std::optional<std::vector<AaPick>> TopAaFile::load_raid_aware() {
  alignas(8) std::byte block[kBlockSize];
  store_->read(base_, block);

  TopAaHeader hdr{};
  std::memcpy(&hdr, block, sizeof(hdr));
  if (hdr.crc != block_crc(block)) return std::nullopt;
  if (hdr.magic != kTopAaMagic || hdr.version != kTopAaVersion ||
      hdr.count > kTopAaRaidAwareEntries) {
    return std::nullopt;
  }

  std::vector<AaPick> out;
  out.reserve(hdr.count);
  const std::byte* p = block + sizeof(hdr);
  AaScore prev = 0;
  for (std::uint32_t i = 0; i < hdr.count; ++i) {
    PersistedPick pp{};
    std::memcpy(&pp, p, sizeof(pp));
    p += sizeof(pp);
    // Entries are persisted best-first; a rising score means corruption
    // that happened to keep the CRC valid is impossible, but a logic bug
    // writing the file is not — reject rather than seed a bad cache.
    if (i > 0 && pp.score > prev) return std::nullopt;
    prev = pp.score;
    out.push_back({pp.aa, pp.score});
  }
  return out;
}

void TopAaFile::save_raid_agnostic(const Hbps& hbps) {
  commit(encode_raid_agnostic(hbps));
}

std::optional<Hbps> TopAaFile::load_raid_agnostic() {
  alignas(8) std::byte hist_page[kBlockSize];
  alignas(8) std::byte list_page[kBlockSize];
  store_->read(base_, hist_page);
  store_->read(base_ + 1, list_page);
  return Hbps::load(hist_page, list_page);
}

}  // namespace wafl
