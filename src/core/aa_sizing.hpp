// Media-aware allocation-area sizing policy (§3.2).
//
// Smaller AAs differentiate free-space quality at finer granularity; larger
// AAs cost less memory and match media erase/shingle units.  The rules:
//
//  - HDD RAID groups: the historical default of 4 Ki stripes (§3.2.1).
//  - SSD RAID groups: an AA whose *per-device* span covers several erase
//    blocks, so the allocator's pick-emptiest-then-fill behaviour writes
//    whole erase blocks and minimizes FTL relocation (§3.2.2, Figure 4 B).
//  - SMR RAID groups: an AA whose per-device span is much larger than the
//    shingle zone (§3.2.3); when AZCS is in use, additionally aligned to a
//    multiple of the AZCS region's 63-data-block period so checksum blocks
//    are always written sequentially with their region (§3.2.4, Figure 4 C).
//  - No RAID geometry (FlexVols, object stores): 32 Ki consecutive VBNs,
//    matching one bitmap-metafile block (§3.2.1).
//
// Every RAID AA size is also a multiple of the 64-stripe tetris so write
// windows never straddle AAs.
#pragma once

#include <cstdint>

#include "device/device.hpp"
#include "util/units.hpp"

namespace wafl {

/// The media facts the sizing policy consumes.
struct MediaGeometry {
  MediaType type = MediaType::kHdd;
  /// SSD: erase-block size in 4 KiB blocks (0 if unknown).
  std::uint64_t erase_block_blocks = 0;
  /// SMR: shingle-zone size in 4 KiB blocks (0 if unknown).
  std::uint64_t zone_blocks = 0;
  /// True when the device uses AZCS checksum regions (§3.2.4).
  bool azcs = false;
};

/// How many erase blocks / shingle zones a media-tuned AA spans per device.
inline constexpr std::uint32_t kSsdAaEraseBlockMultiple = 2;
inline constexpr std::uint32_t kSmrAaZoneMultiple = 2;

/// Chooses the AA size, in stripes, for a RAID group of the given media.
/// The result is always a positive multiple of kTetrisStripes.
std::uint32_t choose_raid_aa_stripes(const MediaGeometry& media);

/// Chooses the AA size, in blocks, for a RAID-agnostic VBN range
/// (a FlexVol's virtual VBNs, or physical storage with native redundancy).
std::uint32_t choose_flat_aa_blocks();

}  // namespace wafl
