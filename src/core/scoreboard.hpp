// Per-AA free-space scores with CP-batched delta application (§3.3).
//
// "The free space of an AA is quantified by its AA score: it is the number
//  of free blocks in the AA ... AA score updates resulting from frees
//  (increments) and allocations (decrements) are delayed and performed
//  efficiently in batched fashion at the CP boundary."
//
// During a CP, note_alloc()/note_free() accumulate per-AA deltas in O(1)
// without touching the caches.  apply_cp_deltas() folds the deltas into the
// scores in one pass and reports every (aa, old, new) change so the owning
// AA cache can rebalance (max-heap) or re-bin (HBPS) exactly once per CP.
//
// For flat layouts the score of an AA equals the free count of its single
// bitmap-metafile block, which WAFL's free-space accounting maintains
// anyway — that is why 32 Ki-VBN AAs make the scoreboard essentially free.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitmap/bitmap_metafile.hpp"
#include "core/aa_layout.hpp"
#include "util/types.hpp"

namespace wafl {

class ThreadPool;

/// One score change produced by a CP boundary.
struct ScoreChange {
  AaId aa;
  AaScore old_score;
  AaScore new_score;
};

class AaScoreBoard {
 public:
  /// Initializes all scores to the AA capacities (an empty file system).
  explicit AaScoreBoard(const AaLayout& layout);

  /// Initializes scores by scanning `metafile` free counts; parallelized
  /// across AAs when `pool` is given.  `metafile` bit 0 of the scan region
  /// corresponds to layout.base().
  AaScoreBoard(const AaLayout& layout, const BitmapMetafile& metafile,
               ThreadPool* pool = nullptr);

  /// Adopts already-computed scores (one per AA, in AA order) — the
  /// pipelined mount scan produces the same values the metafile
  /// constructor would and hands them over without a second walk.
  AaScoreBoard(const AaLayout& layout, std::vector<AaScore> scores);

  const AaLayout& layout() const noexcept { return layout_; }

  AaScore score(AaId aa) const {
    WAFL_ASSERT(aa < scores_.size());
    return scores_[aa];
  }

  AaId aa_count() const noexcept {
    return static_cast<AaId>(scores_.size());
  }

  /// Records the allocation of `v` (score decrement), deferred to the CP.
  void note_alloc(Vbn v) { note_delta(layout_.aa_of(v), -1); }

  /// Records the free of `v` (score increment), deferred to the CP.
  void note_free(Vbn v) { note_delta(layout_.aa_of(v), +1); }

  /// Pending (unapplied) delta for an AA — test hook.
  std::int32_t pending_delta(AaId aa) const {
    WAFL_ASSERT(aa < deltas_.size());
    return deltas_[aa];
  }

  /// Applies all pending deltas and returns the changes (valid until the
  /// next apply call).  Scores never move outside [0, aa_capacity].
  std::span<const ScoreChange> apply_cp_deltas();

  /// Recomputes one AA's score from the metafile (used by background
  /// scans / repair).  Any pending delta for the AA is discarded because
  /// the metafile is authoritative at scan time.
  void rescan(AaId aa, const BitmapMetafile& metafile);

  /// Sum of all scores == total free blocks tracked.
  std::uint64_t total_free() const noexcept;

 private:
  void note_delta(AaId aa, std::int32_t d);

  AaLayout layout_;
  std::vector<AaScore> scores_;
  std::vector<std::int32_t> deltas_;
  std::vector<AaId> dirty_;
  std::vector<bool> dirty_flag_;
  std::vector<ScoreChange> changes_;
};

}  // namespace wafl
