// Histogram-based partial sort (HBPS) — the paper's novel RAID-agnostic AA
// cache (§3.3.2, Figure 5).
//
// The structure uses two 4 KiB pages regardless of how many AAs it tracks:
//
//   Page 1 (histogram): for each score bin (ranges of 1 Ki over the
//     [0, 32 Ki] score space → 32 bins), the COUNT of AAs whose score falls
//     in the bin, plus the INDEX of the bin's first entry in the list page
//     (valid only for the best bins, whose AAs are listed).
//
//   Page 2 (list): up to 1,000 AA ids from the best bins, grouped by bin,
//     best bin first, UNSORTED within a bin ("partial sort").
//
// Guarantees and costs, as the paper states them:
//   - take_best() returns an AA whose score is within one bin width of the
//     true maximum (≤ 3.125 % of 32 Ki for the default geometry);
//   - a score moving between bins is O(1) histogram work, and list
//     maintenance moves at most ONE entry per listed bin (the segmented-
//     array shuffle of §3.3.2);
//   - when the allocator consumes AAs faster than frees replenish the list,
//     needs_replenish() turns true and a background scan rebuilds the list
//     from the scoreboard / bitmap metafiles.
//
// Because only ids are stored (1,000 × 4 B fits one page), HBPS does not
// know exact scores; take_best()'s returned score is the bin's upper bound
// (callers needing the exact value consult the scoreboard).  The in-memory
// form adds a small id→slot index for O(1) membership tests; it is
// transient acceleration and is NOT part of the persisted two pages.
//
// HBPS is generic over the score space (max_score / bin_width / capacity)
// because WAFL reuses it wherever millions of items need close-to-optimal
// ordering in bounded memory — e.g., delayed-free scores.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/aa_cache.hpp"
#include "core/scoreboard.hpp"
#include "util/types.hpp"
#include "util/units.hpp"

namespace wafl::obs {
class Counter;
}  // namespace wafl::obs

namespace wafl {

class Hbps final : public AaCache {
 public:
  struct Config {
    AaScore max_score = kFlatAaBlocks;          // best possible score
    std::uint32_t bin_width = kHbpsBinWidth;    // score range per bin
    std::uint32_t list_capacity = kHbpsListCapacity;
  };

  Hbps() : Hbps(Config{}) {}
  explicit Hbps(Config cfg);

  /// Routes rebin counting to an owner-resolved counter (null: rebins go
  /// uncounted).  The owner binds its runtime-scoped
  /// "wafl.hbps.rebins" handle here; the core layer itself never touches
  /// the process-global registry.  Copies share the binding.
  void bind_rebin_counter(obs::Counter* c) noexcept { rebin_counter_ = c; }

  const Config& config() const noexcept { return cfg_; }
  std::uint32_t bin_count() const noexcept {
    return static_cast<std::uint32_t>(hist_.size());
  }

  /// Bin index for a score: bin 0 holds the best scores.
  std::uint32_t bin_of(AaScore score) const noexcept;

  /// Upper bound of the scores bin `b` covers.
  AaScore bin_upper_bound(std::uint32_t b) const noexcept;

  /// (Re)builds histogram and list from a scoreboard, skipping AAs that are
  /// currently checked out.  This is the background-scan path.
  void build(const AaScoreBoard& board);

  /// Same, from raw scores indexed by id — for uses beyond AA tracking
  /// (e.g. delayed-free scores, §3.3.2).
  void build(std::span<const AaScore> scores);

  // --- AaCache ------------------------------------------------------------
  std::optional<AaPick> take_best() override;
  std::optional<AaScore> peek_best_score() const override;
  void insert(AaId aa, AaScore score) override;
  void update_score(AaId aa, AaScore old_score, AaScore new_score) override;
  /// Batched CP-boundary rebalance: applies every histogram move first,
  /// then rebuilds the list segments with ONE shuffle for the whole batch
  /// instead of per-change list maintenance (each per-change rebin moves
  /// one entry per listed bin, so a B-change batch over L listed bins costs
  /// O(B·L) moves; the batched form costs O(B + list size)).  Equivalent to
  /// the per-change path — identical histogram, identical per-bin listed
  /// sets whenever the list never hits capacity during the replay — which
  /// the fuzz suite holds; under capacity pressure both keep the structural
  /// invariants and the histogram equal but may retain different same-bin
  /// entries (the partial sort never promised an order within a bin).
  void apply_changes(std::span<const ScoreChange> changes) override;
  /// Resident AAs (histogram total), listed or not.
  std::size_t size() const noexcept override { return tracked_; }

  /// True when the background scan should refill the list (§3.3.2's
  /// replenish).  Two triggers:
  ///   - the allocator consumed AAs faster than frees re-listed them and
  ///     the list ran dry while the histogram still tracks AAs; or
  ///   - the list's best bin is worse than the histogram's best bin: AAs
  ///     that arrived while the list was full of equally-good entries were
  ///     skipped, and the list has since drained past their range — they
  ///     are stranded until a scan re-admits them.
  bool needs_replenish() const noexcept {
    if (tracked_ == 0) return false;
    if (list_.empty()) return true;
    return best_listed_bin() > best_histogram_bin();
  }

  /// First histogram bin with a nonzero count (kNoSegment if none) —
  /// exposed for tests.
  std::int32_t best_histogram_bin() const noexcept;

  // --- Persistence (§3.4: the RAID-agnostic TopAA metafile embeds these
  // two pages directly) ----------------------------------------------------
  static constexpr std::size_t kPageBytes = kBlockSize;

  /// Serializes into the histogram page and the list page (each exactly
  /// kPageBytes).  Each page carries a CRC-32C in its trailing 4 bytes.
  void save(std::span<std::byte> histogram_page,
            std::span<std::byte> list_page) const;

  /// Rebuilds an Hbps from two pages; nullopt when either CRC or any
  /// structural check fails (the caller then falls back to a bitmap scan).
  static std::optional<Hbps> load(std::span<const std::byte> histogram_page,
                                  std::span<const std::byte> list_page);

  // --- Introspection (tests) ----------------------------------------------
  std::uint32_t histogram_count(std::uint32_t bin) const {
    return hist_[bin];
  }
  std::uint32_t listed_count(std::uint32_t bin) const {
    return list_count_[bin];
  }
  std::size_t list_size() const noexcept { return list_.size(); }
  bool is_listed(AaId aa) const noexcept { return slot_of_.contains(aa); }
  bool is_checked_out(AaId aa) const noexcept {
    return checked_out_.contains(aa);
  }
  /// Full structural invariant check — test hook.
  bool validate() const override;

 private:
  static constexpr std::int32_t kNoSegment = -1;

  /// Worst (highest-index) bin that currently has listed entries, or
  /// kNoSegment when the list is empty.
  std::int32_t worst_listed_bin() const noexcept;
  std::int32_t best_listed_bin() const noexcept;

  /// Inserts `aa` into bin `b`'s list segment if it qualifies (room in the
  /// list, or better than the worst listed bin).
  void maybe_list(AaId aa, std::uint32_t b);

  /// Removes the listed entry at absolute slot `i` (bin `b`), compacting
  /// lower segments with one move per bin.
  void unlist_at(std::uint32_t i, std::uint32_t b);

  /// Drops the last entry of the worst listed bin.
  void drop_worst();

  void move_entry(std::uint32_t from, std::uint32_t to);

  Config cfg_;
  std::vector<std::uint32_t> hist_;        // all resident AAs, per bin
  std::vector<std::int32_t> list_first_;   // per bin: first slot or -1
  std::vector<std::uint32_t> list_count_;  // per bin: listed entries
  std::vector<AaId> list_;                 // segmented by bin, best first
  std::unordered_map<AaId, std::uint32_t> slot_of_;  // transient index
  std::unordered_set<AaId> checked_out_;
  std::size_t tracked_ = 0;  // resident AAs (sum of hist_)
  obs::Counter* rebin_counter_ = nullptr;
};

}  // namespace wafl
