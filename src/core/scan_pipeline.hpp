// Pipelined parallel bitmap scan for the mount/recovery path (§3.4).
//
// The full-bitmap-scan mount path — taken whenever the TopAA metafile is
// damaged or stale — is a linear walk of the bitmap metafile followed by
// per-AA scoring.  Done serially it is the ~10x-slower fallback the paper
// motivates TopAA against; done naively in parallel (load everything,
// barrier, then score everything) the cache warm-up is still a serial
// tail behind the slowest read.  Following pFSCK's split of fsck into
// data parallelism plus pipeline parallelism, this module overlaps the
// two stages:
//
//   readers   N pool tasks claim metafile-block batches from a shared
//             cursor and load them (BitmapMetafile::load_block — disjoint
//             word ranges, concurrent-safe);
//   handoff   each loaded block decrements the pending-block count of
//             every AA seed chunk it covers; the last block of a chunk
//             publishes the chunk id through an MpscLog (the acq_rel
//             decrement chain plus the log's release/acquire ready flag
//             make all covering word/summary writes visible);
//   seeder    the calling thread drains the ready log live and scores
//             each chunk's AAs — so scoring runs while later blocks are
//             still being read.  When nothing is ready it STEALS a read
//             batch itself, which both keeps it busy and guarantees
//             progress even if every pool worker is occupied elsewhere
//             (the nested per-volume fan-out case) — no deadlock, no
//             idle spin.
//
// Determinism by construction: each AA score is a pure function of its
// covering metafile blocks and is written exactly once, by the seeder,
// into a caller-owned dense array.  Scheduling only permutes WHEN a
// score is computed, never its value or slot, so the result is
// byte-identical to the serial walk at any worker count.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "core/aa_layout.hpp"
#include "util/types.hpp"

namespace wafl {

class BitmapMetafile;
class ThreadPool;

/// One scoring demand: fill `scores` (resized to layout->aa_count()) with
/// the free count of every AA of `layout`, read from the scanned
/// metafile.  Several units may share one metafile (per-RAID-group
/// layouts over the aggregate activemap).
struct ScanUnit {
  const AaLayout* layout = nullptr;
  std::vector<AaScore>* scores = nullptr;
};

/// Accumulated scan-phase timings (nanoseconds, fetch_add relaxed — safe
/// from any thread).  In a serial run the buckets partition wall time,
/// which is what the Amdahl-projected speedup gate in tools/check.sh
/// consumes; in a pipelined run read/seed overlap, so the buckets are
/// per-thread CPU attributions, not wall.
struct ScanProfile {
  std::atomic<std::uint64_t> setup_ns{0};  // serial: chunk/cover tables
  std::atomic<std::uint64_t> read_ns{0};   // parallel: metafile block loads
  std::atomic<std::uint64_t> seed_ns{0};   // parallel: per-AA scoring
  std::atomic<std::uint64_t> build_ns{0};  // parallel: heap/HBPS builds
  std::atomic<std::uint64_t> fold_ns{0};   // serial: free-total fold
  std::atomic<std::uint64_t> runs{0};
  std::atomic<std::uint64_t> pipelined_runs{0};

  void reset() {
    setup_ns = read_ns = seed_ns = build_ns = fold_ns = 0;
    runs = pipelined_runs = 0;
  }
};

/// Process-global profile (same pattern as CpPhaseProfile): benches reset
/// it, run a scan, and read the buckets back.
ScanProfile& scan_profile();

/// Adaptive cutover: below this many metafile blocks the scan runs
/// serially even with a pool — task spawn plus the handoff tables cost
/// more than the walk itself ("small CPs never lose", applied to mount).
/// 4 blocks = 128 Ki tracked VBNs; the crash-harness geometries (1–5
/// blocks per metafile) stay serial, the bench geometries go parallel.
inline constexpr std::uint64_t kParallelScanMinBlocks = 4;

/// Scans `mf` (a full load_block walk + finish_load) and fills every
/// unit's scores.  Serial when `pool` is null, empty, or the metafile is
/// below the cutover; pipelined as described above otherwise.  Result is
/// bit-identical either way.  Unit layouts must lie within the metafile.
void pipelined_bitmap_scan(BitmapMetafile& mf,
                           std::span<const ScanUnit> units,
                           ThreadPool* pool);

}  // namespace wafl
