// Common interface of the two allocation-area caches (§3.3).
//
// An AA cache provides the write allocator with the emptiest (or
// near-emptiest) allocation areas.  The allocator *checks out* an AA with
// take_best(), fills its free blocks sequentially, and the CP boundary
// checks it back in with insert() at its new score.  AAs that change score
// while resident in the cache (blocks freed or allocated behind the
// allocator's back) are re-keyed with update_score().
//
// Two implementations exist, matching the paper:
//   - MaxHeapAaCache (§3.3.1): tracks ALL AAs of a RAID group, exact best.
//   - Hbps            (§3.3.2): histogram-based partial sort, bounded
//     memory, best within one bin width.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/scoreboard.hpp"
#include "util/types.hpp"

namespace wafl {

/// An AA handed to the write allocator, with the score it had when taken.
struct AaPick {
  AaId aa;
  AaScore score;

  friend bool operator==(const AaPick&, const AaPick&) = default;
};

class AaCache {
 public:
  virtual ~AaCache() = default;

  /// Removes and returns the best-scoring AA available, or nullopt when the
  /// cache has none to give.
  virtual std::optional<AaPick> take_best() = 0;

  /// Score of the current best AA without taking it — the write allocator
  /// uses this as the RAID group's fragmentation indicator (§3.3.1).
  virtual std::optional<AaScore> peek_best_score() const = 0;

  /// Adds (or re-adds after checkout) an AA at the given score.
  virtual void insert(AaId aa, AaScore score) = 0;

  /// Re-keys a resident AA whose score changed old_score -> new_score.
  /// No-op if the AA is not resident (e.g., HBPS tracks it only in the
  /// histogram).
  virtual void update_score(AaId aa, AaScore old_score,
                            AaScore new_score) = 0;

  /// AAs currently resident (not checked out).
  virtual std::size_t size() const noexcept = 0;

  /// Structural invariant check (test hook).
  virtual bool validate() const = 0;

  /// Applies a CP boundary's batch of score changes (§3.3's rebalance).
  /// The default walks the batch per change; implementations may override
  /// with a batched equivalent (Hbps does: one segmented-array shuffle per
  /// bin instead of per-change list maintenance).  A CP batch carries at
  /// most one change per AA (AaScoreBoard::apply_cp_deltas coalesces), and
  /// overrides may rely on that.
  virtual void apply_changes(std::span<const ScoreChange> changes) {
    for (const ScoreChange& c : changes) {
      update_score(c.aa, c.old_score, c.new_score);
    }
  }
};

}  // namespace wafl
