#include "core/max_heap_cache.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace wafl {

MaxHeapAaCache::MaxHeapAaCache(AaId aa_universe)
    : pos_(aa_universe, kAbsent) {
  heap_.reserve(aa_universe);
}

void MaxHeapAaCache::build(const AaScoreBoard& board) {
  heap_.clear();
  std::fill(pos_.begin(), pos_.end(), kAbsent);
  WAFL_ASSERT(board.aa_count() <= pos_.size());
  for (AaId aa = 0; aa < board.aa_count(); ++aa) {
    heap_.push_back({board.score(aa), aa});
  }
  // Floyd heap construction: O(n).
  for (std::size_t i = heap_.size(); i-- > 0;) {
    sift_down(i);
  }
  // sift_down only wrote pos_ for moved entries; fix up the rest.
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    pos_[heap_[i].aa] = static_cast<std::uint32_t>(i);
  }
}

void MaxHeapAaCache::seed(std::span<const AaPick> picks) {
  heap_.clear();
  std::fill(pos_.begin(), pos_.end(), kAbsent);
  for (const AaPick& p : picks) {
    insert(p.aa, p.score);
  }
}

bool MaxHeapAaCache::remove(AaId aa) {
  if (!contains(aa)) return false;
  remove_at(pos_[aa]);
  return true;
}

std::optional<AaPick> MaxHeapAaCache::take_best() {
  if (heap_.empty()) return std::nullopt;
  const Entry e = heap_[0];
  remove_at(0);
  return AaPick{e.aa, e.score};
}

std::optional<AaScore> MaxHeapAaCache::peek_best_score() const {
  if (heap_.empty()) return std::nullopt;
  return heap_[0].score;
}

void MaxHeapAaCache::insert(AaId aa, AaScore score) {
  WAFL_ASSERT(aa < pos_.size());
  WAFL_ASSERT_MSG(pos_[aa] == kAbsent, "AA already resident");
  heap_.push_back({score, aa});
  pos_[aa] = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
}

void MaxHeapAaCache::update_score(AaId aa, AaScore old_score,
                                  AaScore new_score) {
  WAFL_ASSERT(aa < pos_.size());
  const std::uint32_t i = pos_[aa];
  if (i == kAbsent) return;  // checked out; will re-key on insert
  WAFL_ASSERT(heap_[i].score == old_score);
  WAFL_OBS({
    if (rekey_counter_ != nullptr) rekey_counter_->inc();
  });
  heap_[i].score = new_score;
  if (new_score > old_score) {
    sift_up(i);
  } else if (new_score < old_score) {
    sift_down(i);
  }
}

std::vector<AaPick> MaxHeapAaCache::top(std::size_t n) const {
  // Partial selection on a copy; n is small (TopAA persists 512).
  std::vector<Entry> copy = heap_;
  n = std::min(n, copy.size());
  std::partial_sort(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(n),
                    copy.end(), better);
  std::vector<AaPick> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({copy[i].aa, copy[i].score});
  }
  return out;
}

bool MaxHeapAaCache::validate() const {
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const std::size_t parent = (i - 1) / 2;
    if (better(heap_[i], heap_[parent])) return false;
  }
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    if (pos_[heap_[i].aa] != i) return false;
  }
  return true;
}

void MaxHeapAaCache::sift_up(std::size_t i) {
  const Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!better(e, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, e);
}

void MaxHeapAaCache::sift_down(std::size_t i) {
  const Entry e = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && better(heap_[child + 1], heap_[child])) {
      ++child;
    }
    if (!better(heap_[child], e)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, e);
}

void MaxHeapAaCache::remove_at(std::size_t i) {
  WAFL_ASSERT(i < heap_.size());
  pos_[heap_[i].aa] = kAbsent;
  const Entry last = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;
  heap_[i] = last;
  pos_[last.aa] = static_cast<std::uint32_t>(i);
  // The displaced entry may need to move either way.
  sift_up(i);
  sift_down(pos_[last.aa]);
}

}  // namespace wafl
