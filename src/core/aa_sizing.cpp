#include "core/aa_sizing.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace wafl {
namespace {

/// Smallest multiple of `align` that is >= value (value, align > 0).
std::uint64_t round_up(std::uint64_t value, std::uint64_t align) {
  WAFL_ASSERT(align > 0);
  return (value + align - 1) / align * align;
}

}  // namespace

std::uint32_t choose_raid_aa_stripes(const MediaGeometry& media) {
  switch (media.type) {
    case MediaType::kHdd:
      return kDefaultRaidAaStripes;

    case MediaType::kSsd: {
      // Per-device span (== aa_stripes blocks on each device) should cover
      // several erase blocks; fall back to the default when the erase-block
      // size is unknown.
      if (media.erase_block_blocks == 0) return kDefaultRaidAaStripes;
      const std::uint64_t span = round_up(
          media.erase_block_blocks * kSsdAaEraseBlockMultiple,
          kTetrisStripes);
      return static_cast<std::uint32_t>(
          std::max<std::uint64_t>(span, kDefaultRaidAaStripes));
    }

    case MediaType::kSmr: {
      if (media.zone_blocks == 0) return kDefaultRaidAaStripes;
      std::uint64_t target = media.zone_blocks * kSmrAaZoneMultiple;
      // Alignment unit: tetrises always; plus the AZCS data period (63
      // data blocks per region) when zone checksums are in use, so AA
      // boundaries coincide with region boundaries (Figure 4 C).
      std::uint64_t align = kTetrisStripes;
      if (media.azcs) {
        align = std::lcm<std::uint64_t>(align, kAzcsDataBlocksPerRegion);
      }
      const std::uint64_t span =
          round_up(std::max<std::uint64_t>(target, kDefaultRaidAaStripes),
                   align);
      return static_cast<std::uint32_t>(span);
    }

    case MediaType::kObjectStore:
      // Native redundancy, no RAID geometry: AAs are 32 Ki consecutive
      // VBNs matching one bitmap-metafile block (§3.2.1).  Object-store
      // pools have a single 'device', so stripes == blocks.
      return kFlatAaBlocks;
  }
  return kDefaultRaidAaStripes;
}

std::uint32_t choose_flat_aa_blocks() { return kFlatAaBlocks; }

}  // namespace wafl
